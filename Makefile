# Developer entry points. `make ci` is the full gate: formatting, vet,
# build, the test suite under the race detector, and the end-to-end smoke
# run of the CLI tools.

GO ?= go

.PHONY: ci fmt vet build test race smoke

ci: fmt vet build race smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke exercises the built binaries end to end on a small deterministic
# config: the defrag recovery benchmark, the client-cache benchmark (cache
# off vs on over the same request sequence), an offline check of a
# crash-consistent metadata image saved after a defrag-style rewrite, an
# offline check of an image populated through a client-cached mount (the
# flush barriers wrote all of its metadata), and a trace replay under
# injected message loss proving every op completes through the rpc retry
# path. The duplicated mifbench telemetry runs guard determinism: two
# identical cache-off invocations must produce byte-identical snapshots.
smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o "$$dir" ./cmd/mifbench ./cmd/miffsck ./cmd/miftrace && \
	"$$dir/mifbench" -scale 0.25 defrag && \
	"$$dir/mifbench" -scale 0.25 cache && \
	"$$dir/mifbench" -scale 0.25 -telemetry "$$dir/t1.json" fig6a > /dev/null && \
	"$$dir/mifbench" -scale 0.25 -telemetry "$$dir/t2.json" fig6a > /dev/null && \
	cmp "$$dir/t1.json" "$$dir/t2.json" && \
	"$$dir/miffsck" gen -defrag -journal-only "$$dir/fs.img" && \
	"$$dir/miffsck" check "$$dir/fs.img" && \
	"$$dir/miffsck" gen -cache -dirs 2 -files 48 "$$dir/cfs.img" && \
	"$$dir/miffsck" check "$$dir/cfs.img" && \
	"$$dir/miftrace" gen -streams 4 -region 128 > "$$dir/t.trace" && \
	"$$dir/miftrace" replay -drop-rate 0.05 "$$dir/t.trace"
