# Developer entry points. `make ci` is the full gate: formatting, vet,
# build, and the test suite under the race detector.

GO ?= go

.PHONY: ci fmt vet build test race

ci: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
