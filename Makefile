# Developer entry points. `make ci` is the full gate: formatting, vet,
# build, the test suite under the race detector, and the end-to-end smoke
# run of the CLI tools.

GO ?= go

.PHONY: ci fmt vet build test race smoke

ci: fmt vet build race smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke exercises the built binaries end to end on a small deterministic
# config: the defrag recovery benchmark, an offline check of a
# crash-consistent metadata image saved after a defrag-style rewrite, and
# a trace replay under injected message loss proving every op completes
# through the rpc retry path.
smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o "$$dir" ./cmd/mifbench ./cmd/miffsck ./cmd/miftrace && \
	"$$dir/mifbench" -scale 0.25 defrag && \
	"$$dir/miffsck" gen -defrag -journal-only "$$dir/fs.img" && \
	"$$dir/miffsck" check "$$dir/fs.img" && \
	"$$dir/miftrace" gen -streams 4 -region 128 > "$$dir/t.trace" && \
	"$$dir/miftrace" replay -drop-rate 0.05 "$$dir/t.trace"
