# Developer entry points. `make ci` is the full gate: formatting, vet,
# build, the test suite under the race detector, the end-to-end smoke run
# of the CLI tools, and a benchmark-snapshot drift check against the
# committed baseline. `make bench` regenerates the local snapshot at full
# scale.

GO ?= go

.PHONY: ci fmt vet build test race smoke racesmoke bench benchcheck

ci: fmt vet build race smoke racesmoke benchcheck

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke exercises the built binaries end to end on a small deterministic
# config: the defrag recovery benchmark, the client-cache benchmark (cache
# off vs on over the same request sequence), an offline check of a
# crash-consistent metadata image saved after a defrag-style rewrite
# (exit 2: journal replay repaired it), an offline check of an image
# populated through a client-cached mount (the flush barriers wrote all
# of its metadata; exit 0: clean), an fsck determinism pair on a
# defrag-aged image (serial vs -fsck-workers 8 reports cmp'd
# byte-identical), a small crash-point sweep run twice to
# guard report determinism, a trace replay under injected message loss
# proving every op completes through the rpc retry path, and the failover
# benchmark (an OST blackholed mid-write under 3-way replication: zero
# client errors, redundancy re-replicated onto the survivors). The
# duplicated mifbench telemetry runs guard determinism: two identical
# cache-off invocations must produce byte-identical snapshots.
smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o "$$dir" ./cmd/mifbench ./cmd/miffsck ./cmd/miftrace && \
	"$$dir/mifbench" -scale 0.25 defrag && \
	"$$dir/mifbench" -scale 0.25 cache && \
	"$$dir/mifbench" -scale 0.25 failover && \
	"$$dir/mifbench" -scale 0.25 -telemetry "$$dir/t1.json" fig6a > /dev/null && \
	"$$dir/mifbench" -scale 0.25 -telemetry "$$dir/t2.json" fig6a > /dev/null && \
	cmp "$$dir/t1.json" "$$dir/t2.json" && \
	"$$dir/miffsck" gen -defrag -journal-only "$$dir/fs.img" && \
	{ "$$dir/miffsck" check "$$dir/fs.img"; test $$? -eq 2; } && \
	"$$dir/miffsck" gen -cache -dirs 2 -files 48 "$$dir/cfs.img" && \
	"$$dir/miffsck" check "$$dir/cfs.img" && \
	"$$dir/miffsck" gen -defrag "$$dir/aged.img" && \
	"$$dir/miffsck" check -fsck-workers 1 "$$dir/aged.img" > "$$dir/fsck1.txt" && \
	"$$dir/miffsck" check -fsck-workers 8 "$$dir/aged.img" > "$$dir/fsck8.txt" && \
	cmp "$$dir/fsck1.txt" "$$dir/fsck8.txt" && \
	"$$dir/miffsck" sweep -points journal.append.commit,mdfs.checkpoint.home,ost.flush.media,ost.migrate.free,repair.copy.media,cache.sync.flush > "$$dir/sw1.txt" && \
	"$$dir/miffsck" sweep -points journal.append.commit,mdfs.checkpoint.home,ost.flush.media,ost.migrate.free,repair.copy.media,cache.sync.flush > "$$dir/sw2.txt" && \
	cmp "$$dir/sw1.txt" "$$dir/sw2.txt" && \
	"$$dir/miftrace" gen -streams 4 -region 128 > "$$dir/t.trace" && \
	"$$dir/miftrace" replay -drop-rate 0.05 "$$dir/t.trace" && \
	"$$dir/mifbench" -scale 0.25 -spans "$$dir/s.json" fig6a > /dev/null && \
	"$$dir/miftrace" critpath "$$dir/s.json"

# racesmoke reruns the determinism-sensitive smoke legs on race-built
# binaries with GORACE=halt_on_error=1: the telemetry-identity pair (two
# identical runs must produce byte-identical snapshots while the parallel
# clock domains are active), the full crash-point sweep (every registered
# point crashed, recovered — journal replay, remount, scrub, repair drain
# — and verified, with the recovery path under the race detector), the
# parallel fsck walker on a defrag-aged image (8 scan goroutines under
# the race detector), and a critical-path walk over a span log. A data
# race aborts the run instead of scrolling past.
racesmoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -race -o "$$dir" ./cmd/mifbench ./cmd/miftrace ./cmd/miffsck && \
	GORACE=halt_on_error=1 "$$dir/mifbench" -scale 0.25 -telemetry "$$dir/t1.json" fig6a > /dev/null && \
	GORACE=halt_on_error=1 "$$dir/mifbench" -scale 0.25 -telemetry "$$dir/t2.json" fig6a > /dev/null && \
	cmp "$$dir/t1.json" "$$dir/t2.json" && \
	GORACE=halt_on_error=1 "$$dir/miffsck" sweep > /dev/null && \
	GORACE=halt_on_error=1 "$$dir/miffsck" gen -defrag "$$dir/aged.img" > /dev/null && \
	GORACE=halt_on_error=1 "$$dir/miffsck" check -fsck-workers 8 "$$dir/aged.img" > /dev/null && \
	GORACE=halt_on_error=1 "$$dir/mifbench" -scale 0.25 -spans "$$dir/s.json" fig6a > /dev/null && \
	GORACE=halt_on_error=1 "$$dir/miftrace" critpath "$$dir/s.json" > /dev/null && \
	echo "racesmoke: ok"

# bench regenerates the full-scale performance snapshot as BENCH_pr8.json,
# the committed record of the parallel-domains/zero-alloc work. Run it on a
# quiet machine (simulated metrics are deterministic; only wall_ns varies
# run to run).
bench:
	$(GO) run ./cmd/mifbench -bench-json BENCH_pr8.json all

# benchcheck has two legs. Leg 1 replays the fig6a experiment and compares
# per-metric drift against the committed seed snapshot's fig6a record (the
# other experiments are reported as missing, which is informational). The
# simulator is deterministic, so simulated metrics should show zero drift;
# this leg is warn-only so a legitimate perf change can land together with
# its baseline refresh without a chicken-and-egg failure. Leg 2 diffs the
# two committed snapshots — BENCH_seed.json versus BENCH_pr8.json — as a
# strict gate: the optimization PR must show zero simulated-metric drift,
# and the wall-clock table reports the measured speedup per experiment.
benchcheck:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o "$$dir" ./cmd/mifbench && \
	"$$dir/mifbench" -bench-json "$$dir/b.json" fig6a > /dev/null && \
	"$$dir/mifbench" compare -warn-only BENCH_seed.json "$$dir/b.json" && \
	"$$dir/mifbench" compare -wall BENCH_seed.json BENCH_pr8.json
