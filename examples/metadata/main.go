// Metadata demonstrates the embedded-directory half of MiF on an
// `ls -l`-heavy scenario: a build farm's results directory holding
// thousands of small files, listed over and over by monitoring jobs.
//
// The example runs the same namespace activity against the traditional
// (ext3-style) placement and the embedded directory, printing the
// block-layer request counts of each aggregated readdir-stat pass.
package main

import (
	"fmt"
	"log"

	"redbud/internal/mdfs"
	"redbud/internal/mds"
)

const files = 4000

func run(layout mdfs.Layout) {
	cfg := mds.DefaultConfig(layout)
	cfg.FS.SyncWrites = true
	srv, err := mds.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fs := srv.FS()
	dir, err := srv.Mkdir(srv.Root(), "results")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < files; i++ {
		if _, err := srv.Create(dir, fmt.Sprintf("job-%05d.out", i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}

	// Cold `ls -l`: drop caches, run the aggregated readdir+stat.
	fs.Store().DropCaches()
	before := fs.Store().Disk().Stats()
	recs, err := srv.ReaddirPlus(dir)
	if err != nil {
		log.Fatal(err)
	}
	delta := fs.Store().Disk().Stats().Sub(before)
	fmt.Printf("%-10s ls -l of %d files: %5d disk requests, %4d positionings, %.1f ms\n",
		layout, len(recs), delta.Requests, delta.Positionings, float64(delta.BusyNs)/1e6)

	// Warm repeat: the cache absorbs it in both layouts.
	before = fs.Store().Disk().Stats()
	if _, err := srv.ReaddirPlus(dir); err != nil {
		log.Fatal(err)
	}
	delta = fs.Store().Disk().Stats().Sub(before)
	fmt.Printf("%-10s warm repeat:              %5d disk requests\n", layout, delta.Requests)
}

func main() {
	fmt.Println("aggregated readdir-stat (readdirplus) over a large directory:")
	run(mdfs.LayoutNormal)
	run(mdfs.LayoutEmbedded)
	fmt.Println("\nEmbedded directories place every inode inside the directory content,")
	fmt.Println("so one sequential sweep serves the whole listing.")
}
