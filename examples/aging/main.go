// Aging reproduces the paper's Figure 9 scenario as a runnable example:
// churn a metadata file system to increasing utilization levels and watch
// what happens to creation and deletion throughput under both directory
// placements.
package main

import (
	"fmt"
	"log"

	"redbud/internal/mdfs"
	"redbud/internal/workload"
)

func main() {
	fmt.Printf("%-10s %12s %14s %14s\n", "layout", "utilization", "create ops/s", "delete ops/s")
	for _, layout := range []mdfs.Layout{mdfs.LayoutNormal, mdfs.LayoutEmbedded} {
		for _, target := range []float64{0.1, 0.5, 0.8} {
			res, err := workload.RunAging(workload.DefaultAgingConfig(layout, target))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %11.0f%% %14.0f %14.0f\n",
				res.Config, 100*res.Utilization, res.CreatePerSec, res.DeletePerSec)
		}
	}
	fmt.Println("\nAging fragments the free space the embedded directory preallocates from,")
	fmt.Println("hurting creation; deletion is barely compromised, and embedded stays ahead.")
}
