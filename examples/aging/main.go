// Aging reproduces the paper's Figure 9 scenario as a runnable example:
// churn a metadata file system to increasing utilization levels and watch
// what happens to creation and deletion throughput under both directory
// placements. A second part ages the data path instead and shows the
// online defragmentation engine undoing the damage: sequential read
// throughput for the aged layout, the same volume after a defrag pass, and
// a never-aged baseline.
package main

import (
	"fmt"
	"log"

	"redbud/internal/mdfs"
	"redbud/internal/pfs"
	"redbud/internal/workload"
)

func main() {
	fmt.Printf("%-10s %12s %14s %14s\n", "layout", "utilization", "create ops/s", "delete ops/s")
	for _, layout := range []mdfs.Layout{mdfs.LayoutNormal, mdfs.LayoutEmbedded} {
		for _, target := range []float64{0.1, 0.5, 0.8} {
			res, err := workload.RunAging(workload.DefaultAgingConfig(layout, target))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %11.0f%% %14.0f %14.0f\n",
				res.Config, 100*res.Utilization, res.CreatePerSec, res.DeletePerSec)
		}
	}
	fmt.Println("\nAging fragments the free space the embedded directory preallocates from,")
	fmt.Println("hurting creation; deletion is barely compromised, and embedded stays ahead.")

	fmt.Printf("\n%-10s %12s %14s %12s %10s\n", "policy", "aged MB/s", "defragged MB/s", "fresh MB/s", "extents")
	for _, cfg := range []pfs.Config{
		pfs.MiF(4).WithPolicy(pfs.PolicyVanilla),
		pfs.MiF(4),
	} {
		res, err := workload.RunDefragBench(cfg, workload.DefaultDefragBenchConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.1f %14.1f %12.1f %10s\n",
			res.Config, res.AgedReadMBps, res.DefraggedReadMBps, res.FreshReadMBps,
			fmt.Sprintf("%d→%d", res.AgedExtents, res.DefraggedExtents))
	}
	fmt.Println("\nData-path aging interleaves files into each other's extents; the defrag")
	fmt.Println("engine migrates each object into one reserved contiguous run, recovering")
	fmt.Println("the sequential throughput MiF's on-demand preallocation never lost.")
}
