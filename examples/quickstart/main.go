// Quickstart: build a MiF-enabled Redbud file system, write a shared file
// from several concurrent streams, and inspect the resulting on-disk
// layout under each preallocation policy.
package main

import (
	"fmt"
	"log"

	"redbud/internal/core"
	"redbud/internal/pfs"
	"redbud/internal/sim"
)

func main() {
	for _, policy := range []pfs.PolicyKind{pfs.PolicyVanilla, pfs.PolicyReservation, pfs.PolicyOnDemand, pfs.PolicyStatic} {
		cfg := pfs.MiF(4).WithPolicy(policy)
		fs, err := pfs.New(cfg)
		if err != nil {
			log.Fatal(err)
		}

		// Eight streams extend disjoint regions of one shared file,
		// requests arriving round-robin — the paper's Figure 1(a).
		const streams = 8
		const regionBlocks = 1024
		f, err := fs.Create(fs.Root(), "shared.dat", streams*regionBlocks)
		if err != nil {
			log.Fatal(err)
		}
		for off := int64(0); off < regionBlocks; off += 8 {
			for s := 0; s < streams; s++ {
				stream := core.StreamID{Client: uint32(s), PID: 1}
				if err := f.Write(stream, int64(s)*regionBlocks+off, 8); err != nil {
					log.Fatal(err)
				}
			}
		}
		fs.Flush()

		extents, err := fs.TotalExtents(f)
		if err != nil {
			log.Fatal(err)
		}

		// Read one stream's region back sequentially and measure.
		fs.ResetDataStats()
		for off := int64(0); off < regionBlocks; off += 64 {
			if err := f.Read(off, 64); err != nil {
				log.Fatal(err)
			}
		}
		fs.Flush()
		elapsed := fs.DataBusyMax()
		st := fs.DataStats()
		fmt.Printf("%-12s extents=%5d  region read: %6.1f MB/s  (%d positionings)\n",
			policy, extents, sim.MBps(regionBlocks*4096, elapsed), st.Positionings)
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nMiF's on-demand preallocation keeps each stream's region contiguous;")
	fmt.Println("the reservation baseline interleaves streams in arrival order.")
}
