// Sharedwrite models the physics-simulation checkpoint pattern that
// motivates the paper: "a set of nodes frequently write collected data to a
// shared file, which will be used for further analysis" (LLNL trace study).
//
// A cluster of nodes appends timestep snapshots to one shared .odb-style
// file, then an analysis pass reads the file region by region. The example
// compares the full MiF system against the original Redbud baseline.
package main

import (
	"fmt"
	"log"

	"redbud/internal/core"
	"redbud/internal/pfs"
	"redbud/internal/sim"
)

const (
	nodes          = 16
	threadsPerNode = 4
	timesteps      = 48
	chunkBlocks    = 8 // 32 KiB per thread per timestep
)

func run(cfg pfs.Config) (writeMBps, analyzeMBps float64, extents int) {
	fs, err := pfs.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	streams := nodes * threadsPerNode
	regionBlocks := int64(timesteps * chunkBlocks)
	f, err := fs.Create(fs.Root(), "simulation.odb", int64(streams)*regionBlocks)
	if err != nil {
		log.Fatal(err)
	}

	// Simulation phase: every thread appends one chunk per timestep to
	// its region of the shared file.
	for ts := 0; ts < timesteps; ts++ {
		for s := 0; s < streams; s++ {
			stream := core.StreamID{Client: uint32(s / threadsPerNode), PID: uint32(s % threadsPerNode)}
			blk := int64(s)*regionBlocks + int64(ts*chunkBlocks)
			if err := f.Write(stream, blk, chunkBlocks); err != nil {
				log.Fatal(err)
			}
		}
	}
	fs.Flush()
	writeElapsed := fs.DataBusyMax()
	totalBlocks := int64(streams) * regionBlocks
	writeMBps = sim.MBps(totalBlocks*4096, writeElapsed)

	extents, err = fs.TotalExtents(f)
	if err != nil {
		log.Fatal(err)
	}

	// Analysis phase: one analysis process per region, each reading its
	// region sequentially, running concurrently across the cluster (so
	// the global arrival order carries rank skew).
	fs.ResetDataStats()
	rng := sim.NewRand(42)
	progress := make([]int64, streams)
	remaining := streams
	for remaining > 0 {
		r := rng.Intn(streams)
		if progress[r] >= regionBlocks {
			continue
		}
		blk := int64(r)*regionBlocks + progress[r]
		n := int64(32)
		if progress[r]+n > regionBlocks {
			n = regionBlocks - progress[r]
		}
		if err := f.Read(blk, n); err != nil {
			log.Fatal(err)
		}
		progress[r] += n
		if progress[r] >= regionBlocks {
			remaining--
		}
	}
	fs.Flush()
	analyzeMBps = sim.MBps(totalBlocks*4096, fs.DataBusyMax())
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	return writeMBps, analyzeMBps, extents
}

func main() {
	fmt.Printf("%-10s %12s %14s %10s\n", "system", "write MB/s", "analyze MB/s", "extents")
	for _, cfg := range []pfs.Config{pfs.RedbudOrig(5), pfs.MiF(5)} {
		w, a, e := run(cfg)
		fmt.Printf("%-10s %12.1f %14.1f %10d\n", cfg.Name, w, a, e)
	}
	fmt.Println("\nThe analysis pass is where intra-file fragmentation bites: MiF keeps each")
	fmt.Println("thread's checkpoint region contiguous, so sequential analysis reads stream.")
}
