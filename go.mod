module redbud

go 1.22
