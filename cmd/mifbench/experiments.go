package main

import (
	"fmt"

	"redbud/internal/mdfs"
	"redbud/internal/pfs"
	"redbud/internal/sim"
	"redbud/internal/workload"
)

// fig6FS builds the micro-benchmark mount: 5 data disks, as in the paper
// ("we configured all data to be striped on five disks").
func fig6FS(policy pfs.PolicyKind) pfs.Config {
	cfg := pfs.MiF(5).WithPolicy(policy)
	cfg.ReservationWindow = 2048
	return instrumented(cfg)
}

// fig7FS builds the macro-benchmark mount: 8 data disks ("all data are
// striped in eight disks").
func fig7FS(policy pfs.PolicyKind) pfs.Config {
	cfg := pfs.MiF(8).WithPolicy(policy)
	cfg.ReservationWindow = 2048
	return instrumented(cfg)
}

// runFig6a regenerates Figure 6(a): phase-2 throughput of the shared-file
// micro-benchmark as the stream count varies, for the reservation, static
// (fallocate), and on-demand preallocation strategies.
func runFig6a(scale float64) error {
	header("Figure 6(a): micro-benchmark throughput vs stream count")
	fmt.Printf("%-8s %14s %14s %14s %12s\n", "streams", "reservation", "static", "on-demand", "od/res gain")
	for _, clients := range []int{8, 12, 16} {
		mc := workload.DefaultMicroConfig(clients)
		mc.RegionBlocks = int64(float64(mc.RegionBlocks) * scale)
		var mbps [3]float64
		var extents [3]int
		for i, policy := range []pfs.PolicyKind{pfs.PolicyReservation, pfs.PolicyStatic, pfs.PolicyOnDemand} {
			res, err := workload.RunMicro(fig6FS(policy), mc)
			if err != nil {
				return err
			}
			mbps[i] = res.ReadMBps
			extents[i] = res.Extents
		}
		fmt.Printf("%-8d %9.1f MB/s %9.1f MB/s %9.1f MB/s %+11.0f%%   (extents %d/%d/%d)\n",
			clients*4, mbps[0], mbps[1], mbps[2], 100*(mbps[2]/mbps[0]-1),
			extents[0], extents[1], extents[2])
	}
	fmt.Println("paper: on-demand beats reservation by 17%/27%/48% at 32/48/64 procs; static 2-17% above on-demand")
	return nil
}

// runFig6b regenerates Figure 6(b): the impact of the allocation (request)
// size with 32 processes.
func runFig6b(scale float64) error {
	header("Figure 6(b): micro-benchmark throughput vs allocation size (32 procs)")
	fmt.Printf("%-12s %14s %14s %14s\n", "alloc size", "reservation", "static", "on-demand")
	for _, reqBlocks := range []int64{1, 2, 4, 8, 16} {
		mc := workload.DefaultMicroConfig(8)
		mc.RegionBlocks = int64(float64(mc.RegionBlocks) * scale)
		mc.RequestBlocks = reqBlocks
		var mbps [3]float64
		for i, policy := range []pfs.PolicyKind{pfs.PolicyReservation, pfs.PolicyStatic, pfs.PolicyOnDemand} {
			cfg := fig6FS(policy)
			// The reservation window is the "allocation size" knob
			// of this sweep: small windows model allocators that
			// reserve little ahead of the writes.
			cfg.ReservationWindow = reqBlocks * 16
			res, err := workload.RunMicro(cfg, mc)
			if err != nil {
				return err
			}
			mbps[i] = res.ReadMBps
		}
		fmt.Printf("%5d KiB    %9.1f MB/s %9.1f MB/s %9.1f MB/s\n",
			reqBlocks*4, mbps[0], mbps[1], mbps[2])
	}
	fmt.Println("paper: small allocation sizes leave reservation far behind; on-demand tracks static")
	return nil
}

// runFig7 regenerates Figure 7: IOR and BTIO under reservation vs
// on-demand, collective and non-collective.
func runFig7(scale float64) error {
	header("Figure 7: macro-benchmark throughput (16 nodes x 4 cores, 8 disks)")
	fmt.Printf("%-22s %14s %14s %12s\n", "benchmark", "reservation", "on-demand", "gain")
	type run struct {
		name       string
		collective bool
	}
	for _, r := range []run{{"IOR non-collective", false}, {"IOR collective", true},
		{"BTIO non-collective", false}, {"BTIO collective", true}} {
		var thr [2]float64
		for i, policy := range []pfs.PolicyKind{pfs.PolicyReservation, pfs.PolicyOnDemand} {
			var t float64
			if r.name[:3] == "IOR" {
				ic := workload.DefaultIORConfig(64)
				ic.BlocksPerProc = int64(float64(ic.BlocksPerProc) * scale)
				ic.Collective = r.collective
				res, err := workload.RunIOR(fig7FS(policy), ic)
				if err != nil {
					return err
				}
				t = res.Throughput
			} else {
				bc := workload.DefaultBTIOConfig(64)
				bc.Collective = r.collective
				res, err := workload.RunBTIO(fig7FS(policy), bc)
				if err != nil {
					return err
				}
				t = res.Throughput
			}
			thr[i] = t
		}
		fmt.Printf("%-22s %9.1f MB/s %9.1f MB/s %+11.0f%%\n", r.name, thr[0], thr[1], 100*(thr[1]/thr[0]-1))
	}
	fmt.Println("paper: on-demand above reservation; IOR gain smaller than BTIO (+19% BTIO non-collective);")
	fmt.Println("       collective I/O far above non-collective and shrinks the policy gap")
	return nil
}

// runTable1 regenerates Table I: segment counts and MDS CPU utilization for
// vanilla / reservation / on-demand on IOR and BTIO (non-collective).
func runTable1(scale float64) error {
	header("Table I: segments and MDS CPU utilization (non-collective runs)")
	fmt.Printf("%-13s %-6s %12s %16s\n", "Mode", "Apps", "Seg Counts", "CPU utilization")
	for _, policy := range []pfs.PolicyKind{pfs.PolicyVanilla, pfs.PolicyReservation, pfs.PolicyOnDemand} {
		ic := workload.DefaultIORConfig(64)
		ic.BlocksPerProc = int64(float64(ic.BlocksPerProc) * scale)
		ic.Interference = true
		ior, err := workload.RunIOR(fig7FS(policy), ic)
		if err != nil {
			return err
		}
		bc := workload.DefaultBTIOConfig(64)
		btio, err := workload.RunBTIO(fig7FS(policy), bc)
		if err != nil {
			return err
		}
		fmt.Printf("%-13s %-6s %12d %15.1f%%\n", policy, "IOR", ior.Extents, ior.MDSCPU)
		fmt.Printf("%-13s %-6s %12d %15.1f%%\n", policy, "BTIO", btio.Extents, btio.MDSCPU)
	}
	fmt.Println("paper: Vanilla 2023/1332, Reservation 1242/701, On-demand 231/106 segments;")
	fmt.Println("       CPU 7%/10%, 6%/8%, 1.1%/1.0% — on-demand cuts extents 5-10x vs reservation")
	return nil
}

// runFig8 regenerates Figure 8: Metarates disk-access counts and
// throughput for the utime/create/delete/readdir-stat workloads.
func runFig8(scale float64) error {
	header("Figure 8: Metarates metadata workloads (10 clients, 5000 files/dir)")
	systems := []struct {
		label  string
		layout mdfs.Layout
		htree  bool
	}{
		{"normal (Redbud)", mdfs.LayoutNormal, false},
		{"lustre-like", mdfs.LayoutNormal, true},
		{"embedded (MiF)", mdfs.LayoutEmbedded, false},
	}
	var base *workload.MetaratesResult
	fmt.Printf("%-16s %26s %26s %26s %26s\n", "system",
		"create (ops/s | req)", "utime (ops/s | req)", "readdir-stat (ops/s | req)", "delete (ops/s | req)")
	for i, sys := range systems {
		cfg := workload.DefaultMetaratesConfig(sys.layout)
		cfg.FilesPerDir = int(float64(cfg.FilesPerDir) * scale)
		cfg.Htree = sys.htree
		cfg.Metrics, cfg.Trace = benchReg, benchTracer
		res, err := workload.RunMetarates(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %12.0f | %9d %12.0f | %9d %12.0f | %9d %12.0f | %9d\n", sys.label,
			res.Create.OpsPerSec, res.Create.DiskRequests,
			res.Utime.OpsPerSec, res.Utime.DiskRequests,
			res.Readdir.OpsPerSec, res.Readdir.DiskRequests,
			res.Delete.OpsPerSec, res.Delete.DiskRequests)
		if i == 0 {
			base = &res
		} else if sys.layout == mdfs.LayoutEmbedded && base != nil {
			fmt.Printf("%-16s %+25.0f%% %+25.0f%% %+25.0f%% %+25.0f%%\n", "  vs normal",
				100*(res.Create.OpsPerSec/base.Create.OpsPerSec-1),
				100*(res.Utime.OpsPerSec/base.Utime.OpsPerSec-1),
				100*(res.Readdir.OpsPerSec/base.Readdir.OpsPerSec-1),
				100*(res.Delete.OpsPerSec/base.Delete.OpsPerSec-1))
		}
	}
	fmt.Println("paper: embedded improves metadata throughput by 23%-170%; readdir-stat request")
	fmt.Println("       reduction grows with directory size; Redbud-normal is close to Lustre")

	fmt.Println("\nreaddir-stat disk-request proportion (embedded/normal) vs directory size:")
	for _, files := range []int{1000, 2500, 5000} {
		n := workload.DefaultMetaratesConfig(mdfs.LayoutNormal)
		n.Clients = 4
		n.FilesPerDir = files
		n.Metrics, n.Trace = benchReg, benchTracer
		normal, err := workload.RunMetarates(n)
		if err != nil {
			return err
		}
		e := n
		e.Layout = mdfs.LayoutEmbedded
		embedded, err := workload.RunMetarates(e)
		if err != nil {
			return err
		}
		fmt.Printf("  %5d files/dir: %5.1f%%\n", files,
			100*float64(embedded.Readdir.DiskRequests)/float64(normal.Readdir.DiskRequests))
	}
	return nil
}

// runFig9 regenerates Figure 9: the impact of file system aging.
func runFig9(float64) error {
	header("Figure 9: impact of file system aging")
	fmt.Printf("%-14s %12s %16s %16s\n", "system", "utilization", "create ops/s", "delete ops/s")
	systems := []struct {
		layout mdfs.Layout
		htree  bool
	}{
		{mdfs.LayoutNormal, false},
		{mdfs.LayoutNormal, true},
		{mdfs.LayoutEmbedded, false},
	}
	for _, sys := range systems {
		for _, u := range []float64{0.1, 0.4, 0.6, 0.8} {
			cfg := workload.DefaultAgingConfig(sys.layout, u)
			cfg.Htree = sys.htree
			cfg.Metrics, cfg.Trace = benchReg, benchTracer
			res, err := workload.RunAging(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%-14s %11.0f%% %16.0f %16.0f\n",
				res.Config, 100*res.Utilization, res.CreatePerSec, res.DeletePerSec)
		}
	}
	fmt.Println("paper: at 80% capacity embedded creation drops 43%; deletion is not severely")
	fmt.Println("       compromised; embedded stays >26% above the traditional layouts")
	return nil
}

// runFig10 regenerates Figure 10: PostMark and the kernel-tree application
// mix, comparing execution time under the two directory placements.
func runFig10(scale float64) error {
	header("Figure 10: PostMark and applications (execution time)")
	pm := workload.DefaultPostMarkConfig()
	pm.FilesPerClient = int(float64(pm.FilesPerClient) * scale)
	pm.TransactionsPerClient = int(float64(pm.TransactionsPerClient) * scale)
	kt := workload.DefaultKernelTreeConfig()
	kt.Dirs = int(float64(kt.Dirs) * scale)

	type row struct {
		app    string
		normal sim.Ns
		mif    sim.Ns
	}
	var rows []row

	pmN, err := workload.RunPostMark(instrumented(pfs.RedbudOrig(4)), pm)
	if err != nil {
		return err
	}
	pmM, err := workload.RunPostMark(instrumented(pfs.MiF(4)), pm)
	if err != nil {
		return err
	}
	rows = append(rows, row{"PostMark", pmN.Elapsed, pmM.Elapsed})

	ktN, err := workload.RunKernelTree(instrumented(pfs.RedbudOrig(4)), kt)
	if err != nil {
		return err
	}
	ktM, err := workload.RunKernelTree(instrumented(pfs.MiF(4)), kt)
	if err != nil {
		return err
	}
	rows = append(rows,
		row{"tar", ktN.Tar.Elapsed, ktM.Tar.Elapsed},
		row{"make", ktN.Make.Elapsed, ktM.Make.Elapsed},
		row{"make-clean", ktN.MakeClean.Elapsed, ktM.MakeClean.Elapsed})

	fmt.Printf("%-12s %14s %14s %16s\n", "application", "normal", "MiF", "time reduction")
	for _, r := range rows {
		fmt.Printf("%-12s %13.2fs %13.2fs %15.1f%%\n", r.app,
			sim.Seconds(r.normal), sim.Seconds(r.mif), 100*(1-float64(r.mif)/float64(r.normal)))
	}
	fmt.Println("paper: 4-13% reduction for PostMark/tar/make-clean; ~4% for CPU-bound make")
	return nil
}
