package main

import (
	"fmt"

	"redbud/internal/pfs"
	"redbud/internal/sim"
	"redbud/internal/workload"
)

// runFailover measures object replication under an OST crash: an IOR-style
// write phase over 3-way-replicated files with one server blackholed
// midway, a full read-back while it is still dark (reads steer to live
// replicas), and a background re-replication drain that rebuilds the lost
// copies on the survivors. The run hard-fails on any client-visible I/O
// error or if redundancy is not fully restored.
func runFailover(scale float64) error {
	header("Failover: OST crash under 3-way replication (steering + re-replication)")
	cfg := workload.DefaultFailoverBenchConfig()
	cfg.FileBlocks = int64(float64(cfg.FileBlocks) * scale)
	if cfg.FileBlocks < cfg.RequestBlocks {
		cfg.FileBlocks = cfg.RequestBlocks
	}
	fmt.Printf("%-10s %3s %5s %11s %11s %9s %7s %9s %8s %10s\n",
		"profile", "rf", "crash", "write", "read", "failovers", "skips", "repaired", "repairs", "t-repair")
	for _, fsCfg := range []pfs.Config{
		instrumented(pfs.MiF(6)),
		instrumented(pfs.RedbudOrig(6)),
	} {
		res, err := workload.RunFailoverBench(fsCfg, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %3d ost%-2d %6.1f MB/s %6.1f MB/s %9d %7d %9d %8d %9.1fms\n",
			res.Config, res.RF, cfg.CrashOST,
			res.WriteMBps, res.ReadMBps,
			res.Stats.Failovers, res.Stats.SkippedWrites,
			res.Stats.RepairBlocks, res.Stats.RepairsDone,
			float64(res.TimeToRedundancyNs)/float64(sim.Millisecond))
		fmt.Printf("%-10s   under-replicated peak %d, steered reads %d, fan-out writes %d, repair slices %d (preempted %d, throttled %d)\n",
			res.Config, res.UnderReplPeak, res.Stats.SteeredReads, res.Stats.FanoutWrites,
			res.Stats.RepairSlices, res.Stats.Preempted, res.Stats.Throttled)
	}
	fmt.Println("writes fan out to all live replicas, reads steer around the dead server, and the repair engine restores rf on the survivors")
	return nil
}
