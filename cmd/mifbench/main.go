// Command mifbench regenerates every table and figure of the MiF paper's
// evaluation against the simulated Redbud parallel file system.
//
// Usage:
//
//	mifbench [flags] <experiment>
//
// Experiments:
//
//	fig6a    micro-benchmark throughput vs stream count (Figure 6a)
//	fig6b    micro-benchmark throughput vs allocation size (Figure 6b)
//	fig7     IOR and BTIO macro-benchmarks (Figure 7)
//	table1   segment counts and MDS CPU utilization (Table I)
//	fig8     Metarates metadata workloads (Figure 8)
//	fig9     file system aging impact (Figure 9)
//	fig10    PostMark and applications (Figure 10)
//	ablation design-choice sweeps beyond the paper
//	defrag   online-defragmentation recovery after aging
//	cache    client block cache off vs on (write-back aggregation, re-reads)
//	all      everything above in order
//
// With -telemetry <file>, every data-path mount is instrumented into a
// shared metrics registry and a per-phase snapshot (one entry per
// experiment) is written as JSON next to the printed results. With
// -trace <file>, request spans across the full IO path (pfs → mds/ost →
// iosched → disk) are recorded on the simulated timeline and written as
// Chrome trace_event JSON, with a "phase" marker at each experiment
// boundary; open it in chrome://tracing or Perfetto.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"redbud/internal/pfs"
	"redbud/internal/telemetry"
)

// benchReg and benchTracer, when non-nil, are attached to every mount the
// experiments build (via instrumented); phaseSnaps accumulates one registry
// snapshot per completed experiment.
var (
	benchReg    *telemetry.Registry
	benchTracer *telemetry.Tracer
	phaseSnaps  []phaseSnapshot
)

// phaseSnapshot is the per-experiment telemetry record written by
// -telemetry: the registry state after the named phase completed.
type phaseSnapshot struct {
	Phase   string                     `json:"phase"`
	Metrics []telemetry.MetricSnapshot `json:"metrics"`
}

// instrumented applies the session-wide telemetry attachments to one mount
// configuration. With neither flag set it is the identity.
func instrumented(cfg pfs.Config) pfs.Config {
	cfg.Metrics = benchReg
	cfg.Trace = benchTracer
	return cfg
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mifbench [flags] {fig6a|fig6b|fig7|table1|fig8|fig9|fig10|ablation|defrag|cache|all}\n")
		flag.PrintDefaults()
	}
	scale := flag.Float64("scale", 1.0, "workload scale factor (file sizes, file counts)")
	telemetryOut := flag.String("telemetry", "", "write per-phase metrics-registry snapshots (JSON) to this file")
	traceOut := flag.String("trace", "", "record request spans and write Chrome trace_event JSON to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *telemetryOut != "" {
		benchReg = telemetry.NewRegistry()
	}
	if *traceOut != "" {
		benchTracer = telemetry.NewTracer(nil)
	}
	exp := flag.Arg(0)
	runners := map[string]func(float64) error{
		"fig6a":    runFig6a,
		"fig6b":    runFig6b,
		"fig7":     runFig7,
		"table1":   runTable1,
		"fig8":     runFig8,
		"fig9":     runFig9,
		"fig10":    runFig10,
		"ablation": runAblation,
		"defrag":   runDefrag,
		"cache":    runCache,
	}
	var order = []string{"fig6a", "fig6b", "fig7", "table1", "fig8", "fig9", "fig10", "ablation", "defrag", "cache"}
	if exp != "all" {
		if _, ok := runners[exp]; !ok {
			flag.Usage()
			os.Exit(2)
		}
		order = []string{exp}
	}
	for _, name := range order {
		if err := runPhase(name, runners[name], *scale); err != nil {
			fmt.Fprintf(os.Stderr, "mifbench %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *telemetryOut != "" {
		writeOutput(*telemetryOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(phaseSnaps)
		})
	}
	if *traceOut != "" {
		writeOutput(*traceOut, benchTracer.WriteChromeTrace)
	}
}

// runPhase runs one experiment, bracketed by a phase marker on the trace
// timeline and followed by a registry snapshot.
func runPhase(name string, fn func(float64) error, scale float64) error {
	benchTracer.Mark("phase", name)
	if err := fn(scale); err != nil {
		return err
	}
	if benchReg != nil {
		phaseSnaps = append(phaseSnaps, phaseSnapshot{Phase: name, Metrics: benchReg.Snapshot()})
	}
	return nil
}

// writeOutput writes one exporter's output to path, exiting on failure.
func writeOutput(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mifbench: %v\n", err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "mifbench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "mifbench: close %s: %v\n", path, err)
		os.Exit(1)
	}
}

// header prints an experiment banner.
func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}
