// Command mifbench regenerates every table and figure of the MiF paper's
// evaluation against the simulated Redbud parallel file system.
//
// Usage:
//
//	mifbench [flags] <experiment>
//
// Experiments:
//
//	fig6a    micro-benchmark throughput vs stream count (Figure 6a)
//	fig6b    micro-benchmark throughput vs allocation size (Figure 6b)
//	fig7     IOR and BTIO macro-benchmarks (Figure 7)
//	table1   segment counts and MDS CPU utilization (Table I)
//	fig8     Metarates metadata workloads (Figure 8)
//	fig9     file system aging impact (Figure 9)
//	fig10    PostMark and applications (Figure 10)
//	ablation design-choice sweeps beyond the paper
//	all      everything above in order
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mifbench [flags] {fig6a|fig6b|fig7|table1|fig8|fig9|fig10|ablation|all}\n")
		flag.PrintDefaults()
	}
	scale := flag.Float64("scale", 1.0, "workload scale factor (file sizes, file counts)")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	exp := flag.Arg(0)
	runners := map[string]func(float64) error{
		"fig6a":    runFig6a,
		"fig6b":    runFig6b,
		"fig7":     runFig7,
		"table1":   runTable1,
		"fig8":     runFig8,
		"fig9":     runFig9,
		"fig10":    runFig10,
		"ablation": runAblation,
	}
	var order = []string{"fig6a", "fig6b", "fig7", "table1", "fig8", "fig9", "fig10", "ablation"}
	if exp == "all" {
		for _, name := range order {
			if err := runners[name](*scale); err != nil {
				fmt.Fprintf(os.Stderr, "mifbench %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	run, ok := runners[exp]
	if !ok {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*scale); err != nil {
		fmt.Fprintf(os.Stderr, "mifbench %s: %v\n", exp, err)
		os.Exit(1)
	}
}

// header prints an experiment banner.
func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}
