// Command mifbench regenerates every table and figure of the MiF paper's
// evaluation against the simulated Redbud parallel file system.
//
// Usage:
//
//	mifbench [flags] <experiment>
//
// Experiments:
//
//	fig6a    micro-benchmark throughput vs stream count (Figure 6a)
//	fig6b    micro-benchmark throughput vs allocation size (Figure 6b)
//	fig7     IOR and BTIO macro-benchmarks (Figure 7)
//	table1   segment counts and MDS CPU utilization (Table I)
//	fig8     Metarates metadata workloads (Figure 8)
//	fig9     file system aging impact (Figure 9)
//	fig10    PostMark and applications (Figure 10)
//	ablation design-choice sweeps beyond the paper
//	defrag   online-defragmentation recovery after aging
//	cache    client block cache off vs on (write-back aggregation, re-reads)
//	failover OST crash under replication (steering + re-replication)
//	crashsweep power-fail injection at every registered crash point
//	all      everything above in order
//
// With -telemetry <file>, every data-path mount is instrumented into a
// shared metrics registry and a per-phase snapshot (one entry per
// experiment) is written as JSON next to the printed results. With
// -trace <file>, request spans across the full IO path (pfs → mds/ost →
// iosched → disk) are recorded on the simulated timeline and written as
// Chrome trace_event JSON, with a "phase" marker at each experiment
// boundary; open it in chrome://tracing or Perfetto. With -spans <file>,
// the same spans are written in the raw redbud-spans/1 log format that
// `miftrace critpath` and `miftrace spans` consume.
//
// With -bench-json <file>, the run emits a schema-versioned performance
// snapshot (see internal/benchsnap): one record per experiment holding
// wall-clock and simulated totals, every counter, per-layer latency
// percentiles, time-series curves, and structured-event totals. The
// registry feeding it is recreated at each phase boundary so records are
// per-experiment (combining with -telemetry therefore turns its snapshots
// into per-phase deltas too). Compare two snapshots with
//
//	mifbench compare [-tolerance frac] [-warn-only] [-wall] [-v] <old> <new>
//
// which classifies each metric (volatile wall clock / cost / invariant),
// reports drift, and exits non-zero on regressions beyond tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"redbud/internal/benchsnap"
	"redbud/internal/pfs"
	"redbud/internal/telemetry"
)

// benchReg and benchTracer, when non-nil, are attached to every mount the
// experiments build (via instrumented); phaseSnaps accumulates one registry
// snapshot per completed experiment when -telemetry asked for them.
var (
	benchReg       *telemetry.Registry
	benchTracer    *telemetry.Tracer
	phaseSnaps     []phaseSnapshot
	wantPhaseSnaps bool
	// fsckWorkers is the -fsck-workers flag: the scan-stage pool width for
	// every recovery metadata fsck (reports are byte-identical at any
	// width, so this never changes experiment results).
	fsckWorkers int
)

// phaseSnapshot is the per-experiment telemetry record written by
// -telemetry: the registry state after the named phase completed.
type phaseSnapshot struct {
	Phase   string                     `json:"phase"`
	Metrics []telemetry.MetricSnapshot `json:"metrics"`
}

// instrumented applies the session-wide telemetry attachments to one mount
// configuration. With neither flag set it is the identity.
func instrumented(cfg pfs.Config) pfs.Config {
	cfg.Metrics = benchReg
	cfg.Trace = benchTracer
	return cfg
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		runCompare(os.Args[2:])
		return
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mifbench [flags] {fig6a|fig6b|fig7|table1|fig8|fig9|fig10|ablation|defrag|cache|failover|crashsweep|all}\n")
		fmt.Fprintf(os.Stderr, "       mifbench compare [-tolerance frac] [-warn-only] [-wall] [-v] <old.json> <new.json>\n")
		flag.PrintDefaults()
	}
	scale := flag.Float64("scale", 1.0, "workload scale factor (file sizes, file counts)")
	telemetryOut := flag.String("telemetry", "", "write per-phase metrics-registry snapshots (JSON) to this file")
	traceOut := flag.String("trace", "", "record request spans and write Chrome trace_event JSON to this file")
	spansOut := flag.String("spans", "", "record request spans and write the raw span log (for miftrace critpath) to this file")
	benchJSON := flag.String("bench-json", "", "write a benchsnap performance snapshot (BENCH_*.json) to this file")
	flag.IntVar(&fsckWorkers, "fsck-workers", 1, "scan-stage worker-pool width for recovery metadata fscks (crashsweep)")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *telemetryOut != "" {
		benchReg = telemetry.NewRegistry()
		wantPhaseSnaps = true
	}
	if *traceOut != "" || *spansOut != "" {
		benchTracer = telemetry.NewTracer(nil)
	}
	exp := flag.Arg(0)
	if *benchJSON != "" {
		benchSnap = benchsnap.New(exp, *scale)
		// The snapshot needs the simulated clock and per-op durations, so
		// a tracer is always attached; when nothing else wants the spans
		// themselves, they are discarded at each phase boundary.
		if benchTracer == nil {
			benchTracer = telemetry.NewTracer(nil)
			benchResetSpans = true
		}
	}
	runners := map[string]func(float64) error{
		"fig6a":      runFig6a,
		"fig6b":      runFig6b,
		"fig7":       runFig7,
		"table1":     runTable1,
		"fig8":       runFig8,
		"fig9":       runFig9,
		"fig10":      runFig10,
		"ablation":   runAblation,
		"defrag":     runDefrag,
		"cache":      runCache,
		"failover":   runFailover,
		"crashsweep": runCrashSweep,
	}
	var order = []string{"fig6a", "fig6b", "fig7", "table1", "fig8", "fig9", "fig10", "ablation", "defrag", "cache", "failover", "crashsweep"}
	if exp != "all" {
		if _, ok := runners[exp]; !ok {
			flag.Usage()
			os.Exit(2)
		}
		order = []string{exp}
	}
	for _, name := range order {
		if err := runPhase(name, runners[name], *scale); err != nil {
			fmt.Fprintf(os.Stderr, "mifbench %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *telemetryOut != "" {
		writeOutput(*telemetryOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(phaseSnaps)
		})
	}
	if *traceOut != "" {
		writeOutput(*traceOut, benchTracer.WriteChromeTrace)
	}
	if *spansOut != "" {
		writeOutput(*spansOut, benchTracer.WriteSpanLog)
	}
	if benchSnap != nil {
		writeOutput(*benchJSON, benchSnap.Write)
	}
}

// runPhase runs one experiment, bracketed by a phase marker on the trace
// timeline and followed by a registry snapshot. With -bench-json the
// registry is recreated per phase (records are per-experiment state) and
// a benchsnap collector brackets the run.
func runPhase(name string, fn func(float64) error, scale float64) error {
	if benchSnap != nil {
		benchReg = telemetry.NewRegistry()
	}
	benchTracer.Mark("phase", name)
	var col *benchsnap.Collector
	if benchSnap != nil {
		col = benchsnap.StartExperiment(benchReg, benchTracer)
	}
	if err := fn(scale); err != nil {
		return err
	}
	if wantPhaseSnaps {
		phaseSnaps = append(phaseSnaps, phaseSnapshot{Phase: name, Metrics: benchReg.Snapshot()})
	}
	if col != nil {
		benchSnap.Experiments = append(benchSnap.Experiments, col.Finish(name))
		if benchResetSpans {
			benchTracer.Reset()
		}
	}
	return nil
}

// writeOutput writes one exporter's output to path, exiting on failure.
func writeOutput(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mifbench: %v\n", err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "mifbench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "mifbench: close %s: %v\n", path, err)
		os.Exit(1)
	}
}

// header prints an experiment banner.
func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}
