package main

import (
	"flag"
	"fmt"
	"os"

	"redbud/internal/benchsnap"
)

// Benchmark-snapshot session state. With -bench-json, benchSnap collects
// one benchsnap.Experiment per phase; benchResetSpans marks that the
// session's tracer exists only to time the snapshot (no -trace/-spans
// output), so its span buffer can be discarded at each phase boundary to
// bound memory — Reset keeps the clock running.
var (
	benchSnap       *benchsnap.Snapshot
	benchResetSpans bool
)

// runCompare implements the `mifbench compare <old> <new>` subcommand:
// diff two BENCH_*.json snapshots against per-metric tolerances. Exits 1
// when a regression exceeds tolerance (unless -warn-only), 2 on usage or
// read errors.
func runCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mifbench compare [-tolerance frac] [-warn-only] [-wall] [-v] <old.json> <new.json>\n")
		fs.PrintDefaults()
	}
	tol := fs.Float64("tolerance", benchsnap.DefaultTolerance,
		"allowed relative drift before a metric regresses (cost metrics fail only upward)")
	warn := fs.Bool("warn-only", false, "report regressions but always exit 0")
	verbose := fs.Bool("v", false, "list every drifted metric, not just the largest")
	wall := fs.Bool("wall", false, "append a per-experiment wall-clock delta table (informational)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	old := readSnapshot(fs.Arg(0))
	cur := readSnapshot(fs.Arg(1))
	res := benchsnap.Compare(old, cur, benchsnap.Options{Tolerance: *tol, WarnOnly: *warn})
	if err := res.WriteText(os.Stdout, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "mifbench compare: %v\n", err)
		os.Exit(2)
	}
	if *wall {
		if err := benchsnap.WriteWallTable(os.Stdout, benchsnap.WallDeltas(old, cur)); err != nil {
			fmt.Fprintf(os.Stderr, "mifbench compare: %v\n", err)
			os.Exit(2)
		}
	}
	if res.Failed {
		os.Exit(1)
	}
}

// readSnapshot loads one snapshot file, exiting on failure.
func readSnapshot(path string) *benchsnap.Snapshot {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mifbench compare: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	s, err := benchsnap.Read(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mifbench compare: %s: %v\n", path, err)
		os.Exit(2)
	}
	return s
}
