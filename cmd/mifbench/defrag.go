package main

import (
	"fmt"

	"redbud/internal/pfs"
	"redbud/internal/workload"
)

// runDefrag measures online-defragmentation recovery: age a volume with
// interleaved writers, read it sequentially, defragment, read again, and
// compare against a never-aged mount of the same configuration. The
// vanilla arm shows the repair story (aging collapses throughput, defrag
// restores it); the MiF arm shows prevention (on-demand preallocation
// leaves the engine almost nothing to do).
func runDefrag(scale float64) error {
	header("Defrag: sequential read recovery after aging (aged → defragged → fresh)")
	cfg := workload.DefaultDefragBenchConfig()
	cfg.FileBlocks = int64(float64(cfg.FileBlocks) * scale)
	fmt.Printf("%-10s %11s %11s %11s %10s %16s %14s %12s\n",
		"profile", "aged", "defragged", "fresh", "recovered", "extents a/d/f", "positionings", "moved")
	for _, fsCfg := range []pfs.Config{
		instrumented(pfs.MiF(5).WithPolicy(pfs.PolicyVanilla)),
		instrumented(pfs.MiF(5)),
	} {
		res, err := workload.RunDefragBench(fsCfg, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %6.1f MB/s %6.1f MB/s %6.1f MB/s %9.0f%% %16s %14s %9d bl\n",
			res.Config,
			res.AgedReadMBps, res.DefraggedReadMBps, res.FreshReadMBps, res.RecoveredPercent,
			fmt.Sprintf("%d/%d/%d", res.AgedExtents, res.DefraggedExtents, res.FreshExtents),
			fmt.Sprintf("%d→%d", res.AgedPositionings, res.DefraggedPositionings),
			res.BlocksMoved)
	}
	fmt.Println("defrag rewrites each object into one reserved contiguous run; extent counts never increase")
	return nil
}
