package main

import (
	"fmt"
	"os"

	"redbud/internal/workload"
)

// runCrashSweep executes the systematic crash-point sweep: every
// registered crash point (journal commit/checkpoint, IO-server
// write/flush/truncate/migrate, replica repair, cache barriers) is armed
// in turn with each applicable power-fail tear mode, the mount is killed
// there, recovered (journal replay, remount, IO-server scrub,
// re-replication), and verified. The experiment hard-fails unless every
// run recovers to a consistent state. The sweep's cost is fixed by the
// registry, not the benchmark scale, so -scale is ignored.
func runCrashSweep(scale float64) error {
	header("Crash sweep: power-fail injection at every registered crash point")
	_ = scale
	cfg := workload.DefaultCrashSweepConfig()
	cfg.Metrics = benchReg
	cfg.FsckWorkers = fsckWorkers
	rep, err := workload.RunCrashSweep(cfg)
	if err != nil {
		return err
	}
	rep.Write(os.Stdout)
	if !rep.Passed() {
		return fmt.Errorf("crash sweep failed: %d of %d runs did not recover consistent", rep.Failures(), len(rep.Runs))
	}
	fmt.Println("every crash point recovered to an fsck-clean, fully replicated state with all acknowledged data readable")
	return nil
}
