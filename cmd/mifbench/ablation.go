package main

import (
	"fmt"

	"redbud/internal/core"
	"redbud/internal/pfs"
	"redbud/internal/workload"
)

// runAblation sweeps the design knobs DESIGN.md calls out, beyond the
// paper's own figures.
func runAblation(scale float64) error {
	header("Ablation: window scale factor (paper uses 2 or 4)")
	mc := workload.DefaultMicroConfig(16)
	mc.RegionBlocks = int64(float64(mc.RegionBlocks) * scale)
	fmt.Printf("%-8s %14s %10s\n", "scale", "read MB/s", "extents")
	for _, s := range []int64{2, 4, 8} {
		cfg := fig6FS(pfs.PolicyOnDemand)
		cfg.OnDemand.Scale = s
		res, err := workload.RunMicro(cfg, mc)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %9.1f MB/s %10d\n", s, res.ReadMBps, res.Extents)
	}

	header("Ablation: max_preallocation_size (tunable cap)")
	fmt.Printf("%-10s %14s %10s\n", "cap", "read MB/s", "extents")
	for _, capBlocks := range []int64{64, 256, 1024, 2048, 8192} {
		cfg := fig6FS(pfs.PolicyOnDemand)
		cfg.OnDemand.MaxPreallocBlocks = capBlocks
		res, err := workload.RunMicro(cfg, mc)
		if err != nil {
			return err
		}
		fmt.Printf("%6d KiB %9.1f MB/s %10d\n", capBlocks*4, res.ReadMBps, res.Extents)
	}

	header("Ablation: miss threshold under a sequential+random stream mix")
	fmt.Printf("%-10s %14s %12s\n", "threshold", "read MB/s", "extents")
	for _, th := range []int{1, 2, 4, 16} {
		cfg := fig6FS(pfs.PolicyOnDemand)
		cfg.OnDemand.MissThreshold = th
		stats, res, err := mixedStreamRun(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-10d %9.1f MB/s %12d\n", th, res, stats.extents)
	}

	header("Ablation: delayed allocation vs on-demand under fsync pressure")
	fmt.Printf("%-14s %18s %18s\n", "fsync every", "delayed-alloc", "on-demand")
	for _, every := range []int64{0, 64, 16, 4, 1} {
		cfgD := fig6FS(pfs.PolicyVanilla)
		cfgD.OST.DelayedAllocation = true
		extD, mbD, err := workload.RunSyncPressure(cfgD, every)
		if err != nil {
			return err
		}
		extO, mbO, err := workload.RunSyncPressure(fig6FS(pfs.PolicyOnDemand), every)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%d reqs", every)
		if every == 0 {
			label = "never"
		}
		fmt.Printf("%-14s %7.1f MB/s %5de %7.1f MB/s %5de\n", label, mbD, extD, mbO, extO)
	}
	fmt.Println("paper (§2): delayed allocation \"does not fit application with explicit sync")
	fmt.Println("requests well\"; on-demand improves placement \"without any runtime assumption\"")

	header("Ablation: elevator queue window (reservation layout reads)")
	fmt.Printf("%-10s %14s\n", "window", "read MB/s")
	for _, depth := range []int{1, 16, 64, 0} {
		cfg := fig6FS(pfs.PolicyReservation)
		cfg.OST.QueueDepth = depth
		res, err := workload.RunMicro(cfg, mc)
		if err != nil {
			return err
		}
		label := fmt.Sprint(depth)
		if depth == 0 {
			label = "unbounded"
		}
		fmt.Printf("%-10s %9.1f MB/s\n", label, res.ReadMBps)
	}
	return nil
}

// mixStats carries the mixed-stream ablation counters.
type mixStats struct {
	extents int
}

// mixedStreamRun drives one sequential stream interposed by random
// writers, returning the sequential region's layout quality.
func mixedStreamRun(cfg pfs.Config) (mixStats, float64, error) {
	fs, err := pfs.New(cfg)
	if err != nil {
		return mixStats{}, 0, err
	}
	f, err := fs.Create(fs.Root(), "mix.dat", 0)
	if err != nil {
		return mixStats{}, 0, err
	}
	seq := core.StreamID{Client: 1, PID: 1}
	const region = 4096
	randOffsets := []int64{90000, 95000, 91234, 99999, 93000, 97000}
	for i := int64(0); i < region; i += 8 {
		if err := f.Write(seq, i, 8); err != nil {
			return mixStats{}, 0, err
		}
		rnd := core.StreamID{Client: 2, PID: uint32(i % 3)}
		if err := f.Write(rnd, randOffsets[int(i/8)%len(randOffsets)]+i, 1); err != nil {
			return mixStats{}, 0, err
		}
	}
	fs.Flush()
	extents, err := fs.TotalExtents(f)
	if err != nil {
		return mixStats{}, 0, err
	}
	fs.ResetDataStats()
	for i := int64(0); i < region; i += 64 {
		if err := f.Read(i, 64); err != nil {
			return mixStats{}, 0, err
		}
	}
	fs.Flush()
	elapsed := fs.DataBusyMax()
	mbps := float64(region*4096) / 1e6 / (float64(elapsed) / 1e9)
	return mixStats{extents: extents}, mbps, nil
}
