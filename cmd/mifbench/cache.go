package main

import (
	"fmt"

	"redbud/internal/pfs"
	"redbud/internal/workload"
)

// runCache measures the client-side block cache: the Figure 1 aging
// pattern (interleaved small sequential writers) plus two sequential
// re-read passes, each profile run with the cache off and on over the same
// deterministic request sequence. Write-back aggregation coalesces the
// small writes into few large RPCs (fewer positionings, less
// fragmentation pressure on the vanilla allocator); the re-read second
// pass is served from client memory. Each arm measures through its own
// private registry, so -telemetry snapshots are unaffected by this phase.
func runCache(scale float64) error {
	header("Cache: client block cache off vs on (interleaved small writes + re-reads)")
	cfg := workload.DefaultCacheBenchConfig()
	cfg.FileBlocks = int64(float64(cfg.FileBlocks) * scale)
	fmt.Printf("%-10s %-5s %10s %13s %8s %11s %12s %12s\n",
		"profile", "cache", "write-rpcs", "positionings", "extents", "write", "reread-rpcs", "reread")
	// positionings = disk head movements summed over all three phases
	// (write + both re-read passes); reread = second-pass throughput, with
	// "mem" when every block came from client memory and the disks never
	// turned.
	for _, fsCfg := range []pfs.Config{
		instrumented(pfs.MiF(5).WithPolicy(pfs.PolicyVanilla)),
		instrumented(pfs.MiF(5)),
	} {
		res, err := workload.RunCacheBench(fsCfg, cfg)
		if err != nil {
			return err
		}
		for _, arm := range []workload.CacheArmResult{res.Off, res.On} {
			state := "off"
			if arm.CacheOn {
				state = "on"
			}
			reread := fmt.Sprintf("%6.1f MB/s", arm.Pass2MBps)
			if arm.Pass2ReadRPCs == 0 && arm.CacheOn {
				reread = "        mem"
			}
			fmt.Printf("%-10s %-5s %10d %13d %8d %6.1f MB/s %12s %s\n",
				res.Config, state,
				arm.WriteRPCs, arm.TotalPositionings(), arm.Extents, arm.WriteMBps,
				fmt.Sprintf("%d→%d", arm.Pass1ReadRPCs, arm.Pass2ReadRPCs), reread)
		}
		on := res.On.Cache
		var coalesce float64
		if on.Writebacks > 0 {
			coalesce = float64(on.WritebackBlocks) / float64(on.Writebacks)
		}
		fmt.Printf("%-10s cache-on internals: %.0f blocks/write-back, %d hits / %d misses, %d evicted, readahead %d issued / %d used\n",
			res.Config, coalesce, on.HitBlocks, on.MissBlocks, on.EvictedBlocks, on.ReadaheadIssued, on.ReadaheadUsed)
	}
	fmt.Println("write-back aggregation turns interleaved small writes into few large RPCs; re-read pass 2 is served from client memory")
	return nil
}
