// Command mifctl formats a Redbud instance and runs ad-hoc file operations
// against it, printing placement and fragmentation reports. It is the
// interactive inspection tool for the simulator: a REPL-less batch CLI
// driven by a small op script.
//
// Usage:
//
//	mifctl [flags] <script>
//
// where <script> is a file (or - for stdin) of one operation per line:
//
//	mkdir <path>
//	create <path> [sizeBlocks]
//	write <path> <stream> <blk> <count>
//	read <path> <blk> <count>
//	delete <path>
//	ls <path>
//	layout <path>
//	defrag
//	sync
//	report
//	stats
//	crash <ost>
//	revive <ost>
//	repair
//	replicas <path>
//
// With -cache, the mount carries the client-side block cache: writes are
// absorbed and aggregated client-side until a barrier (`sync`, delete, or
// an implicit close/truncate) writes them back, and `report` adds a cache
// line. The layer=cache metrics appear in `stats`.
//
// With -rf N (N > 1), every stripe component carries an N-way replica set:
// writes fan out to all live copies, reads steer to the least-loaded one,
// and `crash`/`revive` blackhole and restore an IO server. `repair` drains
// the background re-replication engine, `replicas <path>` prints a file's
// per-component replica sets, and `report` adds per-OST placement and
// replica-state lines. The layer=replica metrics appear in `stats`.
//
// Every mount is instrumented into a telemetry registry; `stats` dumps the
// live registry (counters, gauges, per-layer latency histograms, time
// series, structured events) as aligned tables. `report` adds a "path:"
// line — the session's request latency attributed per layer by the span
// critical-path analyzer — and an "events:" line when structured events
// (retries, timeouts, evictions, defrag preemptions) occurred. The session
// is always span-traced; with -trace <file> the spans are additionally
// written as Chrome trace_event JSON, openable in chrome://tracing or
// Perfetto.
//
// Example:
//
//	echo 'create /a.dat
//	write /a.dat 1.1 0 64
//	write /a.dat 2.1 1024 64
//	layout /a.dat
//	report
//	stats' | mifctl -policy on-demand -trace trace.json -
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"redbud/internal/cache"
	"redbud/internal/core"
	"redbud/internal/inode"
	"redbud/internal/pfs"
	"redbud/internal/replica"
	"redbud/internal/rpc"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

func main() {
	policy := flag.String("policy", "on-demand", "placement policy: vanilla|reservation|on-demand|static")
	layout := flag.String("layout", "embedded", "directory layout: normal|embedded")
	osts := flag.Int("osts", 4, "number of IO servers")
	cacheOn := flag.Bool("cache", false, "mount with the client-side block cache (default tuning)")
	rf := flag.Int("rf", 1, "replication factor: N-way replica sets when > 1 (enables crash/revive/repair/replicas)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the session to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mifctl [flags] <script|->")
		os.Exit(2)
	}

	cfg := pfs.MiF(*osts)
	switch *policy {
	case "vanilla":
		cfg = cfg.WithPolicy(pfs.PolicyVanilla)
	case "reservation":
		cfg = cfg.WithPolicy(pfs.PolicyReservation)
	case "on-demand":
		cfg = cfg.WithPolicy(pfs.PolicyOnDemand)
	case "static":
		cfg = cfg.WithPolicy(pfs.PolicyStatic)
	default:
		log.Fatalf("unknown policy %q", *policy)
	}
	if *layout == "normal" {
		base := pfs.RedbudOrig(*osts)
		cfg.MDS = base.MDS
	}
	cfg.Name = fmt.Sprintf("%s/%s", *policy, *layout)
	if *cacheOn {
		cc := cache.DefaultConfig()
		cfg.Cache = &cc
		cfg.Name += "+cache"
	}
	if *rf > 1 {
		rc := replica.DefaultConfig()
		rc.RF = *rf
		cfg.Replication = &rc
		// crash/revive need the fault transport; zero rates keep the wire
		// fault-free otherwise.
		cfg.RPC.Fault = &rpc.FaultConfig{Seed: 1}
		cfg.RPC.Retry = &rpc.RetryPolicy{TimeoutNs: 2 * sim.Millisecond, MaxRetries: 2}
		cfg.Name += fmt.Sprintf("+rf%d", *rf)
	}

	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	// The session is always traced: `report` feeds the spans through the
	// critical-path analyzer for its per-layer breakdown line. -trace
	// only decides whether the spans are also written out.
	tr := telemetry.NewTracer(nil)
	cfg.Trace = tr

	fs, err := pfs.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var in io.Reader
	if flag.Arg(0) == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	if err := run(fs, reg, tr, in, os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

// session tracks open handles by path.
type session struct {
	fs    *pfs.FS
	reg   *telemetry.Registry
	tr    *telemetry.Tracer
	files map[string]*pfs.File
}

// resolveDir walks the parent directories of path, creating nothing.
func (s *session) resolveDir(path string) (inode.Ino, string, error) {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	dir := s.fs.Root()
	for _, p := range parts[:len(parts)-1] {
		ino, err := s.fs.MDS().Lookup(dir, p)
		if err != nil {
			return 0, "", fmt.Errorf("%s: %w", path, err)
		}
		dir = ino
	}
	return dir, parts[len(parts)-1], nil
}

// run executes the op script.
func run(fs *pfs.FS, reg *telemetry.Registry, tr *telemetry.Tracer, in io.Reader, out io.Writer) error {
	s := &session{fs: fs, reg: reg, tr: tr, files: make(map[string]*pfs.File)}
	sc := bufio.NewScanner(in)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if err := s.exec(out, fields); err != nil {
			return fmt.Errorf("line %d (%s): %w", line, fields[0], err)
		}
	}
	return sc.Err()
}

// exec dispatches one script operation.
func (s *session) exec(out io.Writer, f []string) error {
	arg := func(i int) string {
		if i < len(f) {
			return f[i]
		}
		return ""
	}
	num := func(i int) int64 {
		n, _ := strconv.ParseInt(arg(i), 10, 64)
		return n
	}
	switch f[0] {
	case "mkdir":
		dir, name, err := s.resolveDir(arg(1))
		if err != nil {
			return err
		}
		_, err = s.fs.Mkdir(dir, name)
		return err
	case "create":
		dir, name, err := s.resolveDir(arg(1))
		if err != nil {
			return err
		}
		h, err := s.fs.Create(dir, name, num(2))
		if err != nil {
			return err
		}
		s.files[arg(1)] = h
		return nil
	case "write":
		h, err := s.handle(arg(1))
		if err != nil {
			return err
		}
		stream, err := parseStream(arg(2))
		if err != nil {
			return err
		}
		return h.Write(stream, num(3), num(4))
	case "read":
		h, err := s.handle(arg(1))
		if err != nil {
			return err
		}
		return h.Read(num(2), num(3))
	case "delete":
		dir, name, err := s.resolveDir(arg(1))
		if err != nil {
			return err
		}
		delete(s.files, arg(1))
		return s.fs.Delete(dir, name)
	case "ls":
		dir := s.fs.Root()
		if arg(1) != "/" && arg(1) != "" {
			d, name, err := s.resolveDir(arg(1) + "/.")
			if err != nil {
				return err
			}
			_ = name
			dir = d
		}
		recs, err := s.fs.MDS().ReaddirPlus(dir)
		if err != nil {
			return err
		}
		for _, r := range recs {
			fmt.Fprintf(out, "%-10v %-6d %s\n", r.Ino, r.Size, r.Name)
		}
		return nil
	case "layout":
		h, err := s.handle(arg(1))
		if err != nil {
			return err
		}
		n, err := s.fs.TotalExtents(h)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: %d extents across %d OSTs\n", arg(1), n, s.fs.OSTs())
		for i := 0; i < s.fs.OSTs(); i++ {
			exts, err := s.fs.OST(i).Extents(h.ObjectID(i))
			if err != nil {
				continue
			}
			fmt.Fprintf(out, "  ost%d:", i)
			for j, e := range exts {
				if j == 8 {
					fmt.Fprintf(out, " … (+%d more)", len(exts)-8)
					break
				}
				fmt.Fprintf(out, " %v", e)
			}
			fmt.Fprintln(out)
		}
		return nil
	case "sync":
		return s.fs.Sync()
	case "report":
		s.fs.Flush()
		st := s.fs.DataStats()
		fmt.Fprintf(out, "data: %d requests, %d positionings, %d blocks written, %d read, busy %.2f ms\n",
			st.Requests, st.Positionings, st.BlocksWritten, st.BlocksRead, sim.Seconds(st.BusyNs)*1e3)
		m := s.fs.MDS().Stats()
		fmt.Fprintf(out, "mds:  %d RPCs, %d extent ops, cpu %.2f ms\n",
			m.RPCs, m.ExtentOps, sim.Seconds(m.CPUNs)*1e3)
		if c := s.fs.Cache(); c != nil {
			cs := c.Stats()
			fmt.Fprintf(out, "cache: %d hits, %d misses, %d dirty, %d cached, %d write-backs (%d blocks), %d evicted\n",
				cs.HitBlocks, cs.MissBlocks, cs.DirtyBlocks, cs.CachedBlocks, cs.Writebacks, cs.WritebackBlocks, cs.EvictedBlocks)
		}
		// Per-OST placement: how objects and used capacity spread over the
		// servers (the balance the replica spread policy optimizes).
		fmt.Fprint(out, "placement:")
		for i := 0; i < s.fs.OSTs(); i++ {
			srv := s.fs.OST(i)
			fmt.Fprintf(out, " ost%d %d objs/%d blks", i, srv.ObjectCount(), srv.UsedBlocks())
			if mgr := s.fs.Replication(); mgr != nil && mgr.Down(i) {
				fmt.Fprint(out, " DOWN")
			}
		}
		fmt.Fprintln(out)
		if mgr := s.fs.Replication(); mgr != nil {
			rs := mgr.Stats()
			fmt.Fprintf(out, "replica: rf=%d, %d components (%d under-replicated), %d osts down, %d fan-out writes, %d skipped, %d steered reads, %d failovers, %d repairs (%d blocks)\n",
				mgr.RF(), mgr.Components(), mgr.UnderReplicated(), mgr.DownCount(),
				rs.FanoutWrites, rs.SkippedWrites, rs.SteeredReads, rs.Failovers, rs.RepairsDone, rs.RepairBlocks)
		}
		// Per-layer latency breakdown: attribute the session's request
		// latency to layers via the span critical-path analyzer.
		if rep := telemetry.AnalyzeCritPath(s.tr.Spans(), 0); rep.Roots > 0 {
			fmt.Fprintf(out, "path: %d ops, %.2f ms total", rep.Roots, sim.Seconds(rep.TotalNs)*1e3)
			for _, lt := range rep.Layers {
				fmt.Fprintf(out, ", %s %.1f%%", lt.Layer, 100*float64(lt.SelfNs)/float64(rep.TotalNs))
			}
			if rep.UntrackedNs > 0 {
				fmt.Fprintf(out, ", untracked %.1f%%", 100*float64(rep.UntrackedNs)/float64(rep.TotalNs))
			}
			fmt.Fprintln(out)
		}
		if evs := s.reg.Events().Counts(); len(evs) > 0 {
			fmt.Fprint(out, "events:")
			for _, ec := range evs {
				fmt.Fprintf(out, " %s/%s %d", ec.Layer, ec.Kind, ec.Count)
			}
			fmt.Fprintln(out)
		}
		return nil
	case "stats":
		return s.reg.WriteText(out)
	case "defrag":
		// Migrate every fragmented object into a contiguous reserved
		// run, printing a per-OST before/after fragmentation report.
		s.fs.Flush()
		type snap struct{ objects, extents, ideal int }
		before := make([]snap, s.fs.OSTs())
		for i := range before {
			for _, r := range s.fs.OST(i).FragReportAll() {
				before[i].objects++
				before[i].extents += r.Extents
				before[i].ideal += r.IdealExtents
			}
		}
		st, err := s.fs.Defrag().Run()
		if err != nil {
			return err
		}
		for i := range before {
			after := 0
			for _, r := range s.fs.OST(i).FragReportAll() {
				after += r.Extents
			}
			fmt.Fprintf(out, "ost%d: %d objects, %d extents → %d (ideal %d)\n",
				i, before[i].objects, before[i].extents, after, before[i].ideal)
		}
		fmt.Fprintf(out, "defrag: migrated %d objects, moved %d blocks in %d slices, device busy %.2f ms\n",
			st.ObjectsMigrated, st.BlocksMoved, st.Slices, sim.Seconds(st.MoveNs)*1e3)
		return nil
	case "crash":
		return s.fs.CrashOST(int(num(1)))
	case "revive":
		return s.fs.ReviveOST(int(num(1)))
	case "repair":
		mgr := s.fs.Replication()
		if mgr == nil {
			return fmt.Errorf("mount is not replicated (run with -rf)")
		}
		before := mgr.Stats()
		if err := s.fs.RepairDrain(); err != nil {
			return err
		}
		after := mgr.Stats()
		fmt.Fprintf(out, "repair: %d jobs, %d blocks in %d slices, %d components still under-replicated\n",
			after.RepairsDone-before.RepairsDone, after.RepairBlocks-before.RepairBlocks,
			after.RepairSlices-before.RepairSlices, mgr.UnderReplicated())
		return nil
	case "replicas":
		mgr := s.fs.Replication()
		if mgr == nil {
			return fmt.Errorf("mount is not replicated (run with -rf)")
		}
		h, err := s.handle(arg(1))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: rf=%d\n", arg(1), mgr.RF())
		for c := 0; c < s.fs.OSTs(); c++ {
			members, obj, ok := mgr.Members(h.Ino(), c)
			if !ok {
				continue
			}
			fmt.Fprintf(out, "  comp%d obj%d:", c, obj)
			for _, m := range members {
				state := ""
				if m.Down {
					state += "!down"
				}
				if m.Stale {
					state += "!stale"
				}
				fmt.Fprintf(out, " ost%d%s", m.OST, state)
			}
			fmt.Fprintln(out)
		}
		return nil
	default:
		return fmt.Errorf("unknown op %q", f[0])
	}
}

// handle fetches (or opens) the handle for a path.
func (s *session) handle(path string) (*pfs.File, error) {
	if h, ok := s.files[path]; ok {
		return h, nil
	}
	dir, name, err := s.resolveDir(path)
	if err != nil {
		return nil, err
	}
	h, err := s.fs.Open(dir, name)
	if err != nil {
		return nil, err
	}
	s.files[path] = h
	return h, nil
}

// parseStream parses "client.pid".
func parseStream(v string) (core.StreamID, error) {
	parts := strings.SplitN(v, ".", 2)
	if len(parts) != 2 {
		return core.StreamID{}, fmt.Errorf("stream %q: want client.pid", v)
	}
	c, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return core.StreamID{}, err
	}
	p, err := strconv.ParseUint(parts[1], 10, 32)
	if err != nil {
		return core.StreamID{}, err
	}
	return core.StreamID{Client: uint32(c), PID: uint32(p)}, nil
}
