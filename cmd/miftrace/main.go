// Command miftrace generates and replays block-level workload traces
// against a Redbud configuration — the tool for exploring how arrival
// patterns shape on-disk placement under each preallocation policy.
//
// Usage:
//
//	miftrace gen -pattern shared|strided|random -streams N -region B > t.trace
//	miftrace replay [-policy P] [-drop-rate R] [-spans s.json] [-telemetry m.json] <t.trace|->
//	miftrace spans [-o chrome.json] <s.json|->
//	miftrace critpath [-top K] <s.json|->
//
// The trace format is defined by internal/trace: one op per line,
// `W <client>.<pid> <blk> <count>` or `R <blk> <count>`.
//
// With -spans, replay records every operation's per-layer spans on the
// simulated timeline and writes them as a span-log JSON document; with
// -telemetry it writes the mount's metrics-registry snapshot as JSON. The
// spans subcommand converts a recorded span log into Chrome trace_event
// JSON for chrome://tracing or Perfetto. The critpath subcommand runs the
// critical-path analyzer over a span log: per-request latency is
// attributed to the layer that actually spent it (a span's self time is
// its duration minus its children's), printed as a per-layer breakdown
// plus the top-K slowest requests with their own decompositions.
//
// With -drop-rate, replay splices the deterministic fault injector into
// the rpc transport: requests are lost at the given rate (responses at
// half of it), the client retries with backoff, and the run reports the
// rpc-layer fault/retry counters — a quick proof that a trace completes
// under message loss.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"redbud/internal/pfs"
	"redbud/internal/rpc"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
	"redbud/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: miftrace {gen|replay|spans|critpath} [flags]")
		os.Exit(2)
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "spans":
		spans(os.Args[2:])
	case "critpath":
		critpath(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "miftrace: unknown subcommand %q\n", os.Args[1])
		os.Exit(2)
	}
}

// gen writes a synthetic trace to stdout.
func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	pattern := fs.String("pattern", "shared", "shared|strided|random")
	streams := fs.Int("streams", 16, "number of write streams")
	region := fs.Int64("region", 512, "blocks per stream region")
	req := fs.Int64("req", 8, "request size in blocks")
	seed := fs.Uint64("seed", 1, "generator seed")
	fs.Parse(args)

	ops, err := trace.Generate(trace.GenConfig{
		Pattern:       *pattern,
		Streams:       *streams,
		RegionBlocks:  *region,
		RequestBlocks: *req,
		ReadBack:      true,
		Seed:          *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.Write(os.Stdout, ops); err != nil {
		log.Fatal(err)
	}
}

// replay executes a trace against a fresh mount and reports placement.
func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	policy := fs.String("policy", "on-demand", "vanilla|reservation|on-demand|static")
	osts := fs.Int("osts", 4, "IO server count")
	spansOut := fs.String("spans", "", "record per-layer spans and write the span log (JSON) to this file")
	telemetryOut := fs.String("telemetry", "", "write the metrics-registry snapshot (JSON) to this file")
	dropRate := fs.Float64("drop-rate", 0, "inject message loss at this rate (0..1); requests drop at the rate, responses at half of it")
	faultSeed := fs.Uint64("fault-seed", 1, "fault injector seed (with -drop-rate)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: miftrace replay [flags] <trace|->")
	}

	var in io.Reader = os.Stdin
	if fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	ops, err := trace.Read(in)
	if err != nil {
		log.Fatal(err)
	}

	kinds := map[string]pfs.PolicyKind{
		"vanilla": pfs.PolicyVanilla, "reservation": pfs.PolicyReservation,
		"on-demand": pfs.PolicyOnDemand, "static": pfs.PolicyStatic,
	}
	kind, ok := kinds[*policy]
	if !ok {
		log.Fatalf("unknown policy %q", *policy)
	}
	cfg := pfs.MiF(*osts).WithPolicy(kind)
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	if *dropRate > 0 {
		fault := rpc.UniformFaults(*faultSeed, *dropRate)
		cfg.RPC.Fault = &fault
	}
	var tr *telemetry.Tracer
	if *spansOut != "" {
		tr = telemetry.NewTracer(nil)
		cfg.Trace = tr
	}
	mount, err := pfs.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Static needs a size hint up front; size to the trace's extent.
	var maxBlk int64
	for _, op := range ops {
		if end := op.Blk + op.Count; end > maxBlk {
			maxBlk = end
		}
	}
	f, err := mount.Create(mount.Root(), "trace.dat", maxBlk)
	if err != nil {
		log.Fatal(err)
	}

	var writes, reads int64
	var writeNs, readNs sim.Ns
	for _, op := range ops {
		switch op.Kind {
		case trace.OpWrite:
			if err := f.Write(op.Stream, op.Blk, op.Count); err != nil {
				log.Fatal(err)
			}
			writes++
		case trace.OpRead:
			if reads == 0 {
				mount.Flush()
				writeNs = mount.DataBusyMax()
				mount.ResetDataStats()
			}
			if err := f.Read(op.Blk, op.Count); err != nil {
				log.Fatal(err)
			}
			reads++
		}
	}
	mount.Flush()
	if reads == 0 {
		writeNs = mount.DataBusyMax()
	} else {
		readNs = mount.DataBusyMax()
	}
	extents, err := mount.TotalExtents(f)
	if err != nil {
		log.Fatal(err)
	}
	st := mount.DataStats()
	fmt.Printf("policy=%s writes=%d reads=%d extents=%d positionings=%d\n",
		*policy, writes, reads, extents, st.Positionings)
	fmt.Printf("write phase %.2f ms, read phase %.2f ms\n",
		sim.Seconds(writeNs)*1e3, sim.Seconds(readNs)*1e3)
	if *dropRate > 0 {
		sum := func(name string) int64 {
			var total int64
			for _, s := range reg.Snapshot() {
				if s.Name == name {
					total += s.Value
				}
			}
			return total
		}
		fmt.Printf("rpc faults=%d timeouts=%d retries=%d recoveries=%d exhausted=%d\n",
			sum("rpc_faults"), sum("rpc_timeouts"), sum("rpc_retries"),
			sum("rpc_recoveries"), sum("rpc_exhausted"))
	}
	if *spansOut != "" {
		writeFile(*spansOut, tr.WriteSpanLog)
	}
	if *telemetryOut != "" {
		writeFile(*telemetryOut, reg.WriteJSON)
	}
}

// writeFile writes one exporter's output to path.
func writeFile(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// spans converts a recorded span log into Chrome trace_event JSON.
func spans(args []string) {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: miftrace spans [-o chrome.json] <spans.json|->")
	}
	var in io.Reader = os.Stdin
	if fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	recorded, err := telemetry.ReadSpanLog(in)
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		if err := telemetry.WriteChromeTrace(os.Stdout, recorded); err != nil {
			log.Fatal(err)
		}
		return
	}
	writeFile(*out, func(w io.Writer) error { return telemetry.WriteChromeTrace(w, recorded) })
}

// critpath analyzes a recorded span log: per-layer self-time attribution
// and the slowest requests.
func critpath(args []string) {
	fs := flag.NewFlagSet("critpath", flag.ExitOnError)
	top := fs.Int("top", 5, "show the K slowest requests with per-layer breakdowns")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: miftrace critpath [-top K] <spans.json|->")
	}
	var in io.Reader = os.Stdin
	if fs.Arg(0) != "-" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	recorded, err := telemetry.ReadSpanLog(in)
	if err != nil {
		log.Fatal(err)
	}
	rep := telemetry.AnalyzeCritPath(recorded, *top)
	if err := rep.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
