package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"redbud/internal/mdfs"
)

// benchPoint is one worker-count measurement of the fsck pipeline.
type benchPoint struct {
	Workers         int     `json:"workers"`
	BestNs          int64   `json:"best_ns"`
	MeanNs          int64   `json:"mean_ns"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// benchReport is the JSON document bench emits (BENCH_pr10.json schema).
type benchReport struct {
	Schema          string       `json:"schema"`
	Image           string       `json:"image"`
	Layout          string       `json:"layout"`
	Dirs            int          `json:"dirs"`
	Files           int          `json:"files"`
	ReachableBlocks int64        `json:"reachable_blocks"`
	GOMAXPROCS      int          `json:"gomaxprocs"`
	Runs            int          `json:"runs_per_point"`
	Points          []benchPoint `json:"points"`
}

// bench loads an image once and times FsckWith across a list of worker
// counts, re-verifying after every run that the report is identical to
// the serial one (the determinism contract), then prints — and with
// -json writes — the wall-clock curve. The scan stage runs on host
// goroutines, not the simulated disk, so this is real wall-clock time:
// on a single-core host (GOMAXPROCS=1, recorded in the output) the curve
// is expected to be flat, which is exactly why the JSON carries the
// scheduler width alongside the numbers.
func bench(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	workerList := fs.String("workers", "1,2,4,8", "comma-separated worker counts to time")
	runs := fs.Int("runs", 5, "timed runs per worker count")
	jsonOut := fs.String("json", "", "write the curve as JSON to this file")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	var widths []int
	for _, s := range strings.Split(*workerList, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 1 {
			fatal(fmt.Errorf("bad -workers entry %q", s))
		}
		widths = append(widths, w)
	}
	if len(widths) == 0 || *runs < 1 {
		usage()
	}

	in, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := mdfs.LoadImage(in)
	in.Close()
	if err != nil {
		fatal(err)
	}
	serial := m.FsckWith(mdfs.FsckOptions{Workers: 1})
	rep := benchReport{
		Schema:          "redbud-fsck-bench/1",
		Image:           fs.Arg(0),
		Layout:          m.Layout().String(),
		Dirs:            serial.Dirs,
		Files:           serial.Files,
		ReachableBlocks: serial.ReachableBlocks,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Runs:            *runs,
	}
	fmt.Printf("%s: %d directories, %d files, %d reachable metadata blocks, GOMAXPROCS=%d\n",
		fs.Arg(0), rep.Dirs, rep.Files, rep.ReachableBlocks, rep.GOMAXPROCS)

	var serialBest int64
	for _, w := range widths {
		var best, total int64
		for r := 0; r < *runs; r++ {
			start := time.Now()
			got := m.FsckWith(mdfs.FsckOptions{Workers: w})
			ns := time.Since(start).Nanoseconds()
			if !reflect.DeepEqual(got.Problems, serial.Problems) ||
				!reflect.DeepEqual(got.Advisories, serial.Advisories) ||
				got.Dirs != serial.Dirs || got.Files != serial.Files ||
				got.ReachableBlocks != serial.ReachableBlocks {
				fatal(fmt.Errorf("workers=%d report diverges from serial", w))
			}
			total += ns
			if best == 0 || ns < best {
				best = ns
			}
		}
		if w == 1 || serialBest == 0 {
			serialBest = best
		}
		p := benchPoint{
			Workers:         w,
			BestNs:          best,
			MeanNs:          total / int64(*runs),
			SpeedupVsSerial: float64(serialBest) / float64(best),
		}
		rep.Points = append(rep.Points, p)
		fmt.Printf("workers=%-3d best=%-12s mean=%-12s speedup=%.2fx\n",
			w, time.Duration(p.BestNs), time.Duration(p.MeanNs), p.SpeedupVsSerial)
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return 0
}
