package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"redbud/internal/workload"
)

// sweep runs the systematic crash-point sweep and prints its report.
// Returns 0 when the baseline and every (point, mode) run recovered to a
// consistent state, 1 otherwise.
func sweep(args []string) int {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	seed := fs.Uint64("seed", 42, "damage-plan seed (equal seeds render byte-identical reports)")
	points := fs.String("points", "", "comma-separated crash-point subset (default: full registry)")
	workers := fs.Int("fsck-workers", 1, "scan-stage worker-pool width for every recovery fsck")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}
	cfg := workload.DefaultCrashSweepConfig()
	cfg.Seed = *seed
	cfg.FsckWorkers = *workers
	if *points != "" {
		cfg.Points = strings.Split(*points, ",")
	}
	rep, err := workload.RunCrashSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "miffsck:", err)
		return 1
	}
	rep.Write(os.Stdout)
	if !rep.Passed() {
		return 1
	}
	return 0
}
