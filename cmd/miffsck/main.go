// Command miffsck saves and checks metadata-file-system images: the
// offline consistency checker of the Redbud MDS.
//
// Usage:
//
//	miffsck gen [-layout embedded|normal] [-dirs N] [-files N] [-defrag] [-journal-only] <out.img>
//	miffsck check <image.img>
//
// gen formats a file system, populates it (creates, layouts, deletions,
// renames), and saves the durable state; with -defrag every surviving
// file's fragmented layout is additionally rewritten as the single
// coalesced extent a completed defragmentation pass produces; with
// -journal-only the final changes are committed to the journal but not
// checkpointed, producing the crash-consistent image a power failure (for
// -defrag: mid-defragmentation) would leave. check loads an image, replays
// its journal overlay, walks the namespace from the superblock, and
// reports every structural inconsistency.
package main

import (
	"flag"
	"fmt"
	"os"

	"redbud/internal/extent"
	"redbud/internal/inode"
	"redbud/internal/mdfs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "check":
		check(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: miffsck {gen|check} [flags] <image>")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	layoutName := fs.String("layout", "embedded", "embedded|normal")
	dirs := fs.Int("dirs", 4, "directories to create")
	files := fs.Int("files", 200, "files per directory")
	journalOnly := fs.Bool("journal-only", false, "leave the last changes un-checkpointed (crash image)")
	defrag := fs.Bool("defrag", false, "rewrite every live file's layout as one coalesced extent (a completed defrag pass)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}

	layout := mdfs.LayoutEmbedded
	if *layoutName == "normal" {
		layout = mdfs.LayoutNormal
	}
	m, err := mdfs.New(mdfs.DefaultConfig(layout))
	if err != nil {
		fatal(err)
	}
	// fragmented remembers each surviving laid-out file for -defrag.
	type laidOut struct {
		ino    inode.Ino
		blocks int64
	}
	var fragmented []laidOut
	for d := 0; d < *dirs; d++ {
		dir, err := m.Mkdir(m.Root(), fmt.Sprintf("dir%02d", d))
		if err != nil {
			fatal(err)
		}
		for i := 0; i < *files; i++ {
			ino, err := m.Create(dir, fmt.Sprintf("f%05d", i))
			if err != nil {
				fatal(err)
			}
			if i%4 == 0 {
				var exts []extent.Extent
				var blocks int64
				for j := 0; j < 8+i%40; j++ {
					exts = append(exts, extent.Extent{Logical: int64(j) * 2, Physical: int64(d*100000 + i*64 + j*4), Count: 2})
					blocks += 2
				}
				if err := m.SetLayout(ino, exts); err != nil {
					fatal(err)
				}
				if i%9 != 0 { // survives the deletion pass below
					fragmented = append(fragmented, laidOut{ino: ino, blocks: blocks})
				}
			}
		}
		for i := 0; i < *files; i += 9 {
			if err := m.Unlink(dir, fmt.Sprintf("f%05d", i)); err != nil {
				fatal(err)
			}
		}
	}
	if *defrag {
		// Replay the MDS-visible half of a completed defrag pass: every
		// surviving file's many-extent layout collapses into the single
		// coalesced extent the migration produced, at a fresh (and
		// deterministic) physical home. Combined with -journal-only this
		// is the image a crash right after the defrag commits would
		// leave: the rewrites live only in the journal.
		base := int64(10_000_000)
		for _, f := range fragmented {
			ext := []extent.Extent{{Logical: 0, Physical: base, Count: f.blocks}}
			if err := m.SetLayout(f.ino, ext); err != nil {
				fatal(err)
			}
			base += f.blocks
		}
	}
	if *journalOnly {
		if err := m.Store().Commit(); err != nil {
			fatal(err)
		}
	} else {
		if err := m.Sync(); err != nil {
			fatal(err)
		}
	}
	out, err := os.Create(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer out.Close()
	if err := m.SaveImage(out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%s layout, %d dirs x %d files, defrag=%v, journal-only=%v)\n",
		fs.Arg(0), layout, *dirs, *files, *defrag, *journalOnly)
}

func check(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer in.Close()
	m, err := mdfs.LoadImage(in)
	if err != nil {
		fatal(err)
	}
	report := m.Fsck()
	fmt.Printf("%s: %d directories, %d files, %d reachable metadata blocks\n",
		fs.Arg(0), report.Dirs, report.Files, report.ReachableBlocks)
	for _, a := range report.Advisories {
		fmt.Printf("advisory: %s\n", a)
	}
	if report.Clean() {
		fmt.Println("clean")
		return
	}
	for _, p := range report.Problems {
		fmt.Printf("PROBLEM: %s\n", p)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "miffsck:", err)
	os.Exit(1)
}
