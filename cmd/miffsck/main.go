// Command miffsck saves and checks metadata-file-system images: the
// offline consistency checker of the Redbud MDS.
//
// Usage:
//
//	miffsck gen [-layout embedded|normal] [-dirs N] [-files N] [-defrag] [-cache] [-journal-only] [-corrupt kind] <out.img>
//	miffsck check [-fsck-workers N] <image.img>
//	miffsck sweep [-seed N] [-points a,b,...] [-fsck-workers N]
//	miffsck bench [-workers 1,2,4,8] [-runs N] [-json out.json] <image.img>
//
// gen formats a file system, populates it (creates, layouts, deletions,
// renames), and saves the durable state; with -defrag every surviving
// file's fragmented layout is additionally rewritten as the single
// coalesced extent a completed defragmentation pass produces; with
// -cache the population instead runs through a full client-cached Redbud
// mount (writes absorbed by the client block cache, flushed by the
// close/truncate/delete/sync barriers), so the image records exactly the
// metadata those barriers made durable; with -journal-only the final
// changes are committed to the journal but not checkpointed, producing
// the crash-consistent image a power failure (for -defrag:
// mid-defragmentation) would leave; with -corrupt the finished file
// system is damaged on disk (mdfs.InjectCorruption — cycle, dup-claim,
// size-over, table-orphan, ...) so the image exercises a specific fsck
// finding class. check loads an image, replays its journal overlay,
// walks the namespace from the superblock (a pool of -fsck-workers scan
// goroutines; the report is byte-identical at any width), and reports
// every structural inconsistency.
//
// bench times the scan/resolve fsck pipeline on a loaded image across a
// list of worker counts, verifies every width reproduces the serial
// report, and optionally writes the wall-clock curve as JSON.
//
// sweep runs the systematic crash-point sweep (internal/crashsim driven
// by the internal/workload crashsweep scenario): one power-fail run per
// registered (crash point, tear mode) pair, each recovered by journal
// replay, remount, IO-server scrub, and re-replication, then verified.
// -points restricts the sweep to a comma-separated subset of the
// registry.
//
// Exit codes (the fsck contract, asserted by the command's tests):
//
//	0 — check: the image is clean and needed no repair;
//	    sweep: every run recovered to a consistent state.
//	1 — check: the image is corrupt (structural fsck problems) or could
//	    not be read; sweep: a run failed to recover consistent.
//	2 — check: the image was dirty but repaired — journal replay had to
//	    re-apply committed records, after which the walk came up clean.
package main

import (
	"flag"
	"fmt"
	"os"

	"redbud/internal/cache"
	"redbud/internal/core"
	"redbud/internal/extent"
	"redbud/internal/inode"
	"redbud/internal/mdfs"
	"redbud/internal/mds"
	"redbud/internal/pfs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "check":
		os.Exit(check(os.Args[2:]))
	case "sweep":
		os.Exit(sweep(os.Args[2:]))
	case "bench":
		os.Exit(bench(os.Args[2:]))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: miffsck {gen|check|sweep|bench} [flags] [image]")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	layoutName := fs.String("layout", "embedded", "embedded|normal")
	dirs := fs.Int("dirs", 4, "directories to create")
	files := fs.Int("files", 200, "files per directory")
	journalOnly := fs.Bool("journal-only", false, "leave the last changes un-checkpointed (crash image)")
	defrag := fs.Bool("defrag", false, "rewrite every live file's layout as one coalesced extent (a completed defrag pass)")
	cached := fs.Bool("cache", false, "populate through a client-cached Redbud mount (flush barriers write the metadata)")
	corrupt := fs.String("corrupt", "", "damage the finished file system on disk (cycle|dup-claim|size-over|table-orphan)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	if *cached && *defrag {
		fatal(fmt.Errorf("-cache and -defrag are mutually exclusive"))
	}
	if *cached && *corrupt != "" {
		fatal(fmt.Errorf("-cache and -corrupt are mutually exclusive"))
	}

	layout := mdfs.LayoutEmbedded
	if *layoutName == "normal" {
		layout = mdfs.LayoutNormal
	}
	if *cached {
		genCached(layout, *dirs, *files, *journalOnly, fs.Arg(0))
		return
	}
	m, err := mdfs.New(mdfs.DefaultConfig(layout))
	if err != nil {
		fatal(err)
	}
	// fragmented remembers each surviving laid-out file for -defrag.
	type laidOut struct {
		ino    inode.Ino
		blocks int64
	}
	var fragmented []laidOut
	for d := 0; d < *dirs; d++ {
		dir, err := m.Mkdir(m.Root(), fmt.Sprintf("dir%02d", d))
		if err != nil {
			fatal(err)
		}
		for i := 0; i < *files; i++ {
			ino, err := m.Create(dir, fmt.Sprintf("f%05d", i))
			if err != nil {
				fatal(err)
			}
			if i%4 == 0 {
				var exts []extent.Extent
				var blocks int64
				for j := 0; j < 8+i%40; j++ {
					exts = append(exts, extent.Extent{Logical: int64(j) * 2, Physical: int64(d*100000 + i*64 + j*4), Count: 2})
					blocks += 2
				}
				if err := m.SetLayout(ino, exts); err != nil {
					fatal(err)
				}
				if i%9 != 0 { // survives the deletion pass below
					fragmented = append(fragmented, laidOut{ino: ino, blocks: blocks})
				}
			}
		}
		for i := 0; i < *files; i += 9 {
			if err := m.Unlink(dir, fmt.Sprintf("f%05d", i)); err != nil {
				fatal(err)
			}
		}
	}
	if *defrag {
		// Replay the MDS-visible half of a completed defrag pass: every
		// surviving file's many-extent layout collapses into the single
		// coalesced extent the migration produced, at a fresh (and
		// deterministic) physical home. Combined with -journal-only this
		// is the image a crash right after the defrag commits would
		// leave: the rewrites live only in the journal.
		base := int64(10_000_000)
		for _, f := range fragmented {
			ext := []extent.Extent{{Logical: 0, Physical: base, Count: f.blocks}}
			if err := m.SetLayout(f.ino, ext); err != nil {
				fatal(err)
			}
			base += f.blocks
		}
	}
	if *corrupt != "" {
		// InjectCorruption commits and checkpoints the damage itself, so
		// the image carries it in the home blocks.
		if err := m.InjectCorruption(*corrupt); err != nil {
			fatal(err)
		}
	}
	if *journalOnly {
		if err := m.Store().Commit(); err != nil {
			fatal(err)
		}
	} else {
		if err := m.Sync(); err != nil {
			fatal(err)
		}
	}
	out, err := os.Create(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer out.Close()
	if err := m.SaveImage(out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%s layout, %d dirs x %d files, defrag=%v, journal-only=%v)\n",
		fs.Arg(0), layout, *dirs, *files, *defrag, *journalOnly)
}

// genCached populates a full client-cached Redbud mount — writes land in
// the client block cache and reach the servers only through the close,
// truncate, delete, and sync flush barriers — then saves the MDS metadata
// image those barriers produced. A clean check of the image proves the
// barriers leave the metadata file system structurally consistent.
func genCached(layout mdfs.Layout, dirs, files int, journalOnly bool, out string) {
	cfg := pfs.MiF(2)
	cfg.MDS = mds.DefaultConfig(layout)
	cc := cache.DefaultConfig()
	cfg.Cache = &cc
	pf, err := pfs.New(cfg)
	if err != nil {
		fatal(err)
	}
	for d := 0; d < dirs; d++ {
		dir, err := pf.Mkdir(pf.Root(), fmt.Sprintf("dir%02d", d))
		if err != nil {
			fatal(err)
		}
		for i := 0; i < files; i++ {
			name := fmt.Sprintf("f%05d", i)
			h, err := pf.Create(dir, name, 0)
			if err != nil {
				fatal(err)
			}
			if i%4 == 0 {
				// Small interleaved-style writes, absorbed by the cache;
				// every 8th file is truncated while still dirty so the
				// truncate barrier runs too.
				stream := core.StreamID{Client: uint32(d), PID: uint32(i % 4)}
				blocks := int64(16 + i%48)
				for off := int64(0); off < blocks; off += 4 {
					n := int64(4)
					if off+n > blocks {
						n = blocks - off
					}
					if err := h.Write(stream, off, n); err != nil {
						fatal(err)
					}
				}
				if i%8 == 0 {
					if err := h.Truncate(blocks / 2); err != nil {
						fatal(err)
					}
				}
			}
			if err := h.Close(); err != nil {
				fatal(err)
			}
		}
		for i := 0; i < files; i += 9 {
			if err := pf.Delete(dir, fmt.Sprintf("f%05d", i)); err != nil {
				fatal(err)
			}
		}
	}
	m := pf.MDS().FS()
	if journalOnly {
		if err := m.Store().Commit(); err != nil {
			fatal(err)
		}
	} else {
		if err := pf.Sync(); err != nil {
			fatal(err)
		}
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := m.SaveImage(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%s layout, %d dirs x %d files, via client-cached mount, journal-only=%v)\n",
		out, layout, dirs, files, journalOnly)
}

// check loads an image and walks it, returning the exit-code contract
// documented in the package comment: 0 clean, 1 corrupt or unreadable,
// 2 repaired (journal replay re-applied committed records, then clean).
func check(args []string) int {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	workers := fs.Int("fsck-workers", 1, "scan-stage worker-pool width (report is byte-identical at any width)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	in, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "miffsck:", err)
		return 1
	}
	defer in.Close()
	m, err := mdfs.LoadImage(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "miffsck:", err)
		return 1
	}
	repaired := m.Store().DirtyBlocks()
	report := m.FsckWith(mdfs.FsckOptions{Workers: *workers})
	fmt.Printf("%s: %d directories, %d files, %d reachable metadata blocks\n",
		fs.Arg(0), report.Dirs, report.Files, report.ReachableBlocks)
	for _, a := range report.Advisories {
		fmt.Printf("advisory: %s\n", a)
	}
	if !report.Clean() {
		for _, p := range report.Problems {
			fmt.Printf("PROBLEM: %s\n", p)
		}
		return 1
	}
	if repaired > 0 {
		fmt.Printf("repaired: journal replay re-applied %d metadata blocks\n", repaired)
		return 2
	}
	fmt.Println("clean")
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "miffsck:", err)
	os.Exit(1)
}
