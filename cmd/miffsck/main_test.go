package main

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// genImage writes a small image through the real gen path.
func genImage(t *testing.T, path string, extra ...string) {
	t.Helper()
	args := append([]string{"-dirs", "1", "-files", "24"}, extra...)
	gen(append(args, path))
}

// TestCheckExitCodeContract pins the documented fsck exit codes:
// 0 for a clean image, 2 for an image that was repaired by journal
// replay, 1 for a structurally corrupt image.
func TestCheckExitCodeContract(t *testing.T) {
	dir := t.TempDir()

	clean := filepath.Join(dir, "clean.img")
	genImage(t, clean)
	if got := check([]string{clean}); got != 0 {
		t.Fatalf("clean image: exit %d, want 0", got)
	}

	// -journal-only leaves the final transaction committed but not
	// checkpointed: load replays it, so the image is repaired, not clean.
	repaired := filepath.Join(dir, "repaired.img")
	genImage(t, repaired, "-journal-only")
	if got := check([]string{repaired}); got != 2 {
		t.Fatalf("journal-only image: exit %d, want 2 (repaired)", got)
	}

	// Corrupt the superblock payload. Image layout: 12-byte header,
	// 6 x int64 geometry, int64 home count, then sorted (block, data)
	// entries — block 0's data (the superblock) starts at offset 76.
	corrupt := filepath.Join(dir, "corrupt.img")
	genImage(t, corrupt)
	img, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if blk := binary.LittleEndian.Uint64(img[68:]); blk != 0 {
		t.Fatalf("first home entry is block %d, want 0 (superblock)", blk)
	}
	for i := 76; i < 76+64; i++ {
		img[i] ^= 0xFF
	}
	if err := os.WriteFile(corrupt, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := check([]string{corrupt}); got != 1 {
		t.Fatalf("corrupt image: exit %d, want 1", got)
	}

	if got := check([]string{filepath.Join(dir, "missing.img")}); got != 1 {
		t.Fatalf("unreadable image: exit %d, want 1", got)
	}
}

// TestSweepExitCode runs a two-point sweep through the CLI entry point:
// a passing sweep exits 0, an unknown point name exits 1.
func TestSweepExitCode(t *testing.T) {
	if got := sweep([]string{"-points", "cache.sync.flush,ost.truncate.partial"}); got != 0 {
		t.Fatalf("passing sweep: exit %d, want 0", got)
	}
	if got := sweep([]string{"-points", "no.such.point"}); got != 1 {
		t.Fatalf("unknown point: exit %d, want 1", got)
	}
}

// TestCheckCorruptImageFindings covers the new finding classes end to
// end through the CLI: gen -corrupt plants the damage, check must exit 1
// under both serial and parallel walkers.
func TestCheckCorruptImageFindings(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"cycle", "dup-claim", "size-over", "table-orphan"} {
		img := filepath.Join(dir, kind+".img")
		genImage(t, img, "-corrupt", kind)
		if got := check([]string{img}); got != 1 {
			t.Fatalf("%s image: serial check exit %d, want 1", kind, got)
		}
		if got := check([]string{"-fsck-workers", "8", img}); got != 1 {
			t.Fatalf("%s image: parallel check exit %d, want 1", kind, got)
		}
	}
	// The normal layout expresses the cycle differently (a planted
	// dirent); cover it too.
	img := filepath.Join(dir, "cycle-normal.img")
	genImage(t, img, "-layout", "normal", "-corrupt", "cycle")
	if got := check([]string{"-fsck-workers", "4", img}); got != 1 {
		t.Fatalf("normal-layout cycle image: exit %d, want 1", got)
	}
}

// TestSweepFsckWorkersFlag runs a small sweep with the parallel checker
// threaded through recovery: the result contract must be unchanged.
func TestSweepFsckWorkersFlag(t *testing.T) {
	if got := sweep([]string{"-points", "cache.sync.flush", "-fsck-workers", "8"}); got != 0 {
		t.Fatalf("parallel-fsck sweep: exit %d, want 0", got)
	}
}
