//go:build race

package redbud_test

// raceEnabled reports that this binary was built with -race, whose
// shadow-memory instrumentation adds allocations the ceilings in
// allocs_test.go do not budget for.
const raceEnabled = true
