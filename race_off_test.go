//go:build !race

package redbud_test

// raceEnabled reports whether this binary was built with -race.
const raceEnabled = false
