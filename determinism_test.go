package redbud_test

// Determinism guards for the parallel clock domains. The simulator fans
// data-path RPCs out to one goroutine per OST (see internal/sim.Domain and
// DESIGN.md §13), so these tests pin the property the design promises:
// the simulated results — every telemetry metric, byte for byte — are
// identical whether the Go scheduler runs the domains on one core or many,
// and fault-injected runs (which fall back to the serial path to keep
// their shared RNG draw order) replay exactly under both settings.

import (
	"bytes"
	"runtime"
	"testing"

	"redbud/internal/core"
	"redbud/internal/pfs"
	"redbud/internal/rpc"
	"redbud/internal/telemetry"
	"redbud/internal/workload"
)

// microSnapshot runs the fig6a micro-benchmark with a registry attached
// and returns the registry's JSON document — the same artifact the
// `make smoke` -telemetry guard compares.
func microSnapshot(t *testing.T, mutate func(*pfs.Config)) []byte {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg := fig6FS(pfs.PolicyOnDemand)
	cfg.Metrics = reg
	if mutate != nil {
		mutate(&cfg)
	}
	if _, err := workload.RunMicro(cfg, workload.DefaultMicroConfig(8)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// withGOMAXPROCS runs fn under the given scheduler width.
func withGOMAXPROCS(n int, fn func() []byte) []byte {
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	return fn()
}

// forceParallel and forceSerial pin the mount's fan-out path regardless of
// how many cores the host schedules on.
func forceParallel(cfg *pfs.Config) { on := true; cfg.ParallelDomains = &on }
func forceSerial(cfg *pfs.Config)   { off := false; cfg.ParallelDomains = &off }

// TestTelemetryIdenticalSerialVsParallel is the heart of the clock-domain
// determinism argument: the registry document of a run whose data-path
// RPCs fan out across the per-OST domain goroutines must be byte-identical
// to the same run executed on the serial index-order loop.
func TestTelemetryIdenticalSerialVsParallel(t *testing.T) {
	serial := microSnapshot(t, forceSerial)
	parallel := microSnapshot(t, forceParallel)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("telemetry diverges between serial and parallel paths: %d bytes vs %d bytes",
			len(serial), len(parallel))
	}
	if len(serial) == 0 {
		t.Fatal("empty telemetry snapshot: the workload did not instrument")
	}
}

// TestTelemetryIdenticalAcrossGOMAXPROCS is the in-process version of the
// smoke telemetry-identity guard: the parallel-path document must be
// byte-identical between GOMAXPROCS=1 (domains interleave on one core)
// and GOMAXPROCS=NumCPU (domains genuinely overlap). Run under -race in
// `make ci`, this also proves the domain rendezvous publishes every
// per-OST result safely.
func TestTelemetryIdenticalAcrossGOMAXPROCS(t *testing.T) {
	one := withGOMAXPROCS(1, func() []byte { return microSnapshot(t, forceParallel) })
	all := withGOMAXPROCS(runtime.NumCPU(), func() []byte { return microSnapshot(t, forceParallel) })
	if !bytes.Equal(one, all) {
		t.Fatalf("telemetry diverges across GOMAXPROCS: %d bytes vs %d bytes",
			len(one), len(all))
	}
}

// TestTelemetryIdenticalRepeatedParallel re-runs the forced-parallel
// workload twice: the domains' execution order differs run to run, the
// simulated results must not.
func TestTelemetryIdenticalRepeatedParallel(t *testing.T) {
	a := microSnapshot(t, forceParallel)
	b := microSnapshot(t, forceParallel)
	if !bytes.Equal(a, b) {
		t.Fatal("telemetry diverges between identical parallel runs")
	}
}

// TestFaultInjectionDeterministicAcrossGOMAXPROCS seeds the RPC fault
// injector — whose presence must force the serial data path even when the
// config asks for parallel domains, because every fault decision is one
// draw from a shared sequential RNG — and checks the full registry
// document (fault events, retry counters, replay hits included) replays
// byte-identically under both scheduler widths.
func TestFaultInjectionDeterministicAcrossGOMAXPROCS(t *testing.T) {
	faulty := func(cfg *pfs.Config) {
		forceParallel(cfg) // must lose to the fault injector's serial requirement
		cfg.RPC.Fault = &rpc.FaultConfig{
			Seed: 42,
			Data: rpc.FaultRates{Drop: 0.02, RespDrop: 0.02, Error: 0.01},
			Meta: rpc.FaultRates{Drop: 0.01},
		}
	}
	serial := withGOMAXPROCS(1, func() []byte { return microSnapshot(t, faulty) })
	parallel := withGOMAXPROCS(runtime.NumCPU(), func() []byte { return microSnapshot(t, faulty) })
	if !bytes.Equal(serial, parallel) {
		t.Fatal("fault-injected telemetry diverges across GOMAXPROCS")
	}
}

// TestDomainFoldMatchesDataBusyMax pins the clock-domain semantics: after
// a parallel-eligible workload, the coordinator domain clock — the folded
// maximum of the per-OST timelines at the last rendezvous — equals the
// mount-level elapsed-time figure DataBusyMax computes from the same
// device counters.
func TestDomainFoldMatchesDataBusyMax(t *testing.T) {
	cfg := fig6FS(pfs.PolicyOnDemand)
	forceParallel(&cfg)
	fs, err := pfs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	root := fs.Root()
	h, err := fs.Create(root, "fold.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	for i := int64(0); i < 64; i++ {
		if err := h.Write(stream, i*64, 64); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Flush()
	if got, want := fs.DomainTime(), fs.DataBusyMax(); got != want {
		t.Fatalf("domain fold = %d ns, DataBusyMax = %d ns", got, want)
	}
	if fs.DomainTime() == 0 {
		t.Fatal("domain clock never advanced: parallel fan-out did not run")
	}
}
