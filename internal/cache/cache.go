// Package cache implements the client-side block cache of a Redbud mount:
// the layer between the PFS file operations and the typed RPC clients.
//
// The paper's Figure 6 argument is that fragmentary requests reaching the
// disk cannot be merged by the elevator — so every opportunity to coalesce
// adjacent blocks *before* they cross the RPC boundary directly reduces
// the measured positioning count. Production parallel file systems (CFS,
// Lustre's client page cache) put exactly such a cache in front of the
// data servers. This one keeps:
//
//   - an LRU of clean block ranges: re-reads cost zero RPCs and zero disk
//     time;
//   - a dirty map with write-back aggregation: adjacent dirty blocks flush
//     as one coalesced write RPC, bounded by a configurable dirty-block
//     high-water mark (oldest runs written back first);
//   - a sequential-stream detector driving an adaptive readahead window:
//     a detected sequential reader's misses are extended into one larger
//     read RPC ahead of the stream, clamped to ranges known to exist so a
//     prefetch can never read a hole;
//   - strict flush barriers: FlushFile/Flush force every dirty block to
//     the servers, and the PFS layer invokes them on Sync, Close,
//     Truncate, and Delete so cache-on runs preserve the consistency the
//     defrag and recovery tests assert.
//
// The cache holds no user data — the simulation tracks placement and
// time, not bytes — only per-block residency and dirtiness, which is all
// the RPC/disk cost model needs. All decisions (write-back victim order,
// eviction order, readahead extension) are deterministic: LRU and dirty
// queues are intrusive lists and no map is iterated unsorted, so seeded
// runs replay byte-identically.
package cache

import (
	"fmt"
	"sort"
	"sync"

	"redbud/internal/alloc"
	"redbud/internal/core"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// FileID names one cached file (the PFS layer uses the MDS inode number).
type FileID uint64

// BackingStore is what the cache fills from and flushes to: the mount's
// striped RPC path. The PFS layer implements it over the typed OST
// clients. Implementations must not call back into the cache.
type BackingStore interface {
	// WriteBack stores one coalesced dirty run to the servers on behalf
	// of the stream that wrote its oldest block.
	WriteBack(f FileID, stream core.StreamID, blk, count int64) error
	// Fetch reads one missing (possibly readahead-extended) run from the
	// servers.
	Fetch(f FileID, blk, count int64) error
}

// Config tunes one mount's cache.
type Config struct {
	// CapacityBlocks bounds the total cached blocks (clean + dirty). The
	// least-recently-used block is evicted beyond it; dirty victims are
	// written back (as their whole coalesced run) first. Zero takes the
	// default.
	CapacityBlocks int64
	// DirtyHighWater is the dirty-block bound: when exceeded, the oldest
	// dirty runs are written back until the gauge is back under it. Zero
	// takes the default.
	DirtyHighWater int64
	// ReadAheadBlocks caps the readahead window. Zero takes the default;
	// negative disables readahead.
	ReadAheadBlocks int64
	// SequentialThreshold is the consecutive sequentially-read block
	// count that arms readahead for a file. The window then grows with
	// the observed run (adaptive), up to ReadAheadBlocks. Zero takes the
	// default.
	SequentialThreshold int64
}

// DefaultConfig returns the laptop-scale tuning: a 64 MiB cache (4 KiB
// blocks), a 16 MiB dirty high-water mark, and a 256 KiB readahead window
// armed after 32 KiB of sequential reading.
func DefaultConfig() Config {
	return Config{
		CapacityBlocks:      16384,
		DirtyHighWater:      4096,
		ReadAheadBlocks:     64,
		SequentialThreshold: 8,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.CapacityBlocks <= 0 {
		c.CapacityBlocks = d.CapacityBlocks
	}
	if c.DirtyHighWater <= 0 {
		c.DirtyHighWater = d.DirtyHighWater
	}
	if c.DirtyHighWater > c.CapacityBlocks {
		c.DirtyHighWater = c.CapacityBlocks
	}
	if c.ReadAheadBlocks == 0 {
		c.ReadAheadBlocks = d.ReadAheadBlocks
	}
	if c.SequentialThreshold <= 0 {
		c.SequentialThreshold = d.SequentialThreshold
	}
	return c
}

// Stats are the cache counters (monotone except the gauges).
type Stats struct {
	// HitBlocks / MissBlocks classify every requested read block.
	HitBlocks  int64
	MissBlocks int64
	// EvictedBlocks counts blocks pushed out by capacity pressure.
	EvictedBlocks int64
	// Writebacks counts coalesced write RPC runs; WritebackBlocks their
	// total size. Their ratio is the aggregation factor.
	Writebacks      int64
	WritebackBlocks int64
	// ReadaheadIssued counts blocks fetched beyond what a reader asked
	// for; ReadaheadUsed the subset later served as hits; ReadaheadWasted
	// the subset evicted or invalidated unreferenced.
	ReadaheadIssued int64
	ReadaheadUsed   int64
	ReadaheadWasted int64
	// FlushBarriers counts FlushFile/Flush invocations (the Sync, Close,
	// Truncate, and Delete barriers of the PFS layer).
	FlushBarriers int64
	// DirtyBlocks and CachedBlocks are point-in-time gauges.
	DirtyBlocks  int64
	CachedBlocks int64
}

// block is one cached block: LRU and dirty-queue linkage plus state.
type block struct {
	f   FileID
	blk int64

	dirty      bool
	stream     core.StreamID // writer, valid while dirty
	prefetched bool          // brought in by readahead, not yet referenced

	// lruPrev/lruNext form the recency list (head = most recent).
	lruPrev, lruNext *block
	// dirtyPrev/dirtyNext form the dirty FIFO (head = oldest).
	dirtyPrev, dirtyNext *block
}

// fileState is the per-file cache state.
type fileState struct {
	blocks map[int64]*block
	// written tracks logical ranges known to exist on the servers (every
	// range written through this cache). Readahead never extends outside
	// it, so a prefetch cannot read a hole.
	written alloc.RangeSet
	// lastEnd/run drive the sequential-stream detector: run accumulates
	// consecutive sequentially-read blocks and resets on a jump.
	lastEnd int64
	run     int64
}

// Cache is one mount's client block cache. All methods are safe for
// concurrent use; the PFS layer additionally serializes them under the
// mount lock, which keeps BackingStore callbacks serialized too.
type Cache struct {
	cfg   Config
	store BackingStore

	mu    sync.Mutex
	files map[FileID]*fileState
	total int64 // cached blocks
	dirty int64 // dirty blocks

	lruHead, lruTail     *block // recency list
	dirtyHead, dirtyTail *block // dirty FIFO, oldest at head

	st Stats

	// wbHist, when attached, observes every coalesced write-back run's
	// size in blocks — the aggregation-factor histogram.
	wbHist *telemetry.Histogram
	// events, when attached, records structured eviction events stamped
	// with now() (the mount's simulated clock; absent a clock they land
	// at time zero).
	events *telemetry.EventLog
	now    func() sim.Ns
}

// New builds a cache over the backing store. Zero config fields take
// defaults.
func New(cfg Config, store BackingStore) *Cache {
	return &Cache{
		cfg:   cfg.withDefaults(),
		store: store,
		files: make(map[FileID]*fileState),
	}
}

// Config returns the effective (default-filled) configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters with the gauges filled in.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.st
	st.DirtyBlocks = c.dirty
	st.CachedBlocks = c.total
	return st
}

// Instrument publishes the layer=cache metrics: hit/miss/eviction
// counters, the dirty- and cached-block gauges, the coalesced-write size
// histogram, and the readahead issued/used/wasted counters.
func (c *Cache) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	c.mu.Lock()
	c.wbHist = reg.Histogram("cache_writeback_blocks", labels)
	c.events = reg.Events()
	c.mu.Unlock()
	reg.CounterFunc("cache_hit_blocks", labels, func() int64 { return c.Stats().HitBlocks })
	reg.CounterFunc("cache_miss_blocks", labels, func() int64 { return c.Stats().MissBlocks })
	reg.CounterFunc("cache_evicted_blocks", labels, func() int64 { return c.Stats().EvictedBlocks })
	reg.CounterFunc("cache_writebacks", labels, func() int64 { return c.Stats().Writebacks })
	reg.CounterFunc("cache_readahead_issued_blocks", labels, func() int64 { return c.Stats().ReadaheadIssued })
	reg.CounterFunc("cache_readahead_used_blocks", labels, func() int64 { return c.Stats().ReadaheadUsed })
	reg.CounterFunc("cache_readahead_wasted_blocks", labels, func() int64 { return c.Stats().ReadaheadWasted })
	reg.CounterFunc("cache_flush_barriers", labels, func() int64 { return c.Stats().FlushBarriers })
	reg.GaugeFunc("cache_dirty_blocks", labels, func() int64 { return c.Stats().DirtyBlocks })
	reg.GaugeFunc("cache_cached_blocks", labels, func() int64 { return c.Stats().CachedBlocks })
}

// Reset discards every cached block, clean and dirty alike, without
// writing anything back — the client rebooting after a power failure. The
// counters, instrumentation, and configuration survive (they model the
// observer, not the machine).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.files = make(map[FileID]*fileState)
	c.total = 0
	c.dirty = 0
	c.lruHead, c.lruTail = nil, nil
	c.dirtyHead, c.dirtyTail = nil, nil
}

// SetClock attaches the simulated-time source that stamps the cache's
// structured events (the PFS layer passes its tracer's Now). A nil fn
// detaches it.
func (c *Cache) SetClock(fn func() sim.Ns) {
	c.mu.Lock()
	c.now = fn
	c.mu.Unlock()
}

// nowLocked returns the current simulated time, or 0 with no clock
// attached. Callers hold c.mu.
func (c *Cache) nowLocked() sim.Ns {
	if c.now == nil {
		return 0
	}
	return c.now()
}

// file returns (creating on demand) the per-file state. Callers hold c.mu.
func (c *Cache) file(f FileID) *fileState {
	fs := c.files[f]
	if fs == nil {
		fs = &fileState{blocks: make(map[int64]*block)}
		c.files[f] = fs
	}
	return fs
}

// --- intrusive list plumbing -------------------------------------------

// lruUnlink removes b from the recency list. Callers hold c.mu.
func (c *Cache) lruUnlink(b *block) {
	if b.lruPrev != nil {
		b.lruPrev.lruNext = b.lruNext
	} else if c.lruHead == b {
		c.lruHead = b.lruNext
	}
	if b.lruNext != nil {
		b.lruNext.lruPrev = b.lruPrev
	} else if c.lruTail == b {
		c.lruTail = b.lruPrev
	}
	b.lruPrev, b.lruNext = nil, nil
}

// lruPush inserts b at the most-recent end. Callers hold c.mu.
func (c *Cache) lruPush(b *block) {
	b.lruNext = c.lruHead
	if c.lruHead != nil {
		c.lruHead.lruPrev = b
	}
	c.lruHead = b
	if c.lruTail == nil {
		c.lruTail = b
	}
}

// touch moves b to the most-recent end. Callers hold c.mu.
func (c *Cache) touch(b *block) {
	if c.lruHead == b {
		return
	}
	c.lruUnlink(b)
	c.lruPush(b)
}

// dirtyUnlink removes b from the dirty FIFO. Callers hold c.mu.
func (c *Cache) dirtyUnlink(b *block) {
	if b.dirtyPrev != nil {
		b.dirtyPrev.dirtyNext = b.dirtyNext
	} else if c.dirtyHead == b {
		c.dirtyHead = b.dirtyNext
	}
	if b.dirtyNext != nil {
		b.dirtyNext.dirtyPrev = b.dirtyPrev
	} else if c.dirtyTail == b {
		c.dirtyTail = b.dirtyPrev
	}
	b.dirtyPrev, b.dirtyNext = nil, nil
}

// dirtyAppend queues b at the newest end of the dirty FIFO. Callers hold
// c.mu.
func (c *Cache) dirtyAppend(b *block) {
	b.dirtyPrev = c.dirtyTail
	if c.dirtyTail != nil {
		c.dirtyTail.dirtyNext = b
	}
	c.dirtyTail = b
	if c.dirtyHead == nil {
		c.dirtyHead = b
	}
}

// drop removes b from every structure. Callers hold c.mu.
func (c *Cache) drop(b *block) {
	if b.prefetched {
		b.prefetched = false
		c.st.ReadaheadWasted++
	}
	if b.dirty {
		b.dirty = false
		c.dirtyUnlink(b)
		c.dirty--
	}
	c.lruUnlink(b)
	if fs := c.files[b.f]; fs != nil {
		delete(fs.blocks, b.blk)
	}
	c.total--
}

// --- write path --------------------------------------------------------

// Write marks [blk, blk+count) of f dirty on behalf of stream, absorbing
// the data without any RPC. It then enforces the dirty high-water mark
// (oldest coalesced runs written back first) and the capacity bound.
func (c *Cache) Write(f FileID, stream core.StreamID, blk, count int64) error {
	if blk < 0 || count <= 0 {
		return fmt.Errorf("cache: invalid write [%d,+%d)", blk, count)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := c.file(f)
	for i := int64(0); i < count; i++ {
		l := blk + i
		b := fs.blocks[l]
		if b == nil {
			b = &block{f: f, blk: l}
			fs.blocks[l] = b
			c.lruPush(b)
			c.total++
		} else {
			c.touch(b)
			if b.prefetched {
				// Overwritten before ever being read: the prefetch
				// was wasted.
				b.prefetched = false
				c.st.ReadaheadWasted++
			}
			if b.dirty {
				// Re-dirtied blocks keep their FIFO position; the run
				// they belong to is still queued.
				b.stream = stream
				continue
			}
		}
		b.dirty = true
		b.stream = stream
		c.dirtyAppend(b)
		c.dirty++
	}
	fs.written.Add(alloc.Range{Start: blk, Count: count})
	if err := c.enforceHighWaterLocked(); err != nil {
		return err
	}
	return c.enforceCapacityLocked()
}

// enforceHighWaterLocked writes back oldest dirty runs until the dirty
// gauge is at or under the high-water mark. Callers hold c.mu.
func (c *Cache) enforceHighWaterLocked() error {
	for c.dirty > c.cfg.DirtyHighWater && c.dirtyHead != nil {
		if err := c.writeBackRunLocked(c.dirtyHead); err != nil {
			return err
		}
	}
	return nil
}

// enforceCapacityLocked evicts least-recently-used blocks until the cache
// fits, writing back any dirty victim's run first. Callers hold c.mu.
func (c *Cache) enforceCapacityLocked() error {
	for c.total > c.cfg.CapacityBlocks && c.lruTail != nil {
		victim := c.lruTail
		if victim.dirty {
			if err := c.writeBackRunLocked(victim); err != nil {
				return err
			}
		}
		c.events.Emit(c.nowLocked(), "cache", "evict", fmt.Sprintf("file %d blk %d", victim.f, victim.blk))
		c.drop(victim)
		c.st.EvictedBlocks++
	}
	return nil
}

// writeBackRunLocked flushes the maximal contiguous dirty run containing
// b as one coalesced WriteBack call, then marks the run clean (the blocks
// stay cached). The run's stream is the trigger block's writer. Callers
// hold c.mu.
func (c *Cache) writeBackRunLocked(b *block) error {
	fs := c.files[b.f]
	lo, hi := b.blk, b.blk+1
	for {
		prev := fs.blocks[lo-1]
		if prev == nil || !prev.dirty {
			break
		}
		lo--
	}
	for {
		next := fs.blocks[hi]
		if next == nil || !next.dirty {
			break
		}
		hi++
	}
	if err := c.store.WriteBack(b.f, b.stream, lo, hi-lo); err != nil {
		return err
	}
	for l := lo; l < hi; l++ {
		rb := fs.blocks[l]
		rb.dirty = false
		c.dirtyUnlink(rb)
		c.dirty--
	}
	c.st.Writebacks++
	c.st.WritebackBlocks += hi - lo
	if c.wbHist != nil {
		c.wbHist.Observe(hi - lo)
	}
	return nil
}

// --- read path ---------------------------------------------------------

// span is one contiguous run of blocks.
type span struct{ start, count int64 }

// Read serves [blk, blk+count) of f: cached blocks (clean or dirty) are
// hits costing nothing; missing runs are fetched from the backing store,
// extended by the adaptive readahead window when the reader has proven
// sequential, and inserted clean.
func (c *Cache) Read(f FileID, blk, count int64) error {
	if blk < 0 || count <= 0 {
		return fmt.Errorf("cache: invalid read [%d,+%d)", blk, count)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := c.file(f)

	// Sequential-stream detection: a read continuing where the previous
	// one ended grows the run; a jump resets it.
	if blk == fs.lastEnd {
		fs.run += count
	} else {
		fs.run = count
	}
	fs.lastEnd = blk + count
	window := int64(0)
	if c.cfg.ReadAheadBlocks > 0 && fs.run >= c.cfg.SequentialThreshold {
		// Adaptive window: grows with the observed sequential run, up
		// to the configured cap.
		window = fs.run
		if window > c.cfg.ReadAheadBlocks {
			window = c.cfg.ReadAheadBlocks
		}
	}

	// Classify the requested range into hits and missing runs.
	var misses []span
	for i := int64(0); i < count; i++ {
		l := blk + i
		if b := fs.blocks[l]; b != nil {
			c.st.HitBlocks++
			if b.prefetched {
				b.prefetched = false
				c.st.ReadaheadUsed++
			}
			c.touch(b)
			continue
		}
		c.st.MissBlocks++
		if n := len(misses); n > 0 && misses[n-1].start+misses[n-1].count == l {
			misses[n-1].count++
		} else {
			misses = append(misses, span{start: l, count: 1})
		}
	}

	// Readahead: extend the final miss through the window — or, when the
	// whole request hit, prefetch ahead of it — clamped to blocks known
	// to exist and stopping at the first already-cached block.
	var issued int64
	if window > 0 {
		ext := span{start: blk + count, count: 0}
		if n := len(misses); n > 0 && misses[n-1].start+misses[n-1].count == blk+count {
			// The request missed right up to its end: grow that run.
			for l := blk + count; l < blk+count+window; l++ {
				if fs.blocks[l] != nil || !fs.written.Contains(alloc.Range{Start: l, Count: 1}) {
					break
				}
				misses[n-1].count++
				issued++
			}
		} else {
			for l := ext.start; l < ext.start+window; l++ {
				if fs.blocks[l] != nil || !fs.written.Contains(alloc.Range{Start: l, Count: 1}) {
					break
				}
				ext.count++
				issued++
			}
			if ext.count > 0 {
				misses = append(misses, ext)
			}
		}
	}

	for _, m := range misses {
		if err := c.store.Fetch(f, m.start, m.count); err != nil {
			return err
		}
		for l := m.start; l < m.start+m.count; l++ {
			b := &block{f: f, blk: l}
			if l >= blk+count {
				b.prefetched = true
			}
			fs.blocks[l] = b
			c.lruPush(b)
			c.total++
		}
	}
	c.st.ReadaheadIssued += issued
	return c.enforceCapacityLocked()
}

// --- barriers and invalidation ----------------------------------------

// dirtyRunsLocked returns f's dirty blocks coalesced into sorted runs.
// Callers hold c.mu.
func (c *Cache) dirtyRunsLocked(fs *fileState) []span {
	var dirty []int64
	for l, b := range fs.blocks {
		if b.dirty {
			dirty = append(dirty, l)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	var runs []span
	for _, l := range dirty {
		if n := len(runs); n > 0 && runs[n-1].start+runs[n-1].count == l {
			runs[n-1].count++
		} else {
			runs = append(runs, span{start: l, count: 1})
		}
	}
	return runs
}

// FlushFile is the per-file barrier: every dirty block of f is written
// back (coalesced into maximal runs, in ascending order). The PFS layer
// calls it on Fsync, Close, Truncate, and Delete.
func (c *Cache) FlushFile(f FileID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.FlushBarriers++
	return c.flushFileLocked(f)
}

// flushFileLocked implements FlushFile. Callers hold c.mu.
func (c *Cache) flushFileLocked(f FileID) error {
	fs := c.files[f]
	if fs == nil {
		return nil
	}
	for _, r := range c.dirtyRunsLocked(fs) {
		if err := c.writeBackRunLocked(fs.blocks[r.start]); err != nil {
			return err
		}
	}
	return nil
}

// Flush is the mount-wide barrier: every dirty block of every file is
// written back, files in ascending FileID order. The PFS layer calls it
// on Sync.
func (c *Cache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.st.FlushBarriers++
	ids := make([]FileID, 0, len(c.files))
	for f := range c.files {
		ids = append(ids, f)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, f := range ids {
		if err := c.flushFileLocked(f); err != nil {
			return err
		}
	}
	return nil
}

// Truncate drops every cached block of f at or beyond newSize and trims
// the known-written ranges, so stale tail blocks can neither hit nor be
// written back after the file shrinks. The PFS layer flushes f first (the
// barrier), then truncates the servers, then calls this.
func (c *Cache) Truncate(f FileID, newSize int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := c.files[f]
	if fs == nil {
		return
	}
	var tail []int64
	for l := range fs.blocks {
		if l >= newSize {
			tail = append(tail, l)
		}
	}
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	for _, l := range tail {
		c.drop(fs.blocks[l])
	}
	const maxLogical = int64(1) << 40
	fs.written.Remove(alloc.Range{Start: newSize, Count: maxLogical - newSize})
	if fs.lastEnd > newSize {
		fs.lastEnd, fs.run = 0, 0
	}
}

// Drop discards every cached block of f — dirty ones too, without write-
// back. The PFS layer calls it after deleting the file's objects (the
// preceding flush barrier has already drained the dirty set).
func (c *Cache) Drop(f FileID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := c.files[f]
	if fs == nil {
		return
	}
	var all []int64
	for l := range fs.blocks {
		all = append(all, l)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, l := range all {
		c.drop(fs.blocks[l])
	}
	delete(c.files, f)
}
