package cache

import (
	"fmt"
	"testing"

	"redbud/internal/core"
)

// call records one backing-store invocation.
type call struct {
	write      bool
	f          FileID
	blk, count int64
}

func (c call) String() string {
	kind := "fetch"
	if c.write {
		kind = "writeback"
	}
	return fmt.Sprintf("%s(f=%d,[%d,+%d))", kind, c.f, c.blk, c.count)
}

// fakeStore records every backing-store call.
type fakeStore struct {
	calls []call
	fail  error
}

func (s *fakeStore) WriteBack(f FileID, _ core.StreamID, blk, count int64) error {
	s.calls = append(s.calls, call{write: true, f: f, blk: blk, count: count})
	return s.fail
}

func (s *fakeStore) Fetch(f FileID, blk, count int64) error {
	s.calls = append(s.calls, call{write: false, f: f, blk: blk, count: count})
	return s.fail
}

func (s *fakeStore) fetches() []call {
	var out []call
	for _, c := range s.calls {
		if !c.write {
			out = append(out, c)
		}
	}
	return out
}

func (s *fakeStore) writebacks() []call {
	var out []call
	for _, c := range s.calls {
		if c.write {
			out = append(out, c)
		}
	}
	return out
}

func mustNil(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleBlockWritesFlushAsOneRun(t *testing.T) {
	st := &fakeStore{}
	c := New(Config{}, st)
	for i := int64(0); i < 16; i++ {
		mustNil(t, c.Write(1, core.StreamID{}, i, 1))
	}
	if len(st.calls) != 0 {
		t.Fatalf("writes must be absorbed without RPCs, got %v", st.calls)
	}
	mustNil(t, c.FlushFile(1))
	wb := st.writebacks()
	if len(wb) != 1 || wb[0] != (call{write: true, f: 1, blk: 0, count: 16}) {
		t.Fatalf("16 adjacent dirty blocks must flush as one run, got %v", wb)
	}
	s := c.Stats()
	if s.Writebacks != 1 || s.WritebackBlocks != 16 {
		t.Fatalf("stats = %+v, want 1 writeback of 16 blocks", s)
	}
	if s.DirtyBlocks != 0 || s.CachedBlocks != 16 {
		t.Fatalf("after flush: dirty=%d cached=%d, want 0/16 (blocks stay clean-cached)", s.DirtyBlocks, s.CachedBlocks)
	}
}

func TestSparseDirtyRunsFlushSeparately(t *testing.T) {
	st := &fakeStore{}
	c := New(Config{}, st)
	mustNil(t, c.Write(7, core.StreamID{}, 0, 2))
	mustNil(t, c.Write(7, core.StreamID{}, 8, 2))
	mustNil(t, c.FlushFile(7))
	wb := st.writebacks()
	want := []call{
		{write: true, f: 7, blk: 0, count: 2},
		{write: true, f: 7, blk: 8, count: 2},
	}
	if len(wb) != 2 || wb[0] != want[0] || wb[1] != want[1] {
		t.Fatalf("sparse runs must flush separately in ascending order, got %v", wb)
	}
}

func TestOverlappingWritesStayOneRun(t *testing.T) {
	st := &fakeStore{}
	c := New(Config{}, st)
	mustNil(t, c.Write(1, core.StreamID{}, 0, 4))
	mustNil(t, c.Write(1, core.StreamID{}, 2, 4))
	if got := c.Stats().DirtyBlocks; got != 6 {
		t.Fatalf("dirty = %d, want 6 (re-dirtied blocks not double-counted)", got)
	}
	mustNil(t, c.FlushFile(1))
	if wb := st.writebacks(); len(wb) != 1 || wb[0].count != 6 {
		t.Fatalf("overlapping writes must flush as one run, got %v", wb)
	}
}

func TestReadYourWritesCostsNoRPC(t *testing.T) {
	st := &fakeStore{}
	c := New(Config{}, st)
	mustNil(t, c.Write(1, core.StreamID{}, 0, 8))
	mustNil(t, c.Read(1, 0, 8))
	mustNil(t, c.Read(1, 3, 2))
	if len(st.calls) != 0 {
		t.Fatalf("reads of dirty data must be served from cache, got %v", st.calls)
	}
	s := c.Stats()
	if s.HitBlocks != 10 || s.MissBlocks != 0 {
		t.Fatalf("hits=%d misses=%d, want 10/0", s.HitBlocks, s.MissBlocks)
	}
}

func TestDirtyHighWaterWritesBackOldestRun(t *testing.T) {
	st := &fakeStore{}
	c := New(Config{DirtyHighWater: 4, CapacityBlocks: 100, ReadAheadBlocks: -1}, st)
	mustNil(t, c.Write(1, core.StreamID{}, 0, 4)) // at the mark: no write-back
	if len(st.calls) != 0 {
		t.Fatalf("at high water nothing flushes, got %v", st.calls)
	}
	mustNil(t, c.Write(1, core.StreamID{}, 10, 1)) // over: oldest run drains
	wb := st.writebacks()
	if len(wb) != 1 || wb[0] != (call{write: true, f: 1, blk: 0, count: 4}) {
		t.Fatalf("over high water the oldest run must drain, got %v", wb)
	}
	if got := c.Stats().DirtyBlocks; got != 1 {
		t.Fatalf("dirty = %d, want 1 (only the new block)", got)
	}
}

func TestCapacityEvictsLRUAndRefetches(t *testing.T) {
	st := &fakeStore{}
	c := New(Config{CapacityBlocks: 4, DirtyHighWater: 4, ReadAheadBlocks: -1}, st)
	mustNil(t, c.Write(1, core.StreamID{}, 0, 4))
	mustNil(t, c.Write(1, core.StreamID{}, 4, 1))
	// Dirty count 5 exceeded the (capacity-clamped) high water: the whole
	// adjacent run [0,5) drained as one write-back, then block 0 — the
	// least recently used — was evicted to fit capacity.
	if wb := st.writebacks(); len(wb) != 1 || wb[0].blk != 0 || wb[0].count != 5 {
		t.Fatalf("writebacks = %v, want one [0,+5)", wb)
	}
	s := c.Stats()
	if s.EvictedBlocks != 1 || s.CachedBlocks != 4 {
		t.Fatalf("evicted=%d cached=%d, want 1/4", s.EvictedBlocks, s.CachedBlocks)
	}
	// The evicted block is gone: re-reading it refetches from the store.
	mustNil(t, c.Read(1, 0, 1))
	if f := st.fetches(); len(f) != 1 || f[0] != (call{f: 1, blk: 0, count: 1}) {
		t.Fatalf("evicted block must refetch, got %v", f)
	}
	// The surviving blocks still hit.
	mustNil(t, c.Read(1, 2, 3))
	if f := st.fetches(); len(f) != 1 {
		t.Fatalf("resident blocks must not refetch, got %v", f)
	}
}

func TestDirtyVictimWritesBackBeforeEviction(t *testing.T) {
	st := &fakeStore{}
	// High water = capacity: eviction, not the high-water mark, is what
	// forces the dirty victim out.
	c := New(Config{CapacityBlocks: 4, DirtyHighWater: 100, ReadAheadBlocks: -1}, st)
	mustNil(t, c.Write(1, core.StreamID{}, 0, 1))
	mustNil(t, c.Write(1, core.StreamID{}, 10, 4))
	// Capacity 4 forces block 0 (LRU tail, dirty) out: its run must be
	// written back first — dirty data is never silently dropped.
	wb := st.writebacks()
	if len(wb) != 1 || wb[0] != (call{write: true, f: 1, blk: 0, count: 1}) {
		t.Fatalf("dirty victim must write back before eviction, got %v", wb)
	}
	if got := c.Stats().DirtyBlocks; got != 4 {
		t.Fatalf("dirty = %d, want 4", got)
	}
}

func TestReadaheadArmsAfterSequentialRun(t *testing.T) {
	st := &fakeStore{}
	c := New(Config{CapacityBlocks: 16, DirtyHighWater: 16, ReadAheadBlocks: 8, SequentialThreshold: 4}, st)
	// Make [0,64) known to the cache, then push everything but the tail
	// out (capacity 16 keeps [48,64)).
	mustNil(t, c.Write(1, core.StreamID{}, 0, 64))
	st.calls = nil

	// A cold sequential reader: the first read is below the threshold and
	// fetches exactly what was asked.
	mustNil(t, c.Read(1, 0, 2))
	if f := st.fetches(); len(f) != 1 || f[0].count != 2 {
		t.Fatalf("below threshold no readahead, got %v", f)
	}
	// The second read proves the stream sequential (run=4 >= threshold):
	// its miss is extended through the window.
	mustNil(t, c.Read(1, 2, 2))
	f := st.fetches()
	if len(f) != 2 || f[1] != (call{f: 1, blk: 2, count: 6}) {
		t.Fatalf("armed reader must extend the miss, got %v", f)
	}
	if got := c.Stats().ReadaheadIssued; got != 4 {
		t.Fatalf("ReadaheadIssued = %d, want 4", got)
	}
	// The prefetched blocks serve the next read as pure hits and count
	// used; a fully-hitting read on a still-sequential stream keeps
	// prefetching ahead with the grown (run=8) window.
	mustNil(t, c.Read(1, 4, 4))
	f = st.fetches()
	if len(f) != 3 || f[2] != (call{f: 1, blk: 8, count: 8}) {
		t.Fatalf("fetches = %v, want third = prefetch [8,+8)", f)
	}
	s := c.Stats()
	if s.ReadaheadUsed != 4 {
		t.Fatalf("ReadaheadUsed = %d, want 4", s.ReadaheadUsed)
	}
	if s.ReadaheadIssued != 12 {
		t.Fatalf("ReadaheadIssued = %d, want 12 (4 extended + 8 ahead)", s.ReadaheadIssued)
	}
}

func TestReadaheadNeverReadsAHole(t *testing.T) {
	st := &fakeStore{}
	c := New(Config{ReadAheadBlocks: 64, SequentialThreshold: 1}, st)
	// A sparse file: [0,2) and [8,10) exist, [2,8) is a hole.
	mustNil(t, c.Write(1, core.StreamID{}, 0, 2))
	mustNil(t, c.Write(1, core.StreamID{}, 8, 2))
	mustNil(t, c.FlushFile(1))
	st.calls = nil
	// A fully-hitting sequential read wants to prefetch ahead, but block
	// 2 is a hole: the window clamps to known-written ranges and nothing
	// is fetched.
	mustNil(t, c.Read(1, 0, 2))
	if len(st.calls) != 0 {
		t.Fatalf("readahead crossed into a hole: %v", st.calls)
	}
	if got := c.Stats().ReadaheadIssued; got != 0 {
		t.Fatalf("ReadaheadIssued = %d, want 0", got)
	}
}

func TestReadaheadOverwrittenBeforeUseCountsWasted(t *testing.T) {
	st := &fakeStore{}
	c := New(Config{CapacityBlocks: 8, DirtyHighWater: 8, ReadAheadBlocks: 4, SequentialThreshold: 1}, st)
	mustNil(t, c.Write(1, core.StreamID{}, 0, 16)) // [8,16) stays cached
	mustNil(t, c.FlushFile(1))
	// The adaptive window matches the observed run (4): the miss [0,4)
	// extends into a fetch of [0,8).
	mustNil(t, c.Read(1, 0, 4))
	if got := c.Stats().ReadaheadIssued; got != 4 {
		t.Fatalf("ReadaheadIssued = %d, want 4", got)
	}
	// Overwriting prefetched blocks before any read referenced them means
	// the prefetch was wasted.
	mustNil(t, c.Write(1, core.StreamID{}, 4, 4))
	if got := c.Stats().ReadaheadWasted; got != 4 {
		t.Fatalf("ReadaheadWasted = %d, want 4", got)
	}
}

func TestFlushOrderIsDeterministic(t *testing.T) {
	want := []call{
		{write: true, f: 1, blk: 0, count: 2},
		{write: true, f: 1, blk: 6, count: 1},
		{write: true, f: 2, blk: 3, count: 2},
		{write: true, f: 9, blk: 100, count: 4},
	}
	for round := 0; round < 5; round++ {
		st := &fakeStore{}
		c := New(Config{}, st)
		// Dirty three files in an order unrelated to the flush order.
		mustNil(t, c.Write(9, core.StreamID{}, 100, 4))
		mustNil(t, c.Write(1, core.StreamID{}, 6, 1))
		mustNil(t, c.Write(2, core.StreamID{}, 3, 2))
		mustNil(t, c.Write(1, core.StreamID{}, 0, 2))
		mustNil(t, c.Flush())
		wb := st.writebacks()
		if len(wb) != len(want) {
			t.Fatalf("round %d: writebacks %v, want %v", round, wb, want)
		}
		for i := range want {
			if wb[i] != want[i] {
				t.Fatalf("round %d: writeback[%d] = %v, want %v (flush order must be deterministic)", round, i, wb[i], want[i])
			}
		}
	}
}

func TestTruncateDropsTailWithoutWriteback(t *testing.T) {
	st := &fakeStore{}
	c := New(Config{ReadAheadBlocks: 64, SequentialThreshold: 1}, st)
	mustNil(t, c.Write(1, core.StreamID{}, 0, 8))
	c.Truncate(1, 4)
	mustNil(t, c.FlushFile(1))
	wb := st.writebacks()
	if len(wb) != 1 || wb[0] != (call{write: true, f: 1, blk: 0, count: 4}) {
		t.Fatalf("truncated tail must not write back, got %v", wb)
	}
	// The tail is no longer known-written: a fully-hitting read of the
	// head must not prefetch past the new EOF.
	st.calls = nil
	mustNil(t, c.Read(1, 0, 4))
	if len(st.calls) != 0 {
		t.Fatalf("prefetch crossed truncated EOF: %v", st.calls)
	}
}

func TestDropDiscardsEverything(t *testing.T) {
	st := &fakeStore{}
	c := New(Config{}, st)
	mustNil(t, c.Write(1, core.StreamID{}, 0, 8))
	mustNil(t, c.Write(2, core.StreamID{}, 0, 4))
	c.Drop(1)
	mustNil(t, c.Flush())
	wb := st.writebacks()
	if len(wb) != 1 || wb[0].f != 2 {
		t.Fatalf("dropped file must not write back, got %v", wb)
	}
	s := c.Stats()
	if s.CachedBlocks != 4 || s.DirtyBlocks != 0 {
		t.Fatalf("cached=%d dirty=%d, want 4/0", s.CachedBlocks, s.DirtyBlocks)
	}
}

func TestStoreErrorsPropagate(t *testing.T) {
	st := &fakeStore{fail: fmt.Errorf("boom")}
	c := New(Config{}, st)
	mustNil(t, c.Write(1, core.StreamID{}, 0, 4)) // absorbed, no RPC yet
	if err := c.FlushFile(1); err == nil {
		t.Fatal("write-back failure must surface from FlushFile")
	}
	if err := c.Read(1, 100, 1); err == nil {
		t.Fatal("fetch failure must surface from Read")
	}
	if err := c.Write(1, core.StreamID{}, -1, 1); err == nil {
		t.Fatal("negative offset must be rejected")
	}
	if err := c.Read(1, 0, 0); err == nil {
		t.Fatal("empty read must be rejected")
	}
}
