package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"redbud/internal/sim"
)

func TestDistBasics(t *testing.T) {
	var d Dist
	if d.Count() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.Percentile(50) != 0 {
		t.Fatal("empty distribution should read zeros")
	}
	for _, v := range []int64{5, 1, 9, 3, 7} {
		d.Add(v)
	}
	if d.Count() != 5 || d.Sum() != 25 {
		t.Fatalf("count/sum = %d/%d", d.Count(), d.Sum())
	}
	if d.Mean() != 5 {
		t.Fatalf("mean = %g", d.Mean())
	}
	if d.Min() != 1 || d.Max() != 9 {
		t.Fatalf("min/max = %d/%d", d.Min(), d.Max())
	}
	if got := d.Percentile(50); got != 5 {
		t.Fatalf("p50 = %d, want 5", got)
	}
	if got := d.Percentile(100); got != 9 {
		t.Fatalf("p100 = %d, want 9", got)
	}
	if got := d.Percentile(1); got != 1 {
		t.Fatalf("p1 = %d, want 1", got)
	}
	if d.Stddev() <= 0 {
		t.Fatal("stddev should be positive")
	}
}

func TestDistPercentileBounds(t *testing.T) {
	var d Dist
	d.Add(1)
	for _, p := range []float64{0, -5, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%g) should panic", p)
				}
			}()
			d.Percentile(p)
		}()
	}
}

func TestDistPercentileEdgeCases(t *testing.T) {
	var empty Dist
	for _, p := range []float64{1, 50, 100} {
		if got := empty.Percentile(p); got != 0 {
			t.Errorf("empty p%g = %d, want 0", p, got)
		}
	}

	var single Dist
	single.Add(42)
	for _, p := range []float64{0.001, 1, 50, 99, 100} {
		if got := single.Percentile(p); got != 42 {
			t.Errorf("single-sample p%g = %d, want 42", p, got)
		}
	}
	if single.Min() != 42 || single.Max() != 42 {
		t.Errorf("single-sample min/max = %d/%d", single.Min(), single.Max())
	}

	var d Dist
	for v := int64(1); v <= 10; v++ {
		d.Add(v)
	}
	if got := d.Percentile(100); got != d.Max() {
		t.Errorf("p100 = %d, want max %d", got, d.Max())
	}
	if got := d.Percentile(10); got != 1 {
		t.Errorf("p10 = %d, want 1 (nearest rank)", got)
	}
}

func TestDistMergeSelf(t *testing.T) {
	var d Dist
	for _, v := range []int64{1, 2, 3} {
		d.Add(v)
	}
	d.Merge(&d)
	if d.Count() != 6 || d.Sum() != 12 {
		t.Fatalf("self-merge count/sum = %d/%d, want 6/12", d.Count(), d.Sum())
	}
	if d.Min() != 1 || d.Max() != 3 {
		t.Fatalf("self-merge min/max = %d/%d", d.Min(), d.Max())
	}
}

// Property: Add and Merge preserve Sum and Count exactly — the invariant
// the telemetry registry's aggregation rests on.
func TestDistAddMergePreservesSumCount(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		var a, b Dist
		var wantSum int64
		var wantCount int
		for i, n := 0, rng.Intn(100); i < n; i++ {
			v := rng.Int63n(1_000_000) - 500_000
			a.Add(v)
			wantSum += v
			wantCount++
		}
		for i, n := 0, rng.Intn(100); i < n; i++ {
			v := rng.Int63n(1_000_000) - 500_000
			b.Add(v)
			wantSum += v
			wantCount++
		}
		bSum, bCount := b.Sum(), b.Count()
		a.Merge(&b)
		// Merge must leave the source untouched.
		if b.Sum() != bSum || b.Count() != bCount {
			return false
		}
		return a.Sum() == wantSum && a.Count() == wantCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone and bounded by min/max, and adding
// after reading percentiles stays consistent.
func TestDistMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		var d Dist
		n := rng.Intn(200) + 1
		for i := 0; i < n; i++ {
			d.Add(rng.Int63n(1000))
			if rng.Intn(5) == 0 {
				_ = d.Percentile(50) // interleaved reads must not corrupt
			}
		}
		prev := d.Min()
		for p := 5.0; p <= 100; p += 5 {
			v := d.Percentile(p)
			if v < prev || v > d.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("system", "ops/s", "gain")
	tab.AddRow("normal", "1517", "")
	tab.AddRow("embedded", "4014", "+165%")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "system") || !strings.Contains(lines[3], "+165%") {
		t.Fatalf("unexpected render:\n%s", out)
	}
	// Numeric right-alignment: "1517" and "4014" end at the same column.
	i2 := strings.Index(lines[2], "1517")
	i3 := strings.Index(lines[3], "4014")
	if i2 != i3 {
		t.Fatalf("numeric cells misaligned:\n%s", out)
	}
}

func TestTableRowBounds(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("only") // short rows pad
	defer func() {
		if recover() == nil {
			t.Fatal("oversized row should panic")
		}
	}()
	tab.AddRow("1", "2", "3")
}

func TestIsNumeric(t *testing.T) {
	for _, s := range []string{"12", "-3.5", "+7", "99%", "147.9 MB/s"} {
		if !isNumeric(s) {
			t.Errorf("%q should be numeric", s)
		}
	}
	for _, s := range []string{"", "abc", "1.2.3", "12a"} {
		if isNumeric(s) {
			t.Errorf("%q should not be numeric", s)
		}
	}
}
