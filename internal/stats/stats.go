// Package stats provides the measurement helpers shared by the benchmark
// drivers and tools: streaming distribution summaries (for per-operation
// latencies) and an aligned text-table renderer for reports.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Dist accumulates a distribution of int64 samples (typically simulated
// nanoseconds). The zero value is an empty distribution ready to use.
// Samples are retained exactly, so percentiles are exact; the benchmark
// drivers produce at most a few hundred thousand samples per phase.
type Dist struct {
	values []int64
	sum    int64
	sorted bool
}

// Add records one sample.
func (d *Dist) Add(v int64) {
	d.values = append(d.values, v)
	d.sum += v
	d.sorted = false
}

// Merge folds every sample of o into d, leaving o unchanged. Merging a
// distribution into itself doubles it, which follows from the sample
// semantics. The telemetry registry uses Merge to aggregate per-component
// histograms into layer-wide ones.
func (d *Dist) Merge(o *Dist) {
	if o == nil || len(o.values) == 0 {
		return
	}
	d.values = append(d.values, o.values...)
	d.sum += o.sum
	d.sorted = false
}

// Clone returns a deep copy of the distribution: mutations of either side
// never affect the other.
func (d *Dist) Clone() Dist {
	out := Dist{sum: d.sum, sorted: d.sorted}
	if len(d.values) > 0 {
		out.values = append(make([]int64, 0, len(d.values)), d.values...)
	}
	return out
}

// Count returns the number of samples.
func (d *Dist) Count() int { return len(d.values) }

// Sum returns the sample total.
func (d *Dist) Sum() int64 { return d.sum }

// Mean returns the arithmetic mean, or 0 for an empty distribution.
func (d *Dist) Mean() float64 {
	if len(d.values) == 0 {
		return 0
	}
	return float64(d.sum) / float64(len(d.values))
}

// Min returns the smallest sample, or 0 when empty.
func (d *Dist) Min() int64 {
	d.ensureSorted()
	if len(d.values) == 0 {
		return 0
	}
	return d.values[0]
}

// Max returns the largest sample, or 0 when empty.
func (d *Dist) Max() int64 {
	d.ensureSorted()
	if len(d.values) == 0 {
		return 0
	}
	return d.values[len(d.values)-1]
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, or 0 when empty. It panics on an out-of-range p:
// the callers are report code where that is a bug.
func (d *Dist) Percentile(p float64) int64 {
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of (0,100]", p))
	}
	if len(d.values) == 0 {
		return 0
	}
	d.ensureSorted()
	rank := int(math.Ceil(p / 100 * float64(len(d.values))))
	if rank < 1 {
		rank = 1
	}
	return d.values[rank-1]
}

// Stddev returns the population standard deviation.
func (d *Dist) Stddev() float64 {
	n := len(d.values)
	if n == 0 {
		return 0
	}
	mean := d.Mean()
	var acc float64
	for _, v := range d.values {
		diff := float64(v) - mean
		acc += diff * diff
	}
	return math.Sqrt(acc / float64(n))
}

// ensureSorted sorts the retained samples once per mutation burst.
func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Slice(d.values, func(i, j int) bool { return d.values[i] < d.values[j] })
		d.sorted = true
	}
}

// Table renders aligned text tables for benchmark reports.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable builds a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells, long
// rows panic (a report bug).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("stats: row of %d cells exceeds %d columns", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v.
func (t *Table) AddRowf(cells ...interface{}) {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = fmt.Sprint(c)
	}
	t.AddRow(out...)
}

// Render writes the table: headers, a rule, and the rows, each column
// padded to its widest cell. Numeric-looking cells are right-aligned.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if isNumeric(c) {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.headers)); err != nil {
		return err
	}
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, strings.Join(rule, "  ")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// isNumeric reports whether a cell reads as a number (with optional
// sign, decimals, percent, or unit suffix starting with a space).
func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	s = strings.TrimSuffix(s, "%")
	dot := false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case (r == '-' || r == '+') && i == 0:
		case r == '.' && !dot:
			dot = true
		default:
			return false
		}
	}
	return true
}
