package disk

import (
	"testing"

	"redbud/internal/sim"
)

// TestPlanDamageDeterministic: a damage plan is a pure function of (mode,
// seed, count) — the property the whole crash sweep's byte-identical
// replay rests on.
func TestPlanDamageDeterministic(t *testing.T) {
	for _, mode := range []TearMode{TearNone, TearTorn, TearLost, TearMisdirected} {
		for seed := uint64(1); seed <= 5; seed++ {
			a := PlanDamage(mode, sim.NewRand(seed), 64)
			b := PlanDamage(mode, sim.NewRand(seed), 64)
			if a != b {
				t.Fatalf("mode %s seed %d: %+v != %+v", mode, seed, a, b)
			}
		}
	}
}

// TestPlanDamageBounds pins each mode's structural invariants over many
// draws: persisted prefix within the burst, victims only on misdirection,
// the victim never the misdirected payload's own address.
func TestPlanDamageBounds(t *testing.T) {
	rng := sim.NewRand(7)
	for i := 0; i < 1000; i++ {
		count := int64(2 + i%63)
		for _, mode := range []TearMode{TearNone, TearTorn, TearLost, TearMisdirected} {
			d := PlanDamage(mode, rng, count)
			if d.Count != count {
				t.Fatalf("%s: Count = %d, want %d", mode, d.Count, count)
			}
			if d.Persisted < 0 || d.Persisted > count {
				t.Fatalf("%s: Persisted = %d outside [0,%d]", mode, d.Persisted, count)
			}
			switch mode {
			case TearNone:
				if !d.AllPersisted() || d.Victim != -1 {
					t.Fatalf("none: %+v, want fully persisted and no victim", d)
				}
			case TearLost:
				if d.Persisted != 0 || d.Victim != -1 {
					t.Fatalf("lost: %+v, want nothing persisted and no victim", d)
				}
			case TearTorn:
				if d.Persisted >= count {
					t.Fatalf("torn: %+v, want a strict prefix", d)
				}
				if d.Victim != -1 {
					t.Fatalf("torn: %+v, want no victim", d)
				}
			case TearMisdirected:
				if d.Victim < 0 || d.Victim >= count {
					t.Fatalf("misdirected: victim %d outside burst [0,%d)", d.Victim, count)
				}
				if d.Victim == d.Persisted {
					t.Fatalf("misdirected: %+v, victim is the misdirected payload itself", d)
				}
			}
		}
	}
}

// TestPlanDamageDegenerateBursts: a zero burst is fully persisted no
// matter the mode, and a one-block misdirection (no other address within
// the burst) degrades to a clean loss.
func TestPlanDamageDegenerateBursts(t *testing.T) {
	for _, mode := range []TearMode{TearNone, TearTorn, TearLost, TearMisdirected} {
		d := PlanDamage(mode, sim.NewRand(1), 0)
		if !d.AllPersisted() || d.Victim != -1 {
			t.Fatalf("%s on empty burst: %+v, want trivially persisted", mode, d)
		}
	}
	d := PlanDamage(TearMisdirected, sim.NewRand(1), 1)
	if d.Mode != TearLost || d.Persisted != 0 || d.Victim != -1 {
		t.Fatalf("one-block misdirect: %+v, want degraded to lost", d)
	}
}

// TestTearModeNames: String and ParseTearMode round-trip, and unknown
// names are rejected (the miffsck sweep flag parses user input).
func TestTearModeNames(t *testing.T) {
	for _, mode := range []TearMode{TearNone, TearTorn, TearLost, TearMisdirected} {
		got, err := ParseTearMode(mode.String())
		if err != nil || got != mode {
			t.Fatalf("round-trip %s: got %v, %v", mode, got, err)
		}
	}
	if _, err := ParseTearMode("shredded"); err == nil {
		t.Fatal("ParseTearMode must reject unknown modes")
	}
}
