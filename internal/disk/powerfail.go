package disk

import (
	"fmt"

	"redbud/internal/sim"
)

// Power-fail write semantics. The disk model carries timing, not bytes, so
// a power failure is modeled as a deterministic *damage plan*: given the
// burst of blocks that was in flight when the power was cut, the plan
// decides which prefix reached the media and whether one payload landed at
// the wrong address. The caller — who owns the durable-state
// representation the blocks were destined for (journal region, home
// blocks, object tags) — applies the plan to its own state.
//
// Three failure classes are modeled, matching the classic storage
// fault-model taxonomy:
//
//   - torn: the burst is cut mid-stream; a leading prefix persisted, the
//     rest never hit the platter.
//   - lost: the whole burst evaporated — it was acknowledged from the
//     write cache and the cache contents died with the power.
//   - misdirected: as torn, but the first unpersisted payload was written
//     to the wrong address *within the same burst* — a seek landed on the
//     wrong track. Misdirection outside the in-flight burst (an arbitrary
//     victim anywhere on the volume) is out of scope: no journaling file
//     system recovers from it without full-volume checksums, and the
//     sweep's acceptance bar is 100% recovered-consistent.

// TearMode selects how a power failure damages the in-flight write burst.
type TearMode int

const (
	// TearNone: the burst completed, then the power failed. The crash
	// point still fires — this is the "committed, then died" case.
	TearNone TearMode = iota
	// TearTorn: a prefix of the burst persisted.
	TearTorn
	// TearLost: none of the burst persisted.
	TearLost
	// TearMisdirected: a prefix persisted and the next payload landed on
	// another block of the same burst.
	TearMisdirected
)

// String returns the mode's sweep-report name.
func (m TearMode) String() string {
	switch m {
	case TearNone:
		return "none"
	case TearTorn:
		return "torn"
	case TearLost:
		return "lost"
	case TearMisdirected:
		return "misdirected"
	default:
		return fmt.Sprintf("TearMode(%d)", int(m))
	}
}

// ParseTearMode is the inverse of String.
func ParseTearMode(s string) (TearMode, error) {
	switch s {
	case "none":
		return TearNone, nil
	case "torn":
		return TearTorn, nil
	case "lost":
		return TearLost, nil
	case "misdirected":
		return TearMisdirected, nil
	}
	return TearNone, fmt.Errorf("disk: unknown tear mode %q", s)
}

// Damage is one power failure's effect on an in-flight burst of Count
// blocks, in the burst's own submission order.
type Damage struct {
	// Mode is the failure class the plan was drawn for.
	Mode TearMode
	// Count is the burst length the plan covers.
	Count int64
	// Persisted is the number of leading blocks that reached the media.
	// Blocks at index >= Persisted never hit their intended address.
	Persisted int64
	// Victim, when >= 0, is the burst index whose on-media content was
	// overwritten by the payload of index Persisted (the misdirected
	// write). -1 when no misdirection occurred.
	Victim int64
}

// AllPersisted reports whether the whole burst reached the media.
func (d Damage) AllPersisted() bool { return d.Persisted >= d.Count }

// PlanDamage draws a deterministic damage plan for a power failure that
// cut a burst of count blocks, using rng as the only entropy source (same
// seed, same plan). A count of zero — the failure hit between bursts —
// always yields an empty, fully-persisted plan.
func PlanDamage(mode TearMode, rng *sim.Rand, count int64) Damage {
	d := Damage{Mode: mode, Count: count, Persisted: count, Victim: -1}
	if count <= 0 {
		return d
	}
	switch mode {
	case TearNone:
		// Fully persisted.
	case TearLost:
		d.Persisted = 0
	case TearTorn:
		d.Persisted = rng.Int63n(count)
	case TearMisdirected:
		if count < 2 {
			// A one-block burst has no other address within the burst to
			// misdirect to; the payload is simply gone.
			d.Mode = TearLost
			d.Persisted = 0
			return d
		}
		d.Persisted = rng.Int63n(count)
		// Victim drawn uniformly from the other count-1 indexes; a victim
		// below Persisted tears a block that had already persisted.
		v := rng.Int63n(count - 1)
		if v >= d.Persisted {
			v++
		}
		d.Victim = v
	}
	return d
}
