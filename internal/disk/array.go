package disk

import (
	"fmt"

	"redbud/internal/sim"
)

// Array is a JBOD of identical disks, the storage substrate under the
// Redbud IO servers. Disks in an Array operate independently and in
// parallel: the elapsed time of a multi-disk phase is the maximum of the
// member busy times, not the sum.
type Array struct {
	disks []*Disk
}

// NewArray builds n disks of nblocks blocks each, sharing one configuration.
func NewArray(cfg Config, n int, nblocks int64) *Array {
	if n <= 0 {
		panic(fmt.Sprintf("disk: array size must be positive, got %d", n))
	}
	a := &Array{disks: make([]*Disk, n)}
	for i := range a.disks {
		a.disks[i] = New(cfg, nblocks)
	}
	return a
}

// Len returns the number of member disks.
func (a *Array) Len() int { return len(a.disks) }

// Disk returns member i.
func (a *Array) Disk(i int) *Disk { return a.disks[i] }

// Stats returns the field-wise sum of all member counters.
func (a *Array) Stats() Stats {
	var total Stats
	for _, d := range a.disks {
		total = total.Add(d.Stats())
	}
	return total
}

// MaxBusy returns the largest member busy time: the elapsed simulated time
// of a phase in which the disks worked in parallel.
func (a *Array) MaxBusy() sim.Ns {
	var max sim.Ns
	for _, d := range a.disks {
		if b := d.Stats().BusyNs; b > max {
			max = b
		}
	}
	return max
}

// ResetStats zeroes the counters of every member disk.
func (a *Array) ResetStats() {
	for _, d := range a.disks {
		d.ResetStats()
	}
}
