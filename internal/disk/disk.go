// Package disk models a rotational disk at the granularity the MiF paper
// measures: positionings (seek + rotational settle) and sequential transfer.
//
// The paper's testbed uses fabric disks in a JBOD with ~170 MB/s sequential
// bandwidth; its central observation is that intra-file fragmentation forces
// the head to "move back and forth constantly among the different regions".
// A cost model with a distance-dependent positioning term and a bandwidth
// term reproduces exactly that mechanism, and the per-disk counters expose
// "disk positioning times" the way the paper counts them (by intercepting
// requests at the general block layer).
package disk

import (
	"fmt"
	"math"
	"sync"

	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// Config holds the physical parameters of a simulated disk. The zero value
// is not usable; start from DefaultConfig.
type Config struct {
	// BlockSize is the size of one block in bytes.
	BlockSize int64
	// TransferMBps is the sustained sequential transfer rate in MB/s
	// (1 MB = 1e6 bytes).
	TransferMBps float64
	// PositionBaseNs is the fixed cost of any non-sequential access:
	// head settle plus average rotational latency.
	PositionBaseNs sim.Ns
	// SeekMaxNs is the additional cost of a full-stroke seek. The seek
	// component scales with the square root of the distance fraction,
	// the classic short-seek curve.
	SeekMaxNs sim.Ns
	// NearThreshold is the distance in blocks under which an access is
	// charged a track-to-track cost (TrackSwitchNs) instead of a full
	// positioning. This models accesses that stay within the current
	// cylinder group.
	NearThreshold int64
	// TrackSwitchNs is the cost of a near (same-cylinder-neighbourhood)
	// reposition.
	TrackSwitchNs sim.Ns
}

// DefaultConfig returns parameters calibrated to the paper's testbed disks:
// ~170 MB/s sequential, ~7 ms average random positioning.
func DefaultConfig() Config {
	return Config{
		BlockSize:      4096,
		TransferMBps:   170,
		PositionBaseNs: 4 * sim.Millisecond, // settle + avg rotational latency
		SeekMaxNs:      9 * sim.Millisecond, // full stroke adds up to 9 ms
		NearThreshold:  256,                 // 1 MiB neighbourhood
		TrackSwitchNs:  800 * sim.Microsecond,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.BlockSize <= 0:
		return fmt.Errorf("disk: BlockSize must be positive, got %d", c.BlockSize)
	case c.TransferMBps <= 0:
		return fmt.Errorf("disk: TransferMBps must be positive, got %g", c.TransferMBps)
	case c.PositionBaseNs < 0 || c.SeekMaxNs < 0 || c.TrackSwitchNs < 0:
		return fmt.Errorf("disk: negative timing parameter")
	case c.NearThreshold < 0:
		return fmt.Errorf("disk: NearThreshold must be non-negative, got %d", c.NearThreshold)
	}
	return nil
}

// Stats are the per-disk counters accumulated across Access calls.
type Stats struct {
	// Positionings counts full random repositions (head moved beyond the
	// near threshold).
	Positionings int64
	// NearSwitches counts short repositions within the near threshold.
	NearSwitches int64
	// SeqAccesses counts accesses that continued exactly at the head
	// position and paid transfer cost only.
	SeqAccesses int64
	// Requests counts all Access calls.
	Requests int64
	// BlocksRead and BlocksWritten count transferred blocks by direction.
	BlocksRead    int64
	BlocksWritten int64
	// SeekDistanceBlocks accumulates the absolute head travel distance.
	SeekDistanceBlocks int64
	// BusyNs is the total simulated service time of this disk.
	BusyNs sim.Ns
}

// Bytes returns the total bytes transferred given the disk block size.
func (s Stats) Bytes(blockSize int64) int64 {
	return (s.BlocksRead + s.BlocksWritten) * blockSize
}

// Add returns the field-wise sum of two stat sets.
func (s Stats) Add(o Stats) Stats {
	s.Positionings += o.Positionings
	s.NearSwitches += o.NearSwitches
	s.SeqAccesses += o.SeqAccesses
	s.Requests += o.Requests
	s.BlocksRead += o.BlocksRead
	s.BlocksWritten += o.BlocksWritten
	s.SeekDistanceBlocks += o.SeekDistanceBlocks
	s.BusyNs += o.BusyNs
	return s
}

// Sub returns the field-wise difference s - o, used to isolate the counters
// of one benchmark phase.
func (s Stats) Sub(o Stats) Stats {
	s.Positionings -= o.Positionings
	s.NearSwitches -= o.NearSwitches
	s.SeqAccesses -= o.SeqAccesses
	s.Requests -= o.Requests
	s.BlocksRead -= o.BlocksRead
	s.BlocksWritten -= o.BlocksWritten
	s.SeekDistanceBlocks -= o.SeekDistanceBlocks
	s.BusyNs -= o.BusyNs
	return s
}

// Disk is one simulated rotational disk. All methods are safe for
// concurrent use; concurrent requests are serialized, which models a single
// spindle servicing one request at a time.
type Disk struct {
	mu      sync.Mutex
	cfg     Config
	nblocks int64
	head    int64
	stats   Stats

	nsPerBlock sim.Ns

	// serviceHist, when attached via Instrument, receives every Access
	// service time. Kept nil on uninstrumented disks so the hot path pays
	// one pointer test.
	serviceHist *telemetry.Histogram
}

// New creates a disk with nblocks blocks. It panics on an invalid
// configuration: a mis-built device model would silently corrupt every
// experiment downstream.
func New(cfg Config, nblocks int64) *Disk {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if nblocks <= 0 {
		panic(fmt.Sprintf("disk: nblocks must be positive, got %d", nblocks))
	}
	nsPerBlock := sim.Ns(float64(cfg.BlockSize) / (cfg.TransferMBps * 1e6) * float64(sim.Second))
	if nsPerBlock < 1 {
		nsPerBlock = 1
	}
	return &Disk{cfg: cfg, nblocks: nblocks, nsPerBlock: nsPerBlock}
}

// Config returns the disk's configuration.
func (d *Disk) Config() Config { return d.cfg }

// NBlocks returns the disk capacity in blocks.
func (d *Disk) NBlocks() int64 { return d.nblocks }

// Head returns the current head position (the block after the last access).
func (d *Disk) Head() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.head
}

// Stats returns a snapshot of the accumulated counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters without moving the head. Benchmark phases
// use it to measure each phase independently.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// Instrument publishes the disk's counters into the registry under the
// given labels and attaches a service-time histogram observed on every
// Access. The pre-existing Stats/ResetStats accessors keep working; the
// registry's counter values track them (including resets, since collectors
// read the live counters at snapshot time).
func (d *Disk) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	d.mu.Lock()
	d.serviceHist = reg.Histogram("disk_service_ns", labels)
	d.mu.Unlock()
	reg.CounterFunc("disk_requests", labels, func() int64 { return d.Stats().Requests })
	reg.CounterFunc("disk_positionings", labels, func() int64 { return d.Stats().Positionings })
	reg.CounterFunc("disk_near_switches", labels, func() int64 { return d.Stats().NearSwitches })
	reg.CounterFunc("disk_seq_accesses", labels, func() int64 { return d.Stats().SeqAccesses })
	reg.CounterFunc("disk_blocks_read", labels, func() int64 { return d.Stats().BlocksRead })
	reg.CounterFunc("disk_blocks_written", labels, func() int64 { return d.Stats().BlocksWritten })
	reg.CounterFunc("disk_seek_distance_blocks", labels, func() int64 { return d.Stats().SeekDistanceBlocks })
	reg.CounterFunc("disk_busy_ns", labels, func() int64 { return d.Stats().BusyNs })
}

// Access services one request of count blocks starting at block start and
// returns its simulated service time. write selects the transfer direction
// for accounting only; the cost model is symmetric, matching the paper's
// near-identical sequential read/write rates (170.2 vs 171.3 MB/s).
//
// Access panics if the request falls outside the device: the callers are
// file systems, and a file system issuing out-of-range I/O is a bug that
// must not be absorbed into the timing model.
func (d *Disk) Access(start, count int64, write bool) sim.Ns {
	if start < 0 || count <= 0 || start+count > d.nblocks {
		panic(fmt.Sprintf("disk: access [%d,+%d) outside device of %d blocks", start, count, d.nblocks))
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	cost := d.positionCostLocked(start)
	cost += count * d.nsPerBlock

	d.stats.Requests++
	if write {
		d.stats.BlocksWritten += count
	} else {
		d.stats.BlocksRead += count
	}
	d.stats.BusyNs += cost
	d.head = start + count
	if d.serviceHist != nil {
		d.serviceHist.Observe(cost)
	}
	return cost
}

// positionCostLocked computes and accounts the head-movement cost of
// starting a transfer at block start. Callers must hold d.mu.
func (d *Disk) positionCostLocked(start int64) sim.Ns {
	dist := start - d.head
	if dist < 0 {
		dist = -dist
	}
	d.stats.SeekDistanceBlocks += dist
	switch {
	case dist == 0:
		d.stats.SeqAccesses++
		return 0
	case dist <= d.cfg.NearThreshold:
		d.stats.NearSwitches++
		return d.cfg.TrackSwitchNs
	default:
		d.stats.Positionings++
		frac := float64(dist) / float64(d.nblocks)
		if frac > 1 {
			frac = 1
		}
		return d.cfg.PositionBaseNs + sim.Ns(float64(d.cfg.SeekMaxNs)*math.Sqrt(frac))
	}
}

// SeekTo moves the head to block start without transferring data, charging
// the positioning cost. It models operations such as a journal head reset.
func (d *Disk) SeekTo(start int64) sim.Ns {
	if start < 0 || start >= d.nblocks {
		panic(fmt.Sprintf("disk: seek to %d outside device of %d blocks", start, d.nblocks))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cost := d.positionCostLocked(start)
	d.stats.BusyNs += cost
	d.head = start
	if d.serviceHist != nil {
		d.serviceHist.Observe(cost)
	}
	return cost
}
