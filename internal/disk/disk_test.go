package disk

import (
	"testing"

	"redbud/internal/sim"
)

func testDisk(t *testing.T) *Disk {
	t.Helper()
	return New(DefaultConfig(), 1<<20) // 4 GiB at 4 KiB blocks
}

func TestSequentialAccessPaysTransferOnly(t *testing.T) {
	d := testDisk(t)
	first := d.Access(500_000, 256, true) // cold: long seek from head 0
	second := d.Access(500_256, 256, true)
	if second >= first {
		t.Fatalf("sequential continuation (%d ns) should be cheaper than cold access (%d ns)", second, first)
	}
	st := d.Stats()
	if st.SeqAccesses != 1 {
		t.Fatalf("SeqAccesses = %d, want 1", st.SeqAccesses)
	}
	if st.Positionings != 1 {
		t.Fatalf("Positionings = %d, want 1", st.Positionings)
	}
}

func TestRandomAccessPaysPositioning(t *testing.T) {
	d := testDisk(t)
	d.Access(0, 1, true)
	far := d.Access(500_000, 1, true)
	near := d.Access(500_001+100, 1, true) // within NearThreshold of head
	if far <= near {
		t.Fatalf("far access (%d ns) should cost more than near access (%d ns)", far, near)
	}
	st := d.Stats()
	if st.Positionings != 1 {
		t.Fatalf("Positionings = %d, want 1", st.Positionings)
	}
	if st.NearSwitches != 1 {
		t.Fatalf("NearSwitches = %d, want 1", st.NearSwitches)
	}
}

func TestSeekCostMonotoneInDistance(t *testing.T) {
	d := testDisk(t)
	d.Access(0, 1, true)
	costShort := d.Access(10_000, 1, true)
	d2 := testDisk(t)
	d2.Access(0, 1, true)
	costLong := d2.Access(900_000, 1, true)
	if costLong <= costShort {
		t.Fatalf("long seek (%d ns) should cost more than short seek (%d ns)", costLong, costShort)
	}
}

func TestSequentialBandwidthCalibration(t *testing.T) {
	d := testDisk(t)
	// Stream 512 MiB sequentially in 1 MiB requests.
	const reqBlocks = 256
	var total sim.Ns
	for b := int64(0); b < 512*256; b += reqBlocks {
		total += d.Access(b, reqBlocks, false)
	}
	bytes := int64(512) * 1024 * 1024
	got := sim.MBps(bytes, total)
	if got < 150 || got > 175 {
		t.Fatalf("sequential bandwidth = %.1f MB/s, want ~170 (150..175)", got)
	}
}

func TestFragmentedReadSlowerThanContiguous(t *testing.T) {
	// The premise of the whole paper: the same bytes laid out contiguously
	// read faster than interleaved among distant regions.
	contig := testDisk(t)
	var contigNs sim.Ns
	for b := int64(0); b < 4096; b += 16 {
		contigNs += contig.Access(b, 16, false)
	}

	frag := testDisk(t)
	var fragNs sim.Ns
	for i := int64(0); i < 256; i++ {
		// Alternate between two regions 2 GiB apart.
		base := (i % 2) * 524_288
		fragNs += frag.Access(base+i*16, 16, false)
	}
	if fragNs < 10*contigNs {
		t.Fatalf("fragmented read (%d ns) should be far slower than contiguous (%d ns)", fragNs, contigNs)
	}
}

func TestAccessBoundsChecked(t *testing.T) {
	d := New(DefaultConfig(), 100)
	for _, tc := range []struct{ start, count int64 }{
		{-1, 1}, {0, 0}, {0, -5}, {99, 2}, {100, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Access(%d,%d) should panic", tc.start, tc.count)
				}
			}()
			d.Access(tc.start, tc.count, false)
		}()
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{Positionings: 3, BlocksRead: 10, BusyNs: 100}
	b := Stats{Positionings: 1, BlocksRead: 4, BusyNs: 30}
	sum := a.Add(b)
	if sum.Positionings != 4 || sum.BlocksRead != 14 || sum.BusyNs != 130 {
		t.Fatalf("Add = %+v", sum)
	}
	diff := sum.Sub(b)
	if diff != a {
		t.Fatalf("Sub = %+v, want %+v", diff, a)
	}
}

func TestArrayParallelism(t *testing.T) {
	a := NewArray(DefaultConfig(), 4, 1<<18)
	for i := 0; i < 4; i++ {
		a.Disk(i).Access(0, 1024, true)
	}
	sum := a.Stats().BusyNs
	max := a.MaxBusy()
	if max >= sum {
		t.Fatalf("MaxBusy (%d) should be < summed busy (%d) with 4 parallel disks", max, sum)
	}
	if got := sum / max; got < 3 {
		t.Fatalf("4 equal-load disks should have sum/max close to 4, got %d", got)
	}
	a.ResetStats()
	if a.Stats().BusyNs != 0 {
		t.Fatal("ResetStats should zero counters")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.BlockSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero BlockSize should be invalid")
	}
	bad = good
	bad.TransferMBps = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative TransferMBps should be invalid")
	}
}

func TestSeekTo(t *testing.T) {
	d := testDisk(t)
	d.Access(0, 8, true)
	cost := d.SeekTo(500_000)
	if cost == 0 {
		t.Fatal("long SeekTo should have non-zero cost")
	}
	if d.Head() != 500_000 {
		t.Fatalf("Head = %d, want 500000", d.Head())
	}
	// Access at head is now sequential.
	before := d.Stats().SeqAccesses
	d.Access(500_000, 4, false)
	if d.Stats().SeqAccesses != before+1 {
		t.Fatal("access at seeked head should be sequential")
	}
}
