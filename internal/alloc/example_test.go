package alloc_test

import (
	"fmt"
	"log"

	"redbud/internal/alloc"
)

// Example shows the reservation mechanism the MiF windows are built on: a
// stream's reserved range is invisible to other owners' searches but stays
// free until converted.
func Example() {
	a := alloc.New(1024, 256)

	// Stream 1 reserves a sequential window near block 0.
	window, err := a.ReserveNear(1, 0, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window: [%d,+%d), free blocks: %d\n", window.Start, window.Count, a.FreeBlocks())

	// Another owner's allocation skips the reserved range.
	start, _, err := a.AllocNear(2, 0, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("foreign allocation starts at %d\n", start)

	// The owner promotes its window to a persistent allocation.
	if err := a.ConvertReserved(1, window); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after convert, free blocks: %d\n", a.FreeBlocks())
	// Output:
	// window: [0,+64), free blocks: 1024
	// foreign allocation starts at 64
	// after convert, free blocks: 944
}
