// Package alloc implements the on-disk free-block allocator used by the
// Redbud IO servers and the metadata file system.
//
// The allocator combines three mechanisms the paper builds on:
//
//   - a persistent block bitmap, the source of truth for allocated space;
//   - parallel allocation groups (PAGs), fixed-size regions used to spread
//     unrelated allocations and to account free space per region;
//   - soft reservation ranges: free regions temporarily claimed by an owner
//     (an inode, or under MiF a write stream). Blocks inside a reservation
//     are invisible to other owners' searches but remain free in the bitmap
//     until the owner converts them. This is the ext4-style "reservation"
//     baseline and the substrate on which the MiF sequential window sits.
package alloc

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// ErrNoSpace is returned when no free block satisfying the request exists.
var ErrNoSpace = errors.New("alloc: no space left on device")

// Owner identifies the holder of a reservation. Owner 0 is reserved to mean
// "nobody" and is rejected by the reservation API.
type Owner uint64

// Range is a half-open block range [Start, Start+Count).
type Range struct {
	Start int64
	Count int64
}

// End returns the block just past the range.
func (r Range) End() int64 { return r.Start + r.Count }

// reservation is a Range held by an Owner.
type reservation struct {
	Range
	owner Owner
}

// Allocator manages the free space of one device. All methods are safe for
// concurrent use.
type Allocator struct {
	mu        sync.Mutex
	total     int64
	groupSize int64
	words     []uint64 // bit set => block allocated
	free      int64
	groupFree []int64
	resv      []reservation // sorted by Start, non-overlapping
}

// New creates an allocator for a device of total blocks divided into
// allocation groups of groupSize blocks. It panics on non-positive sizes:
// the callers are format-time code paths where such a request is a bug.
func New(total, groupSize int64) *Allocator {
	if total <= 0 || groupSize <= 0 {
		panic(fmt.Sprintf("alloc: invalid geometry total=%d groupSize=%d", total, groupSize))
	}
	ngroups := (total + groupSize - 1) / groupSize
	a := &Allocator{
		total:     total,
		groupSize: groupSize,
		words:     make([]uint64, (total+63)/64),
		free:      total,
		groupFree: make([]int64, ngroups),
	}
	for g := int64(0); g < ngroups; g++ {
		end := (g + 1) * groupSize
		if end > total {
			end = total
		}
		a.groupFree[g] = end - g*groupSize
	}
	return a
}

// Total returns the device size in blocks.
func (a *Allocator) Total() int64 { return a.total }

// GroupSize returns the allocation-group size in blocks.
func (a *Allocator) GroupSize() int64 { return a.groupSize }

// Groups returns the number of allocation groups.
func (a *Allocator) Groups() int { return len(a.groupFree) }

// FreeBlocks returns the number of unallocated blocks (reserved blocks
// count as free: reservations are soft).
func (a *Allocator) FreeBlocks() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.free
}

// GroupFree returns the free-block count of group g.
func (a *Allocator) GroupFree(g int) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.groupFree[g]
}

// Utilization returns the allocated fraction of the device in [0, 1].
func (a *Allocator) Utilization() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return float64(a.total-a.free) / float64(a.total)
}

// isSet reports whether block b is allocated. Callers hold a.mu.
func (a *Allocator) isSet(b int64) bool {
	return a.words[b>>6]&(1<<(uint(b)&63)) != 0
}

// setRange marks [start, start+count) allocated. Callers hold a.mu and must
// have verified the range is free.
func (a *Allocator) setRange(start, count int64) {
	for b := start; b < start+count; b++ {
		a.words[b>>6] |= 1 << (uint(b) & 63)
		a.groupFree[b/a.groupSize]--
	}
	a.free -= count
}

// clearRange marks [start, start+count) free. Callers hold a.mu and must
// have verified the range is allocated.
func (a *Allocator) clearRange(start, count int64) {
	for b := start; b < start+count; b++ {
		a.words[b>>6] &^= 1 << (uint(b) & 63)
		a.groupFree[b/a.groupSize]++
	}
	a.free += count
}

// nextFree returns the first free block >= from, or total if none. Callers
// hold a.mu. The scan skips fully-allocated words.
func (a *Allocator) nextFree(from int64) int64 {
	if from < 0 {
		from = 0
	}
	for from < a.total {
		w := a.words[from>>6]
		// Mask off bits below the in-word offset.
		w |= (1 << (uint(from) & 63)) - 1
		if w != ^uint64(0) {
			b := int64(from>>6)<<6 + int64(bits.TrailingZeros64(^w))
			if b >= a.total {
				return a.total
			}
			return b
		}
		from = (from>>6 + 1) << 6
	}
	return a.total
}

// runLen returns the length of the free run starting at block b, capped at
// max. Callers hold a.mu.
func (a *Allocator) runLen(b, max int64) int64 {
	var n int64
	for n < max && b+n < a.total && !a.isSet(b+n) {
		n++
	}
	return n
}

// reservedSpan returns, for block b, the end of a reservation by an owner
// other than owner covering b, or 0 if b is not foreign-reserved. Callers
// hold a.mu.
func (a *Allocator) reservedSpan(owner Owner, b int64) int64 {
	i := sort.Search(len(a.resv), func(i int) bool { return a.resv[i].End() > b })
	if i < len(a.resv) && a.resv[i].Start <= b && a.resv[i].owner != owner {
		return a.resv[i].End()
	}
	return 0
}

// foreignResvBefore returns the start of the first reservation by another
// owner in [b, limit), or limit if none. Callers hold a.mu.
func (a *Allocator) foreignResvBefore(owner Owner, b, limit int64) int64 {
	i := sort.Search(len(a.resv), func(i int) bool { return a.resv[i].End() > b })
	for ; i < len(a.resv); i++ {
		r := a.resv[i]
		if r.Start >= limit {
			break
		}
		if r.owner != owner {
			if r.Start < b {
				return b
			}
			return r.Start
		}
	}
	return limit
}

// AllocNear allocates up to want contiguous blocks, searching forward from
// goal and wrapping around the device. The returned run starts at the first
// free, non-foreign-reserved block found; its length is the smaller of want
// and the available run. owner may be 0 for anonymous allocations; a
// non-zero owner may allocate inside its own reservations.
func (a *Allocator) AllocNear(owner Owner, goal, want int64) (start, got int64, err error) {
	if want <= 0 {
		return 0, 0, fmt.Errorf("alloc: AllocNear want=%d", want)
	}
	if goal < 0 || goal >= a.total {
		goal = 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.free == 0 {
		return 0, 0, ErrNoSpace
	}
	if s, n := a.searchLocked(owner, goal, a.total, want); n > 0 {
		a.setRange(s, n)
		return s, n, nil
	}
	if s, n := a.searchLocked(owner, 0, goal, want); n > 0 {
		a.setRange(s, n)
		return s, n, nil
	}
	// Every free block is foreign-reserved; honouring reservations, there
	// is no space. The MiF and reservation policies release windows under
	// pressure before retrying, so surfacing ErrNoSpace here is correct.
	return 0, 0, ErrNoSpace
}

// searchLocked finds the first free run in [from, limit) that is not
// reserved by a foreign owner, returning its start and length (capped at
// want). A zero length means no run was found. Callers hold a.mu.
func (a *Allocator) searchLocked(owner Owner, from, limit, want int64) (int64, int64) {
	b := from
	for b < limit {
		b = a.nextFree(b)
		if b >= limit {
			return 0, 0
		}
		if end := a.reservedSpan(owner, b); end > 0 {
			b = end
			continue
		}
		// Clip the run at the next foreign reservation.
		clip := a.foreignResvBefore(owner, b, limit)
		max := want
		if clip-b < max {
			max = clip - b
		}
		if max > 0 {
			if n := a.runLen(b, max); n > 0 {
				return b, n
			}
		}
		b++
	}
	return 0, 0
}

// AllocExact allocates exactly the range r. It fails if any block in r is
// already allocated or reserved by a foreign owner. It is used to convert a
// reservation (sequential window) into persistent allocation and by
// fallocate-style static preallocation.
func (a *Allocator) AllocExact(owner Owner, r Range) error {
	if r.Start < 0 || r.Count <= 0 || r.End() > a.total {
		return fmt.Errorf("alloc: AllocExact range [%d,+%d) out of device [0,%d)", r.Start, r.Count, a.total)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for b := r.Start; b < r.End(); b++ {
		if a.isSet(b) {
			return fmt.Errorf("alloc: block %d already allocated", b)
		}
	}
	if clip := a.foreignResvBefore(owner, r.Start, r.End()); clip < r.End() {
		return fmt.Errorf("alloc: range [%d,+%d) intersects foreign reservation at %d", r.Start, r.Count, clip)
	}
	a.setRange(r.Start, r.Count)
	return nil
}

// Free releases the range r. Freeing an unallocated block is an error:
// double frees indicate file-system corruption and must surface.
func (a *Allocator) Free(r Range) error {
	if r.Start < 0 || r.Count <= 0 || r.End() > a.total {
		return fmt.Errorf("alloc: Free range [%d,+%d) out of device [0,%d)", r.Start, r.Count, a.total)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for b := r.Start; b < r.End(); b++ {
		if !a.isSet(b) {
			return fmt.Errorf("alloc: double free of block %d", b)
		}
	}
	a.clearRange(r.Start, r.Count)
	return nil
}

// AppendAllocatedRuns appends every maximal run of allocated blocks to dst
// (sorted by start) and returns the extended slice — the volume-level
// enumeration a post-crash scrub diffs against the per-object owned sets
// to find orphaned allocations (claimed in the bitmap, owned by nobody).
func (a *Allocator) AppendAllocatedRuns(dst []Range) []Range {
	a.mu.Lock()
	defer a.mu.Unlock()
	start := int64(-1)
	for w, word := range a.words {
		if word == 0 {
			if start >= 0 {
				dst = append(dst, Range{Start: start, Count: int64(w)*64 - start})
				start = -1
			}
			continue
		}
		base := int64(w) * 64
		for i := int64(0); i < 64 && base+i < a.total; i++ {
			if word&(1<<uint(i)) != 0 {
				if start < 0 {
					start = base + i
				}
			} else if start >= 0 {
				dst = append(dst, Range{Start: start, Count: base + i - start})
				start = -1
			}
		}
	}
	if start >= 0 {
		dst = append(dst, Range{Start: start, Count: a.total - start})
	}
	return dst
}

// AllocatedRunsIn returns every maximal run of allocated blocks
// intersected with [lo, hi), sorted by start — the per-block-group
// enumeration the parallel fsck's reverse (leak) pass diffs against the
// reachable claim set. The whole window is walked under one lock, so a
// concurrent caller sees a consistent snapshot of the region.
func (a *Allocator) AllocatedRunsIn(lo, hi int64) []Range {
	if lo < 0 {
		lo = 0
	}
	if hi > a.total {
		hi = a.total
	}
	if lo >= hi {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Range
	start := int64(-1)
	for b := lo; b < hi; b++ {
		if a.isSet(b) {
			if start < 0 {
				start = b
			}
		} else if start >= 0 {
			out = append(out, Range{Start: start, Count: b - start})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, Range{Start: start, Count: hi - start})
	}
	return out
}

// Allocated reports whether every block of r is allocated.
func (a *Allocator) Allocated(r Range) bool {
	if r.Start < 0 || r.Count <= 0 || r.End() > a.total {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for b := r.Start; b < r.End(); b++ {
		if !a.isSet(b) {
			return false
		}
	}
	return true
}
