package alloc

import (
	"testing"

	"redbud/internal/telemetry"
)

func TestFreeContigFreshDevice(t *testing.T) {
	a := New(1024, 256)
	st := a.FreeContig()
	if st.FreeBlocks != 1024 || st.FreeRuns != 1 {
		t.Fatalf("fresh device: %+v, want one 1024-block run", st)
	}
	if st.LargestRun != 1024 || st.LargestStart != 0 {
		t.Fatalf("largest run = [%d,+%d), want [0,+1024)", st.LargestStart, st.LargestRun)
	}
	if st.Hist[10] != 1 { // 1024 = 2^10
		t.Fatalf("Hist = %v, want the single run in bucket 10", st.Hist)
	}
}

func TestFreeContigFragmented(t *testing.T) {
	a := New(1024, 256)
	// Punch allocations that split the free space into runs of 100, 199,
	// and 720 blocks.
	for _, r := range []Range{{Start: 100, Count: 1}, {Start: 300, Count: 4}} {
		if err := a.AllocExact(1, r); err != nil {
			t.Fatal(err)
		}
	}
	st := a.FreeContig()
	if st.FreeBlocks != 1019 || st.FreeRuns != 3 {
		t.Fatalf("FreeBlocks=%d FreeRuns=%d, want 1019 free in 3 runs", st.FreeBlocks, st.FreeRuns)
	}
	if st.LargestRun != 720 || st.LargestStart != 304 {
		t.Fatalf("largest run = [%d,+%d), want [304,+720)", st.LargestStart, st.LargestRun)
	}
	// 100 → bucket 6, 199 → bucket 7, 720 → bucket 9.
	if st.Hist[6] != 1 || st.Hist[7] != 1 || st.Hist[9] != 1 {
		t.Fatalf("Hist = %v", st.Hist)
	}
	// Reservations must NOT count as allocated: they are soft.
	if _, err := a.ReserveNear(2, 304, 720); err != nil {
		t.Fatal(err)
	}
	if got := a.FreeContig(); got.FreeRuns != 3 || got.LargestRun != 720 {
		t.Fatalf("after reservation: %+v, want contiguity unchanged", got)
	}
}

func TestAllocatorInstrument(t *testing.T) {
	a := New(512, 256)
	if err := a.AllocExact(1, Range{Start: 0, Count: 32}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReserveNear(2, 256, 16); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	a.Instrument(reg, telemetry.Labels{"ost": "0"})
	want := map[string]int64{
		"alloc_free_blocks":      480,
		"alloc_reserved_blocks":  16,
		"alloc_free_runs":        1,
		"alloc_largest_free_run": 480,
	}
	for _, m := range reg.Snapshot() {
		if v, ok := want[m.Name]; ok {
			if m.Value != v {
				t.Errorf("%s = %d, want %d", m.Name, m.Value, v)
			}
			delete(want, m.Name)
		}
	}
	for name := range want {
		t.Errorf("metric %s not published", name)
	}
}
