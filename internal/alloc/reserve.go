package alloc

import (
	"fmt"
	"sort"
)

// Reserve claims the free range r for owner as a soft reservation: the
// blocks stay free in the bitmap but other owners' searches skip them. The
// range must be entirely free and not intersect any existing reservation
// (including the owner's: windows never overlap).
func (a *Allocator) Reserve(owner Owner, r Range) error {
	if owner == 0 {
		return fmt.Errorf("alloc: Reserve with zero owner")
	}
	if r.Start < 0 || r.Count <= 0 || r.End() > a.total {
		return fmt.Errorf("alloc: Reserve range [%d,+%d) out of device [0,%d)", r.Start, r.Count, a.total)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for b := r.Start; b < r.End(); b++ {
		if a.isSet(b) {
			return fmt.Errorf("alloc: Reserve over allocated block %d", b)
		}
	}
	i := sort.Search(len(a.resv), func(i int) bool { return a.resv[i].End() > r.Start })
	if i < len(a.resv) && a.resv[i].Start < r.End() {
		return fmt.Errorf("alloc: Reserve range [%d,+%d) overlaps reservation [%d,+%d)",
			r.Start, r.Count, a.resv[i].Start, a.resv[i].Count)
	}
	a.resv = append(a.resv, reservation{})
	copy(a.resv[i+1:], a.resv[i:])
	a.resv[i] = reservation{Range: r, owner: owner}
	return nil
}

// ReserveNear finds a free, unreserved run of up to want blocks starting
// the search at goal (wrapping around the device) and reserves it for
// owner. It returns the reserved range, which may be shorter than want when
// free space is fragmented. This is how a sequential window is opened: the
// window lands "near the last on-disk block of the shared file".
func (a *Allocator) ReserveNear(owner Owner, goal, want int64) (Range, error) {
	if owner == 0 {
		return Range{}, fmt.Errorf("alloc: ReserveNear with zero owner")
	}
	if want <= 0 {
		return Range{}, fmt.Errorf("alloc: ReserveNear want=%d", want)
	}
	if goal < 0 || goal >= a.total {
		goal = 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// A reservation must avoid every existing reservation, so search with
	// owner 0 semantics: all reservations are foreign.
	s, n := a.searchLocked(0, goal, a.total, want)
	if n == 0 {
		s, n = a.searchLocked(0, 0, goal, want)
	}
	if n == 0 {
		return Range{}, ErrNoSpace
	}
	r := Range{Start: s, Count: n}
	i := sort.Search(len(a.resv), func(i int) bool { return a.resv[i].End() > r.Start })
	a.resv = append(a.resv, reservation{})
	copy(a.resv[i+1:], a.resv[i:])
	a.resv[i] = reservation{Range: r, owner: owner}
	return r, nil
}

// Unreserve drops the owner's reservations intersecting r, trimming partial
// overlaps. Blocks the owner already converted with AllocExact are
// unaffected (reservations and the bitmap are independent).
func (a *Allocator) Unreserve(owner Owner, r Range) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.resv[:0]
	for _, res := range a.resv {
		if res.owner != owner || res.End() <= r.Start || res.Start >= r.End() {
			out = append(out, res)
			continue
		}
		// Keep any parts of res outside r.
		if res.Start < r.Start {
			out = append(out, reservation{Range: Range{Start: res.Start, Count: r.Start - res.Start}, owner: owner})
		}
		if res.End() > r.End() {
			out = append(out, reservation{Range: Range{Start: r.End(), Count: res.End() - r.End()}, owner: owner})
		}
	}
	a.resv = out
}

// UnreserveAll drops every reservation held by owner. Policies call it when
// a stream is reclassified as random or its file is closed.
func (a *Allocator) UnreserveAll(owner Owner) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.resv[:0]
	for _, res := range a.resv {
		if res.owner != owner {
			out = append(out, res)
		}
	}
	a.resv = out
}

// ConvertReserved turns the reserved range r (held by owner) into a
// persistent allocation: the blocks are marked in the bitmap and the
// reservation is dropped. This is the current-window promotion of the MiF
// on-demand algorithm.
func (a *Allocator) ConvertReserved(owner Owner, r Range) error {
	a.mu.Lock()
	held := false
	i := sort.Search(len(a.resv), func(i int) bool { return a.resv[i].End() > r.Start })
	if i < len(a.resv) {
		res := a.resv[i]
		if res.owner == owner && res.Start <= r.Start && res.End() >= r.End() {
			held = true
		}
	}
	a.mu.Unlock()
	if !held {
		return fmt.Errorf("alloc: ConvertReserved range [%d,+%d) not reserved by owner %d", r.Start, r.Count, owner)
	}
	a.Unreserve(owner, r)
	return a.AllocExact(owner, r)
}

// Reservations returns the owner's reserved ranges, sorted by start. It is
// a diagnostic and test hook.
func (a *Allocator) Reservations(owner Owner) []Range {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Range
	for _, res := range a.resv {
		if res.owner == owner {
			out = append(out, res.Range)
		}
	}
	return out
}

// ReservedBlocks returns the total number of reserved blocks across all
// owners.
func (a *Allocator) ReservedBlocks() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int64
	for _, res := range a.resv {
		n += res.Count
	}
	return n
}
