package alloc

import "sort"

// RangeSet maintains a canonical union of block ranges: sorted, coalesced,
// non-overlapping. The IO servers use it to track every physical block a
// file owns — including preallocated-but-unwritten blocks — so deletion can
// return exactly the right space. The zero value is an empty set.
type RangeSet struct {
	r []Range
}

// Add unions r into the set.
func (s *RangeSet) Add(r Range) {
	if r.Count <= 0 {
		return
	}
	i := sort.Search(len(s.r), func(i int) bool { return s.r[i].End() >= r.Start })
	j := i
	start, end := r.Start, r.End()
	for j < len(s.r) && s.r[j].Start <= end {
		if s.r[j].Start < start {
			start = s.r[j].Start
		}
		if s.r[j].End() > end {
			end = s.r[j].End()
		}
		j++
	}
	merged := Range{Start: start, Count: end - start}
	// Splice in place: extending an adjacent run (the common sequential-write
	// case) and replacing swallowed runs reuse the backing array instead of
	// building a temporary slice per call.
	if i == j {
		s.r = append(s.r, Range{})
		copy(s.r[i+1:], s.r[i:])
		s.r[i] = merged
		return
	}
	s.r[i] = merged
	s.r = append(s.r[:i+1], s.r[j:]...)
}

// Remove subtracts r from the set, splitting ranges that straddle it.
func (s *RangeSet) Remove(r Range) {
	if r.Count <= 0 {
		return
	}
	var out []Range
	for _, e := range s.r {
		if e.End() <= r.Start || e.Start >= r.End() {
			out = append(out, e)
			continue
		}
		if e.Start < r.Start {
			out = append(out, Range{Start: e.Start, Count: r.Start - e.Start})
		}
		if e.End() > r.End() {
			out = append(out, Range{Start: r.End(), Count: e.End() - r.End()})
		}
	}
	s.r = out
}

// Contains reports whether every block of r is in the set.
func (s *RangeSet) Contains(r Range) bool {
	if r.Count <= 0 {
		return true
	}
	i := sort.Search(len(s.r), func(i int) bool { return s.r[i].End() > r.Start })
	return i < len(s.r) && s.r[i].Start <= r.Start && s.r[i].End() >= r.End()
}

// Gaps returns the sub-ranges of r not covered by the set, in ascending
// order.
func (s *RangeSet) Gaps(r Range) []Range {
	return s.AppendGaps(nil, r)
}

// AppendGaps is Gaps appending into dst, so per-request paths (the OST
// prefetch check runs once per read piece) can reuse one scratch slice.
func (s *RangeSet) AppendGaps(dst []Range, r Range) []Range {
	if r.Count <= 0 {
		return dst
	}
	out := dst
	pos := r.Start
	i := sort.Search(len(s.r), func(i int) bool { return s.r[i].End() > r.Start })
	for ; i < len(s.r) && s.r[i].Start < r.End(); i++ {
		if s.r[i].Start > pos {
			out = append(out, Range{Start: pos, Count: s.r[i].Start - pos})
		}
		if e := s.r[i].End(); e > pos {
			pos = e
		}
	}
	if pos < r.End() {
		out = append(out, Range{Start: pos, Count: r.End() - pos})
	}
	return out
}

// Ranges returns a copy of the canonical ranges in ascending order.
func (s *RangeSet) Ranges() []Range {
	out := make([]Range, len(s.r))
	copy(out, s.r)
	return out
}

// Blocks returns the total number of blocks in the set.
func (s *RangeSet) Blocks() int64 {
	var n int64
	for _, e := range s.r {
		n += e.Count
	}
	return n
}

// Len returns the number of disjoint ranges.
func (s *RangeSet) Len() int { return len(s.r) }
