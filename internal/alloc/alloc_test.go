package alloc

import (
	"testing"
	"testing/quick"

	"redbud/internal/sim"
)

func TestAllocNearBasic(t *testing.T) {
	a := New(1024, 256)
	s, n, err := a.AllocNear(0, 0, 10)
	if err != nil || s != 0 || n != 10 {
		t.Fatalf("AllocNear = (%d,%d,%v), want (0,10,nil)", s, n, err)
	}
	if a.FreeBlocks() != 1014 {
		t.Fatalf("FreeBlocks = %d, want 1014", a.FreeBlocks())
	}
	// Next allocation near the same goal lands right after.
	s2, n2, err := a.AllocNear(0, 0, 10)
	if err != nil || s2 != 10 || n2 != 10 {
		t.Fatalf("second AllocNear = (%d,%d,%v), want (10,10,nil)", s2, n2, err)
	}
}

func TestAllocNearWrapsAroundGoal(t *testing.T) {
	a := New(100, 100)
	// Fill the tail so a goal near the end must wrap.
	if err := a.AllocExact(0, Range{Start: 90, Count: 10}); err != nil {
		t.Fatal(err)
	}
	s, n, err := a.AllocNear(0, 95, 5)
	if err != nil || s != 0 || n != 5 {
		t.Fatalf("AllocNear with full tail = (%d,%d,%v), want (0,5,nil)", s, n, err)
	}
}

func TestAllocNearShortRun(t *testing.T) {
	a := New(100, 100)
	// Allocate block 5 so the run from 0 is only 5 long.
	if err := a.AllocExact(0, Range{Start: 5, Count: 1}); err != nil {
		t.Fatal(err)
	}
	s, n, err := a.AllocNear(0, 0, 20)
	if err != nil || s != 0 || n != 5 {
		t.Fatalf("AllocNear = (%d,%d,%v), want (0,5,nil): run is clipped at allocated block", s, n, err)
	}
}

func TestAllocNearNoSpace(t *testing.T) {
	a := New(64, 64)
	if _, _, err := a.AllocNear(0, 0, 64); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.AllocNear(0, 0, 1); err != ErrNoSpace {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestFreeAndDoubleFree(t *testing.T) {
	a := New(128, 64)
	if err := a.AllocExact(0, Range{Start: 10, Count: 20}); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(Range{Start: 10, Count: 20}); err != nil {
		t.Fatal(err)
	}
	if a.FreeBlocks() != 128 {
		t.Fatalf("FreeBlocks = %d, want 128", a.FreeBlocks())
	}
	if err := a.Free(Range{Start: 10, Count: 20}); err == nil {
		t.Fatal("double free should fail")
	}
}

func TestAllocExactConflicts(t *testing.T) {
	a := New(128, 64)
	if err := a.AllocExact(0, Range{Start: 0, Count: 10}); err != nil {
		t.Fatal(err)
	}
	if err := a.AllocExact(0, Range{Start: 5, Count: 10}); err == nil {
		t.Fatal("overlapping AllocExact should fail")
	}
	if err := a.AllocExact(0, Range{Start: 120, Count: 20}); err == nil {
		t.Fatal("out-of-device AllocExact should fail")
	}
}

func TestReservationExcludesOthers(t *testing.T) {
	a := New(256, 256)
	if err := a.Reserve(7, Range{Start: 0, Count: 100}); err != nil {
		t.Fatal(err)
	}
	// A foreign allocation near goal 0 must skip the reserved range.
	s, _, err := a.AllocNear(9, 0, 10)
	if err != nil || s != 100 {
		t.Fatalf("foreign AllocNear = (%d,%v), want start 100", s, err)
	}
	// The owner itself may allocate inside its reservation.
	s2, n2, err := a.AllocNear(7, 0, 10)
	if err != nil || s2 != 0 || n2 != 10 {
		t.Fatalf("owner AllocNear = (%d,%d,%v), want (0,10,nil)", s2, n2, err)
	}
}

func TestReserveConflicts(t *testing.T) {
	a := New(256, 256)
	if err := a.Reserve(1, Range{Start: 50, Count: 50}); err != nil {
		t.Fatal(err)
	}
	if err := a.Reserve(2, Range{Start: 80, Count: 10}); err == nil {
		t.Fatal("overlapping reservation should fail")
	}
	if err := a.Reserve(1, Range{Start: 90, Count: 20}); err == nil {
		t.Fatal("overlapping reservation should fail even for same owner")
	}
	if err := a.AllocExact(0, Range{Start: 150, Count: 10}); err != nil {
		t.Fatal(err)
	}
	if err := a.Reserve(3, Range{Start: 155, Count: 10}); err == nil {
		t.Fatal("reservation over allocated blocks should fail")
	}
}

func TestReserveNear(t *testing.T) {
	a := New(1024, 256)
	r, err := a.ReserveNear(5, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start != 100 || r.Count != 64 {
		t.Fatalf("ReserveNear = %+v, want {100 64}", r)
	}
	// A second window (even same owner) must not overlap the first.
	r2, err := a.ReserveNear(5, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Start != 164 {
		t.Fatalf("second window start = %d, want 164", r2.Start)
	}
}

func TestConvertReserved(t *testing.T) {
	a := New(512, 256)
	r, err := a.ReserveNear(11, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ConvertReserved(11, r); err != nil {
		t.Fatal(err)
	}
	if !a.Allocated(r) {
		t.Fatal("converted range should be allocated")
	}
	if got := a.Reservations(11); len(got) != 0 {
		t.Fatalf("reservations after convert = %v, want none", got)
	}
	// Converting again must fail.
	if err := a.ConvertReserved(11, r); err == nil {
		t.Fatal("double convert should fail")
	}
}

func TestConvertReservedForeign(t *testing.T) {
	a := New(512, 256)
	r, _ := a.ReserveNear(11, 0, 32)
	if err := a.ConvertReserved(12, r); err == nil {
		t.Fatal("converting a foreign reservation should fail")
	}
}

func TestUnreservePartial(t *testing.T) {
	a := New(512, 256)
	if err := a.Reserve(3, Range{Start: 100, Count: 100}); err != nil {
		t.Fatal(err)
	}
	a.Unreserve(3, Range{Start: 120, Count: 20})
	got := a.Reservations(3)
	if len(got) != 2 || got[0] != (Range{Start: 100, Count: 20}) || got[1] != (Range{Start: 140, Count: 60}) {
		t.Fatalf("Reservations = %v, want [{100 20} {140 60}]", got)
	}
	if a.ReservedBlocks() != 80 {
		t.Fatalf("ReservedBlocks = %d, want 80", a.ReservedBlocks())
	}
}

func TestUnreserveAll(t *testing.T) {
	a := New(512, 256)
	a.Reserve(3, Range{Start: 0, Count: 10})
	a.Reserve(3, Range{Start: 20, Count: 10})
	a.Reserve(4, Range{Start: 40, Count: 10})
	a.UnreserveAll(3)
	if a.ReservedBlocks() != 10 {
		t.Fatalf("ReservedBlocks = %d, want 10 (owner 4 only)", a.ReservedBlocks())
	}
}

func TestAllReservedSurfacesNoSpace(t *testing.T) {
	a := New(64, 64)
	if err := a.Reserve(1, Range{Start: 0, Count: 64}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.AllocNear(2, 0, 1); err != ErrNoSpace {
		t.Fatalf("err = %v, want ErrNoSpace when all free space is foreign-reserved", err)
	}
}

func TestGroupAccounting(t *testing.T) {
	a := New(1000, 256)
	if a.Groups() != 4 {
		t.Fatalf("Groups = %d, want 4", a.Groups())
	}
	// Last group is partial: 1000 - 3*256 = 232.
	if a.GroupFree(3) != 232 {
		t.Fatalf("GroupFree(3) = %d, want 232", a.GroupFree(3))
	}
	a.AllocExact(0, Range{Start: 256, Count: 10})
	if a.GroupFree(1) != 246 {
		t.Fatalf("GroupFree(1) = %d, want 246", a.GroupFree(1))
	}
	if got := a.Utilization(); got < 0.009 || got > 0.011 {
		t.Fatalf("Utilization = %g, want ~0.01", got)
	}
}

// Property: a random interleaving of AllocNear and Free never double
// allocates, never loses blocks, and the free count stays consistent.
func TestAllocFreeInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		a := New(2048, 512)
		type held struct{ r Range }
		var live []held
		for i := 0; i < 300; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				if a.Free(live[j].r) != nil {
					return false
				}
				live = append(live[:j], live[j+1:]...)
				continue
			}
			want := int64(rng.Intn(32)) + 1
			s, n, err := a.AllocNear(0, int64(rng.Intn(2048)), want)
			if err == ErrNoSpace {
				continue
			}
			if err != nil || n < 1 || n > want {
				return false
			}
			// The returned range must not overlap any held range.
			for _, h := range live {
				if s < h.r.End() && h.r.Start < s+n {
					return false
				}
			}
			live = append(live, held{Range{Start: s, Count: n}})
		}
		var heldBlocks int64
		for _, h := range live {
			heldBlocks += h.r.Count
		}
		return a.FreeBlocks() == 2048-heldBlocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: reservations are mutually exclusive across owners: after any
// sequence of ReserveNear calls by different owners, no two reserved ranges
// overlap.
func TestReservationExclusionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		a := New(4096, 1024)
		owners := []Owner{1, 2, 3, 4, 5}
		var all []Range
		for i := 0; i < 100; i++ {
			o := owners[rng.Intn(len(owners))]
			r, err := a.ReserveNear(o, int64(rng.Intn(4096)), int64(rng.Intn(64))+1)
			if err == ErrNoSpace {
				continue
			}
			if err != nil {
				return false
			}
			all = append(all, r)
		}
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				if all[i].Start < all[j].End() && all[j].Start < all[i].End() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
