package alloc

import (
	"math/bits"

	"redbud/internal/telemetry"
)

// contigBuckets is the number of log2-sized buckets in the free-run
// histogram: bucket i counts free runs of length [2^i, 2^(i+1)), with the
// last bucket absorbing everything longer.
const contigBuckets = 16

// ContigStats summarizes the contiguity of the free space: how much of it
// is left, in how many runs, and how large the runs are. It is the
// allocator-level observable of defragmentation effectiveness — migrating
// scattered extents into one destination range turns many small free runs
// back into few large ones.
type ContigStats struct {
	// FreeBlocks is the total free space (reserved blocks count as free:
	// reservations are soft).
	FreeBlocks int64
	// FreeRuns is the number of maximal free runs.
	FreeRuns int64
	// LargestRun is the length of the longest free run, and LargestStart
	// its first block.
	LargestRun   int64
	LargestStart int64
	// Hist is the log2 free-run-length histogram: Hist[i] counts runs of
	// [2^i, 2^(i+1)) blocks; the last bucket absorbs longer runs.
	Hist [contigBuckets]int64
}

// FreeContig scans the bitmap and returns the free-space contiguity
// summary. Reservations are ignored: they are volatile claims over space
// that is still free on disk. The scan is O(total/64) word-skipping, cheap
// at simulation scale; telemetry collectors call it at snapshot time only.
func (a *Allocator) FreeContig() ContigStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	var st ContigStats
	st.FreeBlocks = a.free
	b := int64(0)
	for b < a.total {
		b = a.nextFree(b)
		if b >= a.total {
			break
		}
		n := a.runLen(b, a.total-b)
		st.FreeRuns++
		if n > st.LargestRun {
			st.LargestRun = n
			st.LargestStart = b
		}
		idx := bits.Len64(uint64(n)) - 1
		if idx >= contigBuckets {
			idx = contigBuckets - 1
		}
		st.Hist[idx]++
		b += n
	}
	return st
}

// Instrument publishes the allocator's free-space state into the registry:
// total free blocks, reserved blocks, free-run count, and the largest free
// run. The collectors run FreeContig at snapshot time, so uninstrumented
// allocators pay nothing.
func (a *Allocator) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	reg.GaugeFunc("alloc_free_blocks", labels, func() int64 { return a.FreeBlocks() })
	reg.GaugeFunc("alloc_reserved_blocks", labels, func() int64 { return a.ReservedBlocks() })
	reg.GaugeFunc("alloc_free_runs", labels, func() int64 { return a.FreeContig().FreeRuns })
	reg.GaugeFunc("alloc_largest_free_run", labels, func() int64 { return a.FreeContig().LargestRun })
}
