package alloc

import (
	"reflect"
	"testing"
	"testing/quick"

	"redbud/internal/sim"
)

func TestRangeSetAddCoalesces(t *testing.T) {
	var s RangeSet
	s.Add(Range{Start: 0, Count: 10})
	s.Add(Range{Start: 20, Count: 10})
	s.Add(Range{Start: 10, Count: 10}) // bridges the gap
	if s.Len() != 1 || s.Blocks() != 30 {
		t.Fatalf("set = %v, want one range of 30", s.Ranges())
	}
	s.Add(Range{Start: 5, Count: 10}) // fully contained
	if s.Len() != 1 || s.Blocks() != 30 {
		t.Fatalf("contained add changed set: %v", s.Ranges())
	}
	s.Add(Range{Start: 25, Count: 20}) // overlapping extension
	if s.Len() != 1 || s.Blocks() != 45 {
		t.Fatalf("set = %v, want one range of 45", s.Ranges())
	}
}

func TestRangeSetAdjacentMerge(t *testing.T) {
	var s RangeSet
	s.Add(Range{Start: 10, Count: 5})
	s.Add(Range{Start: 15, Count: 5}) // exactly adjacent
	if s.Len() != 1 {
		t.Fatalf("adjacent ranges should coalesce: %v", s.Ranges())
	}
}

func TestRangeSetRemove(t *testing.T) {
	var s RangeSet
	s.Add(Range{Start: 0, Count: 30})
	s.Remove(Range{Start: 10, Count: 10})
	got := s.Ranges()
	if len(got) != 2 || got[0] != (Range{Start: 0, Count: 10}) || got[1] != (Range{Start: 20, Count: 10}) {
		t.Fatalf("Ranges = %v", got)
	}
	if s.Contains(Range{Start: 5, Count: 10}) {
		t.Fatal("Contains should be false across a hole")
	}
	if !s.Contains(Range{Start: 20, Count: 10}) {
		t.Fatal("Contains should be true for a kept range")
	}
}

func TestRangeSetZeroValues(t *testing.T) {
	var s RangeSet
	s.Add(Range{Start: 5, Count: 0})
	s.Remove(Range{Start: 0, Count: 100})
	if s.Len() != 0 || s.Blocks() != 0 {
		t.Fatalf("empty-set ops changed state: %v", s.Ranges())
	}
	if !s.Contains(Range{Start: 3, Count: 0}) {
		t.Fatal("empty range is vacuously contained")
	}
}

// Property: RangeSet agrees with a block-level model set under random
// adds and removes, and its representation stays canonical.
func TestRangeSetModelProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		var s RangeSet
		model := map[int64]bool{}
		for op := 0; op < 200; op++ {
			r := Range{Start: rng.Int63n(128), Count: rng.Int63n(16) + 1}
			if rng.Intn(2) == 0 {
				s.Add(r)
				for b := r.Start; b < r.End(); b++ {
					model[b] = true
				}
			} else {
				s.Remove(r)
				for b := r.Start; b < r.End(); b++ {
					delete(model, b)
				}
			}
		}
		if s.Blocks() != int64(len(model)) {
			return false
		}
		// Canonical: sorted, positive, no adjacency.
		rs := s.Ranges()
		for i, e := range rs {
			if e.Count <= 0 {
				return false
			}
			if i > 0 && rs[i-1].End() >= e.Start {
				return false
			}
		}
		for b := range model {
			if !s.Contains(Range{Start: b, Count: 1}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendGapsMatchesGaps checks the append-into variant is equivalent to
// Gaps and that scratch reuse is allocation-free once warm.
func TestAppendGapsMatchesGaps(t *testing.T) {
	var s RangeSet
	for _, r := range []Range{{Start: 10, Count: 5}, {Start: 20, Count: 2}, {Start: 30, Count: 10}} {
		s.Add(r)
	}
	scratch := make([]Range, 0, 8)
	for _, q := range []Range{{Start: 0, Count: 50}, {Start: 12, Count: 3}, {Start: 11, Count: 2}, {Start: 45, Count: 5}} {
		want := s.Gaps(q)
		scratch = s.AppendGaps(scratch[:0], q)
		if len(want) == 0 && len(scratch) == 0 {
			continue
		}
		if !reflect.DeepEqual(want, scratch) {
			t.Fatalf("AppendGaps(%v) = %v, Gaps = %v", q, scratch, want)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		scratch = s.AppendGaps(scratch[:0], Range{Start: 0, Count: 50})
	})
	if allocs != 0 {
		t.Fatalf("warm AppendGaps allocates %.1f objects/op, want 0", allocs)
	}
}
