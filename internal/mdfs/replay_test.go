package mdfs

import (
	"bytes"
	"fmt"
	"testing"
)

// TestJournalReplayIdempotent is the recovery-correctness property the
// crash sweep's double-failure scenarios lean on: journal replay applies
// full-block, last-write-wins records, so a mount that crashes again
// mid-recovery and replays the journal a second time ends with an image
// byte-identical to a single replay.
func TestJournalReplayIdempotent(t *testing.T) {
	build := func(replays int) []byte {
		t.Helper()
		fs, err := New(DefaultConfig(LayoutEmbedded))
		if err != nil {
			t.Fatal(err)
		}
		// Two transactions of mixed namespace traffic, committed to the
		// journal but never checkpointed — exactly the records a crash
		// leaves for replay.
		dir, err := fs.Mkdir(fs.Root(), "replay")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if _, err := fs.Create(dir, fmt.Sprintf("f%02d", i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.store.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := fs.Unlink(dir, "f03"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Rename(dir, "f05", fs.Root(), "moved"); err != nil {
			t.Fatal(err)
		}
		if err := fs.store.Commit(); err != nil {
			t.Fatal(err)
		}

		st := fs.Store()
		st.Crash()
		for i := 0; i < replays; i++ {
			st.Recover()
		}
		if err := fs.Remount(); err != nil {
			t.Fatal(err)
		}
		if rep := fs.Fsck(); !rep.Clean() {
			t.Fatalf("recovered fs not fsck-clean: %v", rep.Problems)
		}
		var buf bytes.Buffer
		if err := fs.SaveImage(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	once := build(1)
	twice := build(2)
	if !bytes.Equal(once, twice) {
		t.Fatalf("double replay diverged from single replay: %d vs %d image bytes differ",
			len(once), len(twice))
	}

	// The replayed image must also load as a working file system.
	fs, err := LoadImage(bytes.NewReader(once))
	if err != nil {
		t.Fatal(err)
	}
	if rep := fs.Fsck(); !rep.Clean() {
		t.Fatalf("loaded replayed image not fsck-clean: %v", rep.Problems)
	}
	if _, err := fs.Lookup(fs.Root(), "moved"); err != nil {
		t.Fatalf("renamed entry lost in replay: %v", err)
	}
}
