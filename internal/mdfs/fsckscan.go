package mdfs

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"redbud/internal/alloc"
	"redbud/internal/extent"
	"redbud/internal/inode"
)

// The fsck scan stage. Every task reads through the charge-free StoreView
// (plus the read-only in-memory allocator and inode bitmaps), records its
// findings locally, and appends its result under one mutex; nothing here
// orders anything — determinism is entirely the resolution stage's job.

// recKey addresses an inode record by its physical location. It is the
// identity the walker deduplicates directories on: two dirents reaching
// the same record location are one directory referenced twice, however
// the references are spelled.
type recKey struct {
	blk int64
	off int
}

func (k recKey) less(o recKey) bool {
	if k.blk != o.blk {
		return k.blk < o.blk
	}
	return k.off < o.off
}

// fsckClaim asserts ownership of one metadata block.
type fsckClaim struct {
	blk  int64
	what string
}

// fsckEdge is one parent→child directory reference.
type fsckEdge struct {
	child     recKey
	childDesc string
	from      string
}

// fsckDirResult is one directory-scan task's output.
type fsckDirResult struct {
	key        recKey
	desc       string
	dirID      uint32
	files      int64
	subdirs    int64
	blocks     int64 // blocks this task decoded
	problems   []string
	advisories []string
	claims     []fsckClaim
	edges      []fsckEdge
	inodeRefs  []int64 // normal layout: inode slots referenced by dirents
}

func (res *fsckDirResult) problemf(format string, args ...interface{}) {
	res.problems = append(res.problems, fmt.Sprintf(format, args...))
}

func (res *fsckDirResult) claim(blk int64, what string) {
	res.claims = append(res.claims, fsckClaim{blk: blk, what: what})
}

// fsckGroupResult is one block-group task's output: the allocator and
// inode-bitmap occupancy the resolution stage diffs against reachability.
type fsckGroupResult struct {
	group     int64
	allocated []alloc.Range // allocated runs inside the group's data area
	setSlots  []int64       // normal layout: inode-bitmap bits set
}

// fsckTableEntry is one live global-directory-table entry.
type fsckTableEntry struct {
	dirID  uint32
	parent inode.Ino
	self   inode.Ino
}

// fsckWalker coordinates the scan stage: a bounded goroutine pool over
// dynamically discovered tasks, with a first-wins visited set keyed by
// record location so a cyclic or cross-linked dirent graph schedules
// every directory exactly once and always terminates.
type fsckWalker struct {
	fs      *FS
	view    *StoreView
	rootKey recKey

	sem chan struct{}
	wg  sync.WaitGroup

	tasks   atomic.Int64
	blocks  atomic.Int64
	running atomic.Int64
	peak    atomic.Int64
	claimed int64 // set by the resolution stage

	mu      sync.Mutex
	visited map[recKey]bool
	dirs    []*fsckDirResult
	groups  []*fsckGroupResult
	table   []fsckTableEntry
}

func newFsckWalker(fs *FS, view *StoreView, workers int, root recKey) *fsckWalker {
	return &fsckWalker{
		fs:      fs,
		view:    view,
		rootKey: root,
		sem:     make(chan struct{}, workers),
		visited: make(map[recKey]bool),
	}
}

// spawn schedules one scan task on the pool.
func (w *fsckWalker) spawn(fn func()) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.sem <- struct{}{}
		cur := w.running.Add(1)
		for {
			p := w.peak.Load()
			if cur <= p || w.peak.CompareAndSwap(p, cur) {
				break
			}
		}
		fn()
		w.running.Add(-1)
		<-w.sem
	}()
}

// visit schedules a directory scan unless its record was already claimed
// by another path — the re-entry case the resolution stage reports from
// the edge multiset instead of recursing into.
func (w *fsckWalker) visit(key recKey, rec *inode.Inode, ino inode.Ino) {
	w.mu.Lock()
	seen := w.visited[key]
	if !seen {
		w.visited[key] = true
	}
	w.mu.Unlock()
	if seen {
		return
	}
	w.spawn(func() { w.scanDir(key, rec, ino) })
}

// scanDir checks one directory: its own mapping and spill chain, then the
// layout-specific content walk.
func (w *fsckWalker) scanDir(key recKey, rec *inode.Inode, ino inode.Ino) {
	w.tasks.Add(1)
	fs := w.fs
	res := &fsckDirResult{key: key, dirID: rec.DirID}
	name := rec.Name
	if name == "" {
		name = "/"
	}
	res.desc = fmt.Sprintf("dir %q", name)
	if fs.cfg.Layout == LayoutEmbedded && key == w.rootKey {
		// The embedded root record lives in a standalone data block (every
		// other record is inside its parent's content).
		res.claim(key.blk, "root record")
	}
	for _, spill := range w.spillChain(rec) {
		res.claim(spill, res.desc+" mapping spill")
	}
	var runs []alloc.Range
	for _, run := range extentsToRuns(w.readMapping(rec)) {
		if run.Start < 0 || run.Count < 0 || run.End() > fs.cfg.Blocks {
			res.problemf("%s content run [%d,+%d) outside device", res.desc, run.Start, run.Count)
			continue
		}
		for b := run.Start; b < run.End(); b++ {
			res.claim(b, res.desc+" content")
		}
		runs = append(runs, run)
	}
	if fs.cfg.Layout == LayoutEmbedded {
		w.scanEmbedded(res, rec, ino, runs)
	} else {
		w.scanNormal(res, rec, ino, runs)
	}
	w.blocks.Add(res.blocks)
	w.mu.Lock()
	w.dirs = append(w.dirs, res)
	w.mu.Unlock()
}

// scanEmbedded walks an embedded directory's content records.
func (w *fsckWalker) scanEmbedded(res *fsckDirResult, dirRec *inode.Inode, dirIno inode.Ino, runs []alloc.Range) {
	fs := w.fs
	if dirRec.DirID == 0 {
		res.problemf("embedded dir %v has no directory identification", dirIno)
		return
	}
	_, self, err := w.tableEntry(dirRec.DirID)
	if err != nil {
		res.problemf("dir table entry %d: %v", dirRec.DirID, err)
	} else if self != dirIno {
		res.problemf("dir table entry %d points at %v, record says %v", dirRec.DirID, self, dirIno)
	}
	per := fs.geo.InodesPerBlock
	var slot uint32
	var degreeSum int64
	for _, run := range runs {
		for b := run.Start; b < run.End(); b++ {
			buf := w.view.Read(b)
			res.blocks++
			for i := int64(0); i < per; i++ {
				cur := slot
				slot++
				rec, err := inode.Unmarshal(buf[i*recordSize : (i+1)*recordSize])
				if err != nil {
					res.problemf("dir %d slot %d: %v", dirRec.DirID, cur, err)
					continue
				}
				if rec.Mode == inode.ModeNone || rec.Nlink == 0 {
					continue
				}
				want := inode.MakeIno(dirRec.DirID, cur)
				if rec.Ino != want {
					res.problemf("dir %d slot %d: record ino %v, want %v", dirRec.DirID, cur, rec.Ino, want)
				}
				if rec.IsDir() {
					res.subdirs++
					child := recKey{b, int(i * recordSize)}
					res.edges = append(res.edges, fsckEdge{
						child:     child,
						childDesc: fmt.Sprintf("dir %q", rec.Name),
						from:      res.desc,
					})
					w.visit(child, rec, rec.Ino)
					continue
				}
				res.files++
				degreeSum += int64(rec.ExtentCount)
				for _, spill := range w.spillChain(rec) {
					res.claim(spill, fmt.Sprintf("file %q spill", rec.Name))
				}
			}
		}
	}
	if int64(dirRec.Aux) != degreeSum {
		// The numerator is maintained in memory and persisted on the
		// next structural touch, so bounded drift is expected.
		res.advisories = append(res.advisories, fmt.Sprintf(
			"dir %d: fragmentation-degree numerator %d, recomputed %d (lazily persisted)",
			dirRec.DirID, dirRec.Aux, degreeSum))
	}
	// Size counts files plus subdirectories in embTouchDir, so the stored
	// value must stay within [files, files+subdirs]: below means entries
	// appeared that the record never counted, above means a stale
	// over-count survived (e.g. a torn commit that lost deletions).
	if dirRec.Size < res.files {
		res.problemf("dir %d: file count %d below recomputed %d", dirRec.DirID, dirRec.Size, res.files)
	}
	if dirRec.Size > res.files+res.subdirs {
		res.problemf("dir %d: file count %d above recomputed %d files + %d subdirectories (stale over-count)",
			dirRec.DirID, dirRec.Size, res.files, res.subdirs)
	}
}

// scanNormal walks a traditional directory's entry blocks.
func (w *fsckWalker) scanNormal(res *fsckDirResult, dirRec *inode.Inode, dirIno inode.Ino, runs []alloc.Range) {
	fs := w.fs
	per := fs.direntsPerBlock()
	for _, run := range runs {
		for b := run.Start; b < run.End(); b++ {
			buf := w.view.Read(b)
			res.blocks++
			for i := 0; i < per; i++ {
				ent := buf[i*direntSize : (i+1)*direntSize]
				ino := inode.Ino(binary.LittleEndian.Uint64(ent[0:]))
				if ino == 0 {
					continue
				}
				nameLen := int(ent[8])
				if nameLen > direntSize-9 {
					res.problemf("dir %v: corrupt dirent name length %d", dirIno, nameLen)
					continue
				}
				name := string(ent[9 : 9+nameLen])
				slot := int64(ino)
				if slot >= fs.geo.Groups*fs.geo.InodesPerGroup {
					res.problemf("dirent %q: inode %d outside inode tables", name, slot)
					continue
				}
				res.inodeRefs = append(res.inodeRefs, slot)
				g := slot / fs.geo.InodesPerGroup
				idx := slot % fs.geo.InodesPerGroup
				if fs.ibitmap[g][idx/64]&(1<<uint(idx%64)) == 0 {
					res.problemf("dirent %q: inode %d not set in inode bitmap", name, slot)
				}
				blk, off := fs.geo.slotLocation(slot)
				rec, err := w.inodeAt(blk, off)
				if err != nil {
					res.problemf("inode %d: %v", slot, err)
					continue
				}
				if rec.Mode == inode.ModeNone {
					res.problemf("dirent %q points at cleared inode %d", name, slot)
					continue
				}
				if rec.IsDir() {
					res.subdirs++
					child := recKey{blk, off}
					res.edges = append(res.edges, fsckEdge{
						child:     child,
						childDesc: fmt.Sprintf("dir %q", rec.Name),
						from:      res.desc,
					})
					w.visit(child, rec, ino)
					continue
				}
				res.files++
				for _, spill := range w.spillChain(rec) {
					res.claim(spill, fmt.Sprintf("file %q spill", name))
				}
			}
		}
	}
}

// scanGroup snapshots one block group's allocator occupancy (data area
// only — the fixed metadata regions are format-time reservations) and,
// in the normal layout, its inode-bitmap bits.
func (w *fsckWalker) scanGroup(g int64) {
	w.tasks.Add(1)
	fs := w.fs
	res := &fsckGroupResult{group: g}
	res.allocated = fs.alloc.AllocatedRunsIn(fs.geo.dataStart(g), fs.geo.groupEnd(g))
	if fs.cfg.Layout == LayoutNormal {
		base := g * fs.geo.InodesPerGroup
		for wi, word := range fs.ibitmap[g] {
			if word == 0 {
				continue
			}
			for bit := 0; bit < 64; bit++ {
				if word&(1<<uint(bit)) == 0 {
					continue
				}
				idx := int64(wi)*64 + int64(bit)
				if idx < fs.geo.InodesPerGroup {
					res.setSlots = append(res.setSlots, base+idx)
				}
			}
		}
	}
	w.mu.Lock()
	w.groups = append(w.groups, res)
	w.mu.Unlock()
}

// scanTable enumerates the live entries of the global directory table
// (embedded layout) for the resolution stage's orphan check.
func (w *fsckWalker) scanTable() {
	w.tasks.Add(1)
	fs := w.fs
	per := int(fs.cfg.BlockSize) / tableEntrySize
	var entries []fsckTableEntry
	var blocks int64
	for blk := fs.geo.TableStart; blk < fs.geo.TableStart+fs.geo.TableBlocks; blk++ {
		buf := w.view.Read(blk)
		blocks++
		for i := 0; i < per; i++ {
			off := i * tableEntrySize
			parent := inode.Ino(binary.LittleEndian.Uint64(buf[off:]))
			self := inode.Ino(binary.LittleEndian.Uint64(buf[off+8:]))
			if self == 0 {
				continue
			}
			entries = append(entries, fsckTableEntry{
				dirID:  uint32(int(blk-fs.geo.TableStart)*per + i),
				parent: parent,
				self:   self,
			})
		}
	}
	w.blocks.Add(blocks)
	w.mu.Lock()
	w.table = entries
	w.mu.Unlock()
}

// inodeAt reads and decodes a record through the view.
func (w *fsckWalker) inodeAt(blk int64, off int) (*inode.Inode, error) {
	buf := w.view.Read(blk)
	if off < 0 || off+recordSize > len(buf) {
		return nil, fmt.Errorf("mdfs: record offset %d outside block", off)
	}
	return inode.Unmarshal(buf[off : off+recordSize])
}

// spillChain mirrors FS.spillChain through the view: the record's spill
// slots, then each block's next pointer, cycle-safe via the seen set.
func (w *fsckWalker) spillChain(rec *inode.Inode) []int64 {
	var chain []int64
	seen := map[int64]bool{}
	for _, s := range rec.Spill {
		blk := s
		for blk != 0 && !seen[blk] {
			seen[blk] = true
			chain = append(chain, blk)
			if blk < 0 || blk >= w.fs.cfg.Blocks {
				break // out-of-device link: claimable, not followable
			}
			buf := w.view.Read(blk)
			blk = int64(binary.LittleEndian.Uint64(buf[4:]))
		}
	}
	return chain
}

// readMapping mirrors FS.readMapping through the view.
func (w *fsckWalker) readMapping(rec *inode.Inode) []extent.Extent {
	out := append([]extent.Extent(nil), rec.Inline...)
	remaining := int(rec.ExtentCount) - len(rec.Inline)
	for _, blk := range w.spillChain(rec) {
		if remaining <= 0 {
			break
		}
		if blk < 0 || blk >= w.fs.cfg.Blocks {
			continue
		}
		buf := w.view.Read(blk)
		n := int(binary.LittleEndian.Uint32(buf[0:]))
		if max := w.fs.extentsPerSpill(); n > max {
			n = max
		}
		for i := 0; i < n && remaining > 0; i++ {
			out = append(out, decodeExtent(buf[spillHeader+i*extentBytes:]))
			remaining--
		}
	}
	return out
}

// tableEntry mirrors FS.readTableEntry through the view.
func (w *fsckWalker) tableEntry(dirID uint32) (parent, self inode.Ino, err error) {
	fs := w.fs
	blk, off := fs.tableLocation(dirID)
	if blk >= fs.geo.TableStart+fs.geo.TableBlocks {
		return 0, 0, fmt.Errorf("mdfs: directory id %d outside table", dirID)
	}
	buf := w.view.Read(blk)
	parent = inode.Ino(binary.LittleEndian.Uint64(buf[off:]))
	self = inode.Ino(binary.LittleEndian.Uint64(buf[off+8:]))
	if self == 0 {
		return 0, 0, fmt.Errorf("%w: directory id %d", ErrNotExist, dirID)
	}
	return parent, self, nil
}
