package mdfs

import (
	"encoding/binary"
	"fmt"
	"sort"

	"redbud/internal/extent"
	"redbud/internal/inode"
)

// Corruption injection for fsck testing: each kind performs targeted
// on-disk surgery that a healthy code path never would, then commits and
// checkpoints it so both a live Fsck and a SaveImage/LoadImage round trip
// observe the damage. The in-memory namespace is deliberately left
// untouched where possible — corruption is an on-disk phenomenon.
//
// Two kinds are live-only: "bitmap-orphan" and "leak" damage in-memory
// state (inode bitmap, space allocator) that Remount and LoadImage
// rebuild from the namespace, so they cannot survive an image round trip
// by construction.

// CorruptionKinds lists every kind InjectCorruption accepts, with the
// layouts each applies to.
func CorruptionKinds() []string {
	return []string{
		"cycle",         // dirent graph cycle / cross-link (both layouts)
		"dup-claim",     // two directories claim one block (both layouts)
		"size-over",     // stale over-counted directory Size (embedded)
		"table-orphan",  // live directory-table entry, no directory (embedded)
		"bitmap-orphan", // inode-bitmap bit with no dirent (normal, live-only)
		"leak",          // allocated blocks reachable by nothing (live-only)
	}
}

// InjectCorruption damages the file system on disk so that fsck must
// report the named finding class. It returns an error for kinds the
// configured layout cannot express.
func (fs *FS) InjectCorruption(kind string) error {
	var err error
	switch kind {
	case "cycle":
		err = fs.corruptCycle()
	case "dup-claim":
		err = fs.corruptDupClaim()
	case "size-over":
		err = fs.corruptSizeOver()
	case "table-orphan":
		err = fs.corruptTableOrphan()
	case "bitmap-orphan":
		err = fs.corruptBitmapOrphan()
	case "leak":
		err = fs.corruptLeak()
	default:
		return fmt.Errorf("mdfs: unknown corruption kind %q (want one of %v)", kind, CorruptionKinds())
	}
	if err != nil {
		return err
	}
	return fs.Sync()
}

// subdirs returns every non-root directory, sorted by inode number for
// deterministic victim selection.
func (fs *FS) subdirs() []*dir {
	var out []*dir
	for ino, d := range fs.dirs {
		if ino != fs.root {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ino < out[j].ino })
	return out
}

// contentRuns returns the directory's content runs regardless of layout
// (dirent blocks expressed as single-block runs in the normal layout).
func (fs *FS) contentRuns(d *dir) []extent.Extent {
	rec, err := fs.readInodeAt(d.recBlock, d.recOff)
	if err != nil {
		return nil
	}
	return fs.readMapping(rec)
}

// redirectMapping rewrites the victim directory's on-disk layout mapping
// to the given extents, dropping any spill chain from the record (the
// chain blocks stay allocated — more damage, which fsck must tolerate).
func (fs *FS) redirectMapping(d *dir, exts []extent.Extent) error {
	rec, err := fs.readInodeAt(d.recBlock, d.recOff)
	if err != nil {
		return err
	}
	if len(exts) > inode.InlineExtents {
		exts = exts[:inode.InlineExtents]
	}
	rec.Inline = exts
	rec.ExtentCount = uint32(len(exts))
	rec.Spill = [inode.SpillSlots]int64{}
	return fs.writeInodeAt(d.recBlock, d.recOff, rec)
}

// corruptCycle makes the dirent graph re-enter itself. Embedded layout:
// a subdirectory's content mapping is redirected at the root's content,
// so the walk reaches every root-level record a second time. Normal
// layout: a dirent naming the root's inode is planted in a subdirectory,
// a direct child→ancestor edge.
func (fs *FS) corruptCycle() error {
	subs := fs.subdirs()
	if len(subs) == 0 {
		return fmt.Errorf("mdfs: cycle corruption needs at least one subdirectory")
	}
	victim := subs[0]
	if fs.cfg.Layout == LayoutEmbedded {
		rootRuns := fs.contentRuns(fs.dirs[fs.root])
		if len(rootRuns) == 0 {
			return fmt.Errorf("mdfs: root has no content to redirect at")
		}
		return fs.redirectMapping(victim, rootRuns)
	}
	// Plant a dirent for the root inode in the victim's first entry block.
	if len(victim.direntBlocks) == 0 {
		return fmt.Errorf("mdfs: victim directory has no entry blocks")
	}
	per := fs.direntsPerBlock()
	for _, blk := range victim.direntBlocks {
		buf := fs.store.Read(blk)
		for i := 0; i < per; i++ {
			if binary.LittleEndian.Uint64(buf[i*direntSize:]) != 0 {
				continue
			}
			ent := make([]byte, direntSize)
			binary.LittleEndian.PutUint64(ent[0:], uint64(fs.root))
			name := "loop"
			ent[8] = byte(len(name))
			copy(ent[9:], name)
			fs.store.WriteAt(blk, i*direntSize, ent)
			return nil
		}
	}
	return fmt.Errorf("mdfs: no free dirent slot for cycle corruption")
}

// corruptDupClaim points a subdirectory's mapping at a block the root
// already owns — two directories claiming one block. A victim in a
// different allocation group than the root is preferred so the duplicate
// crosses scan-task boundaries.
func (fs *FS) corruptDupClaim() error {
	subs := fs.subdirs()
	if len(subs) == 0 {
		return fmt.Errorf("mdfs: dup-claim corruption needs at least one subdirectory")
	}
	root := fs.dirs[fs.root]
	victim := subs[0]
	for _, d := range subs {
		if d.group != root.group {
			victim = d
			break
		}
	}
	rootRuns := fs.contentRuns(root)
	if len(rootRuns) == 0 {
		return fmt.Errorf("mdfs: root has no content to duplicate")
	}
	dup := []extent.Extent{{Logical: 0, Physical: rootRuns[0].Physical, Count: 1}}
	return fs.redirectMapping(victim, dup)
}

// corruptSizeOver inflates an embedded directory's stored Size beyond
// anything its records can account for — the stale over-count a torn
// commit that lost deletions would leave.
func (fs *FS) corruptSizeOver() error {
	if fs.cfg.Layout != LayoutEmbedded {
		return fmt.Errorf("mdfs: size-over corruption requires the embedded layout")
	}
	subs := fs.subdirs()
	if len(subs) == 0 {
		return fmt.Errorf("mdfs: size-over corruption needs at least one subdirectory")
	}
	victim := subs[0]
	rec, err := fs.readInodeAt(victim.recBlock, victim.recOff)
	if err != nil {
		return err
	}
	rec.Size += 7
	return fs.writeInodeAt(victim.recBlock, victim.recOff, rec)
}

// corruptTableOrphan writes a live directory-table entry whose directory
// does not exist — table damage that survives an image round trip.
func (fs *FS) corruptTableOrphan() error {
	if fs.cfg.Layout != LayoutEmbedded {
		return fmt.Errorf("mdfs: table-orphan corruption requires the embedded layout")
	}
	dirID := fs.nextDir + 7
	if blk, _ := fs.tableLocation(dirID); blk >= fs.geo.TableStart+fs.geo.TableBlocks {
		return fmt.Errorf("mdfs: directory id %d outside table", dirID)
	}
	return fs.writeTableEntry(dirID, fs.root, inode.MakeIno(dirID, 0))
}

// corruptBitmapOrphan sets an unused inode-bitmap bit: an inode charge
// with no dirent referencing it. Live-only — Remount rebuilds the bitmap
// from the namespace.
func (fs *FS) corruptBitmapOrphan() error {
	if fs.cfg.Layout != LayoutNormal {
		return fmt.Errorf("mdfs: bitmap-orphan corruption requires the normal layout")
	}
	for slot := int64(1); slot < fs.geo.Groups*fs.geo.InodesPerGroup; slot++ {
		g := slot / fs.geo.InodesPerGroup
		idx := slot % fs.geo.InodesPerGroup
		if fs.ibitmap[g][idx/64]&(1<<uint(idx%64)) == 0 {
			fs.markSlotUsed(slot)
			return nil
		}
	}
	return fmt.Errorf("mdfs: no free inode slot to orphan")
}

// corruptLeak allocates data blocks and links them to nothing. Live-only
// — LoadImage rebuilds the allocator from the reachable namespace.
func (fs *FS) corruptLeak() error {
	_, err := fs.allocData(fs.geo.dataStart(0), 4)
	return err
}
