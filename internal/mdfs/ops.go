package mdfs

import (
	"encoding/binary"
	"fmt"

	"redbud/internal/alloc"
	"redbud/internal/extent"
	"redbud/internal/inode"
)

// This file is the layout-independent public API of the metadata file
// system. Each operation charges its disk accesses through the store,
// mutates the namespace, and commits according to the sync policy.

// superblock layout (block 0).
const (
	superMagic  = 0x4D694621 // "MiF!"
	offSMagic   = 0
	offSLayout  = 4
	offSRootBlk = 8
	offSRootOff = 16
	offSRootIno = 24
	offSNextDir = 32
)

// writeSuper journals the superblock.
func (fs *FS) writeSuper() {
	buf := make([]byte, fs.cfg.BlockSize)
	le := binary.LittleEndian
	le.PutUint32(buf[offSMagic:], superMagic)
	le.PutUint32(buf[offSLayout:], uint32(fs.cfg.Layout))
	root := fs.dirs[fs.root]
	le.PutUint64(buf[offSRootBlk:], uint64(root.recBlock))
	le.PutUint64(buf[offSRootOff:], uint64(root.recOff))
	le.PutUint64(buf[offSRootIno:], uint64(fs.root))
	le.PutUint32(buf[offSNextDir:], fs.nextDir)
	fs.store.Write(0, buf)
}

// makeRoot dispatches root creation by layout.
func (fs *FS) makeRoot() error {
	if fs.cfg.Layout == LayoutEmbedded {
		return fs.embMakeRoot()
	}
	return fs.normalMakeRoot()
}

// Mkdir creates a directory under parent and returns its inode number.
func (fs *FS) Mkdir(parent inode.Ino, name string) (inode.Ino, error) {
	d, err := fs.dirOf(parent)
	if err != nil {
		return 0, err
	}
	if _, ok := d.entries[name]; ok {
		return 0, fmt.Errorf("%w: %q", ErrExist, name)
	}
	var ino inode.Ino
	if fs.cfg.Layout == LayoutEmbedded {
		ino, err = fs.embCreate(d, name, inode.ModeDir)
	} else {
		ino, err = fs.normalCreate(d, name, inode.ModeDir)
	}
	if err != nil {
		return 0, err
	}
	fs.stats.Mkdirs++
	return ino, fs.finishOp()
}

// Create creates a regular file under parent and returns its inode number.
func (fs *FS) Create(parent inode.Ino, name string) (inode.Ino, error) {
	d, err := fs.dirOf(parent)
	if err != nil {
		return 0, err
	}
	if _, ok := d.entries[name]; ok {
		return 0, fmt.Errorf("%w: %q", ErrExist, name)
	}
	var ino inode.Ino
	if fs.cfg.Layout == LayoutEmbedded {
		ino, err = fs.embCreate(d, name, inode.ModeFile)
	} else {
		ino, err = fs.normalCreate(d, name, inode.ModeFile)
	}
	if err != nil {
		return 0, err
	}
	fs.stats.Creates++
	return ino, fs.finishOp()
}

// Lookup resolves name under parent, charging the layout's lookup reads.
func (fs *FS) Lookup(parent inode.Ino, name string) (inode.Ino, error) {
	d, err := fs.dirOf(parent)
	if err != nil {
		return 0, err
	}
	fs.stats.Lookups++
	ino, ok := d.entries[name]
	if fs.cfg.Layout == LayoutEmbedded {
		if ok {
			if _, blk, _, err := fs.embLocate(ino); err == nil {
				fs.store.Read(blk)
			}
		} else {
			// Negative lookup: the in-memory index answers, but a
			// cold MDS validates against the directory content.
			if len(d.content) > 0 {
				fs.store.Read(d.content[0].Start)
			}
		}
	} else {
		fs.chargeNormalLookup(d, name)
	}
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	return ino, nil
}

// Stat reads an inode by number.
func (fs *FS) Stat(ino inode.Ino) (inode.Inode, error) {
	fs.stats.Stats++
	ino = fs.Resolve(ino)
	var rec *inode.Inode
	var err error
	if fs.cfg.Layout == LayoutEmbedded {
		rec, err = fs.embStat(ino)
	} else {
		rec, err = fs.normalStat(ino)
	}
	if err != nil {
		return inode.Inode{}, err
	}
	return *rec, nil
}

// StatName is the fstat-by-name pair of Figure 1(b): resolve the entry in
// the parent directory, then read the inode.
func (fs *FS) StatName(parent inode.Ino, name string) (inode.Inode, error) {
	ino, err := fs.Lookup(parent, name)
	if err != nil {
		return inode.Inode{}, err
	}
	return fs.Stat(ino)
}

// Utime updates an inode's mtime.
func (fs *FS) Utime(ino inode.Ino) error {
	fs.stats.Utimes++
	ino = fs.Resolve(ino)
	loc, err := fs.locate(ino)
	if err != nil {
		return err
	}
	rec, err := fs.readInodeAt(loc.blk, loc.off)
	if err != nil {
		return err
	}
	rec.MTime = fs.now()
	if err := fs.writeInodeAt(loc.blk, loc.off, rec); err != nil {
		return err
	}
	return fs.finishOp()
}

// recLoc is an inode record location.
type recLoc struct {
	blk int64
	off int
}

// locate finds an inode record's block and offset.
func (fs *FS) locate(ino inode.Ino) (recLoc, error) {
	if fs.cfg.Layout == LayoutEmbedded {
		if ino == fs.root {
			r := fs.dirs[fs.root]
			return recLoc{r.recBlock, r.recOff}, nil
		}
		_, blk, off, err := fs.embLocate(ino)
		return recLoc{blk, off}, err
	}
	blk, off := fs.geo.slotLocation(int64(ino))
	return recLoc{blk, off}, nil
}

// Unlink removes a file entry. Directories are removed with Rmdir.
func (fs *FS) Unlink(parent inode.Ino, name string) error {
	d, err := fs.dirOf(parent)
	if err != nil {
		return err
	}
	ino, ok := d.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	if _, isDir := fs.dirs[ino]; isDir {
		return fmt.Errorf("%w: %q", ErrIsDir, name)
	}
	fs.stats.Unlinks++
	if fs.cfg.Layout == LayoutEmbedded {
		err = fs.embUnlink(d, name, ino)
	} else {
		fs.chargeNormalLookup(d, name)
		err = fs.normalUnlink(d, name, ino)
	}
	if err != nil {
		return err
	}
	return fs.finishOp()
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(parent inode.Ino, name string) error {
	d, err := fs.dirOf(parent)
	if err != nil {
		return err
	}
	ino, ok := d.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	child, isDir := fs.dirs[ino]
	if !isDir {
		return fmt.Errorf("%w: %q", ErrNotDir, name)
	}
	if len(child.entries) != 0 {
		return fmt.Errorf("%w: %q", ErrNotEmpty, name)
	}
	fs.stats.Unlinks++
	if fs.cfg.Layout == LayoutEmbedded {
		for _, r := range child.content {
			if err := fs.freeData(r); err != nil {
				return err
			}
		}
		if err := fs.writeTableEntry(child.dirID, 0, 0); err != nil {
			return err
		}
		delete(fs.dirsByID, child.dirID)
		if err := fs.embUnlink(d, name, ino); err != nil {
			return err
		}
	} else {
		for _, blk := range child.direntBlocks {
			if err := fs.freeData(alloc.Range{Start: blk, Count: 1}); err != nil {
				return err
			}
		}
		fs.chargeNormalLookup(d, name)
		if err := fs.normalUnlink(d, name, ino); err != nil {
			return err
		}
	}
	delete(fs.dirs, ino)
	return fs.finishOp()
}

// Readdir lists the directory's entry names in creation order, charging
// the content reads.
func (fs *FS) Readdir(parent inode.Ino) ([]string, error) {
	d, err := fs.dirOf(parent)
	if err != nil {
		return nil, err
	}
	fs.stats.Readdirs++
	if fs.cfg.Layout == LayoutEmbedded {
		fs.embReaddirCharge(d)
	} else {
		fs.normalReaddirCharge(d)
	}
	return append([]string(nil), d.order...), nil
}

// ReaddirPlus is the aggregated readdir+stat (readdirplus): it returns the
// inode of every entry, exercising the on-disk placement exactly where the
// two layouts differ.
func (fs *FS) ReaddirPlus(parent inode.Ino) ([]inode.Inode, error) {
	d, err := fs.dirOf(parent)
	if err != nil {
		return nil, err
	}
	fs.stats.Readdirs++
	if fs.cfg.Layout == LayoutEmbedded {
		return fs.embReaddirPlus(d)
	}
	return fs.normalReaddirPlus(d)
}

// Rename moves an entry. In the embedded layout the inode moves with it
// and the returned inode number differs from the old one, with the old→new
// correlation retained; in the normal layout the number is stable.
func (fs *FS) Rename(srcParent inode.Ino, name string, dstParent inode.Ino, newName string) (inode.Ino, error) {
	src, err := fs.dirOf(srcParent)
	if err != nil {
		return 0, err
	}
	dst, err := fs.dirOf(dstParent)
	if err != nil {
		return 0, err
	}
	ino, ok := src.entries[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	if _, ok := dst.entries[newName]; ok {
		return 0, fmt.Errorf("%w: %q", ErrExist, newName)
	}
	fs.stats.Renames++
	var newIno inode.Ino
	if fs.cfg.Layout == LayoutEmbedded {
		newIno, err = fs.embRename(src, name, dst, newName, ino)
	} else {
		fs.chargeNormalLookup(src, name)
		fs.clearDirent(src, name)
		if _, err = fs.appendDirent(dst, newName, ino); err == nil {
			if err = fs.touchDirRecord(src); err == nil {
				err = fs.touchDirRecord(dst)
			}
		}
		newIno = ino
	}
	if err != nil {
		return 0, err
	}
	return newIno, fs.finishOp()
}

// SetLayout replaces a file's layout mapping — the MDS-side bookkeeping of
// data placement reported by the IO servers. The mapping head lands in the
// inode tail; overflow goes to spill blocks near the inode (embedded) or
// the group data area (normal).
func (fs *FS) SetLayout(ino inode.Ino, exts []extent.Extent) error {
	ino = fs.Resolve(ino)
	loc, err := fs.locate(ino)
	if err != nil {
		return err
	}
	rec, err := fs.readInodeAt(loc.blk, loc.off)
	if err != nil {
		return err
	}
	if rec.Mode != inode.ModeFile {
		return fmt.Errorf("%w: SetLayout on %v", ErrIsDir, ino)
	}
	oldUnits := int64(rec.ExtentCount)
	goal := fs.spillGoal(ino)
	if _, err := fs.writeMapping(rec, exts, goal); err != nil {
		return err
	}
	rec.MTime = fs.now()
	if err := fs.writeInodeAt(loc.blk, loc.off, rec); err != nil {
		return err
	}
	if fs.cfg.Layout == LayoutEmbedded {
		if d, ok := fs.dirsByID[ino.DirID()]; ok {
			// The fragmentation-degree numerator is maintained in
			// memory and persisted by the next structural touch of
			// the directory record — per-mapping-update rewrites of
			// the parent record would cost a dirty block per data
			// write for a heuristic counter.
			d.extentUnits += int64(len(exts)) - oldUnits
			if d.extentUnits < 0 {
				d.extentUnits = 0
			}
		}
	}
	return fs.finishOp()
}

// spillGoal picks where a file's spill blocks should land.
func (fs *FS) spillGoal(ino inode.Ino) int64 {
	if fs.cfg.Layout == LayoutEmbedded {
		if d, ok := fs.dirsByID[ino.DirID()]; ok {
			return fs.contentEnd(d)
		}
		return fs.geo.dataStart(0)
	}
	group := int64(ino) / fs.geo.InodesPerGroup
	if group >= fs.geo.Groups {
		group = 0
	}
	return fs.geo.dataStart(group)
}

// GetLayout reads a file's full layout mapping — the open-getlayout
// aggregate of block-based parallel file systems.
func (fs *FS) GetLayout(ino inode.Ino) ([]extent.Extent, error) {
	ino = fs.Resolve(ino)
	loc, err := fs.locate(ino)
	if err != nil {
		return nil, err
	}
	rec, err := fs.readInodeAt(loc.blk, loc.off)
	if err != nil {
		return nil, err
	}
	if rec.Mode != inode.ModeFile {
		return nil, fmt.Errorf("%w: GetLayout on %v", ErrIsDir, ino)
	}
	return fs.readMapping(rec), nil
}

// LocateInode resolves an arbitrary inode number to its record the way a
// management job would, without the namespace index: through the global
// directory table (embedded) or the inode-table geometry (normal).
func (fs *FS) LocateInode(ino inode.Ino) (inode.Inode, error) {
	ino = fs.Resolve(ino)
	if fs.cfg.Layout == LayoutEmbedded {
		rec, err := fs.embLocateByNumber(ino)
		if err != nil {
			return inode.Inode{}, err
		}
		return *rec, nil
	}
	rec, err := fs.normalStat(ino)
	if err != nil {
		return inode.Inode{}, err
	}
	return *rec, nil
}

// FragDegree returns a directory's fragmentation degree.
func (fs *FS) FragDegree(parent inode.Ino) (float64, error) {
	d, err := fs.dirOf(parent)
	if err != nil {
		return 0, err
	}
	return d.fragDegree(), nil
}

// Entries returns the number of entries in a directory.
func (fs *FS) Entries(parent inode.Ino) (int, error) {
	d, err := fs.dirOf(parent)
	if err != nil {
		return 0, err
	}
	return len(d.entries), nil
}
