package mdfs

import (
	"bytes"
	"fmt"
	"testing"

	"redbud/internal/extent"
)

// populate churns a file system the way cmd/miffsck gen does: directories,
// files, fragmented layouts, and a deletion pass (which frees blocks that
// were written earlier — the write-then-forget pattern).
func populateImage(t *testing.T, m *FS) {
	t.Helper()
	for d := 0; d < 2; d++ {
		dir, err := m.Mkdir(m.Root(), fmt.Sprintf("dir%d", d))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			ino, err := m.Create(dir, fmt.Sprintf("f%03d", i))
			if err != nil {
				t.Fatal(err)
			}
			if i%4 == 0 {
				var exts []extent.Extent
				for j := 0; j < 12; j++ {
					exts = append(exts, extent.Extent{Logical: int64(j) * 2, Physical: int64(d*10000 + i*64 + j*4), Count: 2})
				}
				if err := m.SetLayout(ino, exts); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < 40; i += 9 {
			if err := m.Unlink(dir, fmt.Sprintf("f%03d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestImageRoundTripJournalOnly saves an image whose last changes live only
// in the journal overlay (the crash-consistent state) and reloads it. This
// is a regression test: blocks written then freed within one transaction
// used to leave nil overlay entries that corrupted the serialized image.
func TestImageRoundTripJournalOnly(t *testing.T) {
	for _, layout := range []Layout{LayoutEmbedded, LayoutNormal} {
		t.Run(layout.String(), func(t *testing.T) {
			m, err := New(DefaultConfig(layout))
			if err != nil {
				t.Fatal(err)
			}
			populateImage(t, m)
			if err := m.Store().Commit(); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := m.SaveImage(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := LoadImage(&buf)
			if err != nil {
				t.Fatal(err)
			}
			rep := got.Fsck()
			if !rep.Clean() {
				t.Fatalf("fsck after reload: %v", rep.Problems)
			}
			if rep.Files == 0 || rep.Dirs < 2 {
				t.Fatalf("reloaded namespace too small: %+v", rep)
			}
		})
	}
}

// TestImageRoundTripCheckpointed is the same walk with everything synced
// home first.
func TestImageRoundTripCheckpointed(t *testing.T) {
	m, err := New(DefaultConfig(LayoutEmbedded))
	if err != nil {
		t.Fatal(err)
	}
	populateImage(t, m)
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep := got.Fsck(); !rep.Clean() {
		t.Fatalf("fsck after reload: %v", rep.Problems)
	}
}
