package mdfs

import (
	"encoding/binary"
	"fmt"
	"sort"

	"redbud/internal/alloc"
	"redbud/internal/inode"
	"redbud/internal/telemetry"
)

// Fsck is organized as a pFSCK-style two-stage pipeline:
//
//   - a scan stage — a goroutine pool walking the namespace from the root
//     record plus one task per block group (allocator occupancy, inode
//     bitmaps) and one for the global directory table — emits typed claims
//     (block ownership, inode references, parent→child directory edges,
//     degree sums) through a read-only store view; the scan runs on
//     wall-clock host parallelism and never touches the simulated disk;
//   - a serial resolution stage merges the claim sets and derives every
//     cross-task finding: duplicate block ownership, reachable-but-
//     unallocated blocks, allocated-but-unreachable blocks (leaks),
//     orphaned inodes and directory-table entries, and directory
//     re-entry (cycles and cross-links) from the edge multiset.
//
// Determinism: scan tasks record findings locally; the resolution stage
// sorts results, claims, and edges by on-disk location before deriving
// findings, and the final problem and advisory lists are sorted before
// the report is returned — so the report is byte-identical for any worker
// count and any goroutine interleaving. Fsck must only be called between
// operations (the store quiescent), the same contract Remount has.

// FsckOptions tunes a check. The zero value is a serial, untelemetered
// scan — exactly what Fsck() runs.
type FsckOptions struct {
	// Workers is the scan-stage goroutine-pool size; values below 2 run
	// the pipeline serially (one task at a time, same code path, same
	// report).
	Workers int
	// Metrics, when set, receives layer=fsck counters (scan tasks, blocks
	// scanned, claims, findings) and gauges (configured workers, peak
	// pool occupancy). All except the occupancy peak are deterministic.
	Metrics *telemetry.Registry
	// Trace, when set, records per-stage fsck spans (scan, resolve).
	Trace *telemetry.Tracer
}

// FsckReport is the result of a consistency check.
type FsckReport struct {
	// Dirs and Files count the reachable namespace.
	Dirs  int
	Files int
	// ReachableBlocks counts metadata blocks owned by reachable objects
	// (directory content/entries, spill blocks).
	ReachableBlocks int64
	// Problems lists every inconsistency found (sorted), empty for a
	// clean file system.
	Problems []string
	// Advisories are non-fatal drifts in heuristic bookkeeping (the
	// fragmentation-degree numerator is persisted lazily by design).
	Advisories []string
}

// Clean reports whether the check found no problems.
func (r *FsckReport) Clean() bool { return len(r.Problems) == 0 }

// problemf appends a formatted finding.
func (r *FsckReport) problemf(format string, args ...interface{}) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Fsck walks the on-disk state from the superblock — independently of the
// in-memory namespace — and verifies the structural invariants:
//
//   - the superblock is valid and the root record is a directory;
//   - every reachable inode record parses and its Ino matches its
//     location (embedded: directory identification and slot);
//   - no two objects claim the same metadata block (content, entry, or
//     spill), and no directory record is referenced twice (a dirent
//     pointing at an ancestor or an already-linked directory is a cycle
//     or cross-link, reported instead of recursed into);
//   - every reachable metadata block is marked allocated in the space
//     allocator, and — the reverse pass — every dynamically allocated
//     block is reachable (otherwise it leaked);
//   - embedded: every directory's table entry resolves back to it, every
//     live table entry belongs to a reachable directory, the record's
//     Size stays within [files, files+subdirs], and the stored
//     fragmentation-degree numerator matches the sum of its files'
//     mapping-unit counts (advisory);
//   - normal: every reachable inode's slot is set in the inode bitmap,
//     and every set bit is referenced by some dirent (else orphaned).
func (fs *FS) Fsck() *FsckReport { return fs.FsckWith(FsckOptions{}) }

// FsckWith runs the check with explicit worker-pool and telemetry
// options. The report is byte-identical for every worker count.
func (fs *FS) FsckWith(opt FsckOptions) *FsckReport {
	r := &FsckReport{}
	view := fs.store.View()
	sb := view.Read(0)
	le := binary.LittleEndian
	if le.Uint32(sb[offSMagic:]) != superMagic {
		r.problemf("superblock: bad magic %#x", le.Uint32(sb[offSMagic:]))
		return r
	}
	if Layout(le.Uint32(sb[offSLayout:])) != fs.cfg.Layout {
		r.problemf("superblock: layout mismatch")
		return r
	}
	rootBlk := int64(le.Uint64(sb[offSRootBlk:]))
	rootOff := int(le.Uint64(sb[offSRootOff:]))
	rootIno := inode.Ino(le.Uint64(sb[offSRootIno:]))
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	w := newFsckWalker(fs, view, workers, recKey{rootBlk, rootOff})
	rec, err := w.inodeAt(rootBlk, rootOff)
	if err != nil {
		r.problemf("root record: %v", err)
		return r
	}
	if !rec.IsDir() {
		r.problemf("root record is not a directory (mode %d)", rec.Mode)
		return r
	}

	span := opt.Trace.Start("fsck", "fsck", 0)
	scan := opt.Trace.Start("fsck", "scan", span.ID())
	w.visit(w.rootKey, rec, rootIno)
	for g := int64(0); g < fs.geo.Groups; g++ {
		g := g
		w.spawn(func() { w.scanGroup(g) })
	}
	if fs.cfg.Layout == LayoutEmbedded {
		w.spawn(func() { w.scanTable() })
	}
	w.wg.Wait()
	scan.AnnotateInt("tasks", w.tasks.Load())
	scan.AnnotateInt("blocks", w.blocks.Load())
	scan.End()

	resolve := opt.Trace.Start("fsck", "resolve", span.ID())
	fs.fsckResolve(r, w, rootIno)
	resolve.End()
	span.AnnotateInt("dirs", int64(r.Dirs))
	span.AnnotateInt("problems", int64(len(r.Problems)))
	span.End()

	if m := opt.Metrics; m != nil {
		labels := telemetry.Labels{"layer": "fsck"}
		m.Counter("fsck_runs", labels).Inc()
		m.Counter("fsck_scan_tasks", labels).Add(w.tasks.Load())
		m.Counter("fsck_blocks_scanned", labels).Add(w.blocks.Load())
		m.Counter("fsck_claims", labels).Add(w.claimed)
		m.Counter("fsck_problems", labels).Add(int64(len(r.Problems)))
		m.Counter("fsck_advisories", labels).Add(int64(len(r.Advisories)))
		m.Gauge("fsck_workers", labels).Set(int64(workers))
		// Scheduling-dependent (like wall_ns): deterministic only for a
		// serial scan. Kept out of every determinism-guarded comparison.
		m.Gauge("fsck_occupancy_peak", labels).Set(w.peak.Load())
		h := m.Histogram("fsck_task_blocks", labels)
		for _, d := range w.dirs { // sorted by fsckResolve: deterministic
			h.Observe(d.blocks)
		}
	}
	return r
}

// fsckResolve is the serial cross-task resolution stage: it merges the
// scan results deterministically and derives every finding that needs
// more than one task's view.
func (fs *FS) fsckResolve(r *FsckReport, w *fsckWalker, rootIno inode.Ino) {
	sort.Slice(w.dirs, func(i, j int) bool { return w.dirs[i].key.less(w.dirs[j].key) })
	sort.Slice(w.groups, func(i, j int) bool { return w.groups[i].group < w.groups[j].group })

	var problems, advisories []string
	var claims []fsckClaim
	var edges []fsckEdge
	refs := map[int64]bool{0: true} // reserved slot, never a dirent target
	if fs.cfg.Layout == LayoutNormal {
		refs[int64(rootIno)] = true
	}
	dirIDs := map[uint32][]string{}
	r.Dirs = len(w.dirs)
	for _, d := range w.dirs {
		r.Files += int(d.files)
		problems = append(problems, d.problems...)
		advisories = append(advisories, d.advisories...)
		claims = append(claims, d.claims...)
		edges = append(edges, d.edges...)
		for _, s := range d.inodeRefs {
			refs[s] = true
		}
		if fs.cfg.Layout == LayoutEmbedded && d.dirID != 0 {
			dirIDs[d.dirID] = append(dirIDs[d.dirID], d.desc)
		}
	}
	w.claimed = int64(len(claims))

	// Forward pass: duplicate ownership, reachable-but-unallocated.
	sort.Slice(claims, func(i, j int) bool {
		if claims[i].blk != claims[j].blk {
			return claims[i].blk < claims[j].blk
		}
		return claims[i].what < claims[j].what
	})
	reach := make([]int64, 0, len(claims))
	for i := 0; i < len(claims); {
		j := i
		for j < len(claims) && claims[j].blk == claims[i].blk {
			j++
		}
		blk := claims[i].blk
		reach = append(reach, blk)
		for k := i + 1; k < j; k++ {
			problems = append(problems, fmt.Sprintf("block %d claimed by both %s and %s",
				blk, claims[i].what, claims[k].what))
		}
		if !fs.alloc.Allocated(alloc.Range{Start: blk, Count: 1}) {
			problems = append(problems, fmt.Sprintf("block %d (%s) reachable but not allocated",
				blk, claims[i].what))
		}
		i = j
	}
	r.ReachableBlocks = int64(len(reach))

	// Reverse pass: every dynamically allocated block (the group data
	// areas — the fixed regions are reserved at format time and never
	// freed) must be claimed by something reachable, or it leaked.
	inReach := func(b int64) bool {
		idx := sort.Search(len(reach), func(i int) bool { return reach[i] >= b })
		return idx < len(reach) && reach[idx] == b
	}
	var leaked []int64
	for _, g := range w.groups {
		for _, run := range g.allocated {
			for b := run.Start; b < run.End(); b++ {
				if !inReach(b) {
					leaked = append(leaked, b)
				}
			}
		}
	}
	for i := 0; i < len(leaked); {
		j := i
		for j+1 < len(leaked) && leaked[j+1] == leaked[j]+1 {
			j++
		}
		if i == j {
			problems = append(problems, fmt.Sprintf("block %d allocated but unreachable (leaked)", leaked[i]))
		} else {
			problems = append(problems, fmt.Sprintf("blocks [%d,%d) allocated but unreachable (leaked)",
				leaked[i], leaked[j]+1))
		}
		i = j + 1
	}

	// Reverse pass, inode side.
	if fs.cfg.Layout == LayoutNormal {
		for _, g := range w.groups {
			for _, slot := range g.setSlots {
				if !refs[slot] {
					problems = append(problems, fmt.Sprintf(
						"inode %d set in inode bitmap but referenced by no dirent (orphan)", slot))
				}
			}
		}
	} else {
		ids := make([]uint32, 0, len(dirIDs))
		for id := range dirIDs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			owners := dirIDs[id]
			if len(owners) > 1 {
				sort.Strings(owners)
				for _, o := range owners[1:] {
					problems = append(problems, fmt.Sprintf("directory id %d used by both %s and %s",
						id, owners[0], o))
				}
			}
		}
		for _, te := range w.table {
			if len(dirIDs[te.dirID]) == 0 {
				problems = append(problems, fmt.Sprintf(
					"directory table entry %d (self %v) references no reachable directory (orphan)",
					te.dirID, te.self))
			}
		}
	}

	// Edge analysis: every non-root directory record must be referenced
	// exactly once; the root never. A second incoming edge means a dirent
	// points at an ancestor or an already-linked directory — the cycles
	// and cross-links the scan stage refused to recurse into.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].child != edges[j].child {
			return edges[i].child.less(edges[j].child)
		}
		return edges[i].from < edges[j].from
	})
	for i := 0; i < len(edges); {
		j := i
		for j < len(edges) && edges[j].child == edges[i].child {
			j++
		}
		group := edges[i:j]
		if group[0].child == w.rootKey {
			for _, e := range group {
				problems = append(problems, fmt.Sprintf(
					"%s references the root directory %s (directory cycle)", e.from, e.childDesc))
			}
		} else {
			for _, e := range group[1:] {
				problems = append(problems, fmt.Sprintf(
					"%s re-entered: referenced by both %s and %s (directory cycle or cross-link)",
					group[0].childDesc, group[0].from, e.from))
			}
		}
		i = j
	}

	sort.Strings(problems)
	sort.Strings(advisories)
	r.Problems = problems
	r.Advisories = advisories
}
