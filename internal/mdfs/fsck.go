package mdfs

import (
	"encoding/binary"
	"fmt"

	"redbud/internal/alloc"
	"redbud/internal/inode"
)

// FsckReport is the result of a consistency check.
type FsckReport struct {
	// Dirs and Files count the reachable namespace.
	Dirs  int
	Files int
	// ReachableBlocks counts metadata blocks owned by reachable objects
	// (directory content/entries, spill blocks).
	ReachableBlocks int64
	// Problems lists every inconsistency found, empty for a clean
	// file system.
	Problems []string
	// Advisories are non-fatal drifts in heuristic bookkeeping (the
	// fragmentation-degree numerator is persisted lazily by design).
	Advisories []string
}

// Clean reports whether the check found no problems.
func (r *FsckReport) Clean() bool { return len(r.Problems) == 0 }

// problemf appends a formatted finding.
func (r *FsckReport) problemf(format string, args ...interface{}) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Fsck walks the on-disk state from the superblock — independently of the
// in-memory namespace — and verifies the structural invariants:
//
//   - the superblock is valid and the root record is a directory;
//   - every reachable inode record parses and its Ino matches its
//     location (embedded: directory identification and slot);
//   - no two objects claim the same metadata block (content, entry, or
//     spill);
//   - every reachable metadata block is marked allocated in the space
//     allocator;
//   - embedded: every directory's table entry resolves back to it, and
//     the stored fragmentation-degree numerator matches the sum of its
//     files' mapping-unit counts;
//   - normal: every reachable inode's slot is set in the inode bitmap.
func (fs *FS) Fsck() *FsckReport {
	r := &FsckReport{}
	sb := fs.store.Read(0)
	le := binary.LittleEndian
	if le.Uint32(sb[offSMagic:]) != superMagic {
		r.problemf("superblock: bad magic %#x", le.Uint32(sb[offSMagic:]))
		return r
	}
	if Layout(le.Uint32(sb[offSLayout:])) != fs.cfg.Layout {
		r.problemf("superblock: layout mismatch")
		return r
	}
	rootBlk := int64(le.Uint64(sb[offSRootBlk:]))
	rootOff := int(le.Uint64(sb[offSRootOff:]))
	rootIno := inode.Ino(le.Uint64(sb[offSRootIno:]))
	rec, err := fs.readInodeAt(rootBlk, rootOff)
	if err != nil {
		r.problemf("root record: %v", err)
		return r
	}
	if !rec.IsDir() {
		r.problemf("root record is not a directory (mode %d)", rec.Mode)
		return r
	}
	owners := map[int64]string{} // block → owner description
	fs.fsckDir(r, rec, rootIno, rootBlk, rootOff, owners)
	return r
}

// claim records block ownership, reporting duplicates, and checks the
// allocator.
func (fs *FS) claim(r *FsckReport, owners map[int64]string, blk int64, what string) {
	if prev, ok := owners[blk]; ok {
		r.problemf("block %d claimed by both %s and %s", blk, prev, what)
		return
	}
	owners[blk] = what
	r.ReachableBlocks++
	if !fs.alloc.Allocated(alloc.Range{Start: blk, Count: 1}) {
		r.problemf("block %d (%s) reachable but not allocated", blk, what)
	}
}

// fsckDir verifies one directory and recurses into subdirectories.
func (fs *FS) fsckDir(r *FsckReport, rec *inode.Inode, ino inode.Ino, recBlk int64, recOff int, owners map[int64]string) {
	r.Dirs++
	name := rec.Name
	if name == "" {
		name = "/"
	}
	runs := extentsToRuns(fs.readMapping(rec))
	for _, spill := range fs.spillChain(rec) {
		fs.claim(r, owners, spill, fmt.Sprintf("dir %q mapping spill", name))
	}
	for _, run := range runs {
		for b := run.Start; b < run.End(); b++ {
			fs.claim(r, owners, b, fmt.Sprintf("dir %q content", name))
		}
	}
	if fs.cfg.Layout == LayoutEmbedded {
		fs.fsckEmbeddedDir(r, rec, ino, runs, owners)
	} else {
		fs.fsckNormalDir(r, rec, ino, runs, owners)
	}
}

// fsckEmbeddedDir scans an embedded directory's content records.
func (fs *FS) fsckEmbeddedDir(r *FsckReport, dirRec *inode.Inode, dirIno inode.Ino, runs []alloc.Range, owners map[int64]string) {
	// Table entry must resolve back to this directory.
	if dirRec.DirID == 0 {
		r.problemf("embedded dir %v has no directory identification", dirIno)
		return
	}
	_, self, err := fs.readTableEntry(dirRec.DirID)
	if err != nil {
		r.problemf("dir table entry %d: %v", dirRec.DirID, err)
	} else if self != dirIno {
		r.problemf("dir table entry %d points at %v, record says %v", dirRec.DirID, self, dirIno)
	}
	per := fs.geo.InodesPerBlock
	var slot uint32
	var degreeSum int64
	var files int64
	for _, run := range runs {
		for b := run.Start; b < run.End(); b++ {
			buf := fs.store.Read(b)
			for i := int64(0); i < per; i++ {
				cur := slot
				slot++
				rec, err := inode.Unmarshal(buf[i*recordSize : (i+1)*recordSize])
				if err != nil {
					r.problemf("dir %d slot %d: %v", dirRec.DirID, cur, err)
					continue
				}
				if rec.Mode == inode.ModeNone || rec.Nlink == 0 {
					continue
				}
				want := inode.MakeIno(dirRec.DirID, cur)
				if rec.Ino != want {
					r.problemf("dir %d slot %d: record ino %v, want %v", dirRec.DirID, cur, rec.Ino, want)
				}
				if rec.IsDir() {
					fs.fsckDir(r, rec, rec.Ino, b, int(i*recordSize), owners)
					continue
				}
				r.Files++
				files++
				degreeSum += int64(rec.ExtentCount)
				for _, spill := range fs.spillChain(rec) {
					fs.claim(r, owners, spill, fmt.Sprintf("file %q spill", rec.Name))
				}
			}
		}
	}
	if int64(dirRec.Aux) != degreeSum {
		// The numerator is maintained in memory and persisted on the
		// next structural touch, so bounded drift is expected.
		r.Advisories = append(r.Advisories, fmt.Sprintf(
			"dir %d: fragmentation-degree numerator %d, recomputed %d (lazily persisted)",
			dirRec.DirID, dirRec.Aux, degreeSum))
	}
	if dirRec.Size != files {
		// Size counts files plus subdirectories in embTouchDir; allow
		// the subdirectory delta.
		if dirRec.Size < files {
			r.problemf("dir %d: file count %d below recomputed %d", dirRec.DirID, dirRec.Size, files)
		}
	}
}

// fsckNormalDir scans a traditional directory's entry blocks.
func (fs *FS) fsckNormalDir(r *FsckReport, dirRec *inode.Inode, dirIno inode.Ino, runs []alloc.Range, owners map[int64]string) {
	per := fs.direntsPerBlock()
	for _, run := range runs {
		for b := run.Start; b < run.End(); b++ {
			buf := fs.store.Read(b)
			for i := 0; i < per; i++ {
				ent := buf[i*direntSize : (i+1)*direntSize]
				ino := inode.Ino(binary.LittleEndian.Uint64(ent[0:]))
				if ino == 0 {
					continue
				}
				nameLen := int(ent[8])
				if nameLen > direntSize-9 {
					r.problemf("dir %v: corrupt dirent name length %d", dirIno, nameLen)
					continue
				}
				name := string(ent[9 : 9+nameLen])
				slot := int64(ino)
				if slot >= fs.geo.Groups*fs.geo.InodesPerGroup {
					r.problemf("dirent %q: inode %d outside inode tables", name, slot)
					continue
				}
				g := slot / fs.geo.InodesPerGroup
				idx := slot % fs.geo.InodesPerGroup
				if fs.ibitmap[g][idx/64]&(1<<uint(idx%64)) == 0 {
					r.problemf("dirent %q: inode %d not set in inode bitmap", name, slot)
				}
				blk, off := fs.geo.slotLocation(slot)
				rec, err := fs.readInodeAt(blk, off)
				if err != nil {
					r.problemf("inode %d: %v", slot, err)
					continue
				}
				if rec.Mode == inode.ModeNone {
					r.problemf("dirent %q points at cleared inode %d", name, slot)
					continue
				}
				if rec.IsDir() {
					fs.fsckDir(r, rec, ino, blk, off, owners)
					continue
				}
				r.Files++
				for _, spill := range fs.spillChain(rec) {
					fs.claim(r, owners, spill, fmt.Sprintf("file %q spill", name))
				}
			}
		}
	}
}
