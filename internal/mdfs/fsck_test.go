package mdfs

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"redbud/internal/extent"
	"redbud/internal/inode"
)

// populate builds a small namespace with files, mappings, deletions, and a
// subdirectory.
func populate(t *testing.T, fs *FS) {
	t.Helper()
	d, err := fs.Mkdir(fs.Root(), "proj")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		ino, err := fs.Create(d, fmt.Sprintf("f%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			var exts []extent.Extent
			for j := 0; j < 10+i; j++ {
				exts = append(exts, extent.Extent{Logical: int64(j) * 2, Physical: int64(9000 + i*100 + j*4), Count: 2})
			}
			if err := fs.SetLayout(ino, exts); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 60; i += 7 {
		if err := fs.Unlink(d, fmt.Sprintf("f%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := fs.Mkdir(d, "sub")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(sub, "leaf"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFsckCleanBothLayouts(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		populate(t, fs)
		report := fs.Fsck()
		if !report.Clean() {
			t.Fatalf("fsck found problems on a healthy FS:\n%v", report.Problems)
		}
		if report.Dirs < 3 { // root, proj, sub
			t.Fatalf("Dirs = %d, want >= 3", report.Dirs)
		}
		if report.Files < 40 {
			t.Fatalf("Files = %d, want >= 40", report.Files)
		}
		if report.ReachableBlocks == 0 {
			t.Fatal("no reachable blocks counted")
		}
	})
}

func TestFsckDetectsCorruptRecord(t *testing.T) {
	fs := newFS(t, LayoutEmbedded)
	populate(t, fs)
	// Corrupt one content block of the proj directory: flip the inline
	// count of a record to an invalid value.
	d := fs.dirs[fs.Resolve(mustLookup(t, fs, fs.Root(), "proj"))]
	blk := d.content[0].Start
	buf := append([]byte(nil), fs.store.Read(blk)...)
	buf[117] = 250 // offInlineN out of range
	fs.store.Write(blk, buf)
	fs.store.Commit()
	fs.store.Checkpoint()
	report := fs.Fsck()
	if report.Clean() {
		t.Fatal("fsck missed a corrupt inode record")
	}
}

func TestFsckDetectsBadSuperblock(t *testing.T) {
	fs := newFS(t, LayoutNormal)
	populate(t, fs)
	fs.store.Write(0, make([]byte, fs.cfg.BlockSize))
	fs.store.Commit()
	fs.store.Checkpoint()
	report := fs.Fsck()
	if report.Clean() {
		t.Fatal("fsck missed a destroyed superblock")
	}
}

// mustLookup is a test helper.
func mustLookup(t *testing.T, fs *FS, dir inode.Ino, name string) inode.Ino {
	t.Helper()
	ino, err := fs.Lookup(dir, name)
	if err != nil {
		t.Fatal(err)
	}
	return ino
}

func TestImageSaveLoadRoundTrip(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		populate(t, fs)
		var img bytes.Buffer
		if err := fs.SaveImage(&img); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadImage(bytes.NewReader(img.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		// The namespace survives.
		d, err := loaded.Lookup(loaded.Root(), "proj")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := loaded.Lookup(d, "f01"); err != nil {
			t.Fatalf("f01 lost: %v", err)
		}
		if _, err := loaded.Lookup(d, "f00"); err == nil {
			t.Fatal("deleted f00 resurrected")
		}
		sub, err := loaded.Lookup(d, "sub")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := loaded.Lookup(sub, "leaf"); err != nil {
			t.Fatal(err)
		}
		// Layout mappings survive.
		ino, _ := loaded.Lookup(d, "f03")
		exts, err := loaded.GetLayout(ino)
		if err != nil {
			t.Fatal(err)
		}
		if len(exts) != 13 {
			t.Fatalf("f03 layout = %d extents, want 13", len(exts))
		}
		// The loaded instance fscks clean and accepts new work.
		if report := loaded.Fsck(); !report.Clean() {
			t.Fatalf("loaded image not clean:\n%v", report.Problems)
		}
		if _, err := loaded.Create(d, "after-load"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestImageIncludesJournalOverlay(t *testing.T) {
	fs := newFS(t, LayoutEmbedded)
	populate(t, fs)
	// A committed-but-unchekpointed change must be part of the image.
	d, _ := fs.Lookup(fs.Root(), "proj")
	if _, err := fs.Create(d, "committed-only"); err != nil {
		t.Fatal(err)
	}
	if err := fs.store.Commit(); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if err := fs.SaveImage(&img); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadImage(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := loaded.Lookup(loaded.Root(), "proj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Lookup(d2, "committed-only"); err != nil {
		t.Fatalf("journal-overlay change lost: %v", err)
	}
}

func TestLoadImageRejectsGarbage(t *testing.T) {
	if _, err := LoadImage(bytes.NewReader([]byte("not an image at all"))); err == nil {
		t.Fatal("garbage should not load")
	}
	if _, err := LoadImage(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should not load")
	}
}

// hasFinding reports whether any problem line contains the substring.
func hasFinding(problems []string, substr string) bool {
	for _, p := range problems {
		if strings.Contains(p, substr) {
			return true
		}
	}
	return false
}

// TestFsckCycleTerminates is the headline regression: a dirent graph that
// re-enters itself must yield a cycle finding, not unbounded recursion.
// Before the scan/resolve split, fsckDir recursed through dirents with no
// visited set and this test would hang.
func TestFsckCycleTerminates(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		populate(t, fs)
		if err := fs.InjectCorruption("cycle"); err != nil {
			t.Fatal(err)
		}
		report := fs.Fsck()
		if report.Clean() {
			t.Fatal("fsck missed a directory cycle")
		}
		if !hasFinding(report.Problems, "cycle") {
			t.Fatalf("no cycle finding in:\n%v", report.Problems)
		}
	})
}

// TestFsckCycleSurvivesImageRoundTrip proves both that the cyclic image
// mounts (the Remount visited guard) and that fsck still reports the
// damage after LoadImage.
func TestFsckCycleSurvivesImageRoundTrip(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		populate(t, fs)
		if err := fs.InjectCorruption("cycle"); err != nil {
			t.Fatal(err)
		}
		var img bytes.Buffer
		if err := fs.SaveImage(&img); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadImage(bytes.NewReader(img.Bytes()))
		if err != nil {
			t.Fatalf("cyclic image failed to mount: %v", err)
		}
		report := loaded.Fsck()
		if !hasFinding(report.Problems, "cycle") {
			t.Fatalf("no cycle finding after round trip:\n%v", report.Problems)
		}
	})
}

// TestFsckCorruptionSuite is the table-driven corrupted-image suite: each
// corruption kind must yield its specific finding class, under both the
// serial and the parallel walker, with byte-identical reports.
func TestFsckCorruptionSuite(t *testing.T) {
	cases := []struct {
		kind    string
		layouts []Layout
		want    string
	}{
		{"cycle", []Layout{LayoutNormal, LayoutEmbedded}, "cycle"},
		{"leak", []Layout{LayoutNormal, LayoutEmbedded}, "leaked"},
		{"dup-claim", []Layout{LayoutNormal, LayoutEmbedded}, "claimed by both"},
		{"bitmap-orphan", []Layout{LayoutNormal}, "orphan"},
		{"table-orphan", []Layout{LayoutEmbedded}, "orphan"},
		{"size-over", []Layout{LayoutEmbedded}, "stale over-count"},
	}
	for _, tc := range cases {
		for _, layout := range tc.layouts {
			t.Run(tc.kind+"/"+layout.String(), func(t *testing.T) {
				fs := newFS(t, layout)
				populate(t, fs)
				if err := fs.InjectCorruption(tc.kind); err != nil {
					t.Fatal(err)
				}
				serial := fs.FsckWith(FsckOptions{Workers: 1})
				if !hasFinding(serial.Problems, tc.want) {
					t.Fatalf("serial fsck: no %q finding in:\n%v", tc.want, serial.Problems)
				}
				parallel := fs.FsckWith(FsckOptions{Workers: 8})
				if !reflect.DeepEqual(serial.Problems, parallel.Problems) {
					t.Fatalf("parallel report diverges from serial:\nserial:   %v\nparallel: %v",
						serial.Problems, parallel.Problems)
				}
				if !reflect.DeepEqual(serial.Advisories, parallel.Advisories) {
					t.Fatalf("parallel advisories diverge from serial:\nserial:   %v\nparallel: %v",
						serial.Advisories, parallel.Advisories)
				}
			})
		}
	}
}

// TestFsckParallelMatchesSerial checks full-report parity on a healthy
// aged namespace at several worker widths. Under `go test -race` this is
// also the data-race check on the parallel walker.
func TestFsckParallelMatchesSerial(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		populate(t, fs)
		// Age the namespace further: more directories across groups.
		for i := 0; i < 8; i++ {
			d, err := fs.Mkdir(fs.Root(), fmt.Sprintf("d%02d", i))
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 12; j++ {
				if _, err := fs.Create(d, fmt.Sprintf("g%02d", j)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		serial := fs.FsckWith(FsckOptions{Workers: 1})
		if !serial.Clean() {
			t.Fatalf("serial fsck not clean:\n%v", serial.Problems)
		}
		for _, workers := range []int{2, 4, 8} {
			par := fs.FsckWith(FsckOptions{Workers: workers})
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("workers=%d report diverges:\nserial:   %+v\nparallel: %+v", workers, serial, par)
			}
		}
	})
}

// TestFsckLeakReclaimedByRebuild proves the recovery contract: the leak
// fsck reports is exactly what RebuildAllocator reclaims.
func TestFsckLeakReclaimedByRebuild(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		populate(t, fs)
		if err := fs.InjectCorruption("leak"); err != nil {
			t.Fatal(err)
		}
		if report := fs.Fsck(); !hasFinding(report.Problems, "leaked") {
			t.Fatalf("no leak finding in:\n%v", report.Problems)
		}
		reclaimed, err := fs.RebuildAllocator()
		if err != nil {
			t.Fatal(err)
		}
		if reclaimed != 4 {
			t.Fatalf("reclaimed %d blocks, want 4", reclaimed)
		}
		if report := fs.Fsck(); !report.Clean() {
			t.Fatalf("fsck still dirty after allocator rebuild:\n%v", report.Problems)
		}
	})
}

// TestFsckReportDeterministic runs the parallel checker repeatedly and
// demands identical reports — the worker-interleaving guarantee.
func TestFsckReportDeterministic(t *testing.T) {
	fs := newFS(t, LayoutEmbedded)
	populate(t, fs)
	if err := fs.InjectCorruption("dup-claim"); err != nil {
		t.Fatal(err)
	}
	first := fs.FsckWith(FsckOptions{Workers: 8})
	for i := 0; i < 10; i++ {
		again := fs.FsckWith(FsckOptions{Workers: 8})
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged:\nfirst: %+v\nagain: %+v", i, first, again)
		}
	}
}
