package mdfs

import (
	"bytes"
	"fmt"
	"testing"

	"redbud/internal/extent"
	"redbud/internal/inode"
)

// populate builds a small namespace with files, mappings, deletions, and a
// subdirectory.
func populate(t *testing.T, fs *FS) {
	t.Helper()
	d, err := fs.Mkdir(fs.Root(), "proj")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		ino, err := fs.Create(d, fmt.Sprintf("f%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			var exts []extent.Extent
			for j := 0; j < 10+i; j++ {
				exts = append(exts, extent.Extent{Logical: int64(j) * 2, Physical: int64(9000 + i*100 + j*4), Count: 2})
			}
			if err := fs.SetLayout(ino, exts); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 60; i += 7 {
		if err := fs.Unlink(d, fmt.Sprintf("f%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := fs.Mkdir(d, "sub")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(sub, "leaf"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFsckCleanBothLayouts(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		populate(t, fs)
		report := fs.Fsck()
		if !report.Clean() {
			t.Fatalf("fsck found problems on a healthy FS:\n%v", report.Problems)
		}
		if report.Dirs < 3 { // root, proj, sub
			t.Fatalf("Dirs = %d, want >= 3", report.Dirs)
		}
		if report.Files < 40 {
			t.Fatalf("Files = %d, want >= 40", report.Files)
		}
		if report.ReachableBlocks == 0 {
			t.Fatal("no reachable blocks counted")
		}
	})
}

func TestFsckDetectsCorruptRecord(t *testing.T) {
	fs := newFS(t, LayoutEmbedded)
	populate(t, fs)
	// Corrupt one content block of the proj directory: flip the inline
	// count of a record to an invalid value.
	d := fs.dirs[fs.Resolve(mustLookup(t, fs, fs.Root(), "proj"))]
	blk := d.content[0].Start
	buf := append([]byte(nil), fs.store.Read(blk)...)
	buf[117] = 250 // offInlineN out of range
	fs.store.Write(blk, buf)
	fs.store.Commit()
	fs.store.Checkpoint()
	report := fs.Fsck()
	if report.Clean() {
		t.Fatal("fsck missed a corrupt inode record")
	}
}

func TestFsckDetectsBadSuperblock(t *testing.T) {
	fs := newFS(t, LayoutNormal)
	populate(t, fs)
	fs.store.Write(0, make([]byte, fs.cfg.BlockSize))
	fs.store.Commit()
	fs.store.Checkpoint()
	report := fs.Fsck()
	if report.Clean() {
		t.Fatal("fsck missed a destroyed superblock")
	}
}

// mustLookup is a test helper.
func mustLookup(t *testing.T, fs *FS, dir inode.Ino, name string) inode.Ino {
	t.Helper()
	ino, err := fs.Lookup(dir, name)
	if err != nil {
		t.Fatal(err)
	}
	return ino
}

func TestImageSaveLoadRoundTrip(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		populate(t, fs)
		var img bytes.Buffer
		if err := fs.SaveImage(&img); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadImage(bytes.NewReader(img.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		// The namespace survives.
		d, err := loaded.Lookup(loaded.Root(), "proj")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := loaded.Lookup(d, "f01"); err != nil {
			t.Fatalf("f01 lost: %v", err)
		}
		if _, err := loaded.Lookup(d, "f00"); err == nil {
			t.Fatal("deleted f00 resurrected")
		}
		sub, err := loaded.Lookup(d, "sub")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := loaded.Lookup(sub, "leaf"); err != nil {
			t.Fatal(err)
		}
		// Layout mappings survive.
		ino, _ := loaded.Lookup(d, "f03")
		exts, err := loaded.GetLayout(ino)
		if err != nil {
			t.Fatal(err)
		}
		if len(exts) != 13 {
			t.Fatalf("f03 layout = %d extents, want 13", len(exts))
		}
		// The loaded instance fscks clean and accepts new work.
		if report := loaded.Fsck(); !report.Clean() {
			t.Fatalf("loaded image not clean:\n%v", report.Problems)
		}
		if _, err := loaded.Create(d, "after-load"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestImageIncludesJournalOverlay(t *testing.T) {
	fs := newFS(t, LayoutEmbedded)
	populate(t, fs)
	// A committed-but-unchekpointed change must be part of the image.
	d, _ := fs.Lookup(fs.Root(), "proj")
	if _, err := fs.Create(d, "committed-only"); err != nil {
		t.Fatal(err)
	}
	if err := fs.store.Commit(); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if err := fs.SaveImage(&img); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadImage(bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := loaded.Lookup(loaded.Root(), "proj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Lookup(d2, "committed-only"); err != nil {
		t.Fatalf("journal-overlay change lost: %v", err)
	}
}

func TestLoadImageRejectsGarbage(t *testing.T) {
	if _, err := LoadImage(bytes.NewReader([]byte("not an image at all"))); err == nil {
		t.Fatal("garbage should not load")
	}
	if _, err := LoadImage(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should not load")
	}
}
