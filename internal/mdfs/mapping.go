package mdfs

import (
	"encoding/binary"

	"redbud/internal/alloc"
	"redbud/internal/extent"
	"redbud/internal/inode"
)

// Layout mappings are stored as the paper describes: the head "stuffed
// into the tail of file inode", the overflow in spill blocks placed next
// to the inode's directory content. The inode's two spill pointers are the
// first links of a chain — each spill block carries a next pointer — so a
// severely fragmented file's mapping can grow without bound, the way an
// extent tree would.
//
// Spill block layout: count uint32, next int64, then count × 32-byte
// extents.

// extentBytes is the serialized size of one layout-mapping unit.
const extentBytes = 32

// spillHeader is the spill block header size: count plus next pointer.
const spillHeader = 12

// extentsPerSpill is the number of mapping units one spill block holds.
func (fs *FS) extentsPerSpill() int { return (int(fs.cfg.BlockSize) - spillHeader) / extentBytes }

// maxMappingUnits reports the capacity of the inline area plus one full
// spill chain link per slot; the chain extension makes the true capacity
// unbounded, so this is only the threshold above which chains grow.
func (fs *FS) maxMappingUnits() int {
	return inode.InlineExtents + inode.SpillSlots*fs.extentsPerSpill()
}

// encodeExtent serializes one mapping unit.
func encodeExtent(buf []byte, e extent.Extent) {
	le := binary.LittleEndian
	le.PutUint64(buf[0:], uint64(e.Logical))
	le.PutUint64(buf[8:], uint64(e.Physical))
	le.PutUint64(buf[16:], uint64(e.Count))
	le.PutUint32(buf[24:], e.Flags)
}

// decodeExtent parses one mapping unit.
func decodeExtent(buf []byte) extent.Extent {
	le := binary.LittleEndian
	return extent.Extent{
		Logical:  int64(le.Uint64(buf[0:])),
		Physical: int64(le.Uint64(buf[8:])),
		Count:    int64(le.Uint64(buf[16:])),
		Flags:    le.Uint32(buf[24:]),
	}
}

// spillChain returns the record's existing spill blocks in order: the
// inode's slots, then each block's next pointers.
func (fs *FS) spillChain(rec *inode.Inode) []int64 {
	var chain []int64
	seen := map[int64]bool{}
	var follow func(blk int64)
	follow = func(blk int64) {
		for blk != 0 && !seen[blk] {
			seen[blk] = true
			chain = append(chain, blk)
			buf := fs.store.Read(blk)
			blk = int64(binary.LittleEndian.Uint64(buf[4:]))
		}
	}
	for _, s := range rec.Spill {
		follow(s)
	}
	return chain
}

// writeMapping stores a layout mapping into the record: the head inline,
// the overflow in the spill chain. spillGoal hints where new spill blocks
// should land — the directory content end (embedded) or the group's data
// area (normal). Surplus chain links of a shrinking mapping are freed. It
// returns the spill blocks it allocated.
func (fs *FS) writeMapping(rec *inode.Inode, exts []extent.Extent, spillGoal int64) ([]alloc.Range, error) {
	n := len(exts)
	if n > inode.InlineExtents {
		n = inode.InlineExtents
	}
	rec.Inline = append([]extent.Extent(nil), exts[:n]...)
	rec.ExtentCount = uint32(len(exts))
	rest := exts[n:]

	perSpill := fs.extentsPerSpill()
	needed := (len(rest) + perSpill - 1) / perSpill
	chain := fs.spillChain(rec)
	var allocated []alloc.Range
	// Grow the chain as needed, each link near the goal (or the previous
	// link, keeping the chain physically clustered).
	goal := spillGoal
	if len(chain) > 0 {
		goal = chain[len(chain)-1] + 1
	}
	for len(chain) < needed {
		runs, err := fs.allocData(goal, 1)
		if err != nil {
			return allocated, err
		}
		chain = append(chain, runs[0].Start)
		allocated = append(allocated, runs[0])
		goal = runs[0].Start + 1
	}
	// Free surplus links.
	for _, blk := range chain[needed:] {
		if err := fs.freeData(alloc.Range{Start: blk, Count: 1}); err != nil {
			return allocated, err
		}
	}
	chain = chain[:needed]
	// Write the chain contents.
	for i, blk := range chain {
		chunk := rest[i*perSpill:]
		if len(chunk) > perSpill {
			chunk = chunk[:perSpill]
		}
		next := int64(0)
		if i+1 < len(chain) {
			next = chain[i+1]
		}
		buf := make([]byte, fs.cfg.BlockSize)
		le := binary.LittleEndian
		le.PutUint32(buf[0:], uint32(len(chunk)))
		le.PutUint64(buf[4:], uint64(next))
		for j, e := range chunk {
			encodeExtent(buf[spillHeader+j*extentBytes:], e)
		}
		fs.store.Write(blk, buf)
	}
	// The inode slots reference the first links; spillChain's seen-set
	// keeps the uniform chain[i]→chain[i+1] linking unambiguous even
	// though the second link is reachable both from its slot and from
	// the first link's next pointer.
	rec.Spill = [inode.SpillSlots]int64{}
	for i := 0; i < inode.SpillSlots && i < len(chain); i++ {
		rec.Spill[i] = chain[i]
	}
	return allocated, nil
}

// readMapping loads the full layout mapping: the inline head plus the
// spill chain, charging the block reads.
func (fs *FS) readMapping(rec *inode.Inode) []extent.Extent {
	out := append([]extent.Extent(nil), rec.Inline...)
	remaining := int(rec.ExtentCount) - len(rec.Inline)
	for _, blk := range fs.spillChain(rec) {
		if remaining <= 0 {
			break
		}
		buf := fs.store.Read(blk)
		n := int(binary.LittleEndian.Uint32(buf[0:]))
		if max := fs.extentsPerSpill(); n > max {
			n = max
		}
		for i := 0; i < n && remaining > 0; i++ {
			out = append(out, decodeExtent(buf[spillHeader+i*extentBytes:]))
			remaining--
		}
	}
	return out
}

// freeSpill releases the record's whole spill chain.
func (fs *FS) freeSpill(rec *inode.Inode) error {
	for _, blk := range fs.spillChain(rec) {
		if err := fs.freeData(alloc.Range{Start: blk, Count: 1}); err != nil {
			return err
		}
	}
	rec.Spill = [inode.SpillSlots]int64{}
	return nil
}

// runsToExtents converts allocation runs to a logical mapping starting at
// logical block 0 — the form directory content is recorded in.
func runsToExtents(runs []alloc.Range) []extent.Extent {
	var out []extent.Extent
	var logical int64
	for _, r := range runs {
		out = append(out, extent.Extent{Logical: logical, Physical: r.Start, Count: r.Count})
		logical += r.Count
	}
	return out
}

// extentsToRuns extracts the physical runs of a mapping.
func extentsToRuns(exts []extent.Extent) []alloc.Range {
	out := make([]alloc.Range, 0, len(exts))
	for _, e := range exts {
		out = append(out, alloc.Range{Start: e.Physical, Count: e.Count})
	}
	return out
}
