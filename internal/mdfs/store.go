// Package mdfs implements the metadata file system (MFS) that backs the
// Redbud metadata server: an ext3-like block store with a write-ahead
// journal, block groups, and two directory layouts — the traditional
// placement (directory-entry blocks plus inode-table inodes) and the MiF
// embedded directory (inodes and layout mappings inside the directory
// content, entry blocks omitted).
//
// The paper builds its MFS "using ext3 and then incorporate[s] embedded
// directory into it"; this package is that component, with every metadata
// disk access accounted through the disk model so the Figure 8–10
// experiments can count block-layer requests the way the paper does.
package mdfs

import (
	"container/list"
	"fmt"

	"redbud/internal/crashsim"
	"redbud/internal/disk"
	"redbud/internal/iosched"
	"redbud/internal/journal"
	"redbud/internal/sim"
)

// StoreStats counts block-store activity.
type StoreStats struct {
	// Reads counts logical block reads.
	Reads int64
	// CacheHits counts reads served from the cache.
	CacheHits int64
	// DiskReads counts block reads that went to the disk.
	DiskReads int64
	// TxnWrites counts block writes recorded in transactions.
	TxnWrites int64
}

// Store is the transactional block store of the metadata file system. Block
// contents are real bytes; reads that miss the LRU cache are charged to the
// disk model, mutations are journaled and written home at checkpoints.
// Store is not safe for concurrent use; the owning FS serializes operations
// the way a single MDS thread pool with a namespace lock would.
type Store struct {
	d         *disk.Disk
	sched     *iosched.Elevator
	blockSize int

	home  map[int64][]byte
	dirty map[int64][]byte
	txn   map[int64][]byte
	order []int64 // txn insertion order

	cache    map[int64]*list.Element
	lru      *list.List
	cacheCap int

	jnl   *journal.Journal
	stats StoreStats

	// crash, when armed, kills the mount at the store's named crash
	// points (nil-safe: nil is a no-op).
	crash *crashsim.Injector
}

// NewStore builds a store over d with the journal occupying
// [journalStart, journalStart+journalBlocks) and an LRU cache of cacheCap
// blocks.
func NewStore(d *disk.Disk, journalStart, journalBlocks int64, cacheCap int, queueDepth int) *Store {
	if cacheCap < 1 {
		panic("mdfs: cache capacity must be >= 1")
	}
	s := &Store{
		d:         d,
		sched:     iosched.NewElevator(queueDepth),
		blockSize: int(d.Config().BlockSize),
		home:      make(map[int64][]byte),
		dirty:     make(map[int64][]byte),
		txn:       make(map[int64][]byte),
		cache:     make(map[int64]*list.Element),
		lru:       list.New(),
		cacheCap:  cacheCap,
	}
	s.jnl = journal.New(d, journalStart, journalBlocks, s.applyCheckpoint)
	return s
}

// Disk returns the underlying device model.
func (s *Store) Disk() *disk.Disk { return s.d }

// Journal exposes journal counters.
func (s *Store) Journal() *journal.Journal { return s.jnl }

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() StoreStats { return s.stats }

// SetCrashInjector arms the store's and its journal's crash points for a
// sweep run.
func (s *Store) SetCrashInjector(in *crashsim.Injector) {
	s.crash = in
	s.jnl.SetCrashInjector(in)
}

// DirtyBlocks returns the size of the committed-but-unchekpointed overlay —
// after LoadImage, the number of blocks journal replay had to repair.
// miffsck's exit-code contract distinguishes "clean" from "repaired" with
// it.
func (s *Store) DirtyBlocks() int { return len(s.dirty) }

// BlockSize returns the block size in bytes.
func (s *Store) BlockSize() int { return s.blockSize }

// content returns the current bytes of a block: transaction overlay first,
// then the committed overlay, then home. The result aliases internal state;
// callers treat it as read-only and copy before mutating.
func (s *Store) content(blk int64) []byte {
	if b, ok := s.txn[blk]; ok {
		return b
	}
	if b, ok := s.dirty[blk]; ok {
		return b
	}
	if b, ok := s.home[blk]; ok {
		return b
	}
	return make([]byte, s.blockSize)
}

// touch marks a block cache-resident, evicting the coldest block if the
// cache is full.
func (s *Store) touch(blk int64) {
	if e, ok := s.cache[blk]; ok {
		s.lru.MoveToFront(e)
		return
	}
	s.cache[blk] = s.lru.PushFront(blk)
	for s.lru.Len() > s.cacheCap {
		old := s.lru.Back()
		s.lru.Remove(old)
		delete(s.cache, old.Value.(int64))
	}
}

// cached reports whether the block is memory-resident.
func (s *Store) cached(blk int64) bool {
	_, ok := s.cache[blk]
	return ok
}

// Read returns the content of one block, charging a disk read on a cache
// miss.
func (s *Store) Read(blk int64) []byte {
	s.stats.Reads++
	if s.cached(blk) {
		s.stats.CacheHits++
		s.touch(blk)
		return s.content(blk)
	}
	s.d.Access(blk, 1, false)
	s.stats.DiskReads++
	s.touch(blk)
	return s.content(blk)
}

// ReadRange reads count consecutive blocks, fetching the cache-miss runs
// with as few disk requests as their contiguity allows — the whole-directory
// sequential read path of readdirplus, where the kernel prefetch window
// merges "the individual readdir-stat operations to be some large read disk
// requests".
func (s *Store) ReadRange(blk, count int64) [][]byte {
	out := make([][]byte, 0, count)
	runStart := int64(-1)
	flush := func(end int64) {
		if runStart >= 0 {
			s.d.Access(runStart, end-runStart, false)
			s.stats.DiskReads += end - runStart
			runStart = -1
		}
	}
	for b := blk; b < blk+count; b++ {
		s.stats.Reads++
		if s.cached(b) {
			s.stats.CacheHits++
			flush(b)
		} else if runStart < 0 {
			runStart = b
		}
		s.touch(b)
		out = append(out, s.content(b))
	}
	flush(blk + count)
	return out
}

// Write records a full-block write in the current transaction. The data is
// copied.
func (s *Store) Write(blk int64, data []byte) {
	if len(data) != s.blockSize {
		panic(fmt.Sprintf("mdfs: write of %d bytes to block %d, want %d", len(data), blk, s.blockSize))
	}
	if _, ok := s.txn[blk]; !ok {
		s.order = append(s.order, blk)
	}
	buf := make([]byte, s.blockSize)
	copy(buf, data)
	s.txn[blk] = buf
	s.stats.TxnWrites++
	s.touch(blk)
}

// WriteAt updates a byte range within one block, reading the current
// content first (a read-modify-write, like touching one inode record in an
// inode-table block). A block that has never been written anywhere is
// newly allocated — the file system knows its on-disk content is void, so
// no read is charged.
func (s *Store) WriteAt(blk int64, off int, data []byte) {
	if off < 0 || off+len(data) > s.blockSize {
		panic(fmt.Sprintf("mdfs: WriteAt [%d,+%d) outside block", off, len(data)))
	}
	var cur []byte
	if s.known(blk) {
		cur = s.Read(blk)
	} else {
		cur = s.content(blk)
		s.touch(blk)
	}
	buf := make([]byte, s.blockSize)
	copy(buf, cur)
	copy(buf[off:], data)
	s.Write(blk, buf)
}

// Forget discards a freed block's contents everywhere but the running
// transaction: a freed block's on-disk bytes are void, so a later
// reallocation writes it fresh without a read. The block is also revoked
// in the journal — without the revoke, a pending journaled write would
// resurrect the stale contents at the next checkpoint or crash replay.
func (s *Store) Forget(blk int64) {
	delete(s.home, blk)
	delete(s.dirty, blk)
	delete(s.txn, blk) // a pending write to a freed block is void too
	if e, ok := s.cache[blk]; ok {
		s.lru.Remove(e)
		delete(s.cache, blk)
	}
	s.jnl.Revoke(blk)
}

// known reports whether the block holds data anywhere (transaction,
// committed overlay, or home).
func (s *Store) known(blk int64) bool {
	if _, ok := s.txn[blk]; ok {
		return true
	}
	if _, ok := s.dirty[blk]; ok {
		return true
	}
	_, ok := s.home[blk]
	return ok
}

// Commit journals the current transaction. The home blocks are written
// later, at checkpoint time.
func (s *Store) Commit() error {
	if len(s.order) == 0 {
		return nil
	}
	records := make([]journal.Record, 0, len(s.order))
	for _, blk := range s.order {
		data, ok := s.txn[blk]
		if !ok {
			continue // written then freed within this transaction
		}
		records = append(records, journal.Record{Block: blk, Data: data})
	}
	if len(records) == 0 {
		s.txn = make(map[int64][]byte)
		s.order = nil
		return nil
	}
	// Crash point: the transaction is assembled in memory and nothing has
	// touched the journal — a power failure here loses it whole, which is
	// exactly what an uncommitted transaction is allowed to do.
	if _, ok := s.crash.Hit(crashsim.PtMdfsCommitBegin, int64(len(records))); ok {
		s.crash.Kill()
	}
	if _, err := s.jnl.Commit(records); err != nil {
		return err
	}
	for _, blk := range s.order {
		// Skip blocks written then freed within this transaction: they
		// carry no data, and a nil overlay entry would shadow home and
		// corrupt saved images.
		if data, ok := s.txn[blk]; ok {
			s.dirty[blk] = data
		}
	}
	s.txn = make(map[int64][]byte)
	s.order = nil
	return nil
}

// Abort discards the current transaction.
func (s *Store) Abort() {
	s.txn = make(map[int64][]byte)
	s.order = nil
}

// Checkpoint forces the journaled updates to their home locations.
func (s *Store) Checkpoint() {
	s.jnl.Checkpoint()
}

// applyCheckpoint is the journal's CheckpointFunc: it writes the batch to
// home through the elevator, so physically adjacent dirty blocks merge into
// single disk requests.
func (s *Store) applyCheckpoint(records []journal.Record) sim.Ns {
	// Crash point: power fails mid write-back. The damage plan decides
	// which home blocks (in the batch's sorted order) were updated; a
	// misdirected payload lands on another home block of the same batch.
	// Every record is still in the journal — the region is reset only
	// after this function returns — so replay repairs all of it,
	// including the misdirection victim.
	if dmg, ok := s.crash.Hit(crashsim.PtMdfsCheckpointHome, int64(len(records))); ok {
		for i := int64(0); i < dmg.Persisted && i < int64(len(records)); i++ {
			s.home[records[i].Block] = records[i].Data
		}
		if dmg.Victim >= 0 {
			stray := make([]byte, len(records[dmg.Persisted].Data))
			copy(stray, records[dmg.Persisted].Data)
			s.home[records[dmg.Victim].Block] = stray
		}
		s.crash.Kill()
	}
	reqs := make([]iosched.Request, 0, len(records))
	for _, r := range records {
		s.home[r.Block] = r.Data
		delete(s.dirty, r.Block)
		reqs = append(reqs, iosched.Request{Start: r.Block, Count: 1, Write: true})
	}
	return s.sched.Run(s.d, reqs)
}

// StoreView is a read-only, charge-free view of a Store's current
// contents. It resolves blocks with the same precedence Read uses
// (transaction overlay, committed overlay, home) but performs no
// accounting at all: no LRU traffic, no stats, no simulated-disk charge.
// Reads through a view are safe from multiple goroutines as long as the
// store itself is quiescent (no writes in flight) — the parallel fsck
// scan stage is the intended consumer, which per pFSCK runs on wall-clock
// host parallelism rather than the simulated device.
type StoreView struct {
	s    *Store
	zero []byte
}

// View returns a read-only view of the store's current contents.
func (s *Store) View() *StoreView {
	return &StoreView{s: s, zero: make([]byte, s.blockSize)}
}

// Read returns the block's current bytes. The result aliases store state
// (or a shared zero block for never-written blocks); callers must treat
// it as read-only.
func (v *StoreView) Read(blk int64) []byte {
	if b, ok := v.s.txn[blk]; ok {
		return b
	}
	if b, ok := v.s.dirty[blk]; ok {
		return b
	}
	if b, ok := v.s.home[blk]; ok {
		return b
	}
	return v.zero
}

// DropCaches empties the block cache without touching any state — the
// between-phases cache flush of a benchmark harness (echo 3 >
// /proc/sys/vm/drop_caches).
func (s *Store) DropCaches() {
	s.cache = make(map[int64]*list.Element)
	s.lru = list.New()
}

// Crash simulates a power failure: the page cache and the uncommitted
// transaction vanish; home and the journal survive. Recover replays the
// journal into the committed overlay, which is how the next mount would see
// the file system.
func (s *Store) Crash() {
	s.txn = make(map[int64][]byte)
	s.order = nil
	s.dirty = make(map[int64][]byte)
	s.cache = make(map[int64]*list.Element)
	s.lru = list.New()
}

// Recover replays committed journal records after a Crash.
func (s *Store) Recover() {
	for _, r := range s.jnl.Replay() {
		s.dirty[r.Block] = r.Data
	}
}
