package mdfs

import (
	"encoding/binary"
	"fmt"

	"redbud/internal/inode"
)

// This file implements the MiF embedded directory (paper §4): inodes are
// allocated from the directory content, directory-entry blocks are omitted
// from the on-disk layout, layout mappings are stuffed into inode tails (or
// spill blocks contiguous with the content), and a global directory table
// maps directory identifications to their inodes.

// tableEntrySize is the serialized size of one directory-table entry:
// parent inode number plus self inode number.
const tableEntrySize = 16

// tableLocation maps a directory identification to its table block and
// offset.
func (fs *FS) tableLocation(dirID uint32) (int64, int) {
	per := int(fs.cfg.BlockSize) / tableEntrySize
	blk := fs.geo.TableStart + int64(int(dirID)/per)
	return blk, (int(dirID) % per) * tableEntrySize
}

// writeTableEntry journals the global-directory-table record of dirID:
// "on creating a new directory, the new directory inode number is mapped
// to a unique directory identification and this mapping structure is
// stored into the global directory table".
func (fs *FS) writeTableEntry(dirID uint32, parent, self inode.Ino) error {
	blk, off := fs.tableLocation(dirID)
	if blk >= fs.geo.TableStart+fs.geo.TableBlocks {
		return fmt.Errorf("mdfs: directory table full at id %d", dirID)
	}
	ent := make([]byte, tableEntrySize)
	binary.LittleEndian.PutUint64(ent[0:], uint64(parent))
	binary.LittleEndian.PutUint64(ent[8:], uint64(self))
	fs.store.WriteAt(blk, off, ent)
	return nil
}

// readTableEntry reads a directory-table record, charging the block read.
func (fs *FS) readTableEntry(dirID uint32) (parent, self inode.Ino, err error) {
	blk, off := fs.tableLocation(dirID)
	if blk >= fs.geo.TableStart+fs.geo.TableBlocks {
		return 0, 0, fmt.Errorf("mdfs: directory id %d outside table", dirID)
	}
	buf := fs.store.Read(blk)
	parent = inode.Ino(binary.LittleEndian.Uint64(buf[off:]))
	self = inode.Ino(binary.LittleEndian.Uint64(buf[off+8:]))
	if self == 0 {
		return 0, 0, fmt.Errorf("%w: directory id %d", ErrNotExist, dirID)
	}
	return parent, self, nil
}

// slotLocation maps an embedded slot to its content block and offset.
func (d *dir) slotLocation(slot uint32, inodesPerBlock int64) (int64, int, error) {
	blkIdx := int64(slot) / inodesPerBlock
	for _, r := range d.content {
		if blkIdx < r.Count {
			off := int(int64(slot) % inodesPerBlock * recordSize)
			return r.Start + blkIdx, off, nil
		}
		blkIdx -= r.Count
	}
	return 0, 0, fmt.Errorf("mdfs: slot %d outside directory content", slot)
}

// contentEnd returns the block just past the directory's last content run —
// the allocation goal that keeps growth and spill blocks contiguous.
func (fs *FS) contentEnd(d *dir) int64 {
	if n := len(d.content); n > 0 {
		return d.content[n-1].End()
	}
	return fs.groupGoal(d)
}

// growContent extends the directory's preallocated content. "When
// directory enlarging, the number of preallocated blocks is scaled to
// support large directories."
func (fs *FS) growContent(d *dir) error {
	var have int64
	for _, r := range d.content {
		have += r.Count
	}
	want := have // double
	if want < fs.cfg.DirPreallocBlocks {
		want = fs.cfg.DirPreallocBlocks
	}
	runs, err := fs.allocData(fs.contentEnd(d), want)
	if err != nil {
		return err
	}
	// Coalesce with the previous run when the allocator obliged.
	for _, r := range runs {
		if n := len(d.content); n > 0 && d.content[n-1].End() == r.Start {
			d.content[n-1].Count += r.Count
		} else {
			d.content = append(d.content, r)
		}
	}
	d.runsDirty = true
	return fs.embTouchDir(d)
}

// embAllocSlot takes a free record slot in the directory content, growing
// the content when full.
func (fs *FS) embAllocSlot(d *dir) (uint32, error) {
	if n := len(d.freeSlots); n > 0 {
		slot := d.freeSlots[n-1]
		d.freeSlots = d.freeSlots[:n-1]
		return slot, nil
	}
	if d.nextSlot >= d.capSlots(fs.geo.InodesPerBlock) {
		if err := fs.growContent(d); err != nil {
			return 0, err
		}
	}
	slot := d.nextSlot
	d.nextSlot++
	return slot, nil
}

// embTouchDir persists the directory's own inode record: file count,
// fragmentation-degree numerator (in Aux), mtime — and the content-run
// mapping, but only when the runs actually changed: rewriting the mapping
// (and its spill blocks) on every namespace operation would dirty extra
// blocks per op for nothing.
func (fs *FS) embTouchDir(d *dir) error {
	rec, err := fs.readInodeAt(d.recBlock, d.recOff)
	if err != nil {
		return err
	}
	rec.MTime = fs.opSeq
	rec.Size = d.files
	rec.DirID = d.dirID
	rec.Aux = uint32(d.extentUnits)
	if d.runsDirty || rec.ExtentCount == 0 {
		if _, err := fs.writeMapping(rec, runsToExtents(d.content), fs.contentEnd(d)); err != nil {
			return err
		}
		d.runsDirty = false
	}
	return fs.writeInodeAt(d.recBlock, d.recOff, rec)
}

// embMakeRoot creates the root directory in the embedded layout. The root
// inode record lives in a dedicated block right after the directory table
// (it has no parent content to live in); every other directory's record is
// embedded in its parent.
func (fs *FS) embMakeRoot() error {
	dirID := fs.nextDir // RootDirID
	fs.nextDir++
	rootBlkRuns, err := fs.allocData(fs.geo.dataStart(0), 1)
	if err != nil {
		return err
	}
	recBlock := rootBlkRuns[0].Start
	// The root inode number lives outside every directory's slot space
	// (directory id 0 means "no directory"), so it can never collide
	// with a child's number.
	ino := inode.MakeIno(0, 1)
	d := &dir{
		ino:      ino,
		dirID:    dirID,
		parent:   ino,
		group:    0,
		entries:  make(map[string]inode.Ino),
		recBlock: recBlock,
		recOff:   0,
	}
	runs, err := fs.allocData(recBlock+1, fs.cfg.DirPreallocBlocks)
	if err != nil {
		return err
	}
	d.content = runs
	rec := &inode.Inode{Ino: ino, Mode: inode.ModeDir, DirID: dirID, MTime: fs.now(), CTime: fs.opSeq}
	if err := fs.writeInodeAt(recBlock, 0, rec); err != nil {
		return err
	}
	if err := fs.embTouchDir(d); err != nil {
		return err
	}
	if err := fs.writeTableEntry(dirID, ino, ino); err != nil {
		return err
	}
	fs.dirs[ino] = d
	fs.dirsByID[dirID] = d
	fs.root = ino
	fs.writeSuper()
	return nil
}

// embCreate implements Create/Mkdir for the embedded layout: "on creating
// a file, a new block is allocated from reserved directory blocks for the
// new inode".
func (fs *FS) embCreate(d *dir, name string, mode inode.Mode) (inode.Ino, error) {
	slot, err := fs.embAllocSlot(d)
	if err != nil {
		return 0, err
	}
	ino := inode.MakeIno(d.dirID, slot)
	blk, off, err := d.slotLocation(slot, fs.geo.InodesPerBlock)
	if err != nil {
		return 0, err
	}
	rec := &inode.Inode{Ino: ino, Mode: mode, Nlink: 1, Name: name, MTime: fs.now(), CTime: fs.opSeq}
	// "If serious fragmentation is detected, an extra block is thus
	// preallocated and used to stuff mapping structures to be generated."
	if mode == inode.ModeFile && d.fragDegree() > fs.cfg.SpillDegree {
		// Preallocation only reserves the block (journaling the bitmap
		// update); its content is written when mapping units spill.
		runs, err := fs.allocData(fs.contentEnd(d), 1)
		if err != nil {
			return 0, err
		}
		rec.Spill[0] = runs[0].Start
	}
	if mode == inode.ModeDir {
		dirID := fs.nextDir
		fs.nextDir++
		rec.Nlink = 2
		rec.DirID = dirID
		nd := &dir{
			ino:      ino,
			dirID:    dirID,
			parent:   d.ino,
			group:    fs.pickGroup(),
			entries:  make(map[string]inode.Ino),
			recBlock: blk,
			recOff:   off,
		}
		runs, err := fs.allocData(fs.geo.dataStart(nd.group), fs.cfg.DirPreallocBlocks)
		if err != nil {
			return 0, err
		}
		nd.content = runs
		if err := fs.writeTableEntry(dirID, d.ino, ino); err != nil {
			return 0, err
		}
		fs.dirs[ino] = nd
		fs.dirsByID[dirID] = nd
		if err := fs.writeInodeAt(blk, off, rec); err != nil {
			return 0, err
		}
		if err := fs.embTouchDir(nd); err != nil {
			return 0, err
		}
	} else {
		if err := fs.writeInodeAt(blk, off, rec); err != nil {
			return 0, err
		}
	}
	d.entries[name] = ino
	d.order = append(d.order, name)
	d.files++
	if err := fs.embTouchDir(d); err != nil {
		return 0, err
	}
	return ino, nil
}

// embLocate returns the content block and offset of an inode record.
func (fs *FS) embLocate(ino inode.Ino) (*dir, int64, int, error) {
	d, ok := fs.dirsByID[ino.DirID()]
	if !ok {
		return nil, 0, 0, fmt.Errorf("%w: inode %v", ErrNotExist, ino)
	}
	blk, off, err := d.slotLocation(ino.Offset(), fs.geo.InodesPerBlock)
	return d, blk, off, err
}

// embStat reads an inode record by number: one content-block read — the
// entry and the inode are the same record.
func (fs *FS) embStat(ino inode.Ino) (*inode.Inode, error) {
	if ino == fs.root {
		return fs.readInodeAt(fs.dirs[fs.root].recBlock, fs.dirs[fs.root].recOff)
	}
	_, blk, off, err := fs.embLocate(ino)
	if err != nil {
		return nil, err
	}
	rec, err := fs.readInodeAt(blk, off)
	if err != nil {
		return nil, err
	}
	if rec.Mode == inode.ModeNone || rec.Nlink == 0 {
		return nil, fmt.Errorf("%w: inode %v", ErrNotExist, ino)
	}
	return rec, nil
}

// embUnlink implements Unlink for the embedded layout. The record is
// tombstoned (Nlink 0) in its content block; the slot is reused by later
// creates, and the checkpoint's last-write-wins dedup batches neighbouring
// deletions into single home writes — the lazy-free behaviour ("all freed
// files are batched and lazy-free is performed on freed blocks in the same
// directory").
func (fs *FS) embUnlink(d *dir, name string, ino inode.Ino) error {
	_, blk, off, err := fs.embLocate(ino)
	if err != nil {
		return err
	}
	rec, err := fs.readInodeAt(blk, off)
	if err != nil {
		return err
	}
	if err := fs.freeSpill(rec); err != nil {
		return err
	}
	d.extentUnits -= int64(rec.ExtentCount)
	if d.extentUnits < 0 {
		d.extentUnits = 0
	}
	rec.Nlink = 0
	rec.Mode = inode.ModeNone
	if err := fs.writeInodeAt(blk, off, rec); err != nil {
		return err
	}
	delete(d.entries, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.freeSlots = append(d.freeSlots, ino.Offset())
	d.files--
	if len(d.freeSlots)%fs.cfg.LazyFreeBatch == 0 {
		fs.stats.LazyFree++
	}
	return fs.embTouchDir(d)
}

// embReaddirCharge reads the whole directory content sequentially,
// including spill blocks that sit inside the content region: "when reading
// the whole directory (e.g., ls operations), we opt to read all content in
// directory".
func (fs *FS) embReaddirCharge(d *dir) {
	for _, r := range d.content {
		fs.store.ReadRange(r.Start, r.Count)
	}
}

// embReaddirPlus performs the aggregated readdir+stat with one sequential
// sweep of the directory content — the embedded layout's headline win. The
// records are decoded from the streamed blocks directly, the way the kernel
// consumes a prefetched buffer, so the sweep costs one large read per
// content run no matter how small the MDS cache is.
func (fs *FS) embReaddirPlus(d *dir) ([]inode.Inode, error) {
	byName := make(map[string]inode.Inode, len(d.entries))
	per := fs.geo.InodesPerBlock
	for _, r := range d.content {
		for _, buf := range fs.store.ReadRange(r.Start, r.Count) {
			for i := int64(0); i < per; i++ {
				rec, err := inode.Unmarshal(buf[i*recordSize : (i+1)*recordSize])
				if err != nil {
					return nil, err
				}
				if rec.Mode == inode.ModeNone || rec.Nlink == 0 {
					continue
				}
				byName[rec.Name] = *rec
			}
		}
	}
	out := make([]inode.Inode, 0, len(d.order))
	for _, name := range d.order {
		rec, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q missing from directory content", ErrNotExist, name)
		}
		out = append(out, rec)
	}
	return out, nil
}

// embLocateByNumber resolves an arbitrary inode number through the global
// directory table, walking parent directories: "we can use the directory
// identification portion of the inode number to index its parent
// directory's inode number using the directory table. Then we perform
// tracking back recursively until arriving at the root inode."
func (fs *FS) embLocateByNumber(ino inode.Ino) (*inode.Inode, error) {
	dirID := ino.DirID()
	var chain []inode.Ino
	for {
		parent, self, err := fs.readTableEntry(dirID)
		if err != nil {
			return nil, err
		}
		chain = append(chain, self)
		if self == parent || self == fs.root {
			break
		}
		dirID = parent.DirID()
		if len(chain) > 1<<16 {
			return nil, fmt.Errorf("mdfs: directory table cycle at %v", ino)
		}
	}
	// Walk back down, reading each directory inode (normally cached).
	for i := len(chain) - 1; i >= 0; i-- {
		if _, err := fs.embStat(chain[i]); err != nil {
			return nil, err
		}
	}
	return fs.embStat(ino)
}

// embRename moves the inode record into the destination directory,
// changing the inode number and keeping the old→new correlation: "because
// inode number encodes the inode's parent directory identification, the
// inode number must be changed".
func (fs *FS) embRename(src *dir, name string, dst *dir, newName string, ino inode.Ino) (inode.Ino, error) {
	_, oldBlk, oldOff, err := fs.embLocate(ino)
	if err != nil {
		return 0, err
	}
	rec, err := fs.readInodeAt(oldBlk, oldOff)
	if err != nil {
		return 0, err
	}
	slot, err := fs.embAllocSlot(dst)
	if err != nil {
		return 0, err
	}
	newIno := inode.MakeIno(dst.dirID, slot)
	blk, off, err := dst.slotLocation(slot, fs.geo.InodesPerBlock)
	if err != nil {
		return 0, err
	}
	rec.Ino = newIno
	rec.Name = newName
	rec.OldIno = ino
	rec.MTime = fs.opSeq
	if err := fs.writeInodeAt(blk, off, rec); err != nil {
		return 0, err
	}
	// Tombstone the old record.
	fs.store.WriteAt(oldBlk, oldOff, make([]byte, recordSize))
	delete(src.entries, name)
	for i, n := range src.order {
		if n == name {
			src.order = append(src.order[:i], src.order[i+1:]...)
			break
		}
	}
	src.freeSlots = append(src.freeSlots, ino.Offset())
	src.files--
	dst.entries[newName] = newIno
	dst.order = append(dst.order, newName)
	dst.files++
	dst.extentUnits += int64(rec.ExtentCount)
	src.extentUnits -= int64(rec.ExtentCount)
	if src.extentUnits < 0 {
		src.extentUnits = 0
	}
	fs.renamed[ino] = newIno
	if rec.Mode == inode.ModeDir {
		d := fs.dirs[ino]
		delete(fs.dirs, ino)
		d.ino = newIno
		d.parent = dst.ino
		fs.dirs[newIno] = d
		d.recBlock, d.recOff = blk, off
		if err := fs.writeTableEntry(rec.DirID, dst.ino, newIno); err != nil {
			return 0, err
		}
	}
	if err := fs.embTouchDir(src); err != nil {
		return 0, err
	}
	if err := fs.embTouchDir(dst); err != nil {
		return 0, err
	}
	return newIno, nil
}
