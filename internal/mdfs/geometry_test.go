package mdfs

import "testing"

func TestGeometryLayout(t *testing.T) {
	cfg := DefaultConfig(LayoutNormal)
	applyDefaults(&cfg)
	geo, err := computeGeometry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if geo.JournalStart != 1 {
		t.Fatalf("JournalStart = %d", geo.JournalStart)
	}
	if geo.TableStart != 1+cfg.JournalBlocks {
		t.Fatalf("TableStart = %d", geo.TableStart)
	}
	if geo.GroupsStart != geo.TableStart+cfg.TableBlocks {
		t.Fatalf("GroupsStart = %d", geo.GroupsStart)
	}
	// Regions are ordered and non-overlapping per group.
	for g := int64(0); g < geo.Groups; g++ {
		base := geo.groupBase(g)
		if geo.blockBitmapBlock(g) != base || geo.inodeBitmapBlock(g) != base+1 {
			t.Fatalf("group %d bitmap placement wrong", g)
		}
		if geo.itableStart(g) != base+2 {
			t.Fatalf("group %d itable placement wrong", g)
		}
		if geo.dataStart(g) <= geo.itableStart(g) {
			t.Fatalf("group %d data region overlaps itable", g)
		}
		if geo.dataStart(g) >= geo.groupEnd(g) {
			t.Fatalf("group %d has no data region", g)
		}
	}
}

func TestGeometryPartialTailGroup(t *testing.T) {
	cfg := DefaultConfig(LayoutNormal)
	cfg.Blocks = 1 << 15
	cfg.GroupBlocks = 8192
	cfg.InodesPerGroup = 8192
	applyDefaults(&cfg)
	geo, err := computeGeometry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// (32768 - 1089) / 8192 = 3 full groups plus a usable tail.
	if geo.Groups != 4 {
		t.Fatalf("Groups = %d, want 4 (3 full + partial tail)", geo.Groups)
	}
	if geo.groupEnd(3) != cfg.Blocks {
		t.Fatalf("tail group end = %d, want %d", geo.groupEnd(3), cfg.Blocks)
	}
	if geo.dataStart(3) >= geo.groupEnd(3) {
		t.Fatal("partial tail group has no data region")
	}
}

func TestGeometrySlotLocationRoundTrip(t *testing.T) {
	cfg := DefaultConfig(LayoutNormal)
	applyDefaults(&cfg)
	geo, _ := computeGeometry(cfg)
	seen := map[int64]map[int]bool{}
	for _, slot := range []int64{0, 1, 15, 16, 17, geo.InodesPerGroup - 1, geo.InodesPerGroup, geo.InodesPerGroup + 5} {
		blk, off := geo.slotLocation(slot)
		if off < 0 || off+recordSize > int(cfg.BlockSize) {
			t.Fatalf("slot %d: offset %d out of block", slot, off)
		}
		g := slot / geo.InodesPerGroup
		if blk < geo.itableStart(g) || blk >= geo.dataStart(g) {
			t.Fatalf("slot %d: block %d outside group %d itable", slot, blk, g)
		}
		if seen[blk] == nil {
			seen[blk] = map[int]bool{}
		}
		if seen[blk][off] {
			t.Fatalf("slot %d collides at (%d,%d)", slot, blk, off)
		}
		seen[blk][off] = true
	}
}

func TestGeometryRejectsBadConfigs(t *testing.T) {
	cfg := DefaultConfig(LayoutNormal)
	applyDefaults(&cfg)
	cfg.Blocks = 100 // too small for one group
	if _, err := computeGeometry(cfg); err == nil {
		t.Fatal("tiny device should be rejected")
	}
	cfg = DefaultConfig(LayoutNormal)
	applyDefaults(&cfg)
	cfg.GroupBlocks = 10 // cannot hold the inode table
	if _, err := computeGeometry(cfg); err == nil {
		t.Fatal("undersized group should be rejected")
	}
	cfg = DefaultConfig(LayoutNormal)
	applyDefaults(&cfg)
	cfg.BlockSize = 128 // below the inode record size
	if _, err := computeGeometry(cfg); err == nil {
		t.Fatal("tiny block size should be rejected")
	}
}
