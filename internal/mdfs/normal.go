package mdfs

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"redbud/internal/alloc"
	"redbud/internal/inode"
)

// This file implements the traditional (ext3-like) directory placement:
// directory-entry blocks in the data area pointing at inodes in per-group
// inode tables. It is the layout of the original Redbud MDS and — with the
// Htree flag — of the Lustre ext4 MDS baseline.

// direntsPerBlock returns how many fixed-size entries fit a block.
func (fs *FS) direntsPerBlock() int { return int(fs.cfg.BlockSize) / direntSize }

// allocInodeSlot takes a free inode-table slot, preferring the given group,
// and journals the inode-bitmap update.
func (fs *FS) allocInodeSlot(group int64) (int64, error) {
	for pass := int64(0); pass < fs.geo.Groups; pass++ {
		g := (group + pass) % fs.geo.Groups
		if fs.inodeFree[g] == 0 {
			continue
		}
		for w, word := range fs.ibitmap[g] {
			if word == ^uint64(0) {
				continue
			}
			bit := bits.TrailingZeros64(^word)
			idx := int64(w)*64 + int64(bit)
			if idx >= fs.geo.InodesPerGroup {
				break
			}
			fs.ibitmap[g][w] |= 1 << uint(bit)
			fs.inodeFree[g]--
			fs.dirtyInodeBitmap(g, int64(w))
			return g*fs.geo.InodesPerGroup + idx, nil
		}
	}
	return 0, fmt.Errorf("mdfs: out of inodes")
}

// freeInodeSlot releases a slot and journals the bitmap update.
func (fs *FS) freeInodeSlot(slot int64) {
	g := slot / fs.geo.InodesPerGroup
	idx := slot % fs.geo.InodesPerGroup
	fs.ibitmap[g][idx/64] &^= 1 << uint(idx%64)
	fs.inodeFree[g]++
	fs.dirtyInodeBitmap(g, idx/64)
}

// dirtyInodeBitmap journals one word of a group's inode bitmap.
func (fs *FS) dirtyInodeBitmap(group, word int64) {
	blk := fs.geo.inodeBitmapBlock(group)
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, fs.ibitmap[group][word])
	fs.store.WriteAt(blk, int(word*8)%int(fs.cfg.BlockSize-8), buf)
}

// normalMakeRoot creates the root directory in the traditional layout.
func (fs *FS) normalMakeRoot() error {
	slot, err := fs.allocInodeSlot(0)
	if err != nil {
		return err
	}
	ino := inode.Ino(slot)
	blk, off := fs.geo.slotLocation(slot)
	d := &dir{
		ino:      ino,
		parent:   ino,
		group:    0,
		entries:  make(map[string]inode.Ino),
		entryLoc: make(map[string]int),
		recBlock: blk,
		recOff:   off,
	}
	rec := &inode.Inode{Ino: ino, Mode: inode.ModeDir, Nlink: 2, MTime: fs.now(), CTime: fs.opSeq}
	if err := fs.writeInodeAt(blk, off, rec); err != nil {
		return err
	}
	fs.dirs[ino] = d
	fs.root = ino
	fs.writeSuper()
	return nil
}

// chargeNormalLookup accounts the directory-entry reads of resolving name:
// an indexed (Htree) directory reads the entry's block; a linear (ext3)
// directory scans from the first block.
func (fs *FS) chargeNormalLookup(d *dir, name string) {
	if len(d.direntBlocks) == 0 {
		return
	}
	idx, ok := d.entryLoc[name]
	blkIdx := idx / fs.direntsPerBlock()
	if !ok {
		blkIdx = len(d.direntBlocks) - 1 // negative lookup scans to the end
	}
	if fs.cfg.Htree {
		fs.store.Read(d.direntBlocks[blkIdx])
		return
	}
	for i := 0; i <= blkIdx && i < len(d.direntBlocks); i++ {
		fs.store.Read(d.direntBlocks[i])
	}
}

// appendDirent adds a directory entry, extending the entry area when the
// last block is full, and returns the entry index.
func (fs *FS) appendDirent(d *dir, name string, ino inode.Ino) (int, error) {
	per := fs.direntsPerBlock()
	idx := -1
	// Reuse a hole left by a deletion before growing the directory.
	if len(d.entryLoc) < len(d.direntBlocks)*per {
		used := make(map[int]bool, len(d.entryLoc))
		for _, i := range d.entryLoc {
			used[i] = true
		}
		for i := 0; i < len(d.direntBlocks)*per; i++ {
			if !used[i] {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		idx = len(d.entryLoc)
		if idx/per >= len(d.direntBlocks) {
			goal := fs.groupGoal(d)
			if n := len(d.direntBlocks); n > 0 {
				goal = d.direntBlocks[n-1] + 1
			}
			runs, err := fs.allocData(goal, 1)
			if err != nil {
				return 0, err
			}
			d.direntBlocks = append(d.direntBlocks, runs[0].Start)
		}
	}
	blk := d.direntBlocks[idx/per]
	off := (idx % per) * direntSize
	ent := make([]byte, direntSize)
	binary.LittleEndian.PutUint64(ent[0:], uint64(ino))
	ent[8] = byte(len(name))
	copy(ent[9:], name)
	fs.store.WriteAt(blk, off, ent)
	d.entries[name] = ino
	d.entryLoc[name] = idx
	d.order = append(d.order, name)
	return idx, nil
}

// clearDirent removes an entry's on-disk record.
func (fs *FS) clearDirent(d *dir, name string) {
	idx := d.entryLoc[name]
	per := fs.direntsPerBlock()
	blk := d.direntBlocks[idx/per]
	fs.store.WriteAt(blk, (idx%per)*direntSize, make([]byte, direntSize))
	delete(d.entries, name)
	delete(d.entryLoc, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
}

// touchDirRecord updates the directory's own inode (size, mtime) after a
// namespace mutation and persists the entry-area mapping.
func (fs *FS) touchDirRecord(d *dir) error {
	rec, err := fs.readInodeAt(d.recBlock, d.recOff)
	if err != nil {
		return err
	}
	rec.MTime = fs.opSeq
	rec.Size = int64(len(d.entries)) * direntSize
	runs := blocksToRuns(d.direntBlocks)
	if _, err := fs.writeMapping(rec, runsToExtents(runs), fs.groupGoal(d)); err != nil {
		return err
	}
	return fs.writeInodeAt(d.recBlock, d.recOff, rec)
}

// blocksToRuns compacts a block list into contiguous runs.
func blocksToRuns(blocks []int64) []alloc.Range {
	var out []alloc.Range
	for _, b := range blocks {
		if n := len(out); n > 0 && out[n-1].End() == b {
			out[n-1].Count++
			continue
		}
		out = append(out, alloc.Range{Start: b, Count: 1})
	}
	return out
}

// normalCreate implements Create for the traditional layout.
func (fs *FS) normalCreate(d *dir, name string, mode inode.Mode) (inode.Ino, error) {
	fs.chargeNormalLookup(d, name) // existence check
	slot, err := fs.allocInodeSlot(d.group)
	if err != nil {
		return 0, err
	}
	ino := inode.Ino(slot)
	blk, off := fs.geo.slotLocation(slot)
	rec := &inode.Inode{Ino: ino, Mode: mode, Nlink: 1, MTime: fs.now(), CTime: fs.opSeq}
	if mode == inode.ModeDir {
		rec.Nlink = 2
	}
	if err := fs.writeInodeAt(blk, off, rec); err != nil {
		return 0, err
	}
	if _, err := fs.appendDirent(d, name, ino); err != nil {
		return 0, err
	}
	if err := fs.touchDirRecord(d); err != nil {
		return 0, err
	}
	if mode == inode.ModeDir {
		nd := &dir{
			ino:      ino,
			parent:   d.ino,
			group:    fs.pickGroup(),
			entries:  make(map[string]inode.Ino),
			entryLoc: make(map[string]int),
			recBlock: blk,
			recOff:   off,
		}
		fs.nextDir++
		fs.dirs[ino] = nd
	}
	return ino, nil
}

// normalUnlink implements Unlink for the traditional layout.
func (fs *FS) normalUnlink(d *dir, name string, ino inode.Ino) error {
	blk, off := fs.geo.slotLocation(int64(ino))
	rec, err := fs.readInodeAt(blk, off)
	if err != nil {
		return err
	}
	if err := fs.freeSpill(rec); err != nil {
		return err
	}
	fs.clearDirent(d, name)
	fs.writeInodeAt(blk, off, &inode.Inode{}) // clear the record
	fs.freeInodeSlot(int64(ino))
	return fs.touchDirRecord(d)
}

// normalStat locates and reads an inode record by number.
func (fs *FS) normalStat(ino inode.Ino) (*inode.Inode, error) {
	blk, off := fs.geo.slotLocation(int64(ino))
	rec, err := fs.readInodeAt(blk, off)
	if err != nil {
		return nil, err
	}
	if rec.Mode == inode.ModeNone {
		return nil, fmt.Errorf("%w: inode %v", ErrNotExist, ino)
	}
	return rec, nil
}

// normalReaddirCharge reads the whole directory-entry area.
func (fs *FS) normalReaddirCharge(d *dir) {
	for _, run := range blocksToRuns(d.direntBlocks) {
		fs.store.ReadRange(run.Start, run.Count)
	}
}

// normalReaddirPlus reads the entry area and then each entry's inode,
// charging the inode-table block reads in readdir order — the traditional
// placement's "at least three disk position time" pattern for aggregated
// metadata operations.
func (fs *FS) normalReaddirPlus(d *dir) ([]inode.Inode, error) {
	fs.normalReaddirCharge(d)
	out := make([]inode.Inode, 0, len(d.order))
	for _, name := range d.order {
		ino := d.entries[name]
		blk, off := fs.geo.slotLocation(int64(ino))
		rec, err := fs.readInodeAt(blk, off)
		if err != nil {
			return nil, err
		}
		rec.Name = name // names live in the dirents in this layout
		out = append(out, *rec)
	}
	return out, nil
}
