package mdfs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"redbud/internal/alloc"
)

// Image persistence: the metadata file system's durable state (home blocks
// plus committed-but-unchekpointed journal records) serialized to a flat
// file, so tools like cmd/miffsck can operate on saved instances and
// sessions can resume across process restarts.
//
// Format (little endian):
//
//	magic   uint32  "MiFI"
//	version uint32
//	layout  uint32
//	blocks  int64   device size
//	blockSz int64
//	journal int64   journal region blocks
//	table   int64   directory table blocks
//	group   int64   group blocks
//	ipg     int64   inodes per group
//	nHome   int64   home entries, then nHome × (blockNo int64, data [blockSz]byte)
//	nJnl    int64   journal records, same encoding
const (
	imageMagic   = 0x4D694649 // "MiFI"
	imageVersion = 1
)

// SaveImage writes the durable state. The caller should Sync (or at least
// Commit) first if the running transaction must be included; uncommitted
// transaction state is — correctly — not part of a crash-consistent image.
func (fs *FS) SaveImage(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	hdr := make([]byte, 4+4+4)
	le.PutUint32(hdr[0:], imageMagic)
	le.PutUint32(hdr[4:], imageVersion)
	le.PutUint32(hdr[8:], uint32(fs.cfg.Layout))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	for _, v := range []int64{fs.cfg.Blocks, fs.cfg.BlockSize, fs.cfg.JournalBlocks,
		fs.cfg.TableBlocks, fs.cfg.GroupBlocks, fs.cfg.InodesPerGroup} {
		if err := binary.Write(bw, le, v); err != nil {
			return err
		}
	}
	writeBlocks := func(m map[int64][]byte) error {
		keys := make([]int64, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		if err := binary.Write(bw, le, int64(len(keys))); err != nil {
			return err
		}
		for _, k := range keys {
			if err := binary.Write(bw, le, k); err != nil {
				return err
			}
			if _, err := bw.Write(m[k]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeBlocks(fs.store.home); err != nil {
		return err
	}
	// The journal's replayable records: serialize the dirty overlay,
	// which mirrors them (last-write-wins).
	if err := writeBlocks(fs.store.dirty); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadImage builds a mounted file system from a saved image. The disk and
// cache state start cold, as after a reboot; the journal overlay is
// replayed and the namespace rebuilt by Remount.
func LoadImage(r io.Reader) (*FS, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("mdfs: image header: %w", err)
	}
	if le.Uint32(hdr[0:]) != imageMagic {
		return nil, fmt.Errorf("mdfs: not an image (magic %#x)", le.Uint32(hdr[0:]))
	}
	if v := le.Uint32(hdr[4:]); v != imageVersion {
		return nil, fmt.Errorf("mdfs: unsupported image version %d", v)
	}
	cfg := DefaultConfig(Layout(le.Uint32(hdr[8:])))
	for _, p := range []*int64{&cfg.Blocks, &cfg.BlockSize, &cfg.JournalBlocks,
		&cfg.TableBlocks, &cfg.GroupBlocks, &cfg.InodesPerGroup} {
		if err := binary.Read(br, le, p); err != nil {
			return nil, fmt.Errorf("mdfs: image geometry: %w", err)
		}
	}
	cfg.Disk.BlockSize = cfg.BlockSize
	fs, err := newUnformatted(cfg)
	if err != nil {
		return nil, err
	}
	readBlocks := func(dst map[int64][]byte) error {
		var n int64
		if err := binary.Read(br, le, &n); err != nil {
			return err
		}
		if n < 0 || n > cfg.Blocks {
			return fmt.Errorf("mdfs: image block count %d out of range", n)
		}
		for i := int64(0); i < n; i++ {
			var blk int64
			if err := binary.Read(br, le, &blk); err != nil {
				return err
			}
			if blk < 0 || blk >= cfg.Blocks {
				return fmt.Errorf("mdfs: image block %d out of range", blk)
			}
			buf := make([]byte, cfg.BlockSize)
			if _, err := io.ReadFull(br, buf); err != nil {
				return err
			}
			dst[blk] = buf
		}
		return nil
	}
	if err := readBlocks(fs.store.home); err != nil {
		return nil, fmt.Errorf("mdfs: image home blocks: %w", err)
	}
	if err := readBlocks(fs.store.dirty); err != nil {
		return nil, fmt.Errorf("mdfs: image journal overlay: %w", err)
	}
	// Rebuild the namespace, then the allocator from the reachable state.
	if err := fs.Remount(); err != nil {
		return nil, err
	}
	if _, err := fs.RebuildAllocator(); err != nil {
		return nil, err
	}
	return fs, nil
}

// RebuildAllocator reconstructs the space allocator from the reachable
// metadata: the fixed regions are re-reserved, then the mounted namespace
// is walked and every reachable dynamic block — directory content, entry
// blocks, spill blocks — re-marked. The namespace must be current
// (Remount first). It returns the number of blocks reclaimed relative to
// the previous allocator state: after a crash the in-memory allocator
// still charges blocks whose linking operations the journal lost, and
// those must be returned to free space (the mdfs analogue of the OST
// scrub's leak reclamation) or fsck's reverse pass would report them
// leaked forever.
func (fs *FS) RebuildAllocator() (reclaimed int64, err error) {
	prev := fs.cfg.Blocks - fs.alloc.FreeBlocks()
	old := fs.alloc
	fs.alloc = alloc.New(fs.cfg.Blocks, fs.cfg.GroupBlocks)
	if err := fs.reserveFixed(); err != nil {
		fs.alloc = old
		return 0, err
	}
	if err := fs.markReachable(); err != nil {
		fs.alloc = old
		return 0, err
	}
	return prev - (fs.cfg.Blocks - fs.alloc.FreeBlocks()), nil
}

// markReachable walks the mounted namespace and marks every reachable
// dynamic block in the allocator.
func (fs *FS) markReachable() error {
	mark := func(blk int64) error {
		if blk < 0 || blk >= fs.cfg.Blocks {
			return nil
		}
		r := alloc.Range{Start: blk, Count: 1}
		if fs.alloc.Allocated(r) {
			return nil
		}
		return fs.alloc.AllocExact(0, r)
	}
	seen := make(map[*dir]bool)
	var walk func(d *dir) error
	walk = func(d *dir) error {
		if d == nil || seen[d] {
			return nil
		}
		seen[d] = true
		if fs.cfg.Layout == LayoutEmbedded {
			for _, run := range d.content {
				for b := run.Start; b < run.End(); b++ {
					if err := mark(b); err != nil {
						return err
					}
				}
			}
		} else {
			for _, b := range d.direntBlocks {
				if err := mark(b); err != nil {
					return err
				}
			}
		}
		// Root's standalone record block (embedded).
		if err := mark(d.recBlock); err != nil {
			return err
		}
		for _, name := range d.order {
			ino := d.entries[name]
			if child, ok := fs.dirs[ino]; ok {
				if err := walk(child); err != nil {
					return err
				}
				continue
			}
			loc, err := fs.locate(ino)
			if err != nil {
				continue
			}
			rec, err := fs.readInodeAt(loc.blk, loc.off)
			if err != nil {
				continue
			}
			for _, spill := range fs.spillChain(rec) {
				if err := mark(spill); err != nil {
					return err
				}
			}
		}
		// The directory record's own spill blocks.
		rec, err := fs.readInodeAt(d.recBlock, d.recOff)
		if err == nil {
			for _, spill := range fs.spillChain(rec) {
				if err := mark(spill); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(fs.dirs[fs.root])
}
