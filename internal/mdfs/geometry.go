package mdfs

import "fmt"

// Layout selects the directory placement algorithm.
type Layout int

// Directory layouts.
const (
	// LayoutNormal is the traditional placement: directory-entry blocks
	// in the data area, inodes in per-group inode tables (ext3-like).
	LayoutNormal Layout = iota
	// LayoutEmbedded is the MiF embedded directory: inodes and layout
	// mappings allocated from the directory content, entry blocks
	// omitted from the on-disk layout.
	LayoutEmbedded
)

// String names the layout for reports.
func (l Layout) String() string {
	if l == LayoutEmbedded {
		return "embedded"
	}
	return "normal"
}

// Geometry is the on-disk arrangement of the metadata file system,
// computed at format time.
//
//	block 0                superblock
//	[1, 1+J)               journal region
//	[1+J, 1+J+T)           global directory table (embedded layout)
//	remaining blocks       groups of GroupBlocks:
//	    +0                 block bitmap
//	    +1                 inode bitmap      (normal layout)
//	    +2 .. +2+IT        inode table       (normal layout)
//	    rest               data blocks (directory entries/content, spill)
type Geometry struct {
	Blocks         int64
	JournalStart   int64
	JournalBlocks  int64
	TableStart     int64
	TableBlocks    int64
	GroupsStart    int64
	GroupBlocks    int64
	Groups         int64
	InodesPerGroup int64
	ITableBlocks   int64 // per group
	InodesPerBlock int64
}

// computeGeometry validates the configuration and lays out the device.
func computeGeometry(cfg Config) (Geometry, error) {
	g := Geometry{
		Blocks:         cfg.Blocks,
		JournalStart:   1,
		JournalBlocks:  cfg.JournalBlocks,
		GroupBlocks:    cfg.GroupBlocks,
		InodesPerGroup: cfg.InodesPerGroup,
		InodesPerBlock: int64(cfg.BlockSize) / recordSize,
	}
	if g.InodesPerBlock < 1 {
		return g, fmt.Errorf("mdfs: block size %d below inode record size", cfg.BlockSize)
	}
	g.TableStart = g.JournalStart + g.JournalBlocks
	g.TableBlocks = cfg.TableBlocks
	g.GroupsStart = g.TableStart + g.TableBlocks
	g.ITableBlocks = (g.InodesPerGroup + g.InodesPerBlock - 1) / g.InodesPerBlock
	if g.GroupBlocks < g.ITableBlocks+3 {
		return g, fmt.Errorf("mdfs: group of %d blocks cannot hold %d inode-table blocks", g.GroupBlocks, g.ITableBlocks)
	}
	g.Groups = (cfg.Blocks - g.GroupsStart) / g.GroupBlocks
	// A tail too short for a full group still forms a partial group when
	// it can hold the group metadata plus a useful data region; wasting
	// it would inflate the format-time utilization.
	if tail := (cfg.Blocks - g.GroupsStart) % g.GroupBlocks; tail >= g.ITableBlocks+3+64 {
		g.Groups++
	}
	if g.Groups < 1 {
		return g, fmt.Errorf("mdfs: device of %d blocks too small for one group", cfg.Blocks)
	}
	return g, nil
}

// groupEnd returns the block just past group i, clipped at the device end
// for a partial tail group.
func (g Geometry) groupEnd(i int64) int64 {
	end := g.groupBase(i + 1)
	if end > g.Blocks {
		end = g.Blocks
	}
	return end
}

// groupBase returns the first block of group i.
func (g Geometry) groupBase(i int64) int64 { return g.GroupsStart + i*g.GroupBlocks }

// blockBitmapBlock returns the block-bitmap block of group i.
func (g Geometry) blockBitmapBlock(i int64) int64 { return g.groupBase(i) }

// inodeBitmapBlock returns the inode-bitmap block of group i.
func (g Geometry) inodeBitmapBlock(i int64) int64 { return g.groupBase(i) + 1 }

// itableStart returns the first inode-table block of group i.
func (g Geometry) itableStart(i int64) int64 { return g.groupBase(i) + 2 }

// dataStart returns the first data block of group i.
func (g Geometry) dataStart(i int64) int64 { return g.itableStart(i) + g.ITableBlocks }

// groupOf returns the group containing data block b, or -1 for blocks
// outside the group area.
func (g Geometry) groupOf(b int64) int64 {
	if b < g.GroupsStart {
		return -1
	}
	gi := (b - g.GroupsStart) / g.GroupBlocks
	if gi >= g.Groups {
		return -1
	}
	return gi
}

// slotLocation maps a normal-layout inode slot to its inode-table block and
// byte offset.
func (g Geometry) slotLocation(slot int64) (block int64, off int) {
	group := slot / g.InodesPerGroup
	idx := slot % g.InodesPerGroup
	return g.itableStart(group) + idx/g.InodesPerBlock, int((idx % g.InodesPerBlock) * recordSize)
}
