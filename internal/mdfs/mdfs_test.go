package mdfs

import (
	"fmt"
	"testing"

	"redbud/internal/extent"
	"redbud/internal/inode"
)

// newFS builds a small test file system in the given layout.
func newFS(t *testing.T, layout Layout) *FS {
	t.Helper()
	cfg := DefaultConfig(layout)
	cfg.Blocks = 1 << 17 // 512 MiB
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// bothLayouts runs a subtest against each layout.
func bothLayouts(t *testing.T, f func(t *testing.T, fs *FS)) {
	t.Helper()
	for _, layout := range []Layout{LayoutNormal, LayoutEmbedded} {
		t.Run(layout.String(), func(t *testing.T) { f(t, newFS(t, layout)) })
	}
}

func TestCreateLookupStat(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		ino, err := fs.Create(fs.Root(), "hello.txt")
		if err != nil {
			t.Fatal(err)
		}
		got, err := fs.Lookup(fs.Root(), "hello.txt")
		if err != nil || got != ino {
			t.Fatalf("Lookup = (%v,%v), want (%v,nil)", got, err, ino)
		}
		rec, err := fs.Stat(ino)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Mode != inode.ModeFile || rec.Ino != ino {
			t.Fatalf("Stat = %+v", rec)
		}
		if _, err := fs.Lookup(fs.Root(), "absent"); err == nil {
			t.Fatal("negative lookup should fail")
		}
		if _, err := fs.Create(fs.Root(), "hello.txt"); err == nil {
			t.Fatal("duplicate create should fail")
		}
	})
}

func TestMkdirAndNesting(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		d1, err := fs.Mkdir(fs.Root(), "a")
		if err != nil {
			t.Fatal(err)
		}
		d2, err := fs.Mkdir(d1, "b")
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs.Create(d2, "deep.txt")
		if err != nil {
			t.Fatal(err)
		}
		rec, err := fs.Stat(f)
		if err != nil || rec.Mode != inode.ModeFile {
			t.Fatalf("Stat(%v) = (%+v, %v)", f, rec, err)
		}
		names, err := fs.Readdir(d1)
		if err != nil || len(names) != 1 || names[0] != "b" {
			t.Fatalf("Readdir = (%v, %v)", names, err)
		}
	})
}

func TestUtimeBumpsMTime(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		ino, _ := fs.Create(fs.Root(), "f")
		before, _ := fs.Stat(ino)
		if err := fs.Utime(ino); err != nil {
			t.Fatal(err)
		}
		after, _ := fs.Stat(ino)
		if after.MTime <= before.MTime {
			t.Fatalf("mtime did not advance: %d -> %d", before.MTime, after.MTime)
		}
	})
}

func TestUnlinkAndSlotReuse(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		var inos []inode.Ino
		for i := 0; i < 40; i++ {
			ino, err := fs.Create(fs.Root(), fmt.Sprintf("f%d", i))
			if err != nil {
				t.Fatal(err)
			}
			inos = append(inos, ino)
		}
		for i := 0; i < 40; i += 2 {
			if err := fs.Unlink(fs.Root(), fmt.Sprintf("f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 40; i += 2 {
			if _, err := fs.Stat(inos[i]); err == nil {
				t.Fatalf("deleted f%d still stats", i)
			}
		}
		for i := 1; i < 40; i += 2 {
			if _, err := fs.Stat(inos[i]); err != nil {
				t.Fatalf("surviving f%d lost: %v", i, err)
			}
		}
		// Recreate: slots must be reusable.
		for i := 0; i < 20; i++ {
			if _, err := fs.Create(fs.Root(), fmt.Sprintf("g%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		n, _ := fs.Entries(fs.Root())
		if n != 40 {
			t.Fatalf("Entries = %d, want 40", n)
		}
	})
}

func TestReaddirPlusReturnsAllInodes(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		want := map[string]inode.Ino{}
		for i := 0; i < 100; i++ {
			name := fmt.Sprintf("file%03d", i)
			ino, err := fs.Create(fs.Root(), name)
			if err != nil {
				t.Fatal(err)
			}
			want[name] = ino
		}
		recs, err := fs.ReaddirPlus(fs.Root())
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 100 {
			t.Fatalf("ReaddirPlus returned %d records, want 100", len(recs))
		}
		for _, rec := range recs {
			if want[rec.Name] != rec.Ino {
				t.Fatalf("record %q has ino %v, want %v", rec.Name, rec.Ino, want[rec.Name])
			}
		}
	})
}

func TestSetGetLayoutWithSpill(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		ino, _ := fs.Create(fs.Root(), "big")
		var exts []extent.Extent
		for i := 0; i < 60; i++ { // beyond InlineExtents, into spill
			exts = append(exts, extent.Extent{Logical: int64(i) * 8, Physical: int64(1000 + i*16), Count: 8})
		}
		if err := fs.SetLayout(ino, exts); err != nil {
			t.Fatal(err)
		}
		got, err := fs.GetLayout(ino)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 60 {
			t.Fatalf("GetLayout returned %d extents, want 60", len(got))
		}
		for i := range exts {
			if got[i] != exts[i] {
				t.Fatalf("extent %d = %v, want %v", i, got[i], exts[i])
			}
		}
		rec, _ := fs.Stat(ino)
		if rec.Spill[0] == 0 {
			t.Fatal("60 extents must use a spill block")
		}
	})
}

func TestFragDegreeTriggersSpillPrealloc(t *testing.T) {
	fs := newFS(t, LayoutEmbedded)
	d, _ := fs.Mkdir(fs.Root(), "frag")
	// Create files and give each a heavily fragmented mapping.
	for i := 0; i < 10; i++ {
		ino, err := fs.Create(d, fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		var exts []extent.Extent
		for j := 0; j < 20; j++ {
			exts = append(exts, extent.Extent{Logical: int64(j), Physical: int64(5000 + i*100 + j*2), Count: 1})
		}
		if err := fs.SetLayout(ino, exts); err != nil {
			t.Fatal(err)
		}
	}
	deg, err := fs.FragDegree(d)
	if err != nil {
		t.Fatal(err)
	}
	if deg < 15 {
		t.Fatalf("FragDegree = %g, want ~20", deg)
	}
	// New creates in this fragmented directory preallocate a spill block.
	ino, _ := fs.Create(d, "new")
	rec, _ := fs.Stat(ino)
	if rec.Spill[0] == 0 {
		t.Fatal("create in fragmented directory should preallocate a spill block")
	}
}

func TestRenameNormalKeepsIno(t *testing.T) {
	fs := newFS(t, LayoutNormal)
	d1, _ := fs.Mkdir(fs.Root(), "src")
	d2, _ := fs.Mkdir(fs.Root(), "dst")
	ino, _ := fs.Create(d1, "f")
	newIno, err := fs.Rename(d1, "f", d2, "g")
	if err != nil {
		t.Fatal(err)
	}
	if newIno != ino {
		t.Fatalf("normal rename changed ino %v -> %v", ino, newIno)
	}
	if _, err := fs.Lookup(d2, "g"); err != nil {
		t.Fatal("renamed entry missing at destination")
	}
	if _, err := fs.Lookup(d1, "f"); err == nil {
		t.Fatal("renamed entry still at source")
	}
}

func TestRenameEmbeddedCorrelation(t *testing.T) {
	fs := newFS(t, LayoutEmbedded)
	d1, _ := fs.Mkdir(fs.Root(), "src")
	d2, _ := fs.Mkdir(fs.Root(), "dst")
	ino, _ := fs.Create(d1, "f")
	newIno, err := fs.Rename(d1, "f", d2, "g")
	if err != nil {
		t.Fatal(err)
	}
	if newIno == ino {
		t.Fatal("embedded rename must change the inode number")
	}
	dstRec, err := fs.Stat(d2)
	if err != nil {
		t.Fatal(err)
	}
	if newIno.DirID() != dstRec.DirID {
		t.Fatalf("new ino %v should encode destination directory id %d", newIno, dstRec.DirID)
	}
	// The old number still resolves through the correlation table.
	rec, err := fs.Stat(ino)
	if err != nil {
		t.Fatalf("old ino should resolve via correlation: %v", err)
	}
	if rec.Ino != newIno || rec.OldIno != ino {
		t.Fatalf("correlation broken: %+v", rec)
	}
	// Updates through the old number land on the new inode.
	if err := fs.Utime(ino); err != nil {
		t.Fatal(err)
	}
	// After management routines exit, the correlation is dropped.
	fs.EndManagement()
	if _, err := fs.Stat(ino); err == nil {
		t.Fatal("old ino should be dead after EndManagement")
	}
}

func TestRmdir(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		d, _ := fs.Mkdir(fs.Root(), "dir")
		if _, err := fs.Create(d, "f"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rmdir(fs.Root(), "dir"); err == nil {
			t.Fatal("rmdir of non-empty directory should fail")
		}
		if err := fs.Unlink(d, "f"); err != nil {
			t.Fatal(err)
		}
		free := fs.Allocator().FreeBlocks()
		if err := fs.Rmdir(fs.Root(), "dir"); err != nil {
			t.Fatal(err)
		}
		if fs.Allocator().FreeBlocks() <= free {
			t.Fatal("rmdir should release directory blocks")
		}
		if _, err := fs.Lookup(fs.Root(), "dir"); err == nil {
			t.Fatal("removed directory still resolves")
		}
	})
}

func TestLocateInodeViaDirectoryTable(t *testing.T) {
	fs := newFS(t, LayoutEmbedded)
	d1, _ := fs.Mkdir(fs.Root(), "a")
	d2, _ := fs.Mkdir(d1, "b")
	ino, _ := fs.Create(d2, "leaf")
	rec, err := fs.LocateInode(ino)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ino != ino || rec.Name != "leaf" {
		t.Fatalf("LocateInode = %+v", rec)
	}
	// Unknown directory id fails cleanly.
	if _, err := fs.LocateInode(inode.MakeIno(9999, 0)); err == nil {
		t.Fatal("unknown dir id should fail")
	}
}

func TestRemountRebuildsNamespace(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		d, _ := fs.Mkdir(fs.Root(), "proj")
		var want []inode.Ino
		for i := 0; i < 50; i++ {
			ino, err := fs.Create(d, fmt.Sprintf("f%02d", i))
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, ino)
		}
		fs.Unlink(d, "f03")
		fs.Unlink(d, "f07")
		sub, _ := fs.Mkdir(d, "sub")
		leaf, _ := fs.Create(sub, "leaf")
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := fs.Remount(); err != nil {
			t.Fatal(err)
		}
		// Namespace contents survive.
		d2, err := fs.Lookup(fs.Root(), "proj")
		if err != nil || d2 != d {
			t.Fatalf("proj lookup = (%v,%v)", d2, err)
		}
		for i, ino := range want {
			name := fmt.Sprintf("f%02d", i)
			if i == 3 || i == 7 {
				if _, err := fs.Lookup(d, name); err == nil {
					t.Fatalf("%s should stay deleted after remount", name)
				}
				continue
			}
			got, err := fs.Lookup(d, name)
			if err != nil || got != ino {
				t.Fatalf("%s lookup = (%v,%v), want %v", name, got, err, ino)
			}
		}
		got, err := fs.Lookup(sub, "leaf")
		if err != nil || got != leaf {
			t.Fatalf("leaf = (%v,%v), want %v", got, err, leaf)
		}
		// New creates keep working (slot accounting was rebuilt).
		if _, err := fs.Create(d, "post-remount"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCrashRecoverReplaysJournal(t *testing.T) {
	bothLayouts(t, func(t *testing.T, fs *FS) {
		d, _ := fs.Mkdir(fs.Root(), "dir")
		var want []string
		for i := 0; i < 30; i++ {
			name := fmt.Sprintf("f%d", i)
			if _, err := fs.Create(d, name); err != nil {
				t.Fatal(err)
			}
			want = append(want, name)
		}
		// Commit the journal but do NOT checkpoint: home blocks are
		// stale, the journal holds the truth.
		if err := fs.Store().Commit(); err != nil {
			t.Fatal(err)
		}
		fs.Store().Crash()
		fs.Store().Recover()
		if err := fs.Remount(); err != nil {
			t.Fatal(err)
		}
		d2, err := fs.Lookup(fs.Root(), "dir")
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range want {
			if _, err := fs.Lookup(d2, name); err != nil {
				t.Fatalf("%s lost after crash+recover: %v", name, err)
			}
		}
	})
}

func TestCrashWithoutRecoverLosesUncheckpointed(t *testing.T) {
	fs := newFS(t, LayoutEmbedded)
	if _, err := fs.Create(fs.Root(), "committed"); err != nil {
		t.Fatal(err)
	}
	fs.Store().Commit()
	fs.Store().Crash()
	// No Recover: the un-checkpointed create is invisible.
	if err := fs.Remount(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(fs.Root(), "committed"); err == nil {
		t.Fatal("un-replayed create should be lost")
	}
	// After recovery it is back.
	fs.Store().Recover()
	if err := fs.Remount(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(fs.Root(), "committed"); err != nil {
		t.Fatalf("create lost despite journal replay: %v", err)
	}
}

func TestEmbeddedStatCheaperThanNormal(t *testing.T) {
	// The embedded layout serves stat from the directory content block;
	// the normal layout reads a dirent block and an inode-table block.
	// With a cold cache the embedded layout must issue fewer disk reads.
	measure := func(layout Layout) int64 {
		cfg := DefaultConfig(layout)
		cfg.Blocks = 1 << 17
		cfg.CacheBlocks = 64 // small cache so reads go to disk
		fs, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := fs.Mkdir(fs.Root(), "d")
		const files = 2000
		for i := 0; i < files; i++ {
			if _, err := fs.Create(d, fmt.Sprintf("f%04d", i)); err != nil {
				t.Fatal(err)
			}
		}
		fs.Sync()
		before := fs.Store().Stats().DiskReads
		for i := 0; i < files; i++ {
			if _, err := fs.StatName(d, fmt.Sprintf("f%04d", i)); err != nil {
				t.Fatal(err)
			}
		}
		return fs.Store().Stats().DiskReads - before
	}
	normal := measure(LayoutNormal)
	embedded := measure(LayoutEmbedded)
	if embedded >= normal {
		t.Fatalf("embedded stat reads (%d) should be below normal (%d)", embedded, normal)
	}
}

func TestEmbeddedReaddirPlusFewerRequests(t *testing.T) {
	// readdirplus over a large directory: embedded reads the content
	// sequentially in few large requests; normal alternates dirent and
	// inode-table blocks.
	measure := func(layout Layout) int64 {
		cfg := DefaultConfig(layout)
		cfg.Blocks = 1 << 17
		cfg.CacheBlocks = 64
		fs, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := fs.Mkdir(fs.Root(), "d")
		for i := 0; i < 3000; i++ {
			if _, err := fs.Create(d, fmt.Sprintf("f%04d", i)); err != nil {
				t.Fatal(err)
			}
		}
		fs.Sync()
		before := fs.Store().Disk().Stats().Requests
		if _, err := fs.ReaddirPlus(d); err != nil {
			t.Fatal(err)
		}
		return fs.Store().Disk().Stats().Requests - before
	}
	normal := measure(LayoutNormal)
	embedded := measure(LayoutEmbedded)
	if embedded*4 > normal {
		t.Fatalf("embedded readdirplus requests (%d) should be <= 1/4 of normal (%d)", embedded, normal)
	}
}

func TestFreedBlockNotResurrectedByCheckpoint(t *testing.T) {
	// Regression: a spill block journaled, then freed, then reallocated
	// must come back blank — the pending journal record must not
	// resurrect its stale contents at checkpoint time (ext3 revoke
	// semantics). Without the fix, the stale chain pointer inside the
	// resurrected block corrupted another file's spill chain.
	cfg := DefaultConfig(LayoutEmbedded)
	cfg.Blocks = 1 << 17
	cfg.SyncWrites = true
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := fs.Mkdir(fs.Root(), "d")
	mkExts := func(n int) []extent.Extent {
		out := make([]extent.Extent, n)
		for j := range out {
			out[j] = extent.Extent{Logical: int64(j) * 2, Physical: int64(5000 + j*4), Count: 2}
		}
		return out
	}
	// A file whose mapping chains two spill blocks; delete it so the
	// chain blocks are freed while their writes sit in the journal.
	ino, _ := fs.Create(d, "victim")
	if err := fs.SetLayout(ino, mkExts(250)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(d, "victim"); err != nil {
		t.Fatal(err)
	}
	// Churn enough files over the freed blocks (forcing checkpoints in
	// between) that a stale resurrected chain pointer would collide.
	for i := 0; i < 300; i++ {
		name := fmt.Sprintf("f%03d", i)
		ino, err := fs.Create(d, name)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.SetLayout(ino, mkExts(150+i%100)); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := fs.Unlink(d, name); err != nil {
				t.Fatalf("unlink %s: %v", name, err)
			}
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if report := fs.Fsck(); !report.Clean() {
		t.Fatalf("fsck after churn:\n%v", report.Problems)
	}
}

func TestOpStatsCount(t *testing.T) {
	fs := newFS(t, LayoutEmbedded)
	d, _ := fs.Mkdir(fs.Root(), "d")
	fs.Create(d, "a")
	fs.Create(d, "b")
	fs.Lookup(d, "a")
	fs.Unlink(d, "b")
	fs.Readdir(d)
	st := fs.Stats()
	if st.Mkdirs != 1 || st.Creates != 2 || st.Lookups != 1 || st.Unlinks != 1 || st.Readdirs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
