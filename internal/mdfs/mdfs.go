package mdfs

import (
	"errors"
	"fmt"

	"redbud/internal/alloc"
	"redbud/internal/crashsim"
	"redbud/internal/disk"
	"redbud/internal/inode"
)

// recordSize aliases the inode record size for geometry math.
const recordSize = inode.RecordSize

// direntSize is the fixed size of one directory entry in the normal
// layout: 8 bytes of inode number, 1 byte of name length, 55 bytes of name.
const direntSize = 64

// Errors returned by the metadata file system.
var (
	ErrExist    = errors.New("mdfs: entry exists")
	ErrNotExist = errors.New("mdfs: no such entry")
	ErrNotDir   = errors.New("mdfs: not a directory")
	ErrIsDir    = errors.New("mdfs: is a directory")
	ErrNotEmpty = errors.New("mdfs: directory not empty")
)

// Config holds the format-time parameters of the metadata file system.
type Config struct {
	// Blocks is the MDS device size in blocks.
	Blocks int64
	// BlockSize is the block size in bytes.
	BlockSize int64
	// Disk configures the device model.
	Disk disk.Config
	// JournalBlocks sizes the journal region; it controls checkpoint
	// frequency.
	JournalBlocks int64
	// TableBlocks sizes the global directory table region.
	TableBlocks int64
	// GroupBlocks is the block-group size.
	GroupBlocks int64
	// InodesPerGroup sizes the per-group inode table (normal layout).
	InodesPerGroup int64
	// CacheBlocks is the MDS block-cache capacity.
	CacheBlocks int
	// QueueDepth is the checkpoint elevator window.
	QueueDepth int
	// Layout selects normal or embedded directories.
	Layout Layout
	// Htree gives name lookups an indexed path (ext4-like) instead of a
	// linear directory scan (ext3-like). It only affects the normal
	// layout; embedded directories always use the in-memory index the
	// paper allows ("fast indexing mechanism of in-memory directory
	// entries").
	Htree bool
	// SyncWrites commits the journal after every operation, the
	// Metarates MDS configuration ("MDS was configured to use
	// synchronous writes for metadata integrity maintenance").
	SyncWrites bool
	// CommitEvery batches this many operations per journal commit when
	// SyncWrites is off.
	CommitEvery int
	// DirPreallocBlocks is the embedded layout's initial directory
	// content preallocation.
	DirPreallocBlocks int64
	// LazyFreeBatch is the number of deleted entries buffered per
	// directory before one batched lazy-free transaction reclaims them.
	LazyFreeBatch int
	// SpillDegree is the fragmentation-degree threshold (layout mapping
	// units per file) above which a directory preallocates spill blocks
	// for new files.
	SpillDegree float64
}

// DefaultConfig returns a 2 GiB MDS device with a 4 MiB journal and an
// 8 MiB cache, in the given layout. The MDS volume is a small partition of
// a disk, so seeks within it are short-stroke: the distance-dependent seek
// term is scaled down accordingly, leaving the positioning count (the
// quantity Figure 8 measures) as the dominant cost.
func DefaultConfig(layout Layout) Config {
	d := disk.DefaultConfig()
	d.SeekMaxNs = 2 * 1000 * 1000 // short-stroked metadata LUN
	return Config{
		Blocks:            1 << 19, // 2 GiB at 4 KiB
		BlockSize:         4096,
		Disk:              d,
		JournalBlocks:     1024,
		TableBlocks:       64,
		GroupBlocks:       16384, // 64 MiB groups
		InodesPerGroup:    8192,
		CacheBlocks:       2048,
		QueueDepth:        128,
		Layout:            layout,
		CommitEvery:       64,
		DirPreallocBlocks: 4,
		LazyFreeBatch:     64,
		SpillDegree:       4,
	}
}

// dir is the in-memory state of one directory: the namespace index (the
// paper's in-memory Htree/Btree analogue) plus the location bookkeeping of
// its on-disk representation.
type dir struct {
	ino     inode.Ino
	dirID   uint32 // embedded layout identification; 0 in normal layout
	parent  inode.Ino
	group   int64
	entries map[string]inode.Ino
	order   []string

	// recBlock/recOff locate the directory's own inode record.
	recBlock int64
	recOff   int

	// Normal layout: directory-entry blocks.
	direntBlocks []int64
	entryLoc     map[string]int // entry index: block*64+slot within dirent area

	// Embedded layout: content extents holding inode records.
	content     []alloc.Range
	runsDirty   bool // content runs changed since last persisted
	nextSlot    uint32
	freeSlots   []uint32 // cleared, reusable
	pendingFree []uint32 // deleted, awaiting lazy-free
	files       int64
	extentUnits int64 // Σ layout-mapping units of subfiles
}

// capSlots returns the number of inode records the embedded content can
// hold.
func (d *dir) capSlots(inodesPerBlock int64) uint32 {
	var blocks int64
	for _, r := range d.content {
		blocks += r.Count
	}
	return uint32(blocks * inodesPerBlock)
}

// fragDegree returns the directory's fragmentation degree: "the degree
// value is simply calculated by dividing the number of layout mapping
// units ... to the number of files".
func (d *dir) fragDegree() float64 {
	if d.files == 0 {
		return 0
	}
	return float64(d.extentUnits) / float64(d.files)
}

// OpStats counts namespace operations.
type OpStats struct {
	Creates  int64
	Mkdirs   int64
	Lookups  int64
	Stats    int64
	Utimes   int64
	Unlinks  int64
	Readdirs int64
	Renames  int64
	LazyFree int64 // batched lazy-free transactions
}

// FS is one metadata file system instance. It is not safe for concurrent
// use; the MDS layer serializes operations.
type FS struct {
	cfg   Config
	geo   Geometry
	store *Store
	alloc *alloc.Allocator

	dirs     map[inode.Ino]*dir
	dirsByID map[uint32]*dir
	nextDir  uint32
	root     inode.Ino

	// Normal layout inode accounting.
	ibitmap   [][]uint64
	inodeFree []int64

	// Rename correlation: old inode number → current ("the additional
	// structure to correlate the old and new inodes").
	renamed map[inode.Ino]inode.Ino

	// Remount cycle guard: record locations already loaded during the
	// current Remount. A dirent graph with a cycle or cross-link (possible
	// only on corrupted state) must still mount defensively — the damage
	// itself is fsck's to report.
	remountSeen map[recKey]bool

	opSeq     int64 // pseudo-time for mtimes and commit batching
	sinceSync int
	stats     OpStats
}

// New formats and mounts a metadata file system.
func New(cfg Config) (*FS, error) {
	fs, err := newUnformatted(cfg)
	if err != nil {
		return nil, err
	}
	if err := fs.format(); err != nil {
		return nil, err
	}
	return fs, nil
}

// newUnformatted builds the instance and reserves the fixed metadata
// regions without creating a namespace — the starting point for both
// format and image loading.
func newUnformatted(cfg Config) (*FS, error) {
	applyDefaults(&cfg)
	geo, err := computeGeometry(cfg)
	if err != nil {
		return nil, err
	}
	d := disk.New(cfg.Disk, cfg.Blocks)
	fs := &FS{
		cfg:      cfg,
		geo:      geo,
		store:    NewStore(d, geo.JournalStart, geo.JournalBlocks, cfg.CacheBlocks, cfg.QueueDepth),
		alloc:    alloc.New(cfg.Blocks, cfg.GroupBlocks),
		dirs:     make(map[inode.Ino]*dir),
		dirsByID: make(map[uint32]*dir),
		nextDir:  inode.RootDirID,
		renamed:  make(map[inode.Ino]inode.Ino),
	}
	if err := fs.reserveRegions(); err != nil {
		return nil, err
	}
	return fs, nil
}

// applyDefaults fills zero-valued tunables.
func applyDefaults(cfg *Config) {
	def := DefaultConfig(cfg.Layout)
	if cfg.Blocks == 0 {
		cfg.Blocks = def.Blocks
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = def.BlockSize
	}
	if cfg.Disk.BlockSize == 0 {
		cfg.Disk = def.Disk
	}
	cfg.Disk.BlockSize = cfg.BlockSize
	if cfg.JournalBlocks == 0 {
		cfg.JournalBlocks = def.JournalBlocks
	}
	if cfg.TableBlocks == 0 {
		cfg.TableBlocks = def.TableBlocks
	}
	if cfg.GroupBlocks == 0 {
		cfg.GroupBlocks = def.GroupBlocks
	}
	if cfg.InodesPerGroup == 0 {
		cfg.InodesPerGroup = def.InodesPerGroup
	}
	if cfg.CacheBlocks == 0 {
		cfg.CacheBlocks = def.CacheBlocks
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = def.QueueDepth
	}
	if cfg.CommitEvery == 0 {
		cfg.CommitEvery = def.CommitEvery
	}
	if cfg.DirPreallocBlocks == 0 {
		cfg.DirPreallocBlocks = def.DirPreallocBlocks
	}
	if cfg.LazyFreeBatch == 0 {
		cfg.LazyFreeBatch = def.LazyFreeBatch
	}
	if cfg.SpillDegree == 0 {
		cfg.SpillDegree = def.SpillDegree
	}
}

// reserveRegions marks the fixed metadata regions in the space allocator
// and initializes the normal-layout inode accounting.
func (fs *FS) reserveRegions() error {
	if err := fs.reserveFixed(); err != nil {
		return err
	}
	if fs.cfg.Layout == LayoutNormal {
		fs.ibitmap = make([][]uint64, fs.geo.Groups)
		fs.inodeFree = make([]int64, fs.geo.Groups)
		for g := range fs.ibitmap {
			fs.ibitmap[g] = make([]uint64, (fs.geo.InodesPerGroup+63)/64)
			fs.inodeFree[g] = fs.geo.InodesPerGroup
		}
		// Slot 0 is reserved so inode numbers are never zero.
		fs.ibitmap[0][0] |= 1
		fs.inodeFree[0]--
	}
	return nil
}

// reserveFixed marks the superblock, journal, directory table, and
// per-group metadata in the space allocator: the format-time reservations
// every allocator rebuild starts from.
func (fs *FS) reserveFixed() error {
	if err := fs.alloc.AllocExact(0, alloc.Range{Start: 0, Count: fs.geo.GroupsStart}); err != nil {
		return err
	}
	for g := int64(0); g < fs.geo.Groups; g++ {
		meta := alloc.Range{Start: fs.geo.groupBase(g), Count: fs.geo.dataStart(g) - fs.geo.groupBase(g)}
		if err := fs.alloc.AllocExact(0, meta); err != nil {
			return err
		}
	}
	// Tail blocks beyond the last full group are unusable; reserve them.
	tail := fs.geo.groupBase(fs.geo.Groups)
	if tail < fs.cfg.Blocks {
		if err := fs.alloc.AllocExact(0, alloc.Range{Start: tail, Count: fs.cfg.Blocks - tail}); err != nil {
			return err
		}
	}
	return nil
}

// format creates the root directory and writes the file system through to
// disk: mkfs must leave a durable instance.
func (fs *FS) format() error {
	if err := fs.makeRoot(); err != nil {
		return err
	}
	return fs.Sync()
}

// Root returns the root directory's inode number.
func (fs *FS) Root() inode.Ino { return fs.root }

// Layout returns the configured directory layout.
func (fs *FS) Layout() Layout { return fs.cfg.Layout }

// Store exposes the block store for measurement.
func (fs *FS) Store() *Store { return fs.store }

// Allocator exposes the space allocator for measurement.
func (fs *FS) Allocator() *alloc.Allocator { return fs.alloc }

// Stats returns a snapshot of the operation counters.
func (fs *FS) Stats() OpStats { return fs.stats }

// Utilization returns the allocated fraction of the MDS device.
func (fs *FS) Utilization() float64 { return fs.alloc.Utilization() }

// now advances and returns the pseudo-time used for mtimes.
func (fs *FS) now() int64 {
	fs.opSeq++
	return fs.opSeq
}

// finishOp commits the running transaction according to the sync policy.
func (fs *FS) finishOp() error {
	fs.sinceSync++
	if fs.cfg.SyncWrites || fs.sinceSync >= fs.cfg.CommitEvery {
		fs.sinceSync = 0
		return fs.store.Commit()
	}
	return nil
}

// Sync commits and checkpoints everything outstanding.
func (fs *FS) Sync() error {
	if err := fs.store.Commit(); err != nil {
		return err
	}
	// Crash point: the sync's transaction is durably in the journal but
	// the checkpoint has not started — the classic committed-then-died
	// window that replay must close.
	if _, ok := fs.store.crash.Hit(crashsim.PtMdfsSyncGap, 0); ok {
		fs.store.crash.Kill()
	}
	fs.store.Checkpoint()
	return nil
}

// dirOf resolves a directory inode number, following rename correlation.
func (fs *FS) dirOf(ino inode.Ino) (*dir, error) {
	if cur, ok := fs.renamed[ino]; ok {
		ino = cur
	}
	d, ok := fs.dirs[ino]
	if !ok {
		return nil, fmt.Errorf("%w: directory %v", ErrNotExist, ino)
	}
	return d, nil
}

// Resolve follows the rename-correlation table from an old inode number to
// the current one. Unrenamed numbers map to themselves.
func (fs *FS) Resolve(ino inode.Ino) inode.Ino {
	seen := 0
	for {
		next, ok := fs.renamed[ino]
		if !ok {
			return ino
		}
		ino = next
		if seen++; seen > 1<<16 {
			panic("mdfs: rename correlation cycle")
		}
	}
}

// EndManagement drops the rename-correlation table: "this correlation is
// maintained until the management routines exit".
func (fs *FS) EndManagement() {
	fs.renamed = make(map[inode.Ino]inode.Ino)
}

// groupGoal returns the data-area allocation goal for a directory's group.
func (fs *FS) groupGoal(d *dir) int64 {
	return fs.geo.dataStart(d.group)
}

// pickGroup round-robins directories across allocation groups, the paper's
// 'rlov' directory distribution ("the content of subdirectory is
// distributed between multiple groups").
func (fs *FS) pickGroup() int64 {
	g := int64(fs.nextDir) % fs.geo.Groups
	return g
}

// allocData allocates count data blocks near goal and journals the
// block-bitmap updates of the touched groups.
func (fs *FS) allocData(goal, count int64) ([]alloc.Range, error) {
	var out []alloc.Range
	for count > 0 {
		start, got, err := fs.alloc.AllocNear(0, goal, count)
		if err != nil {
			return out, err
		}
		out = append(out, alloc.Range{Start: start, Count: got})
		fs.dirtyBlockBitmap(start, got)
		goal = start + got
		count -= got
	}
	return out, nil
}

// freeData frees data blocks, journals the bitmap updates, and forgets the
// blocks' contents.
func (fs *FS) freeData(r alloc.Range) error {
	if err := fs.alloc.Free(r); err != nil {
		return err
	}
	fs.dirtyBlockBitmap(r.Start, r.Count)
	for b := r.Start; b < r.End(); b++ {
		fs.store.Forget(b)
	}
	return nil
}

// dirtyBlockBitmap journals the block-bitmap words covering the range.
func (fs *FS) dirtyBlockBitmap(start, count int64) {
	for b := start; b < start+count; {
		g := fs.geo.groupOf(b)
		if g < 0 {
			b++
			continue
		}
		bbb := fs.geo.blockBitmapBlock(g)
		word := (b - fs.geo.groupBase(g)) / 64
		// The byte content mirrors a version stamp; the accounting —
		// which block is dirtied — is what the experiments measure.
		fs.store.WriteAt(bbb, int(word%int64(fs.cfg.BlockSize/8))*8, stamp(fs.opSeq))
		next := fs.geo.groupBase(g) + (word+1)*64
		if next > start+count {
			next = start + count
		}
		b = next
	}
}

// stamp renders a little-endian int64 for bitmap version bytes.
func stamp(v int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

// readInodeAt reads and decodes the record at (block, off).
func (fs *FS) readInodeAt(block int64, off int) (*inode.Inode, error) {
	buf := fs.store.Read(block)
	return inode.Unmarshal(buf[off : off+recordSize])
}

// writeInodeAt encodes and journals the record at (block, off).
func (fs *FS) writeInodeAt(block int64, off int, n *inode.Inode) error {
	buf, err := n.Marshal()
	if err != nil {
		return err
	}
	fs.store.WriteAt(block, off, buf)
	return nil
}
