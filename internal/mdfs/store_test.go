package mdfs

import (
	"bytes"
	"testing"

	"redbud/internal/disk"
)

func newStore(t *testing.T, cacheCap int) *Store {
	t.Helper()
	d := disk.New(disk.DefaultConfig(), 1<<16)
	return NewStore(d, 1, 256, cacheCap, 64)
}

func blockOf(s *Store, b byte) []byte {
	buf := make([]byte, s.BlockSize())
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestStoreReadThroughCache(t *testing.T) {
	s := newStore(t, 8)
	s.Write(1000, blockOf(s, 7))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	// First read after writing is a hit (the write made it resident).
	got := s.Read(1000)
	if got[0] != 7 {
		t.Fatalf("content = %d, want 7", got[0])
	}
	if s.Stats().CacheHits != before.CacheHits+1 {
		t.Fatal("read of freshly written block should hit the cache")
	}
	s.DropCaches()
	before = s.Stats()
	s.Read(1000)
	if s.Stats().DiskReads != before.DiskReads+1 {
		t.Fatal("cold read should go to disk")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := newStore(t, 4)
	for b := int64(0); b < 8; b++ {
		s.Read(2000 + b)
	}
	before := s.Stats()
	s.Read(2000) // evicted by the later 7 reads
	if s.Stats().DiskReads != before.DiskReads+1 {
		t.Fatal("evicted block should re-read from disk")
	}
	s.Read(2007) // still resident
	if s.Stats().CacheHits != before.CacheHits+1 {
		t.Fatal("most-recent block should still be cached")
	}
}

func TestStoreReadRangeMergesMisses(t *testing.T) {
	s := newStore(t, 64)
	d := s.Disk()
	before := d.Stats().Requests
	s.ReadRange(3000, 16)
	if got := d.Stats().Requests - before; got != 1 {
		t.Fatalf("contiguous cold range should be one disk request, got %d", got)
	}
	// A cached block in the middle splits the run.
	s.DropCaches()
	s.Read(3008)
	before = d.Stats().Requests
	s.ReadRange(3000, 16)
	if got := d.Stats().Requests - before; got != 2 {
		t.Fatalf("range with a cached hole should be two requests, got %d", got)
	}
}

func TestStoreAbortDiscardsTxn(t *testing.T) {
	s := newStore(t, 8)
	s.Write(4000, blockOf(s, 9))
	s.Abort()
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Read(4000); got[0] != 0 {
		t.Fatalf("aborted write visible: %d", got[0])
	}
}

func TestStoreWriteAtPartialUpdate(t *testing.T) {
	s := newStore(t, 8)
	s.Write(5000, blockOf(s, 1))
	s.WriteAt(5000, 10, []byte{2, 2, 2})
	got := s.Read(5000)
	want := blockOf(s, 1)
	copy(want[10:], []byte{2, 2, 2})
	if !bytes.Equal(got, want) {
		t.Fatal("WriteAt did not splice the range")
	}
}

func TestStoreWriteSizeChecked(t *testing.T) {
	s := newStore(t, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("short Write should panic")
		}
	}()
	s.Write(1, []byte{1, 2, 3})
}

func TestStoreCrashLosesUncommitted(t *testing.T) {
	s := newStore(t, 8)
	s.Write(6000, blockOf(s, 5))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Write(6001, blockOf(s, 6)) // uncommitted
	s.Crash()
	s.Recover()
	if got := s.Read(6000); got[0] != 5 {
		t.Fatal("committed write lost")
	}
	if got := s.Read(6001); got[0] != 0 {
		t.Fatal("uncommitted write survived the crash")
	}
}

func TestStoreForgetVoidsContent(t *testing.T) {
	s := newStore(t, 8)
	s.Write(7000, blockOf(s, 3))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Checkpoint()
	s.Forget(7000)
	if got := s.Read(7000); got[0] != 0 {
		t.Fatal("forgotten block should read as zeroes")
	}
	// And the journal must not resurrect it (revoked).
	s.Crash()
	s.Recover()
	if got := s.Read(7000); got[0] != 0 {
		t.Fatal("forgotten block resurrected by replay")
	}
}
