package mdfs

import (
	"encoding/binary"
	"fmt"

	"redbud/internal/inode"
)

// Remount rebuilds the in-memory namespace from the on-disk state, the way
// a fresh mount (possibly after Crash + Recover) would. It validates the
// superblock, walks the directory tree from the root record, and
// reconstructs every directory's index, slot accounting, and — in the
// normal layout — the inode bitmaps.
func (fs *FS) Remount() error {
	sb := fs.store.Read(0)
	le := binary.LittleEndian
	if le.Uint32(sb[offSMagic:]) != superMagic {
		return fmt.Errorf("mdfs: bad superblock magic")
	}
	if Layout(le.Uint32(sb[offSLayout:])) != fs.cfg.Layout {
		return fmt.Errorf("mdfs: superblock layout mismatch")
	}
	rootBlk := int64(le.Uint64(sb[offSRootBlk:]))
	rootOff := int(le.Uint64(sb[offSRootOff:]))
	rootIno := inode.Ino(le.Uint64(sb[offSRootIno:]))
	fs.nextDir = le.Uint32(sb[offSNextDir:])

	fs.dirs = make(map[inode.Ino]*dir)
	fs.dirsByID = make(map[uint32]*dir)
	fs.renamed = make(map[inode.Ino]inode.Ino)
	fs.remountSeen = make(map[recKey]bool)
	defer func() { fs.remountSeen = nil }()
	if fs.cfg.Layout == LayoutNormal {
		for g := range fs.ibitmap {
			for w := range fs.ibitmap[g] {
				fs.ibitmap[g][w] = 0
			}
			fs.inodeFree[g] = fs.geo.InodesPerGroup
		}
		fs.ibitmap[0][0] |= 1 // reserved slot 0
		fs.inodeFree[0]--
	}

	rec, err := fs.readInodeAt(rootBlk, rootOff)
	if err != nil {
		return err
	}
	if !rec.IsDir() {
		return fmt.Errorf("mdfs: root record is not a directory")
	}
	fs.root = rootIno
	root, err := fs.loadDir(rec, rootIno, rootBlk, rootOff)
	if err != nil {
		return err
	}
	root.parent = rootIno
	return nil
}

// loadDir reconstructs one directory (and recursively its subdirectories)
// from its on-disk record. A record location reached twice — a directory
// cycle or cross-link, possible only on corrupted state — is loaded once
// and otherwise ignored: mount must terminate on arbitrary damage, and
// the cycle itself is fsck's to report.
func (fs *FS) loadDir(rec *inode.Inode, ino inode.Ino, recBlk int64, recOff int) (*dir, error) {
	if fs.remountSeen != nil {
		key := recKey{blk: recBlk, off: recOff}
		if fs.remountSeen[key] {
			return fs.dirs[ino], nil
		}
		fs.remountSeen[key] = true
	}
	d := &dir{
		ino:      ino,
		dirID:    rec.DirID,
		entries:  make(map[string]inode.Ino),
		entryLoc: make(map[string]int),
		recBlock: recBlk,
		recOff:   recOff,
	}
	runs := extentsToRuns(fs.readMapping(rec))
	if fs.cfg.Layout == LayoutEmbedded {
		d.content = runs
		d.extentUnits = int64(rec.Aux)
		if g := fs.geo.groupOf(recBlk); g >= 0 {
			d.group = g
		}
		fs.dirs[ino] = d
		fs.dirsByID[d.dirID] = d
		if err := fs.loadEmbeddedEntries(d); err != nil {
			return nil, err
		}
	} else {
		for _, r := range runs {
			for b := r.Start; b < r.End(); b++ {
				d.direntBlocks = append(d.direntBlocks, b)
			}
		}
		if int64(ino) < fs.geo.Groups*fs.geo.InodesPerGroup {
			d.group = int64(ino) / fs.geo.InodesPerGroup
			fs.markSlotUsed(int64(ino))
		}
		fs.dirs[ino] = d
		if err := fs.loadNormalEntries(d); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// loadEmbeddedEntries scans a directory's content records.
func (fs *FS) loadEmbeddedEntries(d *dir) error {
	per := fs.geo.InodesPerBlock
	var slot uint32
	var maxUsed int64 = -1
	var tombstones []uint32
	for _, r := range d.content {
		blocks := fs.store.ReadRange(r.Start, r.Count)
		for bi, buf := range blocks {
			for i := int64(0); i < per; i++ {
				recBuf := buf[i*recordSize : (i+1)*recordSize]
				rec, err := inode.Unmarshal(recBuf)
				if err != nil {
					return err
				}
				cur := slot
				slot++
				if rec.Mode == inode.ModeNone {
					tombstones = append(tombstones, cur)
					continue
				}
				maxUsed = int64(cur)
				d.entries[rec.Name] = rec.Ino
				d.order = append(d.order, rec.Name)
				d.files++
				if rec.IsDir() {
					blk := r.Start + int64(bi)
					if _, err := fs.loadDir(rec, rec.Ino, blk, int(i*recordSize)); err != nil {
						return err
					}
					if _, ok := fs.dirs[rec.Ino]; ok {
						fs.dirs[rec.Ino].parent = d.ino
					}
				}
				if rec.OldIno != 0 {
					fs.renamed[rec.OldIno] = rec.Ino
				}
			}
		}
	}
	d.nextSlot = uint32(maxUsed + 1)
	for _, t := range tombstones {
		if int64(t) <= maxUsed {
			d.freeSlots = append(d.freeSlots, t)
		}
	}
	return nil
}

// loadNormalEntries scans a directory's entry blocks and marks the inode
// slots used.
func (fs *FS) loadNormalEntries(d *dir) error {
	per := fs.direntsPerBlock()
	for bi, blk := range d.direntBlocks {
		buf := fs.store.Read(blk)
		for i := 0; i < per; i++ {
			ent := buf[i*direntSize : (i+1)*direntSize]
			ino := inode.Ino(binary.LittleEndian.Uint64(ent[0:]))
			if ino == 0 {
				continue
			}
			nameLen := int(ent[8])
			name := string(ent[9 : 9+nameLen])
			d.entries[name] = ino
			d.entryLoc[name] = bi*per + i
			d.order = append(d.order, name)
			fs.markSlotUsed(int64(ino))
			recBlk, recOff := fs.geo.slotLocation(int64(ino))
			rec, err := fs.readInodeAt(recBlk, recOff)
			if err != nil {
				return err
			}
			if rec.IsDir() {
				if _, err := fs.loadDir(rec, ino, recBlk, recOff); err != nil {
					return err
				}
				if child, ok := fs.dirs[ino]; ok {
					child.parent = d.ino
				}
			}
		}
	}
	return nil
}

// markSlotUsed sets an inode-bitmap bit during remount (no journaling: the
// bitmap block contents on disk are already right).
func (fs *FS) markSlotUsed(slot int64) {
	g := slot / fs.geo.InodesPerGroup
	if g < 0 || g >= fs.geo.Groups {
		return
	}
	idx := slot % fs.geo.InodesPerGroup
	word, bit := idx/64, uint(idx%64)
	if fs.ibitmap[g][word]&(1<<bit) == 0 {
		fs.ibitmap[g][word] |= 1 << bit
		fs.inodeFree[g]--
	}
}
