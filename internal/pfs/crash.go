package pfs

// Whole-cluster power-fail recovery: the mount-side sequence a crash sweep
// (internal/crashsim) drives after an armed crash point killed the cluster.
// The order mirrors a real parallel file system coming back:
//
//  1. abandon client-side repair state (the coordinator died with it);
//  2. the MDS loses its page cache and open transaction, replays the
//     journal, remounts the namespace from disk, and fscks it;
//  3. every IO server rolls its volatile write queue back to what the
//     media held (ost.PowerFail) and scrubs — demoting torn blocks,
//     reclaiming leaked and orphaned space;
//  4. the transport and client suspicion are reset (all servers reboot);
//  5. the client cache reboots empty;
//  6. on replicated mounts, staleness is re-derived from durable state —
//     the manager's stale bits died with the client, but each member's
//     written coverage survives on its server — and the repair engine is
//     drained until redundancy is restored.

import (
	"fmt"
	"sort"

	"redbud/internal/alloc"
	"redbud/internal/inode"
	"redbud/internal/mdfs"
	"redbud/internal/ost"
)

// RecoveryReport summarizes one CrashRecover.
type RecoveryReport struct {
	// Mdfs is the post-replay metadata fsck.
	Mdfs *mdfs.FsckReport
	// MdsReclaimed counts metadata blocks the allocator rebuild returned
	// to free space: blocks whose linking operations the lost journal
	// records never made durable (the mdfs analogue of the OST scrub's
	// leak reclamation).
	MdsReclaimed int64
	// Scrubs are the per-OST scrub results, ordered by server index.
	Scrubs []ost.ScrubReport
	// StaleMarked counts replica members re-marked stale from durable
	// written coverage (replicated mounts only).
	StaleMarked int
	// RepairedOK reports whether the post-recovery repair drain restored
	// full redundancy (true on unreplicated mounts).
	RepairedOK bool
}

// Clean reports whether recovery found a consistent cluster: the metadata
// fsck passed and redundancy came back.
func (r *RecoveryReport) Clean() bool {
	return r.Mdfs != nil && r.Mdfs.Clean() && r.RepairedOK
}

// CrashRecover brings the mount back after an injector kill (or any other
// point where the caller wants to model a whole-cluster power failure).
// It must only be called between operations — never with an FS call on the
// stack — and leaves the mount serving requests again.
func (fs *FS) CrashRecover() (*RecoveryReport, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	rep := &RecoveryReport{}

	// 1. The repair coordinator's in-flight job died with the client.
	if fs.rep != nil && fs.rep.JobActive() {
		fs.rep.AbortJob()
	}

	// 2. Metadata server: drop volatile state, replay the journal, remount
	// the namespace from disk, and check it.
	st := fs.mds.FS().Store()
	st.Crash()
	st.Recover()
	if err := fs.mds.FS().Remount(); err != nil {
		return rep, fmt.Errorf("pfs: recovery remount: %w", err)
	}
	// The in-memory allocator still charges blocks whose linking ops the
	// crash lost; rebuild it from the remounted namespace so the fsck
	// leak pass checks the truth, not the pre-crash residue.
	reclaimed, err := fs.mds.FS().RebuildAllocator()
	if err != nil {
		return rep, fmt.Errorf("pfs: recovery allocator rebuild: %w", err)
	}
	rep.MdsReclaimed = reclaimed
	rep.Mdfs = fs.mds.FS().FsckWith(mdfs.FsckOptions{
		Workers: fs.cfg.FsckWorkers,
		Metrics: fs.cfg.Metrics,
		Trace:   fs.tracer,
	})

	// 3. IO servers: undo writes the media never got, then scrub.
	for _, srv := range fs.osts {
		srv.PowerFail()
		sr, err := srv.Scrub()
		if err != nil {
			return rep, fmt.Errorf("pfs: recovery scrub ost%d: %w", sr.OST, err)
		}
		rep.Scrubs = append(rep.Scrubs, sr)
	}

	// 4. Every server rebooted; the transport delivers again and the
	// client's suspicion resets (stale copies stay stale until repaired).
	if ft := fs.conn.Fault(); ft != nil {
		for i := range fs.osts {
			if ft.Crashed(ostAddr(i)) {
				ft.Revive(ostAddr(i))
			}
		}
	}
	if fs.rep != nil {
		for i := range fs.osts {
			fs.rep.MarkUp(i)
		}
	}

	// 5. The client cache reboots empty.
	if fs.cache != nil {
		fs.cache.Reset()
	}

	// 6. Re-derive replica staleness from durable coverage and repair.
	rep.RepairedOK = true
	if fs.rep != nil {
		n, err := fs.remarkStaleLocked()
		if err != nil {
			return rep, err
		}
		rep.StaleMarked = n
		fs.mu.Unlock()
		err = fs.RepairDrain()
		fs.mu.Lock()
		if err != nil {
			return rep, fmt.Errorf("pfs: recovery repair: %w", err)
		}
		rep.RepairedOK = fs.rep.FullyReplicated()
	}
	return rep, nil
}

// remarkStaleLocked re-derives which replica members are behind. The
// manager's stale bits are client state and died in the crash; what
// survives is each member's written bitmap on its server. A member whose
// durable written coverage does not contain the member union is behind —
// it missed writes (it was down, or the crash tore its copy and the scrub
// demoted blocks) — and is marked stale for the repair engine. Callers
// hold fs.mu.
func (fs *FS) remarkStaleLocked() (int, error) {
	inos := make([]inode.Ino, 0, len(fs.files))
	for ino := range fs.files {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	marked := 0
	for _, ino := range inos {
		f := fs.files[ino]
		for c := range f.objects {
			members, obj, ok := fs.rep.Members(ino, c)
			if !ok {
				continue
			}
			covers := make([][]alloc.Range, len(members))
			var union alloc.RangeSet
			for i, m := range members {
				runs, err := fs.osts[m.OST].WrittenRuns(obj)
				if err != nil {
					// No such object on this member: it was created
					// while the server was unreachable. Empty coverage.
					continue
				}
				covers[i] = runs
				for _, r := range runs {
					union.Add(r)
				}
			}
			for i, m := range members {
				var have alloc.RangeSet
				for _, r := range covers[i] {
					have.Add(r)
				}
				behind := false
				for _, r := range union.Ranges() {
					if !have.Contains(r) {
						behind = true
						break
					}
				}
				if behind {
					fs.rep.MarkStale(ino, c, m.OST)
					marked++
				}
			}
		}
	}
	return marked, nil
}
