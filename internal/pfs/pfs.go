// Package pfs assembles Redbud: the block-based parallel file system the
// MiF techniques were implemented in. A mount wires one metadata server to
// a set of IO servers, stripes file data across them, and applies the
// configured allocation policy and directory layout.
//
// Config profiles reproduce the paper's comparison set: the MiF system
// (on-demand preallocation + embedded directories), the original Redbud
// (reservation + ext3-style directories), and the Lustre-like baseline
// (reservation + Htree-indexed ext4-style MDS).
package pfs

import (
	"fmt"
	"runtime"
	"sync"

	"redbud/internal/cache"
	"redbud/internal/core"
	"redbud/internal/crashsim"
	"redbud/internal/defrag"
	"redbud/internal/disk"
	"redbud/internal/extent"
	"redbud/internal/inode"
	"redbud/internal/mdfs"
	"redbud/internal/mds"
	"redbud/internal/netsim"
	"redbud/internal/ost"
	"redbud/internal/replica"
	"redbud/internal/rpc"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// mdsAddr is the metadata server's address on a single-MDS mount's
// transport.
const mdsAddr = "mds"

// ostAddr names IO server i on the mount's transport.
func ostAddr(i int) string { return fmt.Sprintf("ost%d", i) }

// PolicyKind selects the data-placement policy applied at the IO servers.
type PolicyKind int

// Placement policies, matching the evaluation's comparison set.
const (
	PolicyVanilla PolicyKind = iota
	PolicyReservation
	PolicyOnDemand
	PolicyStatic
)

// String names the policy for benchmark tables.
func (p PolicyKind) String() string {
	switch p {
	case PolicyVanilla:
		return "vanilla"
	case PolicyReservation:
		return "reservation"
	case PolicyOnDemand:
		return "on-demand"
	case PolicyStatic:
		return "static"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config describes one Redbud mount.
type Config struct {
	// Name labels the configuration in reports.
	Name string
	// OSTs is the number of IO servers (the paper stripes over 5 or 8
	// disks depending on the experiment).
	OSTs int
	// OST configures each IO server.
	OST ost.Config
	// StripeBlocks is the stripe unit in blocks.
	StripeBlocks int64
	// MDS configures the metadata server.
	MDS mds.Config
	// Policy selects the data-placement policy.
	Policy PolicyKind
	// ReservationWindow is the per-inode window size in blocks for the
	// reservation policy (Figure 6(b) sweeps it).
	ReservationWindow int64
	// OnDemand configures the MiF policy.
	OnDemand core.OnDemandConfig
	// Defrag, when set, overrides the tuning of the online defragmentation
	// engine every mount carries (defrag.DefaultConfig otherwise). The
	// engine is passive until driven through FS.Defrag.
	Defrag *defrag.Config
	// RPC selects the client↔server transport stack: the retry policy
	// and, when Fault is set, deterministic fault injection. The zero
	// value is the default fault-free transport.
	RPC rpc.ClientConfig
	// Cache, when set, mounts a client-side block cache between the file
	// operations and the RPC clients: re-reads of cached blocks cost no
	// RPCs, adjacent dirty blocks flush as one coalesced write, and
	// sequential readers trigger adaptive readahead. Nil (the default)
	// keeps the mount write-through, so existing runs stay byte-identical.
	Cache *cache.Config
	// Replication, when set with RF > 1, gives every stripe component an
	// N-way replica set: writes fan out to all live copies, reads steer to
	// the least-loaded one (failing over on RPC errors), and a background
	// re-replication engine restores redundancy after an OST crash. Nil or
	// RF <= 1 keeps the mount on the unreplicated path, byte-identical to
	// runs without this field.
	Replication *replica.Config
	// Crash, when set, attaches a crash-point injector to the mount: the
	// journal, metadata checkpoint, IO-server write/flush/truncate/migrate
	// paths, replica repair, and cache barriers all announce named crash
	// points to it, and the armed one kills the mount mid-operation (see
	// internal/crashsim). Nil — the default — leaves every hot path on its
	// nil-receiver fast path.
	Crash *crashsim.Injector
	// ParallelDomains overrides the clock-domain fan-out decision. Nil
	// (auto) runs data-path RPCs on per-OST domain goroutines when the
	// process has more than one scheduler core and falls back to the serial
	// loop on a single core, where rendezvous costs outweigh any overlap.
	// The simulated results are byte-identical either way — the override
	// exists so tests can pin one path regardless of host width.
	ParallelDomains *bool
	// Metrics, when set, instruments the mount into the registry at New
	// time (labeled with the configuration Name). Multiple mounts may share
	// one registry; their counters sum.
	Metrics *telemetry.Registry
	// Trace, when set, records per-layer request spans on the tracer's
	// simulated timeline for every operation on the mount.
	Trace *telemetry.Tracer
	// FsckWorkers sets the scan-stage worker-pool width for the parallel
	// metadata fsck that CrashRecover runs after journal replay. Zero or
	// one means serial; the report is byte-identical at any width.
	FsckWorkers int
}

// MiF returns the full MiF system: on-demand preallocation and embedded
// directories.
func MiF(osts int) Config {
	return Config{
		Name:         "MiF",
		OSTs:         osts,
		OST:          ost.DefaultConfig(),
		StripeBlocks: 64, // 256 KiB stripe unit
		MDS:          mds.DefaultConfig(mdfs.LayoutEmbedded),
		Policy:       PolicyOnDemand,
		OnDemand:     core.DefaultOnDemandConfig(),
	}
}

// RedbudOrig returns the original Redbud baseline: reservation
// preallocation and traditional (ext3) directory placement.
func RedbudOrig(osts int) Config {
	return Config{
		Name:              "Redbud",
		OSTs:              osts,
		OST:               ost.DefaultConfig(),
		StripeBlocks:      64,
		MDS:               mds.DefaultConfig(mdfs.LayoutNormal),
		Policy:            PolicyReservation,
		ReservationWindow: 2048, // 8 MiB, the ext4 default neighbourhood
	}
}

// LustreLike returns the Lustre baseline: reservation preallocation and an
// Htree-indexed ext4-style MDS.
func LustreLike(osts int) Config {
	cfg := RedbudOrig(osts)
	cfg.Name = "Lustre"
	cfg.MDS.FS.Htree = true
	return cfg
}

// WithPolicy returns a copy of cfg running a different placement policy,
// for the policy-sweep experiments.
func (c Config) WithPolicy(p PolicyKind) Config {
	c.Policy = p
	c.Name = p.String()
	return c
}

// file is one open or known file: its MDS inode and its per-OST objects.
type file struct {
	ino      inode.Ino
	objects  []ost.ObjectID // index = OST
	sizeHint int64          // declared size in blocks (static policy)
	extents  int            // last extent count reported to the MDS
}

// FS is one mounted Redbud instance. All client↔server traffic flows
// through the rpc connection: typed messages to per-server endpoints over
// a transport that charges the GbE metadata link and the per-OST
// FibreChannel fabric. The server handles (mds, osts) remain only for
// measurement and for the server-local defragmentation engine.
type FS struct {
	cfg Config

	mu      sync.Mutex
	mds     *mds.Server
	osts    []*ost.Server
	mdsLink *netsim.Link   // GbE path from clients to the MDS
	fabric  *netsim.Fabric // per-OST FibreChannel data paths
	conn    *rpc.Conn      // transport stack: retry → faults → network
	mdsc    *rpc.MDSClient
	ostc    []*rpc.OSTClient
	defrag  *defrag.Engine   // online defragmentation, one controller per OST
	cache   *cache.Cache     // client block cache, nil on write-through mounts
	rep     *replica.Manager // replica table, nil on unreplicated mounts
	files   map[inode.Ino]*file
	nextObj uint64

	// domains are the per-OST clock domains: one worker goroutine per IO
	// server, each owning that server's disk and fabric link and advancing a
	// local sim.Clock, rendezvousing into domClk at RPC fan-out boundaries.
	// They are spun up lazily by the first eligible fan-out (mounts that
	// trace, replicate, or fault-inject never start them) and torn down by
	// Close or, as a backstop, the garbage collector.
	domains *sim.Group
	domClk  *sim.Clock
	// Prebuilt domain task bodies, allocated once with the domains so hot
	// fan-outs submit value tasks without closure allocations. fanFn is the
	// current window's forEachOSTLocked callback, published to the workers
	// by the task-channel send and cleared after the rendezvous.
	taskFan      func(*sim.Clock, sim.Task) error
	taskWrite    func(*sim.Clock, sim.Task) error
	taskRead     func(*sim.Clock, sim.Task) error
	taskExtCount func(*sim.Clock, sim.Task) error
	fanFn        func(i int) error

	// Reusable fan-out scratch. All three are only touched under fs.mu by
	// the coordinator; per-OST slots of extScratch/closeScratch are written
	// by domain tasks (one slot per domain, ordered by the rendezvous).
	stripeScratch []stripePiece
	extScratch    []int
	closeScratch  [][]extent.Extent

	// tracer records per-operation spans; writeHist/readHist observe each
	// client operation's simulated duration (the trace clock's advance over
	// the op) when both a registry and a tracer are attached.
	tracer    *telemetry.Tracer
	writeHist *telemetry.Histogram
	readHist  *telemetry.Histogram
	// writeSeries/readSeries sample client-visible throughput (blocks per
	// window of simulated time); extentSeries tracks the written file's
	// extent count over time — the aging curve of Figures 8 and 9.
	writeSeries  *telemetry.Series
	readSeries   *telemetry.Series
	extentSeries *telemetry.Series
}

// New formats and mounts a Redbud file system.
func New(cfg Config) (*FS, error) {
	if cfg.OSTs <= 0 {
		return nil, fmt.Errorf("pfs: need at least one OST, got %d", cfg.OSTs)
	}
	if cfg.StripeBlocks <= 0 {
		return nil, fmt.Errorf("pfs: invalid stripe unit %d", cfg.StripeBlocks)
	}
	srv, err := mds.New(cfg.MDS)
	if err != nil {
		return nil, err
	}
	fs := &FS{
		cfg:     cfg,
		mds:     srv,
		mdsLink: netsim.NewLink(netsim.GbE()),
		fabric:  netsim.NewFabric(netsim.FC400(), cfg.OSTs),
		conn:    rpc.NewConn(cfg.RPC),
		files:   make(map[inode.Ino]*file),
	}
	for i := 0; i < cfg.OSTs; i++ {
		fs.osts = append(fs.osts, ost.NewServer(i, cfg.OST))
	}
	if cfg.Crash != nil {
		srv.FS().Store().SetCrashInjector(cfg.Crash)
		for _, osrv := range fs.osts {
			osrv.SetCrashInjector(cfg.Crash)
		}
	}
	fs.conn.Register(mdsAddr, rpc.NewMDSEndpoint(mdsAddr, srv), fs.mdsLink)
	fs.mdsc = rpc.NewMDSClient(fs.conn, mdsAddr)
	factory := fs.policyFactory()
	for i, osrv := range fs.osts {
		addr := ostAddr(i)
		fs.conn.Register(addr, rpc.NewOSTEndpoint(addr, osrv, factory), fs.fabric.Link(i))
		fs.ostc = append(fs.ostc, rpc.NewOSTClient(fs.conn, addr, cfg.OST.Disk.BlockSize))
	}
	dc := defrag.DefaultConfig()
	if cfg.Defrag != nil {
		dc = *cfg.Defrag
	}
	fs.defrag = defrag.NewEngine(dc, fs.osts...)
	if cfg.Cache != nil {
		fs.cache = cache.New(*cfg.Cache, cacheStore{fs})
	}
	if cfg.Replication != nil && cfg.Replication.RF > 1 {
		if cfg.Replication.RF > cfg.OSTs {
			return nil, fmt.Errorf("pfs: replication factor %d exceeds %d OSTs",
				cfg.Replication.RF, cfg.OSTs)
		}
		fs.rep = replica.NewManager(*cfg.Replication, cfg.OSTs)
		// The repair throttle meters against the same simulated-time
		// currency the defrag mover uses: accumulated device busy time.
		fs.rep.SetTimeSource(func() sim.Ns {
			var total sim.Ns
			for _, srv := range fs.osts {
				total += srv.Disk().Stats().BusyNs
			}
			return total
		})
	}
	if cfg.Metrics != nil {
		fs.Instrument(cfg.Metrics, telemetry.Labels{"fs": cfg.Name})
	}
	if cfg.Trace != nil {
		fs.SetTracer(cfg.Trace)
	}
	return fs, nil
}

// Instrument publishes the whole mount into the registry: per-operation
// latency histograms at the PFS layer, then recursively the MDS (with its
// GbE link, metadata disk, and journal), every IO server (with its disk and
// elevator), and the FibreChannel data fabric. Each component's metrics are
// distinguished by a "layer" label on top of the given base labels.
func (fs *FS) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	fs.mu.Lock()
	pl := labels.With("layer", "pfs")
	fs.writeHist = reg.Histogram("pfs_write_ns", pl)
	fs.readHist = reg.Histogram("pfs_read_ns", pl)
	fs.writeSeries = reg.Series("pfs_write_blocks", pl, 0, 0)
	fs.readSeries = reg.Series("pfs_read_blocks", pl, 0, 0)
	fs.extentSeries = reg.Series("pfs_file_extents", pl, 0, 0)
	fs.mu.Unlock()
	fs.conn.Instrument(reg, labels.With("layer", "rpc"))
	fs.mds.Instrument(reg, labels.With("layer", "mds"))
	fs.mdsLink.Instrument(reg, labels.With("layer", "net").With("link", "mds"))
	for i, srv := range fs.osts {
		srv.Instrument(reg, labels.With("layer", "ost").With("ost", fmt.Sprint(i)))
	}
	fs.fabric.Instrument(reg, labels.With("layer", "net"))
	fs.defrag.Instrument(reg, labels.With("layer", "defrag"))
	if fs.cache != nil {
		fs.cache.Instrument(reg, labels.With("layer", "cache"))
	}
	if fs.rep != nil {
		fs.rep.Instrument(reg, labels.With("layer", "replica"))
	}
}

// SetTracer attaches (or with nil detaches) the span tracer to the mount
// and every server beneath it.
func (fs *FS) SetTracer(t *telemetry.Tracer) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.tracer = t
	fs.conn.SetTracer(t)
	fs.mds.SetTracer(t)
	for _, srv := range fs.osts {
		srv.SetTracer(t)
	}
	fs.defrag.SetTracer(t)
	if fs.cache != nil {
		// Stamp cache events on the mount's timeline (t.Now is nil-safe,
		// so a detached tracer just pins them at time zero).
		fs.cache.SetClock(t.Now)
	}
	if fs.rep != nil {
		fs.rep.SetClock(t.Now)
	}
}

// Tracer returns the attached tracer (nil when tracing is off).
func (fs *FS) Tracer() *telemetry.Tracer {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.tracer
}

// startOpLocked opens the root "pfs" span of one client operation and
// points the rpc connection at it, so every rpc span (and the server and
// network spans beneath) nests underneath. Callers hold fs.mu; a nil
// tracer makes the whole chain a no-op.
func (fs *FS) startOpLocked(name string) *telemetry.ActiveSpan {
	if fs.tracer == nil {
		return nil
	}
	sp := fs.tracer.Start("pfs", name, 0)
	fs.conn.SetTraceParent(sp.ID())
	return sp
}

// endOpLocked closes an operation span and clears the connection's trace
// parent. Callers hold fs.mu.
func (fs *FS) endOpLocked(sp *telemetry.ActiveSpan) {
	if sp == nil {
		return
	}
	fs.conn.SetTraceParent(0)
	sp.End()
}

// observeOpLocked records one operation's simulated duration — the trace
// clock's advance since begin — into the histogram. Without a tracer there
// is no per-op timeline, so nothing is observed. Callers hold fs.mu.
func (fs *FS) observeOpLocked(h *telemetry.Histogram, begin sim.Ns) {
	if h != nil && fs.tracer != nil {
		h.Observe(fs.tracer.Now() - begin)
	}
}

// Config returns the mount configuration.
func (fs *FS) Config() Config { return fs.cfg }

// MDS exposes the metadata server for measurement.
func (fs *FS) MDS() *mds.Server { return fs.mds }

// OST exposes IO server i for measurement.
func (fs *FS) OST(i int) *ost.Server { return fs.osts[i] }

// OSTs returns the IO server count.
func (fs *FS) OSTs() int { return len(fs.osts) }

// Defrag returns the mount's online defragmentation engine (one controller
// per OST). The engine is built at mount time but does nothing until driven
// — batch tools call Run, a live system interleaves Step with traffic.
func (fs *FS) Defrag() *defrag.Engine { return fs.defrag }

// Cache returns the client block cache, or nil when the mount runs
// write-through (the default).
func (fs *FS) Cache() *cache.Cache { return fs.cache }

// Replication returns the replica manager, or nil when the mount runs
// unreplicated (the default).
func (fs *FS) Replication() *replica.Manager { return fs.rep }

// cacheStore adapts the mount into the cache's backing store. Its methods
// only run inside cache calls made while fs.mu is held (every cache entry
// point in this package holds it), so they use the *Locked paths directly
// and never re-enter the cache — the lock order is fs.mu, then cache.mu,
// and the write-back/fetch callbacks stay strictly below both.
type cacheStore struct{ fs *FS }

// WriteBack flushes one coalesced dirty run through the regular striped
// write path, extent-churn accounting included.
func (s cacheStore) WriteBack(f cache.FileID, stream core.StreamID, blk, count int64) error {
	fl, ok := s.fs.files[inode.Ino(f)]
	if !ok {
		return fmt.Errorf("pfs: write-back for unknown inode %d", uint64(f))
	}
	// Crash point: the cache chose to write this dirty run back but the
	// RPCs never left the client — the blocks were only ever in volatile
	// client memory, so losing them is allowed until a barrier returns.
	if _, ok := s.fs.cfg.Crash.Hit(crashsim.PtCacheWriteback, count); ok {
		s.fs.cfg.Crash.Kill()
	}
	return s.fs.writeThroughLocked(fl, stream, blk, count)
}

// Fetch reads one missing (possibly readahead-extended) run through the
// regular striped read path.
func (s cacheStore) Fetch(f cache.FileID, blk, count int64) error {
	fl, ok := s.fs.files[inode.Ino(f)]
	if !ok {
		return fmt.Errorf("pfs: fetch for unknown inode %d", uint64(f))
	}
	return s.fs.readThroughLocked(fl, blk, count)
}

// cacheSpanLocked opens the "cache" span of one cached operation under the
// pfs op span and points the rpc connection at it, so any write-back or
// fetch RPCs nest pfs → cache → rpc. Callers hold fs.mu.
func (fs *FS) cacheSpanLocked(name string, op *telemetry.ActiveSpan) *telemetry.ActiveSpan {
	if fs.tracer == nil {
		return nil
	}
	sp := fs.tracer.Start("cache", name, op.ID())
	fs.conn.SetTraceParent(sp.ID())
	return sp
}

// endCacheSpanLocked closes a cache span and restores the rpc connection's
// trace parent to the enclosing op span. Callers hold fs.mu.
func (fs *FS) endCacheSpanLocked(sp, op *telemetry.ActiveSpan) {
	if sp == nil {
		return
	}
	fs.conn.SetTraceParent(op.ID())
	sp.End()
}

// flushFileLocked is the per-file barrier on cached mounts: every dirty
// block of f is written back before the caller's own RPCs proceed. A
// write-through mount has nothing to do. Callers hold fs.mu.
func (fs *FS) flushFileLocked(f *file, name string, op *telemetry.ActiveSpan) error {
	if fs.cache == nil {
		return nil
	}
	// Crash point: power fails as the barrier starts — nothing written
	// back, nothing acknowledged.
	if _, ok := fs.cfg.Crash.Hit(crashsim.PtCacheBarrierFlush, 0); ok {
		fs.cfg.Crash.Kill()
	}
	sp := fs.cacheSpanLocked(name, op)
	err := fs.cache.FlushFile(cache.FileID(f.ino))
	fs.endCacheSpanLocked(sp, op)
	if err != nil {
		return err
	}
	// Crash point: the write-backs all left the client, but the barrier's
	// acknowledgement never reached the application — the data sits in the
	// servers' volatile queues, unacked, and may still be lost.
	if _, ok := fs.cfg.Crash.Hit(crashsim.PtCacheBarrierAck, 0); ok {
		fs.cfg.Crash.Kill()
	}
	return nil
}

// Root returns the root directory.
func (fs *FS) Root() inode.Ino { return fs.mds.Root() }

// policyFactory builds the configured placement policy.
func (fs *FS) policyFactory() ost.PolicyFactory {
	switch fs.cfg.Policy {
	case PolicyOnDemand:
		od := fs.cfg.OnDemand
		return func(src core.BlockSource, _ int64) core.Policy {
			return core.NewOnDemand(src, od)
		}
	case PolicyReservation:
		window := fs.cfg.ReservationWindow
		if window <= 0 {
			window = 2048
		}
		return func(src core.BlockSource, _ int64) core.Policy {
			return core.NewReservation(src, window)
		}
	case PolicyStatic:
		return func(src core.BlockSource, sizeHint int64) core.Policy {
			if sizeHint <= 0 {
				sizeHint = 1
			}
			return core.NewStatic(src, sizeHint)
		}
	default:
		return func(src core.BlockSource, _ int64) core.Policy {
			return core.NewVanilla(src)
		}
	}
}

// parallelLocked reports whether data-path fan-out may run on the clock
// domains. Parallel execution must be unobservable in every simulated
// metric, so it is disabled whenever shared cross-OST state would make
// ordering visible: a tracer (one shared timeline and span sequence), a
// replica manager (shared placement and repair state), a fault injector
// (one shared RNG whose draw order is the fault schedule), or a crash
// injector (one shared hit counter whose order IS the crash point). A
// single-OST
// stripe has nothing to overlap. Past those hard requirements the decision
// is a performance heuristic — overlap only helps with real cores under
// the scheduler — which Config.ParallelDomains can pin for tests. Callers
// hold fs.mu.
func (fs *FS) parallelLocked() bool {
	if fs.tracer != nil || fs.rep != nil || fs.cfg.RPC.Fault != nil || fs.cfg.Crash != nil || len(fs.osts) < 2 {
		return false
	}
	if fs.cfg.ParallelDomains != nil {
		return *fs.cfg.ParallelDomains
	}
	return runtime.GOMAXPROCS(0) > 1
}

// domainsLocked lazily starts the per-OST clock domains. Callers hold fs.mu.
func (fs *FS) domainsLocked() *sim.Group {
	if fs.domains == nil {
		// The coordinator clock lives outside FS so the domain workers keep
		// only it and the group reachable — letting the collector finalize an
		// abandoned mount and reap the workers.
		fs.domClk = new(sim.Clock)
		fs.domains = sim.NewGroup(fs.domClk, len(fs.osts))
		fs.taskFan = func(clk *sim.Clock, t sim.Task) error {
			if err := fs.fanFn(t.Index); err != nil {
				return err
			}
			clk.AdvanceTo(fs.ostBusy(t.Index))
			return nil
		}
		fs.taskWrite = func(clk *sim.Clock, t sim.Task) error {
			f := t.Ptr.(*file)
			stream := core.StreamID{Client: uint32(t.Aux >> 32), PID: uint32(t.Aux)}
			if err := fs.ostc[t.Index].Write(f.objects[t.Index], stream, t.A, t.B); err != nil {
				return err
			}
			clk.AdvanceTo(fs.ostBusy(t.Index))
			return nil
		}
		fs.taskRead = func(clk *sim.Clock, t sim.Task) error {
			f := t.Ptr.(*file)
			if err := fs.ostc[t.Index].Read(f.objects[t.Index], t.A, t.B); err != nil {
				return err
			}
			clk.AdvanceTo(fs.ostBusy(t.Index))
			return nil
		}
		fs.taskExtCount = func(clk *sim.Clock, t sim.Task) error {
			f := t.Ptr.(*file)
			n, err := fs.ostc[t.Index].ExtentCount(f.objects[t.Index])
			if err != nil {
				return err
			}
			fs.extScratch[t.Index] = n
			clk.AdvanceTo(fs.ostBusy(t.Index))
			return nil
		}
		runtime.SetFinalizer(fs, (*FS).Close)
	}
	return fs.domains
}

// Close releases the mount's background resources — the clock-domain
// workers, if any fan-out started them. The mount must be idle. Close is
// idempotent, and a closed mount remains usable (a later fan-out simply
// restarts the domains).
func (fs *FS) Close() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.domains != nil {
		fs.domains.Close()
		fs.domains = nil
		fs.domClk = nil
		runtime.SetFinalizer(fs, nil)
	}
}

// DomainTime returns the coordinator clock-domain time: the folded maximum
// of the per-OST timelines as of the last rendezvous, or zero when no
// parallel fan-out has run.
func (fs *FS) DomainTime() sim.Ns {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.domClk == nil {
		return 0
	}
	return fs.domClk.Now()
}

// ostBusy returns OST i's device timeline: the longer of its disk and its
// FibreChannel link busy time (they pipeline).
func (fs *FS) ostBusy(i int) sim.Ns {
	b := fs.osts[i].Disk().Stats().BusyNs
	if n := fs.fabric.Link(i).Stats().BusyNs; n > b {
		b = n
	}
	return b
}

// forEachOSTLocked runs fn(i) once per IO server: concurrently on the
// clock domains when the mount is eligible, in index order otherwise. Each
// parallel task advances its domain clock to its OST's device timeline
// before the rendezvous folds them into the coordinator clock. Error
// semantics differ by design: the serial path stops at the first failing
// OST, the parallel path runs every OST and reports the lowest-indexed
// failure — on the fault-free mounts eligible for parallelism, data-path
// RPCs only fail on usage errors, where the distinction is immaterial.
// Callers hold fs.mu.
func (fs *FS) forEachOSTLocked(fn func(i int) error) error {
	if !fs.parallelLocked() {
		for i := range fs.osts {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	g := fs.domainsLocked()
	fs.fanFn = fn
	for i := range fs.osts {
		g.Submit(i, sim.Task{Fn: fs.taskFan})
	}
	err := g.Rendezvous()
	fs.fanFn = nil
	return err
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(parent inode.Ino, name string) (inode.Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sp := fs.startOpLocked("mkdir")
	defer fs.endOpLocked(sp)
	return fs.mdsc.Mkdir(parent, name)
}

// Create creates a file striped across the IO servers. sizeHintBlocks
// declares the expected file size (in file-system blocks); the static
// policy fallocates it, other policies ignore it.
func (fs *FS) Create(parent inode.Ino, name string, sizeHintBlocks int64) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sp := fs.startOpLocked("create")
	defer fs.endOpLocked(sp)
	ino, err := fs.mdsc.Create(parent, name)
	if err != nil {
		return nil, err
	}
	f := &file{ino: ino, sizeHint: sizeHintBlocks}
	if fs.rep != nil {
		if err := fs.repCreateLocked(f); err != nil {
			return nil, err
		}
		fs.files[ino] = f
		return &File{fs: fs, f: f, parent: parent, name: name}, nil
	}
	perOST := fs.componentSizeHint(sizeHintBlocks)
	// Object IDs are assigned serially by the coordinator (the MDS-side
	// counter), then the object creations fan out.
	for range fs.ostc {
		fs.nextObj++
		f.objects = append(f.objects, ost.ObjectID(fs.nextObj))
	}
	if err := fs.forEachOSTLocked(func(i int) error {
		return fs.ostc[i].CreateObject(f.objects[i], perOST)
	}); err != nil {
		return nil, err
	}
	if fs.cfg.Policy == PolicyStatic && sizeHintBlocks > 0 {
		if err := fs.forEachOSTLocked(func(i int) error {
			n := fs.componentBlocks(sizeHintBlocks, i)
			if n == 0 {
				return nil
			}
			return fs.ostc[i].Fallocate(f.objects[i], core.StreamID{}, n)
		}); err != nil {
			return nil, err
		}
	}
	fs.files[ino] = f
	return &File{fs: fs, f: f, parent: parent, name: name}, nil
}

// Open opens an existing file with the aggregated open+getlayout request.
func (fs *FS) Open(parent inode.Ino, name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sp := fs.startOpLocked("open")
	defer fs.endOpLocked(sp)
	ino, _, err := fs.mdsc.OpenGetLayout(parent, name)
	if err != nil {
		return nil, err
	}
	f, ok := fs.files[ino]
	if !ok {
		return nil, fmt.Errorf("pfs: inode %v has no objects (file created outside this mount)", ino)
	}
	if fs.rep != nil {
		// A replicated open also refreshes the replica layout from the MDS
		// table (the client pays the extra metadata round trip).
		if _, err := fs.mdsc.GetReplicaLayout(ino); err != nil {
			return nil, err
		}
	}
	return &File{fs: fs, f: f, parent: parent, name: name}, nil
}

// Delete removes a file: its MDS entry and its OST objects.
func (fs *FS) Delete(parent inode.Ino, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sp := fs.startOpLocked("delete")
	defer fs.endOpLocked(sp)
	ino, err := fs.mdsc.LookupResolved(parent, name)
	if err != nil {
		return err
	}
	if err := fs.mdsc.Unlink(parent, name); err != nil {
		return err
	}
	f, ok := fs.files[ino]
	if !ok {
		return nil // metadata-only file (no data written)
	}
	// Delete is a flush barrier: dirty blocks drain before the objects go
	// away, then the cache forgets the file entirely.
	if err := fs.flushFileLocked(f, "delete-barrier", sp); err != nil {
		return err
	}
	if fs.rep != nil {
		if err := fs.repDeleteLocked(f); err != nil {
			return err
		}
	} else {
		if err := fs.forEachOSTLocked(func(i int) error {
			return fs.ostc[i].Delete(f.objects[i])
		}); err != nil {
			return err
		}
	}
	if fs.cache != nil {
		fs.cache.Drop(cache.FileID(ino))
	}
	delete(fs.files, ino)
	return nil
}

// componentSizeHint returns the per-OST object size hint for a striped
// file of total blocks.
func (fs *FS) componentSizeHint(total int64) int64 {
	if total <= 0 {
		return 0
	}
	per := total / int64(len(fs.osts))
	return per + fs.cfg.StripeBlocks // slack for uneven striping
}

// componentBlocks returns how many blocks of a total-block file land on
// OST i.
func (fs *FS) componentBlocks(total int64, i int) int64 {
	var n int64
	for b := int64(0); b < total; b += fs.cfg.StripeBlocks {
		end := b + fs.cfg.StripeBlocks
		if end > total {
			end = total
		}
		if int((b/fs.cfg.StripeBlocks)%int64(len(fs.osts))) == i {
			n += end - b
		}
	}
	return n
}

// stripe maps the file logical range [blk, blk+count) onto per-OST
// component ranges.
type stripePiece struct {
	ostIdx  int
	logical int64 // component-local logical block
	count   int64
}

// stripeRange splits a file-logical range into component pieces.
func (fs *FS) stripeRange(blk, count int64) []stripePiece {
	return fs.appendStripeRange(nil, blk, count)
}

// appendStripeRange is stripeRange appending into dst, so the write/read
// hot paths can reuse one scratch slice per mount instead of allocating a
// piece list per operation.
func (fs *FS) appendStripeRange(dst []stripePiece, blk, count int64) []stripePiece {
	out := dst
	n := int64(len(fs.osts))
	su := fs.cfg.StripeBlocks
	for count > 0 {
		stripeIdx := blk / su
		within := blk % su
		run := su - within
		if run > count {
			run = count
		}
		piece := stripePiece{
			ostIdx:  int(stripeIdx % n),
			logical: (stripeIdx/n)*su + within,
			count:   run,
		}
		if m := len(out); m > 0 && out[m-1].ostIdx == piece.ostIdx &&
			out[m-1].logical+out[m-1].count == piece.logical {
			out[m-1].count += run
		} else {
			out = append(out, piece)
		}
		blk += run
		count -= run
	}
	return out
}

// Flush forces all queued device requests on every IO server. Flushes
// are advisory — a flush RPC lost beyond the retry budget is dropped, not
// surfaced (the queued requests drain with the next forced flush).
func (fs *FS) Flush() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_ = fs.forEachOSTLocked(func(i int) error {
		if fs.rep != nil && fs.rep.Down(i) {
			return nil // no point paying retry timeouts on a suspected server
		}
		_, _ = fs.ostc[i].Flush()
		return nil
	})
}

// Sync flushes the IO servers and the metadata server. On cached mounts
// it is the mount-wide flush barrier: every file's dirty blocks are
// written back before the servers are forced.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	if fs.cache != nil {
		// Crash point: power fails at the start of the mount-wide flush
		// barrier, with every file's dirty blocks still client-side.
		if _, ok := fs.cfg.Crash.Hit(crashsim.PtCacheSyncFlush, 0); ok {
			fs.mu.Unlock()
			fs.cfg.Crash.Kill()
		}
		if err := fs.cache.Flush(); err != nil {
			fs.mu.Unlock()
			return err
		}
	}
	fs.mu.Unlock()
	fs.Flush()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mdsc.Sync()
}

// DataBusyMax returns the elapsed time of a data phase executed in
// parallel across the stripe: the largest per-component timeline, where a
// component's timeline is the longer of its disk and its FibreChannel
// link (they pipeline).
func (fs *FS) DataBusyMax() sim.Ns {
	var max sim.Ns
	for i := range fs.osts {
		if b := fs.ostBusy(i); b > max {
			max = b
		}
	}
	return max
}

// Fabric exposes the data network for measurement.
func (fs *FS) Fabric() *netsim.Fabric { return fs.fabric }

// DataStats returns the summed IO-server disk counters.
func (fs *FS) DataStats() disk.Stats {
	var total disk.Stats
	for _, srv := range fs.osts {
		total = total.Add(srv.Disk().Stats())
	}
	return total
}

// ResetDataStats zeroes the IO-server disk and network counters for a new
// phase.
func (fs *FS) ResetDataStats() {
	for _, srv := range fs.osts {
		srv.Disk().ResetStats()
	}
	fs.fabric.Reset()
}

// TotalExtents returns a file's segment count summed over its stripe
// components — the paper's Table I metric.
func (fs *FS) TotalExtents(f *File) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.totalExtentsLocked(f.f)
}

func (fs *FS) totalExtentsLocked(f *file) (int, error) {
	if fs.rep != nil {
		return fs.repTotalExtentsLocked(f)
	}
	if fs.extScratch == nil {
		fs.extScratch = make([]int, len(fs.ostc))
	}
	counts := fs.extScratch
	if fs.parallelLocked() {
		g := fs.domainsLocked()
		for i := range fs.osts {
			g.Submit(i, sim.Task{Fn: fs.taskExtCount, Ptr: f})
		}
		if err := g.Rendezvous(); err != nil {
			return 0, err
		}
	} else {
		for i := range fs.ostc {
			n, err := fs.ostc[i].ExtentCount(f.objects[i])
			if err != nil {
				return 0, err
			}
			counts[i] = n
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, nil
}

// File is an open handle on a striped file.
type File struct {
	fs     *FS
	f      *file
	parent inode.Ino
	name   string
}

// Ino returns the file's inode number.
func (h *File) Ino() inode.Ino { return h.f.ino }

// ObjectID returns the file's object ID on IO server i, for inspection
// tooling.
func (h *File) ObjectID(i int) ost.ObjectID { return h.f.objects[i] }

// Write stores count blocks at file-logical block blk on behalf of stream.
func (h *File) Write(stream core.StreamID, blk, count int64) error {
	if count <= 0 || blk < 0 {
		return fmt.Errorf("pfs: invalid write [%d,+%d)", blk, count)
	}
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sp := fs.startOpLocked("write")
	sp.AnnotateInt("blocks", int64(count))
	begin := fs.tracer.Now()
	defer func() {
		fs.observeOpLocked(fs.writeHist, begin)
		fs.writeSeries.Add(fs.tracer.Now(), count)
		fs.endOpLocked(sp)
	}()
	if fs.cache != nil {
		csp := fs.cacheSpanLocked("write", sp)
		err := fs.cache.Write(cache.FileID(h.f.ino), stream, blk, count)
		fs.endCacheSpanLocked(csp, sp)
		return err
	}
	return fs.writeThroughLocked(h.f, stream, blk, count)
}

// writeThroughLocked stores count blocks at file-logical block blk across
// the stripe — the uncached write path, also the cache's write-back target.
// Callers hold fs.mu.
func (fs *FS) writeThroughLocked(f *file, stream core.StreamID, blk, count int64) error {
	if fs.rep != nil {
		return fs.repWriteLocked(f, stream, blk, count)
	}
	before, err := fs.totalExtentsLocked(f)
	if err != nil {
		return err
	}
	pieces := fs.appendStripeRange(fs.stripeScratch[:0], blk, count)
	fs.stripeScratch = pieces
	if fs.parallelLocked() {
		g := fs.domainsLocked()
		aux := uint64(stream.Client)<<32 | uint64(stream.PID)
		for _, p := range pieces {
			g.Submit(p.ostIdx, sim.Task{Fn: fs.taskWrite, A: p.logical, B: p.count, Aux: aux, Ptr: f})
		}
		if err := g.Rendezvous(); err != nil {
			return err
		}
	} else {
		for _, p := range pieces {
			if err := fs.ostc[p.ostIdx].Write(f.objects[p.ostIdx], stream, p.logical, p.count); err != nil {
				return err
			}
		}
	}
	after, err := fs.totalExtentsLocked(f)
	if err != nil {
		return err
	}
	// Mapping churn charges the MDS CPU model: the units inserted or
	// merged, plus an indexing term that grows with the map the servers
	// and MDS must search per operation — "increased metadata overhead
	// of high fragmentation rate causes less efficient mapping".
	churn := after - before
	if churn < 0 {
		churn = -churn
	}
	if err := fs.mdsc.NoteExtentChurn(churn + 1 + after/1024); err != nil {
		return err
	}
	f.extents = after
	fs.extentSeries.Set(fs.tracer.Now(), int64(after))
	return nil
}

// Read fetches count blocks at file-logical block blk.
func (h *File) Read(blk, count int64) error {
	if count <= 0 || blk < 0 {
		return fmt.Errorf("pfs: invalid read [%d,+%d)", blk, count)
	}
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sp := fs.startOpLocked("read")
	sp.AnnotateInt("blocks", int64(count))
	begin := fs.tracer.Now()
	defer func() {
		fs.observeOpLocked(fs.readHist, begin)
		fs.readSeries.Add(fs.tracer.Now(), count)
		fs.endOpLocked(sp)
	}()
	if fs.cache != nil {
		csp := fs.cacheSpanLocked("read", sp)
		err := fs.cache.Read(cache.FileID(h.f.ino), blk, count)
		fs.endCacheSpanLocked(csp, sp)
		return err
	}
	return fs.readThroughLocked(h.f, blk, count)
}

// readThroughLocked fetches count blocks at file-logical block blk across
// the stripe — the uncached read path, also the cache's fetch target.
// Callers hold fs.mu.
func (fs *FS) readThroughLocked(f *file, blk, count int64) error {
	if fs.rep != nil {
		return fs.repReadLocked(f, blk, count)
	}
	pieces := fs.appendStripeRange(fs.stripeScratch[:0], blk, count)
	fs.stripeScratch = pieces
	if fs.parallelLocked() {
		g := fs.domainsLocked()
		for _, p := range pieces {
			g.Submit(p.ostIdx, sim.Task{Fn: fs.taskRead, A: p.logical, B: p.count, Ptr: f})
		}
		return g.Rendezvous()
	}
	for _, p := range pieces {
		if err := fs.ostc[p.ostIdx].Read(f.objects[p.ostIdx], p.logical, p.count); err != nil {
			return err
		}
	}
	return nil
}

// Truncate cuts the file to sizeBlocks, freeing the mappings beyond the
// boundary on every IO server.
func (h *File) Truncate(sizeBlocks int64) error {
	if sizeBlocks < 0 {
		return fmt.Errorf("pfs: invalid truncate to %d", sizeBlocks)
	}
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sp := fs.startOpLocked("truncate")
	defer fs.endOpLocked(sp)
	// Truncate is a flush barrier: dirty blocks drain first, then the
	// servers shrink, then the cache drops the now-stale tail.
	if err := fs.flushFileLocked(h.f, "truncate-barrier", sp); err != nil {
		return err
	}
	if fs.rep != nil {
		if err := fs.repTruncateLocked(h.f, sizeBlocks); err != nil {
			return err
		}
	} else {
		if err := fs.forEachOSTLocked(func(i int) error {
			return fs.ostc[i].Truncate(h.f.objects[i], fs.componentBlocks(sizeBlocks, i))
		}); err != nil {
			return err
		}
	}
	if fs.cache != nil {
		fs.cache.Truncate(cache.FileID(h.f.ino), sizeBlocks)
	}
	return nil
}

// Fsync forces the file's buffered writes (under delayed allocation) and
// queued device I/O to storage on every IO server — the explicit sync
// whose frequency decides whether delayed allocation can coalesce.
func (h *File) Fsync() error {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sp := fs.startOpLocked("fsync")
	defer fs.endOpLocked(sp)
	// Fsync is a flush barrier: every cached dirty block reaches the
	// servers before their own buffers are forced.
	if err := fs.flushFileLocked(h.f, "fsync-barrier", sp); err != nil {
		return err
	}
	if fs.rep != nil {
		return fs.repFsyncLocked(h.f)
	}
	return fs.forEachOSTLocked(func(i int) error {
		return fs.ostc[i].Fsync(h.f.objects[i])
	})
}

// Close releases the file's temporary reservations and records its layout
// summary at the MDS.
func (h *File) Close() error {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sp := fs.startOpLocked("close")
	defer fs.endOpLocked(sp)
	// Close is a flush barrier: the layout summary recorded at the MDS
	// must describe the data as the servers hold it.
	if err := fs.flushFileLocked(h.f, "close-barrier", sp); err != nil {
		return err
	}
	if fs.rep != nil {
		return fs.repCloseLocked(h.f)
	}
	if fs.closeScratch == nil {
		fs.closeScratch = make([][]extent.Extent, len(fs.ostc))
	}
	perOST := fs.closeScratch
	if err := fs.forEachOSTLocked(func(i int) error {
		if err := fs.ostc[i].CloseObject(h.f.objects[i]); err != nil {
			return err
		}
		exts, err := fs.ostc[i].Extents(h.f.objects[i])
		if err != nil {
			return err
		}
		perOST[i] = exts
		return nil
	}); err != nil {
		return err
	}
	// The layout summary aggregates in stripe-index order after the
	// rendezvous, so parallel closes record exactly what serial ones do.
	var layout []extent.Extent
	for i, exts := range perOST {
		perOST[i] = nil
		// The MDS records a bounded per-component summary that fits
		// the inode tail in the common case ("in most cases, the
		// file layout mapping is stuffed in the inode"); the full
		// maps stay at the servers.
		if len(exts) > 0 && len(layout) < extent.InlineSummary {
			layout = append(layout, extent.Extent{
				Logical:  int64(i),
				Physical: exts[0].Physical,
				Count:    exts[0].Count,
			})
		}
		h.f.extents += len(exts)
	}
	all := make([]extent.Extent, 0, len(layout))
	all = append(all, layout...)
	return fs.mdsc.SetLayout(h.f.ino, all)
}
