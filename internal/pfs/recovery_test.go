package pfs

import (
	"fmt"
	"testing"

	"redbud/internal/core"
)

// TestFullSystemRestart exercises the whole stack's durability story: the
// MDS crashes and replays its journal, the IO servers reboot losing their
// volatile state (sequential windows, prefetch cache), and the namespace,
// data, and persistent preallocations all survive.
func TestFullSystemRestart(t *testing.T) {
	fs := newMiF(t, 4)
	dir, err := fs.Mkdir(fs.Root(), "run")
	if err != nil {
		t.Fatal(err)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	var handles []*File
	for i := 0; i < 10; i++ {
		f, err := fs.Create(dir, fmt.Sprintf("out%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		for off := int64(0); off < 64; off += 8 {
			if err := f.Write(stream, off, 8); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		handles = append(handles, f)
	}
	// Commit the MDS journal without checkpointing, then crash it.
	mfs := fs.MDS().FS()
	if err := mfs.Store().Commit(); err != nil {
		t.Fatal(err)
	}
	mfs.Store().Crash()
	mfs.Store().Recover()
	if err := mfs.Remount(); err != nil {
		t.Fatal(err)
	}
	// Reboot every IO server.
	for i := 0; i < fs.OSTs(); i++ {
		fs.OST(i).Restart()
	}

	// Namespace intact.
	recs, err := fs.MDS().ReaddirPlus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("readdirplus after restart = %d entries, want 10", len(recs))
	}
	// Data intact and verified end to end.
	for _, f := range handles {
		if err := f.Read(0, 64); err != nil {
			t.Fatal(err)
		}
	}
	fs.Flush()
	// No volatile reservations survive.
	for i := 0; i < fs.OSTs(); i++ {
		if n := fs.OST(i).Allocator().ReservedBlocks(); n != 0 {
			t.Fatalf("OST %d still holds %d reserved blocks after reboot", i, n)
		}
	}
	// The system keeps working: new writes, deletes, fsck-clean MDS.
	f, err := fs.Create(dir, "post-restart", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Write(stream, 0, 16); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(dir, "out3"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if report := mfs.Fsck(); !report.Clean() {
		t.Fatalf("MDS not clean after restart cycle:\n%v", report.Problems)
	}
}

// TestTruncateThroughStripe verifies the striped truncate path.
func TestTruncateThroughStripe(t *testing.T) {
	fs := newMiF(t, 4)
	f, err := fs.Create(fs.Root(), "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	if err := f.Write(stream, 0, 1024); err != nil {
		t.Fatal(err)
	}
	fs.Flush()
	if err := f.Truncate(300); err != nil {
		t.Fatal(err)
	}
	if err := f.Read(0, 300); err != nil {
		t.Fatal(err)
	}
	if err := f.Read(300, 8); err == nil {
		t.Fatal("reading past the truncation point should fail")
	}
	// Owned space shrank on every component.
	var owned int64
	for i := 0; i < fs.OSTs(); i++ {
		n, err := fs.OST(i).OwnedBlocks(f.ObjectID(i))
		if err != nil {
			t.Fatal(err)
		}
		owned += n
	}
	if owned >= 1024 {
		t.Fatalf("owned after truncate = %d, want < 1024", owned)
	}
	if err := f.Truncate(-1); err == nil {
		t.Fatal("negative truncate should fail")
	}
}
