package pfs

import (
	"fmt"
	"testing"

	"redbud/internal/core"
	"redbud/internal/defrag"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// ageMount fragments a mount the way the paper's aging experiment does:
// interleaved appends from many files under the vanilla policy, so every
// OST object ends up in alternating extents. Returns the files.
func ageMount(t *testing.T, fs *FS, files int, rounds, chunk int64) []*File {
	t.Helper()
	out := make([]*File, files)
	for i := range out {
		f, err := fs.Create(fs.Root(), fmt.Sprintf("aged%d.dat", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = f
	}
	for r := int64(0); r < rounds; r++ {
		for i, f := range out {
			st := core.StreamID{Client: 1, PID: uint32(i + 1)}
			if err := f.Write(st, r*chunk, chunk); err != nil {
				t.Fatal(err)
			}
		}
	}
	fs.Flush()
	return out
}

// TestMountDefragEndToEnd exercises the engine through the pfs wiring:
// aging fragments the files, Run defragments every OST, extent counts drop
// to the striping minimum, and every byte still reads back verified.
func TestMountDefragEndToEnd(t *testing.T) {
	cfg := MiF(4).WithPolicy(PolicyVanilla)
	cfg.Name = "defrag-e2e"
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const files, rounds, chunk = 6, 8, 64 // chunk = stripe unit: round-robin striping
	fset := ageMount(t, fs, files, rounds, chunk)

	before := 0
	for _, f := range fset {
		n, err := fs.TotalExtents(f)
		if err != nil {
			t.Fatal(err)
		}
		before += n
	}

	eng := fs.Defrag()
	if eng == nil || len(eng.Controllers()) != fs.OSTs() {
		t.Fatalf("engine wiring: %v, want one controller per OST", eng)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.ObjectsMigrated == 0 || st.BlocksMoved == 0 {
		t.Fatalf("stats = %+v, want migrations on an aged mount", st)
	}

	after := 0
	for _, f := range fset {
		n, err := fs.TotalExtents(f)
		if err != nil {
			t.Fatal(err)
		}
		after += n
		if err := f.Read(0, rounds*chunk); err != nil {
			t.Fatalf("read after defrag: %v", err)
		}
	}
	if after >= before {
		t.Fatalf("total extents %d → %d, want a strict reduction", before, after)
	}
	for i := 0; i < fs.OSTs(); i++ {
		if rep := fs.OST(i).CheckConsistency(); !rep.Clean() || rep.LeakedBlocks != 0 {
			t.Fatalf("ost%d after defrag: leaks=%d problems=%v", i, rep.LeakedBlocks, rep.Problems)
		}
	}
}

// runAgedWorkload ages a mount while optionally interleaving throttled
// defrag steps between client writes, and returns the foreground write
// latency histogram. Both arms run the identical write sequence.
func runAgedWorkload(t *testing.T, name string, steps bool) telemetry.HistSnapshot {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg := MiF(2).WithPolicy(PolicyVanilla)
	cfg.Name = name
	dcfg := defrag.DefaultConfig()
	dcfg.SliceBlocks = 64
	dcfg.RateBlocksPerSec = 4096
	cfg.Defrag = &dcfg
	cfg.Metrics = reg
	cfg.Trace = telemetry.NewTracer(nil)
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	files := make([]*File, 4)
	for i := range files {
		if files[i], err = fs.Create(fs.Root(), fmt.Sprintf("f%d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	eng := fs.Defrag()
	for r := int64(0); r < 32; r++ {
		for i, f := range files {
			st := core.StreamID{Client: 1, PID: uint32(i + 1)}
			if err := f.Write(st, r*64, 64); err != nil {
				t.Fatal(err)
			}
		}
		if steps {
			// With client writes still queued the mover must yield…
			if _, err := eng.Step(); err != nil {
				t.Fatal(err)
			}
		}
		fs.Flush()
		if steps {
			// …and once the queues drain it works its token budget off.
			for k := 0; k < 4; k++ {
				if _, err := eng.Step(); err != nil {
					t.Fatal(err)
				}
			}
			if r == 8 {
				// Mid-workload scan: from here on the mover competes
				// with the foreground stream.
				eng.ScanAndPlan()
			}
		}
	}
	if steps {
		st := eng.Stats()
		if st.BlocksMoved == 0 {
			t.Fatal("defrag arm moved nothing; the interference test is vacuous")
		}
		if st.Preempted == 0 {
			t.Fatal("defrag arm was never preempted; foreground yield untested")
		}
	}
	return reg.Histogram("pfs_write_ns", telemetry.Labels{"fs": name, "layer": "pfs"}).Snapshot()
}

// TestDefragForegroundInterferenceBound is the throttle acceptance test:
// the p99 foreground write latency with a throttled, preemptible defrag
// engine running stays within 25% of the identical workload with no defrag
// at all.
func TestDefragForegroundInterferenceBound(t *testing.T) {
	base := runAgedWorkload(t, "nodefrag", false)
	with := runAgedWorkload(t, "withdefrag", true)
	if base.Count == 0 || with.Count != base.Count {
		t.Fatalf("write samples: base %d, with-defrag %d; want identical non-zero counts", base.Count, with.Count)
	}
	bound := base.P99 + base.P99/4
	if with.P99 > bound {
		t.Fatalf("foreground write p99 with defrag = %v, bound %v (no-defrag p99 %v)",
			sim.Ns(with.P99), sim.Ns(bound), sim.Ns(base.P99))
	}
}
