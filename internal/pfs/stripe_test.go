package pfs

import (
	"testing"

	"redbud/internal/ost"
	"redbud/internal/sim"
)

// stripeFixture builds an FS with just enough state for the geometry
// helpers: the stripe unit and the OST count.
func stripeFixture(su int64, osts int) *FS {
	return &FS{cfg: Config{StripeBlocks: su}, osts: make([]*ost.Server, osts)}
}

// TestStripeRangePartitionsExactly is the striping property test: for
// random geometries and ranges, the pieces of stripeRange must map every
// file-logical block in [blk, blk+count) to exactly the (OST, component
// block) the round-robin layout dictates — full coverage, no overlap —
// and whole-file per-OST totals must agree with componentBlocks.
func TestStripeRangePartitionsExactly(t *testing.T) {
	rng := sim.NewRand(0xa11ce)
	for trial := 0; trial < 500; trial++ {
		su := 1 + rng.Int63n(64)
		osts := 1 + int(rng.Int63n(12))
		blk := rng.Int63n(4 * su * int64(osts))
		count := 1 + rng.Int63n(2048)
		fs := stripeFixture(su, osts)

		// Expand the pieces into a per-block map of the component blocks
		// each OST receives.
		type loc struct {
			ost  int
			comp int64
		}
		got := make(map[int64]loc)
		perOST := make([]int64, osts)
		next := blk
		for _, p := range fs.stripeRange(blk, count) {
			if p.count <= 0 {
				t.Fatalf("trial %d (su=%d osts=%d [%d,+%d)): empty piece %+v",
					trial, su, osts, blk, count, p)
			}
			if p.ostIdx < 0 || p.ostIdx >= osts {
				t.Fatalf("trial %d: piece targets OST %d of %d", trial, p.ostIdx, osts)
			}
			for off := int64(0); off < p.count; off++ {
				b := next + off
				if _, dup := got[b]; dup {
					t.Fatalf("trial %d: block %d mapped twice", trial, b)
				}
				got[b] = loc{ost: p.ostIdx, comp: p.logical + off}
			}
			next += p.count
			perOST[p.ostIdx] += p.count
		}
		if next != blk+count {
			t.Fatalf("trial %d (su=%d osts=%d): pieces cover [%d,%d), want [%d,%d)",
				trial, su, osts, blk, next, blk, blk+count)
		}

		// Every block must land where the round-robin layout puts it.
		for b := blk; b < blk+count; b++ {
			stripe := b / su
			want := loc{
				ost:  int(stripe % int64(osts)),
				comp: (stripe/int64(osts))*su + b%su,
			}
			if got[b] != want {
				t.Fatalf("trial %d (su=%d osts=%d): block %d mapped to %+v, want %+v",
					trial, su, osts, b, got[b], want)
			}
		}

		// Whole-file totals agree with componentBlocks.
		total := blk + count
		wholeFile := stripeFixture(su, osts)
		fromRange := make([]int64, osts)
		for _, p := range wholeFile.stripeRange(0, total) {
			fromRange[p.ostIdx] += p.count
		}
		var sum int64
		for i := 0; i < osts; i++ {
			if cb := wholeFile.componentBlocks(total, i); cb != fromRange[i] {
				t.Fatalf("trial %d (su=%d osts=%d total=%d): OST %d gets %d blocks by stripeRange, %d by componentBlocks",
					trial, su, osts, total, i, fromRange[i], cb)
			}
			sum += fromRange[i]
		}
		if sum != total {
			t.Fatalf("trial %d: per-OST totals sum to %d, want %d", trial, sum, total)
		}
	}
}
