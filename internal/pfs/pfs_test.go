package pfs

import (
	"fmt"
	"testing"

	"redbud/internal/core"
	"redbud/internal/sim"
)

func newMiF(t *testing.T, osts int) *FS {
	t.Helper()
	fs, err := New(MiF(osts))
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	for _, cfgFn := range []func(int) Config{MiF, RedbudOrig, LustreLike} {
		cfg := cfgFn(4)
		t.Run(cfg.Name, func(t *testing.T) {
			fs, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			f, err := fs.Create(fs.Root(), "shared.dat", 0)
			if err != nil {
				t.Fatal(err)
			}
			stream := core.StreamID{Client: 1, PID: 1}
			for i := int64(0); i < 64; i++ {
				if err := f.Write(stream, i*16, 16); err != nil {
					t.Fatal(err)
				}
			}
			fs.Flush()
			if err := f.Read(0, 1024); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			// Re-open with the aggregated open+getlayout.
			h, err := fs.Open(fs.Root(), "shared.dat")
			if err != nil {
				t.Fatal(err)
			}
			if h.Ino() != f.Ino() {
				t.Fatalf("reopen ino mismatch: %v vs %v", h.Ino(), f.Ino())
			}
		})
	}
}

func TestStripingDistributesBlocks(t *testing.T) {
	fs := newMiF(t, 4)
	f, _ := fs.Create(fs.Root(), "s", 0)
	stream := core.StreamID{Client: 1, PID: 1}
	// Write 64 stripe units.
	if err := f.Write(stream, 0, 16*64); err != nil {
		t.Fatal(err)
	}
	fs.Flush()
	for i := 0; i < 4; i++ {
		st := fs.OST(i).Disk().Stats()
		if st.BlocksWritten != 256 {
			t.Fatalf("OST %d wrote %d blocks, want 256", i, st.BlocksWritten)
		}
	}
}

func TestStripeRangeMath(t *testing.T) {
	fs, err := New(func() Config {
		c := MiF(3)
		c.StripeBlocks = 16
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	// Range spanning several stripe units with an unaligned head.
	pieces := fs.stripeRange(10, 60) // stripe unit 16, 3 OSTs
	var total int64
	for _, p := range pieces {
		if p.count <= 0 {
			t.Fatalf("non-positive piece %+v", p)
		}
		if p.ostIdx < 0 || p.ostIdx >= 3 {
			t.Fatalf("bad ost in %+v", p)
		}
		total += p.count
	}
	if total != 60 {
		t.Fatalf("pieces cover %d blocks, want 60", total)
	}
	// First piece: block 10 is in stripe 0 -> OST 0, local 10.
	if pieces[0].ostIdx != 0 || pieces[0].logical != 10 || pieces[0].count != 6 {
		t.Fatalf("pieces[0] = %+v", pieces[0])
	}
	// Next: blocks 16..31 -> stripe 1 -> OST 1, local 0.
	if pieces[1].ostIdx != 1 || pieces[1].logical != 0 || pieces[1].count != 16 {
		t.Fatalf("pieces[1] = %+v", pieces[1])
	}
}

func TestDeleteReleasesSpace(t *testing.T) {
	fs := newMiF(t, 2)
	f, _ := fs.Create(fs.Root(), "tmp", 0)
	stream := core.StreamID{Client: 1, PID: 1}
	if err := f.Write(stream, 0, 512); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(fs.Root(), "tmp"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		a := fs.OST(i).Allocator()
		if a.FreeBlocks() != a.Total() {
			t.Fatalf("OST %d leaked %d blocks", i, a.Total()-a.FreeBlocks())
		}
	}
	if _, err := fs.Open(fs.Root(), "tmp"); err == nil {
		t.Fatal("deleted file should not open")
	}
}

func TestSharedFilePolicyComparison(t *testing.T) {
	// End-to-end reproduction of the paper's core claim at PFS level:
	// concurrent strided writers fragment the file under reservation but
	// not under on-demand, and the read-back phase shows it.
	run := func(policy PolicyKind) (int, sim.Ns) {
		cfg := MiF(4).WithPolicy(policy)
		cfg.ReservationWindow = 2048
		fs, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const procs = 16
		const regionBlocks = 1024
		f, _ := fs.Create(fs.Root(), "shared", procs*regionBlocks)
		for i := int64(0); i < regionBlocks; i += 8 {
			for p := 0; p < procs; p++ {
				stream := core.StreamID{Client: uint32(p / 4), PID: uint32(p % 4)}
				if err := f.Write(stream, int64(p)*regionBlocks+i, 8); err != nil {
					t.Fatal(err)
				}
			}
		}
		fs.Flush()
		extents, err := fs.TotalExtents(f)
		if err != nil {
			t.Fatal(err)
		}
		// Phase 2: sequential segment reads.
		fs.ResetDataStats()
		for p := 0; p < procs; p++ {
			for i := int64(0); i < regionBlocks; i += 16 {
				if err := f.Read(int64(p)*regionBlocks+i, 16); err != nil {
					t.Fatal(err)
				}
			}
		}
		fs.Flush()
		return extents, fs.DataBusyMax()
	}
	extOD, timeOD := run(PolicyOnDemand)
	extRes, timeRes := run(PolicyReservation)
	if extOD*3 > extRes {
		t.Fatalf("on-demand extents %d vs reservation %d: want >= 3x reduction", extOD, extRes)
	}
	if timeRes <= timeOD {
		t.Fatalf("reservation read time %d should exceed on-demand %d", timeRes, timeOD)
	}
}

func TestManyFilesNamespace(t *testing.T) {
	fs := newMiF(t, 2)
	dir, err := fs.Mkdir(fs.Root(), "work")
	if err != nil {
		t.Fatal(err)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	for i := 0; i < 50; i++ {
		f, err := fs.Create(dir, fmt.Sprintf("f%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Write(stream, 0, 4); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := fs.MDS().ReaddirPlus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("ReaddirPlus = %d records, want 50", len(recs))
	}
	for i := 0; i < 50; i += 5 {
		if err := fs.Delete(dir, fmt.Sprintf("f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	names, _ := fs.MDS().Readdir(dir)
	if len(names) != 40 {
		t.Fatalf("Readdir after deletes = %d names, want 40", len(names))
	}
}

func TestConcurrentClients(t *testing.T) {
	// Goroutine clients hammer one mount; run under -race in CI.
	fs := newMiF(t, 4)
	f, _ := fs.Create(fs.Root(), "conc", 0)
	done := make(chan error, 8)
	for c := 0; c < 8; c++ {
		go func(c int) {
			stream := core.StreamID{Client: uint32(c), PID: 1}
			for i := int64(0); i < 128; i += 8 {
				if err := f.Write(stream, int64(c)*128+i, 8); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(c)
	}
	for c := 0; c < 8; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	fs.Flush()
	if err := f.Read(0, 8*128); err != nil {
		t.Fatal(err)
	}
}
