package pfs

import (
	"strings"
	"sync"
	"testing"

	"redbud/internal/alloc"
	"redbud/internal/cache"
	"redbud/internal/core"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// cachedConfig returns a MiF mount with the client cache enabled.
func cachedConfig(t *testing.T, ccfg cache.Config) *FS {
	t.Helper()
	cfg := MiF(3)
	cfg.Cache = &ccfg
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// storedBlocks sums the blocks the IO servers actually hold for h.
func storedBlocks(t *testing.T, fs *FS, h *File) int64 {
	t.Helper()
	var total int64
	for i := range fs.ostc {
		exts, err := fs.ostc[i].Extents(h.f.objects[i])
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range exts {
			total += e.Count
		}
	}
	return total
}

// rpcValue sums one rpc-layer counter across label sets containing part.
func rpcValue(reg *telemetry.Registry, name, part string) int64 {
	var total int64
	for _, s := range reg.Snapshot() {
		if s.Name == name && (part == "" || strings.Contains(s.Labels, part)) {
			total += s.Value
		}
	}
	return total
}

func TestCacheOffByDefault(t *testing.T) {
	for _, cfg := range []Config{MiF(3), RedbudOrig(3), LustreLike(3)} {
		fs, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fs.Cache() != nil {
			t.Fatalf("%s: mounts must default to write-through", cfg.Name)
		}
	}
}

// TestCacheReadYourWritesProperty drives a seeded random mix of writes and
// reads through a cached mount: every read of previously written data must
// succeed (served from cache or refetched after eviction), and after the
// Sync barrier the servers must hold exactly the union of what was written.
// The mount runs the vanilla policy so the mapped-block count is an exact
// oracle — preallocating policies promote window blocks into the extent
// map beyond what was written.
func TestCacheReadYourWritesProperty(t *testing.T) {
	cfg := MiF(3).WithPolicy(PolicyVanilla)
	cfg.Cache = &cache.Config{CapacityBlocks: 128, DirtyHighWater: 32}
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := fs.Create(fs.Root(), "rw.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(42)
	stream := core.StreamID{Client: 1, PID: 1}
	var written alloc.RangeSet
	for op := 0; op < 400; op++ {
		switch {
		case written.Blocks() == 0 || rng.Int63n(2) == 0:
			r := alloc.Range{Start: rng.Int63n(1024), Count: 1 + rng.Int63n(16)}
			if err := h.Write(stream, r.Start, r.Count); err != nil {
				t.Fatalf("op %d: write %+v: %v", op, r, err)
			}
			written.Add(r)
		default:
			// Read a random sub-range of one known-written range.
			ranges := written.Ranges()
			r := ranges[rng.Int63n(int64(len(ranges)))]
			off := rng.Int63n(r.Count)
			n := 1 + rng.Int63n(r.Count-off)
			if err := h.Read(r.Start+off, n); err != nil {
				t.Fatalf("op %d: read [%d,+%d) of written data: %v", op, r.Start+off, n, err)
			}
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Cache().Stats().DirtyBlocks; got != 0 {
		t.Fatalf("dirty after Sync = %d, want 0", got)
	}
	if got, want := storedBlocks(t, fs, h), written.Blocks(); got != want {
		t.Fatalf("servers hold %d blocks, want the written union %d", got, want)
	}
}

// TestCacheFlushBarriers verifies writes are absorbed client-side until a
// barrier — Fsync here, Close below — forces them to the servers.
func TestCacheFlushBarriers(t *testing.T) {
	fs := cachedConfig(t, cache.Config{})
	h, err := fs.Create(fs.Root(), "bar.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	for i := int64(0); i < 32; i++ {
		if err := h.Write(stream, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := storedBlocks(t, fs, h); got != 0 {
		t.Fatalf("before any barrier the servers hold %d blocks, want 0 (writes absorbed)", got)
	}
	if err := h.Fsync(); err != nil {
		t.Fatal(err)
	}
	if got := storedBlocks(t, fs, h); got != 32 {
		t.Fatalf("after Fsync the servers hold %d blocks, want 32", got)
	}

	// Close is a barrier too: new dirty data lands before the layout
	// summary is recorded.
	if err := h.Write(stream, 100, 8); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if got := storedBlocks(t, fs, h); got != 40 {
		t.Fatalf("after Close the servers hold %d blocks, want 40", got)
	}
	if got := fs.Cache().Stats().DirtyBlocks; got != 0 {
		t.Fatalf("dirty after barriers = %d, want 0", got)
	}
}

// TestCacheTruncateBarrier: the truncate barrier flushes first, then the
// cache drops the now-stale tail so it can neither hit nor write back.
func TestCacheTruncateBarrier(t *testing.T) {
	fs := cachedConfig(t, cache.Config{})
	h, err := fs.Create(fs.Root(), "trunc.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	if err := h.Write(stream, 0, 64); err != nil {
		t.Fatal(err)
	}
	if err := h.Truncate(16); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := storedBlocks(t, fs, h); got != 16 {
		t.Fatalf("after truncate the servers hold %d blocks, want 16", got)
	}
}

// TestCacheDeleteDropsState: delete flushes, removes the objects, and the
// cache forgets the file.
func TestCacheDeleteDropsState(t *testing.T) {
	fs := cachedConfig(t, cache.Config{})
	h, err := fs.Create(fs.Root(), "del.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Write(core.StreamID{Client: 1, PID: 1}, 0, 32); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(fs.Root(), "del.dat"); err != nil {
		t.Fatal(err)
	}
	s := fs.Cache().Stats()
	if s.CachedBlocks != 0 || s.DirtyBlocks != 0 {
		t.Fatalf("after delete: cached=%d dirty=%d, want 0/0", s.CachedBlocks, s.DirtyBlocks)
	}
}

// TestCacheEvictionUnderPressureRefetches squeezes a working set through a
// tiny cache: evicted blocks must transparently refetch from the servers.
func TestCacheEvictionUnderPressureRefetches(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := MiF(3)
	cfg.Cache = &cache.Config{CapacityBlocks: 8, DirtyHighWater: 8, ReadAheadBlocks: -1}
	cfg.Metrics = reg
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := fs.Create(fs.Root(), "evict.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Write(core.StreamID{Client: 1, PID: 1}, 0, 64); err != nil {
		t.Fatal(err)
	}
	if err := h.Fsync(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Cache().Stats().EvictedBlocks; got < 56 {
		t.Fatalf("EvictedBlocks = %d, want >= 56 under an 8-block capacity", got)
	}
	before := rpcValue(reg, "rpc_calls", "op=obj-read")
	// Every block reads back correctly even though most were evicted.
	for blk := int64(0); blk < 64; blk += 8 {
		if err := h.Read(blk, 8); err != nil {
			t.Fatalf("read [%d,+8) after eviction: %v", blk, err)
		}
	}
	if after := rpcValue(reg, "rpc_calls", "op=obj-read"); after <= before {
		t.Fatalf("evicted blocks must refetch over RPC (obj-read %d -> %d)", before, after)
	}
}

// TestCacheCoalescingReducesWriteRPCs compares the same small-sequential
// workload on a cached and an uncached mount: write-back aggregation must
// cut the data-write RPC count by at least 2x.
func TestCacheCoalescingReducesWriteRPCs(t *testing.T) {
	run := func(withCache bool) int64 {
		reg := telemetry.NewRegistry()
		cfg := MiF(3)
		cfg.Metrics = reg
		if withCache {
			cfg.Cache = &cache.Config{}
		}
		fs, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, err := fs.Create(fs.Root(), "seq.dat", 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 256; i++ {
			if err := h.Write(core.StreamID{Client: 1, PID: 1}, i, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.Fsync(); err != nil {
			t.Fatal(err)
		}
		return rpcValue(reg, "rpc_calls", "op=obj-write")
	}
	uncached, cached := run(false), run(true)
	if cached*2 > uncached {
		t.Fatalf("obj-write RPCs: cached %d vs uncached %d, want at least 2x reduction", cached, uncached)
	}
}

// TestCacheConcurrencyHammer races goroutines over one shared cached mount
// (run under -race): per-file read/write/fsync loops plus mount-wide syncs
// must stay correct and leave nothing dirty.
func TestCacheConcurrencyHammer(t *testing.T) {
	fs := cachedConfig(t, cache.Config{CapacityBlocks: 64, DirtyHighWater: 16})
	const workers = 8
	files := make([]*File, workers)
	for i := range files {
		h, err := fs.Create(fs.Root(), "hammer"+string(rune('a'+i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = h
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := files[w]
			stream := core.StreamID{Client: uint32(w), PID: 1}
			rng := sim.NewRand(uint64(1000 + w))
			for op := 0; op < 200; op++ {
				blk := rng.Int63n(256)
				n := 1 + rng.Int63n(8)
				switch op % 5 {
				case 4:
					if err := h.Fsync(); err != nil {
						errc <- err
						return
					}
				case 3:
					if err := h.Read(blk, n); op > 0 && err != nil {
						// Reads may hit unwritten holes; only transport
						// failures are fatal, and the fault-free stack
						// has none — treat hole errors as expected.
						continue
					}
				default:
					if err := h.Write(stream, blk, n); err != nil {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Cache().Stats().DirtyBlocks; got != 0 {
		t.Fatalf("dirty after hammer+Sync = %d, want 0", got)
	}
}
