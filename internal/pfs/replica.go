package pfs

// This file is the replicated data path of the mount: every branch the
// unreplicated code takes through one OST per stripe piece, taken here
// through a component's replica set instead. Writes fan out to all live
// copies (all-replicas-ack: every live member must acknowledge, members on
// down servers are skipped and marked stale), reads steer to the
// least-loaded clean copy and fail over on transport errors, and the
// repair loop executes the plans the replica manager produces. The manager
// itself issues no RPCs — the lock order stays fs.mu, then manager.mu.

import (
	"errors"
	"fmt"

	"redbud/internal/core"
	"redbud/internal/crashsim"
	"redbud/internal/extent"
	"redbud/internal/ost"
	"redbud/internal/replica"
	"redbud/internal/rpc"
	"redbud/internal/sim"
)

// repairStream is the write-stream identity of re-replication copies, kept
// distinct from every client stream so the placement policies on the
// destination treat the rebuild as its own sequential writer.
var repairStream = core.StreamID{Client: 0xFFFFFFFF, PID: 0xFFFFFFFF}

// repSuspect reports whether an error is transport-level evidence that the
// endpoint is unreachable (an exhausted retry budget, a timeout, or an
// unavailability), as opposed to an application error the server itself
// computed and answered with.
func repSuspect(err error) bool {
	if errors.Is(err, rpc.ErrRetriesExhausted) {
		return true
	}
	var re *rpc.Error
	return errors.As(err, &re) && re.Kind != rpc.KindBadRequest
}

// repPlaceInputsLocked gathers the per-OST capacity/load observations the
// spread policy scores: the allocator's free-space gauge, the device's
// accumulated busy time, and the client's current suspicion of the server.
// Callers hold fs.mu.
func (fs *FS) repPlaceInputsLocked() []replica.PlaceInput {
	in := make([]replica.PlaceInput, len(fs.osts))
	for i, srv := range fs.osts {
		in[i] = replica.PlaceInput{
			OST:        i,
			FreeBlocks: srv.Allocator().FreeBlocks(),
			BusyNs:     srv.Disk().Stats().BusyNs,
			Down:       fs.rep.Down(i),
		}
	}
	return in
}

// repCreateLocked creates a replicated file: the MDS places one replica set
// per stripe component from the client's observations, then the component
// objects are created on every placed server. A server that fails its
// create is marked down and its copy starts stale (the repair engine will
// build it); the create succeeds as long as each component has at least one
// live copy. Callers hold fs.mu.
func (fs *FS) repCreateLocked(f *file) error {
	comps := len(fs.osts)
	sets, err := fs.mdsc.PlaceReplicas(f.ino, comps, fs.rep.RF(), fs.repPlaceInputsLocked())
	if err != nil {
		return err
	}
	perOST := fs.componentSizeHint(f.sizeHint)
	for c, set := range sets {
		id := ost.ObjectID(fs.nextObj + 1)
		fs.nextObj++
		acks := 0
		for _, r := range set {
			if fs.rep.Down(r) {
				continue
			}
			if err := fs.ostc[r].CreateObject(id, perOST); err != nil {
				if repSuspect(err) {
					fs.rep.MarkDown(r)
					continue
				}
				return err
			}
			acks++
		}
		if acks == 0 {
			return fmt.Errorf("pfs: create: no live replica for component %d", c)
		}
		f.objects = append(f.objects, id)
		fs.rep.Add(f.ino, c, id, set)
	}
	if fs.cfg.Policy == PolicyStatic && f.sizeHint > 0 {
		for c := range sets {
			n := fs.componentBlocks(f.sizeHint, c)
			if n == 0 {
				continue
			}
			members, obj, _ := fs.rep.Members(f.ino, c)
			for _, m := range members {
				if m.Down || m.Stale {
					continue
				}
				if err := fs.ostc[m.OST].Fallocate(obj, core.StreamID{}, n); err != nil {
					if repSuspect(err) {
						fs.rep.MarkDown(m.OST)
						fs.rep.MarkStale(f.ino, c, m.OST)
						continue
					}
					return err
				}
			}
		}
	}
	return nil
}

// repWriteLocked fans each stripe piece out to every live replica of its
// component. A replica whose write fails at the transport layer is marked
// down and stale rather than failing the client write; the write errors
// only when a piece gets no acknowledgement at all. Callers hold fs.mu.
func (fs *FS) repWriteLocked(f *file, stream core.StreamID, blk, count int64) error {
	before, err := fs.repTotalExtentsLocked(f)
	if err != nil {
		return err
	}
	for _, p := range fs.stripeRange(blk, count) {
		obj, targets, err := fs.rep.WriteTargets(f.ino, p.ostIdx)
		if err != nil {
			return err
		}
		acks := 0
		for _, r := range targets {
			if err := fs.ostc[r].Write(obj, stream, p.logical, p.count); err != nil {
				if repSuspect(err) {
					fs.rep.MarkDown(r)
					fs.rep.MarkStale(f.ino, p.ostIdx, r)
					continue
				}
				return err
			}
			acks++
		}
		if acks == 0 {
			return fmt.Errorf("pfs: write [%d,+%d): no live replica for component %d",
				blk, count, p.ostIdx)
		}
	}
	after, err := fs.repTotalExtentsLocked(f)
	if err != nil {
		return err
	}
	// Same mapping-churn charge as the unreplicated path: units inserted or
	// merged plus the indexing term.
	churn := after - before
	if churn < 0 {
		churn = -churn
	}
	if err := fs.mdsc.NoteExtentChurn(churn + 1 + after/1024); err != nil {
		return err
	}
	f.extents = after
	fs.extentSeries.Set(fs.tracer.Now(), int64(after))
	return nil
}

// repReadLocked serves each stripe piece from one steered replica: the
// least-loaded clean live copy, retried on the next-best copy when the pick
// fails at the transport layer. Callers hold fs.mu.
func (fs *FS) repReadLocked(f *file, blk, count int64) error {
	load := func(i int) sim.Ns { return fs.osts[i].Disk().Stats().BusyNs }
	for _, p := range fs.stripeRange(blk, count) {
		var tried []int
		for {
			r, obj, ok := fs.rep.SteerRead(f.ino, p.ostIdx, tried, load)
			if !ok {
				return fmt.Errorf("pfs: read [%d,+%d): no readable replica for component %d",
					blk, count, p.ostIdx)
			}
			err := fs.ostc[r].Read(obj, p.logical, p.count)
			if err == nil {
				break
			}
			if !repSuspect(err) {
				return err
			}
			fs.rep.MarkDown(r)
			fs.rep.NoteFailover(f.ino, p.ostIdx, r)
			tried = append(tried, r)
		}
	}
	return nil
}

// repTotalExtentsLocked sums the file's segment counts over one clean
// replica per component, failing over like a read when a pick turns out to
// be unreachable. Callers hold fs.mu.
func (fs *FS) repTotalExtentsLocked(f *file) (int, error) {
	total := 0
	for c := range f.objects {
		for {
			r, obj, ok := fs.rep.ReadReplica(f.ino, c)
			if !ok {
				return 0, fmt.Errorf("pfs: no readable replica for component %d", c)
			}
			n, err := fs.ostc[r].ExtentCount(obj)
			if err == nil {
				total += n
				break
			}
			if !repSuspect(err) {
				return 0, err
			}
			fs.rep.MarkDown(r)
			fs.rep.NoteFailover(f.ino, c, r)
		}
	}
	return total, nil
}

// repTruncateLocked truncates every live copy of every component; members
// on down servers miss the mutation and go stale. An application error is
// tolerated — a stale member created while its server was down never got
// the object, and stays stale for the repair engine. Callers hold fs.mu.
func (fs *FS) repTruncateLocked(f *file, sizeBlocks int64) error {
	for c := range f.objects {
		members, obj, ok := fs.rep.Members(f.ino, c)
		if !ok {
			continue
		}
		for _, m := range members {
			if m.Down {
				fs.rep.MarkStale(f.ino, c, m.OST)
				continue
			}
			if err := fs.ostc[m.OST].Truncate(obj, fs.componentBlocks(sizeBlocks, c)); err != nil {
				if repSuspect(err) {
					fs.rep.MarkDown(m.OST)
					fs.rep.MarkStale(f.ino, c, m.OST)
				}
				continue
			}
		}
	}
	return nil
}

// repFsyncLocked forces buffered writes on every live copy. Skipping a down
// server is harmless — its copy is already stale for the writes being
// forced — and application errors (no object on a stale member) likewise.
// Callers hold fs.mu.
func (fs *FS) repFsyncLocked(f *file) error {
	for c := range f.objects {
		members, obj, ok := fs.rep.Members(f.ino, c)
		if !ok {
			continue
		}
		for _, m := range members {
			if m.Down {
				continue
			}
			if err := fs.ostc[m.OST].Fsync(obj); err != nil && repSuspect(err) {
				fs.rep.MarkDown(m.OST)
			}
		}
	}
	return nil
}

// repCloseLocked releases reservations on every live copy and records the
// layout summary at the MDS from one clean replica per component, like the
// unreplicated close. Callers hold fs.mu.
func (fs *FS) repCloseLocked(f *file) error {
	var layout []extent.Extent
	for c := range f.objects {
		members, obj, ok := fs.rep.Members(f.ino, c)
		if !ok {
			continue
		}
		for _, m := range members {
			if m.Down {
				continue
			}
			if err := fs.ostc[m.OST].CloseObject(obj); err != nil && repSuspect(err) {
				fs.rep.MarkDown(m.OST)
			}
		}
		for {
			r, robj, ok := fs.rep.ReadReplica(f.ino, c)
			if !ok {
				break // fully degraded component: no summary contribution
			}
			exts, err := fs.ostc[r].Extents(robj)
			if err != nil {
				if repSuspect(err) {
					fs.rep.MarkDown(r)
					fs.rep.NoteFailover(f.ino, c, r)
					continue
				}
				return err
			}
			if len(exts) > 0 && len(layout) < extent.InlineSummary {
				layout = append(layout, extent.Extent{
					Logical:  int64(c),
					Physical: exts[0].Physical,
					Count:    exts[0].Count,
				})
			}
			f.extents += len(exts)
			break
		}
	}
	all := make([]extent.Extent, 0, len(layout))
	all = append(all, layout...)
	return fs.mdsc.SetLayout(f.ino, all)
}

// repDeleteLocked removes every reachable copy of the file's objects.
// Copies on down servers are orphaned (the revived server's object is
// garbage the simulator tolerates); application errors mean the copy never
// existed. Callers hold fs.mu.
func (fs *FS) repDeleteLocked(f *file) error {
	for c := range f.objects {
		members, obj, ok := fs.rep.Members(f.ino, c)
		if !ok {
			continue
		}
		for _, m := range members {
			if m.Down {
				continue
			}
			if err := fs.ostc[m.OST].Delete(obj); err != nil && repSuspect(err) {
				fs.rep.MarkDown(m.OST)
			}
		}
	}
	fs.rep.Remove(f.ino)
	return nil
}

// CrashOST blackholes IO server i at the transport: every RPC to it is
// dropped until ReviveOST, so clients discover the crash through their own
// timeouts. Requires the mount to run with a fault transport (Config.RPC.
// Fault).
func (fs *FS) CrashOST(i int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if i < 0 || i >= len(fs.osts) {
		return fmt.Errorf("pfs: no OST %d", i)
	}
	ft := fs.conn.Fault()
	if ft == nil {
		return fmt.Errorf("pfs: mount has no fault transport (set Config.RPC.Fault)")
	}
	ft.Crash(ostAddr(i))
	return nil
}

// ReviveOST restores a crashed IO server: the transport resumes delivery,
// the server reboots (volatile buffers and reservations lost, durable state
// kept), and the replica manager clears its suspicion — stale copies stay
// stale until repaired.
func (fs *FS) ReviveOST(i int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if i < 0 || i >= len(fs.osts) {
		return fmt.Errorf("pfs: no OST %d", i)
	}
	ft := fs.conn.Fault()
	if ft == nil {
		return fmt.Errorf("pfs: mount has no fault transport (set Config.RPC.Fault)")
	}
	ft.Revive(ostAddr(i))
	fs.osts[i].Restart()
	if fs.rep != nil {
		fs.rep.MarkUp(i)
	}
	return nil
}

// repPrepareDstLocked readies the repair destination: the object is created
// fresh, or truncated to empty when it already exists (a stale copy's
// content is untrustworthy — the copy restarts from nothing). Callers hold
// fs.mu.
func (fs *FS) repPrepareDstLocked(jd replica.JobDesc) error {
	if err := fs.ostc[jd.Dst].CreateObject(jd.Obj, 0); err != nil {
		if repSuspect(err) {
			return err
		}
		// Already exists: reset it.
		return fs.ostc[jd.Dst].Truncate(jd.Obj, 0)
	}
	return nil
}

// RepairStep advances the background re-replication engine by one unit of
// work: arming the next planned job, copying one paced slice, or committing
// a finished job (pushing the changed replica set to the MDS). force
// bypasses the throttle and foreground preemption — drain mode. It returns
// whether any progress was made; interleave non-force calls with foreground
// traffic, as defrag does.
func (fs *FS) RepairStep(force bool) (bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.rep == nil {
		return false, nil
	}
	sp := fs.startOpLocked("repair-step")
	defer fs.endOpLocked(sp)
	if !fs.rep.JobActive() {
		jd, ok := fs.rep.PlanRepair(fs.repPlaceInputsLocked())
		if !ok {
			return false, nil
		}
		runs, err := fs.ostc[jd.Src].WrittenRuns(jd.Obj)
		if err != nil {
			if repSuspect(err) {
				fs.rep.MarkDown(jd.Src)
				return true, nil // progress: learned the source is dead
			}
			return false, err
		}
		if err := fs.repPrepareDstLocked(jd); err != nil {
			if repSuspect(err) {
				fs.rep.MarkDown(jd.Dst)
				return true, nil
			}
			return false, err
		}
		// Crash point: the destination copy was just reset to empty for the
		// rebuild — after a recovery it must be rediscovered as stale (its
		// written coverage is behind) and repaired from scratch.
		if _, ok := fs.cfg.Crash.Hit(crashsim.PtRepairDstReset, 0); ok {
			fs.cfg.Crash.Kill()
		}
		fs.rep.StartJob(jd, runs)
		return true, nil
	}
	jd, _ := fs.rep.JobDescActive()
	if fs.rep.JobRemaining() == 0 {
		return true, fs.repFinishLocked()
	}
	pending := fs.osts[jd.Src].PendingRequests() + fs.osts[jd.Dst].PendingRequests()
	slice, ok := fs.rep.NextSlice(force, pending)
	if !ok {
		return false, nil // preempted or throttled: yield to foreground
	}
	if err := fs.ostc[jd.Src].Read(jd.Obj, slice.Start, slice.Count); err != nil {
		fs.rep.AbortJob()
		if repSuspect(err) {
			fs.rep.MarkDown(jd.Src)
			return true, nil
		}
		return false, err
	}
	if err := fs.ostc[jd.Dst].Write(jd.Obj, repairStream, slice.Start, slice.Count); err != nil {
		fs.rep.AbortJob()
		if repSuspect(err) {
			fs.rep.MarkDown(jd.Dst)
			return true, nil
		}
		return false, err
	}
	// Crash point: a repair slice was accepted by the destination but sits
	// in its volatile queue — the half-built copy must come back stale.
	if _, ok := fs.cfg.Crash.Hit(crashsim.PtRepairCopyMedia, slice.Count); ok {
		fs.cfg.Crash.Kill()
	}
	// Drain both endpoints so the copy's own queued device work never
	// preempts its next slice.
	_, _ = fs.ostc[jd.Src].Flush()
	_, _ = fs.ostc[jd.Dst].Flush()
	fs.rep.AdvanceJob(slice.Count)
	if fs.rep.JobRemaining() == 0 {
		return true, fs.repFinishLocked()
	}
	return true, nil
}

// repFinishLocked commits the in-flight job and publishes a changed replica
// set to the MDS layout table. Callers hold fs.mu.
func (fs *FS) repFinishLocked() error {
	// Crash point: the copy is byte-complete but the job was never
	// committed — the replica table still calls the destination stale, and
	// the layout publication never reached the MDS. Recovery re-runs the
	// (idempotent) repair.
	if _, ok := fs.cfg.Crash.Hit(crashsim.PtRepairCommitLayout, 0); ok {
		fs.cfg.Crash.Kill()
	}
	done := fs.rep.FinishJob()
	if done.SetChanged {
		return fs.mdsc.SetReplicaLayout(done.Key.Ino, done.Key.Comp, done.Replicas)
	}
	return nil
}

// RepairDrain force-steps the repair engine until no further progress is
// possible — every repairable component is back at full strength (or no
// live capacity remains to repair onto). Batch tools and the failover
// benchmark's final phase use it.
func (fs *FS) RepairDrain() error {
	for {
		worked, err := fs.RepairStep(true)
		if err != nil {
			return err
		}
		if !worked {
			return nil
		}
	}
}
