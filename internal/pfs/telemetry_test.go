package pfs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"redbud/internal/core"
	"redbud/internal/disk"
	"redbud/internal/netsim"
	"redbud/internal/telemetry"
)

func TestResetDataStatsZeroesDiskAndFabric(t *testing.T) {
	fs := newMiF(t, 2)
	h, err := fs.Create(fs.Root(), "a.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Write(core.StreamID{Client: 1, PID: 1}, 0, 256); err != nil {
		t.Fatal(err)
	}
	fs.Flush()
	if fs.DataStats().Requests == 0 {
		t.Fatal("expected disk traffic before reset")
	}
	if fs.Fabric().TotalStats().Messages == 0 {
		t.Fatal("expected fabric traffic before reset")
	}

	fs.ResetDataStats()

	if st := fs.DataStats(); st != (disk.Stats{}) {
		t.Fatalf("disk counters survived reset: %+v", st)
	}
	if st := fs.Fabric().TotalStats(); st != (netsim.Stats{}) {
		t.Fatalf("fabric counters survived reset: %+v", st)
	}
	for i := 0; i < fs.Fabric().Len(); i++ {
		if st := fs.Fabric().Link(i).Stats(); st != (netsim.Stats{}) {
			t.Fatalf("link %d counters survived reset: %+v", i, st)
		}
	}
}

// TestTelemetryEndToEnd drives an instrumented mount and asserts the two
// halves of the observability layer: the registry holds non-empty per-layer
// latency histograms, and the trace contains one request whose span chain
// reaches from the pfs entry point down to the disk.
func TestTelemetryEndToEnd(t *testing.T) {
	cfg := MiF(2)
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(nil)
	cfg.Metrics = reg
	cfg.Trace = tr
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := fs.Create(fs.Root(), "a.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	if err := h.Write(stream, 0, 512); err != nil {
		t.Fatal(err)
	}
	fs.Flush()
	// A large read forces a device-queue flush inside the Read op, so the
	// iosched and disk spans nest under the pfs "read" root.
	if err := h.Read(0, 512); err != nil {
		t.Fatal(err)
	}
	fs.Flush()

	// Registry: per-layer latency histograms are populated.
	hists := make(map[string]int64)
	for _, s := range reg.Snapshot() {
		if s.Hist != nil {
			hists[s.Name] += s.Hist.Count
		}
	}
	for _, name := range []string{"pfs_write_ns", "pfs_read_ns", "mds_rpc_ns", "net_transfer_ns", "ost_flush_ns", "iosched_batch_requests", "disk_service_ns"} {
		if hists[name] == 0 {
			t.Errorf("histogram %s is empty; populated: %v", name, hists)
		}
	}

	// Trace: every IO-path layer appears, and a disk span's parent chain
	// climbs through iosched and ost to a pfs root.
	spans := tr.Spans()
	byID := make(map[telemetry.SpanID]telemetry.Span, len(spans))
	layers := make(map[string]bool)
	for _, sp := range spans {
		byID[sp.ID] = sp
		layers[sp.Layer] = true
	}
	for _, l := range []string{"pfs", "mds", "net", "ost", "iosched", "disk"} {
		if !layers[l] {
			t.Errorf("no span recorded for layer %q (have %v)", l, layers)
		}
	}
	var chained bool
	for _, sp := range spans {
		if sp.Layer != "disk" {
			continue
		}
		chain := make(map[string]bool)
		for cur := sp; ; {
			chain[cur.Layer] = true
			parent, ok := byID[cur.Parent]
			if !ok {
				break
			}
			cur = parent
		}
		if chain["disk"] && chain["iosched"] && chain["ost"] && chain["pfs"] {
			chained = true
			break
		}
	}
	if !chained {
		t.Error("no disk span chains up through iosched and ost to a pfs root")
	}

	// Exporters round-trip: the span log parses back, and the Chrome trace
	// is valid JSON with complete events for the IO-path layers.
	var log bytes.Buffer
	if err := tr.WriteSpanLog(&log); err != nil {
		t.Fatal(err)
	}
	parsed, err := telemetry.ReadSpanLog(&log)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(spans) {
		t.Fatalf("span log round trip: %d spans, want %d", len(parsed), len(spans))
	}
	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
			Cat   string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	cats := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			cats[ev.Cat] = true
		}
	}
	for _, l := range []string{"pfs", "mds", "ost", "iosched", "disk"} {
		if !cats[l] {
			t.Errorf("chrome trace has no complete event for layer %q", l)
		}
	}

	// The registry's text rendering is non-empty and mentions a histogram.
	var text strings.Builder
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "disk_service_ns") {
		t.Errorf("WriteText output missing disk_service_ns:\n%s", text.String())
	}
}
