package pfs

import (
	"bytes"
	"encoding/json"
	"testing"

	"redbud/internal/core"
	"redbud/internal/replica"
	"redbud/internal/rpc"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// newReplicated mounts a MiF config with n OSTs, rf-way replication, a
// fault transport (so OSTs can crash), and a short retry budget (so a dead
// server is detected in a couple of simulated timeouts, not eight).
func newReplicated(t *testing.T, n, rf int) *FS {
	t.Helper()
	cfg := MiF(n)
	rc := replica.DefaultConfig()
	rc.RF = rf
	cfg.Replication = &rc
	cfg.RPC.Fault = &rpc.FaultConfig{Seed: 1}
	cfg.RPC.Retry = &rpc.RetryPolicy{TimeoutNs: 2 * sim.Millisecond, MaxRetries: 2}
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestReplicaPlacementNeverColocates(t *testing.T) {
	fs := newReplicated(t, 6, 3)
	for _, name := range []string{"a", "b", "c"} {
		f, err := fs.Create(fs.Root(), name, 0)
		if err != nil {
			t.Fatal(err)
		}
		rep := fs.Replication()
		for c := 0; c < 6; c++ {
			set, _, ok := rep.ReplicaSet(f.Ino(), c)
			if !ok || len(set) != 3 {
				t.Fatalf("%s comp %d: set %v ok=%v, want 3 replicas", name, c, set, ok)
			}
			seen := make(map[int]bool)
			for _, r := range set {
				if seen[r] {
					t.Fatalf("%s comp %d: replicas co-located: %v", name, c, set)
				}
				seen[r] = true
			}
		}
	}
}

func TestReplicatedWriteFanoutAndReadRoundTrip(t *testing.T) {
	fs := newReplicated(t, 4, 2)
	f, err := fs.Create(fs.Root(), "r.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	for i := int64(0); i < 16; i++ {
		if err := f.Write(stream, i*16, 16); err != nil {
			t.Fatal(err)
		}
	}
	fs.Flush()
	if err := f.Read(0, 256); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st := fs.Replication().Stats()
	if st.FanoutWrites == 0 {
		t.Fatal("2-way replication produced no fan-out writes")
	}
	if st.SteeredReads == 0 {
		t.Fatal("reads bypassed steering")
	}
	if st.Failovers != 0 || st.OSTDownEvents != 0 {
		t.Fatalf("healthy run saw failures: %+v", st)
	}
}

// TestSteeringNeverSelectsDownReplica crashes an OST and reads the whole
// file twice: the first pass discovers the crash through its own timeout and
// fails over; once the server is suspected, steering must not route a single
// further read at it — and every read still succeeds.
func TestSteeringNeverSelectsDownReplica(t *testing.T) {
	fs := newReplicated(t, 4, 3)
	f, err := fs.Create(fs.Root(), "s.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	for i := int64(0); i < 16; i++ {
		if err := f.Write(stream, i*16, 16); err != nil {
			t.Fatal(err)
		}
	}
	fs.Flush()
	if err := fs.CrashOST(1); err != nil {
		t.Fatal(err)
	}
	// The crashed server's disk stops accruing busy time while the others
	// keep serving, so load steering is drawn straight to it within a few
	// requests; the failover path must absorb that.
	for i := int64(0); i < 16; i++ {
		if err := f.Read(i*16, 16); err != nil {
			t.Fatalf("read %d across a crashed OST must fail over, got %v", i, err)
		}
	}
	rep := fs.Replication()
	if !rep.Down(1) {
		t.Fatal("crash went undetected over a full-file read")
	}
	st := rep.Stats()
	if st.Failovers == 0 {
		t.Fatal("detection must be counted as a failover")
	}
	routed := rep.SteeredReads(1)
	for i := int64(0); i < 16; i++ {
		if err := f.Read(i*16, 16); err != nil {
			t.Fatal(err)
		}
	}
	if got := rep.SteeredReads(1); got != routed {
		t.Fatalf("steering picked the down OST again: %d -> %d routed reads", routed, got)
	}
}

// TestRepairRestoresReplicationFactor is the core failover property: after
// an OST crash is detected, draining the repair engine rebuilds every
// component back to full strength on the survivors, and the data stays
// readable throughout.
func TestRepairRestoresReplicationFactor(t *testing.T) {
	fs := newReplicated(t, 6, 3)
	f, err := fs.Create(fs.Root(), "k.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	for i := int64(0); i < 24; i++ {
		if err := f.Write(stream, i*16, 16); err != nil {
			t.Fatal(err)
		}
	}
	fs.Flush()
	if err := fs.CrashOST(0); err != nil {
		t.Fatal(err)
	}
	// Writes into the outage detect the crash, skip the dead member, and
	// leave its copies stale.
	for i := int64(0); i < 24; i++ {
		if err := f.Write(stream, i*16, 16); err != nil {
			t.Fatalf("write during outage: %v", err)
		}
	}
	rep := fs.Replication()
	if !rep.Down(0) || rep.UnderReplicated() == 0 {
		t.Fatalf("outage not reflected: down=%v under=%d", rep.Down(0), rep.UnderReplicated())
	}
	if err := fs.RepairDrain(); err != nil {
		t.Fatal(err)
	}
	if !rep.FullyReplicated() {
		t.Fatalf("repair drain left %d components under-replicated", rep.UnderReplicated())
	}
	// The dead server is out of every rebuilt set, with no co-location.
	for c := 0; c < 6; c++ {
		set, _, ok := rep.ReplicaSet(f.Ino(), c)
		if !ok || len(set) != 3 {
			t.Fatalf("comp %d: set %v ok=%v", c, set, ok)
		}
		seen := make(map[int]bool)
		for _, r := range set {
			if r == 0 {
				t.Fatalf("comp %d: rebuilt set %v still holds the dead ost0", c, set)
			}
			if seen[r] {
				t.Fatalf("comp %d: rebuilt set %v co-locates", c, set)
			}
			seen[r] = true
		}
	}
	st := rep.Stats()
	if st.RepairsDone == 0 || st.RepairBlocks == 0 {
		t.Fatalf("repair left no trace: %+v", st)
	}
	// Full read-back with the server still dark.
	if err := f.Read(0, 24*16); err != nil {
		t.Fatalf("read-back after repair: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReviveClearsSuspicionAndCatchesUp revives a crashed OST and lets the
// repair engine catch its stale copies up in place (no set change).
func TestReviveClearsSuspicionAndCatchesUp(t *testing.T) {
	fs := newReplicated(t, 4, 2)
	f, err := fs.Create(fs.Root(), "v.dat", 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	for i := int64(0); i < 8; i++ {
		if err := f.Write(stream, i*16, 16); err != nil {
			t.Fatal(err)
		}
	}
	fs.Flush()
	if err := fs.CrashOST(1); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if err := f.Write(stream, i*16, 16); err != nil {
			t.Fatal(err)
		}
	}
	rep := fs.Replication()
	if !rep.Down(1) {
		t.Fatal("outage writes did not detect the crash")
	}
	if err := fs.ReviveOST(1); err != nil {
		t.Fatal(err)
	}
	if rep.Down(1) {
		t.Fatal("revive must clear the suspicion")
	}
	if rep.UnderReplicated() == 0 {
		t.Fatal("stale copies must keep the file under-replicated after revive")
	}
	if err := fs.RepairDrain(); err != nil {
		t.Fatal(err)
	}
	if !rep.FullyReplicated() {
		t.Fatalf("catch-up drain left %d components under-replicated", rep.UnderReplicated())
	}
	// Catch-up repairs rebuild in place: ost1 is still a member.
	found := false
	for c := 0; c < 4; c++ {
		set, _, _ := rep.ReplicaSet(f.Ino(), c)
		for _, r := range set {
			if r == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("revived ost1 dropped from every replica set")
	}
}

// TestRF1PathIsByteIdentical is the compatibility guard: a mount configured
// with Replication RF=1 must run the legacy unreplicated code and produce
// exactly the telemetry (metrics and simulated clock) of a mount with no
// replication config at all.
func TestRF1PathIsByteIdentical(t *testing.T) {
	run := func(rc *replica.Config) ([]byte, sim.Ns) {
		cfg := MiF(4)
		cfg.Replication = rc
		reg := telemetry.NewRegistry()
		tr := telemetry.NewTracer(nil)
		cfg.Metrics = reg
		fs, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fs.SetTracer(tr)
		stream := core.StreamID{Client: 1, PID: 1}
		for _, name := range []string{"a.dat", "b.dat"} {
			f, err := fs.Create(fs.Root(), name, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < 16; i++ {
				if err := f.Write(stream, i*16, 16); err != nil {
					t.Fatal(err)
				}
			}
			fs.Flush()
			if err := f.Read(0, 256); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return snap, tr.Now()
	}
	baseSnap, baseNow := run(nil)
	rf1Snap, rf1Now := run(&replica.Config{RF: 1})
	if baseNow != rf1Now {
		t.Fatalf("simulated clocks diverged: %d vs %d ns", baseNow, rf1Now)
	}
	if !bytes.Equal(baseSnap, rf1Snap) {
		t.Fatalf("RF=1 telemetry diverged from the unreplicated mount:\n%s\nvs\n%s",
			baseSnap, rf1Snap)
	}
}
