package crashsim

import (
	"fmt"
	"io"

	"redbud/internal/disk"
	"redbud/internal/telemetry"
)

// Target is one system-under-test instance a sweep run drives. The
// factory builds a fresh one per run — crash sweeps never reuse a mount.
type Target interface {
	// Run builds the mount with the injector threaded through it and
	// executes the workload. An armed injector aborts it with a Kill
	// panic, which the engine captures.
	Run(in *Injector) error
	// Recover performs post-crash recovery: journal replay, remount,
	// IO-server power-fail scrub, re-replication. A nil crash means the
	// baseline (no-crash) run.
	Recover(crash *Crash) error
	// Verify returns every invariant violation found after recovery:
	// fsck problems, consistency-walk problems, unreadable acknowledged
	// data, unrestored redundancy. Empty means the run passed.
	Verify() []string
}

// TargetFactory builds a fresh target for one sweep run.
type TargetFactory func() (Target, error)

// SweepConfig parameterizes a sweep.
type SweepConfig struct {
	// Seed derives every run's damage-plan RNG. Two sweeps with equal
	// seeds (and equal workloads) produce byte-identical reports.
	Seed uint64
	// Points is the crash-point set to sweep; nil means Registry().
	Points []Point
	// Metrics, when set, receives layer=crash telemetry: runs, recovered
	// runs, failures, and hit-point coverage.
	Metrics *telemetry.Registry
}

// RunResult is one (point, mode) run's outcome.
type RunResult struct {
	Point      string
	Layer      string
	Mode       disk.TearMode
	Occurrence int
	// Fired reports whether the armed point was reached; a run that
	// completes without firing fails the sweep (dead registry entry).
	Fired bool
	// Damage is the applied plan (zero when not fired).
	Damage disk.Damage
	// RunErr is a workload error other than the injected crash.
	RunErr string
	// RecoverErr is a recovery failure.
	RecoverErr string
	// Violations are the post-recovery invariant violations.
	Violations []string
}

// OK reports whether the run recovered to a consistent state.
func (r *RunResult) OK() bool {
	return r.Fired && r.RunErr == "" && r.RecoverErr == "" && len(r.Violations) == 0
}

// Report is a whole sweep's outcome.
type Report struct {
	// Points is the number of distinct crash points swept.
	Points int
	// Runs holds one entry per (point, mode), in sweep order.
	Runs []RunResult
	// BaselineErr is a failure of the no-crash baseline run (workload
	// error, verification failure, or an unreachable registered point).
	BaselineErr string
}

// Passed reports whether the baseline and every run recovered consistent.
func (r *Report) Passed() bool {
	if r.BaselineErr != "" {
		return false
	}
	for i := range r.Runs {
		if !r.Runs[i].OK() {
			return false
		}
	}
	return true
}

// Failures counts non-OK runs.
func (r *Report) Failures() int {
	n := 0
	for i := range r.Runs {
		if !r.Runs[i].OK() {
			n++
		}
	}
	return n
}

// Write renders the report as deterministic text: one line per run, a
// baseline line, and a summary. No wall-clock state is included, so two
// identical-seed sweeps render byte-identically.
func (r *Report) Write(w io.Writer) {
	if r.BaselineErr != "" {
		fmt.Fprintf(w, "baseline: FAIL: %s\n", r.BaselineErr)
	} else {
		fmt.Fprintf(w, "baseline: ok\n")
	}
	for i := range r.Runs {
		run := &r.Runs[i]
		status := "recovered-consistent"
		detail := ""
		switch {
		case !run.Fired && run.RunErr != "":
			status, detail = "FAIL", "workload error: "+run.RunErr
		case !run.Fired:
			status, detail = "FAIL", "point did not fire"
		case run.RunErr != "":
			status, detail = "FAIL", "workload error: "+run.RunErr
		case run.RecoverErr != "":
			status, detail = "FAIL", "recovery error: "+run.RecoverErr
		case len(run.Violations) > 0:
			status, detail = "FAIL", fmt.Sprintf("%d violations: %s", len(run.Violations), run.Violations[0])
		}
		fmt.Fprintf(w, "%-26s %-7s layer=%-7s occ=%d persisted=%d/%d victim=%d  %s",
			run.Point, run.Mode, run.Layer, run.Occurrence,
			run.Damage.Persisted, run.Damage.Count, run.Damage.Victim, status)
		if detail != "" {
			fmt.Fprintf(w, ": %s", detail)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "sweep: %d points, %d runs, %d failures\n", r.Points, len(r.Runs), r.Failures())
}

// Sweep runs the full crash-point sweep: a no-crash baseline (workload
// must complete, verify clean, and reach every registered point's
// occurrence), then one run per (point, mode) — crash, recover, verify.
func Sweep(cfg SweepConfig, factory TargetFactory) (*Report, error) {
	points := cfg.Points
	if points == nil {
		points = Registry()
	}
	rep := &Report{Points: len(points)}

	var mCrashRuns, mRecovered, mFailed *telemetry.Counter
	if cfg.Metrics != nil {
		labels := telemetry.Labels{"layer": "crash"}
		mCrashRuns = cfg.Metrics.Counter("crash_runs", labels)
		mRecovered = cfg.Metrics.Counter("crash_recovered_consistent", labels)
		mFailed = cfg.Metrics.Counter("crash_failures", labels)
		cfg.Metrics.GaugeFunc("crash_points", labels, func() int64 { return int64(rep.Points) })
	}

	// Baseline: observer injector, no kill. Proves the workload is clean
	// without crashes and that every registered point is reachable at its
	// configured occurrence — a dead entry here is a sweep failure, not a
	// silently skipped point.
	obs := Observe()
	if err := runBaseline(factory, obs); err != nil {
		rep.BaselineErr = err.Error()
	} else {
		for _, p := range points {
			if got := obs.Hits(p.Name); got < p.Occurrence {
				rep.BaselineErr = fmt.Sprintf("point %s: %d hits in baseline, need occurrence %d",
					p.Name, got, p.Occurrence)
				break
			}
		}
	}

	seq := uint64(0)
	for _, p := range points {
		for _, mode := range p.Modes {
			seq++
			res := RunResult{Point: p.Name, Layer: p.Layer, Mode: mode, Occurrence: p.Occurrence}
			runOne(cfg, factory, p, mode, cfg.Seed+seq*0x9E3779B97F4A7C15, &res)
			rep.Runs = append(rep.Runs, res)
			if mCrashRuns != nil {
				mCrashRuns.Add(1)
				if res.OK() {
					mRecovered.Add(1)
				} else {
					mFailed.Add(1)
				}
			}
		}
	}
	return rep, nil
}

// runBaseline runs the workload uncrashed and verifies it.
func runBaseline(factory TargetFactory, in *Injector) error {
	t, err := factory()
	if err != nil {
		return err
	}
	crash, err := Capture(func() error { return t.Run(in) })
	if err != nil {
		return fmt.Errorf("baseline workload: %w", err)
	}
	if crash != nil {
		return fmt.Errorf("baseline crashed at %s with an observer injector", crash.Point)
	}
	if err := t.Recover(nil); err != nil {
		return fmt.Errorf("baseline recover: %w", err)
	}
	if v := t.Verify(); len(v) > 0 {
		return fmt.Errorf("baseline verify: %d violations: %s", len(v), v[0])
	}
	return nil
}

// runOne executes a single armed run into res.
func runOne(cfg SweepConfig, factory TargetFactory, p Point, mode disk.TearMode, seed uint64, res *RunResult) {
	t, err := factory()
	if err != nil {
		res.RunErr = err.Error()
		return
	}
	in := Arm(p.Name, p.Occurrence, mode, seed)
	crash, err := Capture(func() error { return t.Run(in) })
	if err != nil {
		res.RunErr = err.Error()
		return
	}
	if crash == nil {
		return // Fired stays false: the sweep reports the dead point.
	}
	res.Fired = true
	res.Damage = crash.Damage
	if err := t.Recover(crash); err != nil {
		res.RecoverErr = err.Error()
		return
	}
	res.Violations = t.Verify()
}
