package crashsim

import (
	"errors"
	"testing"

	"redbud/internal/disk"
)

// TestInjectorFiresAtOccurrence: an armed injector counts hits across all
// points but fires exactly at the armed point's N-th hit, with a damage
// plan for the burst in flight there — and never fires again afterwards
// (recovery reuses the same mount with the injector still attached).
func TestInjectorFiresAtOccurrence(t *testing.T) {
	in := Arm(PtOstFlushMedia, 3, disk.TearTorn, 9)
	for i := 0; i < 2; i++ {
		if _, ok := in.Hit(PtOstFlushMedia, 16); ok {
			t.Fatalf("hit %d fired before the armed occurrence", i+1)
		}
		if _, ok := in.Hit(PtOstWriteQueue, 4); ok {
			t.Fatal("unarmed point fired")
		}
	}
	dmg, ok := in.Hit(PtOstFlushMedia, 16)
	if !ok {
		t.Fatal("third hit must fire")
	}
	if dmg.Mode != disk.TearTorn || dmg.Count != 16 || dmg.Persisted >= 16 {
		t.Fatalf("damage %+v, want a torn plan over the 16-block burst", dmg)
	}
	if in.Fired() == nil || in.Fired().Point != PtOstFlushMedia {
		t.Fatalf("Fired() = %+v, want the armed point", in.Fired())
	}
	if _, ok := in.Hit(PtOstFlushMedia, 16); ok {
		t.Fatal("a fired injector must never fire again")
	}
	if got := in.Hits(PtOstFlushMedia); got != 4 {
		t.Fatalf("Hits = %d, want 4 (counting continues after the kill)", got)
	}
}

// TestObserverCountsWithoutFiring: the baseline injector counts every hit,
// never fires, and reports the seen points sorted.
func TestObserverCountsWithoutFiring(t *testing.T) {
	obs := Observe()
	for i := 0; i < 5; i++ {
		if _, ok := obs.Hit(PtJournalAppendCommit, 2); ok {
			t.Fatal("observer fired")
		}
	}
	if _, ok := obs.Hit(PtCacheSyncFlush, 0); ok {
		t.Fatal("observer fired")
	}
	if obs.Fired() != nil {
		t.Fatal("observer recorded a crash")
	}
	if got := obs.Hits(PtJournalAppendCommit); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
	pts := obs.HitPoints()
	if len(pts) != 2 || pts[0] != PtCacheSyncFlush || pts[1] != PtJournalAppendCommit {
		t.Fatalf("HitPoints = %v, want sorted pair", pts)
	}
}

// TestNilInjectorIsFree: every hot path threads a possibly-nil injector;
// the nil receiver must be inert for the whole API surface.
func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	if _, ok := in.Hit(PtOstFlushMedia, 8); ok {
		t.Fatal("nil injector fired")
	}
	if in.Fired() != nil || in.Hits(PtOstFlushMedia) != 0 || in.HitPoints() != nil {
		t.Fatal("nil injector leaked state")
	}
}

// TestCaptureKillRoundTrip: Kill panics with the fired *Crash, Capture
// converts exactly that panic into a result, and foreign panics propagate.
func TestCaptureKillRoundTrip(t *testing.T) {
	in := Arm(PtMdfsCommitBegin, 1, disk.TearLost, 3)
	crash, err := Capture(func() error {
		if _, ok := in.Hit(PtMdfsCommitBegin, 2); ok {
			in.Kill()
		}
		t.Fatal("armed first-occurrence hit did not fire")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if crash == nil || crash.Point != PtMdfsCommitBegin || crash.Damage.Persisted != 0 {
		t.Fatalf("crash = %+v, want a lost-mode kill at the armed point", crash)
	}

	sentinel := errors.New("plain failure")
	if crash, err := Capture(func() error { return sentinel }); crash != nil || !errors.Is(err, sentinel) {
		t.Fatalf("Capture = %v, %v; want the workload error passed through", crash, err)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("foreign panic must propagate through Capture")
			}
		}()
		_, _ = Capture(func() error { panic("not a crash") })
	}()
}

// TestIdenticalSeedsDrawIdenticalDamage pins the sweep's replay property
// at the injector level.
func TestIdenticalSeedsDrawIdenticalDamage(t *testing.T) {
	draw := func() disk.Damage {
		in := Arm(PtOstFlushMedia, 1, disk.TearMisdirected, 77)
		dmg, ok := in.Hit(PtOstFlushMedia, 32)
		if !ok {
			t.Fatal("armed hit did not fire")
		}
		return dmg
	}
	if a, b := draw(), draw(); a != b {
		t.Fatalf("same seed drew different plans: %+v vs %+v", a, b)
	}
}

// TestRegistryIsWellFormed: unique names, known layers, at least one mode
// each, occurrences >= 1, and the coverage floor the PR promises (>= 20
// points across the journal, defrag, repair, and cache-flush paths).
func TestRegistryIsWellFormed(t *testing.T) {
	pts := Registry()
	if len(pts) < 20 {
		t.Fatalf("registry has %d points, want >= 20", len(pts))
	}
	layers := map[string]bool{}
	seen := map[string]bool{}
	for _, p := range pts {
		if seen[p.Name] {
			t.Fatalf("duplicate point %s", p.Name)
		}
		seen[p.Name] = true
		if p.Occurrence < 1 {
			t.Fatalf("%s: occurrence %d", p.Name, p.Occurrence)
		}
		if len(p.Modes) == 0 {
			t.Fatalf("%s: no tear modes", p.Name)
		}
		layers[p.Layer] = true
	}
	for _, want := range []string{"journal", "mdfs", "ost", "defrag", "repair", "cache"} {
		if !layers[want] {
			t.Fatalf("registry misses layer %q", want)
		}
	}
}
