// Package crashsim is the deterministic crash-point sweep engine: it arms
// one named crash point in a simulated mount, runs a workload until the
// point fires, kills the whole cluster there with a chosen power-fail tear
// mode (see disk.TearMode), and drives recovery plus invariant
// verification. Sweeping every registered point with every applicable mode
// converts crash-safety from a per-feature claim into a machine-checked
// property.
//
// The mechanism: write-side hot paths (journal append, metadata
// checkpoint, IO-server flush, defrag migration, replica repair, cache
// barriers) call Injector.Hit at named points. An unarmed or nil injector
// makes every Hit free and false — production paths keep their exact
// behaviour, which the no-crash telemetry-identity guard asserts
// byte-for-byte. When the armed point reaches its configured occurrence,
// Hit draws a deterministic damage plan for the in-flight burst; the
// caller applies the plan to its durable state and calls Kill, which
// panics with a *Crash. Every mutex on the unwound paths is released by
// deferred unlocks, so the sweep driver recovers the panic and the mount
// is left holding exactly the state a power failure would leave.
package crashsim

import (
	"sort"

	"redbud/internal/disk"
	"redbud/internal/sim"
)

// Crash point names. The constants are the single source of truth: hot
// paths pass them to Injector.Hit and the registry lists them for the
// sweep. A misspelled literal would register a point that never fires,
// which the sweep reports as a failure — the registry stays honest.
const (
	// MDS metadata path.
	PtMdfsCommitBegin        = "mdfs.commit.begin"        // txn assembled, journal not yet written
	PtJournalAppendRecs      = "journal.append.records"   // power fails tearing the record blocks
	PtJournalAppendCommit    = "journal.append.commit"    // power fails on the commit block
	PtMdfsCheckpointHome     = "mdfs.checkpoint.home"     // power fails mid home write-back
	PtJournalCheckpointReset = "journal.checkpoint.reset" // home written, journal not yet reset
	PtMdfsSyncGap            = "mdfs.sync.gap"            // sync committed the journal, checkpoint not yet run

	// OST data path.
	PtOstCreateObject    = "ost.create.object"    // object creation torn across servers
	PtOstWriteQueue      = "ost.write.queue"      // write accepted, still in the volatile queue
	PtOstFsyncBarrier    = "ost.fsync.barrier"    // fsync requested, flush not yet on media
	PtOstFlushMedia      = "ost.flush.media"      // power fails mid media burst
	PtOstTruncatePartial = "ost.truncate.partial" // truncate frees torn mid-extent

	// Defrag migration (ost.CopyRange / FreeMigrated).
	PtOstMigrateClaim  = "ost.migrate.claim"  // destination claimed, nothing copied
	PtOstMigrateCopy   = "ost.migrate.copy"   // copy in flight, map still points at old home
	PtOstMigrateCommit = "ost.migrate.commit" // map repointed, old extents not yet freed
	PtOstMigrateFree   = "ost.migrate.free"   // old-extent free torn mid-list

	// Replica repair (pfs.RepairStep).
	PtRepairDstReset     = "repair.dst.reset"     // stale destination truncated, copy not started
	PtRepairCopyMedia    = "repair.copy.media"    // repair slice in the destination's queue
	PtRepairCommitLayout = "repair.commit.layout" // copy complete, layout commit not yet sent

	// Client cache flush barriers (pfs).
	PtCacheWriteback    = "cache.writeback.rpc" // dirty run leaving the cache for the servers
	PtCacheBarrierFlush = "cache.barrier.flush" // barrier entered, dirty blocks still cached
	PtCacheBarrierAck   = "cache.barrier.ack"   // barrier pushed to server queues, not yet on media
	PtCacheSyncFlush    = "cache.sync.flush"    // mount-wide sync barrier entered
)

// Point is one registered crash point: where the sweep kills the mount,
// which tear modes are meaningful there, and at which hit occurrence the
// kill fires (so frequent points crash mid-workload, not during setup).
type Point struct {
	// Name is the Injector.Hit identifier (one of the Pt constants).
	Name string
	// Layer labels the report and telemetry (journal, mdfs, ost, defrag,
	// repair, cache).
	Layer string
	// Modes lists the tear modes swept at this point. Points where no
	// media burst is in flight (pure ordering windows) sweep TearLost
	// only — the mode cannot change the outcome there.
	Modes []disk.TearMode
	// Occurrence is the 1-based Hit count at which the kill fires.
	Occurrence int
}

// mediaModes are swept where a multi-block media burst is in flight.
var mediaModes = []disk.TearMode{disk.TearTorn, disk.TearLost, disk.TearMisdirected}

// orderingOnly marks points that are pure ordering windows.
var orderingOnly = []disk.TearMode{disk.TearLost}

// Registry returns the canonical crash-point list the full sweep runs.
// Occurrences are tuned to the crashsweep workload: frequent points fire
// a few hits in (past mount setup), rare points fire on first reach.
func Registry() []Point {
	return []Point{
		{Name: PtMdfsCommitBegin, Layer: "mdfs", Modes: orderingOnly, Occurrence: 3},
		{Name: PtJournalAppendRecs, Layer: "journal", Modes: []disk.TearMode{disk.TearTorn, disk.TearLost}, Occurrence: 3},
		{Name: PtJournalAppendCommit, Layer: "journal", Modes: []disk.TearMode{disk.TearNone, disk.TearTorn, disk.TearLost, disk.TearMisdirected}, Occurrence: 3},
		{Name: PtMdfsCheckpointHome, Layer: "journal", Modes: mediaModes, Occurrence: 1},
		{Name: PtJournalCheckpointReset, Layer: "journal", Modes: orderingOnly, Occurrence: 1},
		{Name: PtMdfsSyncGap, Layer: "mdfs", Modes: orderingOnly, Occurrence: 1},

		{Name: PtOstCreateObject, Layer: "ost", Modes: orderingOnly, Occurrence: 2},
		{Name: PtOstWriteQueue, Layer: "ost", Modes: orderingOnly, Occurrence: 4},
		{Name: PtOstFsyncBarrier, Layer: "ost", Modes: orderingOnly, Occurrence: 2},
		{Name: PtOstFlushMedia, Layer: "ost", Modes: mediaModes, Occurrence: 3},
		{Name: PtOstTruncatePartial, Layer: "ost", Modes: orderingOnly, Occurrence: 1},

		{Name: PtOstMigrateClaim, Layer: "defrag", Modes: orderingOnly, Occurrence: 1},
		{Name: PtOstMigrateCopy, Layer: "defrag", Modes: orderingOnly, Occurrence: 1},
		{Name: PtOstMigrateCommit, Layer: "defrag", Modes: orderingOnly, Occurrence: 1},
		{Name: PtOstMigrateFree, Layer: "defrag", Modes: []disk.TearMode{disk.TearTorn, disk.TearLost}, Occurrence: 1},

		{Name: PtRepairDstReset, Layer: "repair", Modes: orderingOnly, Occurrence: 1},
		{Name: PtRepairCopyMedia, Layer: "repair", Modes: orderingOnly, Occurrence: 1},
		{Name: PtRepairCommitLayout, Layer: "repair", Modes: orderingOnly, Occurrence: 1},

		{Name: PtCacheWriteback, Layer: "cache", Modes: orderingOnly, Occurrence: 2},
		{Name: PtCacheBarrierFlush, Layer: "cache", Modes: orderingOnly, Occurrence: 2},
		{Name: PtCacheBarrierAck, Layer: "cache", Modes: orderingOnly, Occurrence: 2},
		{Name: PtCacheSyncFlush, Layer: "cache", Modes: orderingOnly, Occurrence: 1},
	}
}

// Crash is the panic value an armed injector kills the mount with.
type Crash struct {
	// Point is the crash point that fired.
	Point string
	// Damage is the media damage plan drawn at the point.
	Damage disk.Damage
}

// Injector arms at most one (point, occurrence, mode) per run. The zero
// of *Injector — nil — is a valid never-firing injector: every hot path
// threads it unconditionally and pays one nil check when no sweep is
// active.
type Injector struct {
	point      string
	occurrence int
	mode       disk.TearMode
	rng        *sim.Rand

	hits  map[string]int
	fired *Crash
}

// Arm returns an injector that kills the mount the occurrence-th time the
// named point is hit, with a damage plan drawn in the given mode from a
// deterministic seed. An empty point name returns a pure observer: it
// never fires but still counts hits (the sweep's baseline run uses it to
// prove every registered point is reachable).
func Arm(point string, occurrence int, mode disk.TearMode, seed uint64) *Injector {
	if occurrence < 1 {
		occurrence = 1
	}
	return &Injector{
		point:      point,
		occurrence: occurrence,
		mode:       mode,
		rng:        sim.NewRand(seed),
		hits:       make(map[string]int),
	}
}

// Observe returns a never-firing hit counter.
func Observe() *Injector { return Arm("", 1, disk.TearNone, 1) }

// Hit records one pass through the named crash point with inflight blocks
// in the current media burst. It returns a damage plan and true exactly
// when this hit is the armed kill; the caller then applies the plan to its
// durable state and calls Kill. Nil-safe: a nil injector returns false.
func (in *Injector) Hit(point string, inflight int64) (disk.Damage, bool) {
	if in == nil {
		return disk.Damage{}, false
	}
	in.hits[point]++
	if in.fired != nil || point != in.point || in.hits[point] != in.occurrence {
		return disk.Damage{}, false
	}
	d := disk.PlanDamage(in.mode, in.rng, inflight)
	in.fired = &Crash{Point: point, Damage: d}
	return d, true
}

// Kill panics with the Crash recorded by the firing Hit. Calling it
// without a fired hit is a programming error.
func (in *Injector) Kill() {
	if in == nil || in.fired == nil {
		panic("crashsim: Kill without a fired Hit")
	}
	panic(in.fired)
}

// Fired returns the recorded crash, if the injector killed the mount.
func (in *Injector) Fired() *Crash {
	if in == nil {
		return nil
	}
	return in.fired
}

// Hits returns the hit count of one point.
func (in *Injector) Hits(point string) int {
	if in == nil {
		return 0
	}
	return in.hits[point]
}

// HitPoints returns every point name seen, sorted — deterministic input
// for reports.
func (in *Injector) HitPoints() []string {
	if in == nil {
		return nil
	}
	out := make([]string, 0, len(in.hits))
	for p := range in.hits {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Capture invokes fn and converts an injector kill into a *Crash result;
// every other panic propagates. It returns (nil, err) when fn finished
// without crashing.
func Capture(fn func() error) (crash *Crash, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(*Crash)
			if !ok {
				panic(r)
			}
			crash = c
		}
	}()
	return nil, fn()
}
