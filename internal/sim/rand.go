package sim

import "math/bits"

// Rand is a small, deterministic pseudo-random number generator
// (SplitMix64). Every workload generator in this repository takes an
// explicit seed and derives all randomness from a Rand, so identical seeds
// reproduce identical request streams, allocations, and therefore identical
// simulated results.
//
// math/rand would also do, but a self-contained generator keeps the
// algorithm (and thus the byte-for-byte reproducibility of EXPERIMENTS.md)
// independent of the Go release.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the same
// seed produce the same sequence.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed + 0x9E3779B97F4A7C15}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63n returns a uniform pseudo-random int64 in [0, n). It panics if
// n <= 0.
//
// Draws are unbiased: a plain Uint64() % n over-weights the low residues
// whenever n does not divide 2^64 (for n near 2^63 the skew reaches a
// factor of two). Instead the draw is masked to the smallest power of two
// covering n and rejected until it lands inside [0, n) — at worst half the
// masked range is rejected, so the loop takes < 2 draws in expectation.
// For powers of two the mask alone suffices and the accepted values match
// the old modulo sequence exactly.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	mask := uint64(1)<<bits.Len64(uint64(n)-1) - 1
	for {
		if v := r.Uint64() & mask; v < uint64(n) {
			return int64(v)
		}
	}
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent generator from r. Forked generators let
// concurrent workload streams draw randomness without sharing state while
// staying fully determined by the root seed.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64())
}
