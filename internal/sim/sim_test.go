package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock should read 0")
	}
	if got := c.Advance(100); got != 100 {
		t.Fatalf("Advance = %d, want 100", got)
	}
	if got := c.AdvanceTo(50); got != 100 {
		t.Fatalf("AdvanceTo backwards moved the clock: %d", got)
	}
	if got := c.AdvanceTo(250); got != 250 {
		t.Fatalf("AdvanceTo = %d, want 250", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset should rewind to 0")
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance should panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestMBps(t *testing.T) {
	if got := MBps(170e6, Second); got != 170 {
		t.Fatalf("MBps = %g, want 170", got)
	}
	if got := MBps(100, 0); got != 0 {
		t.Fatalf("MBps with zero duration = %g, want 0", got)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same sequence")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRand(1)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked generators should differ")
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRand(5)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}
