package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock should read 0")
	}
	if got := c.Advance(100); got != 100 {
		t.Fatalf("Advance = %d, want 100", got)
	}
	if got := c.AdvanceTo(50); got != 100 {
		t.Fatalf("AdvanceTo backwards moved the clock: %d", got)
	}
	if got := c.AdvanceTo(250); got != 250 {
		t.Fatalf("AdvanceTo = %d, want 250", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset should rewind to 0")
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance should panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestMBps(t *testing.T) {
	if got := MBps(170e6, Second); got != 170 {
		t.Fatalf("MBps = %g, want 170", got)
	}
	if got := MBps(100, 0); got != 0 {
		t.Fatalf("MBps with zero duration = %g, want 0", got)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same sequence")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

// TestInt63nUnbiasedLargeN is the regression test for the modulo-bias bug:
// the old Uint64()%n implementation over-weighted low residues whenever n
// did not divide 2^64. For n = 3<<61 the residues below 1<<62 occur three
// times in [0, 2^64) and the rest only twice, so P(v < n/2) was 9/16 =
// 0.5625 instead of 0.5 — a ~12σ deviation at 10k samples, far outside the
// 0.03 tolerance here. Rejection sampling restores uniformity.
func TestInt63nUnbiasedLargeN(t *testing.T) {
	const n = int64(3) << 61
	r := NewRand(1234)
	below := 0
	const samples = 10000
	for i := 0; i < samples; i++ {
		v := r.Int63n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if v < n/2 {
			below++
		}
	}
	frac := float64(below) / samples
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("Int63n(3<<61) biased: fraction below midpoint = %.4f, want ~0.5", frac)
	}
}

// TestInt63nUniformSmallN chi-square-checks the bucket counts for a small
// non-power-of-two n: all residues must be hit with near-equal frequency.
func TestInt63nUniformSmallN(t *testing.T) {
	const n = 10
	const samples = 100000
	r := NewRand(99)
	var counts [n]int
	for i := 0; i < samples; i++ {
		counts[r.Int63n(n)]++
	}
	// Chi-square with 9 degrees of freedom: p=0.001 critical value is
	// 27.9; a correct generator stays far below, a broken one explodes.
	expected := float64(samples) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.9 {
		t.Fatalf("Int63n(10) non-uniform: chi-square = %.1f (counts %v)", chi2, counts)
	}
}

// TestInt63nPowerOfTwoSequenceStable pins the power-of-two draw sequence:
// the rejection fix masks without rejecting when n is a power of two, so
// those sequences must match the pre-fix modulo sequence (Uint64()&(n-1)).
func TestInt63nPowerOfTwoSequenceStable(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		want := int64(b.Uint64() & 63)
		if got := a.Int63n(64); got != want {
			t.Fatalf("draw %d: Int63n(64) = %d, want masked-draw %d", i, got, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRand(1)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked generators should differ")
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRand(5)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}
