package sim

import (
	"fmt"
	"sync"
)

// Domain is one independently advancing region of simulated time: a worker
// goroutine with a local Clock that executes submitted tasks in FIFO order.
// One domain owns one set of devices (an OST's disk and its fabric link, in
// the PFS mount) — only its tasks touch them, so device state needs no
// extra locking and its timeline can run ahead of (or behind) every other
// domain between rendezvous points.
//
// Causality crosses domains only at rendezvous: Group.Rendezvous drains all
// pending tasks and folds every domain clock into the coordinator clock via
// AdvanceTo, exactly the way parallel device timelines have always been
// folded into one elapsed-time figure in this simulator. Between rendezvous
// points domains share nothing, so the execution order across domains is
// unobservable — the property that keeps parallel runs byte-identical to
// serial ones.
type Domain struct {
	group *Group
	index int
	clk   Clock
	tasks chan Task
}

// Task is one unit of domain work, passed by value so submission performs
// no allocation on the hot path. Fn should be a long-lived function (built
// once per coordinator, not per call); the remaining fields are its
// per-call operands, forwarded verbatim. Ptr holds a single pointer-shaped
// operand (storing a pointer in an interface does not allocate); A, B and
// Aux carry scalar operands.
type Task struct {
	// Fn executes the task on the domain worker, receiving the domain's
	// local clock and the task itself (for its operand fields).
	Fn func(clk *Clock, t Task) error
	// Index is the submission domain's index, set by Submit.
	Index int
	// A and B are scalar operands (offsets, counts).
	A, B int64
	// Aux is an extra packed scalar operand.
	Aux uint64
	// Ptr is a pointer operand.
	Ptr any
}

// Clock returns the domain's local clock. Only the domain's own tasks and
// post-rendezvous coordinator code may touch it.
func (d *Domain) Clock() *Clock { return &d.clk }

// Index returns the domain's position in its group.
func (d *Domain) Index() int { return d.index }

// run is the domain worker: it executes tasks in submission order and
// records the domain's first error of the current rendezvous window.
func (d *Domain) run() {
	defer d.group.done.Done()
	for t := range d.tasks {
		err := t.Fn(&d.clk, t)
		if err != nil && d.group.errs[d.index] == nil {
			d.group.errs[d.index] = err
		}
		d.group.pending.Done()
	}
}

// Group is a set of clock domains advancing concurrently between shared
// rendezvous points, plus the coordinator clock their timelines fold into.
// A Group is driven by a single coordinator goroutine: Submit and
// Rendezvous must not be called concurrently with each other.
type Group struct {
	coord   *Clock
	domains []*Domain
	// pending counts submitted-but-unfinished tasks in the current
	// rendezvous window; done tracks worker goroutine exit for Close.
	pending sync.WaitGroup
	done    sync.WaitGroup
	// errs[i] is domain i's first error since the last rendezvous; it is
	// written only by domain i's worker and read by the coordinator after
	// pending.Wait(), which orders the accesses.
	errs   []error
	closed bool
}

// taskBuffer bounds each domain's submission queue. The coordinator blocks
// when a domain falls this far behind — natural backpressure, and safe
// because domains never submit to each other.
const taskBuffer = 64

// NewGroup builds n domains folding into the coordinator clock. The clock
// counts its live domains; Clock.Reset panics while any are attached (a
// reset mid-parallel-run would silently corrupt rendezvous ordering), so
// groups must be Closed before their coordinator clock is reset.
func NewGroup(coord *Clock, n int) *Group {
	if n <= 0 {
		panic(fmt.Sprintf("sim: NewGroup with %d domains", n))
	}
	g := &Group{coord: coord, errs: make([]error, n)}
	for i := 0; i < n; i++ {
		d := &Domain{group: g, index: i, tasks: make(chan Task, taskBuffer)}
		g.domains = append(g.domains, d)
		g.done.Add(1)
		go d.run()
	}
	coord.attachDomains(n)
	return g
}

// Len returns the number of domains.
func (g *Group) Len() int { return len(g.domains) }

// Domain returns domain i.
func (g *Group) Domain(i int) *Domain { return g.domains[i] }

// Submit enqueues t on domain i, stamping t.Index = i. Tasks on one domain
// run in submission order; tasks on different domains run concurrently.
// t.Fn receives the domain's local clock and may advance it; its error
// (the first per domain per window) is surfaced by the next Rendezvous.
// The channel send orders the coordinator's preceding writes before the
// task body, so per-window state published in coordinator fields (rather
// than closed over, which would allocate) is safe to read from Fn.
func (g *Group) Submit(i int, t Task) {
	if g.closed {
		panic("sim: Submit on closed Group")
	}
	t.Index = i
	g.pending.Add(1)
	g.domains[i].tasks <- t
}

// Rendezvous is the cross-domain barrier: it waits for every submitted task
// to finish, folds each domain clock into the coordinator clock (AdvanceTo
// the max), then pulls every domain clock up to the folded time so all
// timelines restart the next window synchronized. It returns the pending
// error of the lowest-indexed failed domain, clearing the error slots.
func (g *Group) Rendezvous() error {
	g.pending.Wait()
	for _, d := range g.domains {
		g.coord.AdvanceTo(d.clk.Now())
	}
	now := g.coord.Now()
	var err error
	for i, d := range g.domains {
		d.clk.AdvanceTo(now)
		if g.errs[i] != nil && err == nil {
			err = g.errs[i]
		}
		g.errs[i] = nil
	}
	return err
}

// Close drains outstanding tasks, stops the workers, and detaches the
// domains from the coordinator clock (re-arming Clock.Reset). A closed
// group must not be used again.
func (g *Group) Close() {
	if g.closed {
		return
	}
	g.closed = true
	g.pending.Wait()
	for _, d := range g.domains {
		close(d.tasks)
	}
	g.done.Wait()
	g.coord.detachDomains(len(g.domains))
}
