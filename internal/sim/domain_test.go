package sim

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestGroupFoldsMaxTimeline checks the core rendezvous contract: the
// coordinator clock advances to the slowest domain's local time, and every
// domain restarts the next window from the folded instant.
func TestGroupFoldsMaxTimeline(t *testing.T) {
	var coord Clock
	g := NewGroup(&coord, 3)
	defer g.Close()

	costs := []Ns{30, 100, 70}
	for i, c := range costs {
		c := c
		g.Submit(i, Task{Fn: func(clk *Clock, _ Task) error {
			clk.Advance(c)
			return nil
		}})
	}
	if err := g.Rendezvous(); err != nil {
		t.Fatalf("rendezvous: %v", err)
	}
	if got := coord.Now(); got != 100 {
		t.Fatalf("coordinator folded to %d, want max timeline 100", got)
	}
	for i := 0; i < g.Len(); i++ {
		if got := g.Domain(i).Clock().Now(); got != 100 {
			t.Fatalf("domain %d restarts at %d, want synchronized 100", i, got)
		}
	}

	// Second window: advances accumulate from the folded instant.
	g.Submit(0, Task{Fn: func(clk *Clock, _ Task) error { clk.Advance(5); return nil }})
	if err := g.Rendezvous(); err != nil {
		t.Fatalf("rendezvous 2: %v", err)
	}
	if got := coord.Now(); got != 105 {
		t.Fatalf("coordinator at %d after second window, want 105", got)
	}
}

// TestGroupFIFOPerDomain checks tasks on one domain run in submission
// order even under load.
func TestGroupFIFOPerDomain(t *testing.T) {
	var coord Clock
	g := NewGroup(&coord, 2)
	defer g.Close()

	var order []int
	for i := 0; i < 100; i++ {
		i := i
		g.Submit(0, Task{Fn: func(_ *Clock, _ Task) error {
			order = append(order, i) // only domain 0's worker appends
			return nil
		}})
		g.Submit(1, Task{Fn: func(clk *Clock, _ Task) error { clk.Advance(1); return nil }})
	}
	if err := g.Rendezvous(); err != nil {
		t.Fatalf("rendezvous: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("domain 0 ran task %d at position %d: order not FIFO", v, i)
		}
	}
}

// TestGroupErrorLowestDomainWins checks deterministic error selection: the
// lowest-indexed failed domain's first error surfaces, regardless of
// completion order, and slots clear for the next window.
func TestGroupErrorLowestDomainWins(t *testing.T) {
	var coord Clock
	g := NewGroup(&coord, 3)
	defer g.Close()

	errLow := errors.New("low")
	errHigh := errors.New("high")
	g.Submit(2, Task{Fn: func(_ *Clock, _ Task) error { return errHigh }})
	g.Submit(1, Task{Fn: func(_ *Clock, _ Task) error { return errLow }})
	g.Submit(1, Task{Fn: func(_ *Clock, _ Task) error { return errors.New("second on same domain") }})
	if err := g.Rendezvous(); err != errLow {
		t.Fatalf("rendezvous error = %v, want %v (lowest domain, first task)", err, errLow)
	}
	// Slots cleared: a clean window reports no error.
	g.Submit(0, Task{Fn: func(_ *Clock, _ Task) error { return nil }})
	if err := g.Rendezvous(); err != nil {
		t.Fatalf("second rendezvous error = %v, want nil", err)
	}
}

// TestClockResetPanicsWithLiveDomains is the Reset misuse guard: resetting
// the coordinator clock while domains are attached must panic, and must
// work again after the group closes.
func TestClockResetPanicsWithLiveDomains(t *testing.T) {
	var coord Clock
	coord.Advance(42)
	g := NewGroup(&coord, 2)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Clock.Reset with live domains did not panic")
			}
		}()
		coord.Reset()
	}()
	if got := coord.Now(); got != 42 {
		t.Fatalf("clock moved to %d during refused reset, want 42", got)
	}

	g.Close()
	coord.Reset() // must not panic once domains detach
	if got := coord.Now(); got != 0 {
		t.Fatalf("clock at %d after reset, want 0", got)
	}
}

// TestSubmitZeroAlloc pins the value-task contract: submitting work with a
// prebuilt Fn and scalar operands, then rendezvousing, performs no
// allocation — the property the PFS data path relies on.
func TestSubmitZeroAlloc(t *testing.T) {
	var coord Clock
	g := NewGroup(&coord, 2)
	defer g.Close()

	var sum atomic.Int64
	fn := func(clk *Clock, tk Task) error {
		sum.Add(tk.A + int64(tk.Index))
		return nil
	}
	allocs := testing.AllocsPerRun(100, func() {
		g.Submit(0, Task{Fn: fn, A: 1})
		g.Submit(1, Task{Fn: fn, A: 2})
		if err := g.Rendezvous(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Submit+Rendezvous allocates %.1f objects/op, want 0", allocs)
	}
	if sum.Load() == 0 {
		t.Fatal("tasks did not run")
	}
}

// TestGroupConcurrentExecution checks domains actually overlap: with
// GOMAXPROCS>1 available this exercises real concurrency, but the property
// asserted (all tasks ran, total advance correct) holds on any scheduler.
func TestGroupConcurrentExecution(t *testing.T) {
	var coord Clock
	const n = 4
	g := NewGroup(&coord, n)
	defer g.Close()

	var ran atomic.Int64
	for round := 0; round < 50; round++ {
		for i := 0; i < n; i++ {
			g.Submit(i, Task{Fn: func(clk *Clock, _ Task) error {
				clk.Advance(2)
				ran.Add(1)
				return nil
			}})
		}
		if err := g.Rendezvous(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if got := ran.Load(); got != 50*n {
		t.Fatalf("ran %d tasks, want %d", got, 50*n)
	}
	if got := coord.Now(); got != 100 {
		t.Fatalf("coordinator at %d, want 100 (50 windows × 2ns lockstep)", got)
	}
}
