// Package sim provides the small simulation substrate shared by every
// component of the Redbud reproduction: a virtual clock measured in integer
// nanoseconds, and deterministic pseudo-random helpers.
//
// All timing in this repository is simulated. Components never consult the
// wall clock; they advance a Clock by the cost computed from the device
// models. This keeps every experiment deterministic and hardware independent.
package sim

import (
	"fmt"
	"sync"
)

// Ns is a duration or instant in simulated nanoseconds.
type Ns = int64

// Common duration units, in simulated nanoseconds.
const (
	Microsecond Ns = 1_000
	Millisecond Ns = 1_000_000
	Second      Ns = 1_000_000_000
)

// Clock is a monotonically advancing virtual clock. The zero value is a
// clock at time 0, ready to use. Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now Ns
	// domains counts the live clock domains folding into this clock (see
	// NewGroup). While any are attached, Reset panics: rewinding the fold
	// point of concurrently advancing timelines would silently corrupt
	// rendezvous ordering.
	domains int
}

// Now returns the current simulated time.
func (c *Clock) Now() Ns {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d nanoseconds and returns the new time.
// Advance panics if d is negative: simulated time never flows backwards.
func (c *Clock) Advance(d Ns) Ns {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %d", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to instant t if t is later than the
// current time; otherwise the clock is unchanged. It returns the resulting
// time. AdvanceTo is how parallel device timelines are folded into one
// elapsed-time figure: the caller advances to the max of the component
// completion times.
func (c *Clock) AdvanceTo(t Ns) Ns {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to time zero. Only test and benchmark harnesses
// should call Reset, between independent runs. Reset panics while clock
// domains are attached (Close their Group first): a reset mid-parallel-run
// would rewind the rendezvous fold point under live timelines.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.domains > 0 {
		panic(fmt.Sprintf("sim: Clock.Reset with %d live domains attached", c.domains))
	}
	c.now = 0
}

// attachDomains registers n live domains folding into this clock.
func (c *Clock) attachDomains(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.domains += n
}

// detachDomains unregisters n domains.
func (c *Clock) detachDomains(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.domains -= n
	if c.domains < 0 {
		panic("sim: detachDomains below zero")
	}
}

// Seconds converts a simulated duration to floating-point seconds.
func Seconds(d Ns) float64 { return float64(d) / float64(Second) }

// MBps computes throughput in megabytes per second (1 MB = 1e6 bytes) for
// the given byte count moved over the given simulated duration. It returns 0
// when the duration is zero so callers never divide by zero on empty runs.
func MBps(bytes int64, d Ns) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / Seconds(d)
}
