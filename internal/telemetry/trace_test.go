package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"redbud/internal/sim"
)

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Advance(100)
	tr.Mark("phase", "x")
	sp := tr.Start("disk", "read", 0)
	sp.Annotate("k", "v")
	sp.Event("e")
	sp.End()
	if sp.ID() != 0 || tr.Now() != 0 || tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer must be a transparent no-op")
	}
}

func TestSpanNestingAndClock(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Start("pfs", "write", 0)
	tr.Advance(10)
	child := tr.Start("disk", "read", root.ID())
	tr.Advance(40)
	child.End()
	tr.Advance(5)
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Commit order: children end first.
	c, r := spans[0], spans[1]
	if c.Parent != r.ID {
		t.Fatalf("child parent = %d, want %d", c.Parent, r.ID)
	}
	if c.Begin != 10 || c.End != 50 || c.Dur() != 40 {
		t.Fatalf("child interval [%d,%d]", c.Begin, c.End)
	}
	if r.Begin != 0 || r.End != 55 {
		t.Fatalf("root interval [%d,%d]", r.Begin, r.End)
	}
	if tr.Now() != sim.Ns(55) {
		t.Fatalf("clock = %d", tr.Now())
	}
}

func TestSpanCapCountsDrops(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetMaxSpans(2)
	for i := 0; i < 5; i++ {
		tr.Start("disk", "op", 0).End()
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("len/dropped = %d/%d, want 2/3", tr.Len(), tr.Dropped())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset should clear spans and the drop counter")
	}
	if tr.Now() == 0 {
		// The clock keeps running across Reset only if time had passed;
		// nothing advanced it here, so 0 is correct.
		tr.Advance(1)
		if tr.Now() != 1 {
			t.Fatal("clock must survive Reset")
		}
	}
}

func TestSpanLogRoundTrip(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.Start("ost", "write", 0)
	sp.Annotate("blocks", "64")
	tr.Advance(123)
	sp.Event("positioning")
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteSpanLog(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpanLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("round-tripped %d spans, want 1", len(got))
	}
	s := got[0]
	if s.Layer != "ost" || s.Name != "write" || s.Dur() != 123 {
		t.Fatalf("span = %+v", s)
	}
	if len(s.Attrs) != 1 || s.Attrs[0].Key != "blocks" || len(s.Events) != 1 {
		t.Fatalf("attrs/events lost: %+v", s)
	}

	if _, err := ReadSpanLog(bytes.NewBufferString(`{"format":"other/9","spans":[]}`)); err == nil {
		t.Fatal("foreign format must be rejected")
	}
}

func TestChromeTraceShape(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.Start("pfs", "write", 0)
	tr.Advance(1000)
	d := tr.Start("disk", "write", root.ID())
	tr.Advance(2000)
	d.Event("positioning")
	d.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			TS    float64           `json:"ts"`
			Dur   float64           `json:"dur"`
			TID   int               `json:"tid"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	var meta, complete, instant int
	tids := make(map[string]int)
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
			tids[ev.Args["name"]] = ev.TID
		case "X":
			complete++
		case "i":
			instant++
		}
	}
	if meta != 2 || complete != 2 || instant != 1 {
		t.Fatalf("event counts M/X/i = %d/%d/%d", meta, complete, instant)
	}
	// Track order follows the IO path: pfs above disk.
	if tids["pfs"] >= tids["disk"] {
		t.Fatalf("tid order: pfs=%d disk=%d", tids["pfs"], tids["disk"])
	}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" && ev.Name == "write" && ev.TID == tids["disk"] {
			if ev.TS != 1.0 || ev.Dur != 2.0 {
				t.Fatalf("disk event ts/dur = %g/%g µs, want 1/2", ev.TS, ev.Dur)
			}
		}
	}
}
