package telemetry

import "testing"

// TestCanonInterned checks canonical label strings are shared: two equal
// label sets (in any map order) canonicalize to the same interned string.
func TestCanonInterned(t *testing.T) {
	a := Labels{"layer": "ost", "ost": "3", "fs": "MiF"}.canon()
	b := Labels{"fs": "MiF", "ost": "3", "layer": "ost"}.canon()
	if a != b {
		t.Fatalf("canon mismatch: %q vs %q", a, b)
	}
	if want := "fs=MiF,layer=ost,ost=3"; a != want {
		t.Fatalf("canon = %q, want %q", a, want)
	}
	if Labels(nil).canon() != "" || (Labels{}).canon() != "" {
		t.Fatal("empty labels must canonicalize to \"\"")
	}
}

// TestLookupZeroAllocOnHit is the interning guarantee the RPC hot path
// relies on: re-resolving an already-registered metric identity performs no
// allocation (the canonical string is interned and the registry key is
// assembled on the stack).
func TestLookupZeroAllocOnHit(t *testing.T) {
	reg := NewRegistry()
	labels := Labels{"layer": "rpc", "op": "obj.write", "fs": "MiF"}
	c := reg.Counter("rpc_calls", labels)
	allocs := testing.AllocsPerRun(200, func() {
		if reg.Counter("rpc_calls", labels) != c {
			t.Fatal("lookup returned a different counter")
		}
	})
	if allocs != 0 {
		t.Fatalf("re-registering a known counter allocates %.1f objects/op, want 0", allocs)
	}
}
