package telemetry

import (
	"strconv"
	"sync"

	"redbud/internal/sim"
)

// SpanID identifies one span within a Tracer. Zero means "no span" and is
// the parent of root spans.
type SpanID int64

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is a point-in-time marker inside a span (a merge, a positioning, a
// phase boundary), stamped on the simulated timeline.
type Event struct {
	Name string `json:"name"`
	At   sim.Ns `json:"at"`
}

// Span is one completed interval on the simulated timeline, attributed to a
// layer (pfs, mds, net, ost, iosched, disk, journal, ...).
type Span struct {
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"`
	Layer  string  `json:"layer"`
	Name   string  `json:"name"`
	Begin  sim.Ns  `json:"begin"`
	End    sim.Ns  `json:"end"`
	Attrs  []Attr  `json:"attrs,omitempty"`
	Events []Event `json:"events,omitempty"`
}

// Dur returns the span's duration.
func (s Span) Dur() sim.Ns { return s.End - s.Begin }

// DefaultMaxSpans bounds a tracer's retained spans. Benchmark runs issue
// hundreds of thousands of requests; the cap keeps a whole-run trace at a
// size chrome://tracing still opens, dropping the tail and counting drops.
const DefaultMaxSpans = 200_000

// Tracer records spans on a simulated clock. All methods are safe for
// concurrent use, and every method is safe on a nil receiver (it becomes a
// no-op) so instrumented code paths need no tracing-enabled conditionals.
type Tracer struct {
	clock *sim.Clock

	mu      sync.Mutex
	spans   []Span
	nextID  SpanID
	max     int
	dropped int64
}

// NewTracer builds a tracer over the given clock; a nil clock gets a fresh
// one starting at time zero. The clock is the trace's timeline: device and
// CPU model costs are folded into it via Advance as instrumented layers
// incur them.
func NewTracer(clock *sim.Clock) *Tracer {
	if clock == nil {
		clock = &sim.Clock{}
	}
	return &Tracer{clock: clock, max: DefaultMaxSpans}
}

// Clock returns the tracer's timeline clock (nil for a nil tracer).
func (t *Tracer) Clock() *sim.Clock {
	if t == nil {
		return nil
	}
	return t.clock
}

// SetMaxSpans bounds the retained span count; n <= 0 means unbounded.
func (t *Tracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.max = n
	t.mu.Unlock()
}

// Now returns the current simulated time (0 for a nil tracer).
func (t *Tracer) Now() sim.Ns {
	if t == nil {
		return 0
	}
	return t.clock.Now()
}

// Advance moves the trace timeline forward by the given cost. Instrumented
// layers call it with the simulated durations their device/CPU models
// return, which serializes the work of one request into a readable
// timeline.
func (t *Tracer) Advance(d sim.Ns) {
	if t == nil || d <= 0 {
		return
	}
	t.clock.Advance(d)
}

// ActiveSpan is an in-progress span. Methods on a nil ActiveSpan are
// no-ops, so call sites stay unconditional whether or not tracing is on.
type ActiveSpan struct {
	t    *Tracer
	span Span
	mu   sync.Mutex
}

// Start opens a span at the current simulated time. On a nil tracer it
// returns nil, which every ActiveSpan method tolerates.
func (t *Tracer) Start(layer, name string, parent SpanID) *ActiveSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &ActiveSpan{t: t, span: Span{
		ID:     id,
		Parent: parent,
		Layer:  layer,
		Name:   name,
		Begin:  t.clock.Now(),
	}}
}

// ID returns the span's identifier (0 for nil).
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.span.ID
}

// Annotate attaches a key/value attribute.
func (s *ActiveSpan) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// AnnotateInt attaches an integer attribute, formatting it only when the
// span is live — the untraced data path annotates every op, and eager
// fmt.Sprint at those call sites showed up in CPU profiles.
func (s *ActiveSpan) AnnotateInt(key string, value int64) {
	if s == nil {
		return
	}
	s.Annotate(key, strconv.FormatInt(value, 10))
}

// Event records a point-in-time marker at the current simulated time.
func (s *ActiveSpan) Event(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.span.Events = append(s.span.Events, Event{Name: name, At: s.t.clock.Now()})
	s.mu.Unlock()
}

// End closes the span at the current simulated time and commits it to the
// tracer.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.span.End = s.t.clock.Now()
	sp := s.span
	s.mu.Unlock()
	s.t.commit(sp)
}

// Mark records an instantaneous root span — a global timeline marker such
// as a benchmark phase boundary.
func (t *Tracer) Mark(layer, name string) {
	if t == nil {
		return
	}
	sp := t.Start(layer, name, 0)
	sp.End()
}

// commit appends a finished span, honouring the retention cap.
func (t *Tracer) commit(sp Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.max > 0 && len(t.spans) >= t.max {
		t.dropped++
		return
	}
	t.spans = append(t.spans, sp)
}

// Spans returns a copy of the recorded spans in commit order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the retained span count.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns the number of spans discarded over the retention cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset drops every recorded span (the timeline clock keeps running, so a
// multi-phase harness gets disjoint per-phase traces).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = nil
	t.dropped = 0
}
