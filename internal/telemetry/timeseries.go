package telemetry

import (
	"sync"

	"redbud/internal/sim"
)

// Series defaults. A 100 ms window over 4096 buckets covers ~410 s of
// simulated time per registry — longer than any single mifbench phase —
// while keeping a snapshot small enough to embed in BENCH_*.json.
const (
	DefaultSeriesWindow  sim.Ns = 100 * sim.Millisecond
	DefaultSeriesBuckets        = 4096
)

// Series is a windowed time-series: samples are bucketed by simulated time
// into fixed-width windows held in a ring buffer. It is the registry's
// "metric over time" instrument — counters sampled into it yield
// throughput curves (per-window sums), gauges yield level curves
// (per-window last value), which is how experiments report aging
// trajectories instead of single end-of-run numbers.
//
// The ring retains the most recent Buckets windows; observations that land
// beyond the ring advance it, discarding the oldest windows and counting
// them as dropped (no silent truncation). Samples always carry their own
// simulated timestamp, so a series is exactly as deterministic as the
// clock that feeds it.
type Series struct {
	mu     sync.Mutex
	window sim.Ns
	// buckets is the ring; bucket b (absolute index at/window) lives at
	// buckets[b%len(buckets)] while lo <= b < lo+len(buckets).
	buckets []seriesBucket
	lo      int64 // lowest retained absolute bucket index
	hi      int64 // highest observed absolute bucket index
	started bool  // false until the first observation fixes lo
	dropped int64 // windows pushed out of the ring, plus late samples
}

// seriesBucket accumulates one window.
type seriesBucket struct {
	sum  int64
	n    int64
	last int64
}

// newSeries builds a series with the given window width and ring capacity
// (defaults applied for non-positive values).
func newSeries(window sim.Ns, buckets int) *Series {
	if window <= 0 {
		window = DefaultSeriesWindow
	}
	if buckets <= 0 {
		buckets = DefaultSeriesBuckets
	}
	return &Series{window: window, buckets: make([]seriesBucket, buckets)}
}

// Window returns the bucket width.
func (s *Series) Window() sim.Ns {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window
}

// bucketFor returns the ring slot for absolute bucket index b, advancing
// the ring (and dropping old windows) as needed. Callers hold s.mu. It
// returns nil for a late sample older than the retained range.
func (s *Series) bucketFor(b int64) *seriesBucket {
	n := int64(len(s.buckets))
	if !s.started {
		s.started = true
		s.lo, s.hi = b, b
	}
	if b < s.lo {
		s.dropped++
		return nil
	}
	for b >= s.lo+n {
		// Evict the oldest window to make room at the head.
		slot := &s.buckets[s.lo%n]
		if slot.n > 0 {
			s.dropped++
		}
		*slot = seriesBucket{}
		s.lo++
	}
	if b > s.hi {
		s.hi = b
	}
	return &s.buckets[b%n]
}

// Add records v at simulated instant at, summing into the window
// containing at. A sample at an exact window boundary k*window belongs to
// window k (half-open windows [k*w, (k+1)*w)).
func (s *Series) Add(at sim.Ns, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.bucketFor(at / s.window); b != nil {
		b.sum += v
		b.n++
		b.last = v
	}
}

// Set records a level sample: like Add, but intended for gauge-style
// values where the window's last value (exported as Last) is the curve
// and the sum is meaningless. It shares storage with Add so a single
// series can be read either way.
func (s *Series) Set(at sim.Ns, v int64) { s.Add(at, v) }

// SeriesBucket is one exported window.
type SeriesBucket struct {
	Sum  int64 `json:"sum"`
	N    int64 `json:"n"`
	Last int64 `json:"last"`
}

// SeriesSnapshot is a series' state at one instant: the retained windows
// from StartNs, each WindowNs wide, oldest first. Empty trailing windows
// are trimmed; interior gaps are preserved as zero buckets so curves keep
// their time axis.
type SeriesSnapshot struct {
	WindowNs sim.Ns         `json:"window_ns"`
	StartNs  sim.Ns         `json:"start_ns"`
	Buckets  []SeriesBucket `json:"buckets"`
	Dropped  int64          `json:"dropped,omitempty"`
}

// Snapshot exports the retained windows.
func (s *Series) Snapshot() SeriesSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SeriesSnapshot{WindowNs: s.window, Dropped: s.dropped}
	if !s.started {
		return snap
	}
	snap.StartNs = s.lo * s.window
	n := int64(len(s.buckets))
	for b := s.lo; b <= s.hi; b++ {
		sb := s.buckets[b%n]
		snap.Buckets = append(snap.Buckets, SeriesBucket{Sum: sb.sum, N: sb.n, Last: sb.last})
	}
	return snap
}
