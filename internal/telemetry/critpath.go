package telemetry

import (
	"fmt"
	"io"
	"sort"

	"redbud/internal/sim"
	"redbud/internal/stats"
)

// Critical-path analysis: walk recorded span trees and attribute each
// request's latency to the layer that actually spent it. A span's self
// time is its duration minus the union of its children's intervals —
// time inside a pfs span but outside its rpc children is client-side
// work, time inside an rpc span but outside net/server children is
// protocol overhead, and so on down to the spindle. Summing self times by
// layer answers "where did the time go" exactly, which is the
// decomposition the pFSCK and CFS designs start from.

// LayerTime is one layer's attributed self time across the analyzed trace.
type LayerTime struct {
	Layer  string `json:"layer"`
	SelfNs sim.Ns `json:"self_ns"`
	Spans  int64  `json:"spans"`
}

// OpBreakdown is one root request with its per-layer decomposition.
type OpBreakdown struct {
	Name    string      `json:"name"`
	Layer   string      `json:"layer"`
	BeginNs sim.Ns      `json:"begin_ns"`
	DurNs   sim.Ns      `json:"dur_ns"`
	Layers  []LayerTime `json:"layers"`
}

// CritPathReport is the result of analyzing one span forest.
type CritPathReport struct {
	// Roots counts the analyzed request trees (spans without a live
	// parent, phase markers excluded).
	Roots int64 `json:"roots"`
	// TotalNs is the summed duration of the roots — the total request
	// latency being attributed.
	TotalNs sim.Ns `json:"total_ns"`
	// AttributedNs is the portion of TotalNs assigned to named layers;
	// UntrackedNs is the remainder (child intervals escaping their
	// parent, a tracer anomaly).
	AttributedNs sim.Ns `json:"attributed_ns"`
	UntrackedNs  sim.Ns `json:"untracked_ns"`
	// TimelineNs spans the whole trace (max end minus min begin); the gap
	// between it and the root union is idle or untraced timeline.
	TimelineNs sim.Ns `json:"timeline_ns"`
	// Layers is the per-layer self-time breakdown, largest first.
	Layers []LayerTime `json:"layers"`
	// Slowest holds the top-K slowest roots with their own breakdowns.
	Slowest []OpBreakdown `json:"slowest,omitempty"`
	// RootDur summarizes the root latency distribution.
	RootDur HistSnapshot `json:"root_dur"`
}

// AttributedFraction returns AttributedNs/TotalNs (1 for an empty trace).
func (r CritPathReport) AttributedFraction() float64 {
	if r.TotalNs <= 0 {
		return 1
	}
	return float64(r.AttributedNs) / float64(r.TotalNs)
}

// interval is a half-open [begin, end) slice of the timeline.
type interval struct{ begin, end sim.Ns }

// unionLen returns the total length covered by the intervals, merging
// overlaps. It sorts in place.
func unionLen(ivs []interval) sim.Ns {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].begin < ivs[j].begin })
	var total sim.Ns
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.begin > cur.end {
			total += cur.end - cur.begin
			cur = iv
			continue
		}
		if iv.end > cur.end {
			cur.end = iv.end
		}
	}
	return total + cur.end - cur.begin
}

// AnalyzeCritPath decomposes the span forest into per-layer self times and
// the topK slowest requests. Spans in the "phase" layer (benchmark
// markers) are ignored; spans whose parent was dropped by the tracer's
// retention cap are treated as roots of their surviving subtree.
func AnalyzeCritPath(spans []Span, topK int) CritPathReport {
	var rep CritPathReport
	if len(spans) == 0 {
		return rep
	}

	byID := make(map[SpanID]int, len(spans))
	for i, sp := range spans {
		if sp.Layer == "phase" {
			continue
		}
		byID[sp.ID] = i
	}
	children := make(map[SpanID][]int)
	var roots []int
	var minBegin, maxEnd sim.Ns
	first := true
	for i, sp := range spans {
		if sp.Layer == "phase" {
			continue
		}
		if first || sp.Begin < minBegin {
			minBegin = sp.Begin
		}
		if first || sp.End > maxEnd {
			maxEnd = sp.End
		}
		first = false
		if _, ok := byID[sp.Parent]; sp.Parent != 0 && ok {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	if first {
		return rep
	}
	rep.TimelineNs = maxEnd - minBegin

	// selfTime computes one span's self time: duration minus the union of
	// its children's intervals clipped to the span. Clipping loss (a child
	// recorded outside its parent) is returned separately as untracked.
	selfTime := func(i int) (self, untracked sim.Ns) {
		sp := spans[i]
		var ivs []interval
		for _, ci := range children[sp.ID] {
			c := spans[ci]
			b, e := c.Begin, c.End
			if b < sp.Begin {
				untracked += sp.Begin - b
				b = sp.Begin
			}
			if e > sp.End {
				untracked += e - sp.End
				e = sp.End
			}
			if e > b {
				ivs = append(ivs, interval{b, e})
			}
		}
		covered := unionLen(ivs)
		self = sp.Dur() - covered
		if self < 0 { // overlapping children over-covering the parent
			untracked += -self
			self = 0
		}
		return self, untracked
	}

	// walk accumulates a subtree's per-layer self times into acc.
	var walk func(i int, acc map[string]sim.Ns) sim.Ns
	walk = func(i int, acc map[string]sim.Ns) sim.Ns {
		self, untracked := selfTime(i)
		acc[spans[i].Layer] += self
		for _, ci := range children[spans[i].ID] {
			untracked += walk(ci, acc)
		}
		return untracked
	}

	layerTotals := make(map[string]sim.Ns)
	layerSpans := make(map[string]int64)
	for _, sp := range spans {
		if sp.Layer != "phase" {
			layerSpans[sp.Layer]++
		}
	}
	var rootDur stats.Dist
	type rootEntry struct {
		idx int
		dur sim.Ns
	}
	rootEntries := make([]rootEntry, 0, len(roots))
	for _, ri := range roots {
		rep.Roots++
		d := spans[ri].Dur()
		rep.TotalNs += d
		rootDur.Add(d)
		rep.UntrackedNs += walk(ri, layerTotals)
		rootEntries = append(rootEntries, rootEntry{ri, d})
	}
	for layer, ns := range layerTotals {
		rep.Layers = append(rep.Layers, LayerTime{Layer: layer, SelfNs: ns, Spans: layerSpans[layer]})
		rep.AttributedNs += ns
	}
	sort.Slice(rep.Layers, func(i, j int) bool {
		if rep.Layers[i].SelfNs != rep.Layers[j].SelfNs {
			return rep.Layers[i].SelfNs > rep.Layers[j].SelfNs
		}
		return rep.Layers[i].Layer < rep.Layers[j].Layer
	})
	rep.RootDur = HistSnapshot{Count: int64(rootDur.Count()), Sum: rootDur.Sum()}
	if rootDur.Count() > 0 {
		rep.RootDur.Mean = rootDur.Mean()
		rep.RootDur.Min = rootDur.Min()
		rep.RootDur.Max = rootDur.Max()
		rep.RootDur.P50 = rootDur.Percentile(50)
		rep.RootDur.P95 = rootDur.Percentile(95)
		rep.RootDur.P99 = rootDur.Percentile(99)
	}

	if topK > 0 {
		sort.Slice(rootEntries, func(i, j int) bool {
			if rootEntries[i].dur != rootEntries[j].dur {
				return rootEntries[i].dur > rootEntries[j].dur
			}
			return spans[rootEntries[i].idx].Begin < spans[rootEntries[j].idx].Begin
		})
		if len(rootEntries) > topK {
			rootEntries = rootEntries[:topK]
		}
		for _, re := range rootEntries {
			sp := spans[re.idx]
			acc := make(map[string]sim.Ns)
			walk(re.idx, acc)
			ob := OpBreakdown{Name: sp.Name, Layer: sp.Layer, BeginNs: sp.Begin, DurNs: re.dur}
			for layer, ns := range acc {
				ob.Layers = append(ob.Layers, LayerTime{Layer: layer, SelfNs: ns})
			}
			sort.Slice(ob.Layers, func(i, j int) bool {
				if ob.Layers[i].SelfNs != ob.Layers[j].SelfNs {
					return ob.Layers[i].SelfNs > ob.Layers[j].SelfNs
				}
				return ob.Layers[i].Layer < ob.Layers[j].Layer
			})
			rep.Slowest = append(rep.Slowest, ob)
		}
	}
	return rep
}

// WriteText renders the report as aligned tables: the attribution summary,
// the per-layer breakdown, and the slowest-ops table when present.
func (r CritPathReport) WriteText(w io.Writer) error {
	ms := func(n sim.Ns) string { return fmt.Sprintf("%.3f", sim.Seconds(n)*1e3) }
	pct := func(n sim.Ns) string {
		if r.TotalNs <= 0 {
			return "0.0%"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(r.TotalNs))
	}
	if _, err := fmt.Fprintf(w,
		"requests %d, total latency %s ms (timeline %s ms); attributed %s (%s), untracked %s (%s)\n",
		r.Roots, ms(r.TotalNs), ms(r.TimelineNs),
		ms(r.AttributedNs), pct(r.AttributedNs), ms(r.UntrackedNs), pct(r.UntrackedNs)); err != nil {
		return err
	}
	if r.RootDur.Count > 0 {
		if _, err := fmt.Fprintf(w, "per-request latency: mean %.0f ns, p50 %d, p95 %d, p99 %d, max %d\n",
			r.RootDur.Mean, r.RootDur.P50, r.RootDur.P95, r.RootDur.P99, r.RootDur.Max); err != nil {
			return err
		}
	}
	layers := stats.NewTable("layer", "self ms", "share", "spans")
	for _, lt := range r.Layers {
		layers.AddRowf(lt.Layer, ms(lt.SelfNs), pct(lt.SelfNs), lt.Spans)
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := layers.Render(w); err != nil {
		return err
	}
	if len(r.Slowest) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "\nslowest requests:\n"); err != nil {
		return err
	}
	slow := stats.NewTable("op", "begin ms", "dur ms", "breakdown")
	for _, ob := range r.Slowest {
		breakdown := ""
		for i, lt := range ob.Layers {
			if i > 0 {
				breakdown += " "
			}
			breakdown += fmt.Sprintf("%s=%s", lt.Layer, ms(lt.SelfNs))
		}
		slow.AddRowf(ob.Name, ms(ob.BeginNs), ms(ob.DurNs), breakdown)
	}
	return slow.Render(w)
}
