package telemetry

import (
	"testing"

	"redbud/internal/sim"
)

func TestEventLogRingAndCounts(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 6; i++ {
		kind := "retry"
		if i%2 == 1 {
			kind = "timeout"
		}
		l.Emit(sim.Ns(i), "rpc", kind, "obj-write")
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", l.Dropped())
	}
	for i, r := range l.Records() {
		if want := sim.Ns(i + 2); r.At != want {
			t.Fatalf("record %d at %d, want %d (oldest-first after overflow)", i, r.At, want)
		}
	}
	// Totals stay exact past ring overflow, sorted by layer then kind.
	counts := l.Counts()
	if len(counts) != 2 || counts[0].Kind != "retry" || counts[0].Count != 3 || counts[1].Count != 3 {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit(1, "rpc", "retry", "")
	if l.Len() != 0 || l.Dropped() != 0 || l.Records() != nil || l.Counts() != nil {
		t.Fatal("nil event log must be inert")
	}
	snap := l.Snapshot()
	if snap.Counts != nil || snap.Recent != nil {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

func TestRegistryEventsLazyIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Events()
	b := r.Events()
	if a == nil || a != b {
		t.Fatal("Events must be a stable lazily-built log")
	}
	a.Emit(5, "cache", "evict", "vol0")
	if got := r.Events().Counts(); len(got) != 1 || got[0].Layer != "cache" {
		t.Fatalf("counts through registry = %+v", got)
	}

	var nilReg *Registry
	if nilReg.Events() != nil {
		t.Fatal("nil registry must hand out a nil (inert) event log")
	}
}
