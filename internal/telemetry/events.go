package telemetry

import (
	"sort"
	"sync"

	"redbud/internal/sim"
)

// DefaultMaxEvents bounds the event log's ring. Rare-event rates (retries,
// evictions, preemptions) stay far below this in healthy runs; a run that
// overflows it keeps the most recent window plus exact per-kind totals.
const DefaultMaxEvents = 4096

// EventRecord is one structured occurrence on the simulated timeline: a
// retry, a timeout, an injected fault, a cache eviction, a defrag
// preemption. Unlike a span it has no duration and unlike a counter it
// keeps its timestamp and context, so post-run analysis can line rare
// events up against the latency curves.
type EventRecord struct {
	At     sim.Ns `json:"at"`
	Layer  string `json:"layer"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// EventLog is a bounded structured event recorder. The ring keeps the most
// recent DefaultMaxEvents records (flight-recorder semantics); per
// layer/kind totals are tracked exactly regardless of ring overflow. All
// methods are safe for concurrent use and safe on a nil receiver, so
// uninstrumented paths stay unconditional.
type EventLog struct {
	mu      sync.Mutex
	max     int
	ring    []EventRecord
	start   int // index of the oldest record when the ring is full
	full    bool
	dropped int64
	counts  map[eventKey]int64
}

// eventKey identifies one layer/kind total.
type eventKey struct{ layer, kind string }

// NewEventLog builds an event log retaining up to max records (non-positive
// max takes DefaultMaxEvents).
func NewEventLog(max int) *EventLog {
	if max <= 0 {
		max = DefaultMaxEvents
	}
	return &EventLog{max: max, counts: make(map[eventKey]int64)}
}

// Emit records one event at simulated instant at.
func (l *EventLog) Emit(at sim.Ns, layer, kind, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.counts[eventKey{layer, kind}]++
	rec := EventRecord{At: at, Layer: layer, Kind: kind, Detail: detail}
	if len(l.ring) < l.max {
		l.ring = append(l.ring, rec)
		return
	}
	l.full = true
	l.dropped++
	l.ring[l.start] = rec
	l.start = (l.start + 1) % l.max
}

// Len returns the retained record count.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Dropped returns how many records the ring has discarded.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Records returns the retained events, oldest first.
func (l *EventLog) Records() []EventRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]EventRecord, 0, len(l.ring))
	if l.full {
		out = append(out, l.ring[l.start:]...)
		out = append(out, l.ring[:l.start]...)
	} else {
		out = append(out, l.ring...)
	}
	return out
}

// EventCount is one layer/kind total, exact even past ring overflow.
type EventCount struct {
	Layer string `json:"layer"`
	Kind  string `json:"kind"`
	Count int64  `json:"count"`
}

// Counts returns the per layer/kind totals sorted by layer then kind.
func (l *EventLog) Counts() []EventCount {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]EventCount, 0, len(l.counts))
	for k, n := range l.counts {
		out = append(out, EventCount{Layer: k.layer, Kind: k.kind, Count: n})
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Layer != out[j].Layer {
			return out[i].Layer < out[j].Layer
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// EventsSnapshot is the exported event-log state.
type EventsSnapshot struct {
	Counts  []EventCount  `json:"counts,omitempty"`
	Recent  []EventRecord `json:"recent,omitempty"`
	Dropped int64         `json:"dropped,omitempty"`
}

// Snapshot exports totals plus the retained ring.
func (l *EventLog) Snapshot() EventsSnapshot {
	return EventsSnapshot{Counts: l.Counts(), Recent: l.Records(), Dropped: l.Dropped()}
}
