package telemetry

import (
	"testing"

	"redbud/internal/sim"
)

func TestSeriesBoundaryAlignment(t *testing.T) {
	s := newSeries(100, 8)
	// A sample at exactly k*window belongs to window k: [k*w, (k+1)*w).
	s.Add(99, 1)  // window 0
	s.Add(100, 2) // window 1
	s.Add(199, 3) // window 1
	s.Add(200, 4) // window 2
	snap := s.Snapshot()
	if snap.StartNs != 0 || len(snap.Buckets) != 3 {
		t.Fatalf("snapshot start=%d buckets=%d, want 0/3", snap.StartNs, len(snap.Buckets))
	}
	want := []SeriesBucket{{Sum: 1, N: 1, Last: 1}, {Sum: 5, N: 2, Last: 3}, {Sum: 4, N: 1, Last: 4}}
	for i, b := range snap.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

func TestSeriesInteriorGapsPreserved(t *testing.T) {
	s := newSeries(10, 8)
	s.Add(5, 1)  // window 0
	s.Add(25, 1) // window 2; window 1 never sampled
	snap := s.Snapshot()
	if len(snap.Buckets) != 3 {
		t.Fatalf("buckets = %d, want 3 (gap kept as zero bucket)", len(snap.Buckets))
	}
	if snap.Buckets[1] != (SeriesBucket{}) {
		t.Fatalf("gap bucket = %+v, want zero", snap.Buckets[1])
	}
}

func TestSeriesWraparound(t *testing.T) {
	s := newSeries(10, 4)
	for i := 0; i < 4; i++ {
		s.Add(sim.Ns(i*10+5), int64(i+1)) // windows 0..3, ring full
	}
	if got := s.Snapshot(); got.Dropped != 0 || len(got.Buckets) != 4 {
		t.Fatalf("pre-wrap snapshot = %+v", got)
	}

	// Window 4 evicts non-empty window 0 (counted as dropped).
	s.Add(45, 9)
	snap := s.Snapshot()
	if snap.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", snap.Dropped)
	}
	if snap.StartNs != 10 || len(snap.Buckets) != 4 {
		t.Fatalf("post-wrap start=%d buckets=%d, want 10/4", snap.StartNs, len(snap.Buckets))
	}
	if snap.Buckets[0].Sum != 2 || snap.Buckets[3].Sum != 9 {
		t.Fatalf("post-wrap buckets = %+v", snap.Buckets)
	}

	// A late sample older than the retained range is dropped, not recorded.
	s.Add(5, 100)
	snap = s.Snapshot()
	if snap.Dropped != 2 {
		t.Fatalf("dropped after late sample = %d, want 2", snap.Dropped)
	}
	if snap.Buckets[0].Sum != 2 {
		t.Fatalf("late sample mutated retained bucket: %+v", snap.Buckets[0])
	}
}

func TestSeriesSkipAheadEvictsAll(t *testing.T) {
	s := newSeries(10, 4)
	s.Add(5, 1)
	s.Add(1000, 2) // window 100, far past the ring: everything evicted
	snap := s.Snapshot()
	if len(snap.Buckets) != 4 || snap.Buckets[3].Sum != 2 {
		t.Fatalf("snapshot = %+v, want 4 buckets ending in sum=2", snap)
	}
	if snap.StartNs != 970 {
		t.Fatalf("start = %d, want 970 (lo advanced to window 97)", snap.StartNs)
	}
	if snap.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (only the non-empty window counts)", snap.Dropped)
	}
}

func TestSeriesNilSafe(t *testing.T) {
	var s *Series
	s.Add(10, 1)
	s.Set(20, 2)
}

func TestRegistrySeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Series("pfs_write_blocks", Labels{"fs": "x"}, 100, 16)
	// A second registration under the same identity returns the same
	// series — the duplicated-telemetry path (two mounts of one registry)
	// merges by construction. The first registration's geometry wins.
	b := r.Series("pfs_write_blocks", Labels{"fs": "x"}, 999, 4)
	if a != b {
		t.Fatal("same identity must return the same series")
	}
	if b.Window() != 100 {
		t.Fatalf("window = %d, want first registration's 100", b.Window())
	}
	a.Add(150, 7)

	snaps := r.Snapshot()
	if len(snaps) != 1 || snaps[0].Series == nil {
		t.Fatalf("snapshot = %+v, want one series metric", snaps)
	}
	if n := len(snaps[0].Series.Buckets); n != 1 {
		t.Fatalf("series buckets = %d, want 1", n)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a series name as a counter should panic")
		}
	}()
	r.Counter("pfs_write_blocks", Labels{"fs": "x"})
}
