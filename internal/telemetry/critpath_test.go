package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"redbud/internal/sim"
)

func span(id, parent SpanID, layer, name string, begin, end sim.Ns) Span {
	return Span{ID: id, Parent: parent, Layer: layer, Name: name, Begin: begin, End: end}
}

func layerSelf(rep CritPathReport, layer string) sim.Ns {
	for _, lt := range rep.Layers {
		if lt.Layer == layer {
			return lt.SelfNs
		}
	}
	return -1
}

func TestCritPathSelfTimes(t *testing.T) {
	// pfs [0,100) → rpc [10,60) → net [20,40); plus a phase marker that
	// must be ignored entirely.
	spans := []Span{
		span(1, 0, "pfs", "write", 0, 100),
		span(2, 1, "rpc", "obj-write", 10, 60),
		span(3, 2, "net", "xfer", 20, 40),
		span(9, 0, "phase", "fig6a", 0, 1000),
	}
	rep := AnalyzeCritPath(spans, 0)
	if rep.Roots != 1 || rep.TotalNs != 100 {
		t.Fatalf("roots=%d total=%d, want 1/100", rep.Roots, rep.TotalNs)
	}
	if got := layerSelf(rep, "pfs"); got != 50 {
		t.Errorf("pfs self = %d, want 50", got)
	}
	if got := layerSelf(rep, "rpc"); got != 30 {
		t.Errorf("rpc self = %d, want 30", got)
	}
	if got := layerSelf(rep, "net"); got != 20 {
		t.Errorf("net self = %d, want 20", got)
	}
	if rep.AttributedNs != 100 || rep.UntrackedNs != 0 {
		t.Fatalf("attributed=%d untracked=%d, want 100/0", rep.AttributedNs, rep.UntrackedNs)
	}
	if f := rep.AttributedFraction(); f != 1 {
		t.Fatalf("attributed fraction = %g, want 1", f)
	}
	if rep.TimelineNs != 100 {
		t.Fatalf("timeline = %d, want 100 (phase span excluded)", rep.TimelineNs)
	}
}

func TestCritPathOverlappingChildren(t *testing.T) {
	// Two children covering [0,60) and [40,100): the union is the whole
	// parent, so the parent's self time is zero, not negative.
	spans := []Span{
		span(1, 0, "pfs", "write", 0, 100),
		span(2, 1, "rpc", "a", 0, 60),
		span(3, 1, "rpc", "b", 40, 100),
	}
	rep := AnalyzeCritPath(spans, 0)
	if got := layerSelf(rep, "pfs"); got != 0 {
		t.Errorf("pfs self = %d, want 0", got)
	}
	if got := layerSelf(rep, "rpc"); got != 120 {
		t.Errorf("rpc self = %d, want 120 (overlap double-counts inside one layer)", got)
	}
}

func TestCritPathEscapingChildIsUntracked(t *testing.T) {
	// A child recorded past its parent's end: the escaping 20ns is clipped
	// out of the parent's coverage and reported as untracked.
	spans := []Span{
		span(1, 0, "pfs", "write", 0, 100),
		span(2, 1, "rpc", "late", 90, 120),
	}
	rep := AnalyzeCritPath(spans, 0)
	if rep.UntrackedNs != 20 {
		t.Fatalf("untracked = %d, want 20", rep.UntrackedNs)
	}
	if got := layerSelf(rep, "pfs"); got != 90 {
		t.Errorf("pfs self = %d, want 90", got)
	}
}

func TestCritPathOrphanBecomesRoot(t *testing.T) {
	// The parent was dropped by the span cap: the surviving subtree is
	// analyzed as its own root rather than discarded.
	spans := []Span{
		span(7, 99, "ost", "flush", 10, 30),
	}
	rep := AnalyzeCritPath(spans, 0)
	if rep.Roots != 1 || rep.TotalNs != 20 {
		t.Fatalf("roots=%d total=%d, want 1/20", rep.Roots, rep.TotalNs)
	}
}

func TestCritPathTopKAndWriteText(t *testing.T) {
	spans := []Span{
		span(1, 0, "pfs", "write", 0, 30),
		span(2, 0, "pfs", "read", 100, 120),
		span(3, 0, "pfs", "stat", 200, 210),
	}
	rep := AnalyzeCritPath(spans, 2)
	if len(rep.Slowest) != 2 {
		t.Fatalf("slowest = %d entries, want 2", len(rep.Slowest))
	}
	if rep.Slowest[0].Name != "write" || rep.Slowest[0].DurNs != 30 {
		t.Fatalf("slowest[0] = %+v", rep.Slowest[0])
	}
	if rep.RootDur.Count != 3 || rep.RootDur.Max != 30 {
		t.Fatalf("root dist = %+v", rep.RootDur)
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"requests 3", "pfs", "slowest requests", "write"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCritPathEmpty(t *testing.T) {
	rep := AnalyzeCritPath(nil, 5)
	if rep.Roots != 0 || rep.AttributedFraction() != 1 {
		t.Fatalf("empty report = %+v", rep)
	}
	rep = AnalyzeCritPath([]Span{span(1, 0, "phase", "only", 0, 10)}, 0)
	if rep.Roots != 0 || rep.TotalNs != 0 {
		t.Fatalf("phase-only report = %+v", rep)
	}
}
