package telemetry

import (
	"sync"
	"testing"
)

// TestConcurrentRegistryHammer drives counters, gauges, histograms, and
// snapshots from many goroutines at once. Run under -race (make race / ci)
// it proves the registry's hot paths are data-race free.
func TestConcurrentRegistryHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits", nil)
	g := r.Gauge("depth", nil)
	h := r.Histogram("lat", nil)
	r.CounterFunc("fn", nil, func() int64 { return c.Value() })

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i))
				if i%256 == 0 {
					// Late registration and snapshotting race the updates.
					r.Counter("hits", nil).Add(0)
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if s := h.Snapshot(); s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
}

// TestConcurrentTracerHammer overlaps span recording from many goroutines
// with snapshot reads, for the race detector.
func TestConcurrentTracerHammer(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetMaxSpans(1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Start("disk", "op", 0)
				tr.Advance(1)
				sp.Annotate("i", "x")
				sp.End()
				if i%128 == 0 {
					tr.Spans()
					tr.Len()
					tr.Dropped()
				}
			}
		}()
	}
	wg.Wait()
	if tr.Len()+int(tr.Dropped()) != 8*500 {
		t.Fatalf("retained %d + dropped %d spans, want %d total", tr.Len(), tr.Dropped(), 8*500)
	}
}
