package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// spanLog is the on-disk span-log format: a self-describing JSON document
// (rather than raw arrays) so the converter can validate provenance.
type spanLog struct {
	Format string `json:"format"`
	Clock  string `json:"clock"`
	Spans  []Span `json:"spans"`
}

// spanLogFormat tags span-log documents.
const spanLogFormat = "redbud-spans/1"

// WriteSpanLog serializes spans as a span-log JSON document, the recorded
// form that `miftrace spans` converts to Chrome trace JSON.
func WriteSpanLog(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(spanLog{Format: spanLogFormat, Clock: "sim-ns", Spans: spans})
}

// WriteSpanLog writes the tracer's recorded spans as a span log.
func (t *Tracer) WriteSpanLog(w io.Writer) error {
	return WriteSpanLog(w, t.Spans())
}

// ReadSpanLog parses a span-log document.
func ReadSpanLog(r io.Reader) ([]Span, error) {
	var log spanLog
	if err := json.NewDecoder(r).Decode(&log); err != nil {
		return nil, fmt.Errorf("telemetry: parse span log: %w", err)
	}
	if log.Format != spanLogFormat {
		return nil, fmt.Errorf("telemetry: span log format %q, want %q", log.Format, spanLogFormat)
	}
	return log.Spans, nil
}

// chromeEvent is one trace_event entry. Only the fields chrome://tracing
// and Perfetto consume are emitted.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`            // microseconds
	Dur   float64           `json:"dur,omitempty"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// LayerOrder fixes the canonical top-to-bottom ordering of the known
// IO-path layers: client entry at the top, spindle at the bottom. The
// Chrome exporter uses it for track order, the critical-path and bench
// reports for row order. Unknown layers sort after these, alphabetically.
var LayerOrder = []string{"phase", "pfs", "cache", "rpc", "net", "mds", "ost", "iosched", "disk", "journal", "defrag"}

// LayerRank returns a layer's position in LayerOrder, or len(LayerOrder)
// for layers outside the canonical set (callers break ties alphabetically).
func LayerRank(layer string) int {
	for i, l := range LayerOrder {
		if l == layer {
			return i
		}
	}
	return len(LayerOrder)
}

// WriteChromeTrace converts spans to Chrome trace_event JSON ("X" complete
// events, one track per layer, span events as "i" instants) that
// chrome://tracing and Perfetto open directly. Timestamps are simulated
// nanoseconds rendered in microseconds, the unit the trace viewer assumes.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	// Assign a stable tid per layer.
	tids := make(map[string]int)
	for i, l := range LayerOrder {
		tids[l] = i + 1
	}
	var extras []string
	seen := make(map[string]bool)
	for _, sp := range spans {
		if _, ok := tids[sp.Layer]; !ok && !seen[sp.Layer] {
			seen[sp.Layer] = true
			extras = append(extras, sp.Layer)
		}
	}
	sort.Strings(extras)
	for _, l := range extras {
		tids[l] = len(tids) + 1
	}

	events := make([]chromeEvent, 0, len(spans)*2+len(tids))
	// Thread-name metadata so the viewer labels tracks by layer.
	used := make(map[string]bool)
	for _, sp := range spans {
		used[sp.Layer] = true
	}
	for layer, tid := range tids {
		if !used[layer] {
			continue
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid,
			Args: map[string]string{"name": layer},
		})
	}
	for _, sp := range spans {
		tid := tids[sp.Layer]
		args := make(map[string]string, len(sp.Attrs)+2)
		args["span"] = fmt.Sprint(sp.ID)
		if sp.Parent != 0 {
			args["parent"] = fmt.Sprint(sp.Parent)
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name:  sp.Name,
			Cat:   sp.Layer,
			Phase: "X",
			TS:    float64(sp.Begin) / 1e3,
			Dur:   float64(sp.End-sp.Begin) / 1e3,
			PID:   1,
			TID:   tid,
			Args:  args,
		})
		for _, ev := range sp.Events {
			events = append(events, chromeEvent{
				Name:  ev.Name,
				Cat:   sp.Layer,
				Phase: "i",
				TS:    float64(ev.At) / 1e3,
				PID:   1,
				TID:   tid,
				Scope: "t",
				Args:  map[string]string{"span": fmt.Sprint(sp.ID)},
			})
		}
	}
	// Stable output: metadata first, then events by timestamp.
	sort.SliceStable(events, func(i, j int) bool {
		mi, mj := events[i].Phase == "M", events[j].Phase == "M"
		if mi != mj {
			return mi
		}
		return events[i].TS < events[j].TS
	})
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteChromeTrace writes the tracer's recorded spans in Chrome
// trace_event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Spans())
}
