// Package telemetry is the unified observability layer of the Redbud
// reproduction: a metrics registry every component publishes into, and a
// request tracer driven by the simulated clock.
//
// The paper's evaluation is built on exactly this kind of instrumentation —
// it counts disk positioning times and merge rates "by intercepting requests
// at the general block layer" (§5) — and the repository previously exposed
// only scattered per-package Stats structs with no way to follow one request
// across layers. The registry gives every layer a common currency (counters,
// gauges, and latency histograms keyed by labels), while the tracer records
// per-layer spans of individual requests on the virtual timeline, exportable
// as aligned text tables, JSON snapshots, or Chrome trace_event JSON.
//
// Components attach lazily: instrumentation is a nil-guarded side channel,
// so an uninstrumented mount pays one pointer test per hot-path event and
// the pre-existing Stats()/ResetStats() accessors keep working unchanged.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"redbud/internal/sim"
	"redbud/internal/stats"
)

// Labels is the label set distinguishing instances of one metric, e.g.
// {"layer": "ost", "ost": "2"}.
type Labels map[string]string

// interned is the process-wide canonical-label-string cache. Label sets
// recur constantly (every mount in a run shares a handful of layer/ost/op
// combinations), so canon builds its candidate into a stack buffer and
// returns the one shared heap string per distinct set — repeated
// registrations and lookups of a known label set allocate nothing.
var (
	internMu sync.Mutex
	interned = make(map[string]string)
)

// internBytes returns the shared string equal to b, creating it on first
// sight. The map lookup on []byte compiles without a conversion allocation,
// so the hit path is allocation-free.
func internBytes(b []byte) string {
	internMu.Lock()
	defer internMu.Unlock()
	if s, ok := interned[string(b)]; ok {
		return s
	}
	s := string(b)
	interned[s] = s
	return s
}

// maxInlineLabels bounds the stack-sorted fast path of canon; label sets in
// this repository have at most four pairs.
const maxInlineLabels = 8

// canon renders labels in a canonical sorted k=v form used as a map key and
// in reports, interned so every equal label set shares one string. An empty
// label set renders as "".
func (l Labels) canon() string {
	if len(l) == 0 {
		return ""
	}
	var inline [maxInlineLabels]string
	var keys []string
	if len(l) <= maxInlineLabels {
		keys = inline[:0]
	} else {
		keys = make([]string, 0, len(l))
	}
	size := 0
	for k := range l {
		keys = append(keys, k)
		size += len(k) + len(l[k]) + 2
	}
	sort.Strings(keys)
	var stack [128]byte
	buf := stack[:0]
	if size > len(stack) {
		buf = make([]byte, 0, size)
	}
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, k...)
		buf = append(buf, '=')
		buf = append(buf, l[k]...)
	}
	return internBytes(buf)
}

// With returns a copy of the labels with one pair added or replaced.
func (l Labels) With(key, value string) Labels {
	out := make(Labels, len(l)+1)
	for k, v := range l {
		out[k] = v
	}
	out[key] = value
	return out
}

// ParseLabels inverts canon: it parses a "k=v,k=v" canonical label string
// back into a Labels map. Label keys and values in this repository never
// contain "," or "=", which makes the round trip exact.
func ParseLabels(canon string) Labels {
	if canon == "" {
		return nil
	}
	out := make(Labels)
	for _, part := range strings.Split(canon, ",") {
		if i := strings.IndexByte(part, '='); i >= 0 {
			out[part[:i]] = part[i+1:]
		}
	}
	return out
}

// Kind distinguishes the metric families.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
	KindSeries    Kind = "series"
)

// Counter is a monotonically increasing value. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n may be any sign, but counters are
// conventionally monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates a latency (or size) distribution. It wraps
// stats.Dist with a mutex so hot paths can observe concurrently.
type Histogram struct {
	mu sync.Mutex
	d  stats.Dist
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	h.d.Add(v)
	h.mu.Unlock()
}

// Dist returns a deep copy of the accumulated distribution, for analysis
// that needs exact merging across histograms (per-layer percentiles).
func (h *Histogram) Dist() stats.Dist {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.d.Clone()
}

// Snapshot summarizes the distribution so far.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: int64(h.d.Count()), Sum: h.d.Sum()}
	if s.Count > 0 {
		s.Mean = h.d.Mean()
		s.Min = h.d.Min()
		s.Max = h.d.Max()
		s.P50 = h.d.Percentile(50)
		s.P95 = h.d.Percentile(95)
		s.P99 = h.d.Percentile(99)
	}
	return s
}

// HistSnapshot is a histogram summary at one instant.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// metric is one registered instrument.
type metric struct {
	name    string
	labels  string
	kind    Kind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	series  *Series
	// funcs are snapshot-time collectors; their values sum. They let
	// components publish pre-existing Stats fields without touching hot
	// paths, and multiple mounts sharing one registry accumulate.
	funcs []func() int64
}

// Registry is a set of named metrics. All methods are safe for concurrent
// use. The zero value is not usable; use NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	events  *EventLog
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Events returns the registry's bounded structured event log, creating it
// on first use. Every component instrumented into the registry shares one
// log, so a run's rare events (retries, faults, evictions, preemptions)
// interleave on a single timeline. Safe on a nil registry (returns a nil
// log, whose methods are no-ops).
func (r *Registry) Events() *EventLog {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.events == nil {
		r.events = NewEventLog(DefaultMaxEvents)
	}
	return r.events
}

// key builds the registry key for a name+labels pair (report formatting;
// the hot lookup path builds its key into a stack buffer instead).
func key(name string, labels Labels) string {
	return name + "{" + labels.canon() + "}"
}

// lookup finds or creates the metric, panicking on a kind clash — two
// components registering the same name with different kinds is an
// instrumentation bug that would silently corrupt reports. Looking up an
// already-registered identity allocates nothing: the canonical label string
// is interned and the key is assembled in a stack buffer the map indexes
// without conversion.
func (r *Registry) lookup(name string, labels Labels, kind Kind) *metric {
	canon := labels.canon()
	var stack [192]byte
	buf := stack[:0]
	if n := len(name) + len(canon) + 2; n > len(stack) {
		buf = make([]byte, 0, n)
	}
	buf = append(buf, name...)
	buf = append(buf, '{')
	buf = append(buf, canon...)
	buf = append(buf, '}')
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[string(buf)]
	if !ok {
		m = &metric{name: name, labels: canon, kind: kind}
		r.metrics[internBytes(buf)] = m
	} else if m.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s re-registered as %s, was %s", string(buf), kind, m.kind))
	}
	return m
}

// Counter returns the counter for name+labels, creating it on first use.
// Repeated calls with the same identity return the same counter.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	m := r.lookup(name, labels, KindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	m := r.lookup(name, labels, KindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram returns the histogram for name+labels, creating it on first
// use. Components sharing an identity observe into the same distribution.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	m := r.lookup(name, labels, KindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.hist == nil {
		m.hist = &Histogram{}
	}
	return m.hist
}

// Series returns the windowed time-series for name+labels, creating it on
// first use with the given window width and ring capacity (non-positive
// values take the defaults). Components sharing an identity — several
// mounts on one registry — observe into the same series, merging their
// samples per window; the creation-time window/capacity of the first
// registration wins.
func (r *Registry) Series(name string, labels Labels, window sim.Ns, buckets int) *Series {
	m := r.lookup(name, labels, KindSeries)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.series == nil {
		m.series = newSeries(window, buckets)
	}
	return m.series
}

// Histograms calls fn for every registered histogram with a deep copy of
// its distribution, in name-then-labels order. It is the raw-sample export
// the per-layer percentile aggregation is built on (HistSnapshot summaries
// cannot be merged exactly).
func (r *Registry) Histograms(fn func(name string, labels Labels, d stats.Dist)) {
	r.mu.Lock()
	list := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		if m.hist != nil {
			list = append(list, m)
		}
	}
	r.mu.Unlock()
	sort.Slice(list, func(i, j int) bool {
		if list[i].name != list[j].name {
			return list[i].name < list[j].name
		}
		return list[i].labels < list[j].labels
	})
	for _, m := range list {
		fn(m.name, ParseLabels(m.labels), m.hist.Dist())
	}
}

// CounterFunc registers a snapshot-time collector rendered as a counter.
// Multiple registrations under one identity sum — the natural semantics
// when several mounts share a registry.
func (r *Registry) CounterFunc(name string, labels Labels, fn func() int64) {
	m := r.lookup(name, labels, KindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	m.funcs = append(m.funcs, fn)
}

// GaugeFunc registers a snapshot-time collector rendered as a gauge;
// multiple registrations sum.
func (r *Registry) GaugeFunc(name string, labels Labels, fn func() int64) {
	m := r.lookup(name, labels, KindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	m.funcs = append(m.funcs, fn)
}

// MetricSnapshot is one metric's state at snapshot time.
type MetricSnapshot struct {
	Name   string          `json:"name"`
	Labels string          `json:"labels,omitempty"`
	Kind   Kind            `json:"kind"`
	Value  int64           `json:"value,omitempty"`
	Hist   *HistSnapshot   `json:"hist,omitempty"`
	Series *SeriesSnapshot `json:"series,omitempty"`
}

// Snapshot returns every metric's current state, sorted by name then
// labels. Collector functions run outside the registry lock so they may
// take component locks freely.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	list := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		list = append(list, m)
	}
	// Copy the pieces needed outside the lock; funcs slices are
	// append-only so the copied headers stay valid.
	type pending struct {
		m     *metric
		funcs []func() int64
	}
	work := make([]pending, len(list))
	for i, m := range list {
		work[i] = pending{m: m, funcs: m.funcs}
	}
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(work))
	for _, p := range work {
		snap := MetricSnapshot{Name: p.m.name, Labels: p.m.labels, Kind: p.m.kind}
		switch {
		case p.m.hist != nil:
			h := p.m.hist.Snapshot()
			snap.Hist = &h
		case p.m.series != nil:
			s := p.m.series.Snapshot()
			snap.Series = &s
		default:
			var v int64
			if p.m.counter != nil {
				v += p.m.counter.Value()
			}
			if p.m.gauge != nil {
				v += p.m.gauge.Value()
			}
			for _, fn := range p.funcs {
				v += fn()
			}
			snap.Value = v
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// WriteText renders the registry as aligned tables: scalar metrics first,
// then histograms with their latency summary columns, then time-series
// summaries and the structured event totals.
func (r *Registry) WriteText(w io.Writer) error {
	snaps := r.Snapshot()
	scalars := stats.NewTable("metric", "labels", "kind", "value")
	hists := stats.NewTable("histogram", "labels", "count", "mean", "p50", "p95", "p99", "max")
	series := stats.NewTable("series", "labels", "window ms", "windows", "sum", "dropped")
	var nScalar, nHist, nSeries int
	for _, s := range snaps {
		switch {
		case s.Hist != nil:
			nHist++
			hists.AddRowf(s.Name, s.Labels, s.Hist.Count,
				fmt.Sprintf("%.0f", s.Hist.Mean), s.Hist.P50, s.Hist.P95, s.Hist.P99, s.Hist.Max)
		case s.Series != nil:
			nSeries++
			var sum int64
			for _, b := range s.Series.Buckets {
				sum += b.Sum
			}
			series.AddRowf(s.Name, s.Labels,
				fmt.Sprintf("%.1f", sim.Seconds(s.Series.WindowNs)*1e3),
				len(s.Series.Buckets), sum, s.Series.Dropped)
		default:
			nScalar++
			scalars.AddRowf(s.Name, s.Labels, string(s.Kind), s.Value)
		}
	}
	sections := 0
	render := func(n int, t *stats.Table) error {
		if n == 0 {
			return nil
		}
		if sections > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		sections++
		return t.Render(w)
	}
	if err := render(nScalar, scalars); err != nil {
		return err
	}
	if err := render(nHist, hists); err != nil {
		return err
	}
	if err := render(nSeries, series); err != nil {
		return err
	}
	if counts := r.Events().Counts(); len(counts) > 0 {
		events := stats.NewTable("event", "kind", "count")
		for _, c := range counts {
			events.AddRowf(c.Layer, c.Kind, c.Count)
		}
		if err := render(len(counts), events); err != nil {
			return err
		}
	}
	if sections == 0 {
		_, err := fmt.Fprintln(w, "(no metrics registered)")
		return err
	}
	return nil
}

// RegistryDoc is the JSON-exporter document: the metric snapshot plus the
// structured event log.
type RegistryDoc struct {
	Metrics []MetricSnapshot `json:"metrics"`
	Events  *EventsSnapshot  `json:"events,omitempty"`
}

// Doc builds the exporter document. The event section is omitted when no
// events were recorded, keeping event-free snapshots compact.
func (r *Registry) Doc() RegistryDoc {
	doc := RegistryDoc{Metrics: r.Snapshot()}
	if ev := r.Events().Snapshot(); len(ev.Counts) > 0 {
		doc.Events = &ev
	}
	return doc
}

// WriteJSON writes the registry document (metrics + events) as indented
// JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Doc())
}
