package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops", Labels{"layer": "disk"})
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if again := r.Counter("ops", Labels{"layer": "disk"}); again != c {
		t.Fatal("same identity should return the same counter")
	}

	g := r.Gauge("depth", nil)
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d", g.Value())
	}

	h := r.Histogram("lat", nil)
	for _, v := range []int64{10, 20, 30} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 60 || s.Min != 10 || s.Max != 30 {
		t.Fatalf("hist snapshot = %+v", s)
	}
}

func TestLabelsCanonAndWith(t *testing.T) {
	a := Labels{"b": "2", "a": "1"}
	if got := a.canon(); got != "a=1,b=2" {
		t.Fatalf("canon = %q", got)
	}
	b := a.With("c", "3")
	if len(a) != 2 {
		t.Fatal("With must not mutate the receiver")
	}
	if got := b.canon(); got != "a=1,b=2,c=3" {
		t.Fatalf("canon = %q", got)
	}
	if Labels(nil).canon() != "" {
		t.Fatal("nil labels should render empty")
	}
}

func TestCollectorFuncsSum(t *testing.T) {
	r := NewRegistry()
	// Two components publishing under one identity (e.g. two mounts on one
	// registry) sum at snapshot time.
	r.CounterFunc("reqs", nil, func() int64 { return 3 })
	r.CounterFunc("reqs", nil, func() int64 { return 4 })
	snaps := r.Snapshot()
	if len(snaps) != 1 || snaps[0].Value != 7 {
		t.Fatalf("snapshot = %+v", snaps)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering x as a gauge should panic")
		}
	}()
	r.Gauge("x", nil)
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b", nil).Inc()
	r.Counter("a", Labels{"k": "2"}).Inc()
	r.Counter("a", Labels{"k": "1"}).Inc()
	snaps := r.Snapshot()
	got := make([]string, len(snaps))
	for i, s := range snaps {
		got[i] = s.Name + "{" + s.Labels + "}"
	}
	want := []string{"a{k=1}", "a{k=2}", "b{}"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	var empty bytes.Buffer
	if err := r.WriteText(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no metrics registered") {
		t.Fatalf("empty render = %q", empty.String())
	}

	r.Counter("disk_requests", Labels{"layer": "disk"}).Add(12)
	r.Histogram("disk_service_ns", Labels{"layer": "disk"}).Observe(1000)
	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"disk_requests", "disk_service_ns", "layer=disk"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, text.String())
		}
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc RegistryDoc
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("decoded %d metrics, want 2", len(doc.Metrics))
	}
	if doc.Events != nil {
		t.Fatalf("event-free registry should omit the events section, got %+v", doc.Events)
	}

	r.Events().Emit(10, "rpc", "retry", "obj-write")
	js.Reset()
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	doc = RegistryDoc{}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Events == nil || len(doc.Events.Counts) != 1 || doc.Events.Counts[0].Count != 1 {
		t.Fatalf("events section = %+v", doc.Events)
	}
}
