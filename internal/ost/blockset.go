package ost

import (
	"math/bits"

	"redbud/internal/alloc"
)

// tagStore maps physical block → data tag. Physical addresses are dense
// (the allocator hands out volume offsets bounded by cfg.Blocks), so the
// store is a lazily grown slice indexed by block: the per-block map
// assign/delete that dominated write-path CPU profiles becomes one bounds
// check and one slot write. A slot is empty when logical1 == 0; occupied
// slots store logical+1 so the zero value of a freshly grown region means
// "no tag" without initialization.
type tagStore struct {
	slots []tagSlot
}

// tagSlot is the stored form of one block's tag.
type tagSlot struct {
	obj      ObjectID
	logical1 int64 // logical+1; 0 = empty
}

// set records that phys carries obj's data for the given logical block.
func (ts *tagStore) set(phys int64, obj ObjectID, logical int64) {
	ts.grow(phys + 1)
	ts.slots[phys] = tagSlot{obj: obj, logical1: logical + 1}
}

// get returns the tag stored at phys, if any.
func (ts *tagStore) get(phys int64) (tag, bool) {
	if phys < 0 || phys >= int64(len(ts.slots)) {
		return tag{}, false
	}
	s := ts.slots[phys]
	if s.logical1 == 0 {
		return tag{}, false
	}
	return tag{obj: s.obj, logical: s.logical1 - 1}, true
}

// slotAt returns the raw slot stored at phys (zero value when out of
// range) — the pre-image a crash-armed write path records before set.
func (ts *tagStore) slotAt(phys int64) tagSlot {
	if phys < 0 || phys >= int64(len(ts.slots)) {
		return tagSlot{}
	}
	return ts.slots[phys]
}

// setSlot stores a raw slot at phys — the pre-image restore of a
// power-fail undo.
func (ts *tagStore) setSlot(phys int64, s tagSlot) {
	ts.grow(phys + 1)
	ts.slots[phys] = s
}

// clearRange drops the tags of every block in [start, end).
func (ts *tagStore) clearRange(start, end int64) {
	if start < 0 {
		start = 0
	}
	if end > int64(len(ts.slots)) {
		end = int64(len(ts.slots))
	}
	for b := start; b < end; b++ {
		ts.slots[b] = tagSlot{}
	}
}

// grow extends the store to cover n slots. Slice extension within capacity
// and fresh append memory are both zeroed, so grown regions read as empty.
func (ts *tagStore) grow(n int64) {
	if n <= int64(len(ts.slots)) {
		return
	}
	if n <= int64(cap(ts.slots)) {
		ts.slots = ts.slots[:n]
		return
	}
	c := 2 * int64(cap(ts.slots))
	if c < n {
		c = n
	}
	ns := make([]tagSlot, n, c)
	copy(ns, ts.slots)
	ts.slots = ns
}

// blockSet is a grow-on-demand bitmap over logical block addresses — the
// per-object "carries data" set. It replaces a map[int64]bool whose
// per-block assigns showed up in profiles; runs come back sorted for free.
type blockSet struct {
	words []uint64
	count int64
}

// setRange marks blocks [start, start+count) as present.
func (b *blockSet) setRange(start, count int64) {
	for i := start; i < start+count; i++ {
		b.set(i)
	}
}

// set marks block i as present.
func (b *blockSet) set(i int64) {
	w := i >> 6
	if w >= int64(len(b.words)) {
		b.growWords(w + 1)
	}
	mask := uint64(1) << uint(i&63)
	if b.words[w]&mask == 0 {
		b.words[w] |= mask
		b.count++
	}
}

// clear removes block i — the power-fail undo of set, and the scrub's
// "this block never carried its data" demotion.
func (b *blockSet) clear(i int64) {
	w := i >> 6
	if i < 0 || w >= int64(len(b.words)) {
		return
	}
	mask := uint64(1) << uint(i&63)
	if b.words[w]&mask != 0 {
		b.words[w] &^= mask
		b.count--
	}
}

// has reports whether block i is present.
func (b *blockSet) has(i int64) bool {
	w := i >> 6
	if i < 0 || w >= int64(len(b.words)) {
		return false
	}
	return b.words[w]&(uint64(1)<<uint(i&63)) != 0
}

// clearFrom removes every block at or beyond start (the truncate shape).
func (b *blockSet) clearFrom(start int64) {
	if start < 0 {
		start = 0
	}
	w := start >> 6
	if w >= int64(len(b.words)) {
		return
	}
	keep := b.words[w] & (uint64(1)<<uint(start&63) - 1)
	b.count -= int64(bits.OnesCount64(b.words[w] &^ keep))
	b.words[w] = keep
	for j := w + 1; j < int64(len(b.words)); j++ {
		b.count -= int64(bits.OnesCount64(b.words[j]))
		b.words[j] = 0
	}
}

// len returns the number of present blocks.
func (b *blockSet) len() int64 { return b.count }

// appendRuns appends the maximal runs of present blocks to dst, sorted by
// address.
func (b *blockSet) appendRuns(dst []alloc.Range) []alloc.Range {
	for w, word := range b.words {
		for word != 0 {
			bit := int64(bits.TrailingZeros64(word))
			l := int64(w)<<6 + bit
			word &^= uint64(1) << uint(bit)
			if n := len(dst); n > 0 && dst[n-1].End() == l {
				dst[n-1].Count++
			} else {
				dst = append(dst, alloc.Range{Start: l, Count: 1})
			}
		}
	}
	return dst
}

// growWords extends the bitmap to cover n words.
func (b *blockSet) growWords(n int64) {
	if n <= int64(cap(b.words)) {
		b.words = b.words[:n]
		return
	}
	c := 2 * int64(cap(b.words))
	if c < n {
		c = n
	}
	nw := make([]uint64, n, c)
	copy(nw, b.words)
	b.words = nw
}
