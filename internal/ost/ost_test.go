package ost

import (
	"testing"
	"testing/quick"

	"redbud/internal/core"
	"redbud/internal/sim"
)

func onDemandFactory(src core.BlockSource, _ int64) core.Policy {
	return core.NewOnDemand(src, core.DefaultOnDemandConfig())
}

func reservationFactory(src core.BlockSource, _ int64) core.Policy {
	return core.NewReservation(src, 2048)
}

func staticFactory(src core.BlockSource, sizeHint int64) core.Policy {
	return core.NewStatic(src, sizeHint)
}

func newServer(t *testing.T, f PolicyFactory) *Server {
	t.Helper()
	return NewServer(0, DefaultConfig())
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newServer(t, onDemandFactory)
	if err := s.CreateObject(1, onDemandFactory, 0); err != nil {
		t.Fatal(err)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	for i := int64(0); i < 64; i++ {
		if err := s.Write(1, stream, i*8, 8); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if err := s.Read(1, 0, 512); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	st := s.Disk().Stats()
	if st.BlocksWritten < 512 {
		t.Fatalf("BlocksWritten = %d, want >= 512", st.BlocksWritten)
	}
	if st.BlocksRead < 512 {
		t.Fatalf("BlocksRead = %d, want >= 512", st.BlocksRead)
	}
}

func TestReadHoleFails(t *testing.T) {
	s := newServer(t, onDemandFactory)
	s.CreateObject(1, onDemandFactory, 0)
	if err := s.Read(1, 0, 4); err == nil {
		t.Fatal("reading an unwritten object should fail")
	}
}

func TestCreateDuplicateObjectFails(t *testing.T) {
	s := newServer(t, onDemandFactory)
	if err := s.CreateObject(1, onDemandFactory, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateObject(1, onDemandFactory, 0); err == nil {
		t.Fatal("duplicate create should fail")
	}
}

func TestOverwriteDoesNotReallocate(t *testing.T) {
	s := newServer(t, onDemandFactory)
	s.CreateObject(1, onDemandFactory, 0)
	stream := core.StreamID{Client: 1, PID: 1}
	if err := s.Write(1, stream, 0, 16); err != nil {
		t.Fatal(err)
	}
	owned1, _ := s.OwnedBlocks(1)
	if err := s.Write(1, stream, 0, 16); err != nil {
		t.Fatal(err)
	}
	owned2, _ := s.OwnedBlocks(1)
	if owned1 != owned2 {
		t.Fatalf("overwrite grew owned blocks %d -> %d", owned1, owned2)
	}
	s.Flush()
	if err := s.Read(1, 0, 16); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteFreesEverything(t *testing.T) {
	s := newServer(t, onDemandFactory)
	s.CreateObject(1, onDemandFactory, 0)
	stream := core.StreamID{Client: 1, PID: 1}
	// Sequential writes trigger window promotions: owned includes
	// preallocated blocks beyond what was written.
	for i := int64(0); i < 32; i++ {
		if err := s.Write(1, stream, i*4, 4); err != nil {
			t.Fatal(err)
		}
	}
	owned, _ := s.OwnedBlocks(1)
	if owned < 128 {
		t.Fatalf("owned = %d, want >= 128 written blocks", owned)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	a := s.Allocator()
	if a.FreeBlocks() != a.Total() {
		t.Fatalf("FreeBlocks = %d after delete, want %d", a.FreeBlocks(), a.Total())
	}
	if a.ReservedBlocks() != 0 {
		t.Fatal("reservations should be gone after delete")
	}
	if err := s.Read(1, 0, 1); err == nil {
		t.Fatal("read of deleted object should fail")
	}
}

func TestFallocateStatic(t *testing.T) {
	s := newServer(t, staticFactory)
	s.CreateObject(7, staticFactory, 1024)
	if err := s.Fallocate(7, core.StreamID{}, 1024); err != nil {
		t.Fatal(err)
	}
	n, err := s.ExtentCount(7)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("static fallocate should map one extent, got %d", n)
	}
	// Unwritten preallocated blocks read as zeroes (no error).
	if err := s.Read(7, 0, 1024); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSharedFileLessFragmentedWithOnDemand(t *testing.T) {
	// The paper's headline mechanism, end to end at the OST level: 16
	// streams extend disjoint regions round-robin. On-demand placement
	// must yield far fewer extents than the reservation baseline.
	run := func(f PolicyFactory) int {
		s := NewServer(0, DefaultConfig())
		s.CreateObject(1, f, 0)
		const streams = 16
		const regionBlocks = 256
		for i := int64(0); i < regionBlocks; i += 4 {
			for c := 0; c < streams; c++ {
				stream := core.StreamID{Client: uint32(c), PID: 1}
				logical := int64(c)*regionBlocks + i
				if err := s.Write(1, stream, logical, 4); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Flush()
		n, err := s.ExtentCount(1)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	onDemand := run(onDemandFactory)
	reservation := run(reservationFactory)
	if onDemand*4 > reservation {
		t.Fatalf("on-demand extents = %d, reservation = %d; want >= 4x reduction", onDemand, reservation)
	}
}

func TestFragmentedLayoutReadsSlower(t *testing.T) {
	// Phase-2 of the paper's micro-benchmark: reading back the shared
	// file region by region is slower when phase-1 placement interleaved
	// the streams.
	run := func(f PolicyFactory) sim.Ns {
		s := NewServer(0, DefaultConfig())
		s.CreateObject(1, f, 0)
		const streams = 16
		const regionBlocks = 512
		for i := int64(0); i < regionBlocks; i++ {
			for c := 0; c < streams; c++ {
				stream := core.StreamID{Client: uint32(c), PID: 1}
				if err := s.Write(1, stream, int64(c)*regionBlocks+i, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Flush()
		s.Disk().ResetStats()
		// Sequential read back, one region at a time.
		for c := 0; c < streams; c++ {
			for i := int64(0); i < regionBlocks; i += 16 {
				if err := s.Read(1, int64(c)*regionBlocks+i, 16); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Flush()
		return s.Disk().Stats().BusyNs
	}
	onDemand := run(onDemandFactory)
	reservation := run(reservationFactory)
	if reservation < onDemand*11/10 {
		t.Fatalf("reservation read time %d should exceed on-demand %d by >10%%", reservation, onDemand)
	}
}

// Property: for any interleaving of writes from multiple streams, every
// block reads back correctly and owned space always covers mapped space.
func TestWriteReadIntegrityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		s := NewServer(0, DefaultConfig())
		s.CreateObject(1, onDemandFactory, 0)
		written := map[int64]bool{}
		for op := 0; op < 150; op++ {
			stream := core.StreamID{Client: uint32(rng.Intn(4)), PID: 1}
			logical := rng.Int63n(4096)
			count := rng.Int63n(16) + 1
			if err := s.Write(1, stream, logical, count); err != nil {
				return false
			}
			for b := logical; b < logical+count; b++ {
				written[b] = true
			}
		}
		s.Flush()
		for b := range written {
			if err := s.Read(1, b, 1); err != nil {
				return false
			}
		}
		mapped, err := s.Extents(1)
		if err != nil {
			return false
		}
		owned, _ := s.OwnedBlocks(1)
		var mappedBlocks int64
		for _, e := range mapped {
			mappedBlocks += e.Count
		}
		return owned >= mappedBlocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: after deleting any set of objects, the allocator's free count
// equals total minus the owned blocks of the surviving objects.
func TestDeleteAccountingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		s := NewServer(0, DefaultConfig())
		live := map[ObjectID]bool{}
		for op := 0; op < 60; op++ {
			id := ObjectID(rng.Intn(10))
			if live[id] && rng.Intn(3) == 0 {
				if s.Delete(id) != nil {
					return false
				}
				delete(live, id)
				continue
			}
			if !live[id] {
				if s.CreateObject(id, reservationFactory, 0) != nil {
					return false
				}
				live[id] = true
			}
			stream := core.StreamID{Client: uint32(rng.Intn(3)), PID: 1}
			if s.Write(id, stream, rng.Int63n(512), rng.Int63n(8)+1) != nil {
				return false
			}
		}
		var owned int64
		for id := range live {
			n, err := s.OwnedBlocks(id)
			if err != nil {
				return false
			}
			owned += n
		}
		a := s.Allocator()
		return a.FreeBlocks() == a.Total()-owned
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
