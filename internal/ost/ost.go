// Package ost implements the Redbud IO server (object storage target): the
// component that owns one disk, its free-space allocator, its I/O scheduler
// queue, and the per-object allocation policy.
//
// In Redbud "shared disks are actual storage depositories for file data ...
// divided into parallel allocation groups (PAG) for parallel management of
// free space", and "in some parallel file systems, allocator is located in
// their IO servers" — this package is that allocator-side.
package ost

import (
	"fmt"
	"sync"

	"redbud/internal/alloc"
	"redbud/internal/core"
	"redbud/internal/crashsim"
	"redbud/internal/disk"
	"redbud/internal/extent"
	"redbud/internal/iosched"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// ObjectID names one file component stored on a server. The metadata server
// assigns IDs; they are unique per file per OST.
type ObjectID uint64

// PolicyFactory builds the allocation policy for a new object. sizeHint is
// the declared file size in blocks (used by the static/fallocate policy);
// zero means unknown.
type PolicyFactory func(src core.BlockSource, sizeHint int64) core.Policy

// Config holds the construction parameters of one IO server.
type Config struct {
	// Disk is the device model configuration.
	Disk disk.Config
	// Blocks is the device size in blocks.
	Blocks int64
	// GroupBlocks is the parallel-allocation-group size in blocks.
	GroupBlocks int64
	// QueueDepth is the elevator reorder window in requests.
	QueueDepth int
	// BatchBlocks flushes the device queue once this many blocks of
	// *reads* are pending; reads are synchronous, so the reorder window
	// is bounded by what clients keep outstanding. Zero selects the
	// default.
	BatchBlocks int64
	// WriteBatchBlocks flushes once this many blocks of writes are
	// pending. Writes pass through writeback caching, which aggregates
	// far more than the synchronous read path before the disk sees
	// them. Zero selects the default.
	WriteBatchBlocks int64
	// ReadAheadBlocks is the per-reader prefetch window: a read whose
	// blocks continue inside one physical extent is extended up to this
	// many blocks, and later reads of the prefetched range are served
	// from memory. Readahead is what converts logical sequentiality
	// into large disk requests — and what fragmented extents defeat.
	ReadAheadBlocks int64
	// PrefetchCacheBlocks caps the prefetch cache per server.
	PrefetchCacheBlocks int64
	// DelayedAllocation postpones block allocation to flush time,
	// coalescing buffered writes — the ext4/XFS-style alternative the
	// paper positions on-demand preallocation against (§2).
	DelayedAllocation bool
	// DelayedFlushBlocks is the writeback threshold that forces a flush
	// of buffered writes. Zero selects the default (8192).
	DelayedFlushBlocks int64
}

// DefaultConfig returns an IO server over a 4 GiB device with 128 MiB
// allocation groups and a 128-request elevator window.
func DefaultConfig() Config {
	return Config{
		Disk:                disk.DefaultConfig(),
		Blocks:              1 << 20,
		GroupBlocks:         32768,
		QueueDepth:          0, // sort whole flush batches
		BatchBlocks:         128,
		WriteBatchBlocks:    8192,
		ReadAheadBlocks:     64, // 256 KiB prefetch window
		PrefetchCacheBlocks: 16384,
	}
}

// tag identifies the data stored in one physical block, for end-to-end
// verification ("reads them back to verify the correctness of the data").
type tag struct {
	obj     ObjectID
	logical int64
}

// object is the per-file-component state on one server.
type object struct {
	id      ObjectID
	policy  core.Policy
	factory PolicyFactory // rebuilds the policy after a restart
	extents extent.Map
	// owned is every physical range the policy handed out, including
	// preallocated-but-unwritten blocks, so deletion frees exactly the
	// space the object consumed.
	owned alloc.RangeSet
	// written marks logical blocks that carry data.
	written blockSet
	goal    int64
}

// Server is one IO server. All methods are safe for concurrent use.
type Server struct {
	id  int
	cfg Config

	mu           sync.Mutex
	disk         *disk.Disk
	sched        *iosched.Elevator
	alloc        *alloc.Allocator
	objects      map[ObjectID]*object
	tags         tagStore
	queue        []iosched.Request
	pendingRead  int64
	pendingWrite int64
	prefetched   alloc.RangeSet
	prefetchHits int64

	// Delayed-allocation write buffers (nil unless enabled).
	buffered       map[ObjectID][]bufWrite
	bufferedBlocks int64

	// Per-request scratch buffers, reused under mu so the per-block hot
	// paths resolve extent ranges without allocating. lrScratch backs the
	// top-level range resolution of one write/read; innerScratch backs the
	// nested lookups beneath it (gap probing while mapping, readahead
	// containment) whose results are consumed before the next nested call;
	// gapScratch backs the prefetch-cache gap list of one read piece.
	lrScratch    []extent.Extent
	innerScratch []extent.Extent
	gapScratch   []alloc.Range

	// flushHist, when attached, observes the device cost of every queue
	// flush. tracer records client-operation spans; traceParent is the PFS
	// operation span currently being serviced, and curSpan the OST op span
	// that any flush it triggers nests under (both manipulated under mu).
	flushHist   *telemetry.Histogram
	tracer      *telemetry.Tracer
	traceParent telemetry.SpanID
	curSpan     telemetry.SpanID

	// Crash-sweep state (see crash.go): crash arms the named crash
	// points; preimg records enqueued writes' durable pre-images while an
	// injector is attached; flushCrash is the fired damage plan PowerFail
	// applies.
	crash      *crashsim.Injector
	preimg     []writePreImage
	flushCrash *flushDamage
}

// NewServer builds IO server id with the given configuration.
func NewServer(id int, cfg Config) *Server {
	if cfg.BatchBlocks <= 0 {
		cfg.BatchBlocks = 512
	}
	if cfg.WriteBatchBlocks <= 0 {
		cfg.WriteBatchBlocks = 8192
	}
	if cfg.DelayedFlushBlocks <= 0 {
		cfg.DelayedFlushBlocks = 8192
	}
	return &Server{
		id:      id,
		cfg:     cfg,
		disk:    disk.New(cfg.Disk, cfg.Blocks),
		sched:   iosched.NewElevator(cfg.QueueDepth),
		alloc:   alloc.New(cfg.Blocks, cfg.GroupBlocks),
		objects: make(map[ObjectID]*object),
	}
}

// ID returns the server's index.
func (s *Server) ID() int { return s.id }

// Disk exposes the underlying device model for measurement.
func (s *Server) Disk() *disk.Disk { return s.disk }

// Allocator exposes the server's allocator for measurement.
func (s *Server) Allocator() *alloc.Allocator { return s.alloc }

// Scheduler exposes the elevator for measurement.
func (s *Server) Scheduler() *iosched.Elevator { return s.sched }

// Instrument publishes the server's queue and prefetch state into the
// registry and recursively instruments the disk and the elevator it owns.
// Gauges read the live queue under the server lock at snapshot time.
func (s *Server) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	s.mu.Lock()
	s.flushHist = reg.Histogram("ost_flush_ns", labels)
	s.mu.Unlock()
	s.disk.Instrument(reg, labels.With("layer", "disk"))
	s.sched.Instrument(reg, labels.With("layer", "iosched"))
	s.alloc.Instrument(reg, labels.With("layer", "alloc"))
	reg.GaugeFunc("ost_queue_requests", labels, func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.queue))
	})
	reg.GaugeFunc("ost_pending_read_blocks", labels, func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.pendingRead
	})
	reg.GaugeFunc("ost_pending_write_blocks", labels, func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.pendingWrite
	})
	reg.GaugeFunc("ost_buffered_blocks", labels, func() int64 { return s.BufferedBlocks() })
	reg.GaugeFunc("ost_objects", labels, func() int64 { return s.ObjectCount() })
	reg.CounterFunc("ost_prefetch_hit_blocks", labels, func() int64 { return s.PrefetchHits() })
}

// SetTracer attaches (or with nil detaches) the span tracer, propagating it
// to the elevator so dispatches and per-request disk accesses are traced.
func (s *Server) SetTracer(t *telemetry.Tracer) {
	s.mu.Lock()
	s.tracer = t
	s.mu.Unlock()
	s.sched.SetTracer(t)
}

// SetTraceParent declares the client-operation span under which subsequent
// OST operations nest; zero clears it. The PFS mount sets it under its own
// lock before issuing each operation.
func (s *Server) SetTraceParent(id telemetry.SpanID) {
	s.mu.Lock()
	s.traceParent = id
	s.mu.Unlock()
}

// startOpLocked opens an "ost" span for one client operation and makes it
// the parent of any device flush the operation triggers, returning the span
// and the previous flush parent to restore. Safe (and a no-op) without a
// tracer. Callers hold s.mu.
func (s *Server) startOpLocked(name string) (*telemetry.ActiveSpan, telemetry.SpanID) {
	if s.tracer == nil {
		return nil, 0
	}
	sp := s.tracer.Start("ost", name, s.traceParent)
	sp.AnnotateInt("ost", int64(s.id))
	prev := s.curSpan
	s.curSpan = sp.ID()
	return sp, prev
}

// endOpLocked closes an operation span opened by startOpLocked and restores
// the previous flush parent. Callers hold s.mu.
func (s *Server) endOpLocked(sp *telemetry.ActiveSpan, prev telemetry.SpanID) {
	if sp == nil {
		return
	}
	s.curSpan = prev
	sp.End()
}

// CreateObject registers a new object whose blocks will be placed by the
// policy the factory builds. Creating an existing object is an error.
func (s *Server) CreateObject(id ObjectID, factory PolicyFactory, sizeHint int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[id]; ok {
		return fmt.Errorf("ost%d: object %d already exists", s.id, id)
	}
	// Crash point: the cluster dies with this component's object not yet
	// created — a file create torn across servers.
	if _, ok := s.crash.Hit(crashsim.PtOstCreateObject, 0); ok {
		s.crash.Kill()
	}
	s.objects[id] = &object{
		id:      id,
		policy:  factory(s.alloc, sizeHint),
		factory: factory,
	}
	return nil
}

// Restart simulates an IO-server reboot. Durable state survives: the block
// bitmap, the extent maps, preallocated (unwritten) extents — "preallocated
// blocks in the current window are persistent across system reboot". The
// volatile state does not: sequential-window reservations are dropped,
// write buffers and the prefetch cache are discarded, and each object gets
// a fresh policy whose streams start from layout misses.
func (s *Server) Restart() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked() // a clean shutdown; crash loss is modeled by callers dropping buffers first
	ids := make([]ObjectID, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	for _, id := range ids {
		o := s.objects[id]
		o.policy.Close() // releases soft reservations
		o.policy = o.factory(s.alloc, 0)
	}
	s.buffered = nil
	s.bufferedBlocks = 0
	s.prefetched = alloc.RangeSet{}
	s.prefetchHits = 0
}

// object looks up an object, locked.
func (s *Server) object(id ObjectID) (*object, error) {
	o, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("ost%d: no such object %d", s.id, id)
	}
	return o, nil
}

// Write stores count blocks at the object's logical offset on behalf of
// stream, allocating any unmapped blocks through the object's policy, and
// enqueues the device writes.
func (s *Server) Write(id ObjectID, stream core.StreamID, logical, count int64) error {
	if logical < 0 || count <= 0 {
		return fmt.Errorf("ost%d: invalid write [%d,+%d)", s.id, logical, count)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sp, prev := s.startOpLocked("write")
	sp.AnnotateInt("object", int64(id))
	sp.AnnotateInt("blocks", int64(count))
	defer s.endOpLocked(sp, prev)
	o, err := s.object(id)
	if err != nil {
		return err
	}
	if s.cfg.DelayedAllocation {
		s.bufferWriteLocked(o, stream, logical, count)
		err = s.checkBufferPressureLocked()
	} else {
		err = s.writeThroughLocked(o, stream, logical, count)
	}
	if err != nil {
		return err
	}
	// Crash point: the write was accepted but sits in the volatile queue
	// (or the delalloc buffer) — power loss here loses it whole, which is
	// allowed for anything not yet fsynced.
	if _, ok := s.crash.Hit(crashsim.PtOstWriteQueue, count); ok {
		s.crash.Kill()
	}
	return nil
}

// writeThroughLocked allocates (through the policy) and queues the device
// writes for one write. Callers hold s.mu.
func (s *Server) writeThroughLocked(o *object, stream core.StreamID, logical, count int64) error {
	if err := s.ensureMappedLocked(o, stream, logical, count); err != nil {
		return err
	}
	s.lrScratch = o.extents.AppendRange(s.lrScratch[:0], logical, count)
	for _, e := range s.lrScratch {
		// Pre-images must be recorded before enqueue: enqueueLocked can
		// cross the queue-depth threshold and trigger a flush, and the
		// flush fire point resolves damage against the queue it sees.
		if s.crash != nil {
			for i := int64(0); i < e.Count; i++ {
				s.recordPreImageLocked(o, e.Physical+i, e.Logical+i)
			}
		}
		s.enqueueLocked(iosched.Request{Start: e.Physical, Count: e.Count, Write: true})
		for i := int64(0); i < e.Count; i++ {
			s.tags.set(e.Physical+i, o.id, e.Logical+i)
		}
		o.written.setRange(e.Logical, e.Count)
	}
	return nil
}

// ensureMappedLocked allocates and maps any unmapped blocks of the logical
// range. Callers hold s.mu.
func (s *Server) ensureMappedLocked(o *object, stream core.StreamID, logical, count int64) error {
	end := logical + count
	pos := logical
	for pos < end {
		// covered is consumed before the next nested lookup (Place and
		// insertPlacementsLocked reuse the same scratch).
		covered := o.extents.AppendRange(s.innerScratch[:0], pos, end-pos)
		s.innerScratch = covered
		gapEnd := end
		if len(covered) > 0 {
			if covered[0].Logical <= pos {
				pos = covered[0].LogicalEnd()
				continue
			}
			gapEnd = covered[0].Logical
		}
		placements, err := o.policy.Place(stream, pos, gapEnd-pos, o.goal)
		if err != nil {
			return fmt.Errorf("ost%d: place object %d [%d,+%d): %w", s.id, o.id, pos, gapEnd-pos, err)
		}
		if err := s.insertPlacementsLocked(o, placements); err != nil {
			return err
		}
		pos = gapEnd
	}
	return nil
}

// insertPlacementsLocked folds placements into the object's extent map,
// clipping any sub-ranges that are already mapped (promoted windows may
// cover blocks another stream mapped first), and records the physical
// space in the owned set. Callers hold s.mu.
func (s *Server) insertPlacementsLocked(o *object, placements []core.Placement) error {
	for _, pl := range placements {
		o.owned.Add(alloc.Range{Start: pl.Physical, Count: pl.Count})
		logical, count := pl.Logical, pl.Count
		for count > 0 {
			covered := o.extents.AppendRange(s.innerScratch[:0], logical, count)
			s.innerScratch = covered
			gapEnd := logical + count
			if len(covered) > 0 {
				if covered[0].Logical <= logical {
					n := covered[0].LogicalEnd() - logical
					logical += n
					count -= n
					continue
				}
				gapEnd = covered[0].Logical
			}
			off := logical - pl.Logical
			var flags uint32
			if pl.Preallocated {
				flags = extent.FlagPrealloc
			}
			e := extent.Extent{Logical: logical, Physical: pl.Physical + off, Count: gapEnd - logical, Flags: flags}
			if err := o.extents.Insert(e); err != nil {
				return fmt.Errorf("ost%d: map object %d: %w", s.id, o.id, err)
			}
			n := gapEnd - logical
			logical += n
			count -= n
		}
		if end := pl.Physical + pl.Count; end > o.goal {
			o.goal = end
		}
	}
	return nil
}

// Read fetches count blocks at the object's logical offset, enqueuing the
// device reads and verifying end-to-end that every written block resolves
// to the data that was stored there. Reading a hole (never-written,
// never-preallocated block) is an error.
func (s *Server) Read(id ObjectID, logical, count int64) error {
	if logical < 0 || count <= 0 {
		return fmt.Errorf("ost%d: invalid read [%d,+%d)", s.id, logical, count)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sp, prev := s.startOpLocked("read")
	sp.AnnotateInt("object", int64(id))
	sp.AnnotateInt("blocks", int64(count))
	defer s.endOpLocked(sp, prev)
	o, err := s.object(id)
	if err != nil {
		return err
	}
	// Read-after-write consistency under delayed allocation: the
	// object's buffered writes must be allocated first.
	if err := s.flushObjectLocked(o); err != nil {
		return err
	}
	s.lrScratch = o.extents.AppendRange(s.lrScratch[:0], logical, count)
	var mapped int64
	for _, e := range s.lrScratch {
		mapped += e.Count
		s.readWithPrefetchLocked(o, e)
		for i := int64(0); i < e.Count; i++ {
			l := e.Logical + i
			if !o.written.has(l) {
				continue // preallocated, unwritten: reads as zeroes
			}
			got, ok := s.tags.get(e.Physical + i)
			if !ok || got.obj != id || got.logical != l {
				return fmt.Errorf("ost%d: data corruption at object %d logical %d (physical %d): got %+v",
					s.id, id, l, e.Physical+i, got)
			}
		}
	}
	if mapped != count {
		return fmt.Errorf("ost%d: read hole in object %d [%d,+%d): only %d blocks mapped",
			s.id, id, logical, count, mapped)
	}
	return nil
}

// Fallocate persistently preallocates the object's first sizeBlocks blocks,
// the fallocate(2) path of the static policy. For policies without an
// explicit fallocate, the range is placed as one extending write.
func (s *Server) Fallocate(id ObjectID, stream core.StreamID, sizeBlocks int64) error {
	if sizeBlocks <= 0 {
		return fmt.Errorf("ost%d: invalid fallocate size %d", s.id, sizeBlocks)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.object(id)
	if err != nil {
		return err
	}
	if st, ok := o.policy.(*core.Static); ok {
		if err := st.Fallocate(o.goal); err != nil {
			return err
		}
		return s.insertPlacementsLocked(o, st.Placed())
	}
	return s.ensureMappedLocked(o, stream, 0, sizeBlocks)
}

// Delete removes the object, freeing every physical block it owned
// (mapped, preallocated, or leaked by clipped promotions) and dropping its
// temporary reservations.
func (s *Server) Delete(id ObjectID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.object(id)
	if err != nil {
		return err
	}
	s.dropBuffersLocked(id)
	o.policy.Close()
	for _, r := range o.owned.Ranges() {
		if err := s.alloc.Free(r); err != nil {
			return fmt.Errorf("ost%d: delete object %d: %w", s.id, id, err)
		}
		s.tags.clearRange(r.Start, r.End())
	}
	delete(s.objects, id)
	return nil
}

// Truncate cuts the object to newSize blocks: mappings at and beyond the
// boundary are removed and their physical blocks freed, including
// preallocated tails. Growing truncates are a no-op (the space appears on
// the next write; the file systems this models do not allocate holes).
func (s *Server) Truncate(id ObjectID, newSize int64) error {
	if newSize < 0 {
		return fmt.Errorf("ost%d: invalid truncate to %d", s.id, newSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.object(id)
	if err != nil {
		return err
	}
	// Buffered writes beyond the boundary would resurrect the tail.
	if err := s.flushObjectLocked(o); err != nil {
		return err
	}
	const maxLogical = int64(1) << 40
	removed := o.extents.Delete(newSize, maxLogical-newSize)
	// Crash point: the truncate's free list is torn partway through. The
	// mappings are already gone (the extent map update persisted first);
	// Damage.Persisted counts how many of the removed extents were also
	// freed before the lights went out. The rest leak — owned but unmapped
	// — until the post-crash scrub reclaims them, and the written bits past
	// the boundary dangle until the scrub clears them.
	if dmg, ok := s.crash.Hit(crashsim.PtOstTruncatePartial, int64(len(removed))); ok {
		for i := int64(0); i < dmg.Persisted && i < int64(len(removed)); i++ {
			e := removed[i]
			r := alloc.Range{Start: e.Physical, Count: e.Count}
			if err := s.alloc.Free(r); err != nil {
				panic(err)
			}
			o.owned.Remove(r)
			s.prefetched.Remove(r)
			s.tags.clearRange(r.Start, r.End())
		}
		s.crash.Kill()
	}
	for _, e := range removed {
		r := alloc.Range{Start: e.Physical, Count: e.Count}
		if err := s.alloc.Free(r); err != nil {
			return fmt.Errorf("ost%d: truncate object %d: %w", s.id, id, err)
		}
		o.owned.Remove(r)
		s.prefetched.Remove(r)
		s.tags.clearRange(r.Start, r.End())
	}
	o.written.clearFrom(newSize)
	// Preallocated-but-unmapped blocks past the boundary (clipped
	// promotions) stay in owned and are reclaimed at Delete; the policy's
	// windows are reset so future extends reallocate.
	o.policy.Close()
	return nil
}

// CloseObject releases the object's temporary reservations (sequential
// windows); persistent preallocations stay. It models file close.
func (s *Server) CloseObject(id ObjectID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.object(id)
	if err != nil {
		return err
	}
	o.policy.Close()
	return nil
}

// WrittenRuns returns the maximal runs of written logical blocks, sorted
// by logical address — the copy manifest a replica repair works from
// (holes and preallocated-but-unwritten space carry no data and are
// skipped).
func (s *Server) WrittenRuns(id ObjectID) ([]alloc.Range, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.object(id)
	if err != nil {
		return nil, err
	}
	return o.written.appendRuns(nil), nil
}

// ObjectCount returns the number of objects resident on the server.
func (s *Server) ObjectCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.objects))
}

// UsedBlocks returns the allocated (non-free) block count of the volume.
func (s *Server) UsedBlocks() int64 {
	return s.cfg.Blocks - s.alloc.FreeBlocks()
}

// ExtentCount returns the object's segment count (Table I's currency).
func (s *Server) ExtentCount(id ObjectID) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.object(id)
	if err != nil {
		return 0, err
	}
	return o.extents.Len(), nil
}

// Extents returns a copy of the object's extent list.
func (s *Server) Extents(id ObjectID) ([]extent.Extent, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.object(id)
	if err != nil {
		return nil, err
	}
	return o.extents.Extents(), nil
}

// OwnedBlocks returns the number of physical blocks the object holds.
func (s *Server) OwnedBlocks(id ObjectID) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.object(id)
	if err != nil {
		return 0, err
	}
	return o.owned.Blocks(), nil
}

// readWithPrefetchLocked services one mapped read piece with per-reader
// readahead: sub-ranges already prefetched are served from memory; the
// rest is fetched with the request extended through the containing
// physical extent up to the readahead window. Contiguous layouts therefore
// read in few large requests, while fragmented extents bound every request
// at their own length — the mechanism behind the paper's phase-2 numbers.
// Callers hold s.mu.
func (s *Server) readWithPrefetchLocked(o *object, e extent.Extent) {
	if s.cfg.PrefetchCacheBlocks > 0 && s.prefetched.Blocks() > s.cfg.PrefetchCacheBlocks {
		// Epoch eviction: the cache is full; start a new epoch.
		s.prefetched = alloc.RangeSet{}
	}
	phys := alloc.Range{Start: e.Physical, Count: e.Count}
	s.gapScratch = s.prefetched.AppendGaps(s.gapScratch[:0], phys)
	gaps := s.gapScratch
	s.prefetchHits += phys.Count
	for _, g := range gaps {
		s.prefetchHits -= g.Count
		n := g.Count
		if ra := s.cfg.ReadAheadBlocks; ra > n {
			// Extend through the containing extent, up to the
			// readahead window.
			logicalAt := e.Logical + (g.Start - e.Physical)
			cont := o.extents.AppendRange(s.innerScratch[:0], logicalAt, ra)
			s.innerScratch = cont
			if len(cont) > 0 && cont[0].Physical == g.Start && cont[0].Count > n {
				n = cont[0].Count
			}
		}
		s.enqueueLocked(iosched.Request{Start: g.Start, Count: n, Write: false})
		s.prefetched.Add(alloc.Range{Start: g.Start, Count: n})
	}
}

// PrefetchHits returns the number of read blocks served from the prefetch
// cache.
func (s *Server) PrefetchHits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prefetchHits
}

// enqueueLocked appends a device request, flushing the queue when the
// pending read volume reaches the synchronous-read bound or the pending
// write volume reaches the writeback bound. Callers hold s.mu.
func (s *Server) enqueueLocked(r iosched.Request) {
	s.queue = append(s.queue, r)
	if r.Write {
		s.pendingWrite += r.Count
	} else {
		s.pendingRead += r.Count
	}
	if s.pendingRead >= s.cfg.BatchBlocks || s.pendingWrite >= s.cfg.WriteBatchBlocks {
		s.flushLocked()
	}
}

// flushLocked drains the device queue through the elevator. Callers hold
// s.mu.
func (s *Server) flushLocked() sim.Ns {
	if len(s.queue) == 0 {
		return 0
	}
	// Crash point: power fails mid media-burst. The damage plan decides how
	// much of the burst (in submission order) persisted, and whether one
	// payload landed on the wrong block; it is resolved against the queue
	// now, while tags still hold enqueue-time values.
	if s.crash != nil {
		var n int64
		for _, r := range s.queue {
			if r.Write {
				n += r.Count
			}
		}
		if dmg, ok := s.crash.Hit(crashsim.PtOstFlushMedia, n); ok {
			s.planFlushDamageLocked(dmg)
			s.crash.Kill()
		}
	}
	cost := s.sched.RunTraced(s.disk, s.queue, s.curSpan)
	s.queue = s.queue[:0]
	s.pendingRead = 0
	s.pendingWrite = 0
	// A completed flush persisted everything queued; the pre-images of
	// those writes are no longer needed for power-fail rollback.
	if s.crash != nil {
		s.preimg = s.preimg[:0]
	}
	if s.flushHist != nil {
		s.flushHist.Observe(cost)
	}
	return cost
}

// Flush forces buffered writes (under delayed allocation) and all queued
// device requests to storage, returning the device service time. Benchmark
// phases call it at phase boundaries.
func (s *Server) Flush() sim.Ns {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp, prev := s.startOpLocked("flush")
	defer s.endOpLocked(sp, prev)
	if err := s.flushAllBuffersLocked(); err != nil {
		// Allocation failure at writeback time is a data-loss class
		// error; surface loudly in the simulation.
		panic(err)
	}
	return s.flushLocked()
}
