package ost

import (
	"testing"

	"redbud/internal/core"
)

func TestTruncateFreesTail(t *testing.T) {
	s := NewServer(0, DefaultConfig())
	s.CreateObject(1, onDemandFactory, 0)
	stream := core.StreamID{Client: 1, PID: 1}
	if err := s.Write(1, stream, 0, 256); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	freeBefore := s.Allocator().FreeBlocks()
	if err := s.Truncate(1, 64); err != nil {
		t.Fatal(err)
	}
	if got := s.Allocator().FreeBlocks(); got <= freeBefore {
		t.Fatalf("truncate should free blocks: %d -> %d", freeBefore, got)
	}
	// The head survives and verifies; the tail is gone.
	if err := s.Read(1, 0, 64); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(1, 64, 1); err == nil {
		t.Fatal("reading past the truncation point should fail")
	}
	// Re-extending works.
	if err := s.Write(1, stream, 64, 32); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if err := s.Read(1, 0, 96); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateMidExtent(t *testing.T) {
	s := NewServer(0, DefaultConfig())
	s.CreateObject(1, reservationFactory, 0)
	stream := core.StreamID{Client: 1, PID: 1}
	if err := s.Write(1, stream, 0, 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(1, 33); err != nil {
		t.Fatal(err)
	}
	owned, _ := s.OwnedBlocks(1)
	if owned != 33 {
		t.Fatalf("owned = %d after mid-extent truncate, want 33", owned)
	}
	s.Flush()
	if err := s.Read(1, 0, 33); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateToZeroThenDelete(t *testing.T) {
	s := NewServer(0, DefaultConfig())
	s.CreateObject(1, onDemandFactory, 0)
	stream := core.StreamID{Client: 1, PID: 1}
	if err := s.Write(1, stream, 0, 128); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(1, 0); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.ExtentCount(1); n != 0 {
		t.Fatalf("extents after truncate-to-zero = %d", n)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	a := s.Allocator()
	if a.FreeBlocks() != a.Total() {
		t.Fatalf("leaked %d blocks", a.Total()-a.FreeBlocks())
	}
}

func TestTruncateGrowIsNoop(t *testing.T) {
	s := NewServer(0, DefaultConfig())
	s.CreateObject(1, vanillaFactory, 0)
	stream := core.StreamID{Client: 1, PID: 1}
	if err := s.Write(1, stream, 0, 16); err != nil {
		t.Fatal(err)
	}
	owned, _ := s.OwnedBlocks(1)
	if err := s.Truncate(1, 4096); err != nil {
		t.Fatal(err)
	}
	owned2, _ := s.OwnedBlocks(1)
	if owned != owned2 {
		t.Fatalf("growing truncate changed owned blocks %d -> %d", owned, owned2)
	}
	if err := s.Truncate(1, -1); err == nil {
		t.Fatal("negative truncate should fail")
	}
}

func TestTruncateWithDelalloc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayedAllocation = true
	s := NewServer(0, cfg)
	s.CreateObject(1, vanillaFactory, 0)
	stream := core.StreamID{Client: 1, PID: 1}
	if err := s.Write(1, stream, 0, 64); err != nil {
		t.Fatal(err)
	}
	// Buffered writes must be flushed by truncate, then cut.
	if err := s.Truncate(1, 16); err != nil {
		t.Fatal(err)
	}
	owned, _ := s.OwnedBlocks(1)
	if owned != 16 {
		t.Fatalf("owned = %d, want 16", owned)
	}
	s.Flush()
	if err := s.Read(1, 0, 16); err != nil {
		t.Fatal(err)
	}
}
