package ost

import (
	"strings"
	"testing"

	"redbud/internal/alloc"
	"redbud/internal/core"
)

// fragmentTwo interleaves writes from two vanilla-policy objects so each
// ends up in many small, alternating extents — the aging pattern the paper
// measures and the defrag machinery exists to undo. Each object gets
// rounds*chunk logically contiguous blocks.
func fragmentTwo(t *testing.T, rounds, chunk int64) *Server {
	t.Helper()
	s := NewServer(0, DefaultConfig())
	for _, id := range []ObjectID{1, 2} {
		if err := s.CreateObject(id, vanillaFactory, 0); err != nil {
			t.Fatal(err)
		}
	}
	st1 := core.StreamID{Client: 1, PID: 1}
	st2 := core.StreamID{Client: 1, PID: 2}
	for i := int64(0); i < rounds; i++ {
		if err := s.Write(1, st1, i*chunk, chunk); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(2, st2, i*chunk, chunk); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	return s
}

func TestFragReport(t *testing.T) {
	s := fragmentTwo(t, 16, 4)
	r, err := s.FragReport(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Extents != 16 {
		t.Fatalf("Extents = %d, want 16 interleaved pieces", r.Extents)
	}
	if r.MappedBlocks != 64 || r.OwnedBlocks != 64 {
		t.Fatalf("MappedBlocks = %d OwnedBlocks = %d, want 64", r.MappedBlocks, r.OwnedBlocks)
	}
	if r.IdealExtents != 1 {
		t.Fatalf("IdealExtents = %d, want 1 (no logical holes)", r.IdealExtents)
	}
	if r.Degree != 16 {
		t.Fatalf("Degree = %v, want 16", r.Degree)
	}
	if r.SpanBlocks <= r.MappedBlocks {
		t.Fatalf("SpanBlocks = %d, want > %d for an interleaved layout", r.SpanBlocks, r.MappedBlocks)
	}
	all := s.FragReportAll()
	if len(all) != 2 || all[0].Object != 1 || all[1].Object != 2 {
		t.Fatalf("FragReportAll = %+v, want objects 1,2 in order", all)
	}
}

func TestFragReportIdealCountsHoles(t *testing.T) {
	s := NewServer(0, DefaultConfig())
	s.CreateObject(1, vanillaFactory, 0)
	st := core.StreamID{Client: 1, PID: 1}
	// Two logical runs separated by a hole: the ideal layout needs two
	// extents, so a two-extent object is NOT fragmented.
	s.Write(1, st, 0, 8)
	s.Write(1, st, 100, 8)
	s.Flush()
	r, err := s.FragReport(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.IdealExtents != 2 {
		t.Fatalf("IdealExtents = %d, want 2 (hole splits the logical runs)", r.IdealExtents)
	}
	if r.Extents == r.IdealExtents && r.Degree != 1 {
		t.Fatalf("Degree = %v, want 1 for an ideal layout", r.Degree)
	}
}

// TestCopyRangeCrashSafety drives a migration through its two halves and
// verifies the crash-contract at the midpoint: after CopyRange but before
// FreeMigrated — the state a crash would freeze — the server is fully
// consistent, the data verifiable, and the old blocks merely leaked.
func TestCopyRangeCrashSafety(t *testing.T) {
	s := fragmentTwo(t, 16, 4)
	const owner alloc.Owner = 1 << 40
	freeBefore := s.Allocator().FreeBlocks()

	dst, err := s.Allocator().ReserveNear(owner, s.Allocator().FreeContig().LargestStart, 64)
	if err != nil || dst.Count != 64 {
		t.Fatalf("ReserveNear = %v, %v; want a 64-block destination", dst, err)
	}
	cost, old, err := s.CopyRange(1, owner, 0, 64, dst)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatalf("cost = %v, want positive device time for a 64-block copy", cost)
	}
	var oldBlocks int64
	for _, e := range old {
		oldBlocks += e.Count
	}
	if oldBlocks != 64 {
		t.Fatalf("old extents cover %d blocks, want 64", oldBlocks)
	}

	// Mid-migration: consistent, data intact, old space leaked not lost.
	rep := s.CheckConsistency()
	if !rep.Clean() {
		t.Fatalf("mid-migration problems: %s", strings.Join(rep.Problems, "; "))
	}
	if rep.LeakedBlocks != 64 {
		t.Fatalf("LeakedBlocks = %d, want exactly the 64 not-yet-freed source blocks", rep.LeakedBlocks)
	}
	for _, id := range []ObjectID{1, 2} {
		if err := s.Read(id, 0, 64); err != nil {
			t.Fatalf("read object %d mid-migration: %v", id, err)
		}
	}
	if r, _ := s.FragReport(1); r.Extents != 1 {
		t.Fatalf("Extents after migration = %d, want 1 contiguous", r.Extents)
	}

	// Second half: the leak disappears, free space is conserved.
	if err := s.FreeMigrated(1, old); err != nil {
		t.Fatal(err)
	}
	rep = s.CheckConsistency()
	if !rep.Clean() || rep.LeakedBlocks != 0 {
		t.Fatalf("after FreeMigrated: leaks=%d problems=%v", rep.LeakedBlocks, rep.Problems)
	}
	if free := s.Allocator().FreeBlocks(); free != freeBefore {
		t.Fatalf("FreeBlocks = %d, want %d (migration must conserve space)", free, freeBefore)
	}
	if err := s.Read(1, 0, 64); err != nil {
		t.Fatal(err)
	}
}

func TestCopyRangeRejectsBadArguments(t *testing.T) {
	s := fragmentTwo(t, 4, 4)
	const owner alloc.Owner = 1 << 40
	dst, err := s.Allocator().ReserveNear(owner, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Destination length must match the range.
	if _, _, err := s.CopyRange(1, owner, 0, 4, dst); err == nil {
		t.Fatal("mismatched destination length should fail")
	}
	// The range must be fully mapped.
	if _, _, err := s.CopyRange(1, owner, 1000, 8, dst); err == nil {
		t.Fatal("migrating an unmapped range should fail")
	}
	// Failed attempts must not have consumed the reservation.
	if got := s.Allocator().Reservations(owner); len(got) != 1 || got[0] != dst {
		t.Fatalf("reservation disturbed by failed CopyRange: %v", got)
	}
}

func TestNextMappedExtentWalk(t *testing.T) {
	s := fragmentTwo(t, 4, 4)
	var walked int64
	cursor := int64(0)
	for {
		e, ok, err := s.NextMappedExtent(1, cursor)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if e.Logical != cursor {
			t.Fatalf("walk skipped: extent at %d, cursor %d", e.Logical, cursor)
		}
		walked += e.Count
		cursor = e.LogicalEnd()
	}
	if walked != 16 {
		t.Fatalf("walked %d blocks, want 16", walked)
	}
}
