package ost

import (
	"sort"

	"redbud/internal/core"
	"redbud/internal/crashsim"
)

// Delayed allocation (§2 related work): "delayed allocation is also
// proposed in these file systems to postpone allocation to page flush
// time, rather than during the write() operation. This method provides
// the opportunity to combine many block allocation requests into a single
// request... However, it assumes the data can be buffered in the memory
// for a long time, thus do not fit application with explicit sync
// requests well."
//
// With Config.DelayedAllocation set, extending writes are buffered and the
// placement policy runs at flush time over the coalesced ranges. An fsync
// (or a read of the object, or the writeback threshold) forces the flush —
// so frequent syncs shrink the coalescing window back toward per-request
// allocation, which is exactly the weakness on-demand preallocation
// avoids. The ablation benchmarks sweep the fsync interval to show it.

// bufWrite is one buffered extending write.
type bufWrite struct {
	stream  core.StreamID
	logical int64
	count   int64
}

// bufferWriteLocked queues a write under delayed allocation. Callers hold
// s.mu.
func (s *Server) bufferWriteLocked(o *object, stream core.StreamID, logical, count int64) {
	if s.buffered == nil {
		s.buffered = make(map[ObjectID][]bufWrite)
	}
	s.buffered[o.id] = append(s.buffered[o.id], bufWrite{stream: stream, logical: logical, count: count})
	s.bufferedBlocks += count
}

// flushObjectLocked allocates and writes an object's buffered ranges:
// the buffered writes are coalesced into maximal logical runs per stream,
// each placed with one policy call — the "single request" delayed
// allocation combines many block allocations into. Callers hold s.mu.
func (s *Server) flushObjectLocked(o *object) error {
	buf := s.buffered[o.id]
	if len(buf) == 0 {
		return nil
	}
	delete(s.buffered, o.id)
	for _, w := range buf {
		s.bufferedBlocks -= w.count
	}
	// Coalesce: sort by logical, merge overlapping/adjacent ranges.
	// The merged run is attributed to the stream of its first write.
	sort.SliceStable(buf, func(i, j int) bool { return buf[i].logical < buf[j].logical })
	runs := buf[:0]
	for _, w := range buf {
		if n := len(runs); n > 0 && runs[n-1].logical+runs[n-1].count >= w.logical {
			end := w.logical + w.count
			if have := runs[n-1].logical + runs[n-1].count; end > have {
				runs[n-1].count += end - have
			}
			continue
		}
		runs = append(runs, w)
	}
	for _, r := range runs {
		if err := s.writeThroughLocked(o, r.stream, r.logical, r.count); err != nil {
			return err
		}
	}
	return nil
}

// flushAllBuffersLocked flushes every object's buffered writes. Callers
// hold s.mu.
func (s *Server) flushAllBuffersLocked() error {
	// Deterministic order for reproducible simulations.
	ids := make([]ObjectID, 0, len(s.buffered))
	for id := range s.buffered {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o, err := s.object(id)
		if err != nil {
			// The object vanished with buffers pending: a Delete
			// dropped them already.
			continue
		}
		if err := s.flushObjectLocked(o); err != nil {
			return err
		}
	}
	return nil
}

// Fsync forces the object's buffered writes (if any) to be allocated and
// queued to the device, then flushes the device queue — the explicit sync
// that defeats delayed allocation's coalescing.
func (s *Server) Fsync(id ObjectID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp, prev := s.startOpLocked("fsync")
	defer s.endOpLocked(sp, prev)
	o, err := s.object(id)
	if err != nil {
		return err
	}
	// Crash point: power fails at the fsync barrier, before the buffered
	// and queued writes reach the media — the sync must NOT have been
	// acknowledged, so everything it covered may legally vanish.
	if _, ok := s.crash.Hit(crashsim.PtOstFsyncBarrier, s.bufferedBlocks); ok {
		s.crash.Kill()
	}
	if err := s.flushObjectLocked(o); err != nil {
		return err
	}
	s.flushLocked()
	return nil
}

// BufferedBlocks reports the blocks currently buffered under delayed
// allocation, a test hook.
func (s *Server) BufferedBlocks() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bufferedBlocks
}

// dropBuffersLocked discards an object's buffered writes (used by Delete).
// Callers hold s.mu.
func (s *Server) dropBuffersLocked(id ObjectID) {
	for _, w := range s.buffered[id] {
		s.bufferedBlocks -= w.count
	}
	delete(s.buffered, id)
}

// checkBufferPressureLocked flushes all buffers when the writeback
// threshold is exceeded. Callers hold s.mu.
func (s *Server) checkBufferPressureLocked() error {
	if s.cfg.DelayedFlushBlocks > 0 && s.bufferedBlocks >= s.cfg.DelayedFlushBlocks {
		return s.flushAllBuffersLocked()
	}
	return nil
}
