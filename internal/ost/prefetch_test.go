package ost

import (
	"testing"

	"redbud/internal/core"
)

func TestReadaheadExtendsThroughExtent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadAheadBlocks = 64
	s := NewServer(0, cfg)
	s.CreateObject(1, staticFactory, 512)
	if err := s.Fallocate(1, core.StreamID{}, 512); err != nil {
		t.Fatal(err)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	if err := s.Write(1, stream, 0, 512); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	s.Disk().ResetStats()
	// 8-block sequential reads over a contiguous extent: readahead
	// fetches 64 at a time, so 7 of every 8 requests are free.
	for off := int64(0); off < 512; off += 8 {
		if err := s.Read(1, off, 8); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if got := s.Disk().Stats().Requests; got > 10 {
		t.Fatalf("readahead should collapse 64 reads into ~8 disk requests, got %d", got)
	}
	if s.PrefetchHits() < 400 {
		t.Fatalf("PrefetchHits = %d, want most of the 512 blocks", s.PrefetchHits())
	}
}

func TestReadaheadBoundedByExtent(t *testing.T) {
	// A fragmented layout defeats readahead: each extent ends after 4
	// blocks, so every request costs a disk access.
	cfg := DefaultConfig()
	cfg.ReadAheadBlocks = 64
	s := NewServer(0, cfg)
	s.CreateObject(1, reservationFactory, 0)
	// Two interleaved streams at 4-block granularity fragment both
	// regions.
	for i := int64(0); i < 64; i++ {
		for c := 0; c < 2; c++ {
			stream := core.StreamID{Client: uint32(c), PID: 1}
			if err := s.Write(1, stream, int64(c)*256+i*4, 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Flush()
	s.Disk().ResetStats()
	for off := int64(0); off < 256; off += 4 {
		if err := s.Read(1, off, 4); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if got := s.Disk().Stats().Requests; got < 32 {
		t.Fatalf("fragmented extents should bound readahead: got only %d requests", got)
	}
}

func TestPrefetchEpochEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadAheadBlocks = 64
	cfg.PrefetchCacheBlocks = 128
	s := NewServer(0, cfg)
	s.CreateObject(1, staticFactory, 1024)
	s.Fallocate(1, core.StreamID{}, 1024)
	stream := core.StreamID{Client: 1, PID: 1}
	s.Write(1, stream, 0, 1024)
	s.Flush()
	// Stream through more data than the cache holds; the epoch clears
	// and re-reads still work.
	for pass := 0; pass < 2; pass++ {
		for off := int64(0); off < 1024; off += 32 {
			if err := s.Read(1, off, 32); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Flush()
	// With a 128-block cache over a 1024-block file, the second pass
	// cannot be fully served from memory.
	if got := s.Disk().Stats().BlocksRead; got <= 1024 {
		t.Fatalf("BlocksRead = %d: epoch eviction should force re-reads on pass 2", got)
	}
}
