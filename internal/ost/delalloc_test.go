package ost

import (
	"testing"

	"redbud/internal/core"
)

// newDelalloc builds a server with delayed allocation over the vanilla
// policy — the combination ext4 uses.
func newDelalloc(t *testing.T, flushBlocks int64) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DelayedAllocation = true
	cfg.DelayedFlushBlocks = flushBlocks
	return NewServer(0, cfg)
}

func vanillaFactory(src core.BlockSource, _ int64) core.Policy {
	return core.NewVanilla(src)
}

func TestDelallocBuffersUntilFsync(t *testing.T) {
	s := newDelalloc(t, 1<<20)
	s.CreateObject(1, vanillaFactory, 0)
	stream := core.StreamID{Client: 1, PID: 1}
	for i := int64(0); i < 16; i++ {
		if err := s.Write(1, stream, i*4, 4); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.BufferedBlocks(); got != 64 {
		t.Fatalf("BufferedBlocks = %d, want 64", got)
	}
	if n, _ := s.ExtentCount(1); n != 0 {
		t.Fatalf("no allocation should happen before flush, got %d extents", n)
	}
	if err := s.Fsync(1); err != nil {
		t.Fatal(err)
	}
	if got := s.BufferedBlocks(); got != 0 {
		t.Fatalf("BufferedBlocks after fsync = %d, want 0", got)
	}
	// The 16 adjacent writes coalesced into one allocation.
	if n, _ := s.ExtentCount(1); n != 1 {
		t.Fatalf("coalesced flush should produce 1 extent, got %d", n)
	}
}

func TestDelallocReadForcesFlush(t *testing.T) {
	s := newDelalloc(t, 1<<20)
	s.CreateObject(1, vanillaFactory, 0)
	stream := core.StreamID{Client: 1, PID: 1}
	if err := s.Write(1, stream, 0, 8); err != nil {
		t.Fatal(err)
	}
	// Read-after-write must see the data.
	if err := s.Read(1, 0, 8); err != nil {
		t.Fatal(err)
	}
	if s.BufferedBlocks() != 0 {
		t.Fatal("read should have flushed the buffers")
	}
}

func TestDelallocWritebackThreshold(t *testing.T) {
	s := newDelalloc(t, 32)
	s.CreateObject(1, vanillaFactory, 0)
	stream := core.StreamID{Client: 1, PID: 1}
	for i := int64(0); i < 10; i++ {
		if err := s.Write(1, stream, i*4, 4); err != nil {
			t.Fatal(err)
		}
	}
	// 40 blocks written; the 32-block threshold must have flushed.
	if got := s.BufferedBlocks(); got >= 32 {
		t.Fatalf("threshold did not flush: %d blocks buffered", got)
	}
}

func TestDelallocDeleteDropsBuffers(t *testing.T) {
	s := newDelalloc(t, 1<<20)
	s.CreateObject(1, vanillaFactory, 0)
	stream := core.StreamID{Client: 1, PID: 1}
	if err := s.Write(1, stream, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if s.BufferedBlocks() != 0 {
		t.Fatal("delete should drop buffered writes")
	}
	a := s.Allocator()
	if a.FreeBlocks() != a.Total() {
		t.Fatal("deleted never-flushed object should free everything")
	}
	// Flushing afterwards must not resurrect the object.
	s.Flush()
}

func TestDelallocCoalescingBeatsSyncHeavy(t *testing.T) {
	// The paper's positioning of the two techniques: delayed allocation
	// places well when data lingers in memory, but explicit syncs
	// shrink its window; frequent fsync should cost more extents.
	run := func(fsyncEvery int64) int {
		s := newDelalloc(t, 1<<20)
		s.CreateObject(1, vanillaFactory, 0)
		// Two interleaved streams extending disjoint regions.
		for i := int64(0); i < 128; i++ {
			for c := 0; c < 2; c++ {
				stream := core.StreamID{Client: uint32(c), PID: 1}
				if err := s.Write(1, stream, int64(c)*512+i*4, 4); err != nil {
					t.Fatal(err)
				}
			}
			if fsyncEvery > 0 && (i+1)%fsyncEvery == 0 {
				if err := s.Fsync(1); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Flush()
		n, err := s.ExtentCount(1)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	relaxed := run(0) // single flush at the end
	syncHeavy := run(1)
	if relaxed > 4 {
		t.Fatalf("fully-buffered delayed allocation should coalesce to few extents, got %d", relaxed)
	}
	if syncHeavy <= relaxed*8 {
		t.Fatalf("per-write fsync should fragment delayed allocation: %d vs %d extents", syncHeavy, relaxed)
	}
}

func TestOnDemandStableUnderSyncPressure(t *testing.T) {
	// On-demand preallocation "can improve data placement on concurrent
	// access without any runtime assumption": its layout quality must
	// not depend on the fsync interval.
	run := func(fsyncEvery int64) int {
		cfg := DefaultConfig()
		s := NewServer(0, cfg)
		s.CreateObject(1, onDemandFactory, 0)
		for i := int64(0); i < 128; i++ {
			for c := 0; c < 2; c++ {
				stream := core.StreamID{Client: uint32(c), PID: 1}
				if err := s.Write(1, stream, int64(c)*512+i*4, 4); err != nil {
					t.Fatal(err)
				}
			}
			if fsyncEvery > 0 && (i+1)%fsyncEvery == 0 {
				if err := s.Fsync(1); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Flush()
		n, err := s.ExtentCount(1)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	relaxed := run(0)
	syncHeavy := run(1)
	if syncHeavy != relaxed {
		t.Fatalf("on-demand extents should be sync-invariant: %d vs %d", syncHeavy, relaxed)
	}
}
