package ost

import (
	"fmt"
	"sort"

	"redbud/internal/alloc"
	"redbud/internal/crashsim"
	"redbud/internal/extent"
	"redbud/internal/iosched"
	"redbud/internal/sim"
)

// This file is the IO-server half of the online defragmentation engine
// (internal/defrag): the fragmentation report the scanner consumes and the
// crash-safe migration primitives the mover drives.
//
// A migration moves the mapped blocks of a logical range into a contiguous
// destination that the mover reserved through the allocator (so foreground
// allocation never lands inside it). The commit ordering is the classic
// defragmenter discipline: the new blocks are written and the extent map is
// committed to point at them *before* the old blocks are freed. A crash
// between the two steps leaks the old blocks (they stay allocated and
// owned, reclaimed at object deletion) but can never corrupt data — there
// is no instant at which a mapped block is unallocated or carries stale
// data. CopyRange is the first step, FreeMigrated the second;
// CheckConsistency is the fsck-style verifier of exactly that invariant.

// FragReport is the fragmentation summary of one object, everything the
// defrag scanner (and `mifctl report`) needs in a single locked call.
type FragReport struct {
	// Object names the reported object.
	Object ObjectID
	// Extents is the segment count — the paper's fragmentation currency.
	Extents int
	// IdealExtents is the minimum segment count the object's logical
	// shape admits: one per maximal logical run (holes split runs). A
	// perfectly defragmented object has Extents == IdealExtents.
	IdealExtents int
	// MappedBlocks is the number of mapped logical blocks.
	MappedBlocks int64
	// OwnedBlocks counts every physical block the object holds,
	// including preallocated-but-unmapped space.
	OwnedBlocks int64
	// SpanBlocks is the physical spread: the distance from the first to
	// the last physical block across all extents. A contiguous object
	// has SpanBlocks == MappedBlocks.
	SpanBlocks int64
	// Degree is the paper-style fragmentation degree: the number of
	// layout mapping units divided by the minimum needed (IdealExtents),
	// 1.0 for a perfect layout.
	Degree float64
}

// fragReportLocked builds the report for one object. Callers hold s.mu.
func (s *Server) fragReportLocked(o *object) FragReport {
	r := FragReport{
		Object:       o.id,
		Extents:      o.extents.Len(),
		MappedBlocks: o.extents.MappedBlocks(),
		OwnedBlocks:  o.owned.Blocks(),
	}
	exts := o.extents.Extents()
	if len(exts) > 0 {
		minPhys, maxPhys := exts[0].Physical, exts[0].PhysicalEnd()
		r.IdealExtents = 1
		for i, e := range exts {
			if e.Physical < minPhys {
				minPhys = e.Physical
			}
			if e.PhysicalEnd() > maxPhys {
				maxPhys = e.PhysicalEnd()
			}
			if i > 0 && exts[i-1].LogicalEnd() != e.Logical {
				r.IdealExtents++
			}
		}
		r.SpanBlocks = maxPhys - minPhys
		r.Degree = float64(r.Extents) / float64(r.IdealExtents)
	}
	return r
}

// FragReport returns the fragmentation summary of one object.
func (s *Server) FragReport(id ObjectID) (FragReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.object(id)
	if err != nil {
		return FragReport{}, err
	}
	return s.fragReportLocked(o), nil
}

// FragReportAll returns the fragmentation summary of every object on the
// server, sorted by object ID for deterministic scans.
func (s *Server) FragReportAll() []FragReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]FragReport, 0, len(s.objects))
	for _, o := range s.objects {
		out = append(out, s.fragReportLocked(o))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object < out[j].Object })
	return out
}

// NextMappedExtent returns the first mapped piece of the object at or
// after logical block from (clipped to start there), with ok false when
// nothing further is mapped. The mover walks objects with it one slice at
// a time, so a concurrent truncate or extend is picked up between slices.
func (s *Server) NextMappedExtent(id ObjectID, from int64) (extent.Extent, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.object(id)
	if err != nil {
		return extent.Extent{}, false, err
	}
	e, ok := o.extents.NextAt(from)
	return e, ok, nil
}

// PendingRequests returns the number of foreground device requests queued
// but not yet flushed. The defrag mover checks it to yield to foreground
// traffic.
func (s *Server) PendingRequests() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// CopyRange migrates the object's logical range [logical, logical+count) —
// which must be fully mapped — into the physical destination dst, which the
// caller must hold reserved under owner on this server's allocator and
// whose length must equal count. It performs the first, crash-safe half of
// a migration: read the old blocks, convert the reservation and write the
// new ones, then commit the extent map to the new location. The old
// physical extents are returned still allocated; the caller completes the
// migration with FreeMigrated (a crash in between leaks them, never
// corrupts). The returned cost is the device service time of the copy.
func (s *Server) CopyRange(id ObjectID, owner alloc.Owner, logical, count int64, dst alloc.Range) (sim.Ns, []extent.Extent, error) {
	if logical < 0 || count <= 0 {
		return 0, nil, fmt.Errorf("ost%d: invalid migrate range [%d,+%d)", s.id, logical, count)
	}
	if dst.Count != count {
		return 0, nil, fmt.Errorf("ost%d: migrate destination [%d,+%d) does not match range length %d",
			s.id, dst.Start, dst.Count, count)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sp, prev := s.startOpLocked("migrate")
	sp.AnnotateInt("object", int64(id))
	sp.AnnotateInt("blocks", int64(count))
	defer s.endOpLocked(sp, prev)
	o, err := s.object(id)
	if err != nil {
		return 0, nil, err
	}
	// Buffered writes of the object must be placed first, or the copy
	// would miss data that logically precedes it.
	if err := s.flushObjectLocked(o); err != nil {
		return 0, nil, err
	}
	old := o.extents.LookupRange(logical, count)
	var mapped int64
	for _, e := range old {
		mapped += e.Count
	}
	if mapped != count {
		return 0, nil, fmt.Errorf("ost%d: migrate range [%d,+%d) of object %d only %d blocks mapped",
			s.id, logical, count, id, mapped)
	}

	// Claim the destination: the reservation becomes a persistent
	// allocation, atomically with respect to foreground allocation.
	if err := s.alloc.ConvertReserved(owner, dst); err != nil {
		return 0, nil, fmt.Errorf("ost%d: migrate object %d: %w", s.id, id, err)
	}
	// Crash point: the destination claim persisted but nothing owns it yet
	// — an orphaned allocation the post-crash scrub must reclaim.
	if _, ok := s.crash.Hit(crashsim.PtOstMigrateClaim, dst.Count); ok {
		s.crash.Kill()
	}

	// Device I/O: read every old extent that carries data, write its new
	// home. The batch runs through the elevator directly — defrag I/O
	// must not ride the foreground queue, whose batching thresholds
	// belong to client traffic.
	var reqs []iosched.Request
	pos := dst.Start
	for _, e := range old {
		if e.Flags&extent.FlagPrealloc == 0 {
			reqs = append(reqs, iosched.Request{Start: e.Physical, Count: e.Count, Write: false})
			reqs = append(reqs, iosched.Request{Start: pos, Count: e.Count, Write: true})
		}
		pos += e.Count
	}
	// Crash point: power fails during the migration copy. The extent map
	// still names the old location and the old data is untouched, so the
	// object survives intact; the claimed destination is an orphan.
	if s.crash != nil {
		var n int64
		for _, r := range reqs {
			if r.Write {
				n += r.Count
			}
		}
		if _, ok := s.crash.Hit(crashsim.PtOstMigrateCopy, n); ok {
			s.crash.Kill()
		}
	}
	var cost sim.Ns
	if len(reqs) > 0 {
		cost = s.sched.RunTraced(s.disk, reqs, s.curSpan)
	}

	// Commit: repoint the map at the new blocks. Old blocks stay
	// allocated (and owned) until FreeMigrated — the crash-safe order.
	removed := o.extents.Delete(logical, count)
	pos = dst.Start
	for _, e := range removed {
		ne := extent.Extent{Logical: e.Logical, Physical: pos, Count: e.Count, Flags: e.Flags}
		if err := o.extents.Insert(ne); err != nil {
			return cost, nil, fmt.Errorf("ost%d: migrate commit object %d: %w", s.id, id, err)
		}
		for i := int64(0); i < e.Count; i++ {
			if l := e.Logical + i; o.written.has(l) {
				s.tags.set(pos+i, id, l)
			}
		}
		pos += e.Count
	}
	o.owned.Add(dst)
	if end := dst.End(); end > o.goal {
		o.goal = end
	}
	// Crash point: the commit persisted — map, tags and ownership all name
	// the new home — but the old extents were never freed. They leak (owned
	// but unmapped) until the scrub reclaims them; the data is never at
	// risk, which is the point of the new-before-free ordering.
	if _, ok := s.crash.Hit(crashsim.PtOstMigrateCommit, count); ok {
		s.crash.Kill()
	}
	return cost, removed, nil
}

// FreeMigrated completes a migration started by CopyRange: the old
// physical extents are released to the allocator, dropped from the
// object's owned set and the prefetch cache, and their data tags cleared.
func (s *Server) FreeMigrated(id ObjectID, old []extent.Extent) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.object(id)
	if err != nil {
		return err
	}
	// Crash point: the free list of a committed migration is torn.
	// Damage.Persisted counts the old extents released before the failure;
	// the rest leak until the scrub reclaims them.
	if dmg, ok := s.crash.Hit(crashsim.PtOstMigrateFree, int64(len(old))); ok {
		for i := int64(0); i < dmg.Persisted && i < int64(len(old)); i++ {
			e := old[i]
			r := alloc.Range{Start: e.Physical, Count: e.Count}
			if err := s.alloc.Free(r); err != nil {
				panic(err)
			}
			o.owned.Remove(r)
			s.prefetched.Remove(r)
			s.tags.clearRange(r.Start, r.End())
		}
		s.crash.Kill()
	}
	for _, e := range old {
		r := alloc.Range{Start: e.Physical, Count: e.Count}
		if err := s.alloc.Free(r); err != nil {
			return fmt.Errorf("ost%d: migrate free object %d: %w", s.id, id, err)
		}
		o.owned.Remove(r)
		s.prefetched.Remove(r)
		s.tags.clearRange(r.Start, r.End())
	}
	return nil
}

// CheckReport is the result of an IO-server consistency walk.
type CheckReport struct {
	// Objects and MappedBlocks size the walk.
	Objects      int
	MappedBlocks int64
	// LeakedBlocks counts physical blocks that are owned and allocated
	// but not mapped — preallocated windows and half-completed
	// migrations. Leaks waste space but are not corruption; deletion
	// reclaims them.
	LeakedBlocks int64
	// Problems lists every invariant violation found.
	Problems []string
}

// Clean reports whether the walk found no problems.
func (r *CheckReport) Clean() bool { return len(r.Problems) == 0 }

func (r *CheckReport) problemf(format string, args ...interface{}) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// CheckConsistency walks every object and verifies the server's structural
// invariants, the OST-side analogue of miffsck: extent maps well-formed;
// every mapped block allocated in the bitmap, inside its object's owned
// set, and mapped by no other object; every written block carrying the
// data that was stored at its logical address. It is how the crash-safety
// of the migration ordering is verified: after CopyRange without
// FreeMigrated the walk must stay clean, with the old blocks reported as
// leaks.
func (s *Server) CheckConsistency() CheckReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep CheckReport
	ids := make([]ObjectID, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	owner := make(map[int64]ObjectID)
	for _, id := range ids {
		o := s.objects[id]
		rep.Objects++
		if err := o.extents.Validate(); err != nil {
			rep.problemf("object %d: %v", id, err)
		}
		var mapped int64
		for _, e := range o.extents.Extents() {
			mapped += e.Count
			r := alloc.Range{Start: e.Physical, Count: e.Count}
			if !s.alloc.Allocated(r) {
				rep.problemf("object %d: extent %v not allocated in bitmap", id, e)
			}
			if !o.owned.Contains(r) {
				rep.problemf("object %d: extent %v outside owned set", id, e)
			}
			for b := r.Start; b < r.End(); b++ {
				if prev, ok := owner[b]; ok {
					rep.problemf("object %d: block %d also mapped by object %d", id, b, prev)
				}
				owner[b] = id
			}
			for i := int64(0); i < e.Count; i++ {
				l := e.Logical + i
				if !o.written.has(l) {
					continue
				}
				got, ok := s.tags.get(e.Physical + i)
				if !ok || got.obj != id || got.logical != l {
					rep.problemf("object %d: logical %d (physical %d) carries %+v", id, l, e.Physical+i, got)
				}
			}
		}
		rep.MappedBlocks += mapped
		rep.LeakedBlocks += o.owned.Blocks() - mapped
		for _, r := range o.owned.Ranges() {
			if !s.alloc.Allocated(r) {
				rep.problemf("object %d: owned range [%d,+%d) not allocated in bitmap", id, r.Start, r.Count)
			}
		}
	}
	return rep
}
