package ost

import (
	"testing"

	"redbud/internal/core"
)

func TestRestartPersistsPreallocatedWindows(t *testing.T) {
	// "Blocks in sequential window are temporarily reserved ...
	// preallocated blocks in the current window are persistent across
	// system reboot."
	s := NewServer(0, DefaultConfig())
	s.CreateObject(1, onDemandFactory, 0)
	stream := core.StreamID{Client: 1, PID: 1}
	// Sequential writes promote windows: the object ends up owning
	// preallocated blocks beyond what was written.
	for i := int64(0); i < 16; i++ {
		if err := s.Write(1, stream, i*4, 4); err != nil {
			t.Fatal(err)
		}
	}
	owned, _ := s.OwnedBlocks(1)
	if owned <= 64 {
		t.Fatalf("expected preallocation beyond the 64 written blocks, owned = %d", owned)
	}
	if s.Allocator().ReservedBlocks() == 0 {
		t.Fatal("expected a live sequential-window reservation before restart")
	}

	s.Restart()

	// Volatile reservations are gone; persistent preallocation is not.
	if n := s.Allocator().ReservedBlocks(); n != 0 {
		t.Fatalf("sequential windows must not survive a reboot: %d blocks still reserved", n)
	}
	owned2, _ := s.OwnedBlocks(1)
	if owned2 != owned {
		t.Fatalf("persistent preallocation changed across restart: %d -> %d", owned, owned2)
	}
	// Data survives and reads verify.
	if err := s.Read(1, 0, 64); err != nil {
		t.Fatal(err)
	}
	// New writes work; writes into the persisted preallocated region
	// need no new allocation.
	free := s.Allocator().FreeBlocks()
	if err := s.Write(1, stream, 64, 4); err != nil {
		t.Fatal(err)
	}
	if got := s.Allocator().FreeBlocks(); got > free {
		t.Fatal("free count must not grow on write")
	}
	s.Flush()
	if err := s.Read(1, 64, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRestartDropsDelallocBuffers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayedAllocation = true
	s := NewServer(0, cfg)
	s.CreateObject(1, vanillaFactory, 0)
	stream := core.StreamID{Client: 1, PID: 1}
	if err := s.Write(1, stream, 0, 8); err != nil {
		t.Fatal(err)
	}
	// A crash-restart without fsync loses buffered-only data — the
	// delayed-allocation risk the paper alludes to. Model the crash by
	// dropping buffers before the restart.
	s.mu.Lock()
	s.dropBuffersLocked(1)
	s.mu.Unlock()
	s.Restart()
	if s.BufferedBlocks() != 0 {
		t.Fatal("buffers must not survive restart")
	}
	if err := s.Read(1, 0, 8); err == nil {
		t.Fatal("unsynced buffered data should be lost after crash-restart")
	}
}
