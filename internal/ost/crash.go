package ost

import (
	"sort"

	"redbud/internal/alloc"
	"redbud/internal/crashsim"
	"redbud/internal/disk"
)

// Power-fail model of the IO server. The durable state of an OST is its
// allocator bitmap, extent maps, owned sets, written bitmaps, and data
// tags — the metadata a real server journals (plus the block contents the
// tags stand in for). The volatile state is the device queue, the
// delayed-allocation buffers, the prefetch cache, and the policies' soft
// reservations.
//
// The write path takes a modeling shortcut: tags and written bits are set
// at enqueue time, before the queued request reaches the media. A crash
// sweep must not inherit that shortcut, so while an injector is attached
// the enqueue path records a pre-image per block (old tag, old written
// bit). PowerFail rolls the pre-images of every unpersisted queued write
// back, which reconstructs exactly the durable state the media held —
// then Scrub reclaims what the crash window leaked (allocated-but-unowned
// orphans from a torn migration claim, owned-but-unmapped leaks from a
// torn free) and demotes written blocks whose tags the damage plan tore,
// so an unacknowledged block that never fully persisted reads as a hole
// instead of serving torn data.

// writePreImage is one block's durable state before an enqueued write
// updated it.
type writePreImage struct {
	phys       int64
	oldSlot    tagSlot
	obj        ObjectID
	logical    int64
	wasWritten bool
}

// flushDamage is the damage plan of a power failure that fired mid
// media-burst, resolved against the queue at fire time.
type flushDamage struct {
	// persisted is the set of physical blocks (the burst's leading
	// prefix) that reached the media.
	persisted map[int64]bool
	// victimPhys, when haveVictim, was overwritten by the payload
	// carrying victimTag (the first unpersisted write, misdirected).
	victimPhys int64
	victimTag  tagSlot
	haveVictim bool
}

// SetCrashInjector attaches the sweep's injector; the write path starts
// recording pre-images so a PowerFail can roll unpersisted writes back.
func (s *Server) SetCrashInjector(in *crashsim.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crash = in
}

// recordPreImageLocked captures one block's durable state before the
// write path updates it. Callers hold s.mu and have checked s.crash.
func (s *Server) recordPreImageLocked(o *object, phys, logical int64) {
	s.preimg = append(s.preimg, writePreImage{
		phys:       phys,
		oldSlot:    s.tags.slotAt(phys),
		obj:        o.id,
		logical:    logical,
		wasWritten: o.written.has(logical),
	})
}

// planFlushDamageLocked resolves a damage plan against the queued write
// blocks, in submission order, at the moment the armed flush point fired.
// Tags still hold their enqueue-time values here, so the misdirected
// payload's tag is read off the source block before any rollback.
func (s *Server) planFlushDamageLocked(dmg disk.Damage) {
	fd := &flushDamage{persisted: make(map[int64]bool)}
	var order []int64
	for _, r := range s.queue {
		if !r.Write {
			continue
		}
		for i := int64(0); i < r.Count; i++ {
			order = append(order, r.Start+i)
		}
	}
	for i := int64(0); i < dmg.Persisted && i < int64(len(order)); i++ {
		fd.persisted[order[i]] = true
	}
	if dmg.Victim >= 0 && dmg.Victim < int64(len(order)) && dmg.Persisted < int64(len(order)) {
		fd.victimPhys = order[dmg.Victim]
		fd.victimTag = s.tags.slotAt(order[dmg.Persisted])
		fd.haveVictim = true
	}
	s.flushCrash = fd
}

// sortedObjectIDsLocked returns the object ids in deterministic order.
func (s *Server) sortedObjectIDsLocked() []ObjectID {
	ids := make([]ObjectID, 0, len(s.objects))
	for id := range s.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// PowerFail models the server losing power: every queued write that did
// not persist (per the fired damage plan; all of them when the crash hit
// outside a flush) is rolled back to its pre-image, the misdirected
// payload is applied, and all volatile state — queue, delalloc buffers,
// prefetch cache, soft reservations — is dropped. The recovery sequence
// calls it before Scrub.
func (s *Server) PowerFail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	fd := s.flushCrash
	// Roll back unpersisted enqueued writes, newest first, so duplicate
	// writes to one block unwind to the oldest pre-image.
	for i := len(s.preimg) - 1; i >= 0; i-- {
		p := s.preimg[i]
		if fd != nil && fd.persisted[p.phys] {
			continue
		}
		s.tags.setSlot(p.phys, p.oldSlot)
		if !p.wasWritten {
			if o, ok := s.objects[p.obj]; ok {
				o.written.clear(p.logical)
			}
		}
	}
	if fd != nil && fd.haveVictim {
		s.tags.setSlot(fd.victimPhys, fd.victimTag)
	}
	s.preimg = nil
	s.flushCrash = nil
	s.queue = s.queue[:0]
	s.pendingRead = 0
	s.pendingWrite = 0
	s.buffered = nil
	s.bufferedBlocks = 0
	s.prefetched = alloc.RangeSet{}
	for _, id := range s.sortedObjectIDsLocked() {
		o := s.objects[id]
		o.policy.Close() // releases soft reservations
		o.policy = o.factory(s.alloc, 0)
	}
}

// ScrubReport summarizes one post-crash scrub.
type ScrubReport struct {
	// OST is the server's index.
	OST int
	// DamagedBlocks counts written blocks demoted to holes because their
	// tags no longer carried their data (torn or misdirected writes).
	DamagedBlocks int64
	// Damaged lists each object's demoted logical runs — the blocks a
	// replicated recovery must re-source from a clean copy.
	Damaged map[ObjectID][]alloc.Range
	// DanglingWritten counts written bits cleared because no mapping
	// backed them (a truncate torn before its written-set trim).
	DanglingWritten int64
	// LeakedFreed counts owned-but-unmapped blocks reclaimed (torn
	// frees, clipped preallocations).
	LeakedFreed int64
	// OrphanFreed counts allocated-but-unowned blocks reclaimed (a
	// migration claim torn before the ownership record).
	OrphanFreed int64
}

// Scrub is the OST-side fsck a recovery runs after PowerFail: verify
// every written block's tag (demoting torn blocks to holes), clear
// written bits with no backing mapping, then reclaim leaked
// (owned-but-unmapped) and orphaned (allocated-but-unowned) blocks. After
// a clean Scrub, CheckConsistency reports no problems and zero leaks.
func (s *Server) Scrub() (ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := ScrubReport{OST: s.id, Damaged: make(map[ObjectID][]alloc.Range)}
	ownedAll := alloc.RangeSet{}
	for _, id := range s.sortedObjectIDsLocked() {
		o := s.objects[id]
		// Demote written blocks whose tags were torn away.
		for _, e := range o.extents.Extents() {
			for i := int64(0); i < e.Count; i++ {
				l := e.Logical + i
				if !o.written.has(l) {
					continue
				}
				got, ok := s.tags.get(e.Physical + i)
				if ok && got.obj == id && got.logical == l {
					continue
				}
				o.written.clear(l)
				rep.DamagedBlocks++
				runs := rep.Damaged[id]
				if n := len(runs); n > 0 && runs[n-1].End() == l {
					runs[n-1].Count++
				} else {
					runs = append(runs, alloc.Range{Start: l, Count: 1})
				}
				rep.Damaged[id] = runs
			}
		}
		// Clear written bits with no mapping behind them.
		var wruns []alloc.Range
		wruns = o.written.appendRuns(wruns)
		for _, wr := range wruns {
			for l := wr.Start; l < wr.End(); l++ {
				if _, ok := o.extents.Lookup(l); !ok {
					o.written.clear(l)
					rep.DanglingWritten++
				}
			}
		}
		// Reclaim leaks: owned blocks no extent maps.
		mapped := alloc.RangeSet{}
		for _, e := range o.extents.Extents() {
			mapped.Add(alloc.Range{Start: e.Physical, Count: e.Count})
		}
		var leaks []alloc.Range
		for _, r := range o.owned.Ranges() {
			start := int64(-1)
			for b := r.Start; b <= r.End(); b++ {
				inLeak := b < r.End() && !mapped.Contains(alloc.Range{Start: b, Count: 1})
				if inLeak && start < 0 {
					start = b
				}
				if !inLeak && start >= 0 {
					leaks = append(leaks, alloc.Range{Start: start, Count: b - start})
					start = -1
				}
			}
		}
		for _, leak := range leaks {
			if err := s.alloc.Free(leak); err != nil {
				return rep, err
			}
			o.owned.Remove(leak)
			s.tags.clearRange(leak.Start, leak.End())
			s.prefetched.Remove(leak)
			rep.LeakedFreed += leak.Count
		}
		for _, r := range o.owned.Ranges() {
			ownedAll.Add(r)
		}
	}
	// Reclaim orphans: allocated in the bitmap, owned by no object.
	var runs []alloc.Range
	runs = s.alloc.AppendAllocatedRuns(runs)
	for _, r := range runs {
		start := int64(-1)
		for b := r.Start; b <= r.End(); b++ {
			orphan := b < r.End() && !ownedAll.Contains(alloc.Range{Start: b, Count: 1})
			if orphan && start < 0 {
				start = b
			}
			if !orphan && start >= 0 {
				run := alloc.Range{Start: start, Count: b - start}
				if err := s.alloc.Free(run); err != nil {
					return rep, err
				}
				s.tags.clearRange(run.Start, run.End())
				s.prefetched.Remove(run)
				rep.OrphanFreed += run.Count
				start = -1
			}
		}
	}
	return rep, nil
}
