package replica

import (
	"testing"

	"redbud/internal/alloc"
	"redbud/internal/sim"
)

// evenInputs returns n equal-looking live servers.
func evenInputs(n int) []PlaceInput {
	in := make([]PlaceInput, n)
	for i := range in {
		in[i] = PlaceInput{OST: i, FreeBlocks: 10000}
	}
	return in
}

func TestSpreadDistinctOSTsAndStripePrimary(t *testing.T) {
	const n, rf = 6, 3
	sets, err := Spread(rf, n, evenInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	for c, set := range sets {
		if len(set) != rf {
			t.Fatalf("comp %d: got %d replicas, want %d", c, len(set), rf)
		}
		if set[0] != c%n {
			t.Errorf("comp %d: primary %d, want stripe-aligned %d", c, set[0], c%n)
		}
		seen := make(map[int]bool)
		for _, r := range set {
			if seen[r] {
				t.Fatalf("comp %d: replica set %v co-locates on ost%d", c, set, r)
			}
			seen[r] = true
		}
	}
}

func TestSpreadSkipsDownAndPrefersScore(t *testing.T) {
	in := evenInputs(4)
	in[1].Down = true
	in[3].FreeBlocks = 99999 // emptiest server: best secondary
	sets, err := Spread(2, 1, in)
	if err != nil {
		t.Fatal(err)
	}
	set := sets[0]
	for _, r := range set {
		if r == 1 {
			t.Fatalf("set %v uses down ost1", set)
		}
	}
	if set[0] != 0 || set[1] != 3 {
		t.Fatalf("set %v, want primary 0 + best-scoring 3", set)
	}
}

func TestSpreadDegradedAndErrors(t *testing.T) {
	if _, err := Spread(5, 1, evenInputs(4)); err == nil {
		t.Fatal("rf > OSTs must fail")
	}
	in := evenInputs(3)
	in[0].Down = true
	in[1].Down = true
	sets, err := Spread(3, 3, in)
	if err != nil {
		t.Fatal(err)
	}
	for c, set := range sets {
		if len(set) != 1 || set[0] != 2 {
			t.Fatalf("comp %d: degraded set %v, want [2]", c, set)
		}
	}
	in[2].Down = true
	if _, err := Spread(3, 1, in); err == nil {
		t.Fatal("all-down placement must fail")
	}
}

func TestManagerDownAndStaleLifecycle(t *testing.T) {
	m := NewManager(Config{RF: 3}, 4)
	m.Add(1, 0, 10, []int{0, 1, 2})
	if m.UnderReplicated() != 0 {
		t.Fatal("fresh component should be fully replicated")
	}
	m.MarkDown(1)
	if m.UnderReplicated() != 1 {
		t.Fatal("down member must under-replicate the component")
	}
	// A write while ost1 is down skips it and marks the copy stale.
	if _, targets, err := m.WriteTargets(1, 0); err != nil || len(targets) != 2 {
		t.Fatalf("targets %v err %v, want 2 live targets", targets, err)
	}
	m.MarkUp(1)
	if m.UnderReplicated() != 1 {
		t.Fatal("stale copy must stay under-replicated after revive")
	}
	st := m.Stats()
	if st.SkippedWrites != 1 || st.FanoutWrites != 1 || st.OSTDownEvents != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Catch-up repair on the revived member restores full strength.
	jd, ok := m.PlanRepair(evenInputs(4))
	if !ok || jd.Dst != 1 || jd.Replace != ReplaceNone {
		t.Fatalf("plan %+v ok=%v, want catch-up onto ost1", jd, ok)
	}
	m.StartJob(jd, []alloc.Range{{Start: 0, Count: 64}})
	for {
		sl, ok := m.NextSlice(true, 0)
		if !ok {
			break
		}
		m.AdvanceJob(sl.Count)
	}
	done := m.FinishJob()
	if done.SetChanged {
		t.Fatal("catch-up must not change the replica set")
	}
	if m.UnderReplicated() != 0 {
		t.Fatal("repair must restore full replication")
	}
}

func TestSteerReadAvoidsDownAndStale(t *testing.T) {
	m := NewManager(Config{RF: 3}, 4)
	m.Add(7, 2, 11, []int{0, 1, 2})
	load := func(i int) sim.Ns { return sim.Ns(100 - i) } // ost2 least loaded
	r, obj, ok := m.SteerRead(7, 2, nil, load)
	if !ok || r != 2 || obj != 11 {
		t.Fatalf("steered to ost%d obj%d ok=%v, want least-loaded ost2", r, obj, ok)
	}
	m.MarkDown(2)
	m.MarkStale(7, 2, 1)
	if r, _, ok = m.SteerRead(7, 2, nil, load); !ok || r != 0 {
		t.Fatalf("steered to ost%d ok=%v, want only clean live ost0", r, ok)
	}
	m.MarkDown(0)
	if _, _, ok = m.SteerRead(7, 2, nil, load); ok {
		t.Fatal("no clean live replica must report !ok")
	}
}

func TestPlanRepairReplacesDownMember(t *testing.T) {
	m := NewManager(Config{RF: 2}, 4)
	m.Add(1, 0, 5, []int{0, 1})
	m.MarkDown(1)
	in := evenInputs(4)
	in[1].Down = true
	jd, ok := m.PlanRepair(in)
	if !ok {
		t.Fatal("replace repair must be plannable")
	}
	if jd.Src != 0 || jd.Dst == 1 || jd.Replace != 1 {
		t.Fatalf("plan %+v, want src=0 replacing slot 1 with a survivor", jd)
	}
	m.StartJob(jd, []alloc.Range{{Start: 0, Count: 10}})
	if sl, ok := m.NextSlice(true, 0); !ok || sl.Count != 10 {
		t.Fatalf("slice %+v ok=%v", sl, ok)
	}
	m.AdvanceJob(10)
	done := m.FinishJob()
	if !done.SetChanged || contains(done.Replicas, 1) {
		t.Fatalf("done %+v, want changed set without ost1", done)
	}
	if m.UnderReplicated() != 0 {
		t.Fatal("replacement must restore full replication")
	}
}

func TestRepairTokenBucketPacing(t *testing.T) {
	var clock sim.Ns
	m := NewManager(Config{RF: 2, SliceBlocks: 100, RateBlocksPerSec: 100, BurstBlocks: 100}, 2)
	m.SetTimeSource(func() sim.Ns { return clock })
	m.Add(1, 0, 5, []int{0, 1})
	m.MarkStale(1, 0, 1)
	jd, ok := m.PlanRepair(evenInputs(2))
	if !ok {
		t.Fatal("catch-up must be plannable")
	}
	m.StartJob(jd, []alloc.Range{{Start: 0, Count: 300}})
	if _, ok := m.NextSlice(false, 0); ok {
		t.Fatal("empty bucket must throttle")
	}
	clock += sim.Second // refills 100 blocks
	sl, ok := m.NextSlice(false, 0)
	if !ok || sl.Count != 100 {
		t.Fatalf("slice %+v ok=%v, want 100 paced blocks", sl, ok)
	}
	m.AdvanceJob(sl.Count)
	if _, ok := m.NextSlice(false, 0); ok {
		t.Fatal("drained bucket must throttle again")
	}
	if _, ok := m.NextSlice(false, 3); ok {
		t.Fatal("queued foreground requests must preempt")
	}
	if sl, ok := m.NextSlice(true, 3); !ok || sl.Count != 100 {
		t.Fatal("force mode must bypass throttle and preemption")
	}
	st := m.Stats()
	if st.Throttled != 2 || st.Preempted != 1 {
		t.Fatalf("stats %+v, want 2 throttled + 1 preempted", st)
	}
}

func TestRemoveAbortsJobAndForgetsFile(t *testing.T) {
	m := NewManager(Config{RF: 2}, 3)
	m.Add(1, 0, 5, []int{0, 1})
	m.Add(2, 0, 6, []int{1, 2})
	m.MarkStale(1, 0, 1)
	jd, ok := m.PlanRepair(evenInputs(3))
	if !ok || jd.Key.Ino != 1 {
		t.Fatalf("plan %+v ok=%v", jd, ok)
	}
	m.StartJob(jd, []alloc.Range{{Start: 0, Count: 8}})
	m.Remove(1)
	if m.JobActive() {
		t.Fatal("deleting the file must abort its repair")
	}
	if m.Components() != 1 || m.UnderReplicated() != 0 {
		t.Fatalf("components %d under %d", m.Components(), m.UnderReplicated())
	}
}
