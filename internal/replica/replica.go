// Package replica gives every stripe component an N-way replica set: the
// placement policy that spreads copies across distinct IO servers, the
// client-side bookkeeping behind write fan-out and read steering, and the
// background re-replication engine that restores redundancy after an OST
// crash.
//
// The package is pure bookkeeping and pacing — it issues no RPCs and owns
// no servers. The PFS mount consults it on every replicated operation
// (which replicas to write, which single replica to read), reports what it
// observed (an endpoint timing out, a copy skipped because its OST is
// down), and drives the repair loop it plans. This keeps the manager
// deterministic and trivially testable, and keeps the lock order one-way:
// the mount lock is always taken first, the manager lock strictly inside
// it, and the manager never calls back up.
//
// Replica-set semantics. A component's set lists the OSTs that hold (or
// should hold) its object. Each member is clean, stale, or down:
//
//   - down is a per-OST suspicion flag, set the first time an RPC to the
//     endpoint fails at the transport layer (fail-stop detection by
//     traffic, not by oracle) and cleared only by an explicit revive;
//   - stale marks a copy that missed writes — because its OST was down
//     when the write fanned out, or because its own write attempt failed.
//     Stale copies keep receiving new writes when live (they cannot get
//     more wrong, and catching up is cheaper if they stayed warm) but are
//     never read until repaired.
//
// A component is under-replicated while its clean live copies number
// fewer than the configured replication factor; the repair engine works
// the set back to full strength one component at a time.
package replica

import (
	"fmt"
	"sync"

	"redbud/internal/inode"
	"redbud/internal/ost"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// Config tunes replication. The zero value is invalid; start from
// DefaultConfig.
type Config struct {
	// RF is the replication factor: copies per stripe component. 1 keeps
	// the mount on the unreplicated path.
	RF int
	// SliceBlocks is the largest number of blocks one repair step copies —
	// the preemption granularity, as in the defrag mover.
	SliceBlocks int64
	// RateBlocksPerSec throttles repair copies: a token bucket refilled at
	// this rate over simulated time. Zero disables the throttle.
	RateBlocksPerSec int64
	// BurstBlocks is the token bucket capacity; zero selects SliceBlocks.
	BurstBlocks int64
}

// DefaultConfig returns 3-way replication repaired in 256-block (1 MiB)
// slices, unthrottled.
func DefaultConfig() Config {
	return Config{RF: 3, SliceBlocks: 256}
}

// withDefaults fills unset tuning fields.
func (c Config) withDefaults() Config {
	if c.SliceBlocks <= 0 {
		c.SliceBlocks = 256
	}
	if c.BurstBlocks <= 0 {
		c.BurstBlocks = c.SliceBlocks
	}
	return c
}

// PlaceInput is one OST's placement telemetry: the capacity and load
// signals the spread policy scores, gathered by the client from the same
// gauges the registry publishes and shipped to the MDS with the placement
// request (Lustre-QOS style).
type PlaceInput struct {
	// OST is the server index.
	OST int
	// FreeBlocks is the allocator's free-space gauge.
	FreeBlocks int64
	// BusyNs is the device's cumulative busy time — the load signal.
	BusyNs sim.Ns
	// Down marks a server currently suspected dead; placement skips it.
	Down bool
}

// score rates one OST as a placement target: free capacity discounted by
// accumulated device load, so an emptier and idler server wins.
func score(in PlaceInput) float64 {
	return float64(in.FreeBlocks) / (1 + sim.Seconds(in.BusyNs))
}

// pickBest returns the best-scoring live OST not yet used, breaking score
// ties by rotating the preference order with rot so equal-score servers
// spread round-robin across components. Returns -1 when none qualifies.
func pickBest(in []PlaceInput, used func(int) bool, rot int) int {
	n := len(in)
	best, bestScore := -1, 0.0
	for k := 0; k < n; k++ {
		i := (rot + k) % n
		if in[i].Down || used(i) {
			continue
		}
		if s := score(in[i]); best < 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Spread places rf replicas for each of comps stripe components over the
// given servers: replicas of one component always land on distinct OSTs,
// the component's stripe-aligned primary (OST c mod n) is kept when alive
// so striping parallelism survives, and the remaining copies go to the
// best-scoring live servers. When fewer than rf servers are alive the set
// comes back short (a degraded create, repaired once capacity returns);
// a component with no live server at all is an error.
func Spread(rf, comps int, in []PlaceInput) ([][]int, error) {
	n := len(in)
	if rf < 1 || comps < 1 {
		return nil, fmt.Errorf("replica: invalid shape rf=%d comps=%d", rf, comps)
	}
	if rf > n {
		return nil, fmt.Errorf("replica: rf=%d exceeds %d OSTs", rf, n)
	}
	sets := make([][]int, comps)
	for c := 0; c < comps; c++ {
		var set []int
		used := make([]bool, n)
		if primary := c % n; !in[primary].Down {
			set = append(set, primary)
			used[primary] = true
		}
		for len(set) < rf {
			i := pickBest(in, func(i int) bool { return used[i] }, c)
			if i < 0 {
				break
			}
			set = append(set, i)
			used[i] = true
		}
		if len(set) == 0 {
			return nil, fmt.Errorf("replica: no live OST for component %d", c)
		}
		sets[c] = set
	}
	return sets, nil
}

// Key names one stripe component of one file.
type Key struct {
	Ino  inode.Ino
	Comp int
}

// comp is one component's replica-set state.
type comp struct {
	obj      ost.ObjectID
	replicas []int
	stale    map[int]bool
}

// Stats are the manager's counters, all monotonic.
type Stats struct {
	// FanoutWrites counts the extra copies written beyond the first —
	// the wire amplification replication buys durability with.
	FanoutWrites int64
	// SkippedWrites counts per-replica writes not issued because the
	// target OST was down (the copy went stale instead).
	SkippedWrites int64
	// SteeredReads counts read pieces routed by load steering.
	SteeredReads int64
	// Failovers counts reads retried on another replica after an
	// RPC-layer failure.
	Failovers int64
	// OSTDownEvents counts distinct down transitions detected.
	OSTDownEvents int64
	// RepairsStarted/RepairsDone count re-replication jobs; RepairBlocks
	// and RepairSlices the copy work inside them.
	RepairsStarted int64
	RepairsDone    int64
	RepairBlocks   int64
	RepairSlices   int64
	// Preempted counts repair steps that yielded to queued foreground
	// requests, Throttled steps denied by the token bucket.
	Preempted int64
	Throttled int64
}

// Manager is the client-side replica table of one mount. Every method is
// safe for concurrent use, but the mount serializes operational calls
// under its own lock anyway; the manager lock exists for the registry's
// gauge snapshots.
type Manager struct {
	cfg Config
	n   int

	mu        sync.Mutex
	down      []bool
	downCount int64
	comps     map[Key]*comp
	order     []Key // insertion order: files are created in ino order
	underRepl int64
	job       *job
	stats     Stats
	steered   []int64 // per-OST reads routed there by steering

	// Token bucket over simulated time, as in the defrag mover.
	tokens  float64
	lastNs  sim.Ns
	timeSrc func() sim.Ns

	now    func() sim.Ns
	events *telemetry.EventLog
}

// NewManager builds the replica table for a mount of n IO servers.
func NewManager(cfg Config, n int) *Manager {
	return &Manager{
		cfg:     cfg.withDefaults(),
		n:       n,
		down:    make([]bool, n),
		comps:   make(map[Key]*comp),
		steered: make([]int64, n),
		timeSrc: func() sim.Ns { return 0 },
		now:     func() sim.Ns { return 0 },
	}
}

// RF returns the configured replication factor.
func (m *Manager) RF() int { return m.cfg.RF }

// SetClock points event timestamps at the mount's trace clock.
func (m *Manager) SetClock(fn func() sim.Ns) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fn == nil {
		fn = func() sim.Ns { return 0 }
	}
	m.now = fn
}

// SetTimeSource sets the simulated-time source the repair token bucket
// refills against (the mount wires the summed device busy time, the same
// currency the defrag throttle uses).
func (m *Manager) SetTimeSource(fn func() sim.Ns) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.timeSrc = fn
}

// Instrument publishes the layer=replica metrics and routes events into
// the registry's event log.
func (m *Manager) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	m.mu.Lock()
	m.events = reg.Events()
	m.mu.Unlock()
	reg.GaugeFunc("replica_under_replicated", labels, m.UnderReplicated)
	reg.GaugeFunc("replica_osts_down", labels, m.DownCount)
	reg.CounterFunc("replica_fanout_writes", labels, func() int64 { return m.Stats().FanoutWrites })
	reg.CounterFunc("replica_skipped_writes", labels, func() int64 { return m.Stats().SkippedWrites })
	reg.CounterFunc("replica_failovers", labels, func() int64 { return m.Stats().Failovers })
	reg.CounterFunc("replica_ost_down_events", labels, func() int64 { return m.Stats().OSTDownEvents })
	reg.CounterFunc("replica_repairs_started", labels, func() int64 { return m.Stats().RepairsStarted })
	reg.CounterFunc("replica_repairs_done", labels, func() int64 { return m.Stats().RepairsDone })
	reg.CounterFunc("replica_repair_blocks", labels, func() int64 { return m.Stats().RepairBlocks })
	reg.CounterFunc("replica_repair_slices", labels, func() int64 { return m.Stats().RepairSlices })
	reg.CounterFunc("replica_repair_preempted", labels, func() int64 { return m.Stats().Preempted })
	reg.CounterFunc("replica_repair_throttled", labels, func() int64 { return m.Stats().Throttled })
	for i := 0; i < m.n; i++ {
		i := i
		reg.CounterFunc("replica_steered_reads", labels.With("ost", fmt.Sprint(i)),
			func() int64 { return m.SteeredReads(i) })
	}
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// SteeredReads returns how many read pieces steering routed to OST i.
func (m *Manager) SteeredReads(i int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.steered[i]
}

// UnderReplicated returns the number of components with fewer clean live
// copies than the replication factor.
func (m *Manager) UnderReplicated() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.underRepl
}

// FullyReplicated reports whether every component is at full strength.
func (m *Manager) FullyReplicated() bool { return m.UnderReplicated() == 0 }

// Down reports whether OST i is currently suspected dead.
func (m *Manager) Down(i int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down[i]
}

// DownCount returns how many OSTs are currently suspected dead.
func (m *Manager) DownCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.downCount
}

// Components returns the number of tracked components.
func (m *Manager) Components() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.comps)
}

// ReplicaSet returns a component's replica OSTs and object, for tests and
// inspection tooling.
func (m *Manager) ReplicaSet(ino inode.Ino, c int) ([]int, ost.ObjectID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp, ok := m.comps[Key{Ino: ino, Comp: c}]
	if !ok {
		return nil, 0, false
	}
	return append([]int(nil), cp.replicas...), cp.obj, true
}

// cleanLiveLocked counts a component's readable copies.
func (m *Manager) cleanLiveLocked(c *comp) int {
	n := 0
	for _, r := range c.replicas {
		if !m.down[r] && !c.stale[r] {
			n++
		}
	}
	return n
}

// recountLocked recomputes the under-replicated gauge and emits its
// transition events.
func (m *Manager) recountLocked() {
	var cnt int64
	for _, k := range m.order {
		c := m.comps[k]
		if m.cleanLiveLocked(c) < m.cfg.RF {
			cnt++
		}
	}
	prev := m.underRepl
	m.underRepl = cnt
	if prev == 0 && cnt > 0 {
		m.events.Emit(m.now(), "replica", "under-replicated", fmt.Sprintf("%d components below rf=%d", cnt, m.cfg.RF))
	} else if prev > 0 && cnt == 0 {
		m.events.Emit(m.now(), "replica", "redundancy-restored", fmt.Sprintf("all components back at rf=%d", m.cfg.RF))
	}
}

// Add registers a freshly created component. Members down at create time
// hold no object yet and start stale (the repair engine will build them).
func (m *Manager) Add(ino inode.Ino, c int, obj ost.ObjectID, replicas []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := &comp{obj: obj, replicas: append([]int(nil), replicas...), stale: make(map[int]bool)}
	for _, r := range cp.replicas {
		if m.down[r] {
			cp.stale[r] = true
		}
	}
	k := Key{Ino: ino, Comp: c}
	m.comps[k] = cp
	m.order = append(m.order, k)
	m.recountLocked()
}

// Remove forgets every component of a deleted file, aborting any repair
// running against it.
func (m *Manager) Remove(ino inode.Ino) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.job != nil && m.job.desc.Key.Ino == ino {
		m.job = nil
	}
	kept := m.order[:0]
	for _, k := range m.order {
		if k.Ino == ino {
			delete(m.comps, k)
			continue
		}
		kept = append(kept, k)
	}
	m.order = kept
	m.recountLocked()
}

// WriteTargets returns the component's object and the replicas a write
// should fan out to: every live member, stale included. Members skipped
// because their OST is down go (or stay) stale.
func (m *Manager) WriteTargets(ino inode.Ino, c int) (ost.ObjectID, []int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp, ok := m.comps[Key{Ino: ino, Comp: c}]
	if !ok {
		return 0, nil, fmt.Errorf("replica: unknown component ino=%d comp=%d", uint64(ino), c)
	}
	var targets []int
	changed := false
	for _, r := range cp.replicas {
		if m.down[r] {
			m.stats.SkippedWrites++
			if !cp.stale[r] {
				cp.stale[r] = true
				changed = true
			}
			continue
		}
		targets = append(targets, r)
	}
	if len(targets) > 1 {
		m.stats.FanoutWrites += int64(len(targets) - 1)
	}
	if changed {
		m.recountLocked()
	}
	return cp.obj, targets, nil
}

// MarkStale records that replica r of the component missed a write (its
// own write attempt failed); it is excluded from reads until repaired.
func (m *Manager) MarkStale(ino inode.Ino, c, r int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp, ok := m.comps[Key{Ino: ino, Comp: c}]
	if !ok || cp.stale[r] {
		return
	}
	cp.stale[r] = true
	m.recountLocked()
}

// MarkDown records transport-level suspicion of OST i: every read steers
// away from it and every write skips it until MarkUp.
func (m *Manager) MarkDown(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down[i] {
		return
	}
	m.down[i] = true
	m.downCount++
	m.stats.OSTDownEvents++
	m.events.Emit(m.now(), "replica", "ost-down", fmt.Sprintf("ost%d unreachable", i))
	m.recountLocked()
}

// MarkUp clears the suspicion after an explicit revive. Copies that went
// stale while the server was away stay stale until repaired.
func (m *Manager) MarkUp(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.down[i] {
		return
	}
	m.down[i] = false
	m.downCount--
	m.events.Emit(m.now(), "replica", "ost-up", fmt.Sprintf("ost%d revived", i))
	m.recountLocked()
}

// SteerRead picks the replica a read piece should go to: the live, clean,
// not-yet-tried member whose device has accumulated the least busy time
// (ties to the lowest index). ok is false when no readable copy remains.
func (m *Manager) SteerRead(ino inode.Ino, c int, tried []int, load func(int) sim.Ns) (int, ost.ObjectID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp, ok := m.comps[Key{Ino: ino, Comp: c}]
	if !ok {
		return 0, 0, false
	}
	best, bestLoad := -1, sim.Ns(0)
	for _, r := range cp.replicas {
		if m.down[r] || cp.stale[r] || contains(tried, r) {
			continue
		}
		l := load(r)
		if best < 0 || l < bestLoad {
			best, bestLoad = r, l
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	m.steered[best]++
	m.stats.SteeredReads++
	return best, cp.obj, true
}

// MemberState describes one replica-set member for inspection and for the
// mount's per-replica maintenance loops (fsync, truncate, close).
type MemberState struct {
	OST   int
	Down  bool
	Stale bool
}

// Members returns the component's object and per-member state.
func (m *Manager) Members(ino inode.Ino, c int) ([]MemberState, ost.ObjectID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp, ok := m.comps[Key{Ino: ino, Comp: c}]
	if !ok {
		return nil, 0, false
	}
	out := make([]MemberState, 0, len(cp.replicas))
	for _, r := range cp.replicas {
		out = append(out, MemberState{OST: r, Down: m.down[r], Stale: cp.stale[r]})
	}
	return out, cp.obj, true
}

// ReadReplica returns the component's first clean live member — the pick
// for bookkeeping queries (extent counts, layout summaries) that should
// not perturb the steering counters. ok is false when none is readable.
func (m *Manager) ReadReplica(ino inode.Ino, c int) (int, ost.ObjectID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp, ok := m.comps[Key{Ino: ino, Comp: c}]
	if !ok {
		return 0, 0, false
	}
	for _, r := range cp.replicas {
		if !m.down[r] && !cp.stale[r] {
			return r, cp.obj, true
		}
	}
	return 0, 0, false
}

// NoteFailover records a read abandoning replica r after an RPC failure.
func (m *Manager) NoteFailover(ino inode.Ino, c, r int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Failovers++
	m.events.Emit(m.now(), "replica", "failover",
		fmt.Sprintf("read ino=%d comp=%d away from ost%d", uint64(ino), c, r))
}

// contains reports whether s holds v (replica sets are tiny).
func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
