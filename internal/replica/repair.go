package replica

import (
	"fmt"

	"redbud/internal/alloc"
	"redbud/internal/ost"
	"redbud/internal/sim"
)

// This file is the re-replication engine: the planner that turns an
// under-replicated component into one copy job, and the pacing that meters
// the copy against foreground traffic. The mount executes the plan — it
// fetches the source's written runs, prepares the destination object, and
// moves one slice per step through the regular typed RPC clients — while
// the manager decides what to repair, how fast, and when to yield, reusing
// the defrag mover's discipline: a token bucket over simulated time plus
// preemption whenever foreground requests are queued on either endpoint.

// JobDesc describes one planned repair: copy the component's object from
// Src to Dst. Replace tells the mount how the set changes on completion:
// the index of the (down) member Dst supersedes, ReplaceNone for a
// catch-up of a stale member already in the set, ReplaceGrow to append Dst
// to a short (degraded-create) set.
type JobDesc struct {
	Key Key
	Obj ost.ObjectID
	Src int
	Dst int
	// Replace is the replica-set slot Dst takes over, or one of the
	// sentinels below.
	Replace int
}

// Replace sentinels.
const (
	// ReplaceNone: Dst is already a member, stale; the copy catches it up.
	ReplaceNone = -1
	// ReplaceGrow: the set is short of RF; Dst joins as a new member.
	ReplaceGrow = -2
)

// job is one in-flight repair: the plan plus the copy cursor over the
// source's written runs (snapshotted at job start).
type job struct {
	desc   JobDesc
	runs   []alloc.Range
	runIdx int
	off    int64
	moved  int64
}

// remaining returns the blocks left to copy.
func (j *job) remaining() int64 {
	var rem int64
	for i := j.runIdx; i < len(j.runs); i++ {
		rem += j.runs[i].Count
	}
	return rem - j.off
}

// RepairDone reports a finished job: the component's replica set after the
// repair, and whether it changed (a changed set must be pushed to the MDS
// layout table).
type RepairDone struct {
	Key        Key
	Obj        ost.ObjectID
	Replicas   []int
	SetChanged bool
}

// PlanRepair scans the component table in creation order for the first
// under-replicated component that can be repaired right now and returns
// the job: the least-loaded clean live member as source, and as
// destination either a stale live member (catch-up) or a fresh target
// picked by the spread score among servers outside the current set.
// Components with no live clean source, or no viable destination, are
// skipped — a later crash/revive can unblock them. ok is false when no
// repair is possible (or one is already running).
func (m *Manager) PlanRepair(in []PlaceInput) (JobDesc, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.job != nil {
		return JobDesc{}, false
	}
	for _, k := range m.order {
		c := m.comps[k]
		if m.cleanLiveLocked(c) >= m.cfg.RF {
			continue
		}
		src := -1
		for _, r := range c.replicas {
			if m.down[r] || c.stale[r] {
				continue
			}
			if src < 0 || in[r].BusyNs < in[src].BusyNs {
				src = r
			}
		}
		if src < 0 {
			continue // nothing readable to copy from
		}
		dst, replace := -1, ReplaceNone
		for _, r := range c.replicas {
			if c.stale[r] && !m.down[r] {
				dst = r
				break
			}
		}
		if dst < 0 {
			if len(c.replicas) < m.cfg.RF {
				replace = ReplaceGrow
			} else {
				for i, r := range c.replicas {
					if m.down[r] {
						replace = i
						break
					}
				}
				if replace < 0 {
					continue // only stale-and-down members: wait for revive
				}
			}
			dst = pickBest(in, func(i int) bool { return contains(c.replicas, i) }, k.Comp)
			if dst < 0 {
				continue // no server outside the set is alive
			}
		}
		return JobDesc{Key: k, Obj: c.obj, Src: src, Dst: dst, Replace: replace}, true
	}
	return JobDesc{}, false
}

// StartJob arms the planned job with the source's written runs (the copy
// manifest the mount fetched over the wire).
func (m *Manager) StartJob(jd JobDesc, runs []alloc.Range) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.job = &job{desc: jd, runs: runs}
	m.stats.RepairsStarted++
	var blocks int64
	for _, r := range runs {
		blocks += r.Count
	}
	m.events.Emit(m.now(), "replica", "repair-start",
		fmt.Sprintf("ino=%d comp=%d ost%d->ost%d %d blocks", uint64(jd.Key.Ino), jd.Key.Comp, jd.Src, jd.Dst, blocks))
}

// JobActive reports whether a repair is in flight.
func (m *Manager) JobActive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.job != nil
}

// JobDescActive returns the in-flight job's plan.
func (m *Manager) JobDescActive() (JobDesc, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.job == nil {
		return JobDesc{}, false
	}
	return m.job.desc, true
}

// JobRemaining returns the blocks the in-flight job still has to copy.
func (m *Manager) JobRemaining() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.job == nil {
		return 0
	}
	return m.job.remaining()
}

// AbortJob drops the in-flight job (its source or destination failed); the
// component stays under-replicated and a later PlanRepair picks a new
// route.
func (m *Manager) AbortJob() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.job = nil
}

// NextSlice hands the mount the next copy slice, or ok=false when the step
// should do nothing: no job, the job is complete (call FinishJob), a
// foreground request is queued on the endpoints (preempted), or the token
// bucket is dry (throttled). force bypasses preemption and throttle — the
// drain mode batch tools use. The returned range is component-logical.
func (m *Manager) NextSlice(force bool, pending int) (alloc.Range, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.job == nil || m.job.remaining() == 0 {
		return alloc.Range{}, false
	}
	run := m.job.runs[m.job.runIdx]
	n := run.Count - m.job.off
	if n > m.cfg.SliceBlocks {
		n = m.cfg.SliceBlocks
	}
	if !force {
		if pending > 0 {
			m.stats.Preempted++
			return alloc.Range{}, false
		}
		if !m.takeTokensLocked(n) {
			m.stats.Throttled++
			return alloc.Range{}, false
		}
	}
	return alloc.Range{Start: run.Start + m.job.off, Count: n}, true
}

// takeTokensLocked refills the bucket from the simulated-time source and
// takes n tokens, reporting whether the budget allowed it.
func (m *Manager) takeTokensLocked(n int64) bool {
	if m.cfg.RateBlocksPerSec <= 0 {
		return true
	}
	now := m.timeSrc()
	if now > m.lastNs {
		m.tokens += sim.Seconds(now-m.lastNs) * float64(m.cfg.RateBlocksPerSec)
		m.lastNs = now
		if m.tokens > float64(m.cfg.BurstBlocks) {
			m.tokens = float64(m.cfg.BurstBlocks)
		}
	}
	if m.tokens < float64(n) {
		return false
	}
	m.tokens -= float64(n)
	return true
}

// AdvanceJob commits n copied blocks and moves the cursor.
func (m *Manager) AdvanceJob(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.job == nil {
		return
	}
	m.stats.RepairBlocks += n
	m.stats.RepairSlices++
	m.job.moved += n
	m.job.off += n
	for m.job.runIdx < len(m.job.runs) && m.job.off >= m.job.runs[m.job.runIdx].Count {
		m.job.off -= m.job.runs[m.job.runIdx].Count
		m.job.runIdx++
	}
}

// FinishJob completes the in-flight repair: the destination becomes a
// clean member per the plan's Replace mode, and the caller pushes the new
// set to the MDS when SetChanged.
func (m *Manager) FinishJob() RepairDone {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.job == nil {
		return RepairDone{}
	}
	jd := m.job.desc
	moved := m.job.moved
	m.job = nil
	done := RepairDone{Key: jd.Key, Obj: jd.Obj}
	c, ok := m.comps[jd.Key]
	if !ok {
		return done // file deleted mid-repair: nothing to commit
	}
	switch jd.Replace {
	case ReplaceNone:
		delete(c.stale, jd.Dst)
	case ReplaceGrow:
		c.replicas = append(c.replicas, jd.Dst)
		delete(c.stale, jd.Dst)
		done.SetChanged = true
	default:
		old := c.replicas[jd.Replace]
		c.replicas[jd.Replace] = jd.Dst
		delete(c.stale, old)
		delete(c.stale, jd.Dst)
		done.SetChanged = true
	}
	done.Replicas = append([]int(nil), c.replicas...)
	m.stats.RepairsDone++
	m.events.Emit(m.now(), "replica", "repair-done",
		fmt.Sprintf("ino=%d comp=%d ost%d->ost%d %d blocks", uint64(jd.Key.Ino), jd.Key.Comp, jd.Src, jd.Dst, moved))
	m.recountLocked()
	return done
}
