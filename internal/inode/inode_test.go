package inode

import (
	"strings"
	"testing"
	"testing/quick"

	"redbud/internal/extent"
)

func TestInoEncodeDecode(t *testing.T) {
	ino := MakeIno(7, 42)
	if ino.DirID() != 7 || ino.Offset() != 42 {
		t.Fatalf("round trip failed: %v", ino)
	}
	if ino.String() != "7:42" {
		t.Fatalf("String = %q", ino.String())
	}
}

func TestInoEncodeDecodeProperty(t *testing.T) {
	f := func(dirID, offset uint32) bool {
		ino := MakeIno(dirID, offset)
		return ino.DirID() == dirID && ino.Offset() == offset
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInoUniquenessProperty(t *testing.T) {
	f := func(d1, o1, d2, o2 uint32) bool {
		if d1 == d2 && o1 == o2 {
			return MakeIno(d1, o1) == MakeIno(d2, o2)
		}
		return MakeIno(d1, o1) != MakeIno(d2, o2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	in := &Inode{
		Ino:   MakeIno(3, 9),
		Mode:  ModeFile,
		Nlink: 1,
		Size:  123456,
		MTime: 42,
		CTime: 43,
		Name:  "result.odb",
		Inline: []extent.Extent{
			{Logical: 0, Physical: 800, Count: 16, Flags: extent.FlagPrealloc},
			{Logical: 16, Physical: 9000, Count: 4},
		},
		Spill:       [SpillSlots]int64{77, 0},
		ExtentCount: 9,
		OldIno:      MakeIno(2, 5),
	}
	buf, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != RecordSize {
		t.Fatalf("record size = %d, want %d", len(buf), RecordSize)
	}
	out, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ino != in.Ino || out.Mode != in.Mode || out.Size != in.Size ||
		out.Name != in.Name || out.ExtentCount != in.ExtentCount ||
		out.OldIno != in.OldIno || out.Spill != in.Spill ||
		out.MTime != in.MTime || out.CTime != in.CTime || out.Nlink != in.Nlink {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	if len(out.Inline) != 2 || out.Inline[0] != in.Inline[0] || out.Inline[1] != in.Inline[1] {
		t.Fatalf("inline extents mismatch: %v vs %v", out.Inline, in.Inline)
	}
}

func TestMarshalRejectsOversizedFields(t *testing.T) {
	in := &Inode{Name: strings.Repeat("x", MaxNameLen+1)}
	if _, err := in.Marshal(); err == nil {
		t.Fatal("oversized name should fail")
	}
	in = &Inode{Inline: make([]extent.Extent, InlineExtents+1)}
	if _, err := in.Marshal(); err == nil {
		t.Fatal("too many inline extents should fail")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short record should fail")
	}
	buf := make([]byte, RecordSize)
	buf[offNameLen] = MaxNameLen + 1
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("bad name length should fail")
	}
	buf = make([]byte, RecordSize)
	buf[offInlineN] = InlineExtents + 1
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("bad inline count should fail")
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(dirID, offset uint32, size int64, nameSeed uint8, extents uint8) bool {
		name := strings.Repeat("f", int(nameSeed)%MaxNameLen)
		n := int(extents) % (InlineExtents + 1)
		in := &Inode{
			Ino:  MakeIno(dirID, offset),
			Mode: ModeFile,
			Size: size,
			Name: name,
		}
		for i := 0; i < n; i++ {
			in.Inline = append(in.Inline, extent.Extent{Logical: int64(i) * 10, Physical: int64(i) * 100, Count: 5})
		}
		buf, err := in.Marshal()
		if err != nil {
			return false
		}
		out, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		if out.Ino != in.Ino || out.Name != in.Name || out.Size != in.Size || len(out.Inline) != n {
			return false
		}
		for i := range in.Inline {
			if out.Inline[i] != in.Inline[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
