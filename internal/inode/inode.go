// Package inode defines the on-disk inode of the Redbud metadata file
// system and the MiF inode-number scheme.
//
// Under the embedded-directory algorithm an inode has no fixed inode-table
// slot, so "its inode number is constructed by combining its parent
// directory identification with offset in the directory. In our current
// implementation, the normal file inode number is expressed by a 64-bit
// number, and the directory identification and offset is sized at 32-bit"
// (paper §4.B). This package implements that encoding, the inode record
// layout (including the embedded layout-mapping tail), and its
// serialization.
package inode

import (
	"encoding/binary"
	"errors"
	"fmt"

	"redbud/internal/extent"
)

// Ino is a 64-bit inode number: directory identification in the high 32
// bits, slot offset within the directory in the low 32 bits.
type Ino uint64

// RootDirID is the directory identification of the file system root.
const RootDirID uint32 = 1

// MakeIno combines a directory identification and a slot offset.
func MakeIno(dirID uint32, offset uint32) Ino {
	return Ino(uint64(dirID)<<32 | uint64(offset))
}

// DirID returns the parent-directory identification encoded in the number.
func (i Ino) DirID() uint32 { return uint32(uint64(i) >> 32) }

// Offset returns the slot offset encoded in the number.
func (i Ino) Offset() uint32 { return uint32(uint64(i)) }

// String renders the inode number as dirID:offset.
func (i Ino) String() string { return fmt.Sprintf("%d:%d", i.DirID(), i.Offset()) }

// Mode distinguishes the inode types.
type Mode uint8

// Inode modes.
const (
	ModeNone Mode = iota
	ModeFile
	ModeDir
)

// RecordSize is the serialized inode size in bytes. 16 records fit a
// 4 KiB block, matching ext3's 256-byte large inodes.
const RecordSize = 256

// InlineExtents is the number of layout-mapping units that fit in the
// inode tail before spill blocks are needed. The layout mapping "is stuffed
// into the tail of file inode (or the block contiguous to the inode block
// if the mapping structure is too large)".
const InlineExtents = 4

// MaxNameLen bounds the file name stored inside the record (embedded
// directories omit separate entry blocks, so the name lives here).
const MaxNameLen = 48

// SpillSlots is the number of spill-block pointers in the inode ("two
// pointers in inode structure are reserved to indicate the address of
// extra blocks").
const SpillSlots = 2

// Inode is the in-memory form of one inode record.
type Inode struct {
	Ino   Ino
	Mode  Mode
	Nlink uint16
	Size  int64 // bytes
	MTime int64 // simulated ns
	CTime int64 // simulated ns
	// Name is the file's name within its directory. Only the embedded
	// layout persists it in the record; the normal layout keeps names in
	// directory-entry blocks.
	Name string
	// Inline is the head of the layout mapping, stuffed in the record
	// tail (at most InlineExtents entries).
	Inline []extent.Extent
	// Spill points at the extra blocks holding overflow mapping
	// structures; zero entries are empty slots.
	Spill [SpillSlots]int64
	// ExtentCount is the total number of layout-mapping units, inline
	// plus spilled. It feeds the directory's fragmentation degree.
	ExtentCount uint32
	// OldIno preserves the pre-rename identity: "when renaming, the
	// additional structure to correlate the old and new inodes is kept".
	// Zero means no correlation.
	OldIno Ino
	// DirID is the directory identification this inode *is* (directories
	// only): the key under which the global directory table maps it.
	DirID uint32
	// Aux is a per-type scratch field. Directory records store their
	// fragmentation-degree numerator (Σ subfile layout-mapping units) in
	// it, so the degree survives remounts.
	Aux uint32
}

// Errors returned by the codec.
var (
	ErrNameTooLong   = errors.New("inode: name exceeds MaxNameLen")
	ErrTooManyInline = errors.New("inode: inline extents exceed InlineExtents")
	ErrBadRecord     = errors.New("inode: malformed record")
)

// record field offsets within the 256-byte layout.
const (
	offIno      = 0   // 8 bytes
	offMode     = 8   // 1 byte
	offNlink    = 10  // 2 bytes
	offSize     = 16  // 8 bytes
	offMTime    = 24  // 8 bytes
	offCTime    = 32  // 8 bytes
	offExtCount = 40  // 4 bytes
	offOldIno   = 44  // 8 bytes
	offSpill    = 52  // 2 × 8 bytes
	offNameLen  = 68  // 1 byte
	offName     = 69  // MaxNameLen bytes
	offInlineN  = 117 // 1 byte
	offInline   = 120 // InlineExtents × 32 bytes = 128
	offDirID    = 248 // 4 bytes
	offAux      = 252 // 4 bytes
)

// Marshal serializes the inode into a RecordSize-byte record.
func (n *Inode) Marshal() ([]byte, error) {
	if len(n.Name) > MaxNameLen {
		return nil, fmt.Errorf("%w: %q", ErrNameTooLong, n.Name)
	}
	if len(n.Inline) > InlineExtents {
		return nil, fmt.Errorf("%w: %d", ErrTooManyInline, len(n.Inline))
	}
	buf := make([]byte, RecordSize)
	le := binary.LittleEndian
	le.PutUint64(buf[offIno:], uint64(n.Ino))
	buf[offMode] = byte(n.Mode)
	le.PutUint16(buf[offNlink:], n.Nlink)
	le.PutUint64(buf[offSize:], uint64(n.Size))
	le.PutUint64(buf[offMTime:], uint64(n.MTime))
	le.PutUint64(buf[offCTime:], uint64(n.CTime))
	le.PutUint32(buf[offExtCount:], n.ExtentCount)
	le.PutUint64(buf[offOldIno:], uint64(n.OldIno))
	for i, s := range n.Spill {
		le.PutUint64(buf[offSpill+8*i:], uint64(s))
	}
	buf[offNameLen] = byte(len(n.Name))
	copy(buf[offName:], n.Name)
	le.PutUint32(buf[offDirID:], n.DirID)
	le.PutUint32(buf[offAux:], n.Aux)
	buf[offInlineN] = byte(len(n.Inline))
	for i, e := range n.Inline {
		base := offInline + 32*i
		le.PutUint64(buf[base:], uint64(e.Logical))
		le.PutUint64(buf[base+8:], uint64(e.Physical))
		le.PutUint64(buf[base+16:], uint64(e.Count))
		le.PutUint32(buf[base+24:], e.Flags)
	}
	return buf, nil
}

// Unmarshal parses a RecordSize-byte record.
func Unmarshal(buf []byte) (*Inode, error) {
	if len(buf) < RecordSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadRecord, len(buf))
	}
	le := binary.LittleEndian
	n := &Inode{
		Ino:         Ino(le.Uint64(buf[offIno:])),
		Mode:        Mode(buf[offMode]),
		Nlink:       le.Uint16(buf[offNlink:]),
		Size:        int64(le.Uint64(buf[offSize:])),
		MTime:       int64(le.Uint64(buf[offMTime:])),
		CTime:       int64(le.Uint64(buf[offCTime:])),
		ExtentCount: le.Uint32(buf[offExtCount:]),
		OldIno:      Ino(le.Uint64(buf[offOldIno:])),
		DirID:       le.Uint32(buf[offDirID:]),
		Aux:         le.Uint32(buf[offAux:]),
	}
	for i := range n.Spill {
		n.Spill[i] = int64(le.Uint64(buf[offSpill+8*i:]))
	}
	nameLen := int(buf[offNameLen])
	if nameLen > MaxNameLen {
		return nil, fmt.Errorf("%w: name length %d", ErrBadRecord, nameLen)
	}
	n.Name = string(buf[offName : offName+nameLen])
	inlineN := int(buf[offInlineN])
	if inlineN > InlineExtents {
		return nil, fmt.Errorf("%w: inline count %d", ErrBadRecord, inlineN)
	}
	for i := 0; i < inlineN; i++ {
		base := offInline + 32*i
		n.Inline = append(n.Inline, extent.Extent{
			Logical:  int64(le.Uint64(buf[base:])),
			Physical: int64(le.Uint64(buf[base+8:])),
			Count:    int64(le.Uint64(buf[base+16:])),
			Flags:    le.Uint32(buf[base+24:]),
		})
	}
	return n, nil
}

// IsDir reports whether the inode is a directory.
func (n *Inode) IsDir() bool { return n.Mode == ModeDir }
