package inode

import (
	"testing"
	"testing/quick"

	"redbud/internal/sim"
)

// TestUnmarshalNeverPanicsProperty: arbitrary record bytes must either
// parse or fail with an error — never panic and never produce an inode
// that re-marshals out of bounds. The metadata file system reads records
// from blocks that crash recovery or corruption may have scrambled.
func TestUnmarshalNeverPanicsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		buf := make([]byte, RecordSize)
		for i := range buf {
			buf[i] = byte(rng.Uint64())
		}
		rec, err := Unmarshal(buf)
		if err != nil {
			return true // rejected: fine
		}
		// Anything accepted must round-trip through Marshal.
		out, err := rec.Marshal()
		if err != nil {
			return false
		}
		rec2, err := Unmarshal(out)
		if err != nil {
			return false
		}
		return rec2.Ino == rec.Ino && rec2.Name == rec.Name && len(rec2.Inline) == len(rec.Inline)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalShortBuffers: every length below RecordSize errors cleanly.
func TestUnmarshalShortBuffers(t *testing.T) {
	for n := 0; n < RecordSize; n += 13 {
		if _, err := Unmarshal(make([]byte, n)); err == nil {
			t.Fatalf("length %d should be rejected", n)
		}
	}
}
