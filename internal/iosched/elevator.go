// Package iosched implements an elevator (C-SCAN-style) I/O scheduler with
// adjacent-request merging, standing in for the Linux CFQ scheduler on the
// paper's testbed.
//
// The scheduler matters to the reproduction because of the paper's Fig. 6(b)
// argument: "the scheduler underlying file systems can not merge the
// fragmentary requests on disk", so small, scattered allocations translate
// into many separate positionings. A merging elevator makes that effect
// emerge naturally: requests that the allocator placed contiguously collapse
// into few large transfers, requests it scattered do not.
package iosched

import (
	"sort"
	"sync"

	"redbud/internal/disk"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// Request is one block-level I/O request as seen by the scheduler.
type Request struct {
	// Start is the first block of the request.
	Start int64
	// Count is the length of the request in blocks.
	Count int64
	// Write selects the transfer direction.
	Write bool
}

// End returns the block just past the request.
func (r Request) End() int64 { return r.Start + r.Count }

// Stats accumulates scheduler-level counters.
type Stats struct {
	// Submitted counts requests handed to the scheduler.
	Submitted int64
	// Dispatched counts requests issued to the disk after merging.
	Dispatched int64
	// Merged counts requests absorbed into a neighbour.
	Merged int64
}

// Sub returns the field-wise difference s - o, isolating the counters of
// one benchmark phase — the same delta idiom disk.Stats supports.
func (s Stats) Sub(o Stats) Stats {
	s.Submitted -= o.Submitted
	s.Dispatched -= o.Dispatched
	s.Merged -= o.Merged
	return s
}

// Elevator sorts batches of outstanding requests by start block and merges
// physically adjacent requests of the same direction before dispatching them
// to a disk. The queue window bounds how many outstanding requests the
// scheduler may reorder at once, like a real device queue. All methods are
// safe for concurrent use.
type Elevator struct {
	// QueueDepth is the reorder window. Requests are scheduled in
	// consecutive windows of this many requests; a window of 1 disables
	// reordering entirely. Zero or negative means unbounded. QueueDepth is
	// read at Schedule time; set it before submitting work.
	QueueDepth int

	mu    sync.Mutex
	stats Stats

	// batchHist, when attached, observes the submitted size of every
	// scheduled batch. tracer, when attached, records dispatch and
	// per-request disk spans.
	batchHist *telemetry.Histogram
	tracer    *telemetry.Tracer
}

// NewElevator returns an elevator with the given reorder window.
func NewElevator(queueDepth int) *Elevator {
	return &Elevator{QueueDepth: queueDepth}
}

// Stats returns a defensive snapshot of the scheduler counters, taken under
// the elevator's lock — the same snapshot semantics as disk.Disk.Stats, so
// per-phase deltas (snapshot, run, snapshot, Sub) work identically across
// both layers.
func (e *Elevator) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ResetStats zeroes the scheduler counters for a new measurement phase,
// mirroring disk.Disk.ResetStats.
func (e *Elevator) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
}

// Instrument publishes the scheduler counters into the registry and
// attaches a batch-size histogram observed on every Schedule call.
func (e *Elevator) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	e.mu.Lock()
	e.batchHist = reg.Histogram("iosched_batch_requests", labels)
	e.mu.Unlock()
	reg.CounterFunc("iosched_submitted", labels, func() int64 { return e.Stats().Submitted })
	reg.CounterFunc("iosched_dispatched", labels, func() int64 { return e.Stats().Dispatched })
	reg.CounterFunc("iosched_merged", labels, func() int64 { return e.Stats().Merged })
}

// SetTracer attaches (or with nil detaches) the span tracer used by
// RunTraced.
func (e *Elevator) SetTracer(t *telemetry.Tracer) {
	e.mu.Lock()
	e.tracer = t
	e.mu.Unlock()
}

// Schedule returns the dispatch order for a batch of outstanding requests:
// sorted by start block within each queue window, with physically adjacent
// same-direction requests merged. The input slice is not modified.
func (e *Elevator) Schedule(reqs []Request) []Request {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Submitted += int64(len(reqs))
	if e.batchHist != nil {
		e.batchHist.Observe(int64(len(reqs)))
	}
	if len(reqs) == 0 {
		return nil
	}
	window := e.QueueDepth
	if window <= 0 {
		window = len(reqs)
	}
	out := make([]Request, 0, len(reqs))
	buf := make([]Request, 0, window)
	for lo := 0; lo < len(reqs); lo += window {
		hi := lo + window
		if hi > len(reqs) {
			hi = len(reqs)
		}
		buf = buf[:0]
		buf = append(buf, reqs[lo:hi]...)
		sort.Slice(buf, func(i, j int) bool {
			if buf[i].Start != buf[j].Start {
				return buf[i].Start < buf[j].Start
			}
			return buf[i].Count < buf[j].Count
		})
		out = appendMerged(out, buf, &e.stats, len(out))
	}
	e.stats.Dispatched += int64(len(out))
	return out
}

// appendMerged appends the sorted window to out, merging adjacent and
// overlapping requests. firstNew marks where this window begins in out so
// merging never reaches into a previous window (a real elevator cannot
// merge with a request it has already dispatched).
func appendMerged(out, window []Request, st *Stats, firstNew int) []Request {
	for _, r := range window {
		if n := len(out); n > firstNew {
			last := &out[n-1]
			// The window is sorted, so r.Start >= last.Start. Any request
			// touching or overlapping the previous one merges: adjacent
			// requests concatenate, contained duplicates collapse, and a
			// partial overlap is trimmed into a front merge — the disk
			// must not be charged twice for the overlapped blocks.
			if last.Write == r.Write && r.Start <= last.End() {
				if r.End() > last.End() {
					last.Count = r.End() - last.Start
				}
				st.Merged++
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

// Run schedules the batch and services every dispatched request on d,
// returning the total simulated service time. It is the one-stop path used
// by the IO servers: queue, sort, merge, dispatch.
func (e *Elevator) Run(d *disk.Disk, reqs []Request) sim.Ns {
	return e.RunTraced(d, reqs, 0)
}

// RunTraced is Run with span recording: when a tracer is attached, the
// whole dispatch becomes an "iosched" span under parent, each serviced
// request a child "disk" span whose duration is its service time (the trace
// clock advances by each request's cost), annotated with its placement and
// flagged with a "positioning" event when the head had to move — the
// block-layer interception the paper measures with, reproduced on the
// simulated timeline. Without a tracer it is exactly Run.
func (e *Elevator) RunTraced(d *disk.Disk, reqs []Request, parent telemetry.SpanID) sim.Ns {
	e.mu.Lock()
	t := e.tracer
	e.mu.Unlock()
	if t == nil {
		var total sim.Ns
		for _, r := range e.Schedule(reqs) {
			total += d.Access(r.Start, r.Count, r.Write)
		}
		return total
	}

	sp := t.Start("iosched", "dispatch", parent)
	before := e.Stats()
	sched := e.Schedule(reqs)
	delta := e.Stats().Sub(before)
	sp.AnnotateInt("submitted", int64(len(reqs)))
	sp.AnnotateInt("dispatched", int64(len(sched)))
	sp.AnnotateInt("merged", int64(delta.Merged))
	var total sim.Ns
	for _, r := range sched {
		name := "read"
		if r.Write {
			name = "write"
		}
		ds := t.Start("disk", name, sp.ID())
		pos := d.Stats().Positionings
		cost := d.Access(r.Start, r.Count, r.Write)
		t.Advance(cost)
		if d.Stats().Positionings > pos {
			ds.Event("positioning")
		}
		ds.AnnotateInt("start", int64(r.Start))
		ds.AnnotateInt("blocks", int64(r.Count))
		ds.End()
		total += cost
	}
	sp.End()
	return total
}
