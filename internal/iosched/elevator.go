// Package iosched implements an elevator (C-SCAN-style) I/O scheduler with
// adjacent-request merging, standing in for the Linux CFQ scheduler on the
// paper's testbed.
//
// The scheduler matters to the reproduction because of the paper's Fig. 6(b)
// argument: "the scheduler underlying file systems can not merge the
// fragmentary requests on disk", so small, scattered allocations translate
// into many separate positionings. A merging elevator makes that effect
// emerge naturally: requests that the allocator placed contiguously collapse
// into few large transfers, requests it scattered do not.
package iosched

import (
	"sort"

	"redbud/internal/disk"
	"redbud/internal/sim"
)

// Request is one block-level I/O request as seen by the scheduler.
type Request struct {
	// Start is the first block of the request.
	Start int64
	// Count is the length of the request in blocks.
	Count int64
	// Write selects the transfer direction.
	Write bool
}

// End returns the block just past the request.
func (r Request) End() int64 { return r.Start + r.Count }

// Stats accumulates scheduler-level counters.
type Stats struct {
	// Submitted counts requests handed to the scheduler.
	Submitted int64
	// Dispatched counts requests issued to the disk after merging.
	Dispatched int64
	// Merged counts requests absorbed into a neighbour.
	Merged int64
}

// Elevator sorts batches of outstanding requests by start block and merges
// physically adjacent requests of the same direction before dispatching them
// to a disk. The queue window bounds how many outstanding requests the
// scheduler may reorder at once, like a real device queue.
type Elevator struct {
	// QueueDepth is the reorder window. Requests are scheduled in
	// consecutive windows of this many requests; a window of 1 disables
	// reordering entirely. Zero or negative means unbounded.
	QueueDepth int

	stats Stats
}

// NewElevator returns an elevator with the given reorder window.
func NewElevator(queueDepth int) *Elevator {
	return &Elevator{QueueDepth: queueDepth}
}

// Stats returns a snapshot of the scheduler counters.
func (e *Elevator) Stats() Stats { return e.stats }

// Schedule returns the dispatch order for a batch of outstanding requests:
// sorted by start block within each queue window, with physically adjacent
// same-direction requests merged. The input slice is not modified.
func (e *Elevator) Schedule(reqs []Request) []Request {
	e.stats.Submitted += int64(len(reqs))
	if len(reqs) == 0 {
		return nil
	}
	window := e.QueueDepth
	if window <= 0 {
		window = len(reqs)
	}
	out := make([]Request, 0, len(reqs))
	buf := make([]Request, 0, window)
	for lo := 0; lo < len(reqs); lo += window {
		hi := lo + window
		if hi > len(reqs) {
			hi = len(reqs)
		}
		buf = buf[:0]
		buf = append(buf, reqs[lo:hi]...)
		sort.Slice(buf, func(i, j int) bool {
			if buf[i].Start != buf[j].Start {
				return buf[i].Start < buf[j].Start
			}
			return buf[i].Count < buf[j].Count
		})
		out = appendMerged(out, buf, &e.stats, len(out))
	}
	e.stats.Dispatched += int64(len(out))
	return out
}

// appendMerged appends the sorted window to out, merging adjacent requests.
// firstNew marks where this window begins in out so merging never reaches
// into a previous window (a real elevator cannot merge with a request it has
// already dispatched).
func appendMerged(out, window []Request, st *Stats, firstNew int) []Request {
	for _, r := range window {
		if n := len(out); n > firstNew {
			last := &out[n-1]
			if last.Write == r.Write && last.End() == r.Start {
				last.Count += r.Count
				st.Merged++
				continue
			}
			// Fully overlapping duplicate reads collapse too.
			if last.Write == r.Write && r.Start >= last.Start && r.End() <= last.End() {
				st.Merged++
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

// Run schedules the batch and services every dispatched request on d,
// returning the total simulated service time. It is the one-stop path used
// by the IO servers: queue, sort, merge, dispatch.
func (e *Elevator) Run(d *disk.Disk, reqs []Request) sim.Ns {
	var total sim.Ns
	for _, r := range e.Schedule(reqs) {
		total += d.Access(r.Start, r.Count, r.Write)
	}
	return total
}
