package iosched

import (
	"testing"
	"testing/quick"

	"redbud/internal/disk"
)

func TestScheduleSortsAndMerges(t *testing.T) {
	e := NewElevator(0)
	got := e.Schedule([]Request{
		{Start: 100, Count: 10, Write: true},
		{Start: 0, Count: 50, Write: true},
		{Start: 50, Count: 50, Write: true},
		{Start: 300, Count: 5, Write: true},
	})
	want := []Request{
		{Start: 0, Count: 110, Write: true},
		{Start: 300, Count: 5, Write: true},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if e.Stats().Merged != 2 {
		t.Fatalf("Merged = %d, want 2", e.Stats().Merged)
	}
}

func TestScheduleDoesNotMergeAcrossDirection(t *testing.T) {
	e := NewElevator(0)
	got := e.Schedule([]Request{
		{Start: 0, Count: 10, Write: true},
		{Start: 10, Count: 10, Write: false},
	})
	if len(got) != 2 {
		t.Fatalf("read and write must not merge: got %v", got)
	}
}

func TestQueueDepthLimitsReordering(t *testing.T) {
	// Two interleaved sequential streams. With an unbounded window the
	// elevator merges each stream fully; with a window of 1 it cannot
	// reorder at all.
	var reqs []Request
	for i := int64(0); i < 64; i++ {
		reqs = append(reqs, Request{Start: i * 4, Count: 4, Write: false})
		reqs = append(reqs, Request{Start: 1_000_000 + i*4, Count: 4, Write: false})
	}
	unbounded := NewElevator(0)
	n1 := len(unbounded.Schedule(reqs))
	strict := NewElevator(1)
	n2 := len(strict.Schedule(reqs))
	if n1 >= n2 {
		t.Fatalf("unbounded window should dispatch fewer requests (%d) than window=1 (%d)", n1, n2)
	}
	if n2 != len(reqs) {
		t.Fatalf("window=1 must dispatch all %d requests, got %d", len(reqs), n2)
	}
}

func TestScheduleEmpty(t *testing.T) {
	e := NewElevator(8)
	if got := e.Schedule(nil); got != nil {
		t.Fatalf("empty batch should dispatch nothing, got %v", got)
	}
}

func TestDuplicateContainedRequestCollapses(t *testing.T) {
	e := NewElevator(0)
	got := e.Schedule([]Request{
		{Start: 0, Count: 100, Write: false},
		{Start: 10, Count: 5, Write: false},
	})
	if len(got) != 1 || got[0].Count != 100 {
		t.Fatalf("contained duplicate should collapse, got %v", got)
	}
}

// TestPartialOverlapFrontMerges is the regression test for the
// double-charge bug: a partially overlapping same-direction request used to
// be appended verbatim, billing the disk twice for the overlapped blocks. A
// real elevator trims the overlap into a front merge; the dispatched total
// must equal the union of the requested ranges.
func TestPartialOverlapFrontMerges(t *testing.T) {
	e := NewElevator(0)
	got := e.Schedule([]Request{
		{Start: 0, Count: 7, Write: false},
		{Start: 5, Count: 5, Write: false},
	})
	want := Request{Start: 0, Count: 10, Write: false}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("partial overlap dispatched %v, want one merged %v", got, want)
	}
	if st := e.Stats(); st.Merged != 1 {
		t.Fatalf("Merged = %d, want 1 (overlap trim counts as a merge)", st.Merged)
	}

	// Chained overlaps keep collapsing, and the serviced block total stays
	// exactly the union: [0,7) ∪ [5,10) ∪ [9,20) ∪ [30,35) = 25 blocks.
	e = NewElevator(0)
	var total int64
	for _, r := range e.Schedule([]Request{
		{Start: 9, Count: 11, Write: true},
		{Start: 0, Count: 7, Write: true},
		{Start: 30, Count: 5, Write: true},
		{Start: 5, Count: 5, Write: true},
	}) {
		total += r.Count
	}
	if total != 25 {
		t.Fatalf("serviced %d blocks, want union = 25 (overlap double-charged)", total)
	}

	// Overlapping requests of opposite direction must NOT merge: the write
	// and the read are distinct transfers.
	e = NewElevator(0)
	if got := e.Schedule([]Request{
		{Start: 0, Count: 7, Write: true},
		{Start: 5, Count: 5, Write: false},
	}); len(got) != 2 {
		t.Fatalf("cross-direction overlap merged: %v", got)
	}
}

func TestRunOnDisk(t *testing.T) {
	d := disk.New(disk.DefaultConfig(), 1<<20)
	e := NewElevator(0)
	// 128 fragmentary requests that are actually one contiguous range.
	var reqs []Request
	for i := int64(0); i < 128; i++ {
		reqs = append(reqs, Request{Start: i * 8, Count: 8, Write: false})
	}
	e.Run(d, reqs)
	if st := d.Stats(); st.Requests != 1 {
		t.Fatalf("contiguous batch should hit the disk as one request, got %d", st.Requests)
	}
}

// Property: scheduling preserves the total transferred block count and every
// dispatched request covers only blocks that were requested.
func TestSchedulePreservesWorkProperty(t *testing.T) {
	f := func(starts []uint16, counts []uint8) bool {
		n := len(starts)
		if len(counts) < n {
			n = len(counts)
		}
		var reqs []Request
		var want int64
		for i := 0; i < n; i++ {
			c := int64(counts[i]%32) + 1
			reqs = append(reqs, Request{Start: int64(starts[i]) * 64, Count: c, Write: true})
			want += c
		}
		e := NewElevator(0)
		var got int64
		covered := map[int64]bool{}
		for _, r := range reqs {
			for b := r.Start; b < r.End(); b++ {
				covered[b] = true
			}
		}
		for _, r := range e.Schedule(reqs) {
			got += r.Count
			for b := r.Start; b < r.End(); b++ {
				if !covered[b] {
					return false // dispatched a block nobody asked for
				}
			}
		}
		// Merging of contained duplicates may shrink the total, never grow it.
		return got <= want && (n == 0 || got > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsSnapshotIsDefensive(t *testing.T) {
	e := NewElevator(0)
	e.Schedule([]Request{{Start: 0, Count: 4, Write: true}, {Start: 4, Count: 4, Write: true}})
	snap := e.Stats()
	if snap.Submitted != 2 || snap.Dispatched != 1 || snap.Merged != 1 {
		t.Fatalf("stats = %+v", snap)
	}
	// Mutating the snapshot must not leak back into the elevator, the same
	// semantics disk.Disk.Stats guarantees.
	snap.Submitted = 999
	if got := e.Stats().Submitted; got != 2 {
		t.Fatalf("snapshot mutation leaked: Submitted = %d, want 2", got)
	}
	// New work after a snapshot leaves the earlier snapshot unchanged.
	e.Schedule([]Request{{Start: 100, Count: 1, Write: false}})
	if got := e.Stats().Submitted; got != 3 {
		t.Fatalf("Submitted = %d, want 3", got)
	}
}

func TestResetStatsMirrorsDisk(t *testing.T) {
	e := NewElevator(0)
	e.Schedule([]Request{{Start: 0, Count: 4, Write: true}, {Start: 4, Count: 4, Write: true}})
	before := e.Stats()
	if (before == Stats{}) {
		t.Fatal("expected non-zero counters before reset")
	}
	e.ResetStats()
	if got := e.Stats(); got != (Stats{}) {
		t.Fatalf("after ResetStats: %+v, want zeros", got)
	}
	// Per-phase delta idiom: snapshot, run, snapshot, Sub.
	e.Schedule([]Request{{Start: 0, Count: 4, Write: true}})
	delta := e.Stats().Sub(Stats{})
	if delta.Submitted != 1 {
		t.Fatalf("delta = %+v", delta)
	}
}
