package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"redbud/internal/core"
	"redbud/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpWrite, Stream: core.StreamID{Client: 2, PID: 3}, Blk: 100, Count: 8},
		{Kind: OpRead, Blk: 0, Count: 64},
		{Kind: OpWrite, Stream: core.StreamID{Client: 0, PID: 0}, Blk: 0, Count: 1},
	}
	var buf bytes.Buffer
	if err := Write(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("got %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nW 1.2 10 4\n  \n# trailing\nR 0 8\n"
	ops, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("ops = %v", ops)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"X 1 2",
		"W 1.2 10",
		"W 12 10 4",
		"W 1.2 -5 4",
		"W 1.2 5 0",
		"R 5",
		"R a b",
		"W a.b 1 1",
	} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("line %q should be rejected", bad)
		}
	}
}

func TestGeneratePatterns(t *testing.T) {
	for _, pattern := range []string{"shared", "strided", "random"} {
		ops, err := Generate(GenConfig{
			Pattern: pattern, Streams: 8, RegionBlocks: 64, RequestBlocks: 8,
			ReadBack: true, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		var writeBlocks, readBlocks int64
		for _, op := range ops {
			if op.Count <= 0 || op.Blk < 0 {
				t.Fatalf("%s: invalid op %+v", pattern, op)
			}
			if op.Kind == OpWrite {
				writeBlocks += op.Count
			} else {
				readBlocks += op.Count
			}
		}
		if writeBlocks != 8*64 {
			t.Fatalf("%s: wrote %d blocks, want 512", pattern, writeBlocks)
		}
		if readBlocks != 512 {
			t.Fatalf("%s: read back %d blocks, want 512", pattern, readBlocks)
		}
	}
	if _, err := Generate(GenConfig{Pattern: "nope", Streams: 1, RegionBlocks: 1, RequestBlocks: 1}); err == nil {
		t.Fatal("unknown pattern should fail")
	}
	if _, err := Generate(GenConfig{Pattern: "shared"}); err == nil {
		t.Fatal("zero config should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Pattern: "random", Streams: 4, RegionBlocks: 32, RequestBlocks: 4, Seed: 9}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic content")
		}
	}
}

// Property: any generated trace round-trips through the text format.
func TestGenerateRoundTripProperty(t *testing.T) {
	patterns := []string{"shared", "strided", "random"}
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		cfg := GenConfig{
			Pattern:       patterns[rng.Intn(3)],
			Streams:       rng.Intn(8) + 1,
			RegionBlocks:  rng.Int63n(64) + 1,
			RequestBlocks: rng.Int63n(8) + 1,
			ReadBack:      rng.Intn(2) == 0,
			Seed:          rng.Uint64(),
		}
		ops, err := Generate(cfg)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if Write(&buf, ops) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(ops) {
			return false
		}
		for i := range ops {
			if got[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
