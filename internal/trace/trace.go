// Package trace defines the block-level workload trace format shared by
// cmd/miftrace and the workload generators: a line-oriented, diff-friendly
// encoding of write/read request streams with their stream identities, the
// raw material the allocation policies react to.
//
// Format, one operation per line:
//
//	W <client>.<pid> <blk> <count>    extending or overwrite write
//	R <blk> <count>                   read
//	# ...                             comment
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"redbud/internal/core"
	"redbud/internal/sim"
)

// OpKind distinguishes trace operations.
type OpKind byte

// Operation kinds.
const (
	OpWrite OpKind = 'W'
	OpRead  OpKind = 'R'
)

// Op is one trace operation.
type Op struct {
	Kind   OpKind
	Stream core.StreamID // writes only
	Blk    int64
	Count  int64
}

// String renders the op in trace format.
func (o Op) String() string {
	if o.Kind == OpWrite {
		return fmt.Sprintf("W %d.%d %d %d", o.Stream.Client, o.Stream.PID, o.Blk, o.Count)
	}
	return fmt.Sprintf("R %d %d", o.Blk, o.Count)
}

// Write serializes ops to w, one per line.
func Write(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		if _, err := fmt.Fprintln(bw, op); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace, skipping blank lines and # comments. Malformed
// lines are errors with their line number.
func Read(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		op, err := parseLine(text)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// parseLine parses one trace line.
func parseLine(text string) (Op, error) {
	fields := strings.Fields(text)
	switch fields[0] {
	case "W":
		if len(fields) != 4 {
			return Op{}, fmt.Errorf("write needs 4 fields, got %d", len(fields))
		}
		stream, err := ParseStream(fields[1])
		if err != nil {
			return Op{}, err
		}
		blk, count, err := parseRange(fields[2], fields[3])
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: OpWrite, Stream: stream, Blk: blk, Count: count}, nil
	case "R":
		if len(fields) != 3 {
			return Op{}, fmt.Errorf("read needs 3 fields, got %d", len(fields))
		}
		blk, count, err := parseRange(fields[1], fields[2])
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: OpRead, Blk: blk, Count: count}, nil
	default:
		return Op{}, fmt.Errorf("unknown op %q", fields[0])
	}
}

// parseRange parses and validates a (blk, count) pair.
func parseRange(blkS, countS string) (int64, int64, error) {
	blk, err := strconv.ParseInt(blkS, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad block %q", blkS)
	}
	count, err := strconv.ParseInt(countS, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad count %q", countS)
	}
	if blk < 0 || count <= 0 {
		return 0, 0, fmt.Errorf("invalid range [%d,+%d)", blk, count)
	}
	return blk, count, nil
}

// ParseStream parses "client.pid".
func ParseStream(v string) (core.StreamID, error) {
	parts := strings.SplitN(v, ".", 2)
	if len(parts) != 2 {
		return core.StreamID{}, fmt.Errorf("stream %q: want client.pid", v)
	}
	c, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return core.StreamID{}, fmt.Errorf("stream %q: %v", v, err)
	}
	p, err := strconv.ParseUint(parts[1], 10, 32)
	if err != nil {
		return core.StreamID{}, fmt.Errorf("stream %q: %v", v, err)
	}
	return core.StreamID{Client: uint32(c), PID: uint32(p)}, nil
}

// GenConfig parameterizes the synthetic trace generators.
type GenConfig struct {
	// Pattern selects the write pattern: "shared" (round-robin extends
	// of disjoint regions, Figure 1(a)), "strided" (each stream writes
	// every streams-th chunk), or "random".
	Pattern string
	// Streams is the writer count.
	Streams int
	// RegionBlocks is each stream's share in blocks.
	RegionBlocks int64
	// RequestBlocks is the write request size.
	RequestBlocks int64
	// ReadBack appends a sequential read pass over the written range.
	ReadBack bool
	// Seed drives the random pattern.
	Seed uint64
}

// Generate builds a synthetic trace.
func Generate(cfg GenConfig) ([]Op, error) {
	if cfg.Streams <= 0 || cfg.RegionBlocks <= 0 || cfg.RequestBlocks <= 0 {
		return nil, fmt.Errorf("trace: bad generator config %+v", cfg)
	}
	stream := func(s int) core.StreamID {
		return core.StreamID{Client: uint32(s / 4), PID: uint32(s % 4)}
	}
	total := int64(cfg.Streams) * cfg.RegionBlocks
	var ops []Op
	switch cfg.Pattern {
	case "shared":
		for off := int64(0); off < cfg.RegionBlocks; off += cfg.RequestBlocks {
			n := cfg.RequestBlocks
			if off+n > cfg.RegionBlocks {
				n = cfg.RegionBlocks - off
			}
			for s := 0; s < cfg.Streams; s++ {
				ops = append(ops, Op{Kind: OpWrite, Stream: stream(s), Blk: int64(s)*cfg.RegionBlocks + off, Count: n})
			}
		}
	case "strided":
		for off := int64(0); off < total; off += cfg.RequestBlocks {
			n := cfg.RequestBlocks
			if off+n > total {
				n = total - off
			}
			s := int((off / cfg.RequestBlocks) % int64(cfg.Streams))
			ops = append(ops, Op{Kind: OpWrite, Stream: stream(s), Blk: off, Count: n})
		}
	case "random":
		rng := sim.NewRand(cfg.Seed)
		for i := int64(0); i < total/cfg.RequestBlocks; i++ {
			s := rng.Intn(cfg.Streams)
			blk := rng.Int63n(total - cfg.RequestBlocks + 1)
			ops = append(ops, Op{Kind: OpWrite, Stream: stream(s), Blk: blk, Count: cfg.RequestBlocks})
		}
	default:
		return nil, fmt.Errorf("trace: unknown pattern %q", cfg.Pattern)
	}
	if cfg.ReadBack {
		for blk := int64(0); blk < total; blk += 64 {
			n := int64(64)
			if blk+n > total {
				n = total - blk
			}
			ops = append(ops, Op{Kind: OpRead, Blk: blk, Count: n})
		}
	}
	return ops, nil
}
