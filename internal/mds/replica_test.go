package mds

import (
	"testing"

	"redbud/internal/mdfs"
	"redbud/internal/replica"
)

func TestReplicaLayoutRoundTrip(t *testing.T) {
	s := newServer(t, mdfs.LayoutEmbedded)
	ino, err := s.Create(s.Root(), "r")
	if err != nil {
		t.Fatal(err)
	}
	in := []replica.PlaceInput{
		{OST: 0, FreeBlocks: 100}, {OST: 1, FreeBlocks: 100},
		{OST: 2, FreeBlocks: 100}, {OST: 3, FreeBlocks: 100},
	}
	sets, err := s.PlaceReplicas(ino, 4, 2, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 4 {
		t.Fatalf("placed %d components, want 4", len(sets))
	}
	got, err := s.GetReplicaLayout(ino)
	if err != nil {
		t.Fatal(err)
	}
	for c := range sets {
		if len(got[c]) != len(sets[c]) {
			t.Fatalf("comp %d: %v vs placed %v", c, got[c], sets[c])
		}
		for i := range sets[c] {
			if got[c][i] != sets[c][i] {
				t.Fatalf("comp %d: %v vs placed %v", c, got[c], sets[c])
			}
		}
	}
	// A repair commit replaces one component's set.
	if err := s.SetReplicaLayout(ino, 2, []int{3, 0}); err != nil {
		t.Fatal(err)
	}
	got, err = s.GetReplicaLayout(ino)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[2]) != 2 || got[2][0] != 3 || got[2][1] != 0 {
		t.Fatalf("comp 2 after commit = %v, want [3 0]", got[2])
	}
	// Errors: unknown inode, out-of-range component.
	if _, err := s.GetReplicaLayout(ino + 1000); err == nil {
		t.Fatal("layout of an unplaced inode must fail")
	}
	if err := s.SetReplicaLayout(ino, 9, []int{0}); err == nil {
		t.Fatal("commit to a component outside the layout must fail")
	}
}
