// Package mds implements the Redbud metadata server: the RPC-facing layer
// over the metadata file system that aggregates common operation pairs
// (readdir+stat, open+getlayout) and carries the CPU cost model behind
// Table I ("the less extents in the parallel file systems to be operated,
// such as merging and indexing, the less CPU load involved in MDS").
package mds

import (
	"fmt"

	"redbud/internal/extent"
	"redbud/internal/inode"
	"redbud/internal/mdfs"
	"redbud/internal/replica"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// Config holds the MDS construction parameters.
type Config struct {
	// FS configures the backing metadata file system.
	FS mdfs.Config
	// RequestNs is the fixed CPU cost of servicing one metadata RPC.
	RequestNs sim.Ns
	// ExtentOpNs is the CPU cost of one layout-mapping unit operated on
	// (inserted, merged, indexed, or returned).
	ExtentOpNs sim.Ns
}

// DefaultConfig returns an MDS over the given layout with the CPU model
// used throughout the evaluation.
func DefaultConfig(layout mdfs.Layout) Config {
	return Config{
		FS:         mdfs.DefaultConfig(layout),
		RequestNs:  8 * sim.Microsecond,
		ExtentOpNs: 2 * sim.Microsecond,
	}
}

// Stats counts MDS activity.
type Stats struct {
	// RPCs is the number of metadata requests serviced.
	RPCs int64
	// ExtentOps is the number of layout-mapping units processed.
	ExtentOps int64
	// CPUNs is the accumulated CPU time of the request-processing model.
	CPUNs sim.Ns
}

// Server is one metadata server. Like the backing FS it is serialized by
// the caller (the PFS mount wraps it in a lock). The server models only
// its own work — CPU and metadata storage; the network cost of reaching
// it is charged by the rpc transport that fronts it.
type Server struct {
	cfg   Config
	fs    *mdfs.FS
	stats Stats

	// replicaSets is the replica layout table of replicated mounts: one
	// replica set (distinct OST indices) per stripe component, keyed by
	// inode. Unreplicated mounts never touch it.
	replicaSets map[inode.Ino][][]int

	// rpcHist, when attached, observes the modeled service cost (CPU) of
	// every RPC. tracer records per-RPC spans on the simulated timeline;
	// traceParent is the span of the request currently being serviced
	// (the rpc endpoint sets it, serialized under the mount lock like
	// every other MDS access).
	rpcHist     *telemetry.Histogram
	tracer      *telemetry.Tracer
	traceParent telemetry.SpanID
}

// New builds a metadata server, formatting its file system.
func New(cfg Config) (*Server, error) {
	if cfg.RequestNs == 0 && cfg.ExtentOpNs == 0 {
		def := DefaultConfig(cfg.FS.Layout)
		cfg.RequestNs = def.RequestNs
		cfg.ExtentOpNs = def.ExtentOpNs
	}
	fs, err := mdfs.New(cfg.FS)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, fs: fs}, nil
}

// FS exposes the backing metadata file system.
func (s *Server) FS() *mdfs.FS { return s.fs }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats { return s.stats }

// ResetStats zeroes the CPU/RPC counters for a new measurement phase.
func (s *Server) ResetStats() { s.stats = Stats{} }

// Root returns the root directory inode.
func (s *Server) Root() inode.Ino { return s.fs.Root() }

// rpc charges the fixed per-request CPU cost, observing it into the RPC
// histogram and recording a named span when telemetry is attached. The
// network round trip that used to be folded in here is now charged by the
// rpc transport, outside the server.
func (s *Server) rpc(name string) {
	s.stats.RPCs++
	s.stats.CPUNs += s.cfg.RequestNs
	cost := s.cfg.RequestNs
	if s.rpcHist != nil {
		s.rpcHist.Observe(cost)
	}
	if s.tracer != nil {
		sp := s.tracer.Start("mds", name, s.traceParent)
		s.tracer.Advance(cost)
		sp.End()
	}
}

// Instrument publishes the server's counters and a per-RPC latency
// histogram into the registry, and recursively instruments the components
// it owns: the metadata store's disk and the write-ahead journal.
func (s *Server) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	s.rpcHist = reg.Histogram("mds_rpc_ns", labels)
	reg.CounterFunc("mds_rpcs", labels, func() int64 { return s.stats.RPCs })
	reg.CounterFunc("mds_extent_ops", labels, func() int64 { return s.stats.ExtentOps })
	reg.CounterFunc("mds_cpu_ns", labels, func() int64 { return s.stats.CPUNs })
	store := s.fs.Store()
	store.Disk().Instrument(reg, labels.With("layer", "disk"))
	store.Journal().Instrument(reg, labels.With("layer", "journal"))
}

// SetTracer attaches (or with nil detaches) the span tracer.
func (s *Server) SetTracer(t *telemetry.Tracer) { s.tracer = t }

// SetTraceParent declares the span under which subsequent RPCs nest; zero
// clears it.
func (s *Server) SetTraceParent(id telemetry.SpanID) { s.traceParent = id }

// extentWork charges the CPU cost of n mapping units.
func (s *Server) extentWork(n int) {
	s.stats.ExtentOps += int64(n)
	s.stats.CPUNs += sim.Ns(n) * s.cfg.ExtentOpNs
}

// Mkdir creates a directory.
func (s *Server) Mkdir(parent inode.Ino, name string) (inode.Ino, error) {
	s.rpc("mkdir")
	return s.fs.Mkdir(parent, name)
}

// Create creates a file.
func (s *Server) Create(parent inode.Ino, name string) (inode.Ino, error) {
	s.rpc("create")
	return s.fs.Create(parent, name)
}

// Lookup resolves a name.
func (s *Server) Lookup(parent inode.Ino, name string) (inode.Ino, error) {
	s.rpc("lookup")
	return s.fs.Lookup(parent, name)
}

// Stat reads an inode.
func (s *Server) Stat(ino inode.Ino) (inode.Inode, error) {
	s.rpc("stat")
	return s.fs.Stat(ino)
}

// StatName resolves and reads an inode — the readdir-stat pair's unit.
func (s *Server) StatName(parent inode.Ino, name string) (inode.Inode, error) {
	s.rpc("stat-name")
	return s.fs.StatName(parent, name)
}

// Utime updates an mtime.
func (s *Server) Utime(ino inode.Ino) error {
	s.rpc("utime")
	return s.fs.Utime(ino)
}

// Unlink removes a file.
func (s *Server) Unlink(parent inode.Ino, name string) error {
	s.rpc("unlink")
	return s.fs.Unlink(parent, name)
}

// Rmdir removes an empty directory.
func (s *Server) Rmdir(parent inode.Ino, name string) error {
	s.rpc("rmdir")
	return s.fs.Rmdir(parent, name)
}

// Rename moves an entry, returning its (possibly new) inode number.
func (s *Server) Rename(srcParent inode.Ino, name string, dstParent inode.Ino, newName string) (inode.Ino, error) {
	s.rpc("rename")
	return s.fs.Rename(srcParent, name, dstParent, newName)
}

// Readdir lists a directory.
func (s *Server) Readdir(parent inode.Ino) ([]string, error) {
	s.rpc("readdir")
	return s.fs.Readdir(parent)
}

// ReaddirPlus is the aggregated readdir+stat: "a readdirplus extension is
// proposed and supported by most parallel file systems to fetch the entire
// directory, including inode contents, in a single MDS request".
func (s *Server) ReaddirPlus(parent inode.Ino) ([]inode.Inode, error) {
	s.rpc("readdirplus")
	recs, err := s.fs.ReaddirPlus(parent)
	if err != nil {
		return nil, err
	}
	s.extentWork(len(recs))
	return recs, nil
}

// OpenGetLayout is the aggregated open+getlayout: the client acquires the
// file layout in the same request that opens the file, as pNFS block mode
// and Lustre do.
func (s *Server) OpenGetLayout(parent inode.Ino, name string) (inode.Ino, []extent.Extent, error) {
	s.rpc("open-getlayout")
	ino, err := s.fs.Lookup(parent, name)
	if err != nil {
		return 0, nil, err
	}
	exts, err := s.fs.GetLayout(ino)
	if err != nil {
		return 0, nil, err
	}
	s.extentWork(len(exts))
	return ino, exts, nil
}

// SetLayout records a file's data placement as reported by the IO servers,
// charging the mapping-maintenance CPU.
func (s *Server) SetLayout(ino inode.Ino, exts []extent.Extent) error {
	s.rpc("setlayout")
	s.extentWork(len(exts))
	return s.fs.SetLayout(ino, exts)
}

// NoteExtentChurn charges mapping-maintenance CPU for extents manipulated
// during writes (merging, indexing) without an explicit SetLayout RPC.
func (s *Server) NoteExtentChurn(n int) {
	if s.tracer != nil && n > 0 {
		sp := s.tracer.Start("mds", "extent-churn", s.traceParent)
		s.tracer.Advance(sim.Ns(n) * s.cfg.ExtentOpNs)
		sp.AnnotateInt("units", int64(n))
		sp.End()
	}
	s.extentWork(n)
}

// CPUUtilization returns the CPU model's utilization over an elapsed
// simulated duration.
func (s *Server) CPUUtilization(elapsed sim.Ns) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(s.stats.CPUNs) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// Sync flushes the metadata file system.
func (s *Server) Sync() error { return s.fs.Sync() }

// PlaceReplicas runs the spread policy over the client's capacity/load
// observations and records the resulting per-component replica sets in
// the layout table. The mapping work scales with the entries placed, like
// every other layout operation.
func (s *Server) PlaceReplicas(ino inode.Ino, comps, rf int, in []replica.PlaceInput) ([][]int, error) {
	s.rpc("place-replicas")
	sets, err := replica.Spread(rf, comps, in)
	if err != nil {
		return nil, err
	}
	s.extentWork(comps * rf)
	if s.replicaSets == nil {
		s.replicaSets = make(map[inode.Ino][][]int)
	}
	s.replicaSets[ino] = sets
	return sets, nil
}

// GetReplicaLayout returns a file's recorded replica sets.
func (s *Server) GetReplicaLayout(ino inode.Ino) ([][]int, error) {
	s.rpc("get-replica-layout")
	sets, ok := s.replicaSets[ino]
	if !ok {
		return nil, fmt.Errorf("mds: inode %d has no replica layout", uint64(ino))
	}
	var n int
	for _, set := range sets {
		n += len(set)
	}
	s.extentWork(n)
	return sets, nil
}

// SetReplicaLayout replaces one component's replica set — the commit a
// completed re-replication publishes.
func (s *Server) SetReplicaLayout(ino inode.Ino, comp int, replicas []int) error {
	s.rpc("set-replica-layout")
	sets, ok := s.replicaSets[ino]
	if !ok || comp < 0 || comp >= len(sets) {
		return fmt.Errorf("mds: inode %d has no replica component %d", uint64(ino), comp)
	}
	s.extentWork(len(replicas))
	sets[comp] = append([]int(nil), replicas...)
	return nil
}
