package mds

import (
	"fmt"
	"testing"

	"redbud/internal/extent"
	"redbud/internal/mdfs"
	"redbud/internal/sim"
)

func newServer(t *testing.T, layout mdfs.Layout) *Server {
	t.Helper()
	cfg := DefaultConfig(layout)
	cfg.FS.Blocks = 1 << 17
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNamespaceOpsAndCounters(t *testing.T) {
	s := newServer(t, mdfs.LayoutEmbedded)
	d, err := s.Mkdir(s.Root(), "dir")
	if err != nil {
		t.Fatal(err)
	}
	ino, err := s.Create(d, "f")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.Lookup(d, "f"); err != nil || got != ino {
		t.Fatalf("Lookup = (%v,%v)", got, err)
	}
	if _, err := s.StatName(d, "f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Utime(ino); err != nil {
		t.Fatal(err)
	}
	if err := s.Unlink(d, "f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Rmdir(s.Root(), "dir"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.RPCs != 7 {
		t.Fatalf("RPCs = %d, want 7", st.RPCs)
	}
	if st.CPUNs == 0 {
		t.Fatal("RPCs should accumulate CPU time")
	}
}

func TestOpenGetLayoutAggregation(t *testing.T) {
	s := newServer(t, mdfs.LayoutEmbedded)
	ino, err := s.Create(s.Root(), "data")
	if err != nil {
		t.Fatal(err)
	}
	exts := []extent.Extent{
		{Logical: 0, Physical: 100, Count: 8},
		{Logical: 8, Physical: 300, Count: 8},
	}
	if err := s.SetLayout(ino, exts); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().RPCs
	got, layout, err := s.OpenGetLayout(s.Root(), "data")
	if err != nil {
		t.Fatal(err)
	}
	if got != ino {
		t.Fatalf("ino = %v, want %v", got, ino)
	}
	if len(layout) != 2 || layout[0] != exts[0] || layout[1] != exts[1] {
		t.Fatalf("layout = %v", layout)
	}
	// The aggregation is a single RPC — that is its point.
	if s.Stats().RPCs != before+1 {
		t.Fatalf("OpenGetLayout should cost one RPC, got %d", s.Stats().RPCs-before)
	}
}

func TestReaddirPlusSingleRPC(t *testing.T) {
	s := newServer(t, mdfs.LayoutEmbedded)
	d, _ := s.Mkdir(s.Root(), "d")
	for i := 0; i < 20; i++ {
		if _, err := s.Create(d, fmt.Sprintf("f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats().RPCs
	recs, err := s.ReaddirPlus(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("records = %d, want 20", len(recs))
	}
	if s.Stats().RPCs != before+1 {
		t.Fatal("readdirplus should be one MDS request")
	}
}

func TestCPUUtilizationModel(t *testing.T) {
	s := newServer(t, mdfs.LayoutNormal)
	ino, _ := s.Create(s.Root(), "f")
	var exts []extent.Extent
	for i := 0; i < 50; i++ {
		exts = append(exts, extent.Extent{Logical: int64(i) * 2, Physical: int64(1000 + i*4), Count: 2})
	}
	if err := s.SetLayout(ino, exts); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ExtentOps < 50 {
		t.Fatalf("ExtentOps = %d, want >= 50", st.ExtentOps)
	}
	u := s.CPUUtilization(10 * sim.Millisecond)
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %g, want (0,1]", u)
	}
	if s.CPUUtilization(0) != 0 {
		t.Fatal("zero elapsed must not divide")
	}
	s.ResetStats()
	if s.Stats().RPCs != 0 {
		t.Fatal("ResetStats should zero counters")
	}
}

func TestRenameThroughServer(t *testing.T) {
	for _, layout := range []mdfs.Layout{mdfs.LayoutNormal, mdfs.LayoutEmbedded} {
		s := newServer(t, layout)
		d1, _ := s.Mkdir(s.Root(), "a")
		d2, _ := s.Mkdir(s.Root(), "b")
		ino, _ := s.Create(d1, "f")
		newIno, err := s.Rename(d1, "f", d2, "g")
		if err != nil {
			t.Fatal(err)
		}
		if layout == mdfs.LayoutNormal && newIno != ino {
			t.Fatal("normal rename must keep the inode number")
		}
		if layout == mdfs.LayoutEmbedded && newIno == ino {
			t.Fatal("embedded rename must change the inode number")
		}
		if _, err := s.Stat(newIno); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMoreExtentsMoreCPU(t *testing.T) {
	// Table I's relation: the more segments the MDS operates on, the
	// more CPU it burns.
	cpu := func(extents int) sim.Ns {
		s := newServer(t, mdfs.LayoutNormal)
		ino, _ := s.Create(s.Root(), "f")
		var exts []extent.Extent
		for i := 0; i < extents; i++ {
			exts = append(exts, extent.Extent{Logical: int64(i) * 2, Physical: int64(1000 + i*4), Count: 2})
		}
		if err := s.SetLayout(ino, exts); err != nil {
			t.Fatal(err)
		}
		return s.Stats().CPUNs
	}
	if cpu(200) <= cpu(10) {
		t.Fatal("more extents should cost more MDS CPU")
	}
}
