package workload

import (
	"fmt"

	"redbud/internal/core"
	"redbud/internal/pfs"
	"redbud/internal/sim"
)

// BTIOConfig parameterizes the NPB BTIO workload: "an MPI program designed
// to solve the 3D compressible Navier-Stokes equations using MPI-IO
// library for its on-disk data access". BT decomposes the cubic grid into
// diagonally assigned cells, so each rank's output is many small,
// non-contiguous chunks interleaved with every other rank's — the
// workload where intra-file fragmentation hurts most.
type BTIOConfig struct {
	// Procs must be a square number (BT requirement).
	Procs int
	// CellBlocks is the size of one cell's slab contribution in blocks.
	CellBlocks int64
	// RequestBlocks is the transfer size: each cell is written as a
	// burst of these small sequential requests (BT's per-cell output is
	// small non-contiguous chunks).
	RequestBlocks int64
	// Timesteps is the number of output dumps.
	Timesteps int
	// Collective aggregates each dump into large contiguous transfers.
	Collective bool
	// CollectiveChunkBlocks is the aggregated transfer size.
	CollectiveChunkBlocks int64
}

// DefaultBTIOConfig returns the Figure 7 BTIO shape at laptop scale:
// 64 ranks (8×8 cell grid), 4 KiB cell chunks, 5 dumps.
func DefaultBTIOConfig(procs int) BTIOConfig {
	return BTIOConfig{
		Procs:                 procs,
		CellBlocks:            16, // 64 KiB cells
		RequestBlocks:         2,  // 8 KiB chunks
		Timesteps:             5,
		CollectiveChunkBlocks: 2048,
	}
}

// isqrt returns the integer square root when n is a perfect square.
func isqrt(n int) (int, bool) {
	for i := 1; i*i <= n; i++ {
		if i*i == n {
			return i, true
		}
	}
	return 0, false
}

// RunBTIO executes BTIO against a fresh mount of cfg.
func RunBTIO(fsCfg pfs.Config, cfg BTIOConfig) (MacroResult, error) {
	fs, err := pfs.New(fsCfg)
	if err != nil {
		return MacroResult{}, err
	}
	sq, ok := isqrt(cfg.Procs)
	if !ok || cfg.Procs <= 0 {
		return MacroResult{}, fmt.Errorf("workload: BTIO needs a square process count, got %d", cfg.Procs)
	}
	if cfg.CellBlocks <= 0 || cfg.Timesteps <= 0 {
		return MacroResult{}, fmt.Errorf("workload: bad BTIO config %+v", cfg)
	}
	// BT's diagonal cell decomposition: the grid of sq×sq cells per
	// slab; rank p owns cell (row, (row+p) mod sq) in each cell-row.
	// In file order (slab-major, then cell index), consecutive cells
	// belong to different ranks — the interleaving that matters.
	slabBlocks := int64(cfg.Procs) * cfg.CellBlocks
	dumpBlocks := slabBlocks * int64(sq) // sq slabs per dump
	fileBlocks := dumpBlocks * int64(cfg.Timesteps)
	f, err := fs.Create(fs.Root(), "btio.nc", fileBlocks)
	if err != nil {
		return MacroResult{}, err
	}

	dump := func(ts int, op func(core.StreamID, int64, int64) error) error {
		base := int64(ts) * dumpBlocks
		if cfg.Collective {
			chunk := cfg.CollectiveChunkBlocks
			if chunk <= 0 {
				chunk = 2048
			}
			// Contiguous file domains per aggregator, as in ROMIO.
			aggregators := cfg.Procs / 4
			if aggregators < 1 {
				aggregators = 1
			}
			domain := (dumpBlocks + int64(aggregators) - 1) / int64(aggregators)
			for blk := int64(0); blk < dumpBlocks; blk += chunk {
				n := chunk
				if blk+n > dumpBlocks {
					n = dumpBlocks - blk
				}
				agg := core.StreamID{Client: uint32(blk / domain), PID: 0}
				if err := op(agg, base+blk, n); err != nil {
					return err
				}
			}
			return nil
		}
		// Non-collective: within slab s, rank p owns cell
		// (p + s) mod procs — BT's diagonal shift — so each rank's
		// contributions to consecutive slabs land at rotating file
		// offsets, and within a slab consecutive cells belong to
		// different ranks. Requests arrive round-robin by rank.
		req := cfg.RequestBlocks
		if req <= 0 || req > cfg.CellBlocks {
			req = cfg.CellBlocks
		}
		reqsPerCell := (cfg.CellBlocks + req - 1) / req
		perRank := int64(sq) * reqsPerCell
		rng := sim.NewRand(uint64(ts)*104729 + uint64(cfg.Procs))
		return jitteredArrival(rng, cfg.Procs,
			func(int) int64 { return perRank },
			func(p int, idx int64) error {
				slab := int(idx / reqsPerCell)
				off := (idx % reqsPerCell) * req
				n := req
				if off+n > cfg.CellBlocks {
					n = cfg.CellBlocks - off
				}
				cell := (p + slab) % cfg.Procs
				blk := base + int64(slab)*slabBlocks + int64(cell)*cfg.CellBlocks + off
				stream := core.StreamID{Client: uint32(p / 4), PID: uint32(p % 4)}
				return op(stream, blk, n)
			})
	}

	write := func(s core.StreamID, blk, n int64) error { return f.Write(s, blk, n) }
	for ts := 0; ts < cfg.Timesteps; ts++ {
		if err := dump(ts, write); err != nil {
			return MacroResult{}, err
		}
	}
	fs.Flush()
	writeElapsed := fs.DataBusyMax()
	extents, err := fs.TotalExtents(f)
	if err != nil {
		return MacroResult{}, err
	}

	// Verification read of the whole solution file: each rank reads a
	// contiguous share sequentially, ranks skewed as on a real cluster.
	fs.ResetDataStats()
	share := fileBlocks / int64(cfg.Procs)
	const readReq = 16
	readsPerRank := (share + readReq - 1) / readReq
	rng := sim.NewRand(uint64(cfg.Procs) * 15485863)
	err = jitteredArrival(rng, cfg.Procs,
		func(int) int64 { return readsPerRank },
		func(p int, idx int64) error {
			off := idx * readReq
			n := int64(readReq)
			if off+n > share {
				n = share - off
			}
			return f.Read(int64(p)*share+off, n)
		})
	if err != nil {
		return MacroResult{}, err
	}
	fs.Flush()
	readElapsed := fs.DataBusyMax()
	stats := fs.DataStats()
	if err := f.Close(); err != nil {
		return MacroResult{}, err
	}

	blockBytes := fsCfg.OST.Disk.BlockSize
	bytes := fileBlocks * blockBytes
	return MacroResult{
		Config:       fsCfg.Name,
		App:          "BTIO",
		Collective:   cfg.Collective,
		WriteMBps:    sim.MBps(bytes, writeElapsed),
		ReadMBps:     sim.MBps(bytes, readElapsed),
		Throughput:   sim.MBps(2*bytes, writeElapsed+readElapsed),
		Extents:      extents,
		MDSCPU:       fs.MDS().CPUUtilization(writeElapsed+readElapsed) * 100,
		Positionings: stats.Positionings,
	}, nil
}
