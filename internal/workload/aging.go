package workload

import (
	"fmt"

	"redbud/internal/extent"
	"redbud/internal/inode"
	"redbud/internal/mdfs"
	"redbud/internal/mds"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// AgingConfig parameterizes the Figure 9 experiment: "to achieve aging,
// our program created and deleted a large number of files. After reaching
// the desired file system utilization for the first time, our program
// executed a number of metadata access with the same distribution."
type AgingConfig struct {
	// TargetUtilization is the device fill fraction to churn to.
	TargetUtilization float64
	// Layout and Htree select the system under test.
	Layout mdfs.Layout
	Htree  bool
	// ChurnDirs is the number of directories the churn spreads over.
	ChurnDirs int
	// MeasureFiles is the number of creations/deletions measured after
	// aging.
	MeasureFiles int
	// Seed drives the churn.
	Seed uint64
	// Metrics, when set, receives the MDS server's telemetry (labeled by
	// workload and config); Trace, when set, records the server's spans
	// and advances the trace clock by the simulated work.
	Metrics *telemetry.Registry
	Trace   *telemetry.Tracer
}

// DefaultAgingConfig returns the Figure 9 shape.
func DefaultAgingConfig(layout mdfs.Layout, target float64) AgingConfig {
	return AgingConfig{
		TargetUtilization: target,
		Layout:            layout,
		ChurnDirs:         8,
		MeasureFiles:      1000,
		Seed:              7,
	}
}

// AgingResult reports one aging run.
type AgingResult struct {
	Config       string
	Utilization  float64
	CreatePerSec float64
	DeletePerSec float64
	// CreateRequests/DeleteRequests count block-layer requests during
	// the measured phases.
	CreateRequests int64
	DeleteRequests int64
	// CreatePositionings/DeletePositionings count full head repositions.
	CreatePositionings int64
	DeletePositionings int64
}

// agingFSConfig builds a small MDS device so churn reaches high
// utilization quickly.
func agingFSConfig(cfg AgingConfig) mds.Config {
	mcfg := mds.DefaultConfig(cfg.Layout)
	mcfg.FS.Blocks = 1 << 15 // 128 MiB device
	mcfg.FS.JournalBlocks = 512
	mcfg.FS.GroupBlocks = 8192
	mcfg.FS.InodesPerGroup = 8192
	mcfg.FS.CacheBlocks = 1024
	mcfg.FS.SyncWrites = true
	mcfg.FS.Htree = cfg.Htree
	return mcfg
}

// RunAging churns the file system to the target utilization, then measures
// creation and deletion throughput.
func RunAging(cfg AgingConfig) (AgingResult, error) {
	if cfg.TargetUtilization < 0 || cfg.TargetUtilization >= 0.95 {
		return AgingResult{}, fmt.Errorf("workload: bad target utilization %g", cfg.TargetUtilization)
	}
	srv, err := mds.New(agingFSConfig(cfg))
	if err != nil {
		return AgingResult{}, err
	}
	if cfg.Metrics != nil {
		name := metaratesName(MetaratesConfig{Layout: cfg.Layout, Htree: cfg.Htree})
		labels := telemetry.Labels{"workload": "aging", "config": name,
			"util": fmt.Sprintf("%.2f", cfg.TargetUtilization)}
		srv.Instrument(cfg.Metrics, labels.With("layer", "mds"))
	}
	if cfg.Trace != nil {
		srv.SetTracer(cfg.Trace)
	}
	fs := srv.FS()
	rng := sim.NewRand(cfg.Seed)

	dirs := make([]inode.Ino, cfg.ChurnDirs)
	for i := range dirs {
		d, err := srv.Mkdir(srv.Root(), fmt.Sprintf("churn%d", i))
		if err != nil {
			return AgingResult{}, err
		}
		dirs[i] = d
	}

	// Churn: create files carrying fragmented layout mappings (forcing
	// spill-block allocations) and delete a random half, until the
	// device reaches the target utilization.
	type liveFile struct {
		dir  int
		name string
	}
	var live []liveFile
	seq := 0
	dirNames := make([]string, cfg.ChurnDirs)
	for i := range dirNames {
		dirNames[i] = fmt.Sprintf("churn%d", i)
	}
	for fs.Utilization() < cfg.TargetUtilization {
		// Churn leans toward creation so utilization converges; the
		// deletions and directory retirements leave the holes.
		switch {
		case len(live) > 0 && rng.Intn(100) < 38:
			i := rng.Intn(len(live))
			f := live[i]
			if err := srv.Unlink(dirs[f.dir], f.name); err != nil {
				return AgingResult{}, err
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		case seq > 0 && seq%8000 == 0:
			// Retire one churn directory entirely and recreate it:
			// its freed content runs become mid-sized holes.
			di := rng.Intn(cfg.ChurnDirs)
			kept := live[:0]
			for _, f := range live {
				if f.dir != di {
					kept = append(kept, f)
					continue
				}
				if err := srv.Unlink(dirs[di], f.name); err != nil {
					return AgingResult{}, err
				}
			}
			live = kept
			if err := srv.Rmdir(srv.Root(), dirNames[di]); err != nil {
				return AgingResult{}, err
			}
			dirNames[di] = fmt.Sprintf("churn%d.%d", di, seq)
			d, err := srv.Mkdir(srv.Root(), dirNames[di])
			if err != nil {
				return AgingResult{}, err
			}
			dirs[di] = d
		}
		d := rng.Intn(cfg.ChurnDirs)
		name := fmt.Sprintf("c%07d", seq)
		seq++
		ino, err := srv.Create(dirs[d], name)
		if err != nil {
			return AgingResult{}, err
		}
		// A fragmented mapping large enough to occupy both spill
		// blocks, so churn moves real space.
		exts := make([]extent.Extent, 140+rng.Intn(110))
		for j := range exts {
			exts[j] = extent.Extent{Logical: int64(j) * 4, Physical: int64(seq*512 + j*8), Count: 2}
		}
		if err := srv.SetLayout(ino, exts); err != nil {
			return AgingResult{}, err
		}
		live = append(live, liveFile{dir: d, name: name})
		if seq > 1<<20 {
			return AgingResult{}, fmt.Errorf("workload: churn did not converge to %g (at %g)",
				cfg.TargetUtilization, fs.Utilization())
		}
	}
	if err := fs.Sync(); err != nil {
		return AgingResult{}, err
	}
	fs.Store().DropCaches()

	// Measurement: create MeasureFiles fresh files (same mapping
	// distribution), then delete them.
	mdir, err := srv.Mkdir(srv.Root(), "measure")
	if err != nil {
		return AgingResult{}, err
	}
	before := fs.Store().Disk().Stats()
	for i := 0; i < cfg.MeasureFiles; i++ {
		if _, err := srv.Create(mdir, fmt.Sprintf("m%05d", i)); err != nil {
			return AgingResult{}, err
		}
	}
	if err := fs.Sync(); err != nil {
		return AgingResult{}, err
	}
	createDelta := fs.Store().Disk().Stats().Sub(before)
	createNs := createDelta.BusyNs

	before = fs.Store().Disk().Stats()
	for i := 0; i < cfg.MeasureFiles; i++ {
		if err := srv.Unlink(mdir, fmt.Sprintf("m%05d", i)); err != nil {
			return AgingResult{}, err
		}
	}
	if err := fs.Sync(); err != nil {
		return AgingResult{}, err
	}
	deleteDelta := fs.Store().Disk().Stats().Sub(before)
	deleteNs := deleteDelta.BusyNs

	res := AgingResult{
		Config:             metaratesName(MetaratesConfig{Layout: cfg.Layout, Htree: cfg.Htree}),
		Utilization:        fs.Utilization(),
		CreateRequests:     createDelta.Requests,
		DeleteRequests:     deleteDelta.Requests,
		CreatePositionings: createDelta.Positionings,
		DeletePositionings: deleteDelta.Positionings,
	}
	if createNs > 0 {
		res.CreatePerSec = float64(cfg.MeasureFiles) / sim.Seconds(createNs)
	}
	if deleteNs > 0 {
		res.DeletePerSec = float64(cfg.MeasureFiles) / sim.Seconds(deleteNs)
	}
	return res, nil
}
