package workload

import (
	"fmt"

	"redbud/internal/core"
	"redbud/internal/pfs"
	"redbud/internal/sim"
)

// IORConfig parameterizes the IOR2 macro-benchmark in shared mode:
// "basically it writes a large amount of data to one file and then reads
// them back to verify the correctness of the data; each of the m MPI
// processes is responsible to read or write 1/m of a file".
type IORConfig struct {
	// Procs is the MPI process count (16 nodes × 4 cores in the paper).
	Procs int
	// BlocksPerProc is each rank's share of the shared file in blocks.
	BlocksPerProc int64
	// RequestBlocks is the transfer size in blocks (the paper notes
	// 32K–64K request sizes; 32 KiB = 8 blocks).
	RequestBlocks int64
	// Collective aggregates each round's requests into large contiguous
	// transfers, the MPI-IO two-phase collective buffering whose
	// "size of collective-I/O requests is around 40MB".
	Collective bool
	// CollectiveChunkBlocks is the aggregated transfer size.
	CollectiveChunkBlocks int64
	// Interference adds a concurrently appended side file (a log or a
	// second job's output). Without reservation nothing stops its
	// blocks from landing inside the shared file's tail region — the
	// inter-file fragmentation that separates the Vanilla and
	// Reservation rows of Table I ("since no other inode is allowed to
	// allocate blocks in the reservation range, it mitigates the
	// inter-file fragmentation").
	Interference bool
}

// DefaultIORConfig returns the Figure 7 IOR shape at laptop scale.
func DefaultIORConfig(procs int) IORConfig {
	return IORConfig{
		Procs:                 procs,
		BlocksPerProc:         2048, // 8 MiB per rank
		RequestBlocks:         8,    // 32 KiB transfers
		CollectiveChunkBlocks: 2048,
	}
}

// MacroResult reports one macro-benchmark run (IOR or BTIO).
type MacroResult struct {
	Config       string
	App          string
	Collective   bool
	WriteMBps    float64
	ReadMBps     float64
	Throughput   float64 // combined write+read MB/s
	Extents      int     // Table I "Seg Counts"
	MDSCPU       float64 // Table I CPU utilization, percent
	Positionings int64
}

// RunIOR executes IOR against a fresh mount of cfg.
func RunIOR(fsCfg pfs.Config, cfg IORConfig) (MacroResult, error) {
	fs, err := pfs.New(fsCfg)
	if err != nil {
		return MacroResult{}, err
	}
	if cfg.Procs <= 0 || cfg.BlocksPerProc <= 0 || cfg.RequestBlocks <= 0 {
		return MacroResult{}, fmt.Errorf("workload: bad IOR config %+v", cfg)
	}
	fileBlocks := int64(cfg.Procs) * cfg.BlocksPerProc
	f, err := fs.Create(fs.Root(), "ior.dat", fileBlocks)
	if err != nil {
		return MacroResult{}, err
	}

	var side *pfs.File
	var sideBlk int64
	if cfg.Interference {
		side, err = fs.Create(fs.Root(), "job.log", 0)
		if err != nil {
			return MacroResult{}, err
		}
	}
	var writes int64
	write := func(stream core.StreamID, blk, count int64) error {
		if err := f.Write(stream, blk, count); err != nil {
			return err
		}
		writes++
		if side != nil && writes%8 == 0 {
			logStream := core.StreamID{Client: 999, PID: 999}
			if err := side.Write(logStream, sideBlk, 1); err != nil {
				return err
			}
			sideBlk++
		}
		return nil
	}
	if err := iorPhase(cfg, fileBlocks, 1, write); err != nil {
		return MacroResult{}, err
	}
	if side != nil {
		if err := side.Close(); err != nil {
			return MacroResult{}, err
		}
	}
	fs.Flush()
	writeElapsed := fs.DataBusyMax()
	extents, err := fs.TotalExtents(f)
	if err != nil {
		return MacroResult{}, err
	}

	// Read-back/verify phase with the same decomposition. The OST layer
	// verifies every block's content end to end.
	fs.ResetDataStats()
	read := func(_ core.StreamID, blk, count int64) error {
		return f.Read(blk, count)
	}
	if err := iorPhase(cfg, fileBlocks, 2, read); err != nil {
		return MacroResult{}, err
	}
	fs.Flush()
	readElapsed := fs.DataBusyMax()
	stats := fs.DataStats()
	if err := f.Close(); err != nil {
		return MacroResult{}, err
	}

	blockBytes := fsCfg.OST.Disk.BlockSize
	bytes := fileBlocks * blockBytes
	return MacroResult{
		Config:       fsCfg.Name,
		App:          "IOR",
		Collective:   cfg.Collective,
		WriteMBps:    sim.MBps(bytes, writeElapsed),
		ReadMBps:     sim.MBps(bytes, readElapsed),
		Throughput:   sim.MBps(2*bytes, writeElapsed+readElapsed),
		Extents:      extents,
		MDSCPU:       fs.MDS().CPUUtilization(writeElapsed+readElapsed) * 100,
		Positionings: stats.Positionings,
	}, nil
}

// iorPhase drives one IOR phase (write or read) with rank-skewed arrival
// order, optionally with collective aggregation. phase seeds the skew so
// the read phase never replays the write phase's global ordering.
func iorPhase(cfg IORConfig, fileBlocks int64, phase uint64, op func(core.StreamID, int64, int64) error) error {
	if cfg.Collective {
		chunk := cfg.CollectiveChunkBlocks
		if chunk <= 0 {
			chunk = 2048
		}
		// Two-phase collective I/O: the file is partitioned into
		// contiguous domains, one per aggregator (one aggregator per
		// node), and each aggregator transfers its domain in large
		// chunks — the ROMIO file-domain assignment.
		aggregators := cfg.Procs / 4
		if aggregators < 1 {
			aggregators = 1
		}
		domain := (fileBlocks + int64(aggregators) - 1) / int64(aggregators)
		for blk := int64(0); blk < fileBlocks; blk += chunk {
			n := chunk
			if blk+n > fileBlocks {
				n = fileBlocks - blk
			}
			agg := core.StreamID{Client: uint32(blk / domain), PID: 0}
			if err := op(agg, blk, n); err != nil {
				return err
			}
		}
		return nil
	}
	// Non-collective: each rank transfers its 1/m share with
	// RequestBlocks transfers; the global arrival order carries the
	// rank skew of a real cluster.
	perRank := (cfg.BlocksPerProc + cfg.RequestBlocks - 1) / cfg.RequestBlocks
	rng := sim.NewRand(uint64(cfg.Procs)*7919 + uint64(fileBlocks) + phase*2654435761)
	return jitteredArrival(rng, cfg.Procs,
		func(int) int64 { return perRank },
		func(p int, idx int64) error {
			off := idx * cfg.RequestBlocks
			n := cfg.RequestBlocks
			if off+n > cfg.BlocksPerProc {
				n = cfg.BlocksPerProc - off
			}
			stream := core.StreamID{Client: uint32(p / 4), PID: uint32(p % 4)}
			return op(stream, int64(p)*cfg.BlocksPerProc+off, n)
		})
}
