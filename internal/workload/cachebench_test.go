package workload

import (
	"testing"

	"redbud/internal/pfs"
)

// TestCacheBenchAggregationWins pins the experiment's headline claims on a
// reduced working set: for both the vanilla and the MiF profile, the
// cached arm of the small-sequential-write workload must issue at least 2x
// fewer OST data-write RPCs and strictly fewer disk positionings than the
// write-through arm, and the second re-read pass must be served entirely
// from client memory.
func TestCacheBenchAggregationWins(t *testing.T) {
	cfg := DefaultCacheBenchConfig()
	cfg.FileBlocks = 256 // keep the test fast; the shape is what matters
	for _, fsCfg := range []pfs.Config{
		pfs.MiF(5).WithPolicy(pfs.PolicyVanilla),
		pfs.MiF(5),
	} {
		res, err := RunCacheBench(fsCfg, cfg)
		if err != nil {
			t.Fatalf("%s: %v", fsCfg.Name, err)
		}
		if res.On.WriteRPCs*2 > res.Off.WriteRPCs {
			t.Errorf("%s: write RPCs %d cached vs %d uncached, want at least 2x fewer",
				res.Config, res.On.WriteRPCs, res.Off.WriteRPCs)
		}
		if res.On.TotalPositionings() >= res.Off.TotalPositionings() {
			t.Errorf("%s: positionings %d cached vs %d uncached, want strictly fewer",
				res.Config, res.On.TotalPositionings(), res.Off.TotalPositionings())
		}
		if res.On.Pass2ReadRPCs != 0 {
			t.Errorf("%s: second re-read pass issued %d RPCs, want 0 (served from memory)",
				res.Config, res.On.Pass2ReadRPCs)
		}
		if res.On.Extents > res.Off.Extents {
			t.Errorf("%s: cached layout has %d extents vs %d uncached — aggregation must not fragment harder",
				res.Config, res.On.Extents, res.Off.Extents)
		}
		// The off arm is plain write-through: no cache counters may move.
		if z := res.Off.Cache; z.Writebacks != 0 || z.HitBlocks != 0 || z.MissBlocks != 0 {
			t.Errorf("%s: uncached arm has cache stats %+v, want zeros", res.Config, z)
		}
	}
}

// TestCacheBenchRejectsBadConfig covers the config validation.
func TestCacheBenchRejectsBadConfig(t *testing.T) {
	if _, err := RunCacheBench(pfs.MiF(3), CacheBenchConfig{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
}
