package workload

import (
	"testing"

	"redbud/internal/pfs"
)

// fig6Config builds the 5-disk stripe of the micro-benchmark experiments.
func fig6Config(policy pfs.PolicyKind) pfs.Config {
	cfg := pfs.MiF(5).WithPolicy(policy)
	cfg.ReservationWindow = 2048
	return cfg
}

func TestMicroOnDemandBeatsReservation(t *testing.T) {
	mc := DefaultMicroConfig(8) // 32 streams
	res, err := RunMicro(fig6Config(pfs.PolicyReservation), mc)
	if err != nil {
		t.Fatal(err)
	}
	od, err := RunMicro(fig6Config(pfs.PolicyOnDemand), mc)
	if err != nil {
		t.Fatal(err)
	}
	if od.ReadMBps <= res.ReadMBps {
		t.Fatalf("on-demand read %.1f MB/s should beat reservation %.1f MB/s", od.ReadMBps, res.ReadMBps)
	}
	if od.Extents >= res.Extents {
		t.Fatalf("on-demand extents %d should be below reservation %d", od.Extents, res.Extents)
	}
	t.Logf("reservation: %.1f MB/s read, %d extents; on-demand: %.1f MB/s read, %d extents",
		res.ReadMBps, res.Extents, od.ReadMBps, od.Extents)
}

func TestMicroStaticIsUpperBound(t *testing.T) {
	mc := DefaultMicroConfig(8)
	st, err := RunMicro(fig6Config(pfs.PolicyStatic), mc)
	if err != nil {
		t.Fatal(err)
	}
	od, err := RunMicro(fig6Config(pfs.PolicyOnDemand), mc)
	if err != nil {
		t.Fatal(err)
	}
	if od.ReadMBps > st.ReadMBps*101/100 {
		t.Fatalf("on-demand read %.1f MB/s should not beat static %.1f MB/s", od.ReadMBps, st.ReadMBps)
	}
	if st.Extents > 8 {
		t.Fatalf("static layout should be nearly contiguous, got %d extents", st.Extents)
	}
}

func TestMicroGapAcrossStreamCounts(t *testing.T) {
	// Figure 6(a): the on-demand advantage holds at every stream count
	// (17%/27%/48% at 32/48/64 procs in the paper). The exact monotone
	// growth with stream count is a second-order property our
	// concurrency model reproduces only partially, so the assertion is
	// a substantial, non-collapsing gain at each point.
	gain := func(clients int) float64 {
		mc := DefaultMicroConfig(clients)
		res, err := RunMicro(fig6Config(pfs.PolicyReservation), mc)
		if err != nil {
			t.Fatal(err)
		}
		od, err := RunMicro(fig6Config(pfs.PolicyOnDemand), mc)
		if err != nil {
			t.Fatal(err)
		}
		return od.ReadMBps / res.ReadMBps
	}
	g8 := gain(8)   // 32 streams
	g12 := gain(12) // 48 streams
	g16 := gain(16) // 64 streams
	for _, g := range []float64{g8, g12, g16} {
		if g < 1.15 {
			t.Fatalf("gains %.2f/%.2f/%.2f: every point should exceed 1.15", g8, g12, g16)
		}
	}
	if g16 < g8*0.7 {
		t.Fatalf("gain collapsed with streams: 32->%.2f, 64->%.2f", g8, g16)
	}
	t.Logf("gain at 32/48/64 streams: %.2fx / %.2fx / %.2fx", g8, g12, g16)
}

func TestIORShapes(t *testing.T) {
	ic := DefaultIORConfig(32)
	ic.Interference = true // Table I environment: a concurrent side file
	res, err := RunIOR(fig7Config(pfs.PolicyReservation), ic)
	if err != nil {
		t.Fatal(err)
	}
	od, err := RunIOR(fig7Config(pfs.PolicyOnDemand), ic)
	if err != nil {
		t.Fatal(err)
	}
	van, err := RunIOR(fig7Config(pfs.PolicyVanilla), ic)
	if err != nil {
		t.Fatal(err)
	}
	if od.Throughput <= res.Throughput {
		t.Fatalf("on-demand %.1f MB/s should beat reservation %.1f MB/s", od.Throughput, res.Throughput)
	}
	// Table I ordering: vanilla >= reservation >> on-demand extents.
	if van.Extents < res.Extents {
		t.Fatalf("vanilla extents %d should be >= reservation %d", van.Extents, res.Extents)
	}
	if od.Extents*4 > res.Extents {
		t.Fatalf("on-demand extents %d vs reservation %d: want >= 4x reduction", od.Extents, res.Extents)
	}
	if od.MDSCPU >= res.MDSCPU {
		t.Fatalf("on-demand MDS CPU %.2f%% should be below reservation %.2f%%", od.MDSCPU, res.MDSCPU)
	}
	t.Logf("IOR: vanilla %d ext, reservation %d ext (%.1f MB/s), on-demand %d ext (%.1f MB/s)",
		van.Extents, res.Extents, res.Throughput, od.Extents, od.Throughput)
}

func TestBTIOShapes(t *testing.T) {
	bc := DefaultBTIOConfig(64)
	res, err := RunBTIO(fig7Config(pfs.PolicyReservation), bc)
	if err != nil {
		t.Fatal(err)
	}
	od, err := RunBTIO(fig7Config(pfs.PolicyOnDemand), bc)
	if err != nil {
		t.Fatal(err)
	}
	if od.Throughput <= res.Throughput {
		t.Fatalf("on-demand %.1f MB/s should beat reservation %.1f MB/s", od.Throughput, res.Throughput)
	}
	gain := od.Throughput / res.Throughput
	if gain < 1.05 {
		t.Fatalf("BTIO gain %.2f too small", gain)
	}
	t.Logf("BTIO: reservation %.1f MB/s (%d ext), on-demand %.1f MB/s (%d ext), gain %.2fx",
		res.Throughput, res.Extents, od.Throughput, od.Extents, gain)
}

func TestCollectiveIOBeatsNonCollective(t *testing.T) {
	bc := DefaultBTIOConfig(64)
	non, err := RunBTIO(fig7Config(pfs.PolicyReservation), bc)
	if err != nil {
		t.Fatal(err)
	}
	bc.Collective = true
	col, err := RunBTIO(fig7Config(pfs.PolicyReservation), bc)
	if err != nil {
		t.Fatal(err)
	}
	if col.Throughput <= non.Throughput {
		t.Fatalf("collective %.1f MB/s should beat non-collective %.1f MB/s", col.Throughput, non.Throughput)
	}
	// And collective shrinks the policy gap.
	bcOD := bc
	odCol, err := RunBTIO(fig7Config(pfs.PolicyOnDemand), bcOD)
	if err != nil {
		t.Fatal(err)
	}
	gapCollective := odCol.Throughput / col.Throughput
	gapNon := 0.0
	od, err := RunBTIO(fig7Config(pfs.PolicyOnDemand), DefaultBTIOConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	gapNon = od.Throughput / non.Throughput
	if gapCollective > gapNon {
		t.Fatalf("collective I/O should shrink the policy gap: %.2f vs %.2f", gapCollective, gapNon)
	}
}

// fig7Config builds the 8-disk stripe of the macro-benchmark experiments.
func fig7Config(policy pfs.PolicyKind) pfs.Config {
	cfg := pfs.MiF(8).WithPolicy(policy)
	cfg.ReservationWindow = 2048
	return cfg
}
