package workload

import "redbud/internal/sim"

// jitteredArrival drives ranks through their per-rank request sequences in
// a randomized global arrival order: at each step one unfinished rank,
// chosen uniformly, issues its next request.
//
// Lockstep round-robin would be wrong here: it replays the exact global
// ordering of the write phase, which lets the device queue re-merge a
// fragmented layout into sequential sweeps — something a real cluster's
// rank skew never permits. Random arrival models that skew while staying
// deterministic under the seed.
func jitteredArrival(rng *sim.Rand, ranks int, requests func(rank int) int64, issue func(rank int, idx int64) error) error {
	next := make([]int64, ranks)
	var unfinished []int
	for r := 0; r < ranks; r++ {
		if requests(r) > 0 {
			unfinished = append(unfinished, r)
		}
	}
	for len(unfinished) > 0 {
		i := rng.Intn(len(unfinished))
		r := unfinished[i]
		if err := issue(r, next[r]); err != nil {
			return err
		}
		next[r]++
		if next[r] >= requests(r) {
			unfinished[i] = unfinished[len(unfinished)-1]
			unfinished = unfinished[:len(unfinished)-1]
		}
	}
	return nil
}
