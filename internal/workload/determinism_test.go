package workload

import (
	"bytes"
	"strings"
	"testing"

	"redbud/internal/pfs"
	"redbud/internal/rpc"
	"redbud/internal/telemetry"
)

// TestFaultyRunReplaysByteIdentically is the determinism guard: two runs
// of the same experiment, same seed, with the retry/fault transport
// spliced in, must produce byte-identical telemetry. Every source of
// randomness — arrival jitter and fault injection alike — draws from
// seeded sim RNGs, never from global math/rand state.
func TestFaultyRunReplaysByteIdentically(t *testing.T) {
	run := func() ([]byte, int64) {
		reg := telemetry.NewRegistry()
		fsCfg := pfs.MiF(2)
		fault := rpc.UniformFaults(42, 0.02)
		fsCfg.RPC.Fault = &fault
		fsCfg.Metrics = reg
		cfg := DefaultMicroConfig(1)
		cfg.RegionBlocks = 256 // shrink the run; the guard is about replay
		cfg.Segments = 16
		if _, err := RunMicro(fsCfg, cfg); err != nil {
			t.Fatalf("micro run under fault injection: %v", err)
		}
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var retries int64
		for _, s := range reg.Snapshot() {
			if s.Name == "rpc_retries" {
				retries += s.Value
			}
		}
		return buf.Bytes(), retries
	}
	first, retries := run()
	second, _ := run()
	if !bytes.Equal(first, second) {
		t.Fatal("two identical faulty runs produced different telemetry JSON")
	}
	// The guard is vacuous if the injector never fired: prove the run
	// actually lost messages and retried.
	if retries == 0 {
		t.Fatal("fault injector never forced a retry during the guarded run")
	}
	if !strings.Contains(string(first), "rpc_faults") {
		t.Fatal("fault counters missing from telemetry JSON")
	}
}
