package workload

import (
	"fmt"

	"redbud/internal/cache"
	"redbud/internal/core"
	"redbud/internal/crashsim"
	"redbud/internal/mdfs"
	"redbud/internal/pfs"
	"redbud/internal/replica"
	"redbud/internal/rpc"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// CrashSweepConfig parameterizes the crash-point sweep experiment: one
// phased workload that walks every registered crash point (journal commit
// and checkpoint, IO-server write/flush/truncate/migrate, replica repair,
// cache barriers), run once per (point, tear-mode) pair with a power
// failure injected at that point, then recovered and verified.
type CrashSweepConfig struct {
	// Seed derives every run's damage plan. Two sweeps with equal seeds
	// produce byte-identical reports.
	Seed uint64
	// Points restricts the sweep to a subset of the registry (by name);
	// nil sweeps every registered point.
	Points []string
	// Metrics, when set, receives layer=crash telemetry.
	Metrics *telemetry.Registry
	// FsckWorkers is the scan-stage worker-pool width for every metadata
	// fsck the sweep runs (recovery and baseline verification). Zero or
	// one means serial; reports are byte-identical at any width.
	FsckWorkers int
}

// DefaultCrashSweepConfig returns the full-registry sweep shape.
func DefaultCrashSweepConfig() CrashSweepConfig {
	return CrashSweepConfig{Seed: 42}
}

// ackedFile is one append-only file together with the durable prefix the
// workload has been acknowledged for: blocks is advanced only after Fsync
// returns, so everything below it must survive any later crash.
type ackedFile struct {
	name    string
	f       *pfs.File
	written int64 // blocks issued (possibly still volatile)
	blocks  int64 // blocks acknowledged durable by a returned Fsync
}

// crashTarget is one sweep run's system under test: a replicated, cached
// MiF mount with the injector threaded through every write-side hot path.
type crashTarget struct {
	cfg       CrashSweepConfig
	fs        *pfs.FS
	acked     []*ackedFile
	recovered *pfs.RecoveryReport
	// reg, when set (tests), instruments the mount itself — used to prove
	// an attached-but-unarmed injector leaves every simulated metric
	// byte-identical to a vanilla run.
	reg *telemetry.Registry
}

// crashSweepMount builds the run's mount: 3 IO servers, 2-way replication
// (which also forces the serial data path the injector requires), a fault
// transport for the crash/revive control plane, a short retry policy so
// the blackhole phase doesn't dominate, and a client cache so the barrier
// points are live.
func (t *crashTarget) crashSweepMount(in *crashsim.Injector) error {
	rep := replica.DefaultConfig()
	rep.RF = 2
	cacheCfg := cache.DefaultConfig()
	fsCfg := pfs.MiF(3)
	fsCfg.Name = "crashsweep"
	fsCfg.Replication = &rep
	fsCfg.Cache = &cacheCfg
	fsCfg.RPC.Fault = &rpc.FaultConfig{Seed: t.cfg.Seed}
	fsCfg.RPC.Retry = &rpc.RetryPolicy{TimeoutNs: 2 * sim.Millisecond, MaxRetries: 2}
	fsCfg.Crash = in
	fsCfg.Metrics = t.reg
	fsCfg.FsckWorkers = t.cfg.FsckWorkers
	fs, err := pfs.New(fsCfg)
	if err != nil {
		return err
	}
	t.fs = fs
	return nil
}

// appendAcked issues one append burst to an acked file. Durability is not
// claimed until ack() is called after a successful Fsync.
func (t *crashTarget) appendAcked(af *ackedFile, stream core.StreamID, count int64) error {
	if err := af.f.Write(stream, af.written, count); err != nil {
		return fmt.Errorf("append %s: %w", af.name, err)
	}
	af.written += count
	return nil
}

// fsyncAcked forces an acked file and, only once the barrier returns,
// advances the durable prefix to everything issued so far.
func (t *crashTarget) fsyncAcked(af *ackedFile) error {
	if err := af.f.Fsync(); err != nil {
		return fmt.Errorf("fsync %s: %w", af.name, err)
	}
	af.blocks = af.written
	return nil
}

// Run executes the phased workload. Each phase exists to push one family
// of crash points past its registered occurrence; the baseline run proves
// every registered point is actually reached.
func (t *crashTarget) Run(in *crashsim.Injector) error {
	if err := t.crashSweepMount(in); err != nil {
		return err
	}
	fs := t.fs

	// Phase 1 — namespace and durable appends: mkdir/creates feed the
	// journal, appends + fsyncs drive the OST write queue, media flush,
	// fsync barrier, and the cache writeback/barrier points. The first
	// Sync is the first journal commit + checkpoint.
	dir, err := fs.Mkdir(fs.Root(), "sweep")
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		f, err := fs.Create(dir, fmt.Sprintf("acked%02d.dat", i), 0)
		if err != nil {
			return err
		}
		t.acked = append(t.acked, &ackedFile{name: fmt.Sprintf("acked%02d.dat", i), f: f})
	}
	for round := 0; round < 3; round++ {
		for i, af := range t.acked {
			st := core.StreamID{Client: uint32(i), PID: 0}
			if err := t.appendAcked(af, st, 16); err != nil {
				return err
			}
			if err := t.fsyncAcked(af); err != nil {
				return err
			}
		}
	}
	if err := fs.Sync(); err != nil {
		return err
	}

	// Phase 2 — metadata churn and two more Syncs: the journal commit
	// points are registered at occurrence 3, so each Sync must have dirty
	// metadata in front of it.
	for batch := 0; batch < 2; batch++ {
		for j := 0; j < 3; j++ {
			f, err := fs.Create(dir, fmt.Sprintf("meta%d_%d.dat", batch, j), 0)
			if err != nil {
				return err
			}
			st := core.StreamID{Client: 8, PID: uint32(j)}
			if err := f.Write(st, 0, 4); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if err := fs.Sync(); err != nil {
			return err
		}
	}

	// Phase 3 — fragmentation, truncate, defragmentation: round-robin
	// interleaved bursts with per-round fsyncs force interleaved physical
	// allocation (the cache would otherwise coalesce each file into one
	// clean extent), a scratch truncate arms the partial-truncate point,
	// and the defrag drain walks the migrate claim/copy/commit/free chain.
	frag := make([]*pfs.File, 4)
	for i := range frag {
		f, err := fs.Create(dir, fmt.Sprintf("frag%02d.dat", i), 0)
		if err != nil {
			return err
		}
		frag[i] = f
	}
	for off := int64(0); off < 64; off += 8 {
		for i, f := range frag {
			st := core.StreamID{Client: 16 + uint32(i), PID: 0}
			if err := f.Write(st, off, 8); err != nil {
				return err
			}
			if err := f.Fsync(); err != nil {
				return err
			}
		}
	}
	scratch, err := fs.Create(dir, "scratch.dat", 0)
	if err != nil {
		return err
	}
	if err := scratch.Write(core.StreamID{Client: 30, PID: 0}, 0, 48); err != nil {
		return err
	}
	if err := scratch.Fsync(); err != nil {
		return err
	}
	if err := scratch.Truncate(16); err != nil {
		return err
	}
	if _, err := fs.Defrag().Run(); err != nil {
		return err
	}

	// Phase 4 — failover and repair: blackhole one server, append through
	// the outage (fan-out skipping keeps the acked contract on the live
	// copies), revive it, and drain the re-replication engine through the
	// repair crash points.
	if err := fs.CrashOST(1); err != nil {
		return err
	}
	for i, af := range t.acked {
		st := core.StreamID{Client: uint32(i), PID: 0}
		if err := t.appendAcked(af, st, 16); err != nil {
			return err
		}
		if err := t.fsyncAcked(af); err != nil {
			return err
		}
	}
	if err := fs.ReviveOST(1); err != nil {
		return err
	}
	if err := fs.RepairDrain(); err != nil {
		return err
	}

	// Phase 5 — final durable tail: one more acked burst and a closing
	// Sync so the sweep also covers late-life crashes.
	for i, af := range t.acked {
		st := core.StreamID{Client: uint32(i), PID: 0}
		if err := t.appendAcked(af, st, 8); err != nil {
			return err
		}
		if err := t.fsyncAcked(af); err != nil {
			return err
		}
	}
	return fs.Sync()
}

// Recover performs whole-cluster crash recovery. The nil-crash baseline
// completed cleanly, so there is nothing to replay.
func (t *crashTarget) Recover(crash *crashsim.Crash) error {
	if crash == nil {
		return nil
	}
	rep, err := t.fs.CrashRecover()
	t.recovered = rep
	return err
}

// Verify checks every durability invariant after recovery (or after the
// clean baseline): metadata fsck, per-server consistency walk, zero leaks
// once a scrub has run, acknowledged data readable, redundancy restored.
func (t *crashTarget) Verify() []string {
	var v []string
	fs := t.fs
	if fs == nil {
		return []string{"mount was never built"}
	}
	if t.recovered != nil {
		if t.recovered.Mdfs == nil {
			v = append(v, "recovery produced no metadata fsck report")
		} else {
			for _, p := range t.recovered.Mdfs.Problems {
				v = append(v, "mdfs: "+p)
			}
		}
		if !t.recovered.RepairedOK {
			v = append(v, "repair drain did not restore full redundancy")
		}
	} else {
		if rep := fs.MDS().FS().FsckWith(mdfs.FsckOptions{Workers: t.cfg.FsckWorkers}); !rep.Clean() {
			for _, p := range rep.Problems {
				v = append(v, "mdfs: "+p)
			}
		}
		if !fs.Replication().FullyReplicated() {
			v = append(v, "baseline finished under-replicated")
		}
	}
	for i := 0; i < fs.OSTs(); i++ {
		cr := fs.OST(i).CheckConsistency()
		for _, p := range cr.Problems {
			v = append(v, fmt.Sprintf("ost%d: %s", i, p))
		}
		// Leaked blocks are legal on a live volume (clipped preallocation
		// windows); after a power-fail scrub they must all be reclaimed.
		if t.recovered != nil && cr.LeakedBlocks != 0 {
			v = append(v, fmt.Sprintf("ost%d: %d blocks leaked after scrub", i, cr.LeakedBlocks))
		}
	}
	for _, af := range t.acked {
		if af.blocks == 0 {
			continue
		}
		if err := af.f.Read(0, af.blocks); err != nil {
			v = append(v, fmt.Sprintf("acked data lost: %s blocks [0,%d): %v", af.name, af.blocks, err))
		}
	}
	return v
}

// RunCrashSweep executes the systematic crash-point sweep: a no-crash
// baseline that must reach every registered point, then one
// crash/recover/verify run per (point, tear-mode) pair.
func RunCrashSweep(cfg CrashSweepConfig) (*crashsim.Report, error) {
	points := crashsim.Registry()
	if cfg.Points != nil {
		want := make(map[string]bool, len(cfg.Points))
		for _, name := range cfg.Points {
			want[name] = true
		}
		var sel []crashsim.Point
		for _, p := range points {
			if want[p.Name] {
				sel = append(sel, p)
				delete(want, p.Name)
			}
		}
		for _, name := range cfg.Points {
			if want[name] {
				return nil, fmt.Errorf("workload: unknown crash point %q", name)
			}
		}
		points = sel
	}
	return crashsim.Sweep(
		crashsim.SweepConfig{Seed: cfg.Seed, Points: points, Metrics: cfg.Metrics},
		func() (crashsim.Target, error) { return &crashTarget{cfg: cfg}, nil },
	)
}
