// Package workload implements the benchmark drivers of the paper's
// evaluation: the trace-derived shared-file micro-benchmark (Figure 6),
// IOR2 and BTIO (Figure 7, Table I), Metarates (Figure 8), the file-system
// aging harness (Figure 9), and PostMark plus the kernel-tree application
// mix (Figure 10).
//
// Every driver is deterministic given its seed, issues its requests in an
// explicitly interleaved arrival order (arrival order is what the
// allocation policies react to), and reports results in simulated time
// from the device models.
package workload

import (
	"fmt"

	"redbud/internal/core"
	"redbud/internal/pfs"
	"redbud/internal/sim"
)

// MicroConfig parameterizes the two-phase shared-file micro-benchmark,
// "based on the trace analysis of scientific computing environment [16]":
// phase 1 places a shared file on disk with concurrent writers, phase 2
// splits it into segments that are read back sequentially.
type MicroConfig struct {
	// Clients is the number of client nodes; each runs ThreadsPerClient
	// writer threads ("the program started 4 threads on each client").
	Clients          int
	ThreadsPerClient int
	// RegionBlocks is the extent of each stream's private region of the
	// shared file, in blocks.
	RegionBlocks int64
	// RequestBlocks is the write request size in blocks.
	RequestBlocks int64
	// Segments is the number of read segments in phase 2 (1024 in the
	// paper).
	Segments int
	// ReadRequestBlocks is the read request size in blocks.
	ReadRequestBlocks int64
}

// DefaultMicroConfig returns the Figure 6(a) shape at a laptop-scale file
// size. The shared file's total size is fixed; more streams mean finer
// interleaving of the same file, exactly the paper's sweep.
func DefaultMicroConfig(clients int) MicroConfig {
	streams := clients * 4
	const totalBlocks = 65536 // 256 MiB shared file
	region := int64(totalBlocks / streams)
	if region < 1 {
		region = 1
	}
	return MicroConfig{
		Clients:           clients,
		ThreadsPerClient:  4,
		RegionBlocks:      region,
		RequestBlocks:     4, // 16 KiB requests
		Segments:          1024,
		ReadRequestBlocks: 16,
	}
}

// MicroResult reports one micro-benchmark run.
type MicroResult struct {
	Config        string
	Streams       int
	FileBlocks    int64
	WriteMBps     float64
	ReadMBps      float64
	Extents       int
	Positionings  int64
	WriteElapsed  sim.Ns
	ReadElapsed   sim.Ns
	MDSCPUPercent float64
}

// RunMicro executes the micro-benchmark against a fresh mount of cfg.
func RunMicro(fsCfg pfs.Config, cfg MicroConfig) (MicroResult, error) {
	fs, err := pfs.New(fsCfg)
	if err != nil {
		return MicroResult{}, err
	}
	streams := cfg.Clients * cfg.ThreadsPerClient
	if streams == 0 || cfg.RegionBlocks <= 0 || cfg.RequestBlocks <= 0 {
		return MicroResult{}, fmt.Errorf("workload: bad micro config %+v", cfg)
	}
	fileBlocks := int64(streams) * cfg.RegionBlocks
	f, err := fs.Create(fs.Root(), "shared.odb", fileBlocks)
	if err != nil {
		return MicroResult{}, err
	}

	// Phase 1: every stream extends its region; requests from different
	// streams arrive round-robin, the worst-case interleaving the paper's
	// Figure 1(a) illustrates.
	ids := make([]core.StreamID, streams)
	for i := range ids {
		ids[i] = core.StreamID{Client: uint32(i / cfg.ThreadsPerClient), PID: uint32(i % cfg.ThreadsPerClient)}
	}
	for off := int64(0); off < cfg.RegionBlocks; off += cfg.RequestBlocks {
		n := cfg.RequestBlocks
		if off+n > cfg.RegionBlocks {
			n = cfg.RegionBlocks - off
		}
		for s := 0; s < streams; s++ {
			blk := int64(s)*cfg.RegionBlocks + off
			if err := f.Write(ids[s], blk, n); err != nil {
				return MicroResult{}, err
			}
		}
	}
	fs.Flush()
	writeElapsed := fs.DataBusyMax()
	extents, err := fs.TotalExtents(f)
	if err != nil {
		return MicroResult{}, err
	}

	// Phase 2: "the shared file was split into 1024 segments and each
	// one was sequentially read/written by a thread in cluster" — the
	// segment readers run concurrently, so their requests arrive with
	// cluster skew, not in global file order.
	fs.ResetDataStats()
	segBlocks := fileBlocks / int64(cfg.Segments)
	if segBlocks < 1 {
		segBlocks = 1
	}
	reqBlocks := cfg.ReadRequestBlocks
	if reqBlocks < 1 || reqBlocks > segBlocks {
		reqBlocks = segBlocks
	}
	segments := int(fileBlocks / segBlocks)
	reqsPerSeg := (segBlocks + reqBlocks - 1) / reqBlocks
	rng := sim.NewRand(uint64(streams)*31 + uint64(fileBlocks))
	err = jitteredArrival(rng, segments,
		func(int) int64 { return reqsPerSeg },
		func(seg int, idx int64) error {
			base := int64(seg) * segBlocks
			off := idx * reqBlocks
			n := reqBlocks
			if off+n > segBlocks {
				n = segBlocks - off
			}
			return f.Read(base+off, n)
		})
	if err != nil {
		return MicroResult{}, err
	}
	fs.Flush()
	readElapsed := fs.DataBusyMax()
	dataStats := fs.DataStats()
	if err := f.Close(); err != nil {
		return MicroResult{}, err
	}

	blockBytes := fsCfg.OST.Disk.BlockSize
	return MicroResult{
		Config:        fsCfg.Name,
		Streams:       streams,
		FileBlocks:    fileBlocks,
		WriteMBps:     sim.MBps(fileBlocks*blockBytes, writeElapsed),
		ReadMBps:      sim.MBps(fileBlocks*blockBytes, readElapsed),
		Extents:       extents,
		Positionings:  dataStats.Positionings,
		WriteElapsed:  writeElapsed,
		ReadElapsed:   readElapsed,
		MDSCPUPercent: fs.MDS().CPUUtilization(writeElapsed+readElapsed) * 100,
	}, nil
}
