package workload

import (
	"testing"

	"redbud/internal/pfs"
)

// TestFailoverBenchSurvivesCrash is the acceptance scenario at test scale:
// an OST killed mid-write under 3-way replication, zero client errors, the
// failure visible in the replica counters, and redundancy restored on the
// survivors before the run ends (RunFailoverBench errors otherwise).
func TestFailoverBenchSurvivesCrash(t *testing.T) {
	cfg := DefaultFailoverBenchConfig()
	cfg.Files = 2
	cfg.FileBlocks = 256
	res, err := RunFailoverBench(pfs.MiF(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RF != 3 || res.OSTs != 6 {
		t.Fatalf("shape rf=%d osts=%d, want 3/6", res.RF, res.OSTs)
	}
	if res.WriteMBps <= 0 || res.ReadMBps <= 0 {
		t.Fatalf("throughput not measured: write %.1f read %.1f", res.WriteMBps, res.ReadMBps)
	}
	st := res.Stats
	if st.OSTDownEvents == 0 || st.Failovers == 0 {
		t.Fatalf("crash left no trace in the replica counters: %+v", st)
	}
	if st.FanoutWrites == 0 || st.SteeredReads == 0 {
		t.Fatalf("replicated data path inactive: %+v", st)
	}
	if st.RepairsDone == 0 || st.RepairBlocks == 0 {
		t.Fatalf("re-replication never ran: %+v", st)
	}
	if res.UnderReplPeak == 0 {
		t.Fatal("under-replication peak not observed")
	}
	if res.TimeToRedundancyNs <= 0 {
		t.Fatalf("time-to-redundancy = %d ns, want > 0", res.TimeToRedundancyNs)
	}
}

func TestFailoverBenchRejectsBadConfig(t *testing.T) {
	cfg := DefaultFailoverBenchConfig()
	cfg.Files = 0
	if _, err := RunFailoverBench(pfs.MiF(4), cfg); err == nil {
		t.Fatal("zero files must be rejected")
	}
	cfg = DefaultFailoverBenchConfig()
	cfg.CrashOST = 9
	if _, err := RunFailoverBench(pfs.MiF(4), cfg); err == nil {
		t.Fatal("crash target outside the OST set must be rejected")
	}
}

// TestFailoverBenchIsDeterministic: two identical runs must agree on every
// simulated quantity — the crash, detection, steering, and repair timeline
// is a pure function of the seed.
func TestFailoverBenchIsDeterministic(t *testing.T) {
	cfg := DefaultFailoverBenchConfig()
	cfg.Files = 2
	cfg.FileBlocks = 128
	r1, err := RunFailoverBench(pfs.MiF(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunFailoverBench(pfs.MiF(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("identical failover runs diverged:\n%+v\nvs\n%+v", r1, r2)
	}
}
