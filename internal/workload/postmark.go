package workload

import (
	"fmt"

	"redbud/internal/core"
	"redbud/internal/inode"
	"redbud/internal/pfs"
	"redbud/internal/sim"
)

// PostMarkConfig parameterizes the PostMark benchmark (Figure 10):
// many small files churned by create/delete/read/append transactions.
// The paper configures "files-counts=100K, transaction-counts=500K and
// transaction-size is equal to file size" across 10 clients; the defaults
// here scale that down while keeping the per-client shape, and the counts
// are flags on cmd/mifbench for full-size runs.
type PostMarkConfig struct {
	// Clients each work in their own directory.
	Clients int
	// FilesPerClient is the initial file-set size per client.
	FilesPerClient int
	// TransactionsPerClient is the transaction count per client.
	TransactionsPerClient int
	// MinFileBlocks/MaxFileBlocks bound the file size distribution.
	MinFileBlocks int64
	MaxFileBlocks int64
	// Seed drives the transaction mix.
	Seed uint64
}

// DefaultPostMarkConfig returns a laptop-scale PostMark.
func DefaultPostMarkConfig() PostMarkConfig {
	return PostMarkConfig{
		Clients:               10,
		FilesPerClient:        100,
		TransactionsPerClient: 500,
		MinFileBlocks:         1,
		MaxFileBlocks:         8,
		Seed:                  11,
	}
}

// AppResult reports one application-style run (PostMark, tar, make,
// make-clean): its total simulated execution time.
type AppResult struct {
	Config  string
	App     string
	Ops     int64
	Elapsed sim.Ns
}

// elapsedOf folds the serially-dependent components of an application run:
// the MDS disk, the parallel data disks, and modeled client compute.
func elapsedOf(fs *pfs.FS, compute sim.Ns) sim.Ns {
	return fs.MDS().FS().Store().Disk().Stats().BusyNs + fs.DataBusyMax() + compute
}

// RunPostMark executes PostMark against a fresh mount.
func RunPostMark(fsCfg pfs.Config, cfg PostMarkConfig) (AppResult, error) {
	if cfg.Clients <= 0 || cfg.FilesPerClient <= 0 {
		return AppResult{}, fmt.Errorf("workload: bad postmark config %+v", cfg)
	}
	fsCfg.MDS.FS.SyncWrites = true
	fs, err := pfs.New(fsCfg)
	if err != nil {
		return AppResult{}, err
	}
	rng := sim.NewRand(cfg.Seed)

	type pmFile struct {
		name string
		size int64
	}
	dirs := make([]inode.Ino, cfg.Clients)
	files := make([][]pmFile, cfg.Clients)
	for c := range dirs {
		d, err := fs.Mkdir(fs.Root(), fmt.Sprintf("pm%02d", c))
		if err != nil {
			return AppResult{}, err
		}
		dirs[c] = d
	}
	fileSize := func() int64 {
		span := cfg.MaxFileBlocks - cfg.MinFileBlocks + 1
		return cfg.MinFileBlocks + rng.Int63n(span)
	}
	seq := 0
	createFile := func(c int) error {
		name := fmt.Sprintf("pm%07d", seq)
		seq++
		size := fileSize()
		f, err := fs.Create(dirs[c], name, size)
		if err != nil {
			return err
		}
		stream := core.StreamID{Client: uint32(c), PID: 1}
		if err := f.Write(stream, 0, size); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		files[c] = append(files[c], pmFile{name: name, size: size})
		return nil
	}

	var ops int64
	// Initial file set.
	for c := 0; c < cfg.Clients; c++ {
		for i := 0; i < cfg.FilesPerClient; i++ {
			if err := createFile(c); err != nil {
				return AppResult{}, err
			}
			ops++
		}
	}
	// Transactions: half read-or-append, half create-or-delete, the
	// PostMark mix, interleaved across clients.
	err = jitteredArrival(rng.Fork(), cfg.Clients,
		func(int) int64 { return int64(cfg.TransactionsPerClient) },
		func(c int, _ int64) error {
			ops++
			switch rng.Intn(4) {
			case 0: // create
				return createFile(c)
			case 1: // delete
				if len(files[c]) == 0 {
					return createFile(c)
				}
				i := rng.Intn(len(files[c]))
				name := files[c][i].name
				files[c][i] = files[c][len(files[c])-1]
				files[c] = files[c][:len(files[c])-1]
				return fs.Delete(dirs[c], name)
			case 2: // read whole file (transaction size = file size)
				if len(files[c]) == 0 {
					return createFile(c)
				}
				pf := files[c][rng.Intn(len(files[c]))]
				h, err := fs.Open(dirs[c], pf.name)
				if err != nil {
					return err
				}
				if err := h.Read(0, pf.size); err != nil {
					return err
				}
				return h.Close()
			default: // append one file-size worth of data
				if len(files[c]) == 0 {
					return createFile(c)
				}
				i := rng.Intn(len(files[c]))
				pf := &files[c][i]
				h, err := fs.Open(dirs[c], pf.name)
				if err != nil {
					return err
				}
				stream := core.StreamID{Client: uint32(c), PID: 1}
				appendBlocks := fileSize()
				if err := h.Write(stream, pf.size, appendBlocks); err != nil {
					return err
				}
				pf.size += appendBlocks
				return h.Close()
			}
		})
	if err != nil {
		return AppResult{}, err
	}
	if err := fs.Sync(); err != nil {
		return AppResult{}, err
	}
	return AppResult{
		Config:  fsCfg.Name,
		App:     "PostMark",
		Ops:     ops,
		Elapsed: elapsedOf(fs, 0),
	}, nil
}
