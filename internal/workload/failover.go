package workload

import (
	"fmt"

	"redbud/internal/core"
	"redbud/internal/pfs"
	"redbud/internal/replica"
	"redbud/internal/rpc"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// FailoverBenchConfig parameterizes the failover experiment: an IOR-style
// sequential write phase over replicated files with one OST killed midway,
// a full read-back while the server is still dark, and a repair drain that
// restores redundancy. The run must finish with zero I/O errors — every
// failed copy is absorbed by write fan-out skipping and read steering.
type FailoverBenchConfig struct {
	// Files is the number of files written concurrently (round-robin).
	Files int
	// FileBlocks is each file's size in blocks.
	FileBlocks int64
	// RequestBlocks is the per-request transfer size in blocks.
	RequestBlocks int64
	// Replication tunes the replica sets (RF, slice size, repair pacing).
	Replication replica.Config
	// CrashOST is the server blackholed when the write phase is half done.
	CrashOST int
	// Seed seeds the mount's fault transport (the crash itself is manual,
	// but the transport's RNG must be pinned for determinism).
	Seed uint64
}

// DefaultFailoverBenchConfig returns the evaluation shape: 4 files of 4 MiB
// under 3-way replication, 64 KiB requests, OST 1 killed mid-write.
func DefaultFailoverBenchConfig() FailoverBenchConfig {
	return FailoverBenchConfig{
		Files:         4,
		FileBlocks:    1024,
		RequestBlocks: 16,
		Replication:   replica.DefaultConfig(),
		CrashOST:      1,
		Seed:          42,
	}
}

// FailoverBenchResult measures one failover run.
type FailoverBenchResult struct {
	Config string
	RF     int
	OSTs   int

	// WriteMBps is the write phase's client-visible throughput — degraded
	// from the healthy rate by the fan-out and by the timeout wall the
	// crash puts up until the client marks the server down.
	WriteMBps float64
	// ReadMBps is the read-back throughput with the server still dark.
	ReadMBps float64

	// Replica-layer activity over the whole run.
	Stats replica.Stats
	// UnderReplPeak is the largest number of simultaneously
	// under-replicated components observed.
	UnderReplPeak int64
	// TimeToRedundancyNs is the simulated time from the crash until every
	// component was back at full strength.
	TimeToRedundancyNs sim.Ns
}

// RunFailoverBench executes the failover experiment on fsCfg. The mount is
// reconfigured for the run: the replica manager from cfg.Replication, a
// fault transport (for the crash/revive control plane), and a short retry
// policy so discovery timeouts don't dominate the degraded phase.
func RunFailoverBench(fsCfg pfs.Config, cfg FailoverBenchConfig) (FailoverBenchResult, error) {
	var res FailoverBenchResult
	if cfg.Files <= 0 || cfg.FileBlocks <= 0 || cfg.RequestBlocks <= 0 {
		return res, fmt.Errorf("workload: bad failover bench config %+v", cfg)
	}
	if cfg.CrashOST < 0 || cfg.CrashOST >= fsCfg.OSTs {
		return res, fmt.Errorf("workload: crash target ost%d outside %d OSTs", cfg.CrashOST, fsCfg.OSTs)
	}
	rep := cfg.Replication
	fsCfg.Replication = &rep
	if fsCfg.RPC.Fault == nil {
		fsCfg.RPC.Fault = &rpc.FaultConfig{Seed: cfg.Seed}
	}
	if fsCfg.RPC.Retry == nil {
		fsCfg.RPC.Retry = &rpc.RetryPolicy{TimeoutNs: 2 * sim.Millisecond, MaxRetries: 2}
	}
	if fsCfg.Trace == nil {
		// Time-to-redundancy is measured on the simulated timeline, so the
		// run always traces (privately when the session doesn't).
		fsCfg.Trace = telemetry.NewTracer(nil)
	}
	fs, err := pfs.New(fsCfg)
	if err != nil {
		return res, err
	}
	mgr := fs.Replication()
	tr := fs.Tracer()
	res.Config = fsCfg.Name
	res.RF = mgr.RF()
	res.OSTs = fs.OSTs()

	// Write phase: IOR-style interleaved sequential writes, the crash fired
	// when half the rounds are in, repair steps interleaved with traffic
	// like the defrag engine's online mode.
	files := make([]*pfs.File, cfg.Files)
	for i := range files {
		f, err := fs.Create(fs.Root(), fmt.Sprintf("failover%02d.dat", i), 0)
		if err != nil {
			return res, err
		}
		files[i] = f
	}
	var crashedAt sim.Ns = -1
	var restoredAt sim.Ns = -1
	peak := func() {
		if u := mgr.UnderReplicated(); u > res.UnderReplPeak {
			res.UnderReplPeak = u
		}
	}
	rounds := (cfg.FileBlocks + cfg.RequestBlocks - 1) / cfg.RequestBlocks
	writeBegin := tr.Now()
	round := int64(0)
	for off := int64(0); off < cfg.FileBlocks; off += cfg.RequestBlocks {
		n := cfg.RequestBlocks
		if off+n > cfg.FileBlocks {
			n = cfg.FileBlocks - off
		}
		if round == rounds/2 {
			if err := fs.CrashOST(cfg.CrashOST); err != nil {
				return res, err
			}
			crashedAt = tr.Now()
		}
		for i, f := range files {
			st := core.StreamID{Client: uint32(i), PID: 0}
			if err := f.Write(st, off, n); err != nil {
				return res, fmt.Errorf("workload: degraded write failed: %w", err)
			}
		}
		if _, err := fs.RepairStep(false); err != nil {
			return res, err
		}
		peak()
		round++
	}
	if err := fs.Sync(); err != nil {
		return res, err
	}
	bytes := int64(cfg.Files) * cfg.FileBlocks * fs.Config().OST.Disk.BlockSize
	res.WriteMBps = sim.MBps(bytes, tr.Now()-writeBegin)

	// Read-back with the server still dark: steering must route every piece
	// to a live clean replica.
	readBegin := tr.Now()
	for _, f := range files {
		for off := int64(0); off < cfg.FileBlocks; off += cfg.RequestBlocks {
			n := cfg.RequestBlocks
			if off+n > cfg.FileBlocks {
				n = cfg.FileBlocks - off
			}
			if err := f.Read(off, n); err != nil {
				return res, fmt.Errorf("workload: degraded read failed: %w", err)
			}
		}
	}
	res.ReadMBps = sim.MBps(bytes, tr.Now()-readBegin)
	peak()

	// Repair drain: force-step until every component is repaired onto the
	// surviving servers, tracking when full redundancy returns.
	for {
		worked, err := fs.RepairStep(true)
		if err != nil {
			return res, err
		}
		if restoredAt < 0 && mgr.FullyReplicated() {
			restoredAt = tr.Now()
		}
		if !worked {
			break
		}
	}
	if !mgr.FullyReplicated() {
		return res, fmt.Errorf("workload: %d components still under-replicated after drain", mgr.UnderReplicated())
	}
	if crashedAt >= 0 && restoredAt >= 0 {
		res.TimeToRedundancyNs = restoredAt - crashedAt
	}

	// Verification pass: the repaired file set must read back clean.
	for _, f := range files {
		if err := f.Read(0, cfg.FileBlocks); err != nil {
			return res, fmt.Errorf("workload: post-repair read failed: %w", err)
		}
		if err := f.Close(); err != nil {
			return res, err
		}
	}
	res.Stats = mgr.Stats()
	return res, nil
}
