package workload

import (
	"fmt"
	"strings"

	"redbud/internal/cache"
	"redbud/internal/core"
	"redbud/internal/pfs"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// CacheBenchConfig parameterizes the client-cache experiment: the Figure 1
// aging pattern (interleaved small sequential writers) followed by re-read
// passes, run with the cache off and on over the same deterministic
// request sequence.
type CacheBenchConfig struct {
	// Files is the number of concurrently-written files; their round-robin
	// interleaving is what fragments the volume and shreds the write RPC
	// stream.
	Files int
	// FileBlocks is each file's size in blocks.
	FileBlocks int64
	// RequestBlocks is the write request size (small, so the uncached
	// mount issues many tiny RPCs).
	RequestBlocks int64
	// ReadRequestBlocks is the sequential re-read request size.
	ReadRequestBlocks int64
	// Cache tunes the cached arm. The capacity should hold the whole
	// working set so the second re-read pass measures pure cache hits.
	Cache cache.Config
}

// DefaultCacheBenchConfig returns a laptop-scale shape: 8 files of 4 MiB
// written in 16 KiB interleaved requests, re-read twice in 256 KiB
// requests, against the default cache tuning (whose 64 MiB capacity holds
// the 32 MiB working set).
func DefaultCacheBenchConfig() CacheBenchConfig {
	return CacheBenchConfig{
		Files:             8,
		FileBlocks:        1024,
		RequestBlocks:     4,
		ReadRequestBlocks: 64,
		Cache:             cache.DefaultConfig(),
	}
}

// CacheArmResult measures one arm (cache off or on) of the experiment.
type CacheArmResult struct {
	CacheOn bool

	// Write phase: interleaved small sequential writes, ended by the Sync
	// barrier so the cached arm pays its write-backs inside the phase.
	WriteRPCs         int64 // obj-write RPCs issued
	WritePositionings int64 // disk head movements during the phase
	WriteMBps         float64
	Extents           int // total file extents after the barrier

	// Re-read phase: two identical sequential passes. With the cache on,
	// blocks still resident from the write phase serve both passes from
	// client memory — zero RPCs, zero head movement.
	Pass1ReadRPCs     int64
	Pass2ReadRPCs     int64
	Pass1Positionings int64
	Pass2Positionings int64
	Pass1MBps         float64
	Pass2MBps         float64

	// Cache counters (zero for the uncached arm).
	Cache cache.Stats
}

// TotalPositionings sums the disk head movements of all three phases —
// the paper's block-layer metric, end to end over the experiment.
func (r CacheArmResult) TotalPositionings() int64 {
	return r.WritePositionings + r.Pass1Positionings + r.Pass2Positionings
}

// CacheBenchResult reports both arms for one mount profile.
type CacheBenchResult struct {
	Config string
	Files  int
	Off    CacheArmResult
	On     CacheArmResult
}

// rpcCount sums one op's rpc_calls across the registry.
func rpcCount(reg *telemetry.Registry, op string) int64 {
	var total int64
	want := "op=" + op
	for _, s := range reg.Snapshot() {
		if s.Name == "rpc_calls" && strings.Contains(s.Labels, want) {
			total += s.Value
		}
	}
	return total
}

// runCacheArm executes the deterministic write+re-read sequence on one
// fresh mount. An uninstrumented caller gets a private registry (so arms
// never share counters); a caller-supplied registry is used directly —
// the arms' mounts are renamed so their metrics stay distinguishable, and
// all RPC counts are measured as before/after deltas.
func runCacheArm(fsCfg pfs.Config, cfg CacheBenchConfig, withCache bool) (CacheArmResult, error) {
	res := CacheArmResult{CacheOn: withCache}
	reg := fsCfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
		fsCfg.Metrics = reg
	} else if withCache {
		fsCfg.Name += "/cache-on"
	} else {
		fsCfg.Name += "/cache-off"
	}
	if withCache {
		cc := cfg.Cache
		fsCfg.Cache = &cc
	} else {
		fsCfg.Cache = nil
	}
	fs, err := pfs.New(fsCfg)
	if err != nil {
		return res, err
	}

	// Write phase: round-robin interleaved small sequential writes, the
	// arrival order that provokes intra-file fragmentation, closed by the
	// Sync barrier (the cached arm's write-backs land inside the phase).
	fs.ResetDataStats()
	writeBefore := rpcCount(reg, "obj-write")
	files := make([]*pfs.File, cfg.Files)
	for i := range files {
		f, err := fs.Create(fs.Root(), fmt.Sprintf("cache%02d.dat", i), 0)
		if err != nil {
			return res, err
		}
		files[i] = f
	}
	for off := int64(0); off < cfg.FileBlocks; off += cfg.RequestBlocks {
		n := cfg.RequestBlocks
		if off+n > cfg.FileBlocks {
			n = cfg.FileBlocks - off
		}
		for i, f := range files {
			st := core.StreamID{Client: uint32(i / 4), PID: uint32(i % 4)}
			if err := f.Write(st, off, n); err != nil {
				return res, err
			}
		}
	}
	if err := fs.Sync(); err != nil {
		return res, err
	}
	res.WriteRPCs = rpcCount(reg, "obj-write") - writeBefore
	res.WritePositionings = fs.DataStats().Positionings
	bytes := int64(cfg.Files) * cfg.FileBlocks * fs.Config().OST.Disk.BlockSize
	res.WriteMBps = sim.MBps(bytes, fs.DataBusyMax())
	if res.Extents, err = totalExtents(fs, files); err != nil {
		return res, err
	}

	// Re-read phase: two identical sequential passes. Server restarts
	// drop the OST-side prefetch state between passes so only the client
	// cache distinguishes them.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < fs.OSTs(); i++ {
			fs.OST(i).Restart()
		}
		fs.ResetDataStats()
		before := rpcCount(reg, "obj-read")
		for _, f := range files {
			for off := int64(0); off < cfg.FileBlocks; off += cfg.ReadRequestBlocks {
				n := cfg.ReadRequestBlocks
				if off+n > cfg.FileBlocks {
					n = cfg.FileBlocks - off
				}
				if err := f.Read(off, n); err != nil {
					return res, err
				}
			}
		}
		fs.Flush()
		rpcs := rpcCount(reg, "obj-read") - before
		tput := sim.MBps(bytes, fs.DataBusyMax())
		pos := fs.DataStats().Positionings
		if pass == 0 {
			res.Pass1ReadRPCs, res.Pass1Positionings, res.Pass1MBps = rpcs, pos, tput
		} else {
			res.Pass2ReadRPCs, res.Pass2Positionings, res.Pass2MBps = rpcs, pos, tput
		}
	}
	if c := fs.Cache(); c != nil {
		res.Cache = c.Stats()
	}
	return res, nil
}

// RunCacheBench executes both arms of the client-cache experiment against
// fsCfg: identical deterministic request sequences with the cache off and
// on. The off arm is the existing write-through behavior; the on arm must
// aggregate the small interleaved writes into coalesced write-backs and
// serve the second re-read pass from memory.
func RunCacheBench(fsCfg pfs.Config, cfg CacheBenchConfig) (CacheBenchResult, error) {
	if cfg.Files <= 0 || cfg.FileBlocks <= 0 || cfg.RequestBlocks <= 0 || cfg.ReadRequestBlocks <= 0 {
		return CacheBenchResult{}, fmt.Errorf("workload: bad cache bench config %+v", cfg)
	}
	res := CacheBenchResult{Config: fsCfg.Name, Files: cfg.Files}
	var err error
	if res.Off, err = runCacheArm(fsCfg, cfg, false); err != nil {
		return res, err
	}
	if res.On, err = runCacheArm(fsCfg, cfg, true); err != nil {
		return res, err
	}
	return res, nil
}
