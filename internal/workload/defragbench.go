package workload

import (
	"fmt"

	"redbud/internal/core"
	"redbud/internal/ost"
	"redbud/internal/pfs"
	"redbud/internal/sim"
)

// DefragBenchConfig parameterizes the online-defragmentation recovery
// experiment: age a volume with interleaved writers (the paper's Figure 1
// pattern), measure sequential read throughput, run the defrag engine, and
// measure again against a never-aged baseline.
type DefragBenchConfig struct {
	// Files is the number of concurrently-written files; their round-robin
	// interleaving is what fragments the volume.
	Files int
	// FileBlocks is each file's size in blocks.
	FileBlocks int64
	// RequestBlocks is the write request size: smaller requests interleave
	// finer and fragment worse.
	RequestBlocks int64
	// ReadRequestBlocks is the sequential read request size.
	ReadRequestBlocks int64
}

// DefaultDefragBenchConfig returns a laptop-scale aging shape: 8 files of
// 16 MiB written in 16 KiB interleaved requests.
func DefaultDefragBenchConfig() DefragBenchConfig {
	return DefragBenchConfig{
		Files:             8,
		FileBlocks:        4096,
		RequestBlocks:     4,
		ReadRequestBlocks: 64,
	}
}

// DefragBenchResult reports one recovery run. The three read throughputs
// are measured over identical sequential scans: on the aged layout, after
// defragmentation, and on a fresh (never aged) mount of the same
// configuration.
type DefragBenchResult struct {
	Config     string
	Files      int
	FileBlocks int64

	AgedReadMBps      float64
	DefraggedReadMBps float64
	FreshReadMBps     float64
	// RecoveredPercent locates the defragmented throughput on the
	// aged→fresh scale: 0 means no recovery, 100 means fully back to the
	// un-aged baseline.
	RecoveredPercent float64

	// Extent totals across all files and positioning counts for the aged
	// and defragged read scans.
	AgedExtents      int
	DefraggedExtents int
	FreshExtents     int

	AgedPositionings      int64
	DefraggedPositionings int64

	// Engine work: objects migrated, blocks moved, and the device time
	// the migration itself consumed.
	ObjectsMigrated int64
	BlocksMoved     int64
	MoveNs          sim.Ns
}

// seqReadPhase scans every file sequentially and returns the throughput
// and the device positioning count of the scan. Servers are restarted
// first so the prefetch cache of a previous phase cannot leak in.
func seqReadPhase(fs *pfs.FS, files []*pfs.File, cfg DefragBenchConfig) (float64, int64, error) {
	for i := 0; i < fs.OSTs(); i++ {
		fs.OST(i).Restart()
	}
	fs.ResetDataStats()
	for _, f := range files {
		for off := int64(0); off < cfg.FileBlocks; off += cfg.ReadRequestBlocks {
			n := cfg.ReadRequestBlocks
			if off+n > cfg.FileBlocks {
				n = cfg.FileBlocks - off
			}
			if err := f.Read(off, n); err != nil {
				return 0, 0, err
			}
		}
	}
	fs.Flush()
	bytes := int64(cfg.Files) * cfg.FileBlocks * fs.Config().OST.Disk.BlockSize
	return sim.MBps(bytes, fs.DataBusyMax()), fs.DataStats().Positionings, nil
}

// ageVolume creates the files and writes them with round-robin interleaved
// requests, the arrival order that provokes intra-file fragmentation.
func ageVolume(fs *pfs.FS, cfg DefragBenchConfig) ([]*pfs.File, error) {
	files := make([]*pfs.File, cfg.Files)
	for i := range files {
		f, err := fs.Create(fs.Root(), fmt.Sprintf("aged%02d.dat", i), 0)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	for off := int64(0); off < cfg.FileBlocks; off += cfg.RequestBlocks {
		n := cfg.RequestBlocks
		if off+n > cfg.FileBlocks {
			n = cfg.FileBlocks - off
		}
		for i, f := range files {
			st := core.StreamID{Client: uint32(i / 4), PID: uint32(i % 4)}
			if err := f.Write(st, off, n); err != nil {
				return nil, err
			}
		}
	}
	fs.Flush()
	return files, nil
}

// totalExtents sums the extent counts of the files.
func totalExtents(fs *pfs.FS, files []*pfs.File) (int, error) {
	total := 0
	for _, f := range files {
		n, err := fs.TotalExtents(f)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// RunDefragBench executes the full recovery experiment against fsCfg. It
// also enforces the defrag contract on every run: after the engine drains,
// each object's extent count must be no higher than before, and every OST
// must pass its consistency walk with no leaked blocks — a violation is
// returned as an error, not a number.
func RunDefragBench(fsCfg pfs.Config, cfg DefragBenchConfig) (DefragBenchResult, error) {
	if cfg.Files <= 0 || cfg.FileBlocks <= 0 || cfg.RequestBlocks <= 0 || cfg.ReadRequestBlocks <= 0 {
		return DefragBenchResult{}, fmt.Errorf("workload: bad defrag bench config %+v", cfg)
	}
	res := DefragBenchResult{Config: fsCfg.Name, Files: cfg.Files, FileBlocks: cfg.FileBlocks}

	// Aged arm: interleaved writes, then the degraded sequential scan.
	fs, err := pfs.New(fsCfg)
	if err != nil {
		return res, err
	}
	files, err := ageVolume(fs, cfg)
	if err != nil {
		return res, err
	}
	if res.AgedExtents, err = totalExtents(fs, files); err != nil {
		return res, err
	}
	if res.AgedReadMBps, res.AgedPositionings, err = seqReadPhase(fs, files, cfg); err != nil {
		return res, err
	}

	// Defragment, holding each OST's per-object report to enforce the
	// non-increase contract afterwards.
	before := make([]map[ost.ObjectID]int, fs.OSTs())
	for i := 0; i < fs.OSTs(); i++ {
		before[i] = make(map[ost.ObjectID]int)
		for _, r := range fs.OST(i).FragReportAll() {
			before[i][r.Object] = r.Extents
		}
	}
	st, err := fs.Defrag().Run()
	if err != nil {
		return res, err
	}
	res.ObjectsMigrated = st.ObjectsMigrated
	res.BlocksMoved = st.BlocksMoved
	res.MoveNs = st.MoveNs
	for i := 0; i < fs.OSTs(); i++ {
		for _, r := range fs.OST(i).FragReportAll() {
			if prev, ok := before[i][r.Object]; ok && r.Extents > prev {
				return res, fmt.Errorf("workload: defrag grew ost%d object %d from %d to %d extents",
					i, r.Object, prev, r.Extents)
			}
		}
		if rep := fs.OST(i).CheckConsistency(); !rep.Clean() || rep.LeakedBlocks != 0 {
			return res, fmt.Errorf("workload: post-defrag ost%d inconsistent: leaks=%d problems=%v",
				i, rep.LeakedBlocks, rep.Problems)
		}
	}
	if res.DefraggedExtents, err = totalExtents(fs, files); err != nil {
		return res, err
	}
	if res.DefraggedReadMBps, res.DefraggedPositionings, err = seqReadPhase(fs, files, cfg); err != nil {
		return res, err
	}

	// Fresh baseline: the same files written one at a time on a new
	// mount — the layout aging never happened.
	freshFS, err := pfs.New(fsCfg)
	if err != nil {
		return res, err
	}
	fresh := make([]*pfs.File, cfg.Files)
	for i := range fresh {
		f, err := freshFS.Create(freshFS.Root(), fmt.Sprintf("fresh%02d.dat", i), 0)
		if err != nil {
			return res, err
		}
		fresh[i] = f
		st := core.StreamID{Client: uint32(i / 4), PID: uint32(i % 4)}
		for off := int64(0); off < cfg.FileBlocks; off += cfg.RequestBlocks {
			n := cfg.RequestBlocks
			if off+n > cfg.FileBlocks {
				n = cfg.FileBlocks - off
			}
			if err := f.Write(st, off, n); err != nil {
				return res, err
			}
		}
	}
	freshFS.Flush()
	if res.FreshExtents, err = totalExtents(freshFS, fresh); err != nil {
		return res, err
	}
	if res.FreshReadMBps, _, err = seqReadPhase(freshFS, fresh, cfg); err != nil {
		return res, err
	}

	if gap := res.FreshReadMBps - res.AgedReadMBps; gap > 0 {
		res.RecoveredPercent = 100 * (res.DefraggedReadMBps - res.AgedReadMBps) / gap
	}
	return res, nil
}
