package workload

import (
	"redbud/internal/core"
	"redbud/internal/pfs"
	"redbud/internal/sim"
)

// RunSyncPressure drives the delayed-allocation-vs-on-demand comparison:
// 16 streams extend disjoint regions of a shared file, calling fsync every
// fsyncEvery requests per stream (0 = never, one flush at close). It
// returns the resulting extent count and the sequential read-back
// throughput.
//
// This quantifies the paper's positioning of the two techniques (§2):
// delayed allocation coalesces beautifully while data may linger in
// memory, but explicit syncs shrink its window back toward per-request
// placement; on-demand preallocation "can improve data placement on
// concurrent access without any runtime assumption".
func RunSyncPressure(fsCfg pfs.Config, fsyncEvery int64) (extents int, readMBps float64, err error) {
	fs, err := pfs.New(fsCfg)
	if err != nil {
		return 0, 0, err
	}
	const streams = 16
	const regionBlocks = 1024
	const reqBlocks = 4
	f, err := fs.Create(fs.Root(), "sync.dat", streams*regionBlocks)
	if err != nil {
		return 0, 0, err
	}
	var reqs int64
	for off := int64(0); off < regionBlocks; off += reqBlocks {
		for s := 0; s < streams; s++ {
			stream := core.StreamID{Client: uint32(s / 4), PID: uint32(s % 4)}
			if err := f.Write(stream, int64(s)*regionBlocks+off, reqBlocks); err != nil {
				return 0, 0, err
			}
			reqs++
			if fsyncEvery > 0 && reqs%fsyncEvery == 0 {
				if err := f.Fsync(); err != nil {
					return 0, 0, err
				}
			}
		}
	}
	fs.Flush()
	extents, err = fs.TotalExtents(f)
	if err != nil {
		return 0, 0, err
	}
	fs.ResetDataStats()
	rng := sim.NewRand(99)
	progress := make([]int64, streams)
	remaining := streams
	for remaining > 0 {
		s := rng.Intn(streams)
		if progress[s] >= regionBlocks {
			continue
		}
		if err := f.Read(int64(s)*regionBlocks+progress[s], 16); err != nil {
			return 0, 0, err
		}
		progress[s] += 16
		if progress[s] >= regionBlocks {
			remaining--
		}
	}
	fs.Flush()
	total := int64(streams) * regionBlocks * fsCfg.OST.Disk.BlockSize
	return extents, sim.MBps(total, fs.DataBusyMax()), nil
}
