package workload

import (
	"fmt"

	"redbud/internal/core"
	"redbud/internal/inode"
	"redbud/internal/pfs"
	"redbud/internal/sim"
)

// KernelTreeConfig parameterizes the application mix of Figure 10: "the
// three applications all use files (or tar.gz) of linux kernel code" —
// tar (unpack the tree), make (compile: read every source, emit objects,
// burn CPU), and make clean (delete the objects).
type KernelTreeConfig struct {
	// Dirs is the number of source directories.
	Dirs int
	// FilesPerDir is the source-file count per directory.
	FilesPerDir int
	// MeanFileBlocks shapes the file-size distribution (kernel sources
	// are small: a few KiB to tens of KiB).
	MeanFileBlocks int64
	// ObjectRatioPct is the percentage of sources that produce an
	// object file during make.
	ObjectRatioPct int
	// CompileNsPerFile is the modeled CPU cost of compiling one file —
	// what makes make "CPU-intensive" and its I/O gain small.
	CompileNsPerFile sim.Ns
	// Seed drives the size distribution.
	Seed uint64
}

// DefaultKernelTreeConfig returns a scaled-down kernel tree.
func DefaultKernelTreeConfig() KernelTreeConfig {
	return KernelTreeConfig{
		Dirs:             40,
		FilesPerDir:      60,
		MeanFileBlocks:   3,
		ObjectRatioPct:   60,
		CompileNsPerFile: 40 * sim.Millisecond,
		Seed:             23,
	}
}

// KernelTreeResult reports the three application phases.
type KernelTreeResult struct {
	Config    string
	Tar       AppResult
	Make      AppResult
	MakeClean AppResult
}

// RunKernelTree executes tar, make, and make clean against a fresh mount.
func RunKernelTree(fsCfg pfs.Config, cfg KernelTreeConfig) (KernelTreeResult, error) {
	if cfg.Dirs <= 0 || cfg.FilesPerDir <= 0 || cfg.MeanFileBlocks <= 0 {
		return KernelTreeResult{}, fmt.Errorf("workload: bad kernel-tree config %+v", cfg)
	}
	fsCfg.MDS.FS.SyncWrites = true
	fs, err := pfs.New(fsCfg)
	if err != nil {
		return KernelTreeResult{}, err
	}
	rng := sim.NewRand(cfg.Seed)
	out := KernelTreeResult{Config: fsCfg.Name}
	stream := core.StreamID{Client: 1, PID: 1}

	size := func() int64 {
		// Skewed small-file distribution around the mean.
		n := 1 + rng.Int63n(cfg.MeanFileBlocks*2)
		if rng.Intn(20) == 0 {
			n *= 8 // occasional large file
		}
		return n
	}

	type src struct {
		dir  inode.Ino
		name string
		size int64
	}
	var sources []src

	// tar: unpack the tree — directory creates plus sequential small
	// file writes.
	prevBusy := elapsedOf(fs, 0)
	var ops int64
	for d := 0; d < cfg.Dirs; d++ {
		dir, err := fs.Mkdir(fs.Root(), fmt.Sprintf("drivers%03d", d))
		if err != nil {
			return out, err
		}
		for i := 0; i < cfg.FilesPerDir; i++ {
			name := fmt.Sprintf("src%04d.c", i)
			n := size()
			f, err := fs.Create(dir, name, n)
			if err != nil {
				return out, err
			}
			if err := f.Write(stream, 0, n); err != nil {
				return out, err
			}
			if err := f.Close(); err != nil {
				return out, err
			}
			sources = append(sources, src{dir: dir, name: name, size: n})
			ops++
		}
	}
	if err := fs.Sync(); err != nil {
		return out, err
	}
	out.Tar = AppResult{Config: fsCfg.Name, App: "tar", Ops: ops, Elapsed: elapsedOf(fs, 0) - prevBusy}

	// make: stat + read every source (the compiler's includes), emit an
	// object file for a fraction, and burn compile CPU.
	fs.MDS().FS().Store().DropCaches()
	prevBusy = elapsedOf(fs, 0)
	ops = 0
	var compute sim.Ns
	for _, s := range sources {
		if _, err := fs.MDS().StatName(s.dir, s.name); err != nil {
			return out, err
		}
		h, err := fs.Open(s.dir, s.name)
		if err != nil {
			return out, err
		}
		if err := h.Read(0, s.size); err != nil {
			return out, err
		}
		if err := h.Close(); err != nil {
			return out, err
		}
		ops++
		if rng.Intn(100) < cfg.ObjectRatioPct {
			compute += cfg.CompileNsPerFile
			obj := s.name[:len(s.name)-2] + ".o"
			n := s.size / 2
			if n < 1 {
				n = 1
			}
			f, err := fs.Create(s.dir, obj, n)
			if err != nil {
				return out, err
			}
			if err := f.Write(stream, 0, n); err != nil {
				return out, err
			}
			if err := f.Close(); err != nil {
				return out, err
			}
			ops++
		}
	}
	if err := fs.Sync(); err != nil {
		return out, err
	}
	out.Make = AppResult{Config: fsCfg.Name, App: "make", Ops: ops, Elapsed: elapsedOf(fs, compute) - prevBusy}

	// make clean: readdir every directory, delete the objects.
	fs.MDS().FS().Store().DropCaches()
	prevBusy = elapsedOf(fs, compute)
	ops = 0
	seen := map[inode.Ino]bool{}
	for _, s := range sources {
		if !seen[s.dir] {
			seen[s.dir] = true
			if _, err := fs.MDS().ReaddirPlus(s.dir); err != nil {
				return out, err
			}
			ops++
		}
		obj := s.name[:len(s.name)-2] + ".o"
		if err := fs.Delete(s.dir, obj); err == nil {
			ops++
		}
	}
	if err := fs.Sync(); err != nil {
		return out, err
	}
	out.MakeClean = AppResult{Config: fsCfg.Name, App: "make-clean", Ops: ops, Elapsed: elapsedOf(fs, compute) - prevBusy}
	return out, nil
}
