package workload

import (
	"bytes"
	"strings"
	"testing"

	"redbud/internal/crashsim"
	"redbud/internal/telemetry"
)

// TestCrashSweepFullRegistryRecovers is the PR's headline guarantee: the
// sweep enumerates every registered crash point (>= 20, spanning the
// journal, defrag, repair, and cache-flush paths), the baseline reaches
// each one, and every (point, tear-mode) run recovers to a consistent,
// fsck-clean state with all acknowledged data readable. Two identical-seed
// sweeps must render byte-identical reports.
func TestCrashSweepFullRegistryRecovers(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultCrashSweepConfig()
	cfg.Metrics = reg
	rep, err := RunCrashSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	rep.Write(&out)
	if !rep.Passed() {
		t.Fatalf("sweep failed:\n%s", out.String())
	}
	if rep.Points < 20 {
		t.Fatalf("swept %d points, want >= 20", rep.Points)
	}
	layers := map[string]bool{}
	for _, r := range rep.Runs {
		layers[r.Layer] = true
		if !r.Fired {
			t.Fatalf("point %s never fired", r.Point)
		}
	}
	for _, want := range []string{"journal", "mdfs", "ost", "defrag", "repair", "cache"} {
		if !layers[want] {
			t.Fatalf("no crash point on layer %q; got %v", want, layers)
		}
	}

	// layer=crash telemetry mirrors the report.
	counter := func(name string) int64 {
		for _, s := range reg.Snapshot() {
			if s.Name == name {
				return s.Value
			}
		}
		t.Fatalf("metric %s not registered", name)
		return 0
	}
	if got := counter("crash_runs"); got != int64(len(rep.Runs)) {
		t.Fatalf("crash_runs = %d, want %d", got, len(rep.Runs))
	}
	if got := counter("crash_recovered_consistent"); got != int64(len(rep.Runs)) {
		t.Fatalf("crash_recovered_consistent = %d, want %d", got, len(rep.Runs))
	}
	if got := counter("crash_failures"); got != 0 {
		t.Fatalf("crash_failures = %d, want 0", got)
	}
	if got := counter("crash_points"); got != int64(rep.Points) {
		t.Fatalf("crash_points = %d, want %d", got, rep.Points)
	}

	rep2, err := RunCrashSweep(DefaultCrashSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	rep2.Write(&out2)
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Fatalf("identical-seed sweeps rendered different reports:\n--- run 1\n%s--- run 2\n%s",
			out.String(), out2.String())
	}
}

// TestCrashSweepPointSubset pins the subset selector the smoke target
// uses: named points sweep in registry order, unknown names are an error
// (a typo must not silently shrink coverage).
func TestCrashSweepPointSubset(t *testing.T) {
	cfg := DefaultCrashSweepConfig()
	cfg.Points = []string{crashsim.PtCacheSyncFlush, crashsim.PtJournalAppendCommit}
	rep, err := RunCrashSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points != 2 {
		t.Fatalf("swept %d points, want 2", rep.Points)
	}
	var out bytes.Buffer
	rep.Write(&out)
	if !rep.Passed() {
		t.Fatalf("subset sweep failed:\n%s", out.String())
	}

	cfg.Points = []string{"no.such.point"}
	if _, err := RunCrashSweep(cfg); err == nil ||
		!strings.Contains(err.Error(), "no.such.point") {
		t.Fatalf("unknown point: err = %v, want named error", err)
	}
}

// TestCrashSweepInjectorIsFree is the zero-overhead guard: mounting the
// sweep workload with an attached-but-unarmed (observer) injector must
// leave every simulated metric byte-identical to the vanilla mount — the
// crash seam may not perturb the performance model it instruments.
func TestCrashSweepInjectorIsFree(t *testing.T) {
	run := func(in *crashsim.Injector) string {
		tgt := &crashTarget{cfg: DefaultCrashSweepConfig(), reg: telemetry.NewRegistry()}
		if err := tgt.Run(in); err != nil {
			t.Fatal(err)
		}
		if v := tgt.Verify(); len(v) > 0 {
			t.Fatalf("clean run verify: %v", v)
		}
		var b bytes.Buffer
		if err := tgt.reg.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	vanilla := run(nil)
	observed := run(crashsim.Observe())
	if vanilla != observed {
		t.Fatalf("observer injector perturbed the simulated metrics:\n--- vanilla\n%s\n--- observed\n%s",
			vanilla, observed)
	}
}
