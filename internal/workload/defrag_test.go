package workload

import (
	"testing"

	"redbud/internal/pfs"
)

func TestDefragBenchRecoversAgedThroughput(t *testing.T) {
	cfg := DefaultDefragBenchConfig()
	cfg.Files = 4
	cfg.FileBlocks = 2048
	res, err := RunDefragBench(pfs.MiF(2).WithPolicy(pfs.PolicyVanilla), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("aged %.1f → defragged %.1f → fresh %.1f MB/s (%.0f%% recovered); extents %d → %d (fresh %d); positionings %d → %d",
		res.AgedReadMBps, res.DefraggedReadMBps, res.FreshReadMBps, res.RecoveredPercent,
		res.AgedExtents, res.DefraggedExtents, res.FreshExtents,
		res.AgedPositionings, res.DefraggedPositionings)
	if res.BlocksMoved == 0 || res.ObjectsMigrated == 0 {
		t.Fatalf("engine idle on an aged volume: %+v", res)
	}
	if res.DefraggedExtents >= res.AgedExtents {
		t.Fatalf("extents %d → %d, want a reduction", res.AgedExtents, res.DefraggedExtents)
	}
	if res.DefraggedPositionings >= res.AgedPositionings {
		t.Fatalf("positionings %d → %d, want the defragged scan to seek less",
			res.AgedPositionings, res.DefraggedPositionings)
	}
	if res.DefraggedReadMBps <= res.AgedReadMBps {
		t.Fatalf("read %.1f → %.1f MB/s, want the defragged scan faster",
			res.AgedReadMBps, res.DefraggedReadMBps)
	}
	if res.RecoveredPercent < 50 {
		t.Fatalf("recovered only %.0f%% of the aged→fresh gap", res.RecoveredPercent)
	}
}

func TestDefragBenchOnMiFFindsLittle(t *testing.T) {
	// The point of MiF is that aging barely fragments: on-demand
	// preallocation keeps per-file layouts close to contiguous, so the
	// same experiment leaves the engine much less to move than vanilla.
	cfg := DefaultDefragBenchConfig()
	cfg.Files = 4
	cfg.FileBlocks = 2048
	vanilla, err := RunDefragBench(pfs.MiF(2).WithPolicy(pfs.PolicyVanilla), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mif, err := RunDefragBench(pfs.MiF(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mif.AgedExtents >= vanilla.AgedExtents {
		t.Fatalf("MiF aged to %d extents, vanilla to %d: prevention should beat repair",
			mif.AgedExtents, vanilla.AgedExtents)
	}
	if mif.AgedReadMBps <= vanilla.AgedReadMBps {
		t.Fatalf("MiF aged throughput %.1f MB/s should beat vanilla's %.1f before any repair",
			mif.AgedReadMBps, vanilla.AgedReadMBps)
	}
}
