package workload

import (
	"testing"

	"redbud/internal/mdfs"
	"redbud/internal/pfs"
)

// smallMetarates keeps unit-test runtime reasonable; the full 5000-file
// paper shape runs in the benchmark harness.
func smallMetarates(layout mdfs.Layout) MetaratesConfig {
	cfg := DefaultMetaratesConfig(layout)
	cfg.Clients = 6
	cfg.FilesPerDir = 700
	return cfg
}

func TestMetaratesEmbeddedWins(t *testing.T) {
	normal, err := RunMetarates(smallMetarates(mdfs.LayoutNormal))
	if err != nil {
		t.Fatal(err)
	}
	embedded, err := RunMetarates(smallMetarates(mdfs.LayoutEmbedded))
	if err != nil {
		t.Fatal(err)
	}
	// Figure 8: embedded cuts disk accesses and raises throughput for
	// create, delete, and readdir-stat.
	if embedded.Create.OpsPerSec <= normal.Create.OpsPerSec {
		t.Errorf("create: embedded %.0f ops/s should beat normal %.0f",
			embedded.Create.OpsPerSec, normal.Create.OpsPerSec)
	}
	if embedded.Delete.OpsPerSec <= normal.Delete.OpsPerSec {
		t.Errorf("delete: embedded %.0f ops/s should beat normal %.0f",
			embedded.Delete.OpsPerSec, normal.Delete.OpsPerSec)
	}
	if embedded.Readdir.DiskRequests*10 > normal.Readdir.DiskRequests {
		t.Errorf("readdir-stat: embedded %d requests should be <= 1/10 of normal %d",
			embedded.Readdir.DiskRequests, normal.Readdir.DiskRequests)
	}
	if embedded.Create.DiskRequests >= normal.Create.DiskRequests {
		t.Errorf("create: embedded %d requests should be below normal %d",
			embedded.Create.DiskRequests, normal.Create.DiskRequests)
	}
	t.Logf("create %+.0f%%, utime %+.0f%%, readdir %+.0f%%, delete %+.0f%%",
		100*(embedded.Create.OpsPerSec/normal.Create.OpsPerSec-1),
		100*(embedded.Utime.OpsPerSec/normal.Utime.OpsPerSec-1),
		100*(embedded.Readdir.OpsPerSec/normal.Readdir.OpsPerSec-1),
		100*(embedded.Delete.OpsPerSec/normal.Delete.OpsPerSec-1))
}

func TestMetaratesLustreCloseToNormal(t *testing.T) {
	// The paper: "the performance of the original Redbud version is
	// quite close to that of the Lustre in all of the workloads."
	cfg := smallMetarates(mdfs.LayoutNormal)
	normal, err := RunMetarates(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Htree = true
	lustre, err := RunMetarates(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := lustre.Create.OpsPerSec / normal.Create.OpsPerSec
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("lustre-like create %.0f ops/s vs normal %.0f: want within 25%%",
			lustre.Create.OpsPerSec, normal.Create.OpsPerSec)
	}
}

func TestMetaratesReaddirGapGrowsWithDirSize(t *testing.T) {
	// Figure 8(c): "the decreased disk access proportion increases as
	// the directory size increases."
	proportion := func(files int) float64 {
		cfg := smallMetarates(mdfs.LayoutNormal)
		cfg.Clients = 4
		cfg.FilesPerDir = files
		normal, err := RunMetarates(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ecfg := cfg
		ecfg.Layout = mdfs.LayoutEmbedded
		embedded, err := RunMetarates(ecfg)
		if err != nil {
			t.Fatal(err)
		}
		return float64(embedded.Readdir.DiskRequests) / float64(normal.Readdir.DiskRequests)
	}
	small := proportion(300)
	large := proportion(1500)
	if large >= small {
		t.Fatalf("readdir-stat request proportion should shrink with directory size: %g -> %g", small, large)
	}
}

func TestAgingShapes(t *testing.T) {
	// Figure 9: aging hurts embedded creation, deletion is not severely
	// compromised, and embedded stays above the traditional layout.
	fresh, err := RunAging(DefaultAgingConfig(mdfs.LayoutEmbedded, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	aged, err := RunAging(DefaultAgingConfig(mdfs.LayoutEmbedded, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	normalAged, err := RunAging(DefaultAgingConfig(mdfs.LayoutNormal, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports a 43% creation drop at 80% capacity; in this
	// reproduction the per-op journal commits dominate the create cost,
	// so the drop is directionally present but shallow (see
	// EXPERIMENTS.md). The robust assertions: aging must not *improve*
	// creation, and deletion must not be severely compromised.
	if aged.CreatePerSec > fresh.CreatePerSec*1.05 {
		t.Errorf("aging should not improve embedded create throughput: %.0f -> %.0f",
			fresh.CreatePerSec, aged.CreatePerSec)
	}
	createDrop := 1 - aged.CreatePerSec/fresh.CreatePerSec
	deleteDrop := 1 - aged.DeletePerSec/fresh.DeletePerSec
	if deleteDrop > 0.20 {
		t.Errorf("deletion should not be severely compromised by aging: %.0f%% drop", 100*deleteDrop)
	}
	if aged.CreatePerSec < normalAged.CreatePerSec*1.1 {
		t.Errorf("aged embedded create %.0f should stay well above traditional %.0f",
			aged.CreatePerSec, normalAged.CreatePerSec)
	}
	t.Logf("embedded create %.0f -> %.0f (-%.0f%%), delete %.0f -> %.0f (-%.0f%%); normal aged create %.0f",
		fresh.CreatePerSec, aged.CreatePerSec, 100*createDrop,
		fresh.DeletePerSec, aged.DeletePerSec, 100*deleteDrop, normalAged.CreatePerSec)
}

func TestSyncPressureShapes(t *testing.T) {
	// §2's positioning of the techniques: delayed allocation wins with
	// no syncs, collapses under per-request fsync; on-demand placement
	// is sync-invariant.
	delayed := func(every int64) (int, float64) {
		cfg := pfs.MiF(5).WithPolicy(pfs.PolicyVanilla)
		cfg.OST.DelayedAllocation = true
		e, m, err := RunSyncPressure(cfg, every)
		if err != nil {
			t.Fatal(err)
		}
		return e, m
	}
	onDemand := func(every int64) (int, float64) {
		e, m, err := RunSyncPressure(pfs.MiF(5), every)
		if err != nil {
			t.Fatal(err)
		}
		return e, m
	}
	dRelaxedExt, _ := delayed(0)
	dSyncExt, dSyncMB := delayed(4)
	oRelaxedExt, _ := onDemand(0)
	oSyncExt, oSyncMB := onDemand(4)
	if dRelaxedExt > 8 {
		t.Errorf("unsynced delayed allocation should be near-contiguous, got %d extents", dRelaxedExt)
	}
	if dSyncExt < dRelaxedExt*16 {
		t.Errorf("sync pressure should fragment delayed allocation: %d -> %d extents", dRelaxedExt, dSyncExt)
	}
	if oSyncExt != oRelaxedExt {
		t.Errorf("on-demand extents must be sync-invariant: %d vs %d", oRelaxedExt, oSyncExt)
	}
	if oSyncMB <= dSyncMB {
		t.Errorf("under sync pressure on-demand (%.1f MB/s) should beat delayed allocation (%.1f MB/s)",
			oSyncMB, dSyncMB)
	}
}

func TestPostMarkAndAppsFavorMiF(t *testing.T) {
	pmCfg := DefaultPostMarkConfig()
	pmCfg.Clients = 4
	pmCfg.FilesPerClient = 60
	pmCfg.TransactionsPerClient = 200
	redbud, err := RunPostMark(pfs.RedbudOrig(4), pmCfg)
	if err != nil {
		t.Fatal(err)
	}
	mif, err := RunPostMark(pfs.MiF(4), pmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if mif.Elapsed >= redbud.Elapsed {
		t.Errorf("PostMark: MiF %d ns should beat Redbud %d ns", mif.Elapsed, redbud.Elapsed)
	}

	ktCfg := DefaultKernelTreeConfig()
	ktCfg.Dirs = 12
	ktCfg.FilesPerDir = 30
	ktRedbud, err := RunKernelTree(pfs.RedbudOrig(4), ktCfg)
	if err != nil {
		t.Fatal(err)
	}
	ktMif, err := RunKernelTree(pfs.MiF(4), ktCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ktMif.MakeClean.Elapsed >= ktRedbud.MakeClean.Elapsed {
		t.Errorf("make-clean: MiF %d should beat Redbud %d", ktMif.MakeClean.Elapsed, ktRedbud.MakeClean.Elapsed)
	}
	// make is CPU-bound: its relative gain must be the smallest of the
	// three phases.
	gain := func(a, b AppResult) float64 { return 1 - float64(a.Elapsed)/float64(b.Elapsed) }
	makeGain := gain(ktMif.Make, ktRedbud.Make)
	cleanGain := gain(ktMif.MakeClean, ktRedbud.MakeClean)
	if makeGain > cleanGain {
		t.Errorf("make gain (%.1f%%) should be below make-clean gain (%.1f%%)", 100*makeGain, 100*cleanGain)
	}
	t.Logf("PostMark: %.2fs -> %.2fs; tar %.2fs -> %.2fs; make %.2fs -> %.2fs; clean %.2fs -> %.2fs",
		float64(redbud.Elapsed)/1e9, float64(mif.Elapsed)/1e9,
		float64(ktRedbud.Tar.Elapsed)/1e9, float64(ktMif.Tar.Elapsed)/1e9,
		float64(ktRedbud.Make.Elapsed)/1e9, float64(ktMif.Make.Elapsed)/1e9,
		float64(ktRedbud.MakeClean.Elapsed)/1e9, float64(ktMif.MakeClean.Elapsed)/1e9)
}
