package workload

import (
	"fmt"

	"redbud/internal/inode"
	"redbud/internal/mdfs"
	"redbud/internal/mds"
	"redbud/internal/sim"
	"redbud/internal/stats"
	"redbud/internal/telemetry"
)

// MetaratesConfig parameterizes the Metarates runs of Figure 8: "an MPI
// application that coordinated file system accesses from multiple clients
// ... each client worked in its own directory; each single directory
// contained 5000 subfiles", against an MDS "configured to use synchronous
// writes for metadata integrity maintenance" with a single disk.
type MetaratesConfig struct {
	// Clients is the number of concurrent metadata clients (10 in the
	// paper).
	Clients int
	// FilesPerDir is the per-directory file count (5000 in the paper;
	// Figure 8(c) sweeps it).
	FilesPerDir int
	// Layout selects the MDS directory placement under test.
	Layout mdfs.Layout
	// Htree enables the ext4-style name index (the Lustre baseline).
	Htree bool
	// SpillDegree overrides the embedded layout's fragmentation-degree
	// threshold when non-zero (ablation hook).
	SpillDegree float64
	// Seed drives the client interleaving.
	Seed uint64
	// Metrics, when set, receives the MDS server's telemetry (labeled by
	// workload and config); Trace, when set, records the server's spans
	// and advances the trace clock by the simulated work.
	Metrics *telemetry.Registry
	Trace   *telemetry.Tracer
}

// DefaultMetaratesConfig returns the paper's Metarates shape at a
// laptop-friendly directory size.
func DefaultMetaratesConfig(layout mdfs.Layout) MetaratesConfig {
	return MetaratesConfig{
		Clients:     10,
		FilesPerDir: 5000, // the paper's directory size
		Layout:      layout,
		Seed:        1,
	}
}

// PhaseResult reports one Metarates workload phase.
type PhaseResult struct {
	Ops          int64
	DiskRequests int64 // block-layer requests, the Figure 8 bar metric
	Elapsed      sim.Ns
	OpsPerSec    float64
	// P50Ns and P99Ns are per-operation latency percentiles (simulated
	// MDS-disk time attributed to each op). Checkpoint bursts land on
	// the op that triggered them, which is what a client would observe.
	P50Ns sim.Ns
	P99Ns sim.Ns
}

// MetaratesResult reports a full Metarates run.
type MetaratesResult struct {
	Config  string
	Create  PhaseResult
	Utime   PhaseResult
	Readdir PhaseResult // the readdir-stat workload
	Delete  PhaseResult
}

// metaratesName labels the system under test.
func metaratesName(cfg MetaratesConfig) string {
	if cfg.Layout == mdfs.LayoutEmbedded {
		return "embedded"
	}
	if cfg.Htree {
		return "lustre-like"
	}
	return "normal"
}

// RunMetarates executes the four Metarates workloads against a fresh MDS.
func RunMetarates(cfg MetaratesConfig) (MetaratesResult, error) {
	if cfg.Clients <= 0 || cfg.FilesPerDir <= 0 {
		return MetaratesResult{}, fmt.Errorf("workload: bad metarates config %+v", cfg)
	}
	mcfg := mds.DefaultConfig(cfg.Layout)
	mcfg.FS.SyncWrites = true
	mcfg.FS.Htree = cfg.Htree
	if cfg.SpillDegree != 0 {
		mcfg.FS.SpillDegree = cfg.SpillDegree
	}
	srv, err := mds.New(mcfg)
	if err != nil {
		return MetaratesResult{}, err
	}
	if cfg.Metrics != nil {
		labels := telemetry.Labels{"workload": "metarates", "config": metaratesName(cfg)}
		srv.Instrument(cfg.Metrics, labels.With("layer", "mds"))
	}
	if cfg.Trace != nil {
		srv.SetTracer(cfg.Trace)
	}
	fs := srv.FS()

	dirs := make([]inode.Ino, cfg.Clients)
	for c := range dirs {
		d, err := srv.Mkdir(srv.Root(), fmt.Sprintf("client%02d", c))
		if err != nil {
			return MetaratesResult{}, err
		}
		dirs[c] = d
	}
	inos := make([][]inode.Ino, cfg.Clients)
	for c := range inos {
		inos[c] = make([]inode.Ino, cfg.FilesPerDir)
	}
	name := func(i int64) string { return fmt.Sprintf("f%06d", i) }

	result := MetaratesResult{Config: metaratesName(cfg)}
	perClient := func(int) int64 { return int64(cfg.FilesPerDir) }

	// measure wraps one phase: cold caches, zeroed counters, per-op
	// latency distribution. Phase bodies wrap each operation in timedOp
	// to attribute its disk time.
	var opLat *stats.Dist
	timedOp := func(op func() error) error {
		before := fs.Store().Disk().Stats().BusyNs
		if err := op(); err != nil {
			return err
		}
		opLat.Add(fs.Store().Disk().Stats().BusyNs - before)
		return nil
	}
	measure := func(out *PhaseResult, run func() error) error {
		if err := fs.Sync(); err != nil {
			return err
		}
		fs.Store().DropCaches()
		opLat = &stats.Dist{}
		before := fs.Store().Disk().Stats()
		if err := run(); err != nil {
			return err
		}
		if err := fs.Sync(); err != nil {
			return err
		}
		delta := fs.Store().Disk().Stats().Sub(before)
		out.DiskRequests = delta.Requests
		out.Elapsed = delta.BusyNs
		if out.Elapsed > 0 {
			out.OpsPerSec = float64(out.Ops) / sim.Seconds(out.Elapsed)
		}
		if opLat.Count() > 0 {
			out.P50Ns = opLat.Percentile(50)
			out.P99Ns = opLat.Percentile(99)
		}
		return nil
	}

	// Phase 1: create.
	result.Create.Ops = int64(cfg.Clients) * int64(cfg.FilesPerDir)
	rng := sim.NewRand(cfg.Seed)
	err = measure(&result.Create, func() error {
		return jitteredArrival(rng, cfg.Clients, perClient, func(c int, idx int64) error {
			return timedOp(func() error {
				ino, err := srv.Create(dirs[c], name(idx))
				if err != nil {
					return err
				}
				inos[c][idx] = ino
				return nil
			})
		})
	})
	if err != nil {
		return result, err
	}

	// Phase 2: utime over every file, by path as the utility would.
	result.Utime.Ops = result.Create.Ops
	err = measure(&result.Utime, func() error {
		return jitteredArrival(rng, cfg.Clients, perClient, func(c int, idx int64) error {
			return timedOp(func() error {
				ino, err := srv.Lookup(dirs[c], name(idx))
				if err != nil {
					return err
				}
				return srv.Utime(ino)
			})
		})
	})
	if err != nil {
		return result, err
	}

	// Phase 3: readdir-stat (ls -l) over every directory.
	result.Readdir.Ops = result.Create.Ops
	err = measure(&result.Readdir, func() error {
		for c := 0; c < cfg.Clients; c++ {
			err := timedOp(func() error {
				recs, err := srv.ReaddirPlus(dirs[c])
				if err != nil {
					return err
				}
				if len(recs) != cfg.FilesPerDir {
					return fmt.Errorf("workload: readdirplus returned %d records, want %d", len(recs), cfg.FilesPerDir)
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return result, err
	}

	// Phase 4: delete every file.
	result.Delete.Ops = result.Create.Ops
	err = measure(&result.Delete, func() error {
		return jitteredArrival(rng, cfg.Clients, perClient, func(c int, idx int64) error {
			return timedOp(func() error { return srv.Unlink(dirs[c], name(idx)) })
		})
	})
	if err != nil {
		return result, err
	}
	return result, nil
}
