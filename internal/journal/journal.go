// Package journal implements the write-ahead journal that guards the
// metadata file system's integrity, in the style of ext3's jbd ("to
// maintain the metadata integrity, journal was first sequentially done on
// the disk", paper §5.D).
//
// Transactions append sequentially to a circular journal region of the MDS
// disk — cheap, one positioning per commit burst — and the updated home
// blocks are written back later at checkpoint time. The paper's Figure 8
// improvements come almost entirely from the checkpoint side ("the
// reduction of disk access counts mainly comes from the checkpoint
// operations"), which is why the journal and checkpoint paths are modeled
// distinctly.
package journal

import (
	"fmt"
	"sort"

	"redbud/internal/crashsim"
	"redbud/internal/disk"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// Record is one home-block update carried by a transaction.
type Record struct {
	// Block is the home location the data belongs to.
	Block int64
	// Data is the new block content.
	Data []byte
}

// CheckpointFunc writes a batch of records to their home locations and
// returns the simulated cost. The journal calls it when the region fills or
// when the owner forces a checkpoint. Records arrive deduplicated (last
// write per block wins) and sorted by home block.
type CheckpointFunc func(records []Record) sim.Ns

// Stats counts journal activity.
type Stats struct {
	// Commits is the number of committed transactions.
	Commits int64
	// Records is the number of records committed.
	Records int64
	// JournalBlocks is the number of blocks written to the journal
	// region (records plus one commit block per transaction).
	JournalBlocks int64
	// Checkpoints is the number of checkpoint rounds.
	Checkpoints int64
	// CheckpointBlocks is the number of distinct home blocks written
	// back across all checkpoints.
	CheckpointBlocks int64
}

// Journal is a circular write-ahead log over a region of one disk. It is
// not safe for concurrent use; the owning metadata file system serializes
// transactions.
type Journal struct {
	d          *disk.Disk
	start      int64
	size       int64
	head       int64 // next write offset within the region
	live       int64 // journal blocks holding un-checkpointed txns
	committed  []seqRecord
	seq        int64
	revoked    map[int64]int64 // block → revocation sequence
	revokesNew int             // revokes since the last commit (revoke-block accounting)
	checkpoint CheckpointFunc
	stats      Stats

	// commitHist, when attached, observes every Commit's device cost.
	commitHist *telemetry.Histogram

	// crash, when armed, kills the mount at the journal's named crash
	// points (nil-safe: nil is a no-op).
	crash *crashsim.Injector
}

// seqRecord orders committed records against revocations.
type seqRecord struct {
	Record
	seq int64
}

// New creates a journal over the disk region [start, start+size). The
// checkpoint function must be non-nil. A transaction larger than the region
// can never commit, so size must leave room for the largest expected
// transaction plus its commit block.
func New(d *disk.Disk, start, size int64, checkpoint CheckpointFunc) *Journal {
	if d == nil || checkpoint == nil {
		panic("journal: nil disk or checkpoint function")
	}
	if start < 0 || size < 2 || start+size > d.NBlocks() {
		panic(fmt.Sprintf("journal: bad region [%d,+%d) on %d-block disk", start, size, d.NBlocks()))
	}
	return &Journal{d: d, start: start, size: size, checkpoint: checkpoint, revoked: make(map[int64]int64)}
}

// Revoke marks a block's journaled contents void: a freed metadata block
// must be neither checkpointed to its home location nor replayed after a
// crash — otherwise its stale bytes resurrect when the block is
// reallocated (ext3's revoke records exist for exactly this). Writes
// committed after the revocation take effect normally. The revoke itself
// occupies journal space, charged as one revoke block per commit that
// carries revocations.
func (j *Journal) Revoke(block int64) {
	j.seq++
	j.revoked[block] = j.seq
	j.revokesNew++
}

// Stats returns a snapshot of the counters.
func (j *Journal) Stats() Stats { return j.stats }

// SetCrashInjector arms the journal's crash points for a sweep run.
func (j *Journal) SetCrashInjector(in *crashsim.Injector) { j.crash = in }

// Instrument publishes the journal counters into the registry and attaches
// a per-commit latency histogram. The journal is serialized by its owning
// metadata file system, so the collectors read its counters unlocked the
// same way Stats does.
func (j *Journal) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	j.commitHist = reg.Histogram("journal_commit_ns", labels)
	reg.CounterFunc("journal_commits", labels, func() int64 { return j.stats.Commits })
	reg.CounterFunc("journal_records", labels, func() int64 { return j.stats.Records })
	reg.CounterFunc("journal_blocks", labels, func() int64 { return j.stats.JournalBlocks })
	reg.CounterFunc("journal_checkpoints", labels, func() int64 { return j.stats.Checkpoints })
	reg.CounterFunc("journal_checkpoint_blocks", labels, func() int64 { return j.stats.CheckpointBlocks })
}

// PendingRecords returns the number of committed-but-unchekpointed records,
// a test hook.
func (j *Journal) PendingRecords() int { return len(j.committed) }

// Commit durably appends a transaction (its records plus a commit block)
// to the journal region and returns the simulated cost. If the region
// cannot hold the transaction, a checkpoint is forced first — exactly the
// jbd behaviour whose frequency the region size controls.
func (j *Journal) Commit(records []Record) (sim.Ns, error) {
	if len(records) == 0 {
		return 0, nil
	}
	need := int64(len(records)) + 1
	if j.revokesNew > 0 {
		need++ // the revoke block carrying pending revocations
		j.revokesNew = 0
	}
	if need > j.size {
		return 0, fmt.Errorf("journal: transaction of %d blocks exceeds region of %d", need, j.size)
	}
	var cost sim.Ns
	if j.live+need > j.size {
		cost += j.Checkpoint()
	}
	// Crash points: the journal's commit block doubles as the
	// transaction's checksum (jbd2's commit record). Power failing
	// anywhere in the record blocks — torn, lost, or misdirected — leaves
	// the commit block unwritten or unverifiable, so the transaction
	// simply never committed. Only a fully persisted burst at the
	// commit-block point makes it durable before the lights go out.
	if _, ok := j.crash.Hit(crashsim.PtJournalAppendRecs, need); ok {
		j.crash.Kill()
	}
	if dmg, ok := j.crash.Hit(crashsim.PtJournalAppendCommit, need); ok {
		if dmg.AllPersisted() {
			for _, r := range cloneRecords(records) {
				j.seq++
				j.committed = append(j.committed, seqRecord{Record: r, seq: j.seq})
			}
		}
		j.crash.Kill()
	}
	// Sequential append, wrapping at the region end.
	remaining := need
	at := j.head
	for remaining > 0 {
		run := remaining
		if at+run > j.size {
			run = j.size - at
		}
		cost += j.d.Access(j.start+at, run, true)
		at = (at + run) % j.size
		remaining -= run
	}
	j.head = at
	j.live += need
	for _, r := range cloneRecords(records) {
		j.seq++
		j.committed = append(j.committed, seqRecord{Record: r, seq: j.seq})
	}
	j.stats.Commits++
	j.stats.Records += int64(len(records))
	j.stats.JournalBlocks += need
	if j.commitHist != nil {
		j.commitHist.Observe(cost)
	}
	return cost, nil
}

// Checkpoint writes every committed record to its home location through
// the checkpoint function and resets the region, dropping the revocation
// table (checkpointed state needs no replay). It returns the simulated
// cost.
func (j *Journal) Checkpoint() sim.Ns {
	if len(j.committed) == 0 {
		j.live = 0
		j.revoked = make(map[int64]int64)
		j.revokesNew = 0
		return 0
	}
	batch := j.dedupe()
	var cost sim.Ns
	if len(batch) > 0 {
		cost = j.checkpoint(batch)
	}
	// Crash point: every home block is written back but the journal
	// region has not been reset — the next mount replays the whole batch
	// again. Replay idempotence (full-block records, last-write-wins)
	// makes the double apply harmless; the sweep proves it.
	if _, ok := j.crash.Hit(crashsim.PtJournalCheckpointReset, 0); ok {
		j.crash.Kill()
	}
	j.stats.Checkpoints++
	j.stats.CheckpointBlocks += int64(len(batch))
	j.committed = nil
	j.revoked = make(map[int64]int64)
	j.revokesNew = 0
	j.live = 0
	return cost
}

// Replay returns the committed-but-unchekpointed records, deduplicated,
// revocations applied, sorted — what crash recovery would re-apply from
// the journal region.
func (j *Journal) Replay() []Record {
	return j.dedupe()
}

// dedupe keeps the last effective write per block — dropping writes
// revoked after they were committed — and sorts by home block.
func (j *Journal) dedupe() []Record {
	last := make(map[int64]seqRecord, len(j.committed))
	for _, r := range j.committed {
		last[r.Block] = r
	}
	out := make([]Record, 0, len(last))
	for b, r := range last {
		if rev, ok := j.revoked[b]; ok && r.seq < rev {
			continue
		}
		out = append(out, Record{Block: b, Data: r.Data})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Block < out[k].Block })
	return out
}

// cloneRecords deep-copies record payloads so later caller mutations cannot
// alter journal contents.
func cloneRecords(records []Record) []Record {
	out := make([]Record, len(records))
	for i, r := range records {
		data := make([]byte, len(r.Data))
		copy(data, r.Data)
		out[i] = Record{Block: r.Block, Data: data}
	}
	return out
}
