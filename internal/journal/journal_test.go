package journal

import (
	"fmt"
	"testing"

	"redbud/internal/disk"
	"redbud/internal/sim"
)

func newJournal(t *testing.T, size int64, cp CheckpointFunc) (*Journal, *disk.Disk) {
	t.Helper()
	d := disk.New(disk.DefaultConfig(), 1<<18)
	if cp == nil {
		cp = func([]Record) sim.Ns { return 0 }
	}
	return New(d, 1, size, cp), d
}

func rec(block int64, b byte) Record {
	return Record{Block: block, Data: []byte{b}}
}

func TestCommitAppendsSequentially(t *testing.T) {
	j, d := newJournal(t, 256, nil)
	if _, err := j.Commit([]Record{rec(1000, 1), rec(2000, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Commit([]Record{rec(3000, 3)}); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	// First commit positions once (cold head); the second continues
	// sequentially.
	if st.SeqAccesses == 0 {
		t.Fatalf("journal appends should be sequential: %+v", st)
	}
	js := j.Stats()
	if js.Commits != 2 || js.Records != 3 || js.JournalBlocks != 5 {
		t.Fatalf("stats = %+v", js)
	}
}

func TestCheckpointDedupesLastWriteWins(t *testing.T) {
	var got []Record
	j, _ := newJournal(t, 256, func(rs []Record) sim.Ns {
		got = append([]Record(nil), rs...)
		return 0
	})
	j.Commit([]Record{rec(5, 1), rec(9, 1)})
	j.Commit([]Record{rec(5, 2)})
	j.Checkpoint()
	if len(got) != 2 {
		t.Fatalf("checkpoint batch = %v, want 2 records", got)
	}
	if got[0].Block != 5 || got[0].Data[0] != 2 {
		t.Fatalf("block 5 should carry the last write, got %v", got[0])
	}
	if got[1].Block != 9 {
		t.Fatalf("batch should be sorted by block: %v", got)
	}
	if j.PendingRecords() != 0 {
		t.Fatal("checkpoint should clear pending records")
	}
}

func TestRegionFullForcesCheckpoint(t *testing.T) {
	checkpoints := 0
	j, _ := newJournal(t, 16, func([]Record) sim.Ns {
		checkpoints++
		return 0
	})
	// Each commit consumes 3+1 blocks; the 16-block region fits 4.
	for i := 0; i < 10; i++ {
		records := []Record{rec(int64(i)*10, 0), rec(int64(i)*10+1, 0), rec(int64(i)*10+2, 0)}
		if _, err := j.Commit(records); err != nil {
			t.Fatal(err)
		}
	}
	if checkpoints != 2 {
		t.Fatalf("checkpoints = %d, want 2 (forced every 4 commits)", checkpoints)
	}
}

func TestOversizedTransactionRejected(t *testing.T) {
	j, _ := newJournal(t, 4, nil)
	var records []Record
	for i := 0; i < 5; i++ {
		records = append(records, rec(int64(i), 0))
	}
	if _, err := j.Commit(records); err == nil {
		t.Fatal("transaction larger than region should fail")
	}
}

func TestReplayReturnsCommittedState(t *testing.T) {
	j, _ := newJournal(t, 256, nil)
	j.Commit([]Record{rec(1, 10), rec(2, 20)})
	j.Commit([]Record{rec(1, 11)})
	rs := j.Replay()
	if len(rs) != 2 || rs[0].Data[0] != 11 || rs[1].Data[0] != 20 {
		t.Fatalf("Replay = %v", rs)
	}
	// Replay is non-destructive.
	if j.PendingRecords() != 3 {
		t.Fatalf("PendingRecords = %d, want 3", j.PendingRecords())
	}
}

func TestCommitCopiesPayloads(t *testing.T) {
	j, _ := newJournal(t, 256, nil)
	data := []byte{42}
	j.Commit([]Record{{Block: 7, Data: data}})
	data[0] = 99
	if rs := j.Replay(); rs[0].Data[0] != 42 {
		t.Fatal("journal must deep-copy record payloads")
	}
}

func TestEmptyCommitIsFree(t *testing.T) {
	j, d := newJournal(t, 256, nil)
	cost, err := j.Commit(nil)
	if err != nil || cost != 0 {
		t.Fatalf("empty commit = (%d,%v), want (0,nil)", cost, err)
	}
	if d.Stats().Requests != 0 {
		t.Fatal("empty commit should not touch the disk")
	}
}

func TestWrapAroundKeepsAccounting(t *testing.T) {
	j, _ := newJournal(t, 10, nil)
	// 4-block transactions; region holds 2 at a time and wraps.
	for i := 0; i < 7; i++ {
		records := []Record{rec(int64(i), 0), rec(int64(i)+100, 0), rec(int64(i)+200, 0)}
		if _, err := j.Commit(records); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if j.Stats().JournalBlocks != 28 {
		t.Fatalf("JournalBlocks = %d, want 28", j.Stats().JournalBlocks)
	}
}

func TestRevokeSuppressesCheckpointAndReplay(t *testing.T) {
	var applied []Record
	j, _ := newJournal(t, 256, func(rs []Record) sim.Ns {
		applied = append(applied, rs...)
		return 0
	})
	j.Commit([]Record{rec(7, 1), rec(8, 2)})
	// Block 7 is freed: its journaled write must be neither replayed
	// nor checkpointed — the ext3 revoke-record semantics.
	j.Revoke(7)
	if rs := j.Replay(); len(rs) != 1 || rs[0].Block != 8 {
		t.Fatalf("Replay after revoke = %v, want only block 8", rs)
	}
	j.Checkpoint()
	if len(applied) != 1 || applied[0].Block != 8 {
		t.Fatalf("checkpoint applied %v, want only block 8", applied)
	}
}

func TestWriteAfterRevokeWins(t *testing.T) {
	j, _ := newJournal(t, 256, nil)
	j.Commit([]Record{rec(7, 1)})
	j.Revoke(7)                   // freed...
	j.Commit([]Record{rec(7, 9)}) // ...then reallocated and rewritten
	rs := j.Replay()
	if len(rs) != 1 || rs[0].Data[0] != 9 {
		t.Fatalf("Replay = %v, want the post-revoke write", rs)
	}
}

func TestRevokeChargesJournalSpace(t *testing.T) {
	j, _ := newJournal(t, 256, nil)
	j.Revoke(5)
	j.Commit([]Record{rec(1, 1)})
	// 1 record + 1 commit + 1 revoke block.
	if got := j.Stats().JournalBlocks; got != 3 {
		t.Fatalf("JournalBlocks = %d, want 3 (record+commit+revoke)", got)
	}
	// The next commit without revokes is back to 2 blocks.
	j.Commit([]Record{rec(2, 1)})
	if got := j.Stats().JournalBlocks; got != 5 {
		t.Fatalf("JournalBlocks = %d, want 5", got)
	}
}

func TestCheckpointClearsRevocations(t *testing.T) {
	j, _ := newJournal(t, 256, nil)
	j.Commit([]Record{rec(7, 1)})
	j.Revoke(7)
	j.Checkpoint()
	// A fresh write to block 7 after the checkpoint is fully live.
	j.Commit([]Record{rec(7, 5)})
	rs := j.Replay()
	if len(rs) != 1 || rs[0].Data[0] != 5 {
		t.Fatalf("Replay = %v, want the new write to 7", rs)
	}
}

func ExampleJournal() {
	d := disk.New(disk.DefaultConfig(), 4096)
	j := New(d, 1, 64, func(rs []Record) sim.Ns {
		fmt.Printf("checkpoint of %d blocks\n", len(rs))
		return 0
	})
	j.Commit([]Record{{Block: 100, Data: []byte("inode")}})
	j.Commit([]Record{{Block: 100, Data: []byte("inode v2")}, {Block: 200, Data: []byte("dirent")}})
	j.Checkpoint()
	// Output: checkpoint of 2 blocks
}
