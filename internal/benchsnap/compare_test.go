package benchsnap

import (
	"bytes"
	"strings"
	"testing"
)

func snapWith(counters map[string]int64, wallNs int64, simNs int64) *Snapshot {
	return &Snapshot{
		Schema: SchemaVersion,
		Name:   "t",
		Scale:  1,
		Experiments: []Experiment{{
			Name:     "fig6a",
			WallNs:   wallNs,
			SimNs:    simNs,
			Counters: counters,
		}},
	}
}

func findDelta(r Result, metric string) *Delta {
	for i := range r.Deltas {
		if r.Deltas[i].Metric == metric {
			return &r.Deltas[i]
		}
	}
	return nil
}

func TestCompareIdenticalRunsZeroDrift(t *testing.T) {
	a := snapWith(map[string]int64{"disk_positionings{layer=disk}": 100}, 111, 5000)
	b := snapWith(map[string]int64{"disk_positionings{layer=disk}": 100}, 999, 5000)
	res := Compare(a, b, Options{Tolerance: -1})
	if res.SimDrifted != 0 || res.Regressions != 0 || res.Failed {
		t.Fatalf("identical sim content must show zero drift: %+v", res)
	}
	// Wall-clock difference is reported but never drifts or fails.
	if d := findDelta(res, "wall_ns"); d == nil || d.Regression || d.Class != ClassVolatile {
		t.Fatalf("wall_ns delta = %+v", d)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "zero simulated-metric drift") {
		t.Fatalf("report = %q", buf.String())
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	// Cost metric at old=1000, tolerance 5%: growth to exactly 1050 is
	// allowed (boundary inclusive), 1049 is allowed, 1051 regresses.
	for _, tc := range []struct {
		name    string
		newVal  int64
		regress bool
	}{
		{"equal", 1000, false},
		{"at-tolerance", 1050, false},
		{"just-under", 1049, false},
		{"just-over", 1051, true},
		{"improvement", 900, false}, // cost metrics never fail downward
	} {
		a := snapWith(map[string]int64{"rpc_calls{op=obj-write}": 1000}, 0, 0)
		b := snapWith(map[string]int64{"rpc_calls{op=obj-write}": tc.newVal}, 0, 0)
		res := Compare(a, b, Options{Tolerance: 0.05})
		if got := res.Regressions > 0; got != tc.regress {
			t.Errorf("%s: regressions=%d, want regression=%v", tc.name, res.Regressions, tc.regress)
		}
		if tc.regress && !res.Failed {
			t.Errorf("%s: Failed should be true without WarnOnly", tc.name)
		}
	}
}

func TestCompareInvariantFailsBothDirections(t *testing.T) {
	a := snapWith(map[string]int64{"blocks_written{layer=ost}": 1000}, 0, 0)
	b := snapWith(map[string]int64{"blocks_written{layer=ost}": 900}, 0, 0)
	res := Compare(a, b, Options{Tolerance: 0.05})
	if res.Regressions != 1 {
		t.Fatalf("invariant shrink must regress: %+v", res.Deltas)
	}
}

func TestCompareZeroOldValue(t *testing.T) {
	a := snapWith(map[string]int64{}, 0, 0)
	b := snapWith(map[string]int64{"rpc_timeouts{op=obj-write}": 3}, 0, 0)
	res := Compare(a, b, Options{Tolerance: 0.05})
	d := findDelta(res, "counter/rpc_timeouts{op=obj-write}")
	if d == nil || d.Frac != 1 || !d.Regression {
		t.Fatalf("appearing cost metric = %+v", d)
	}
}

func TestCompareWarnOnly(t *testing.T) {
	a := snapWith(map[string]int64{"rpc_calls{}": 100}, 0, 0)
	b := snapWith(map[string]int64{"rpc_calls{}": 200}, 0, 0)
	res := Compare(a, b, Options{Tolerance: 0.05, WarnOnly: true})
	if res.Regressions != 1 || res.Failed {
		t.Fatalf("warn-only must flag but not fail: %+v", res)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "warn") {
		t.Fatalf("report = %q", out)
	}
}

func TestCompareMissingExperiments(t *testing.T) {
	a := snapWith(nil, 0, 0)
	b := &Snapshot{Schema: SchemaVersion, Experiments: []Experiment{{Name: "fig7"}}}
	res := Compare(a, b, Options{})
	if len(res.Missing) != 2 {
		t.Fatalf("missing = %v, want both sides reported", res.Missing)
	}
}

func TestCompareLayerLatencyClassedAsCost(t *testing.T) {
	mk := func(p99 int64) *Snapshot {
		s := snapWith(nil, 0, 0)
		s.Experiments[0].Layers = []LayerLatency{{Layer: "disk", Count: 10, P99Ns: p99}}
		return s
	}
	res := Compare(mk(1000), mk(2000), Options{Tolerance: 0.05})
	d := findDelta(res, "layer/disk/p99_ns")
	if d == nil || d.Class != ClassCost || !d.Regression {
		t.Fatalf("p99 delta = %+v", d)
	}
	// Latency halving is an improvement, not a regression.
	res = Compare(mk(2000), mk(1000), Options{Tolerance: 0.05})
	if res.Regressions != 0 {
		t.Fatalf("latency improvement flagged: %+v", res.Deltas)
	}
}
