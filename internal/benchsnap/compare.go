package benchsnap

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Metric classes drive the comparison semantics.
type Class string

// Classes:
//
//   - ClassVolatile metrics (wall clock) never fail a comparison; drift is
//     reported at warn level only.
//   - ClassCost metrics (simulated time, latency percentiles, positioning
//     and RPC counts) regress only when they grow beyond tolerance —
//     getting faster is an improvement, not a failure.
//   - ClassInvariant metrics (everything else: block counts, extents,
//     gauges) regress when they drift beyond tolerance in either
//     direction — an unexplained change in work done is a behavior
//     change the trajectory should flag.
const (
	ClassVolatile  Class = "volatile"
	ClassCost      Class = "cost"
	ClassInvariant Class = "invariant"
)

// costMetrics name the counter prefixes whose growth is a regression.
var costMetrics = []string{
	"disk_positionings", "disk_requests", "rpc_calls", "rpc_errors",
	"rpc_retries", "rpc_timeouts", "rpc_exhausted", "mds_rpcs",
	"mds_cpu_ns", "net_bytes",
	// Replication costs: amplification, failure handling, and repair work
	// are all budgeted — unexpected growth is a regression.
	"replica_fanout_writes", "replica_skipped_writes", "replica_failovers",
	"replica_ost_down_events", "replica_repair_blocks", "replica_repair_slices",
}

// Classify assigns a metric key (e.g. "sim_ns", "layer/rpc/p99_ns",
// "counter/disk_positionings{layer=disk}") to its comparison class.
func Classify(key string) Class {
	switch {
	case key == "wall_ns":
		return ClassVolatile
	case key == "sim_ns", strings.HasPrefix(key, "layer/"):
		return ClassCost
	}
	if name, ok := strings.CutPrefix(key, "counter/"); ok {
		for _, c := range costMetrics {
			if strings.HasPrefix(name, c) {
				return ClassCost
			}
		}
	}
	return ClassInvariant
}

// Options tunes a comparison.
type Options struct {
	// Tolerance is the allowed relative drift before a non-volatile
	// metric regresses (0.05 = 5%). Negative means "use the default".
	Tolerance float64
	// WarnOnly downgrades every regression to a warning: Result.Failed
	// stays false. The CI trajectory leg starts here so wall-clock noise
	// and intentional perf changes never block a build.
	WarnOnly bool
}

// DefaultTolerance is the relative drift allowed by default.
const DefaultTolerance = 0.05

// Delta is one metric's movement between two snapshots.
type Delta struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Class      Class   `json:"class"`
	Old        float64 `json:"old"`
	New        float64 `json:"new"`
	// Frac is (new-old)/old, or ±1 when old is zero and new is not.
	Frac float64 `json:"frac"`
	// Regression marks drift beyond tolerance in the failing direction
	// for the metric's class (never set for volatile metrics).
	Regression bool `json:"regression"`
}

// Result is a full comparison.
type Result struct {
	Deltas []Delta
	// Missing lists experiments present in only one snapshot.
	Missing []string
	// SimMetrics and SimDrifted count the deterministic (non-volatile)
	// metrics compared and how many moved at all — "zero simulated-metric
	// drift" on identical runs means SimDrifted == 0.
	SimMetrics int
	SimDrifted int
	// Regressions counts deltas flagged as regressions; Failed is true
	// when Regressions > 0 and the comparison was not warn-only.
	Regressions int
	Failed      bool
}

// flatten renders one experiment as comparable key → value pairs.
func flatten(e Experiment) map[string]float64 {
	out := map[string]float64{
		"wall_ns": float64(e.WallNs),
		"sim_ns":  float64(e.SimNs),
	}
	for k, v := range e.Counters {
		out["counter/"+k] = float64(v)
	}
	for _, l := range e.Layers {
		base := "layer/" + l.Layer + "/"
		out[base+"count"] = float64(l.Count)
		out[base+"mean_ns"] = l.MeanNs
		out[base+"p50_ns"] = float64(l.P50Ns)
		out[base+"p95_ns"] = float64(l.P95Ns)
		out[base+"p99_ns"] = float64(l.P99Ns)
		out[base+"max_ns"] = float64(l.MaxNs)
	}
	for _, ev := range e.Events {
		out["event/"+ev.Layer+"/"+ev.Kind] = float64(ev.Count)
	}
	return out
}

// Compare diffs two snapshots. Experiments are matched by name; metrics
// present on only one side are treated as drifting from zero.
func Compare(old, new *Snapshot, opt Options) Result {
	tol := opt.Tolerance
	if tol < 0 {
		tol = DefaultTolerance
	}
	var res Result

	oldExps := make(map[string]Experiment, len(old.Experiments))
	for _, e := range old.Experiments {
		oldExps[e.Name] = e
	}
	newExps := make(map[string]Experiment, len(new.Experiments))
	for _, e := range new.Experiments {
		newExps[e.Name] = e
	}
	for name := range oldExps {
		if _, ok := newExps[name]; !ok {
			res.Missing = append(res.Missing, name+" (old only)")
		}
	}
	for name := range newExps {
		if _, ok := oldExps[name]; !ok {
			res.Missing = append(res.Missing, name+" (new only)")
		}
	}
	sort.Strings(res.Missing)

	for _, ne := range new.Experiments {
		oe, ok := oldExps[ne.Name]
		if !ok {
			continue
		}
		ov, nv := flatten(oe), flatten(ne)
		keys := make([]string, 0, len(ov))
		seen := make(map[string]bool, len(ov))
		for k := range ov {
			keys = append(keys, k)
			seen[k] = true
		}
		for k := range nv {
			if !seen[k] {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			o, n := ov[k], nv[k]
			class := Classify(k)
			if class != ClassVolatile {
				res.SimMetrics++
			}
			if o == n {
				continue
			}
			var frac float64
			switch {
			case o != 0:
				frac = (n - o) / o
			case n > 0:
				frac = 1
			default:
				frac = -1
			}
			d := Delta{Experiment: ne.Name, Metric: k, Class: class, Old: o, New: n, Frac: frac}
			switch class {
			case ClassVolatile:
				// reported, never failing
			case ClassCost:
				d.Regression = frac > tol
			default:
				d.Regression = frac > tol || frac < -tol
			}
			if class != ClassVolatile {
				res.SimDrifted++
			}
			if d.Regression {
				res.Regressions++
			}
			res.Deltas = append(res.Deltas, d)
		}
	}
	res.Failed = res.Regressions > 0 && !opt.WarnOnly
	return res
}

// WallDelta is one experiment's wall-clock movement between two snapshots.
type WallDelta struct {
	Experiment string
	OldNs      int64
	NewNs      int64
	// Speedup is old/new: above 1 the new snapshot is faster.
	Speedup float64
}

// WallDeltas extracts the per-experiment wall-clock deltas for experiments
// present in both snapshots, in the new snapshot's order.
func WallDeltas(old, new *Snapshot) []WallDelta {
	oldExps := make(map[string]Experiment, len(old.Experiments))
	for _, e := range old.Experiments {
		oldExps[e.Name] = e
	}
	var out []WallDelta
	for _, ne := range new.Experiments {
		oe, ok := oldExps[ne.Name]
		if !ok || oe.WallNs <= 0 || ne.WallNs <= 0 {
			continue
		}
		out = append(out, WallDelta{
			Experiment: ne.Name,
			OldNs:      oe.WallNs,
			NewNs:      ne.WallNs,
			Speedup:    float64(oe.WallNs) / float64(ne.WallNs),
		})
	}
	return out
}

// WriteWallTable renders the wall-clock deltas as a table with a total
// row. Wall clock is volatile run to run; the table is a report, not a
// gate.
func WriteWallTable(w io.Writer, deltas []WallDelta) error {
	if len(deltas) == 0 {
		_, err := fmt.Fprintln(w, "wall-clock: no common experiments")
		return err
	}
	if _, err := fmt.Fprintf(w, "wall-clock deltas (volatile, informational):\n%-12s %12s %12s %9s\n",
		"experiment", "old ms", "new ms", "speedup"); err != nil {
		return err
	}
	var oldTotal, newTotal int64
	for _, d := range deltas {
		oldTotal += d.OldNs
		newTotal += d.NewNs
		if _, err := fmt.Fprintf(w, "%-12s %12.1f %12.1f %8.2fx\n",
			d.Experiment, float64(d.OldNs)/1e6, float64(d.NewNs)/1e6, d.Speedup); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-12s %12.1f %12.1f %8.2fx\n",
		"total", float64(oldTotal)/1e6, float64(newTotal)/1e6, float64(oldTotal)/float64(newTotal))
	return err
}

// WriteText renders the comparison: regressions first, then the largest
// drifts, then the summary line.
func (r Result) WriteText(w io.Writer, verbose bool) error {
	for _, m := range r.Missing {
		if _, err := fmt.Fprintf(w, "missing: experiment %s\n", m); err != nil {
			return err
		}
	}
	shown := 0
	order := append([]Delta(nil), r.Deltas...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Regression != order[j].Regression {
			return order[i].Regression
		}
		ai, aj := order[i].Frac, order[j].Frac
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		if order[i].Experiment != order[j].Experiment {
			return order[i].Experiment < order[j].Experiment
		}
		return order[i].Metric < order[j].Metric
	})
	const maxQuiet = 20
	for _, d := range order {
		if !verbose && !d.Regression && shown >= maxQuiet {
			break
		}
		tag := "drift"
		if d.Regression {
			tag = "REGRESSION"
		} else if d.Class == ClassVolatile {
			tag = "wall"
		}
		if _, err := fmt.Fprintf(w, "%-10s %-10s %-46s %14.0f -> %14.0f  %+7.1f%%\n",
			tag, d.Experiment, d.Metric, d.Old, d.New, 100*d.Frac); err != nil {
			return err
		}
		shown++
	}
	if !verbose && len(order) > shown {
		if _, err := fmt.Fprintf(w, "... %d more drifts (use -v to list all)\n", len(order)-shown); err != nil {
			return err
		}
	}
	drift := "zero simulated-metric drift"
	if r.SimDrifted > 0 {
		drift = fmt.Sprintf("%d of %d simulated metrics drifted", r.SimDrifted, r.SimMetrics)
	}
	verdict := "ok"
	switch {
	case r.Failed:
		verdict = "FAIL"
	case r.Regressions > 0:
		verdict = "warn"
	}
	_, err := fmt.Fprintf(w, "compare: %s; %d regressions beyond tolerance; %s\n", drift, r.Regressions, verdict)
	return err
}
