package benchsnap

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// syntheticRun drives a fixed, deterministic workload against a fresh
// registry/tracer pair and returns the collected experiment. It exercises
// every record section: counters, layer histograms, series, and events.
func syntheticRun(name string) Experiment {
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(nil)
	col := StartExperiment(reg, tracer)
	col.nowWall = func() time.Time { return time.Unix(0, 12345) }

	calls := reg.Counter("rpc_calls", telemetry.Labels{"layer": "rpc", "op": "obj-write"})
	lat := reg.Histogram("rpc_call_ns", telemetry.Labels{"layer": "rpc", "op": "obj-write"})
	disk := reg.Histogram("disk_service_ns", telemetry.Labels{"layer": "disk"})
	wr := reg.Series("pfs_write_blocks", telemetry.Labels{"layer": "pfs"}, 100, 64)
	for i := 0; i < 10; i++ {
		calls.Inc()
		lat.Observe(int64(1000 + 10*i))
		disk.Observe(int64(500 + i))
		wr.Add(tracer.Now(), 4)
		tracer.Advance(sim.Ns(50))
	}
	reg.Events().Emit(tracer.Now(), "rpc", "retry", "obj-write")
	return col.Finish(name)
}

func TestCollectorRecord(t *testing.T) {
	exp := syntheticRun("fig6a")
	if exp.SimNs != 500 {
		t.Fatalf("sim_ns = %d, want 500", exp.SimNs)
	}
	if exp.Counters["rpc_calls{layer=rpc,op=obj-write}"] != 10 {
		t.Fatalf("counters = %+v", exp.Counters)
	}
	if len(exp.Layers) != 2 {
		t.Fatalf("layers = %+v, want rpc and disk", exp.Layers)
	}
	// Layer order follows the canonical stack: rpc above disk.
	if exp.Layers[0].Layer != "rpc" || exp.Layers[1].Layer != "disk" {
		t.Fatalf("layer order = %q, %q", exp.Layers[0].Layer, exp.Layers[1].Layer)
	}
	if exp.Layers[0].Count != 10 || exp.Layers[0].P50Ns != 1040 || exp.Layers[0].MaxNs != 1090 {
		t.Fatalf("rpc layer = %+v", exp.Layers[0])
	}
	if len(exp.Series) != 1 || exp.Series[0].Name != "pfs_write_blocks{layer=pfs}" {
		t.Fatalf("series = %+v", exp.Series)
	}
	if len(exp.Events) != 1 || exp.Events[0].Count != 1 {
		t.Fatalf("events = %+v", exp.Events)
	}
}

func TestDeterminismModuloWallClock(t *testing.T) {
	render := func() []byte {
		snap := New("det", 1)
		snap.Experiments = append(snap.Experiments, syntheticRun("fig6a"), syntheticRun("fig6b"))
		snap.StripVolatile()
		var buf bytes.Buffer
		if err := snap.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs rendered differently:\n%s\n---\n%s", a, b)
	}
}

func TestGoldenSchema(t *testing.T) {
	snap := New("golden", 0.5)
	snap.Experiments = append(snap.Experiments, syntheticRun("fig6a"))
	snap.StripVolatile()
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with go test -run Golden -update ./internal/benchsnap): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("snapshot schema drifted from golden file.\ngot:\n%s\nwant:\n%s\n(if intentional, bump SchemaVersion and regenerate with -update)", buf.Bytes(), want)
	}

	// The golden document must round-trip through Read.
	rt, err := Read(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Schema != SchemaVersion || len(rt.Experiments) != 1 {
		t.Fatalf("round-trip = %+v", rt)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte(`{"schema":"redbud-bench/999"}`))); err == nil {
		t.Fatal("foreign schema version must be rejected")
	}
	if _, err := Read(bytes.NewReader([]byte(`not json`))); err == nil {
		t.Fatal("malformed input must be rejected")
	}
}
