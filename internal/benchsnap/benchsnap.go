// Package benchsnap defines the BENCH_*.json performance-snapshot format
// and the regression comparison over it — the repository's perf
// trajectory. Every mifbench run can emit a schema-versioned snapshot
// (one record per experiment: wall-clock and simulated totals, the full
// counter set, per-layer latency percentiles, time-series curves, and
// structured-event totals), and `mifbench compare` diffs two snapshots
// against per-metric tolerances so later PRs are judged against a
// committed baseline instead of anecdotes.
//
// Determinism contract: everything in a snapshot except the wall-clock
// fields (Snapshot.CreatedWall, Experiment.WallNs) is derived from the
// simulated clock and deterministic counters, so two identical-seed runs
// produce byte-identical snapshots modulo those fields. StripVolatile
// zeroes them for byte comparison; Compare never fails on them.
package benchsnap

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"redbud/internal/sim"
	"redbud/internal/stats"
	"redbud/internal/telemetry"
)

// SchemaVersion tags snapshot documents; Read rejects other versions.
const SchemaVersion = "redbud-bench/1"

// Snapshot is one BENCH_*.json document: a named benchmark run at a given
// workload scale, one Experiment per mifbench phase.
type Snapshot struct {
	Schema string `json:"schema"`
	// Name labels the run (the experiment selection, e.g. "all").
	Name string `json:"name"`
	// CreatedWall is the wall-clock creation time (RFC 3339). Volatile:
	// excluded from comparison and from StripVolatile'd output.
	CreatedWall string       `json:"created_wall,omitempty"`
	Scale       float64      `json:"scale"`
	Experiments []Experiment `json:"experiments"`
}

// Experiment is one benchmark phase's record.
type Experiment struct {
	Name string `json:"name"`
	// WallNs is the phase's wall-clock duration. Volatile.
	WallNs int64 `json:"wall_ns"`
	// SimNs is the simulated time the phase advanced the trace clock by.
	SimNs sim.Ns `json:"sim_ns"`
	// Counters holds every scalar metric (counters and gauges) keyed
	// "name{labels}" in the registry's canonical form.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Layers is the per-layer latency decomposition: all *_ns histograms
	// of one layer merged sample-exactly, summarized as percentiles.
	Layers []LayerLatency `json:"layers,omitempty"`
	// Series holds the windowed time-series curves (throughput and
	// fragmentation over simulated time).
	Series []SeriesExport `json:"series,omitempty"`
	// Events holds the structured-event totals by layer/kind.
	Events []telemetry.EventCount `json:"events,omitempty"`
}

// LayerLatency summarizes one layer's merged latency distribution.
type LayerLatency struct {
	Layer  string  `json:"layer"`
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P95Ns  int64   `json:"p95_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// SeriesExport is one exported time-series curve.
type SeriesExport struct {
	Name     string                   `json:"name"` // "name{labels}"
	WindowNs sim.Ns                   `json:"window_ns"`
	StartNs  sim.Ns                   `json:"start_ns"`
	Buckets  []telemetry.SeriesBucket `json:"buckets"`
	Dropped  int64                    `json:"dropped,omitempty"`
}

// New builds an empty snapshot stamped with the current wall clock.
func New(name string, scale float64) *Snapshot {
	return &Snapshot{
		Schema:      SchemaVersion,
		Name:        name,
		CreatedWall: time.Now().UTC().Format(time.RFC3339),
		Scale:       scale,
	}
}

// StripVolatile zeroes the wall-clock fields, leaving only deterministic
// content — after it, two identical-seed runs marshal byte-identically.
func (s *Snapshot) StripVolatile() {
	s.CreatedWall = ""
	for i := range s.Experiments {
		s.Experiments[i].WallNs = 0
	}
}

// Write serializes the snapshot as indented JSON.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Read parses and validates a snapshot document.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("benchsnap: parse snapshot: %w", err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchsnap: snapshot schema %q, want %q", s.Schema, SchemaVersion)
	}
	return &s, nil
}

// Collector gathers one experiment's record from a registry and a tracer.
// Construct it at phase start (it remembers the clocks' starting points),
// run the phase, then Finish.
type Collector struct {
	reg       *telemetry.Registry
	tracer    *telemetry.Tracer
	simStart  sim.Ns
	wallStart time.Time
	// nowWall is the wall-clock source, replaceable in tests.
	nowWall func() time.Time
}

// StartExperiment begins collecting: the registry should be freshly
// created for the phase (per-phase records are absolute registry state,
// not deltas), while the tracer's clock may carry over from earlier
// phases — only its advance during the phase is recorded.
func StartExperiment(reg *telemetry.Registry, tracer *telemetry.Tracer) *Collector {
	return &Collector{
		reg:       reg,
		tracer:    tracer,
		simStart:  tracer.Now(),
		wallStart: time.Now(),
		nowWall:   time.Now,
	}
}

// Finish builds the experiment record from the registry's current state.
func (c *Collector) Finish(name string) Experiment {
	exp := Experiment{
		Name:   name,
		WallNs: c.nowWall().Sub(c.wallStart).Nanoseconds(),
		SimNs:  c.tracer.Now() - c.simStart,
	}

	counters := make(map[string]int64)
	for _, m := range c.reg.Snapshot() {
		switch {
		case m.Hist != nil:
			// folded into Layers below, sample-exactly
		case m.Series != nil:
			exp.Series = append(exp.Series, SeriesExport{
				Name:     m.Name + "{" + m.Labels + "}",
				WindowNs: m.Series.WindowNs,
				StartNs:  m.Series.StartNs,
				Buckets:  m.Series.Buckets,
				Dropped:  m.Series.Dropped,
			})
		default:
			counters[m.Name+"{"+m.Labels+"}"] = m.Value
		}
	}
	if len(counters) > 0 {
		exp.Counters = counters
	}
	exp.Layers = layerLatencies(c.reg)
	exp.Events = c.reg.Events().Counts()
	return exp
}

// layerLatencies merges every *_ns histogram by its layer label and
// summarizes each layer as percentiles, ordered by the canonical layer
// stack.
func layerLatencies(reg *telemetry.Registry) []LayerLatency {
	merged := make(map[string]*stats.Dist)
	reg.Histograms(func(name string, labels telemetry.Labels, d stats.Dist) {
		if !strings.HasSuffix(name, "_ns") {
			return
		}
		layer := labels["layer"]
		if layer == "" {
			return
		}
		m := merged[layer]
		if m == nil {
			m = &stats.Dist{}
			merged[layer] = m
		}
		m.Merge(&d)
	})
	out := make([]LayerLatency, 0, len(merged))
	for layer, d := range merged {
		if d.Count() == 0 {
			continue
		}
		out = append(out, LayerLatency{
			Layer:  layer,
			Count:  int64(d.Count()),
			MeanNs: d.Mean(),
			P50Ns:  d.Percentile(50),
			P95Ns:  d.Percentile(95),
			P99Ns:  d.Percentile(99),
			MaxNs:  d.Max(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := telemetry.LayerRank(out[i].Layer), telemetry.LayerRank(out[j].Layer)
		if ri != rj {
			return ri < rj
		}
		return out[i].Layer < out[j].Layer
	})
	return out
}
