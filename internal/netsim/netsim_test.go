package netsim

import (
	"testing"

	"redbud/internal/sim"
)

func TestTransferCost(t *testing.T) {
	l := NewLink(Config{LatencyNs: 100 * sim.Microsecond, BytesPerSec: 100e6})
	// 1 MB at 100 MB/s = 10 ms, plus 0.1 ms latency.
	got := l.Transfer(1e6)
	want := sim.Ns(10.1 * float64(sim.Millisecond))
	if got < want-sim.Microsecond || got > want+sim.Microsecond {
		t.Fatalf("Transfer = %d ns, want ~%d", got, want)
	}
	st := l.Stats()
	if st.Messages != 1 || st.Bytes != 1e6 || st.BusyNs != got {
		t.Fatalf("stats = %+v", st)
	}
}

func TestZeroPayloadCostsLatency(t *testing.T) {
	l := NewLink(GbE())
	if got := l.Transfer(0); got != GbE().LatencyNs {
		t.Fatalf("empty message = %d ns, want %d", got, GbE().LatencyNs)
	}
	if got := l.Transfer(-5); got != GbE().LatencyNs {
		t.Fatalf("negative payload should clamp to zero")
	}
}

func TestRoundTrip(t *testing.T) {
	l := NewLink(GbE())
	rt := l.RoundTrip(1024, 64)
	if rt <= 2*GbE().LatencyNs {
		t.Fatalf("round trip %d ns should exceed two latencies", rt)
	}
	if l.Stats().Messages != 2 {
		t.Fatalf("round trip should be two messages, got %d", l.Stats().Messages)
	}
}

func TestRoundTripAsymmetricSizes(t *testing.T) {
	// A round trip with asymmetric legs costs exactly two latencies plus
	// each direction's own serialization time — the model behind metadata
	// cells (512 each way) and one-way data payloads (payload/0).
	cfg := Config{LatencyNs: 100 * sim.Microsecond, BytesPerSec: 100e6}
	l := NewLink(cfg)
	const out, back = 1 << 20, 512
	got := l.RoundTrip(out, back)
	want := 2*cfg.LatencyNs +
		sim.Ns(float64(out)/cfg.BytesPerSec*float64(sim.Second)) +
		sim.Ns(float64(back)/cfg.BytesPerSec*float64(sim.Second))
	if got < want-sim.Microsecond || got > want+sim.Microsecond {
		t.Fatalf("RoundTrip(%d, %d) = %d ns, want ~%d", out, back, got, want)
	}
	st := l.Stats()
	if st.Messages != 2 || st.Bytes != out+back {
		t.Fatalf("stats = %+v, want 2 messages / %d bytes", st, out+back)
	}
	// Reversing the legs costs the same total: direction only decides
	// which leg pays the serialization.
	l2 := NewLink(cfg)
	if rev := l2.RoundTrip(back, out); rev != got {
		t.Fatalf("reversed legs cost %d ns, forward %d ns", rev, got)
	}
}

func TestFabricLinksAreIsolated(t *testing.T) {
	// Each client owns a point-to-point link: traffic on one link must
	// not appear in any other's counters.
	f := NewFabric(FC400(), 4)
	f.Link(2).Transfer(8e6)
	f.Link(2).Transfer(1e6)
	for i := 0; i < 4; i++ {
		st := f.Link(i).Stats()
		if i == 2 {
			if st.Messages != 2 || st.Bytes != 9e6 {
				t.Fatalf("loaded link stats = %+v", st)
			}
			continue
		}
		if st != (Stats{}) {
			t.Fatalf("idle link %d accumulated %+v", i, st)
		}
	}
	if f.MaxBusy() != f.Link(2).Stats().BusyNs {
		t.Fatal("fabric max busy must come from the only loaded link")
	}
}

func TestFabricParallelism(t *testing.T) {
	f := NewFabric(FC400(), 4)
	for i := 0; i < 4; i++ {
		f.Link(i).Transfer(4e6)
	}
	total := f.TotalStats()
	if total.Messages != 4 {
		t.Fatalf("messages = %d", total.Messages)
	}
	if f.MaxBusy()*4 != total.BusyNs {
		t.Fatalf("equal parallel loads: max %d × 4 should equal sum %d", f.MaxBusy(), total.BusyNs)
	}
	f.Reset()
	if f.TotalStats().Messages != 0 {
		t.Fatal("Reset should zero counters")
	}
	// Link indices wrap.
	if f.Link(7) != f.Link(3) {
		t.Fatal("link indexing should wrap")
	}
}

func TestInvalidConfigsPanic(t *testing.T) {
	for _, cfg := range []Config{{BytesPerSec: 0}, {BytesPerSec: -1}, {BytesPerSec: 1, LatencyNs: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLink(%+v) should panic", cfg)
				}
			}()
			NewLink(cfg)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("empty fabric should panic")
		}
	}()
	NewFabric(GbE(), 0)
}

func TestProfilesSane(t *testing.T) {
	if GbE().BytesPerSec >= FC400().BytesPerSec {
		t.Fatal("FC should be faster than GbE")
	}
	// A 40 MB collective transfer over FC: ~100 ms.
	l := NewLink(FC400())
	got := l.Transfer(40e6)
	if got < 90*sim.Millisecond || got > 110*sim.Millisecond {
		t.Fatalf("40 MB over FC400 = %v ns, want ~100 ms", got)
	}
}
