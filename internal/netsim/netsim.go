// Package netsim models the cluster interconnects of the Redbud testbed:
// the GbE fabric between clients and the MDS ("communications between
// clients and MDS/OST all are GbE constructed by Catalyst 3750 Ethernet
// switches") and the FibreChannel data fabric ("each machine is connected
// to the 32 ports Silk Worm fabric switcher by its own 400MB/s point to
// point link").
//
// A Link charges per-message latency plus bandwidth-limited transfer time
// and accumulates busy time, so harnesses can fold network cost into an
// experiment's elapsed time (as max against the disk timelines: the
// network and the disks pipeline).
package netsim

import (
	"fmt"
	"strconv"
	"sync"

	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// Config holds a link's physical parameters.
type Config struct {
	// LatencyNs is the per-message one-way latency.
	LatencyNs sim.Ns
	// BytesPerSec is the usable bandwidth.
	BytesPerSec float64
}

// GbE returns a gigabit-Ethernet link profile (the MDS fabric).
func GbE() Config {
	return Config{LatencyNs: 100 * sim.Microsecond, BytesPerSec: 117e6}
}

// FC400 returns a 400 MB/s FibreChannel link profile (the data fabric).
func FC400() Config {
	return Config{LatencyNs: 25 * sim.Microsecond, BytesPerSec: 400e6}
}

// Stats holds a link's accumulated counters.
type Stats struct {
	Messages int64
	Bytes    int64
	BusyNs   sim.Ns
}

// Link is one network path. All methods are safe for concurrent use.
type Link struct {
	mu    sync.Mutex
	cfg   Config
	stats Stats

	// transferHist, when attached, observes every Transfer duration.
	transferHist *telemetry.Histogram
}

// NewLink builds a link. It panics on a non-positive bandwidth: a link
// with no capacity is a configuration bug.
func NewLink(cfg Config) *Link {
	if cfg.BytesPerSec <= 0 {
		panic(fmt.Sprintf("netsim: bandwidth %g must be positive", cfg.BytesPerSec))
	}
	if cfg.LatencyNs < 0 {
		panic("netsim: negative latency")
	}
	return &Link{cfg: cfg}
}

// Transfer charges one message of the given payload size and returns its
// simulated duration.
func (l *Link) Transfer(bytes int64) sim.Ns {
	if bytes < 0 {
		bytes = 0
	}
	cost := l.cfg.LatencyNs + sim.Ns(float64(bytes)/l.cfg.BytesPerSec*float64(sim.Second))
	l.mu.Lock()
	l.stats.Messages++
	l.stats.Bytes += bytes
	l.stats.BusyNs += cost
	hist := l.transferHist
	l.mu.Unlock()
	if hist != nil {
		hist.Observe(cost)
	}
	return cost
}

// RoundTrip charges a request/response pair (request header + payload out,
// response header + payload back) and returns its duration.
func (l *Link) RoundTrip(outBytes, backBytes int64) sim.Ns {
	return l.Transfer(outBytes) + l.Transfer(backBytes)
}

// Stats returns a snapshot of the counters.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Reset zeroes the counters for a new measurement phase.
func (l *Link) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats = Stats{}
}

// Instrument publishes the link counters into the registry under the given
// labels and attaches a per-transfer latency histogram.
func (l *Link) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	l.mu.Lock()
	l.transferHist = reg.Histogram("net_transfer_ns", labels)
	l.mu.Unlock()
	reg.CounterFunc("net_messages", labels, func() int64 { return l.Stats().Messages })
	reg.CounterFunc("net_bytes", labels, func() int64 { return l.Stats().Bytes })
	reg.CounterFunc("net_busy_ns", labels, func() int64 { return l.Stats().BusyNs })
}

// Fabric is a set of per-client links sharing one profile — the
// point-to-point fabric of the testbed. The elapsed time of a phase where
// clients drive their links in parallel is the max busy time.
type Fabric struct {
	links []*Link
}

// NewFabric builds n identical links.
func NewFabric(cfg Config, n int) *Fabric {
	if n <= 0 {
		panic("netsim: fabric needs at least one link")
	}
	f := &Fabric{}
	for i := 0; i < n; i++ {
		f.links = append(f.links, NewLink(cfg))
	}
	return f
}

// Link returns client i's link.
func (f *Fabric) Link(i int) *Link { return f.links[i%len(f.links)] }

// Len returns the link count.
func (f *Fabric) Len() int { return len(f.links) }

// MaxBusy returns the largest per-link busy time.
func (f *Fabric) MaxBusy() sim.Ns {
	var max sim.Ns
	for _, l := range f.links {
		if b := l.Stats().BusyNs; b > max {
			max = b
		}
	}
	return max
}

// TotalStats sums the per-link counters.
func (f *Fabric) TotalStats() Stats {
	var total Stats
	for _, l := range f.links {
		s := l.Stats()
		total.Messages += s.Messages
		total.Bytes += s.Bytes
		total.BusyNs += s.BusyNs
	}
	return total
}

// Reset zeroes every link.
func (f *Fabric) Reset() {
	for _, l := range f.links {
		l.Reset()
	}
}

// Instrument instruments every member link, distinguishing them with a
// "link" label on top of the given base labels.
func (f *Fabric) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	for i, l := range f.links {
		l.Instrument(reg, labels.With("link", strconv.Itoa(i)))
	}
}
