package extent

import (
	"reflect"
	"testing"
)

// TestAppendRangeMatchesLookupRange checks the append-into variant returns
// exactly what LookupRange returns, across holes, clips, and empty results,
// and that scratch reuse (dst[:0]) does not change results.
func TestAppendRangeMatchesLookupRange(t *testing.T) {
	var m Map
	for _, e := range []Extent{
		{Logical: 0, Physical: 100, Count: 10},
		{Logical: 20, Physical: 300, Count: 5, Flags: FlagPrealloc},
		{Logical: 40, Physical: 500, Count: 8},
	} {
		if err := m.Insert(e); err != nil {
			t.Fatalf("insert %v: %v", e, err)
		}
	}
	scratch := make([]Extent, 0, 4)
	for _, q := range []struct{ logical, count int64 }{
		{0, 10}, {5, 3}, {8, 20}, {15, 4}, {0, 50}, {100, 5}, {39, 2},
	} {
		want := m.LookupRange(q.logical, q.count)
		scratch = m.AppendRange(scratch[:0], q.logical, q.count)
		if len(want) == 0 && len(scratch) == 0 {
			continue
		}
		if !reflect.DeepEqual(want, scratch) {
			t.Fatalf("AppendRange(%d,+%d) = %v, LookupRange = %v", q.logical, q.count, scratch, want)
		}
	}
}

// TestAppendRangeZeroAllocWarm checks the point of the variant: with a
// warmed scratch slice, range resolution performs no allocation.
func TestAppendRangeZeroAllocWarm(t *testing.T) {
	var m Map
	for i := int64(0); i < 32; i++ {
		// Discontiguous physicals so nothing merges: 32 extents.
		if err := m.Insert(Extent{Logical: i * 4, Physical: i * 100, Count: 2}); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	scratch := make([]Extent, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		scratch = m.AppendRange(scratch[:0], 0, 128)
	})
	if allocs != 0 {
		t.Fatalf("warm AppendRange allocates %.1f objects/op, want 0", allocs)
	}
	if len(scratch) != 32 {
		t.Fatalf("resolved %d extents, want 32", len(scratch))
	}
}
