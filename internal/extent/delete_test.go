package extent

import (
	"testing"
	"testing/quick"
)

// TestDeleteSplitsMidRange deletes from the middle of one extent and checks
// both the split pieces left behind and the removed piece returned.
func TestDeleteSplitsMidRange(t *testing.T) {
	var m Map
	if err := m.Insert(Extent{Logical: 0, Physical: 100, Count: 10}); err != nil {
		t.Fatal(err)
	}
	removed := m.Delete(3, 4)
	if len(removed) != 1 {
		t.Fatalf("removed = %v, want one piece", removed)
	}
	want := Extent{Logical: 3, Physical: 103, Count: 4}
	if removed[0] != want {
		t.Fatalf("removed = %v, want %v", removed[0], want)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	got := m.Extents()
	if len(got) != 2 {
		t.Fatalf("extents after split = %v, want two", got)
	}
	if got[0] != (Extent{Logical: 0, Physical: 100, Count: 3}) {
		t.Fatalf("head piece = %v", got[0])
	}
	if got[1] != (Extent{Logical: 7, Physical: 107, Count: 3}) {
		t.Fatalf("tail piece = %v", got[1])
	}
	if _, ok := m.Lookup(4); ok {
		t.Fatal("deleted block still mapped")
	}
}

// TestReinsertAfterDelete refills a hole punched by Delete at a different
// physical location and checks the mapping and merge behaviour.
func TestReinsertAfterDelete(t *testing.T) {
	var m Map
	if err := m.Insert(Extent{Logical: 0, Physical: 100, Count: 10}); err != nil {
		t.Fatal(err)
	}
	m.Delete(3, 4)
	// Refill elsewhere: must coexist with the split neighbours.
	if err := m.Insert(Extent{Logical: 3, Physical: 500, Count: 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (discontiguous refill cannot merge)", m.Len())
	}
	for l, wantPhys := range map[int64]int64{2: 102, 3: 500, 6: 503, 7: 107} {
		p, ok := m.Lookup(l)
		if !ok || p != wantPhys {
			t.Fatalf("Lookup(%d) = %d,%v, want %d", l, p, ok, wantPhys)
		}
	}
	// Refill at the original physical home merges all three back into one.
	m.Delete(3, 4)
	if err := m.Insert(Extent{Logical: 3, Physical: 103, Count: 4}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || m.MappedBlocks() != 10 {
		t.Fatalf("Len = %d mapped = %d, want contiguous refill to merge to one extent",
			m.Len(), m.MappedBlocks())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNextAt(t *testing.T) {
	var m Map
	m.Insert(Extent{Logical: 10, Physical: 100, Count: 5})
	m.Insert(Extent{Logical: 20, Physical: 300, Count: 5})
	cases := []struct {
		from int64
		want Extent
		ok   bool
	}{
		{0, Extent{Logical: 10, Physical: 100, Count: 5}, true},  // hole: next whole extent
		{10, Extent{Logical: 10, Physical: 100, Count: 5}, true}, // exact start
		{12, Extent{Logical: 12, Physical: 102, Count: 3}, true}, // clipped mid-extent
		{15, Extent{Logical: 20, Physical: 300, Count: 5}, true}, // hole between extents
		{24, Extent{Logical: 24, Physical: 304, Count: 1}, true}, // last block
		{25, Extent{}, false}, // past the end
	}
	for _, c := range cases {
		got, ok := m.NextAt(c.from)
		if ok != c.ok || got != c.want {
			t.Errorf("NextAt(%d) = %v,%v, want %v,%v", c.from, got, ok, c.want, c.ok)
		}
	}
}

// TestDeleteReinsertProperty drives random delete/reinsert cycles (the
// defrag commit sequence) and checks the map invariants plus full-coverage
// mapping survive every round.
func TestDeleteReinsertProperty(t *testing.T) {
	fn := func(seed uint16, ops uint8) bool {
		var m Map
		const size = 64
		if err := m.Insert(Extent{Logical: 0, Physical: 0, Count: size}); err != nil {
			return false
		}
		rng := int64(seed)
		next := func(mod int64) int64 {
			rng = (rng*6364136223846793005 + 1442695040888963407) & (1<<62 - 1)
			return rng % mod
		}
		phys := int64(1000)
		for i := 0; i < int(ops%32)+1; i++ {
			logical := next(size)
			count := next(size-logical) + 1
			removed := m.Delete(logical, count)
			var n int64
			for _, e := range removed {
				n += e.Count
			}
			if n != count {
				return false
			}
			// Reinsert each removed piece at a fresh physical home,
			// preserving its logical position — the migration commit.
			for _, e := range removed {
				if m.Insert(Extent{Logical: e.Logical, Physical: phys, Count: e.Count, Flags: e.Flags}) != nil {
					return false
				}
				phys += e.Count + 1 // gap prevents accidental merges
			}
			if m.Validate() != nil || m.MappedBlocks() != size {
				return false
			}
		}
		// Every logical block must still resolve somewhere.
		for l := int64(0); l < size; l++ {
			if _, ok := m.Lookup(l); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}
