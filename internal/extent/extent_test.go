package extent

import (
	"testing"
	"testing/quick"

	"redbud/internal/sim"
)

func mustInsert(t *testing.T, m *Map, e Extent) {
	t.Helper()
	if err := m.Insert(e); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAndLookup(t *testing.T) {
	var m Map
	mustInsert(t, &m, Extent{Logical: 0, Physical: 1000, Count: 10})
	mustInsert(t, &m, Extent{Logical: 20, Physical: 2000, Count: 5})
	if p, ok := m.Lookup(3); !ok || p != 1003 {
		t.Fatalf("Lookup(3) = (%d,%v), want (1003,true)", p, ok)
	}
	if p, ok := m.Lookup(22); !ok || p != 2002 {
		t.Fatalf("Lookup(22) = (%d,%v), want (2002,true)", p, ok)
	}
	if _, ok := m.Lookup(15); ok {
		t.Fatal("Lookup in hole should miss")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestInsertMergesContiguous(t *testing.T) {
	var m Map
	mustInsert(t, &m, Extent{Logical: 0, Physical: 100, Count: 10})
	mustInsert(t, &m, Extent{Logical: 10, Physical: 110, Count: 10})
	if m.Len() != 1 {
		t.Fatalf("contiguous inserts should merge: Len = %d", m.Len())
	}
	// Fill a gap that bridges two extents.
	mustInsert(t, &m, Extent{Logical: 30, Physical: 130, Count: 10})
	mustInsert(t, &m, Extent{Logical: 20, Physical: 120, Count: 10})
	if m.Len() != 1 {
		t.Fatalf("bridging insert should merge both sides: Len = %d, extents %v", m.Len(), m.Extents())
	}
	if _, merges := m.Ops(); merges != 3 {
		t.Fatalf("merges = %d, want 3", merges)
	}
}

func TestInsertDoesNotMergeDiscontiguousPhysical(t *testing.T) {
	var m Map
	mustInsert(t, &m, Extent{Logical: 0, Physical: 100, Count: 10})
	// Logically adjacent but physically elsewhere: the fragmentation case.
	mustInsert(t, &m, Extent{Logical: 10, Physical: 5000, Count: 10})
	if m.Len() != 2 {
		t.Fatalf("physically discontiguous extents must not merge: Len = %d", m.Len())
	}
}

func TestInsertDoesNotMergeAcrossFlags(t *testing.T) {
	var m Map
	mustInsert(t, &m, Extent{Logical: 0, Physical: 100, Count: 10})
	mustInsert(t, &m, Extent{Logical: 10, Physical: 110, Count: 10, Flags: FlagPrealloc})
	if m.Len() != 2 {
		t.Fatalf("different flags must not merge: Len = %d", m.Len())
	}
}

func TestInsertOverlapRejected(t *testing.T) {
	var m Map
	mustInsert(t, &m, Extent{Logical: 10, Physical: 100, Count: 10})
	if err := m.Insert(Extent{Logical: 15, Physical: 500, Count: 10}); err == nil {
		t.Fatal("overlapping insert should fail")
	}
	if err := m.Insert(Extent{Logical: 5, Physical: 500, Count: 6}); err == nil {
		t.Fatal("overlapping insert should fail")
	}
	if err := m.Insert(Extent{Logical: 0, Physical: 500, Count: 0}); err == nil {
		t.Fatal("zero-count insert should fail")
	}
}

func TestLookupRangeClipsAndSkipsHoles(t *testing.T) {
	var m Map
	mustInsert(t, &m, Extent{Logical: 0, Physical: 100, Count: 10})
	mustInsert(t, &m, Extent{Logical: 20, Physical: 300, Count: 10})
	got := m.LookupRange(5, 20) // covers [5,25): tail of first, hole, head of second
	if len(got) != 2 {
		t.Fatalf("LookupRange = %v, want 2 extents", got)
	}
	if got[0] != (Extent{Logical: 5, Physical: 105, Count: 5}) {
		t.Fatalf("got[0] = %v", got[0])
	}
	if got[1] != (Extent{Logical: 20, Physical: 300, Count: 5}) {
		t.Fatalf("got[1] = %v", got[1])
	}
}

func TestDeleteSplitsExtents(t *testing.T) {
	var m Map
	mustInsert(t, &m, Extent{Logical: 0, Physical: 100, Count: 30})
	removed := m.Delete(10, 10)
	if len(removed) != 1 || removed[0].Physical != 110 || removed[0].Count != 10 {
		t.Fatalf("removed = %v", removed)
	}
	if m.Len() != 2 || m.MappedBlocks() != 20 {
		t.Fatalf("after delete: Len=%d mapped=%d, want 2/20", m.Len(), m.MappedBlocks())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deleting a hole is a no-op.
	if removed := m.Delete(10, 10); removed != nil {
		t.Fatalf("deleting a hole returned %v", removed)
	}
}

func TestLastPhysical(t *testing.T) {
	var m Map
	if _, ok := m.LastPhysical(); ok {
		t.Fatal("empty map has no last physical")
	}
	mustInsert(t, &m, Extent{Logical: 0, Physical: 500, Count: 4})
	mustInsert(t, &m, Extent{Logical: 100, Physical: 200, Count: 8})
	if p, ok := m.LastPhysical(); !ok || p != 208 {
		t.Fatalf("LastPhysical = (%d,%v), want (208,true)", p, ok)
	}
}

// Property: after any sequence of valid inserts and deletes the map
// validates, and every inserted-and-not-deleted logical block resolves to
// the physical block it was inserted with.
func TestMapInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		var m Map
		// Model: logical block -> physical block.
		model := map[int64]int64{}
		for op := 0; op < 200; op++ {
			if rng.Intn(4) == 0 && len(model) > 0 {
				lo := rng.Int63n(256)
				cnt := rng.Int63n(16) + 1
				m.Delete(lo, cnt)
				for b := lo; b < lo+cnt; b++ {
					delete(model, b)
				}
				continue
			}
			lo := rng.Int63n(256)
			cnt := rng.Int63n(16) + 1
			phys := rng.Int63n(100000)
			// Skip inserts that would overlap the model.
			conflict := false
			for b := lo; b < lo+cnt; b++ {
				if _, ok := model[b]; ok {
					conflict = true
					break
				}
			}
			if conflict {
				if err := m.Insert(Extent{Logical: lo, Physical: phys, Count: cnt}); err == nil {
					return false // overlap must be rejected
				}
				continue
			}
			if err := m.Insert(Extent{Logical: lo, Physical: phys, Count: cnt}); err != nil {
				return false
			}
			for b := lo; b < lo+cnt; b++ {
				model[b] = phys + (b - lo)
			}
		}
		if m.Validate() != nil {
			return false
		}
		if m.MappedBlocks() != int64(len(model)) {
			return false
		}
		for b, want := range model {
			got, ok := m.Lookup(b)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
