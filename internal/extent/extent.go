// Package extent implements the file layout mapping of a block-based
// parallel file system: the indirection from file logical block numbers to
// on-disk physical blocks, expressed as extents.
//
// Extent counts are the paper's fragmentation currency: Table I reports the
// "number of segments" (extents) each preallocation policy generates, and
// the MDS CPU model charges per extent operated on ("the less extents in
// the parallel file systems to be operated, such as merging and indexing,
// the less CPU load involved in MDS").
package extent

import (
	"fmt"
	"sort"
)

// Extent maps the logical block range [Logical, Logical+Count) of a file to
// the physical range [Physical, Physical+Count) of a device. This mirrors
// the Redbud layout element, a tuple of [file offset, group offset, length,
// flags].
type Extent struct {
	Logical  int64
	Physical int64
	Count    int64
	Flags    uint32
}

// Extent flags.
const (
	// FlagPrealloc marks blocks preallocated but not yet written
	// (unwritten extents in ext4 terms).
	FlagPrealloc uint32 = 1 << iota
)

// InlineSummary is the number of summary extents a file's MDS record keeps
// inline; it matches the inode tail capacity.
const InlineSummary = 4

// LogicalEnd returns the logical block just past the extent.
func (e Extent) LogicalEnd() int64 { return e.Logical + e.Count }

// PhysicalEnd returns the physical block just past the extent.
func (e Extent) PhysicalEnd() int64 { return e.Physical + e.Count }

// String renders the extent as [logical→physical,+count].
func (e Extent) String() string {
	return fmt.Sprintf("[%d→%d,+%d]", e.Logical, e.Physical, e.Count)
}

// contiguousWith reports whether o continues e both logically and
// physically with identical flags, i.e. the two can merge into one extent.
func (e Extent) contiguousWith(o Extent) bool {
	return e.LogicalEnd() == o.Logical && e.PhysicalEnd() == o.Physical && e.Flags == o.Flags
}

// Map is the extent map of one file (or of one stripe component of a file).
// Extents are kept sorted by logical block and non-overlapping; inserts that
// continue an existing extent merge into it. The zero value is an empty
// map, ready to use. Map is not safe for concurrent use; callers (the MDS)
// serialize access per file.
type Map struct {
	ext []Extent

	// inserts and merges count the mapping operations performed, feeding
	// the MDS CPU model.
	inserts int64
	merges  int64
}

// Len returns the number of extents — the paper's "segment count".
func (m *Map) Len() int { return len(m.ext) }

// Ops returns the cumulative insert and merge operation counts.
func (m *Map) Ops() (inserts, merges int64) { return m.inserts, m.merges }

// Extents returns a copy of the extents in logical order.
func (m *Map) Extents() []Extent {
	out := make([]Extent, len(m.ext))
	copy(out, m.ext)
	return out
}

// search returns the index of the first extent with LogicalEnd > logical.
func (m *Map) search(logical int64) int {
	return sort.Search(len(m.ext), func(i int) bool { return m.ext[i].LogicalEnd() > logical })
}

// Insert adds e to the map, merging with logically-and-physically
// contiguous neighbours. Inserting a range that overlaps an existing
// mapping is an error: a file's logical blocks are mapped exactly once, and
// remapping without deletion indicates corruption.
func (m *Map) Insert(e Extent) error {
	if e.Count <= 0 || e.Logical < 0 || e.Physical < 0 {
		return fmt.Errorf("extent: invalid insert %v", e)
	}
	i := m.search(e.Logical)
	if i < len(m.ext) && m.ext[i].Logical < e.LogicalEnd() {
		return fmt.Errorf("extent: insert %v overlaps %v", e, m.ext[i])
	}
	m.inserts++
	// Try merging with the predecessor and/or successor.
	mergedPrev := i > 0 && m.ext[i-1].contiguousWith(e)
	mergedNext := i < len(m.ext) && e.contiguousWith(m.ext[i])
	switch {
	case mergedPrev && mergedNext:
		m.ext[i-1].Count += e.Count + m.ext[i].Count
		m.ext = append(m.ext[:i], m.ext[i+1:]...)
		m.merges += 2
	case mergedPrev:
		m.ext[i-1].Count += e.Count
		m.merges++
	case mergedNext:
		m.ext[i].Logical = e.Logical
		m.ext[i].Physical = e.Physical
		m.ext[i].Count += e.Count
		m.merges++
	default:
		m.ext = append(m.ext, Extent{})
		copy(m.ext[i+1:], m.ext[i:])
		m.ext[i] = e
	}
	return nil
}

// Lookup resolves one logical block to its physical block.
func (m *Map) Lookup(logical int64) (physical int64, ok bool) {
	i := m.search(logical)
	if i < len(m.ext) && m.ext[i].Logical <= logical {
		return m.ext[i].Physical + (logical - m.ext[i].Logical), true
	}
	return 0, false
}

// LookupRange resolves the logical range [logical, logical+count) into the
// physical extents covering it, clipped to the range. Unmapped gaps (holes)
// are skipped; callers that need hole detection compare the covered length.
func (m *Map) LookupRange(logical, count int64) []Extent {
	return m.AppendRange(nil, logical, count)
}

// AppendRange is LookupRange appending into dst, so per-lookup hot paths
// (every block write and read resolves a range) can reuse one scratch slice
// instead of allocating per call. It returns the extended slice; dst[:0]
// reuse is safe as long as the previous result is no longer referenced.
func (m *Map) AppendRange(dst []Extent, logical, count int64) []Extent {
	end := logical + count
	for i := m.search(logical); i < len(m.ext) && m.ext[i].Logical < end; i++ {
		e := m.ext[i]
		lo, hi := e.Logical, e.LogicalEnd()
		if lo < logical {
			lo = logical
		}
		if hi > end {
			hi = end
		}
		dst = append(dst, Extent{
			Logical:  lo,
			Physical: e.Physical + (lo - e.Logical),
			Count:    hi - lo,
			Flags:    e.Flags,
		})
	}
	return dst
}

// NextAt returns the first mapped piece at or after logical: the extent
// covering logical clipped to start there, or, when logical falls in a
// hole, the first whole extent beyond it. ok is false when nothing is
// mapped at or after logical. The defrag mover walks an object with it,
// one migration slice at a time, without copying the whole extent list.
func (m *Map) NextAt(logical int64) (Extent, bool) {
	i := m.search(logical)
	if i >= len(m.ext) {
		return Extent{}, false
	}
	e := m.ext[i]
	if e.Logical < logical {
		off := logical - e.Logical
		e = Extent{Logical: logical, Physical: e.Physical + off, Count: e.Count - off, Flags: e.Flags}
	}
	return e, true
}

// Delete removes the mapping of the logical range [logical, logical+count),
// splitting extents that straddle the boundary, and returns the physical
// ranges released so the caller can free them.
func (m *Map) Delete(logical, count int64) []Extent {
	if count <= 0 {
		return nil
	}
	removed := m.LookupRange(logical, count)
	if len(removed) == 0 {
		return nil
	}
	end := logical + count
	var out []Extent
	for _, e := range m.ext {
		if e.LogicalEnd() <= logical || e.Logical >= end {
			out = append(out, e)
			continue
		}
		if e.Logical < logical {
			out = append(out, Extent{Logical: e.Logical, Physical: e.Physical, Count: logical - e.Logical, Flags: e.Flags})
		}
		if e.LogicalEnd() > end {
			off := end - e.Logical
			out = append(out, Extent{Logical: end, Physical: e.Physical + off, Count: e.LogicalEnd() - end, Flags: e.Flags})
		}
	}
	m.ext = out
	return removed
}

// MappedBlocks returns the total number of mapped logical blocks.
func (m *Map) MappedBlocks() int64 {
	var n int64
	for _, e := range m.ext {
		n += e.Count
	}
	return n
}

// LastPhysical returns the physical block just past the extent with the
// highest logical address — the "last non-hole block" that reservation
// preallocation uses as its goal. ok is false for an empty map.
func (m *Map) LastPhysical() (physical int64, ok bool) {
	if len(m.ext) == 0 {
		return 0, false
	}
	return m.ext[len(m.ext)-1].PhysicalEnd(), true
}

// Validate checks the structural invariants: sorted, non-overlapping,
// positive counts, and no unmerged contiguous neighbours. Tests and the
// property suite call it after every mutation sequence.
func (m *Map) Validate() error {
	for i, e := range m.ext {
		if e.Count <= 0 {
			return fmt.Errorf("extent: non-positive count in %v", e)
		}
		if i == 0 {
			continue
		}
		prev := m.ext[i-1]
		if prev.LogicalEnd() > e.Logical {
			return fmt.Errorf("extent: overlap %v then %v", prev, e)
		}
		if prev.contiguousWith(e) {
			return fmt.Errorf("extent: unmerged neighbours %v then %v", prev, e)
		}
	}
	return nil
}
