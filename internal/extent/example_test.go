package extent_test

import (
	"fmt"
	"log"

	"redbud/internal/extent"
)

// Example shows the fragmentation currency of the paper's Table I: the
// same logical range mapped contiguously merges into one extent, while an
// interleaved placement stays fragmented.
func Example() {
	var contiguous, interleaved extent.Map
	for i := int64(0); i < 4; i++ {
		// Contiguous placement: physical follows logical.
		if err := contiguous.Insert(extent.Extent{Logical: i * 8, Physical: 1000 + i*8, Count: 8}); err != nil {
			log.Fatal(err)
		}
		// Interleaved placement: another stream's blocks in between.
		if err := interleaved.Insert(extent.Extent{Logical: i * 8, Physical: 1000 + i*16, Count: 8}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("contiguous: %d extent(s), interleaved: %d extents\n",
		contiguous.Len(), interleaved.Len())
	phys, _ := contiguous.Lookup(17)
	fmt.Printf("logical 17 -> physical %d\n", phys)
	// Output:
	// contiguous: 1 extent(s), interleaved: 4 extents
	// logical 17 -> physical 1017
}
