package rpc

import (
	"redbud/internal/alloc"
	"redbud/internal/core"
	"redbud/internal/extent"
	"redbud/internal/ost"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// OSTEndpoint dispatches the object op catalog into one ost.Server. The
// placement policy applied to newly created objects is endpoint
// configuration (one factory per mount), mirroring how a real IO server
// runs the allocator its volume was formatted with.
type OSTEndpoint struct {
	addr    string
	srv     *ost.Server
	factory ost.PolicyFactory
	cache   *replayCache
}

// NewOSTEndpoint wraps an IO server with the placement policy new objects
// use.
func NewOSTEndpoint(addr string, srv *ost.Server, factory ost.PolicyFactory) *OSTEndpoint {
	return &OSTEndpoint{addr: addr, srv: srv, factory: factory, cache: newReplayCache()}
}

// Addr is the endpoint's address on the transport.
func (e *OSTEndpoint) Addr() string { return e.addr }

// Server exposes the wrapped server for measurement.
func (e *OSTEndpoint) Server() *ost.Server { return e.srv }

// SetTraceParent declares the span the server's spans nest under.
func (e *OSTEndpoint) SetTraceParent(id telemetry.SpanID) { e.srv.SetTraceParent(id) }

// ReplayHits reports requests answered from the replay cache.
func (e *OSTEndpoint) ReplayHits() int64 { return e.cache.hits }

// Serve executes one request through the replay cache.
func (e *OSTEndpoint) Serve(xid uint64, req Request) (Msg, error) {
	return e.cache.serveCached(xid, func() (Msg, error) { return e.dispatch(req) })
}

// dispatch routes a request to the server method implementing its op.
func (e *OSTEndpoint) dispatch(req Request) (Msg, error) {
	switch m := req.(type) {
	case *ObjCreateReq:
		if err := e.srv.CreateObject(m.ID, e.factory, m.SizeHint); err != nil {
			return nil, err
		}
		return &ObjCreateResp{}, nil
	case *ObjFallocateReq:
		if err := e.srv.Fallocate(m.ID, m.Stream, m.SizeBlocks); err != nil {
			return nil, err
		}
		return &ObjFallocateResp{}, nil
	case *ObjWriteReq:
		if err := e.srv.Write(m.ID, m.Stream, m.Logical, m.Count); err != nil {
			return nil, err
		}
		return &ObjWriteResp{}, nil
	case *ObjReadReq:
		if err := e.srv.Read(m.ID, m.Logical, m.Count); err != nil {
			return nil, err
		}
		return &ObjReadResp{Payload: m.Payload}, nil
	case *ObjTruncateReq:
		if err := e.srv.Truncate(m.ID, m.NewSize); err != nil {
			return nil, err
		}
		return &ObjTruncateResp{}, nil
	case *ObjFsyncReq:
		if err := e.srv.Fsync(m.ID); err != nil {
			return nil, err
		}
		return &ObjFsyncResp{}, nil
	case *ObjFlushReq:
		return &ObjFlushResp{Dur: e.srv.Flush()}, nil
	case *ObjDeleteReq:
		if err := e.srv.Delete(m.ID); err != nil {
			return nil, err
		}
		return &ObjDeleteResp{}, nil
	case *ObjCloseReq:
		if err := e.srv.CloseObject(m.ID); err != nil {
			return nil, err
		}
		return &ObjCloseResp{}, nil
	case *ObjExtCountReq:
		n, err := e.srv.ExtentCount(m.ID)
		if err != nil {
			return nil, err
		}
		return extCountResp(n), nil
	case *ObjExtentsReq:
		exts, err := e.srv.Extents(m.ID)
		if err != nil {
			return nil, err
		}
		return &ObjExtentsResp{Extents: exts}, nil
	case *ObjWrittenRunsReq:
		runs, err := e.srv.WrittenRuns(m.ID)
		if err != nil {
			return nil, err
		}
		return &ObjWrittenRunsResp{Runs: runs}, nil
	default:
		return nil, &Error{Op: req.RPCOp(), Addr: e.addr, Kind: KindBadRequest}
	}
}

// OSTClient is the typed client of one IO-server endpoint. It knows the
// volume's block size so data ops can size their DMA payloads.
type OSTClient struct {
	conn       *Conn
	addr       string
	blockBytes int64
}

// NewOSTClient binds a client to an address on the connection.
func NewOSTClient(conn *Conn, addr string, blockBytes int64) *OSTClient {
	return &OSTClient{conn: conn, addr: addr, blockBytes: blockBytes}
}

// Addr returns the endpoint address the client calls.
func (c *OSTClient) Addr() string { return c.addr }

// CreateObject creates an object under the endpoint's placement policy.
func (c *OSTClient) CreateObject(id ost.ObjectID, sizeHint int64) error {
	req := objCreateReqPool.get()
	*req = ObjCreateReq{ID: id, SizeHint: sizeHint}
	_, err := call[*ObjCreateResp](c.conn, c.addr, req)
	objCreateReqPool.put(req)
	return err
}

// Fallocate preallocates an object's blocks.
func (c *OSTClient) Fallocate(id ost.ObjectID, stream core.StreamID, sizeBlocks int64) error {
	_, err := call[*ObjFallocateResp](c.conn, c.addr, &ObjFallocateReq{
		ID: id, Stream: stream, SizeBlocks: sizeBlocks,
	})
	return err
}

// Write stores count component-logical blocks, paying the payload's data
// transfer.
func (c *OSTClient) Write(id ost.ObjectID, stream core.StreamID, logical, count int64) error {
	req := objWriteReqPool.get()
	*req = ObjWriteReq{
		ID: id, Stream: stream, Logical: logical, Count: count,
		Payload: count * c.blockBytes,
	}
	_, err := call[*ObjWriteResp](c.conn, c.addr, req)
	objWriteReqPool.put(req)
	return err
}

// Read fetches count component-logical blocks, paying the payload's data
// transfer on the response.
func (c *OSTClient) Read(id ost.ObjectID, logical, count int64) error {
	req := objReadReqPool.get()
	*req = ObjReadReq{
		ID: id, Logical: logical, Count: count, Payload: count * c.blockBytes,
	}
	_, err := call[*ObjReadResp](c.conn, c.addr, req)
	objReadReqPool.put(req)
	return err
}

// Truncate cuts an object to newSize blocks.
func (c *OSTClient) Truncate(id ost.ObjectID, newSize int64) error {
	_, err := call[*ObjTruncateResp](c.conn, c.addr, &ObjTruncateReq{ID: id, NewSize: newSize})
	return err
}

// Fsync forces an object's buffered writes and queued device I/O.
func (c *OSTClient) Fsync(id ost.ObjectID) error {
	req := objFsyncReqPool.get()
	*req = ObjFsyncReq{ID: id}
	_, err := call[*ObjFsyncResp](c.conn, c.addr, req)
	objFsyncReqPool.put(req)
	return err
}

// Flush forces all queued device requests, returning the simulated device
// time.
func (c *OSTClient) Flush() (sim.Ns, error) {
	resp, err := call[*ObjFlushResp](c.conn, c.addr, &ObjFlushReq{})
	if err != nil {
		return 0, err
	}
	return resp.Dur, nil
}

// Delete removes an object and frees its blocks.
func (c *OSTClient) Delete(id ost.ObjectID) error {
	_, err := call[*ObjDeleteResp](c.conn, c.addr, &ObjDeleteReq{ID: id})
	return err
}

// CloseObject releases an object's temporary reservations.
func (c *OSTClient) CloseObject(id ost.ObjectID) error {
	req := objCloseReqPool.get()
	*req = ObjCloseReq{ID: id}
	_, err := call[*ObjCloseResp](c.conn, c.addr, req)
	objCloseReqPool.put(req)
	return err
}

// ExtentCount returns an object's extent count.
func (c *OSTClient) ExtentCount(id ost.ObjectID) (int, error) {
	req := objExtCountReqPool.get()
	*req = ObjExtCountReq{ID: id}
	resp, err := call[*ObjExtCountResp](c.conn, c.addr, req)
	objExtCountReqPool.put(req)
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Extents returns an object's extent list.
func (c *OSTClient) Extents(id ost.ObjectID) ([]extent.Extent, error) {
	resp, err := call[*ObjExtentsResp](c.conn, c.addr, &ObjExtentsReq{ID: id})
	if err != nil {
		return nil, err
	}
	return resp.Extents, nil
}

// WrittenRuns returns the maximal runs of written logical blocks — the
// repair engine's copy manifest.
func (c *OSTClient) WrittenRuns(id ost.ObjectID) ([]alloc.Range, error) {
	resp, err := call[*ObjWrittenRunsResp](c.conn, c.addr, &ObjWrittenRunsReq{ID: id})
	if err != nil {
		return nil, err
	}
	return resp.Runs, nil
}
