package rpc

import (
	"redbud/internal/alloc"
	"redbud/internal/core"
	"redbud/internal/extent"
	"redbud/internal/inode"
	"redbud/internal/ost"
	"redbud/internal/replica"
	"redbud/internal/sim"
)

// Msg is one wire message. WireSize is the number of bytes the message
// occupies on its network plane: metadata messages report whole 512-byte
// cells (header included), data messages report the payload they carry (or
// zero for the descriptor/ack direction), control messages report zero.
// The transport skips the link entirely for zero-size messages.
type Msg interface {
	WireSize() int64
}

// Request is a client-originated message that names its op for dispatch,
// sizing, fault classing, and telemetry.
type Request interface {
	Msg
	RPCOp() Op
}

// Encoded-field sizes of the modeled wire format.
const (
	// headerBytes is the fixed per-message envelope: op, xid, addresses,
	// status.
	headerBytes = 64
	// CellBytes is the metadata plane's transfer granularity; every
	// metadata message is rounded up to whole cells, so the common
	// single-cell RPC costs exactly 512 bytes each way.
	CellBytes = 512
	// inoBytes encodes an inode number.
	inoBytes = 8
	// i64Bytes encodes a block count, offset, or size field.
	i64Bytes = 8
	// extentBytes encodes one layout extent (logical, physical, count,
	// flags).
	extentBytes = 32
	// inodeBytes encodes one stat record (a full inode with its inline
	// layout summary).
	inodeBytes = 128
	// direntBytes is the fixed part of one directory entry (ino + name
	// length); the name itself is counted separately.
	direntBytes = 8
	// streamBytes encodes a write-stream identity (client, PID).
	streamBytes = 8
	// placeInputBytes encodes one OST's placement telemetry (index, free
	// blocks, busy time, liveness flag).
	placeInputBytes = 24
	// replicaIdxBytes encodes one replica-set member (an OST index).
	replicaIdxBytes = 4
)

// cells rounds a message body up to whole metadata cells, envelope
// included.
func cells(body int64) int64 {
	n := headerBytes + body
	return (n + CellBytes - 1) / CellBytes * CellBytes
}

// namesBytes sizes a directory-entry name list.
func namesBytes(names []string) int64 {
	var n int64
	for _, name := range names {
		n += direntBytes + int64(len(name))
	}
	return n
}

// errWireSize is the response size of a failed request: a metadata status
// cell, or nothing on the data/control planes (failures there ride the
// piggybacked completion).
func errWireSize(op Op) int64 {
	if op.Class() == ClassMeta {
		return cells(0)
	}
	return 0
}

// ---- Client↔MDS messages ----

// MkdirReq creates a directory.
type MkdirReq struct {
	Parent inode.Ino
	Name   string
}

// RPCOp names the op.
func (*MkdirReq) RPCOp() Op { return OpMkdir }

// WireSize models the encoded request.
func (m *MkdirReq) WireSize() int64 { return cells(inoBytes + int64(len(m.Name))) }

// MkdirResp returns the new directory's inode.
type MkdirResp struct {
	Ino inode.Ino
}

// WireSize models the encoded response.
func (*MkdirResp) WireSize() int64 { return cells(inoBytes) }

// CreateReq creates a file at the MDS.
type CreateReq struct {
	Parent inode.Ino
	Name   string
}

// RPCOp names the op.
func (*CreateReq) RPCOp() Op { return OpCreate }

// WireSize models the encoded request.
func (m *CreateReq) WireSize() int64 { return cells(inoBytes + int64(len(m.Name))) }

// CreateResp returns the new file's inode.
type CreateResp struct {
	Ino inode.Ino
}

// WireSize models the encoded response.
func (*CreateResp) WireSize() int64 { return cells(inoBytes) }

// LookupReq resolves a name in a directory.
type LookupReq struct {
	Parent inode.Ino
	Name   string
}

// RPCOp names the op.
func (*LookupReq) RPCOp() Op { return OpLookup }

// WireSize models the encoded request.
func (m *LookupReq) WireSize() int64 { return cells(inoBytes + int64(len(m.Name))) }

// LookupResp returns the entry's inode. Resolved follows the MDS-internal
// relocation map (embedded-directory migrations) to the inode's current
// identity — the server resolves it so clients never chase relocations
// with extra round trips.
type LookupResp struct {
	Ino      inode.Ino
	Resolved inode.Ino
}

// WireSize models the encoded response.
func (*LookupResp) WireSize() int64 { return cells(2 * inoBytes) }

// StatReq reads an inode.
type StatReq struct {
	Ino inode.Ino
}

// RPCOp names the op.
func (*StatReq) RPCOp() Op { return OpStat }

// WireSize models the encoded request.
func (*StatReq) WireSize() int64 { return cells(inoBytes) }

// StatResp carries the inode record.
type StatResp struct {
	Inode inode.Inode
}

// WireSize models the encoded response.
func (*StatResp) WireSize() int64 { return cells(inodeBytes) }

// StatNameReq resolves and reads an inode in one request — the
// readdir-stat pair's unit.
type StatNameReq struct {
	Parent inode.Ino
	Name   string
}

// RPCOp names the op.
func (*StatNameReq) RPCOp() Op { return OpStatName }

// WireSize models the encoded request.
func (m *StatNameReq) WireSize() int64 { return cells(inoBytes + int64(len(m.Name))) }

// StatNameResp carries the inode record.
type StatNameResp struct {
	Inode inode.Inode
}

// WireSize models the encoded response.
func (*StatNameResp) WireSize() int64 { return cells(inodeBytes) }

// UtimeReq updates an mtime.
type UtimeReq struct {
	Ino inode.Ino
}

// RPCOp names the op.
func (*UtimeReq) RPCOp() Op { return OpUtime }

// WireSize models the encoded request.
func (*UtimeReq) WireSize() int64 { return cells(inoBytes) }

// UtimeResp acknowledges the update.
type UtimeResp struct{}

// WireSize models the encoded response.
func (*UtimeResp) WireSize() int64 { return cells(0) }

// UnlinkReq removes a file entry.
type UnlinkReq struct {
	Parent inode.Ino
	Name   string
}

// RPCOp names the op.
func (*UnlinkReq) RPCOp() Op { return OpUnlink }

// WireSize models the encoded request.
func (m *UnlinkReq) WireSize() int64 { return cells(inoBytes + int64(len(m.Name))) }

// UnlinkResp acknowledges the removal.
type UnlinkResp struct{}

// WireSize models the encoded response.
func (*UnlinkResp) WireSize() int64 { return cells(0) }

// RmdirReq removes an empty directory.
type RmdirReq struct {
	Parent inode.Ino
	Name   string
}

// RPCOp names the op.
func (*RmdirReq) RPCOp() Op { return OpRmdir }

// WireSize models the encoded request.
func (m *RmdirReq) WireSize() int64 { return cells(inoBytes + int64(len(m.Name))) }

// RmdirResp acknowledges the removal.
type RmdirResp struct{}

// WireSize models the encoded response.
func (*RmdirResp) WireSize() int64 { return cells(0) }

// RenameReq moves an entry.
type RenameReq struct {
	SrcParent inode.Ino
	Name      string
	DstParent inode.Ino
	NewName   string
}

// RPCOp names the op.
func (*RenameReq) RPCOp() Op { return OpRename }

// WireSize models the encoded request.
func (m *RenameReq) WireSize() int64 {
	return cells(2*inoBytes + int64(len(m.Name)) + int64(len(m.NewName)))
}

// RenameResp returns the entry's (possibly relocated) inode.
type RenameResp struct {
	Ino inode.Ino
}

// WireSize models the encoded response.
func (*RenameResp) WireSize() int64 { return cells(inoBytes) }

// ReaddirReq lists a directory's names.
type ReaddirReq struct {
	Parent inode.Ino
}

// RPCOp names the op.
func (*ReaddirReq) RPCOp() Op { return OpReaddir }

// WireSize models the encoded request.
func (*ReaddirReq) WireSize() int64 { return cells(inoBytes) }

// ReaddirResp carries the entry names; its wire size grows with the
// listing.
type ReaddirResp struct {
	Names []string
}

// WireSize models the encoded response.
func (m *ReaddirResp) WireSize() int64 { return cells(namesBytes(m.Names)) }

// ReaddirPlusReq fetches a whole directory with inode contents in a single
// MDS request.
type ReaddirPlusReq struct {
	Parent inode.Ino
}

// RPCOp names the op.
func (*ReaddirPlusReq) RPCOp() Op { return OpReaddirPlus }

// WireSize models the encoded request.
func (*ReaddirPlusReq) WireSize() int64 { return cells(inoBytes) }

// ReaddirPlusResp carries the full stat records; its wire size grows with
// the listing.
type ReaddirPlusResp struct {
	Entries []inode.Inode
}

// WireSize models the encoded response.
func (m *ReaddirPlusResp) WireSize() int64 { return cells(int64(len(m.Entries)) * inodeBytes) }

// OpenGetLayoutReq opens a file and acquires its layout in one request.
type OpenGetLayoutReq struct {
	Parent inode.Ino
	Name   string
}

// RPCOp names the op.
func (*OpenGetLayoutReq) RPCOp() Op { return OpOpenGetLayout }

// WireSize models the encoded request.
func (m *OpenGetLayoutReq) WireSize() int64 { return cells(inoBytes + int64(len(m.Name))) }

// OpenGetLayoutResp returns the inode and its layout summary.
type OpenGetLayoutResp struct {
	Ino    inode.Ino
	Layout []extent.Extent
}

// WireSize models the encoded response.
func (m *OpenGetLayoutResp) WireSize() int64 {
	return cells(inoBytes + int64(len(m.Layout))*extentBytes)
}

// SetLayoutReq records a file's data placement as reported by the IO
// servers.
type SetLayoutReq struct {
	Ino    inode.Ino
	Layout []extent.Extent
}

// RPCOp names the op.
func (*SetLayoutReq) RPCOp() Op { return OpSetLayout }

// WireSize models the encoded request.
func (m *SetLayoutReq) WireSize() int64 {
	return cells(inoBytes + int64(len(m.Layout))*extentBytes)
}

// SetLayoutResp acknowledges the layout update.
type SetLayoutResp struct{}

// WireSize models the encoded response.
func (*SetLayoutResp) WireSize() int64 { return cells(0) }

// MDSSyncReq flushes the metadata file system (control plane).
type MDSSyncReq struct{}

// RPCOp names the op.
func (*MDSSyncReq) RPCOp() Op { return OpMDSSync }

// WireSize models the piggybacked control message.
func (*MDSSyncReq) WireSize() int64 { return 0 }

// MDSSyncResp acknowledges the flush.
type MDSSyncResp struct{}

// WireSize models the piggybacked control message.
func (*MDSSyncResp) WireSize() int64 { return 0 }

// ExtentChurnReq reports layout-mapping churn observed during writes; it
// piggybacks on data-plane completions.
type ExtentChurnReq struct {
	Units int
}

// RPCOp names the op.
func (*ExtentChurnReq) RPCOp() Op { return OpExtentChurn }

// WireSize models the piggybacked control message.
func (*ExtentChurnReq) WireSize() int64 { return 0 }

// ExtentChurnResp acknowledges the report.
type ExtentChurnResp struct{}

// WireSize models the piggybacked control message.
func (*ExtentChurnResp) WireSize() int64 { return 0 }

// setsEntries counts the members across a file's replica sets, for wire
// sizing.
func setsEntries(sets [][]int) int64 {
	var n int64
	for _, s := range sets {
		n += int64(len(s))
	}
	return n
}

// PlaceReplicasReq asks the MDS to place RF replicas for each of a file's
// Comps stripe components. The client ships its per-OST capacity/load
// observations (and which servers it currently suspects dead) so the MDS
// scores targets without a server-to-server gossip plane.
type PlaceReplicasReq struct {
	Ino    inode.Ino
	Comps  int
	RF     int
	Inputs []replica.PlaceInput
}

// RPCOp names the op.
func (*PlaceReplicasReq) RPCOp() Op { return OpPlaceReplicas }

// WireSize models the encoded request.
func (m *PlaceReplicasReq) WireSize() int64 {
	return cells(inoBytes + 2*i64Bytes + int64(len(m.Inputs))*placeInputBytes)
}

// PlaceReplicasResp returns the per-component replica sets.
type PlaceReplicasResp struct {
	Sets [][]int
}

// WireSize models the encoded response.
func (m *PlaceReplicasResp) WireSize() int64 {
	return cells(setsEntries(m.Sets) * replicaIdxBytes)
}

// GetReplicaLayoutReq fetches a file's replica sets at open.
type GetReplicaLayoutReq struct {
	Ino inode.Ino
}

// RPCOp names the op.
func (*GetReplicaLayoutReq) RPCOp() Op { return OpGetReplicaLayout }

// WireSize models the encoded request.
func (*GetReplicaLayoutReq) WireSize() int64 { return cells(inoBytes) }

// GetReplicaLayoutResp carries the per-component replica sets.
type GetReplicaLayoutResp struct {
	Sets [][]int
}

// WireSize models the encoded response.
func (m *GetReplicaLayoutResp) WireSize() int64 {
	return cells(setsEntries(m.Sets) * replicaIdxBytes)
}

// SetReplicaLayoutReq updates one component's replica set after a
// re-replication completes.
type SetReplicaLayoutReq struct {
	Ino      inode.Ino
	Comp     int
	Replicas []int
}

// RPCOp names the op.
func (*SetReplicaLayoutReq) RPCOp() Op { return OpSetReplicaLayout }

// WireSize models the encoded request.
func (m *SetReplicaLayoutReq) WireSize() int64 {
	return cells(inoBytes + i64Bytes + int64(len(m.Replicas))*replicaIdxBytes)
}

// SetReplicaLayoutResp acknowledges the update.
type SetReplicaLayoutResp struct{}

// WireSize models the encoded response.
func (*SetReplicaLayoutResp) WireSize() int64 { return cells(0) }

// ---- Client↔OST messages ----

// ObjCreateReq creates an object on an IO server. The placement policy is
// server-side configuration (the endpoint owns the factory), so the
// request carries only identity and the size hint.
type ObjCreateReq struct {
	ID       ost.ObjectID
	SizeHint int64
}

// RPCOp names the op.
func (*ObjCreateReq) RPCOp() Op { return OpObjCreate }

// WireSize models the piggybacked control message.
func (*ObjCreateReq) WireSize() int64 { return 0 }

// ObjCreateResp acknowledges the creation.
type ObjCreateResp struct{}

// WireSize models the piggybacked control message.
func (*ObjCreateResp) WireSize() int64 { return 0 }

// ObjFallocateReq preallocates an object's blocks (static layout).
type ObjFallocateReq struct {
	ID         ost.ObjectID
	Stream     core.StreamID
	SizeBlocks int64
}

// RPCOp names the op.
func (*ObjFallocateReq) RPCOp() Op { return OpObjFallocate }

// WireSize models the piggybacked control message.
func (*ObjFallocateReq) WireSize() int64 { return 0 }

// ObjFallocateResp acknowledges the preallocation.
type ObjFallocateResp struct{}

// WireSize models the piggybacked control message.
func (*ObjFallocateResp) WireSize() int64 { return 0 }

// ObjWriteReq stores Count component-logical blocks. Payload is the DMA
// burst size in bytes; it is the request's wire size — the ack direction
// is free.
type ObjWriteReq struct {
	ID      ost.ObjectID
	Stream  core.StreamID
	Logical int64
	Count   int64
	Payload int64
}

// RPCOp names the op.
func (*ObjWriteReq) RPCOp() Op { return OpObjWrite }

// WireSize is the data payload carried toward the server.
func (m *ObjWriteReq) WireSize() int64 { return m.Payload }

// ObjWriteResp acknowledges the write (piggybacked completion).
type ObjWriteResp struct{}

// WireSize models the piggybacked completion.
func (*ObjWriteResp) WireSize() int64 { return 0 }

// ObjReadReq fetches Count component-logical blocks. Payload sizes the
// response DMA burst; the descriptor direction is free.
type ObjReadReq struct {
	ID      ost.ObjectID
	Logical int64
	Count   int64
	Payload int64
}

// RPCOp names the op.
func (*ObjReadReq) RPCOp() Op { return OpObjRead }

// WireSize is zero: the read descriptor rides the control plane.
func (*ObjReadReq) WireSize() int64 { return 0 }

// ObjReadResp carries the data back to the client.
type ObjReadResp struct {
	Payload int64
}

// WireSize is the data payload carried toward the client.
func (m *ObjReadResp) WireSize() int64 { return m.Payload }

// ObjTruncateReq cuts an object to NewSize blocks.
type ObjTruncateReq struct {
	ID      ost.ObjectID
	NewSize int64
}

// RPCOp names the op.
func (*ObjTruncateReq) RPCOp() Op { return OpObjTruncate }

// WireSize models the piggybacked control message.
func (*ObjTruncateReq) WireSize() int64 { return 0 }

// ObjTruncateResp acknowledges the truncation.
type ObjTruncateResp struct{}

// WireSize models the piggybacked control message.
func (*ObjTruncateResp) WireSize() int64 { return 0 }

// ObjFsyncReq forces an object's buffered writes and queued device I/O to
// storage.
type ObjFsyncReq struct {
	ID ost.ObjectID
}

// RPCOp names the op.
func (*ObjFsyncReq) RPCOp() Op { return OpObjFsync }

// WireSize models the piggybacked control message.
func (*ObjFsyncReq) WireSize() int64 { return 0 }

// ObjFsyncResp acknowledges the sync.
type ObjFsyncResp struct{}

// WireSize models the piggybacked control message.
func (*ObjFsyncResp) WireSize() int64 { return 0 }

// ObjFlushReq forces all queued device requests on the server.
type ObjFlushReq struct{}

// RPCOp names the op.
func (*ObjFlushReq) RPCOp() Op { return OpObjFlush }

// WireSize models the piggybacked control message.
func (*ObjFlushReq) WireSize() int64 { return 0 }

// ObjFlushResp reports the flush's simulated device time.
type ObjFlushResp struct {
	Dur sim.Ns
}

// WireSize models the piggybacked control message.
func (*ObjFlushResp) WireSize() int64 { return 0 }

// ObjDeleteReq removes an object and frees its blocks.
type ObjDeleteReq struct {
	ID ost.ObjectID
}

// RPCOp names the op.
func (*ObjDeleteReq) RPCOp() Op { return OpObjDelete }

// WireSize models the piggybacked control message.
func (*ObjDeleteReq) WireSize() int64 { return 0 }

// ObjDeleteResp acknowledges the removal.
type ObjDeleteResp struct{}

// WireSize models the piggybacked control message.
func (*ObjDeleteResp) WireSize() int64 { return 0 }

// ObjCloseReq releases an object's temporary reservations.
type ObjCloseReq struct {
	ID ost.ObjectID
}

// RPCOp names the op.
func (*ObjCloseReq) RPCOp() Op { return OpObjClose }

// WireSize models the piggybacked control message.
func (*ObjCloseReq) WireSize() int64 { return 0 }

// ObjCloseResp acknowledges the close.
type ObjCloseResp struct{}

// WireSize models the piggybacked control message.
func (*ObjCloseResp) WireSize() int64 { return 0 }

// ObjExtCountReq asks for an object's extent count.
type ObjExtCountReq struct {
	ID ost.ObjectID
}

// RPCOp names the op.
func (*ObjExtCountReq) RPCOp() Op { return OpObjExtCount }

// WireSize models the piggybacked control message.
func (*ObjExtCountReq) WireSize() int64 { return 0 }

// ObjExtCountResp carries the extent count.
type ObjExtCountResp struct {
	Count int
}

// WireSize models the piggybacked control message.
func (*ObjExtCountResp) WireSize() int64 { return 0 }

// ObjExtentsReq asks for an object's extent list.
type ObjExtentsReq struct {
	ID ost.ObjectID
}

// RPCOp names the op.
func (*ObjExtentsReq) RPCOp() Op { return OpObjExtents }

// WireSize models the piggybacked control message.
func (*ObjExtentsReq) WireSize() int64 { return 0 }

// ObjExtentsResp carries the extent list.
type ObjExtentsResp struct {
	Extents []extent.Extent
}

// WireSize models the piggybacked control message.
func (*ObjExtentsResp) WireSize() int64 { return 0 }

// ObjWrittenRunsReq asks for the maximal runs of written logical blocks —
// the manifest a repair copies (holes and preallocated-but-unwritten
// space are skipped; they carry no data).
type ObjWrittenRunsReq struct {
	ID ost.ObjectID
}

// RPCOp names the op.
func (*ObjWrittenRunsReq) RPCOp() Op { return OpObjWrittenRuns }

// WireSize models the piggybacked control message.
func (*ObjWrittenRunsReq) WireSize() int64 { return 0 }

// ObjWrittenRunsResp carries the written runs.
type ObjWrittenRunsResp struct {
	Runs []alloc.Range
}

// WireSize models the piggybacked control message.
func (*ObjWrittenRunsResp) WireSize() int64 { return 0 }
