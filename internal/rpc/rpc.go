// Package rpc is the explicit message boundary between Redbud clients and
// the metadata/data servers. Every client↔MDS operation (create, lookup,
// stat, utime, unlink, rename, readdir, readdirplus, open-getlayout,
// setlayout) and every client↔OST operation (object create/delete/close,
// extent write/read, truncate, flush, fsync) is a typed request/response
// pair dispatched through a Transport to a per-server Endpoint — the only
// path from the PFS client into mds.Server and ost.Server.
//
// The seam is what direct method calls could never express:
//
//   - Network charging lives in the transport, not the callees: a
//     NetTransport charges each message's modeled wire size to the server's
//     netsim link (GbE for the MDS, the per-client FibreChannel fabric for
//     OSTs) and folds the cost into the simulated trace timeline.
//   - FaultTransport injects seeded, deterministic message drops, transient
//     errors, and delays per op class.
//   - RetryTransport is the client-side timeout/retry policy: a lost
//     message costs the caller the RPC timeout on the simulated clock, then
//     is retried with exponential backoff.
//   - Endpoints keep a duplicate-request (replay) cache keyed by the
//     client-assigned XID, so a retry of an executed-but-unacknowledged
//     request returns the recorded response instead of re-executing — the
//     classic NFS-style reply cache that makes non-idempotent ops (create,
//     rename) safe under response loss.
//   - The whole stack publishes layer=rpc telemetry: per-op call counters
//     and latency histograms, retry/timeout counters, fault counters, and
//     per-endpoint replay-cache hits, plus "rpc" spans nested between the
//     client operation span and the server-side spans.
//
// Wire-size model. Metadata messages ride fixed 512-byte cells on the GbE
// control network: a message's size is its 64-byte header plus encoded body,
// rounded up to whole cells — so every common metadata RPC costs exactly one
// 512-byte cell each way, matching the fixed-size RPC model the evaluation
// was calibrated with, while bulk responses (large readdirplus listings)
// grow with their payload. Data-plane messages model DMA bursts: the
// payload-bearing direction (the request of a write, the response of a read)
// carries exactly the payload bytes, and descriptors/acks are piggybacked on
// the control plane at zero wire cost — their handling cost is already part
// of the servers' fixed per-request CPU model. Zero-size messages charge
// nothing, which keeps the simulated figures byte-identical to the
// pre-seam direct-call model in the fault-free configuration.
package rpc

import "fmt"

// Class groups ops by the network plane and charge model they use.
type Class int

// Op classes.
const (
	// ClassMeta is the metadata plane: GbE, request and response each
	// charged in 512-byte cells.
	ClassMeta Class = iota
	// ClassData is the data plane: FibreChannel, the payload-bearing
	// direction charged at exactly the payload size.
	ClassData
	// ClassControl is piggybacked control traffic (object lifecycle,
	// flushes, layout-churn notes): zero wire cost, the handling cost is
	// inside the servers' CPU/disk models.
	ClassControl
)

// String names the class for telemetry and fault configuration.
func (c Class) String() string {
	switch c {
	case ClassMeta:
		return "meta"
	case ClassData:
		return "data"
	default:
		return "control"
	}
}

// Op identifies one operation of the RPC catalog.
type Op string

// Client↔MDS ops.
const (
	OpMkdir         Op = "mkdir"
	OpCreate        Op = "create"
	OpLookup        Op = "lookup"
	OpStat          Op = "stat"
	OpStatName      Op = "stat-name"
	OpUtime         Op = "utime"
	OpUnlink        Op = "unlink"
	OpRmdir         Op = "rmdir"
	OpRename        Op = "rename"
	OpReaddir       Op = "readdir"
	OpReaddirPlus   Op = "readdirplus"
	OpOpenGetLayout Op = "open-getlayout"
	OpSetLayout     Op = "setlayout"
	// OpMDSSync flushes the metadata journal; it rides the storage control
	// plane (ClassControl), not a client-visible metadata RPC.
	OpMDSSync Op = "mds-sync"
	// OpExtentChurn reports layout-mapping churn observed during writes; it
	// piggybacks on data-plane completions (ClassControl).
	OpExtentChurn Op = "extent-churn"
	// OpPlaceReplicas asks the MDS to place a file's replica sets: the
	// client ships its capacity/load observations, the server runs the
	// spread policy and records the result.
	OpPlaceReplicas Op = "place-replicas"
	// OpGetReplicaLayout fetches a file's replica sets at open.
	OpGetReplicaLayout Op = "get-replica-layout"
	// OpSetReplicaLayout updates one component's replica set after a
	// re-replication completes.
	OpSetReplicaLayout Op = "set-replica-layout"
)

// Client↔OST ops.
const (
	OpObjCreate    Op = "obj-create"
	OpObjFallocate Op = "obj-fallocate"
	OpObjWrite     Op = "obj-write"
	OpObjRead      Op = "obj-read"
	OpObjTruncate  Op = "obj-truncate"
	OpObjFsync     Op = "obj-fsync"
	OpObjFlush     Op = "obj-flush"
	OpObjDelete    Op = "obj-delete"
	OpObjClose     Op = "obj-close"
	OpObjExtCount  Op = "obj-extent-count"
	OpObjExtents   Op = "obj-extents"
	// OpObjWrittenRuns fetches the maximal runs of written logical blocks
	// — the copy manifest the re-replication engine repairs from.
	OpObjWrittenRuns Op = "obj-written-runs"
)

// Class returns the op's network plane.
func (o Op) Class() Class {
	switch o {
	case OpMkdir, OpCreate, OpLookup, OpStat, OpStatName, OpUtime, OpUnlink,
		OpRmdir, OpRename, OpReaddir, OpReaddirPlus, OpOpenGetLayout,
		OpSetLayout, OpPlaceReplicas, OpGetReplicaLayout, OpSetReplicaLayout:
		return ClassMeta
	case OpObjWrite, OpObjRead:
		return ClassData
	default:
		return ClassControl
	}
}

// ErrKind distinguishes RPC-layer failures from server-side application
// errors (which pass through Call untouched).
type ErrKind string

// RPC failure kinds.
const (
	// KindTimeout: the request or its response was lost and every retry
	// timed out.
	KindTimeout ErrKind = "timeout"
	// KindUnavailable: a transient transport/server failure, retriable.
	KindUnavailable ErrKind = "unavailable"
	// KindBadRequest: the endpoint does not serve this message type.
	KindBadRequest ErrKind = "bad-request"
)

// Error is an RPC-layer failure.
type Error struct {
	Op   Op
	Addr string
	Kind ErrKind
}

// Error renders the failure.
func (e *Error) Error() string {
	return fmt.Sprintf("rpc: %s to %s: %s", e.Op, e.Addr, e.Kind)
}

// Transient reports whether a retry may succeed.
func (e *Error) Transient() bool { return e.Kind == KindUnavailable }

// dropError is the fault layer's internal signal that a message was lost in
// transit. The retry layer converts it into a charged timeout; it never
// escapes a Conn call (exhausted retries surface as *ExhaustedError with
// KindTimeout).
type dropError struct {
	response bool // the response was lost (the server executed the request)
}

// Error renders the loss for debugging.
func (e *dropError) Error() string {
	if e.response {
		return "rpc: response dropped"
	}
	return "rpc: request dropped"
}
