package rpc

import (
	"sync"

	"redbud/internal/netsim"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// Transport carries one request to an endpoint and its response back.
// Implementations stack: RetryTransport → FaultTransport → NetTransport.
// A returned error is either an *Error (RPC-layer failure), a *dropError
// (internal to the stack, consumed by the retry layer), or a server
// application error passed through verbatim.
type Transport interface {
	Call(addr string, xid uint64, req Request) (Msg, error)
}

// shared is the state every layer of one transport stack sees: the tracer
// whose clock the stack advances for network transfers, injected delays,
// and retry timeouts, and the layer=rpc metrics sink. Decorators copy the
// pointer at construction, so a tracer or registry attached to the stack
// later is visible to every layer. With no tracer attached there is no
// timeline (matching the rest of the system: link/disk busy counters are
// the only time record), and every advance is a no-op; a nil metrics sink
// is likewise inert.
type shared struct {
	tracer *telemetry.Tracer
	m      *metrics
}

// advance moves the simulated clock.
func (sh *shared) advance(d sim.Ns) {
	if sh.tracer != nil && d > 0 {
		sh.tracer.Advance(d)
	}
}

// sharedCarrier lets decorators join the stack they wrap.
type sharedCarrier interface {
	sharedState() *shared
}

// joinStack returns next's shared state, or fresh state for a stack built
// over a foreign transport (tests).
func joinStack(next Transport) *shared {
	if sc, ok := next.(sharedCarrier); ok {
		return sc.sharedState()
	}
	return &shared{}
}

// metrics is the layer=rpc instrumentation sink. A nil *metrics (registry
// never attached) is valid and inert.
type metrics struct {
	reg    *telemetry.Registry
	labels telemetry.Labels

	mu      sync.Mutex
	calls   map[Op]*telemetry.Counter
	errors  map[Op]*telemetry.Counter
	latency map[Op]*telemetry.Histogram
	faults  map[string]*telemetry.Counter

	retries    *telemetry.Counter
	timeouts   *telemetry.Counter
	recoveries *telemetry.Counter
	exhausted  *telemetry.Counter
}

// newMetrics binds the sink to a registry.
func newMetrics(reg *telemetry.Registry, labels telemetry.Labels) *metrics {
	return &metrics{
		reg:        reg,
		labels:     labels,
		calls:      make(map[Op]*telemetry.Counter),
		errors:     make(map[Op]*telemetry.Counter),
		latency:    make(map[Op]*telemetry.Histogram),
		faults:     make(map[string]*telemetry.Counter),
		retries:    reg.Counter("rpc_retries", labels),
		timeouts:   reg.Counter("rpc_timeouts", labels),
		recoveries: reg.Counter("rpc_recoveries", labels),
		exhausted:  reg.Counter("rpc_exhausted", labels),
	}
}

// call counts one completed call and, when a duration is known (tracer
// attached), observes the op latency.
func (m *metrics) call(op Op, dur sim.Ns, failed bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	c := m.calls[op]
	if c == nil {
		c = m.reg.Counter("rpc_calls", m.labels.With("op", string(op)))
		m.calls[op] = c
	}
	var e *telemetry.Counter
	if failed {
		e = m.errors[op]
		if e == nil {
			e = m.reg.Counter("rpc_errors", m.labels.With("op", string(op)))
			m.errors[op] = e
		}
	}
	var h *telemetry.Histogram
	if dur >= 0 {
		h = m.latency[op]
		if h == nil {
			h = m.reg.Histogram("rpc_call_ns", m.labels.With("op", string(op)))
			m.latency[op] = h
		}
	}
	m.mu.Unlock()
	c.Inc()
	if e != nil {
		e.Inc()
	}
	if h != nil {
		h.Observe(dur)
	}
}

// event records one structured rpc-layer event (the timestamp comes from
// the stack's tracer at the call site; 0 with no tracer attached).
func (m *metrics) event(at sim.Ns, kind, detail string) {
	if m == nil {
		return
	}
	m.reg.Events().Emit(at, "rpc", kind, detail)
}

// fault counts one injected fault by kind (drop, resp-drop, error, delay)
// and records it as a structured event against the faulted op.
func (m *metrics) fault(at sim.Ns, kind string, op Op) {
	if m == nil {
		return
	}
	m.mu.Lock()
	c := m.faults[kind]
	if c == nil {
		c = m.reg.Counter("rpc_faults", m.labels.With("kind", kind))
		m.faults[kind] = c
	}
	m.mu.Unlock()
	c.Inc()
	m.event(at, kind, string(op))
}

// retry counts one re-sent request.
func (m *metrics) retry(at sim.Ns, op Op) {
	if m != nil {
		m.retries.Inc()
		m.event(at, "retry", string(op))
	}
}

// timeout counts one request that waited out the full RPC timeout.
func (m *metrics) timeout(at sim.Ns, op Op) {
	if m != nil {
		m.timeouts.Inc()
		m.event(at, "timeout", string(op))
	}
}

// recovery counts one call that failed at least once and then succeeded.
func (m *metrics) recovery(at sim.Ns, op Op) {
	if m != nil {
		m.recoveries.Inc()
		m.event(at, "recovery", string(op))
	}
}

// exhaust counts one call that gave up after the retry budget.
func (m *metrics) exhaust(at sim.Ns, op Op) {
	if m != nil {
		m.exhausted.Inc()
		m.event(at, "exhaust", string(op))
	}
}

// route is one registered endpoint and the network link that reaches it.
type route struct {
	ep   Endpoint
	link *netsim.Link
}

// NetTransport is the default transport: it resolves addresses to
// registered endpoints, charges each message's wire size to the
// endpoint's netsim link, dispatches to the endpoint, and records an
// "rpc" span (with nested "net" transfer spans and the server's own spans
// beneath it) on the simulated timeline.
type NetTransport struct {
	sh          *shared
	traceParent telemetry.SpanID
	routes      map[string]*route
}

// NewNetTransport builds an empty transport; Register adds endpoints.
func NewNetTransport() *NetTransport {
	return &NetTransport{sh: &shared{}, routes: make(map[string]*route)}
}

// sharedState exposes the stack state to decorators.
func (t *NetTransport) sharedState() *shared { return t.sh }

// Register routes addr to an endpoint over the given link. A nil link
// means the endpoint is reached for free (tests); wire charging is
// skipped.
func (t *NetTransport) Register(addr string, ep Endpoint, link *netsim.Link) {
	t.routes[addr] = &route{ep: ep, link: link}
}

// transfer charges one message leg to the link, recording a "net" span
// under the rpc span and advancing the timeline. Zero-size messages
// (control plane, ack directions) skip the link entirely.
func (t *NetTransport) transfer(link *netsim.Link, bytes int64, parent telemetry.SpanID) {
	if bytes <= 0 || link == nil {
		return
	}
	if t.sh.tracer == nil {
		link.Transfer(bytes)
		return
	}
	sp := t.sh.tracer.Start("net", "transfer", parent)
	cost := link.Transfer(bytes)
	t.sh.tracer.Advance(cost)
	sp.AnnotateInt("bytes", int64(bytes))
	sp.End()
}

// Call sends one request/response exchange: request leg on the wire,
// endpoint dispatch (server spans nested under the rpc span), response
// leg on the wire.
func (t *NetTransport) Call(addr string, xid uint64, req Request) (Msg, error) {
	rt, ok := t.routes[addr]
	if !ok {
		return nil, &Error{Op: req.RPCOp(), Addr: addr, Kind: KindUnavailable}
	}
	op := req.RPCOp()
	var sp *telemetry.ActiveSpan
	var begin sim.Ns
	parent := t.traceParent
	if tr := t.sh.tracer; tr != nil {
		sp = tr.Start("rpc", string(op), parent)
		sp.Annotate("addr", addr)
		begin = tr.Now()
		parent = sp.ID()
		rt.ep.SetTraceParent(parent)
		defer rt.ep.SetTraceParent(0)
	}
	t.transfer(rt.link, req.WireSize(), parent)
	resp, err := rt.ep.Serve(xid, req)
	respSize := errWireSize(op)
	if err == nil && resp != nil {
		respSize = resp.WireSize()
	}
	t.transfer(rt.link, respSize, parent)
	dur := sim.Ns(-1)
	if tr := t.sh.tracer; tr != nil {
		dur = tr.Now() - begin
		sp.End()
	}
	t.sh.m.call(op, dur, err != nil)
	return resp, err
}
