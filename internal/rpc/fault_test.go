package rpc

import (
	"errors"
	"testing"

	"redbud/internal/telemetry"
)

// TestManualCrashBlackholesEndpoint drives the crash/revive API the
// failover tooling uses: a crashed endpoint drops every request (a wall of
// timeouts, not sporadic loss), never auto-revives, and serves again the
// moment it is revived.
func TestManualCrashBlackholesEndpoint(t *testing.T) {
	srv := newMDS(t)
	fault := FaultConfig{Seed: 1}
	policy := RetryPolicy{MaxRetries: 2}
	conn := NewConn(ClientConfig{Fault: &fault, Retry: &policy})
	conn.Register("mds", NewMDSEndpoint("mds", srv), nil)
	cl := NewMDSClient(conn, "mds")
	ft := conn.Fault()
	if ft == nil {
		t.Fatal("fault-configured conn must expose its injector")
	}

	if _, err := cl.Create(srv.Root(), "before"); err != nil {
		t.Fatal(err)
	}
	ft.Crash("mds")
	if !ft.Crashed("mds") {
		t.Fatal("Crash must mark the endpoint blackholed")
	}
	for i := 0; i < 8; i++ {
		_, err := cl.Create(srv.Root(), "during")
		var ex *ExhaustedError
		if !errors.As(err, &ex) || ex.Kind != KindTimeout {
			t.Fatalf("call %d to crashed endpoint: err = %v, want exhausted KindTimeout", i, err)
		}
	}
	if ft.Crashed("mds") != true {
		t.Fatal("manual crash must never auto-revive")
	}
	if got := srv.Stats().RPCs; got != 1 {
		t.Fatalf("server executed %d RPCs, want 1 (nothing during the outage)", got)
	}
	ft.Revive("mds")
	if _, err := cl.Create(srv.Root(), "after"); err != nil {
		t.Fatalf("revived endpoint failed: %v", err)
	}
}

// TestScheduledCrashRevivesDeterministically exercises a CrashPlan with a
// seeded outage length: the endpoint goes dark after the armed number of
// transport attempts, drops a run of calls drawn from the seeded RNG, and
// comes back on its own — with the whole timeline a pure function of the
// config and the call sequence.
func TestScheduledCrashRevivesDeterministically(t *testing.T) {
	run := func() (created int64, timeouts int64, blackholes int64) {
		srv := newMDS(t)
		reg := telemetry.NewRegistry()
		fault := FaultConfig{
			Seed:         5,
			Crashes:      []CrashPlan{{Addr: "mds", AfterCalls: 4}},
			MaxDownCalls: 8,
		}
		policy := RetryPolicy{MaxRetries: 16} // enough budget to ride out the outage
		conn := NewConn(ClientConfig{Fault: &fault, Retry: &policy})
		conn.Register("mds", NewMDSEndpoint("mds", srv), nil)
		conn.Instrument(reg, telemetry.Labels{"layer": "rpc"})
		cl := NewMDSClient(conn, "mds")
		for i := 0; i < 16; i++ {
			if _, err := cl.Create(srv.Root(), "f"+string(rune('a'+i))); err != nil {
				t.Fatalf("create %d: scheduled outage must be survivable: %v", i, err)
			}
		}
		if conn.Fault().Crashed("mds") {
			t.Fatal("scheduled outage must have revived by itself")
		}
		return srv.Stats().RPCs, counterValue(reg, "rpc_timeouts", ""),
			counterValue(reg, "rpc_faults", "blackhole")
	}
	c1, t1, b1 := run()
	c2, t2, b2 := run()
	if c1 != 16 {
		t.Fatalf("server executed %d RPCs, want all 16 logical creates", c1)
	}
	if b1 == 0 || t1 == 0 {
		t.Fatalf("outage left no trace: %d blackholed attempts, %d timeouts", b1, t1)
	}
	if b1 > 8 {
		t.Fatalf("outage dropped %d attempts, exceeding MaxDownCalls=8", b1)
	}
	if c1 != c2 || t1 != t2 || b1 != b2 {
		t.Fatalf("identical runs diverged: rpcs %d/%d timeouts %d/%d blackholes %d/%d",
			c1, c2, t1, t2, b1, b2)
	}
}
